// Primesieve reproduces the paper's running example (Fig. 4): a parallel
// prime sieve whose flags array hosts benign write-after-write races. Run
// under MESI and WARDen, it shows WARDen eliminating the invalidation storm
// the races cause.
//
//	go run ./examples/primesieve [-n 100000]
package main

import (
	"flag"
	"fmt"
	"log"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

func main() {
	n := flag.Int("n", 100_000, "sieve bound")
	flag.Parse()

	cfg := topology.XeonGold6126(2)
	fmt.Printf("prime_sieve_upto(%d) on %s, MESI vs WARDen\n\n", *n, cfg.Name)

	var results []bench.Result
	for _, proto := range core.Protocols("mesi", "warden") {
		entry, err := pbbs.ByName("primes")
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.RunOne(cfg, proto, entry, *n, hlpl.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		c := res.Counters
		fmt.Printf("%-7v cycles=%-10d invalidations=%-8d downgrades=%-7d inv+dg/kilo-instr=%.2f\n",
			proto, res.Cycles, c.Invalidations, c.Downgrades, c.InvDowngradesPerKiloInstr())
	}

	cmp := bench.Comparison{Name: "primes", MESI: results[0], WARDen: results[1]}
	fmt.Printf("\nWARDen speedup:              %.2fx\n", cmp.Speedup())
	fmt.Printf("coherence events avoided:    %d (%.2f per kilo-instruction)\n",
		cmp.InvDgReduced(), cmp.InvDgReducedPerKilo())
	fmt.Printf("interconnect energy savings: %.1f%%\n", cmp.InterconnectSavings())
	fmt.Printf("total energy savings:        %.1f%%\n", cmp.TotalEnergySavings())
	fmt.Println("\nEvery writer stores the same value (false), so the WAW races are")
	fmt.Println("apathetic: the flags array satisfies the WARD property (§3.3) and the")
	fmt.Println("sieve's marking phase runs with coherence disabled.")
}
