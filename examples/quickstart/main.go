// Quickstart: build a simulated two-socket machine, run a parallel program
// on the WARDen protocol through the HLPL runtime, and print what the
// hardware did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/topology"
)

func main() {
	// A machine is a topology plus a coherence protocol. XeonGold6126 is
	// the paper's Table 2 system; core.WARDen enables the W state and the
	// WARD region table (core.MESI would be the stock baseline).
	cfg := topology.XeonGold6126(2)
	m := machine.New(cfg, core.WARDen)

	// The HLPL runtime provides fork-join parallelism with MPL's heap
	// hierarchy on top of the machine. Programs are disentangled by
	// construction: tasks allocate into their own leaf heaps, and the
	// runtime marks/unmarks WARD regions automatically.
	rt := hlpl.New(m, hlpl.DefaultOptions())

	const n = 1 << 16
	var sum uint64
	cycles, err := rt.Run(func(root *hlpl.Task) {
		// Allocate an array in the root heap and fill it in parallel. The
		// library's bulk-write scope declares the output range WARD for
		// the duration: concurrent writers never invalidate each other.
		arr := root.NewU64(n)
		root.WardScope(arr.Base, n*8, func() {
			root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
				leaf.Compute(2) // a couple of ALU instructions per element
				arr.Set(leaf, i, uint64(i)*uint64(i))
			})
		})
		// Reduce over the freshly written data.
		sum = root.Reduce(0, n, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += arr.Get(leaf, i)
			}
			return s
		}, func(a, b uint64) uint64 { return a + b })
	})
	if err != nil {
		log.Fatal(err)
	}

	c := m.Counters()
	fmt.Printf("machine: %s, protocol %v, %d hardware threads\n",
		cfg.Name, m.Protocol(), cfg.Threads())
	fmt.Printf("sum of squares below %d = %d\n", n, sum)
	fmt.Printf("simulated cycles:        %d (%.3f ms at %.1f GHz)\n",
		cycles, 1e3*cfg.CyclesToSeconds(cycles), cfg.FrequencyGHz)
	fmt.Printf("instructions / IPC:      %d / %.2f\n", c.Instructions, c.IPC(cycles))
	fmt.Printf("WARD accesses:           %d (%.1f%% of memory ops)\n",
		c.WardAccesses, 100*float64(c.WardAccesses)/float64(c.Loads+c.Stores))
	fmt.Printf("invalidations+downgrades: %d+%d\n", c.Invalidations, c.Downgrades)
	fmt.Printf("regions added/removed:   %d/%d, blocks reconciled: %d\n",
		c.RegionAdds, c.RegionRemoves, c.ReconciledBlocks)
}
