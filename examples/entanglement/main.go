// Entanglement demonstrates why WARD regions demand disentangled programs,
// and how the simulator's dynamic detector catches violations (in the
// spirit of the paper's reference [89], "Entanglement detection with
// near-zero cost").
//
// Two versions of a pipeline run inside one WARD region:
//
//   - the disentangled version writes results into the region and reads
//     them only after the region is reconciled — correct, zero violations;
//
//   - the entangled version has a consumer task read a producer task's
//     in-region writes — under WARDen's W state the read returns stale
//     data, and the detector flags the exact access.
//
// Usage:
//
//	go run ./examples/entanglement
package main

import (
	"fmt"
	"log"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/topology"
)

const n = 512 // words in the shared buffer

// run executes producer/consumer bodies and reports the consumer's checksum
// plus detected violations.
func run(entangled bool) (sum uint64, violations uint64, sample string) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 2
	m := machine.New(cfg, core.WARDen)
	m.System().SetEntanglementDetection(true)
	buf := m.Mem().Alloc(n*8, mem.PageSize)
	flag := m.Mem().Alloc(8, 64) // consumer-ready signal (outside the region)

	producer := func(ctx *machine.Ctx) {
		id, _ := ctx.AddRegion(buf, buf+n*8)
		for i := 0; i < n; i++ {
			ctx.Store(buf+mem.Addr(i*8), 8, uint64(i)*3+1)
		}
		ctx.Fence()
		if !entangled {
			// Disentangled: reconcile before publishing.
			ctx.RemoveRegion(id)
		}
		ctx.Store(flag, 8, 1) // publish
		if entangled {
			// Too late: the consumer reads inside the live region.
			ctx.Compute(200_000)
			ctx.RemoveRegion(id)
		}
	}
	var got uint64
	consumer := func(ctx *machine.Ctx) {
		for ctx.Load(flag, 8) == 0 {
		}
		var s uint64
		for i := 0; i < n; i++ {
			s += ctx.Load(buf+mem.Addr(i*8), 8)
		}
		got = s
	}

	bodies := []func(*machine.Ctx){producer, consumer}
	if _, err := m.Run(bodies); err != nil {
		log.Fatal(err)
	}
	vs := m.System().Violations()
	if len(vs) > 0 {
		sample = vs[0].String()
	}
	return got, m.Counters().EntanglementViolations, sample
}

func main() {
	var want uint64
	for i := 0; i < n; i++ {
		want += uint64(i)*3 + 1
	}

	sum, v, _ := run(false)
	fmt.Printf("disentangled: checksum %d (want %d) — %d violations\n", sum, want, v)

	sum, v, sample := run(true)
	fmt.Printf("entangled:    checksum %d (want %d) — %d violations\n", sum, want, v)
	fmt.Printf("              first flagged access: %s\n", sample)
	fmt.Println()
	if sum == want {
		fmt.Println("(the entangled run happened to see fresh data — rerun; the detector still flagged it)")
	} else {
		fmt.Println("The entangled consumer read stale W-state data: this is why the runtime")
		fmt.Println("only marks memory it can prove no concurrent task reads (§4), and why the")
		fmt.Println("scheduler reconciles heaps at forks and joins before hand-offs.")
	}
}
