// Raytrace is a small ray tracer written directly against the hlpl runtime
// API: spheres are binned into screen tiles, pixels are traced in parallel
// into a WARD-scoped framebuffer, and the image is read back from simulated
// memory into a PGM file. It renders on three machines — single socket,
// dual socket, and disaggregated — under both protocols, showing WARDen's
// benefit scaling with interconnect cost (§7.3).
//
//	go run ./examples/raytrace [-n 48] [-o image.pgm]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/topology"
)

type sphere struct{ cx, cy, cz, r, shade float64 }

func scene() []sphere {
	var out []sphere
	seed := uint64(12345)
	rnd := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for i := 0; i < 32; i++ {
		out = append(out, sphere{
			cx: 2*rnd() - 1, cy: 2*rnd() - 1, cz: 2 + 3*rnd(),
			r: 0.1 + 0.3*rnd(), shade: 0.2 + 0.8*rnd(),
		})
	}
	return out
}

// render traces an n×n image on machine m and returns the framebuffer
// contents (read host-side after the run) and the simulated cycle count.
func render(cfg topology.Config, proto core.Protocol, n int) ([]byte, uint64) {
	m := machine.New(cfg, proto)
	rt := hlpl.New(m, hlpl.DefaultOptions())
	sph := scene()

	// Scene data lives in simulated memory, prepared before the run.
	sceneArr := hlpl.U64{Base: m.Mem().Alloc(uint64(len(sph))*5*8, mem.PageSize), N: len(sph) * 5}
	for i, s := range sph {
		for j, f := range []float64{s.cx, s.cy, s.cz, s.r, s.shade} {
			m.Mem().WriteUint(sceneArr.Addr(i*5+j), 8, math.Float64bits(f))
		}
	}

	var img hlpl.U8
	cycles, err := rt.Run(func(root *hlpl.Task) {
		img = root.NewU8(n * n)
		root.WardScope(img.Base, uint64(n*n), func() {
			root.ParallelFor(0, n*n, 32, func(leaf *hlpl.Task, p int) {
				px := 2*(float64(p%n)+0.5)/float64(n) - 1
				py := 2*(float64(p/n)+0.5)/float64(n) - 1
				bestT := math.Inf(1)
				shade := 0.0
				for s := 0; s < len(sph); s++ {
					leaf.Compute(10)
					cx := sceneArr.GetF(leaf, s*5+0)
					cy := sceneArr.GetF(leaf, s*5+1)
					cz := sceneArr.GetF(leaf, s*5+2)
					r := sceneArr.GetF(leaf, s*5+3)
					dd := px*px + py*py + 1
					dc := px*cx + py*cy + cz
					cc := cx*cx + cy*cy + cz*cz - r*r
					if disc := dc*dc - dd*cc; disc > 0 {
						if t := (dc - math.Sqrt(disc)) / dd; t > 0 && t < bestT {
							bestT = t
							shade = sceneArr.GetF(leaf, s*5+4)
						}
					}
				}
				v := byte(0)
				if !math.IsInf(bestT, 1) {
					v = byte(math.Min(255, shade*255))
				}
				img.Set(leaf, p, v)
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	// Read the framebuffer from simulated memory (host-side, untimed).
	out := make([]byte, n*n)
	m.Mem().Read(img.Base, out)
	return out, cycles
}

func main() {
	n := flag.Int("n", 48, "image side length in pixels")
	out := flag.String("o", "image.pgm", "output PGM file (empty to skip)")
	flag.Parse()

	configs := []topology.Config{
		topology.XeonGold6126(1),
		topology.XeonGold6126(2),
		topology.Disaggregated(),
	}
	fmt.Printf("ray tracing a %dx%d image, MESI vs WARDen\n\n", *n, *n)
	fmt.Printf("%-22s %-12s %-12s %s\n", "machine", "MESI cyc", "WARDen cyc", "speedup")

	var image []byte
	for _, cfg := range configs {
		imgM, mesi := render(cfg, core.MESI, *n)
		imgW, ward := render(cfg, core.WARDen, *n)
		for i := range imgM {
			if imgM[i] != imgW[i] {
				log.Fatalf("pixel %d differs between protocols: %d vs %d", i, imgM[i], imgW[i])
			}
		}
		image = imgW
		fmt.Printf("%-22s %-12d %-12d %.2fx\n", cfg.Name, mesi, ward, float64(mesi)/float64(ward))
	}
	fmt.Println("\n(identical images under both protocols — reconciliation is exact)")

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "P5\n%d %d\n255\n", *n, *n)
	if _, err := f.Write(image); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
