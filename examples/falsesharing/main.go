// Falsesharing demonstrates WARDen's false-sharing immunity (§5.3) at the
// machine level, without the language runtime: hardware threads write
// interleaved counters that share cache blocks. Under MESI every store
// fights for block ownership; inside a WARD region the block ping-pong
// disappears and reconciliation merges the per-core sectors losslessly.
//
//	go run ./examples/falsesharing
package main

import (
	"fmt"
	"log"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/topology"
)

const (
	counters   = 64 // one 8-byte counter per thread-slot, 8 per cache block
	iterations = 2000
)

func run(proto core.Protocol, useRegion bool) (cycles uint64, inv, dg uint64) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 8
	m := machine.New(cfg, proto)
	base := m.Mem().Alloc(counters*8, mem.PageSize)

	bodies := make([]func(*machine.Ctx), cfg.Threads())
	for tid := 0; tid < cfg.Threads(); tid++ {
		tid := tid
		bodies[tid] = func(ctx *machine.Ctx) {
			var region core.RegionID
			if useRegion && tid == 0 {
				region, _ = ctx.AddRegion(base, base+counters*8)
			}
			ctx.Compute(32) // let the region registration land first
			// Thread t bumps counters t, t+8, t+16, ...: every block is
			// written by all eight threads (pure false sharing).
			for it := 0; it < iterations; it++ {
				for slot := tid; slot < counters; slot += cfg.Threads() {
					a := base + mem.Addr(slot*8)
					v := ctx.Load(a, 8)
					ctx.Store(a, 8, v+1)
				}
			}
			ctx.Fence()
			if useRegion && tid == 0 {
				ctx.Compute(1_000_000) // outlast the other writers
				ctx.RemoveRegion(region)
			}
		}
	}
	total, err := m.Run(bodies)
	if err != nil {
		log.Fatal(err)
	}
	// Verify no update was lost.
	for slot := 0; slot < counters; slot++ {
		if got := m.Mem().ReadUint(base+mem.Addr(slot*8), 8); got != iterations {
			log.Fatalf("%v: counter %d = %d, want %d", proto, slot, got, iterations)
		}
	}
	c := m.Counters()
	return total, c.Invalidations, c.Downgrades
}

func main() {
	fmt.Printf("8 threads x %d iterations over %d interleaved counters (8 per block)\n\n",
		iterations, counters)
	mesiCyc, mesiInv, mesiDg := run(core.MESI, false)
	fmt.Printf("MESI:   %10d cycles   %8d invalidations   %6d downgrades\n", mesiCyc, mesiInv, mesiDg)
	wardCyc, wardInv, wardDg := run(core.WARDen, true)
	fmt.Printf("WARDen: %10d cycles   %8d invalidations   %6d downgrades\n", wardCyc, wardInv, wardDg)
	fmt.Printf("\nspeedup %.2fx; all counters verified exact under both protocols —\n",
		float64(mesiCyc)/float64(wardCyc))
	fmt.Println("byte-sectored reconciliation (§6.1) merges the disjoint writes losslessly.")
}
