// Command wardenfuzz drives the explicit-state protocol verifier
// (internal/modelcheck) from the command line: exhaustive exploration of
// small configurations, the named litmus suite, and seeded random-walk
// fuzzing — including pairwise differential walks between any two
// registered protocols — on configurations too big to exhaust.
//
// Usage:
//
//	wardenfuzz -mode exhaustive [-protocol all] [-cores 2] [-blocks 1] [-depth 8]
//	wardenfuzz -mode litmus [-scenario name]
//	wardenfuzz -mode walk [-protocol warden] [-walks 64] [-steps 400] [-seed 1]
//	wardenfuzz -diff sisd:mesi [-walks 64] [-steps 400] [-seed 1]
//	wardenfuzz -mode diff [-walks 64] [-steps 400] [-seed 1]   # warden:mesi
//	wardenfuzz -mode enginediff [-walks 16] [-steps 400] [-seed 1]
//
// enginediff fuzzes the simulator's engines rather than the protocols:
// every seeded random program must produce byte-identical cycles,
// counters, and event streams under the sequential and PDES schedulers
// (see internal/engine).
//
// On a violation it prints the counterexample and writes a replayable
// trace (wardentrace accepts it) to the -o path, then exits 1. Usage
// errors exit 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/modelcheck"
	"warden/internal/modelcheck/litmus"
	"warden/internal/protocols"
	"warden/internal/runner"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wardenfuzz: %v\n", err)
	os.Exit(1)
}

func usage(msg string) {
	fmt.Fprintf(os.Stderr, "wardenfuzz: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

func main() {
	mode := flag.String("mode", "walk", "exhaustive, litmus, walk, diff, or enginediff")
	protocol := flag.String("protocol", "all", protocols.Usage())
	diffPair := flag.String("diff", "",
		"differential walk on a subject:baseline protocol pair (e.g. sisd:mesi); implies -mode diff")
	cores := flag.Int("cores", 2, "cores in the abstract machine (2-3 are tractable)")
	blocks := flag.Int("blocks", 1, "tracked cache blocks")
	conflict := flag.Bool("conflict", false, "single-set private caches: distinct blocks evict each other")
	sb := flag.Int("sb", 0, "functional store-buffer depth (0: stores commit at issue)")
	atomics := flag.Bool("atomics", true, "include fetch-add in the alphabet")
	depth := flag.Int("depth", 8, "exhaustive mode: interleaving depth bound")
	scenario := flag.String("scenario", "", "litmus mode: run only this scenario")
	walks := flag.Int("walks", 64, "walk/diff modes: number of seeded walks")
	steps := flag.Int("steps", 400, "walk/diff modes: actions per walk")
	seed := flag.Int64("seed", 1, "walk/diff modes: base seed (walk i uses seed+i)")
	parallel := flag.Int("parallel", 0, "walk/diff modes: worker count (0: GOMAXPROCS)")
	out := flag.String("o", "counterexample.trace", "violation trace output path ('-': stdout)")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Sprintf("unexpected argument %q", flag.Arg(0)))
	}
	if *cores < 1 || *blocks < 1 || *steps < 1 || *walks < 1 || *depth < 1 || *sb < 0 {
		usage("cores, blocks, depth, walks, and steps must be positive (sb non-negative)")
	}

	if *diffPair != "" {
		*mode = "diff"
	}
	protos, err := protocols.Parse(*protocol)
	if err != nil {
		usage(err.Error())
	}

	build := func(p core.Protocol) modelcheck.Config {
		l2Lines := 2
		if *conflict {
			l2Lines = 1
		}
		top := modelcheck.TinyTopology(*cores, l2Lines, 2)
		bl := modelcheck.DefaultBlocks(*blocks, top.BlockSize)
		return modelcheck.Config{
			Protocol: p,
			Topology: top,
			Cores:    *cores,
			Blocks:   bl,
			Regions: []modelcheck.RegionSpan{{
				Lo: bl[0],
				Hi: bl[len(bl)-1] + mem.Addr(top.BlockSize),
			}},
			Alphabet:         modelcheck.WordAlphabet(*cores, *blocks, 1, *atomics),
			StoreBufferDepth: *sb,
			MaxDepth:         *depth,
		}
	}

	report := func(cx *modelcheck.Counterexample) {
		fmt.Fprintf(os.Stderr, "wardenfuzz: %s\n", cx.String())
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(fmt.Errorf("writing counterexample: %w", err))
			}
			defer f.Close()
			w = f
		}
		if err := cx.WriteTrace(w, true); err != nil {
			fatal(fmt.Errorf("rendering counterexample: %w", err))
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "wardenfuzz: replayable trace written to %s\n", *out)
		}
		os.Exit(1)
	}

	switch *mode {
	case "exhaustive":
		for _, p := range protos {
			res, err := modelcheck.Explore(build(p))
			if err != nil {
				fatal(err)
			}
			if res.Violation != nil {
				report(res.Violation)
			}
			fmt.Printf("%-6s exhaustive: %d states, %d transitions, depth %d (depth-bounded=%v)\n",
				p, res.States, res.Transitions, res.Depth, res.DepthBounded)
		}
	case "litmus":
		suite := litmus.Scenarios()
		if *scenario != "" {
			s, err := litmus.ByName(*scenario)
			if err != nil {
				usage(err.Error())
			}
			suite = []litmus.Scenario{s}
		}
		for _, s := range suite {
			for _, p := range s.Protocols {
				res, err := s.Run(p)
				if err != nil {
					fatal(fmt.Errorf("%s under %s: %w", s.Name, p, err))
				}
				if res.Violation != nil {
					fmt.Fprintf(os.Stderr, "wardenfuzz: litmus %s under %s failed\n", s.Name, p)
					report(res.Violation)
				}
				if !*quiet {
					fmt.Printf("%-24s %-6s ok: %d states, %d transitions\n", s.Name, p, res.States, res.Transitions)
				}
			}
		}
	case "walk":
		for _, p := range protos {
			cx := parallelWalks(*parallel, *walks, func(i int) (*modelcheck.Counterexample, error) {
				res, err := modelcheck.Walk(build(p), *seed+int64(i), *steps)
				return res.Violation, err
			})
			if cx != nil {
				report(cx)
			}
			if !*quiet {
				fmt.Printf("%-6s walk: %d walks x %d steps clean (seeds %d..%d)\n",
					p, *walks, *steps, *seed, *seed+int64(*walks)-1)
			}
		}
	case "diff":
		subject, baseline := core.WARDen, core.MESI
		if *diffPair != "" {
			if subject, baseline, err = protocols.ParsePair(*diffPair); err != nil {
				usage(err.Error())
			}
		}
		cx := parallelWalks(*parallel, *walks, func(i int) (*modelcheck.Counterexample, error) {
			res, err := modelcheck.DiffWalk(build(subject), subject, baseline, *seed+int64(i), *steps)
			return res.Violation, err
		})
		if cx != nil {
			report(cx)
		}
		if !*quiet {
			fmt.Printf("diff   walk: %d walks x %d steps, %v==%v outside race-affected bytes (seeds %d..%d)\n",
				*walks, *steps, subject, baseline, *seed, *seed+int64(*walks)-1)
		}
	case "enginediff":
		// Unlike the other modes this one fuzzes the simulator's own
		// engines, not the protocols: each seed's random program must be
		// byte-identical under the sequential and PDES schedulers.
		pool := runner.New(*parallel)
		msgs, err := runner.Map(pool, *walks, func(i int) (string, error) {
			return engineDiffWalk(protos, *seed+int64(i), *steps)
		})
		if err != nil {
			fatal(err)
		}
		for _, msg := range msgs {
			if msg != "" {
				fmt.Fprintf(os.Stderr, "wardenfuzz: %s\n", msg)
				os.Exit(1)
			}
		}
		if !*quiet {
			fmt.Printf("engine diff: %d walks x %d steps x %d protocols, pdes==seq byte-identical (seeds %d..%d)\n",
				*walks, *steps, len(protos), *seed, *seed+int64(*walks)-1)
		}
	default:
		usage(fmt.Sprintf("unknown mode %q (want exhaustive, litmus, walk, diff, or enginediff)", *mode))
	}
}

// parallelWalks runs n seeded walks across the pool and returns the
// counterexample of the lowest-seed failing walk (deterministic regardless
// of scheduling), or nil when all walks are clean.
func parallelWalks(workers, n int, walk func(i int) (*modelcheck.Counterexample, error)) *modelcheck.Counterexample {
	pool := runner.New(workers)
	results, err := runner.Map(pool, n, walk)
	if err != nil {
		fatal(err)
	}
	for _, cx := range results {
		if cx != nil {
			return cx
		}
	}
	return nil
}
