package main

// enginediff mode: seeded random machine-level programs simulated twice,
// once on the sequential engine and once on the PDES engine, comparing
// total cycles, every architectural counter, and a hash of the full
// serialized event stream. The PBBS differential suite covers structured
// fork-join programs; this walk covers the adversarial corner cases random
// interleavings reach — same-cycle global ops on many threads, fences
// against full store buffers, racy atomics on shared blocks, WARD-region
// traffic — where an epoch-ordering bug would first show.

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
	"warden/internal/trace"
)

// engineDiffObservation is everything one simulation exposes: if any field
// differs between engine modes, determinism is broken.
type engineDiffObservation struct {
	cycles    uint64
	counters  stats.Counters
	traceHash uint64
	traceLen  int
}

// engineDiffTopology is deliberately small: few cores keeps threads
// colliding on the shared blocks, which is where ordering bugs live.
func engineDiffTopology() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	cfg.Name = "enginediff-4c"
	return cfg
}

// engineDiffRun executes the seeded random program under one engine mode
// with a JSONL trace recorder attached (sequence numbers included, so any
// reordering changes the hash).
func engineDiffRun(emode machine.EngineMode, proto core.Protocol, seed int64, steps int) (engineDiffObservation, error) {
	cfg := engineDiffTopology()
	m := machine.New(cfg, proto)
	m.SetEngineMode(emode)
	var buf bytes.Buffer
	m.System().SetSink(trace.NewRecorder(nil, &buf))

	const sharedBlocks = 8
	shared := m.Mem().Alloc(sharedBlocks*cfg.BlockSize, cfg.BlockSize)
	// Half the shared span is a WARD region so the walk exercises the
	// specialized-protocol paths (W-state fills, reconciliation) too; under
	// MESI the region instructions are architectural no-ops.
	regionLo := shared
	regionHi := shared + mem.Addr(sharedBlocks/2*cfg.BlockSize)

	bodies := make([]func(*machine.Ctx), cfg.Threads())
	for tid := range bodies {
		tid := tid
		bodies[tid] = func(ctx *machine.Ctx) {
			// Per-thread xorshift stream, decorrelated by seed and thread id.
			rng := uint64(seed)*0x9e3779b97f4a7c15 + uint64(tid+1)*0xbf58476d1ce4e5b9
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			ctx.PhaseBegin("walk")
			if tid == 0 {
				ctx.AddRegion(regionLo, regionHi)
			}
			for i := 0; i < steps; i++ {
				a := shared + mem.Addr(next()%(sharedBlocks*cfg.BlockSize/8)*8)
				switch next() % 8 {
				case 0, 1:
					ctx.Load(a, 8)
				case 2, 3:
					ctx.Store(a, 8, next())
				case 4:
					ctx.FetchAdd(a, 8, 1)
				case 5:
					ctx.CAS(a, 8, 0, next())
				case 6:
					ctx.Compute(1 + next()%16)
				case 7:
					ctx.Fence()
				}
			}
			ctx.Fence()
			ctx.PhaseEnd("walk")
		}
	}

	cycles, err := m.Run(bodies)
	m.System().SetSink(nil)
	if err != nil {
		return engineDiffObservation{}, fmt.Errorf("seed %d %v/%v: %w", seed, proto, emode, err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return engineDiffObservation{
		cycles:    cycles,
		counters:  *m.Counters(),
		traceHash: h.Sum64(),
		traceLen:  buf.Len(),
	}, nil
}

// engineDiffWalk runs one seed under both protocols and both engines,
// additionally comparing the machines' counter sets. It returns a
// human-readable mismatch description, or "" when the engines agree.
func engineDiffWalk(protos []core.Protocol, seed int64, steps int) (string, error) {
	for _, proto := range protos {
		seq, err := engineDiffRun(machine.EngineSequential, proto, seed, steps)
		if err != nil {
			return "", err
		}
		pdes, err := engineDiffRun(machine.EnginePDES, proto, seed, steps)
		if err != nil {
			return "", err
		}
		if seq != pdes {
			return fmt.Sprintf("seed %d under %v: engines diverged\nseq:  cycles=%d trace=%d bytes hash=%016x\npdes: cycles=%d trace=%d bytes hash=%016x",
				seed, proto, seq.cycles, seq.traceLen, seq.traceHash, pdes.cycles, pdes.traceLen, pdes.traceHash), nil
		}
	}
	return "", nil
}
