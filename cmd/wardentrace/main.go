// Command wardentrace records and replays textual memory traces (see
// internal/trace for the full grammar), closing the record→replay loop:
// a pbbs benchmark recorded with -record replays to the exact same cycle
// count and counters.
//
//	wardentrace -protocol mesi,warden path/to/trace.txt
//	echo '0 W 0x1000 8 7' | wardentrace -
//	wardentrace -record primes -protocol warden -o primes.trace
//	wardentrace -protocol warden -check primes.trace
//
// Traces and JSONL event logs may be gzip-compressed: writing to a path
// ending in .gz compresses, and reading sniffs the gzip magic bytes, so
// `-o primes.trace.gz` round-trips through `wardentrace primes.trace.gz`
// (any name works — detection is content-based).
//
// Trace lines are "<thread> <kind> <args...>", one event per line:
//
//	R <addr> <size>              read (1..4096 bytes)
//	W <addr> <size> <value>     write; size 9..4096 takes a hex payload
//	A <addr> <size> <delta>     atomic fetch-add
//	X <addr> <size> <old> <new> atomic compare-and-swap
//	C <cycles>                  compute for N cycles
//	F                           full fence
//	B <name> <lo> <hi>          begin WARD region (name must not be open)
//	E <name>                    end region; "E -" ends the null region
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/protocols"
	"warden/internal/topology"
	"warden/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wardentrace:", err)
	os.Exit(1)
}

// usageErr reports a bad flag combination and exits 2 before any output is
// produced.
func usageErr(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wardentrace: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	protocol := flag.String("protocol", "mesi,warden", protocols.Usage())
	sockets := flag.Int("sockets", 1, "socket count")
	cores := flag.Int("cores", 0, "cores per socket (0 = Table 2 default)")
	detect := flag.Bool("detect", false, "enable entanglement detection (WARDen)")
	record := flag.String("record", "", "record a pbbs benchmark run instead of replaying a trace")
	recordSize := flag.String("record-size", "small", "input size for -record: small or medium")
	out := flag.String("o", "", "with -record, write the textual trace here (default stdout)")
	jsonl := flag.String("jsonl", "", "also write the full event stream (both layers) as JSONL")
	check := flag.Bool("check", false, "run the coherence invariant checker during replay")
	flag.Parse()

	protos, err := protocols.Parse(*protocol)
	if err != nil {
		usageErr("-protocol: %v", err)
	}
	// Validate the machine shape before any simulation or output: a bad
	// -sockets/-cores value must be a one-line diagnostic and exit 2, not a
	// panic or a partial table.
	if *sockets < 1 {
		usageErr("-sockets must be positive, got %d", *sockets)
	}
	if *cores < 0 {
		usageErr("-cores must be non-negative (0 = Table 2 default), got %d", *cores)
	}
	cfg := topology.XeonGold6126(*sockets)
	if *cores > 0 {
		cfg.CoresPerSocket = *cores
	}
	if err := cfg.Validate(); err != nil {
		usageErr("%v", err)
	}

	if *record != "" {
		if len(protos) != 1 {
			usageErr("-record needs a single -protocol (e.g. mesi or warden)")
		}
		if flag.NArg() != 0 {
			usageErr("-record runs a benchmark; unexpected trace argument %q", flag.Arg(0))
		}
		runRecord(cfg, protos[0], *record, *recordSize, *out, *jsonl)
		return
	}

	if *out != "" {
		usageErr("-o is only meaningful with -record")
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wardentrace [flags] <trace-file|->")
		fmt.Fprintln(os.Stderr, "       wardentrace -record <benchmark> -protocol <name> [-o trace] [-jsonl events]")
		os.Exit(2)
	}
	// trace.Open sniffs the gzip magic, so plain and .gz traces (and gzip
	// piped through stdin) all replay transparently.
	in, err := trace.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	tr, err := trace.Parse(in)
	if err != nil {
		fatal(err)
	}

	var jsonlW io.WriteCloser
	if *jsonl != "" {
		if len(protos) != 1 {
			fmt.Fprintln(os.Stderr, "wardentrace: -jsonl needs a single -protocol (mesi or warden)")
			os.Exit(2)
		}
		jsonlW, err = trace.Create(*jsonl)
		if err != nil {
			fatal(err)
		}
		defer jsonlW.Close()
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tcycles\tinstructions\tinvalidations\tdowngrades\tward accesses\tmessages")
	for _, p := range protos {
		m := machine.New(cfg, p)
		if *detect {
			m.System().SetEntanglementDetection(true)
		}
		var sinks []core.Sink
		var chk *core.Checker
		if *check {
			chk = core.NewChecker(m.System())
			sinks = append(sinks, chk)
		}
		var rec *trace.Recorder
		if jsonlW != nil {
			rec = trace.NewRecorder(nil, jsonlW)
			sinks = append(sinks, rec)
		}
		if len(sinks) > 0 {
			m.System().SetSink(core.Sinks(sinks...))
		}
		res, err := trace.Replay(tr, m)
		if err != nil {
			fatal(err)
		}
		if chk != nil {
			if err := chk.Final(); err != nil {
				fatal(fmt.Errorf("%v: invariant violation: %w", p, err))
			}
		}
		if rec != nil {
			if err := rec.Err(); err != nil {
				fatal(err)
			}
		}
		c := m.Counters()
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p, res.Cycles, c.Instructions, c.Invalidations, c.Downgrades,
			c.WardAccesses, c.TotalMsgs())
		if *detect && c.EntanglementViolations > 0 {
			tw.Flush()
			fmt.Printf("%d entanglement violations; first:\n", c.EntanglementViolations)
			for _, v := range m.System().Violations() {
				fmt.Println("  ", v)
			}
		}
		if chk != nil {
			tw.Flush()
			fmt.Printf("invariant checker: %d events, no violations\n", chk.Events())
		}
	}
	tw.Flush()
	fmt.Printf("(%d events, %d threads)\n", tr.Events, tr.MaxThread()+1)
}

// runRecord executes a pbbs benchmark with the trace recorder attached and
// writes the instruction-level textual trace (replayable by this command)
// and, optionally, the full two-layer event stream as JSONL.
func runRecord(cfg topology.Config, proto core.Protocol, name, size, out, jsonl string) {
	e, err := pbbs.ByName(name)
	if err != nil {
		usageErr("%v", err)
	}
	var n int
	switch size {
	case "small":
		n = e.Small
	case "medium":
		n = e.Medium
	default:
		usageErr("unknown -record-size %q (want small or medium)", size)
	}

	var textW io.Writer = os.Stdout
	if out != "" {
		f, err := trace.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		textW = f
	}
	var jsonlW io.Writer
	if jsonl != "" {
		f, err := trace.Create(jsonl)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonlW = f
	}

	rec := trace.NewRecorder(textW, jsonlW)
	res, err := bench.RunOneObserved(cfg, proto, e, n, hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return rec })
	if err != nil {
		fatal(err)
	}
	if err := rec.Err(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recorded %s/%v: %d cycles, %d instructions, %d messages\n",
		name, proto, res.Cycles, res.Counters.Instructions, res.Counters.TotalMsgs())
}
