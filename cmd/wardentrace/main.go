// Command wardentrace replays a textual memory trace (see internal/trace
// for the format) through the simulated machine under MESI, WARDen, or
// both, printing cycles and coherence statistics — a harness-free way to
// explore the protocols.
//
//	wardentrace -protocol both path/to/trace.txt
//	echo '0 W 0x1000 8 7' | wardentrace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/topology"
	"warden/internal/trace"
)

func main() {
	protocol := flag.String("protocol", "both", "mesi, warden, or both")
	sockets := flag.Int("sockets", 1, "socket count")
	cores := flag.Int("cores", 0, "cores per socket (0 = Table 2 default)")
	detect := flag.Bool("detect", false, "enable entanglement detection (WARDen)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wardentrace [flags] <trace-file|->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardentrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wardentrace:", err)
		os.Exit(1)
	}

	var protos []core.Protocol
	switch *protocol {
	case "mesi":
		protos = []core.Protocol{core.MESI}
	case "warden":
		protos = []core.Protocol{core.WARDen}
	case "both":
		protos = []core.Protocol{core.MESI, core.WARDen}
	default:
		fmt.Fprintf(os.Stderr, "wardentrace: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	cfg := topology.XeonGold6126(*sockets)
	if *cores > 0 {
		cfg.CoresPerSocket = *cores
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tcycles\tinstructions\tinvalidations\tdowngrades\tward accesses\tmessages")
	for _, p := range protos {
		m := machine.New(cfg, p)
		if *detect {
			m.System().SetEntanglementDetection(true)
		}
		res, err := trace.Replay(tr, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardentrace:", err)
			os.Exit(1)
		}
		c := m.Counters()
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p, res.Cycles, c.Instructions, c.Invalidations, c.Downgrades,
			c.WardAccesses, c.TotalMsgs())
		if *detect && c.EntanglementViolations > 0 {
			tw.Flush()
			fmt.Printf("%d entanglement violations; first:\n", c.EntanglementViolations)
			for _, v := range m.System().Violations() {
				fmt.Println("  ", v)
			}
		}
	}
	tw.Flush()
	fmt.Printf("(%d events, %d threads)\n", tr.Events, tr.MaxThread()+1)
}
