// Command wardenlens explains protocol cycle deltas exactly. It runs a
// benchmark under a subject and a baseline protocol with the attribution
// ledger attached, then decomposes the measured cycle difference into
// per-event-kind × per-address-bucket × per-phase accounts that sum to the
// delta with zero residue — any reconciliation residue is an error and a
// nonzero exit, never a warning (see DESIGN.md §14).
//
// Usage:
//
//	wardenlens -explain warden:mesi -bench all           # full suite
//	wardenlens -explain sisd:mesi -bench dedup,msort     # a subset
//	wardenlens -explain warden:mesi -bench ray -o lens.html
//	wardenlens -explain warden:mesi -bench dedup -trace-out traces
//	wardenlens -explain warden:mesi -bench dedup -block 0x1f40
//
// -o writes an HTML artifact with the same decomposition tables; -trace-out
// writes one Perfetto counter-track timeline per benchmark (cumulative
// attributed cycles per event kind over simulated time, both protocols);
// -block replays one cache block's flight-recorder timeline with the
// protocol arcs named in PROTOCOL.md vocabulary. Attribution is pure
// observation: the measured cycles are byte-identical to an unobserved
// run's (TestAttribMatchesUnobserved).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"warden/internal/attrib"
	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/protocols"
	"warden/internal/telemetry"
	"warden/internal/topology"
)

// sampleEvery is the counter-track sampling stride when -trace-out is set:
// one cumulative sample per this many instruction events.
const sampleEvery = 4096

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wardenlens: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	pair := flag.String("explain", "warden:mesi",
		"subject:baseline protocol pair whose cycle delta to decompose")
	benchList := flag.String("bench", "all",
		"benchmarks to explain: a comma-separated subset of the suite, or all")
	size := flag.String("size", "small", "input size class: small or medium")
	sockets := flag.Int("sockets", 2, "sockets of the simulated machine")
	engineMode := flag.String("engine", "seq",
		"simulation engine: seq or pdes (byte-identical results)")
	topN := flag.Int("top", 10, "address buckets to show per table")
	htmlOut := flag.String("o", "", "also write the decomposition as an HTML artifact to this file")
	traceDir := flag.String("trace-out", "",
		"write a Perfetto counter-track timeline per benchmark under this directory")
	blockAddr := flag.String("block", "",
		"replay this cache block's flight-recorder timeline (hex or decimal address; requires a single -bench)")
	flag.Parse()

	subject, baseline, err := protocols.ParsePair(*pair)
	if err != nil {
		fatalf(2, "-explain: %v", err)
	}
	emode, err := machine.ParseEngineMode(*engineMode)
	if err != nil {
		fatalf(2, "-engine: %v", err)
	}
	if *sockets < 1 {
		fatalf(2, "-sockets must be positive, got %d", *sockets)
	}
	var entries []pbbs.Entry
	if *benchList == "all" {
		entries = pbbs.Suite
	} else {
		for _, name := range strings.Split(*benchList, ",") {
			e, err := pbbs.ByName(strings.TrimSpace(name))
			if err != nil {
				fatalf(2, "-bench: %v", err)
			}
			entries = append(entries, e)
		}
	}
	var block uint64
	if *blockAddr != "" {
		if len(entries) != 1 {
			fatalf(2, "-block requires a single -bench, got %d", len(entries))
		}
		block, err = strconv.ParseUint(*blockAddr, 0, 64)
		if err != nil {
			fatalf(2, "-block: %v", err)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf(2, "-trace-out: %v", err)
		}
	}

	cfg := topology.XeonGold6126(*sockets)
	block &^= cfg.BlockSize - 1
	lower := func(p core.Protocol) string { return strings.ToLower(p.String()) }
	lcfg := attrib.Config{}
	if *traceDir != "" {
		lcfg.SampleEvery = sampleEvery
	}

	var sections []telemetry.AttribSection
	for _, entry := range entries {
		n := entry.Small
		switch *size {
		case "small":
		case "medium":
			n = entry.Medium
		default:
			fatalf(2, "unknown size class %q", *size)
		}

		run := func(p core.Protocol) (bench.Result, *attrib.Ledger) {
			led := attrib.New(lcfg)
			res, err := bench.RunOneObservedOn(emode, cfg, p, entry, n, hlpl.DefaultOptions(),
				func(*machine.Machine) core.Sink { return led })
			if err != nil {
				fatalf(1, "%s under %s: %v", entry.Name, lower(p), err)
			}
			return res, led
		}
		subjRes, subjLed := run(subject)
		baseRes, baseLed := run(baseline)

		ex, err := attrib.Explain(lower(subject), subjLed, subjRes.Cycles,
			lower(baseline), baseLed, baseRes.Cycles)
		if err != nil {
			// A residue means the attribution does not sum to the
			// measurement — a bug, not a caveat.
			fatalf(1, "%s: %v", entry.Name, err)
		}

		fmt.Printf("== %s (%s, %d sockets, n=%d, %s engine) ==\n",
			entry.Name, cfg.Name, *sockets, n, emode)
		if err := ex.WriteText(os.Stdout, *topN); err != nil {
			fatalf(1, "%s: %v", entry.Name, err)
		}
		fmt.Println()
		sections = append(sections, telemetry.AttribSection{Benchmark: entry.Name, Ex: ex, TopN: *topN})

		if *blockAddr != "" {
			printBlock(block, lower(subject), subjLed, lower(baseline), baseLed)
		}
		if *traceDir != "" {
			path := filepath.Join(*traceDir, entry.Name+".attrib.trace.json")
			if err := writeTrace(path, entry.Name, lower(subject), subjLed, lower(baseline), baseLed); err != nil {
				fatalf(1, "-trace-out: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wardenlens: wrote %s\n", path)
		}
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatalf(1, "-o: %v", err)
		}
		title := fmt.Sprintf("wardenlens: %s (%s)", *pair, *size)
		if err := telemetry.WriteAttribHTML(f, title, sections); err != nil {
			f.Close()
			fatalf(1, "-o: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf(1, "-o: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wardenlens: wrote %s\n", *htmlOut)
	}
}

// printBlock replays one block's flight-recorder timeline under both
// protocols, annotating each transition with its PROTOCOL.md arc.
func printBlock(block uint64, subjName string, subj *attrib.Ledger, baseName string, base *attrib.Ledger) {
	for _, side := range []struct {
		name string
		led  *attrib.Ledger
	}{{subjName, subj}, {baseName, base}} {
		fmt.Printf("-- block %#x under %s --\n", block, side.name)
		bl := side.led.Flight().Block(block)
		if bl == nil {
			fmt.Println("   no coherence activity recorded for this block")
			continue
		}
		fmt.Printf("   %d transactions, %d evictions, %d reconciles, %d invalidations, %d downgrades, sharer churn %d, final state %s\n",
			bl.Transactions, bl.Evictions, bl.Reconciles, bl.Invalidations, bl.Downgrades, bl.SharerChurn, bl.LastState)
		if bl.Dropped > 0 {
			fmt.Printf("   (ring kept the most recent %d transitions; %d older ones dropped)\n",
				len(bl.Timeline()), bl.Dropped)
		}
		for _, tr := range bl.Timeline() {
			who := fmt.Sprintf("t%d/c%d", tr.Thread, tr.Core)
			if tr.Thread < 0 {
				who = "system"
			}
			fmt.Printf("   cycle %8d  %-11s %-9s sharers %d→%d  owner %d→%d  lat %3d  %s\n",
				tr.Cycle, tr.Kind, who, tr.SharersBefore, tr.SharersAfter,
				tr.OwnerBefore, tr.OwnerAfter, tr.Latency, attrib.Annotate(tr))
		}
	}
	fmt.Println()
}

// writeTrace renders the two protocols' attribution series as Perfetto
// counter tracks in one trace_event document.
func writeTrace(path, benchName, subjName string, subj *attrib.Ledger, baseName string, base *attrib.Ledger) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = telemetry.WriteCounterTrace(f, "wardenlens "+benchName, []telemetry.CounterTrack{
		{Name: subjName, TID: 0, Samples: subj.Samples()},
		{Name: baseName, TID: 1, Samples: base.Samples()},
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
