// Command wardendiff compares performance snapshots from the perfdb
// history store and exits non-zero on regression — the CI perf gate.
//
// Usage:
//
//	wardendiff -history results/history.jsonl
//	    compare the last two snapshots in the history
//	wardendiff -history results/history.jsonl -baseline perf/baseline.jsonl
//	    compare the history's latest snapshot against the committed
//	    baseline (latest baseline snapshot with a matching fingerprint)
//	wardendiff -history h.jsonl -run-a 20260805T120000-1 -run-b 20260805T130000-9
//	    compare two specific run ids from the history
//
// Simulated cycles are deterministic — the same code and inputs produce
// identical counts on any host — so they gate at a tight threshold
// (-threshold, default 1%). Host wall-clock is machine-dependent; it is
// compared only with -wall, at its own threshold (-wall-threshold,
// default 25%) above a noise floor (-min-wall, default 0.5 s).
//
// Histories written by fleet workers (wardenfleet; internal/fleet) are
// accepted unchanged: their records carry an additive worker-provenance
// field that pairing and comparison ignore, and their fingerprints use the
// same derivation as single-process runs, so a distributed sweep gates
// against the same committed baselines.
//
// Exit status: 0 no regression, 1 regression detected, 2 usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"warden/internal/perfdb"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wardendiff: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	history := flag.String("history", "", "perfdb JSONL history file (required)")
	baseline := flag.String("baseline", "", "baseline JSONL file to gate against (default: previous snapshot in -history)")
	runA := flag.String("run-a", "", "base snapshot run id (from -history)")
	runB := flag.String("run-b", "", "new snapshot run id (from -history)")
	threshold := flag.Float64("threshold", perfdb.DefaultThresholds().CyclePct,
		"simulated-cycle regression threshold in percent")
	wall := flag.Bool("wall", false, "also gate on host wall-clock (same-machine comparisons only)")
	wallThreshold := flag.Float64("wall-threshold", perfdb.DefaultThresholds().WallPct,
		"wall-clock regression threshold in percent (with -wall)")
	minWall := flag.Float64("min-wall", perfdb.DefaultThresholds().MinWallSeconds,
		"ignore wall-clock deltas on steps faster than this many seconds (with -wall)")
	flag.Parse()

	if *history == "" {
		fail(2, "-history is required")
	}
	if (*runA == "") != (*runB == "") {
		fail(2, "-run-a and -run-b must be given together")
	}
	if *runA != "" && *baseline != "" {
		fail(2, "-run-a/-run-b and -baseline are mutually exclusive")
	}

	recs, err := perfdb.Read(*history)
	if err != nil {
		fail(2, "%v", err)
	}
	if len(recs) == 0 {
		fail(2, "%s: empty history", *history)
	}

	var base, next perfdb.Snapshot
	switch {
	case *runA != "":
		var ok bool
		if base, ok = perfdb.ByRunID(recs, *runA); !ok {
			fail(2, "run id %q not in %s", *runA, *history)
		}
		if next, ok = perfdb.ByRunID(recs, *runB); !ok {
			fail(2, "run id %q not in %s", *runB, *history)
		}
	case *baseline != "":
		var ok bool
		if next, ok = perfdb.LatestSnapshot(recs, ""); !ok {
			fail(2, "%s: no snapshots", *history)
		}
		baseRecs, err := perfdb.Read(*baseline)
		if err != nil {
			fail(2, "%v", err)
		}
		if base, ok = perfdb.LatestSnapshot(baseRecs, next.Fingerprint); !ok {
			fail(2, "%s: no snapshot with fingerprint %q", *baseline, next.Fingerprint)
		}
	default:
		snaps := perfdb.GroupSnapshots(recs)
		if len(snaps) < 2 {
			fail(2, "%s: need at least two snapshots to compare (have %d); see -baseline", *history, len(snaps))
		}
		base, next = snaps[len(snaps)-2], snaps[len(snaps)-1]
	}

	th := perfdb.Thresholds{
		CyclePct:       *threshold,
		CompareWall:    *wall,
		WallPct:        *wallThreshold,
		MinWallSeconds: *minWall,
	}
	deltas := perfdb.Compare(base, next, th)
	perfdb.WriteReport(os.Stdout, base, next, deltas)
	if perfdb.HasRegression(deltas) {
		fmt.Fprintln(os.Stderr, "wardendiff: performance regression detected")
		os.Exit(1)
	}
	fmt.Println("no regression")
}
