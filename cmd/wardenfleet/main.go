// Command wardenfleet runs the distributed sweep fabric: a coordinator
// service that shards experiment sweeps into per-configuration work units,
// workers that execute them, and a submit/query client — all speaking
// plain JSON over HTTP (see internal/fleet).
//
// Usage:
//
//	wardenfleet -coordinator -addr :9090 -cache perf/fleet-cache.jsonl
//	wardenfleet -worker -join http://host:9090 -name w1
//	wardenfleet -submit -join http://host:9090 -benchmarks fib,msort -size small
//	wardenfleet -submit -join http://host:9090 -benchmarks fib,msort -trace-out sweep.trace.json.gz
//	wardenfleet -local -benchmarks fib,msort -size small
//
// The coordinator leases units to workers under a TTL: workers heartbeat
// while executing, expired leases are requeued with exponential backoff
// and jitter, and units that keep failing are quarantined as poison after
// -max-attempts. Results are memoized in a content-addressed cache keyed
// by config fingerprint (persisted with -cache), so resubmitting any
// previously-run sweep completes instantly without executing a simulation
// — across clients and coordinator restarts. Simulations are
// bit-reproducible, which makes the sharded sweep's output byte-identical
// to the sequential -local reference.
//
// -submit follows the job's SSE event feed for live per-unit progress on
// stderr (stdout stays byte-comparable with -local), and with -trace-out
// roots a W3C trace through every hop — coordinator job/unit/attempt
// spans, worker execution, PDES epochs — written as Perfetto trace_event
// JSON (.gz by suffix; open at ui.perfetto.dev, check with wardenreport
// -validate). Exit codes are scriptable: 0 done, 1 settled with poisoned
// units, 2 bad request, 3 transport trouble.
//
// The coordinator also serves the observability plane on the same port:
// Prometheus metrics at /metrics (queue depth, active leases, retries,
// cache hit/miss, per-worker throughput, span-duration histograms), the
// run registry at /runs, and net/http/pprof. All three long-running modes
// shut down gracefully on SIGINT/SIGTERM, draining in-flight HTTP
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"warden/internal/fleet"
	"warden/internal/obs"
	"warden/internal/span"
	"warden/internal/trace"
)

func main() {
	coordinator := flag.Bool("coordinator", false, "run the coordinator service")
	worker := flag.Bool("worker", false, "run a worker against -join")
	submit := flag.Bool("submit", false, "submit a sweep to -join, wait, and print its results")
	local := flag.Bool("local", false, "run the sweep sequentially in-process (the reference a fleet run must match)")

	addr := flag.String("addr", ":9090", "coordinator listen address")
	join := flag.String("join", "http://127.0.0.1:9090", "coordinator base URL for -worker and -submit")
	name := flag.String("name", "", "worker name (defaults to a coordinator-assigned one)")
	attribFlag := flag.Bool("attrib", true,
		"worker: attach the cycle-attribution ledger to every unit and ship its summary in the perfdb record (pure observation; a reconciliation residue fails the unit)")
	poll := flag.Duration("poll", 200*time.Millisecond, "worker idle poll interval / submit status poll interval")

	cache := flag.String("cache", "", "coordinator: persist the content-addressed result cache to this JSONL file")
	history := flag.String("history", "", "coordinator: append worker perfdb records to this JSONL history file (see wardendiff)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "coordinator: lease TTL workers must heartbeat within")
	maxAttempts := flag.Int("max-attempts", 4, "coordinator: failures before a unit is quarantined as poison")

	traceOut := flag.String("trace-out", "", "submit: write the job's Perfetto trace_event JSON to this file (.gz compresses) and sample worker spans")

	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names (empty = full PBBS suite)")
	protocolsFlag := flag.String("protocols", "", "comma-separated protocol names (empty = mesi,warden)")
	machineFlag := flag.String("machine", "", "topology preset (empty = xeon-gold-6126-2s)")
	sizeFlag := flag.String("size", "", "input size class: small or medium (empty = small)")
	engineFlag := flag.String("engine", "", "simulation engine: seq or pdes (empty = seq)")

	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, or error")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenfleet: -log-level: %v\n", err)
		os.Exit(2)
	}

	modes := 0
	for _, m := range []bool{*coordinator, *worker, *submit, *local} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "wardenfleet: pick exactly one of -coordinator, -worker, -submit, -local")
		os.Exit(2)
	}

	spec := fleet.SweepSpec{
		Benchmarks: splitList(*benchmarks),
		Protocols:  splitList(*protocolsFlag),
		Machine:    *machineFlag,
		Size:       *sizeFlag,
		Engine:     *engineFlag,
	}

	// Long-running modes live under a signal context: the first
	// SIGINT/SIGTERM starts a graceful drain, a second one kills the
	// process the default way.
	ctx, stop := obs.SignalContext(context.Background())
	defer stop()

	switch {
	case *coordinator:
		c, err := fleet.NewCoordinator(fleet.Options{
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *maxAttempts,
			CachePath:   *cache,
			HistoryPath: *history,
			Registry:    obs.NewRegistry(),
			Log:         logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}
		logger.Info("coordinator listening", "addr", *addr,
			"cache", *cache, "cached_results", c.Cache().Len(),
			"endpoints", "/jobs /queue /fleet/* /metrics /runs /healthz /debug/pprof/")
		if err := fleet.Serve(ctx, *addr, c, 5*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}

	case *worker:
		w := &fleet.Worker{
			Coordinator:  &fleet.Client{Base: *join},
			Name:         *name,
			PollInterval: *poll,
			Attrib:       *attribFlag,
			Log:          logger,
		}
		if err := w.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}

	case *submit:
		client := &fleet.Client{Base: *join}
		// The submission roots a trace; its sampled flag — set iff the
		// caller asked for a trace file — is what makes workers collect
		// execute and PDES epoch spans.
		sctx := span.NewContext(nil, *traceOut != "")
		st, err := client.SubmitTraced(spec, sctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(fleet.SubmitExitCode(st, err))
		}
		logger.Info("job submitted", "job", st.ID, "units", st.Units,
			"cached", st.CacheHits, "trace", sctx.TraceID)
		st, err = fleet.WatchJob(ctx, client, st.ID, *poll, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(fleet.SubmitExitCode(st, err))
		}
		if st.State != "done" {
			// A settled-but-failed job is its own exit code (1): the
			// poisoned units are listed so the failure is actionable, and
			// scripts can distinguish it from transport trouble (3).
			fmt.Fprintf(os.Stderr, "wardenfleet: job %s %s (%d poisoned unit(s), %d retries)\n",
				st.ID, st.State, st.Poisoned, st.Retries)
			for _, e := range st.Errors {
				fmt.Fprintf(os.Stderr, "wardenfleet:   poisoned %s\n", e)
			}
			os.Exit(fleet.SubmitExitCode(st, nil))
		}
		results, err := client.Results(st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(fleet.SubmitExitCode(st, err))
		}
		if err := fleet.WriteResultsTable(os.Stdout, results); err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}
		// The summary goes to stderr so stdout stays byte-comparable with
		// -local output; CI greps "executed 0" here to prove a resubmitted
		// sweep was served entirely from the cache.
		fmt.Fprintf(os.Stderr, "wardenfleet: job %s done: %d units, executed %d, cache hits %d, coalesced %d, retries %d\n",
			st.ID, st.Units, st.Executed, st.CacheHits, st.Coalesced, st.Retries)
		if *traceOut != "" {
			if err := writeTrace(client, st.ID, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
				os.Exit(fleet.ExitTransport)
			}
			fmt.Fprintf(os.Stderr, "wardenfleet: wrote trace %s\n", *traceOut)
		}

	case *local:
		results, err := fleet.RunLocal(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}
		if err := fleet.WriteResultsTable(os.Stdout, results); err != nil {
			fmt.Fprintf(os.Stderr, "wardenfleet: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace fetches a job's Perfetto trace and writes it to path,
// gzip-compressing when the name ends in .gz.
func writeTrace(client *fleet.Client, id, path string) error {
	b, err := client.Trace(id)
	if err != nil {
		return err
	}
	f, err := trace.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// splitList parses a comma-separated flag into a name list; empty input
// means nil (the spec's defaults).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
