// Command wardenreport renders a self-contained static HTML report for a
// telemetry-observed benchmark run, or validates a Perfetto trace written by
// wardenbench -trace-out.
//
// Usage:
//
//	wardenreport -benchmark primes -o primes.html            # WARDen-vs-MESI pair
//	wardenreport -benchmark dedup -protocol warden -o d.html # single run
//	wardenreport -benchmark primes -trace-out traces -o p.html
//	wardenreport -validate results/traces/primes_warden_xeon-gold-6126-2s_10000.trace.json
//
// Run mode simulates the benchmark with the full telemetry capture attached
// (cycle windows, phase accounting, sharing heatmap) and writes one HTML
// document with inline SVG sparklines and per-phase breakdown tables; with
// -protocol mesi,warden (the default) the MESI baseline and WARDen run are
// rendered side by side with a comparison header. Any registered protocols
// work, e.g. -protocol mesi,sisd. -trace-out DIR additionally writes each
// run's Perfetto timeline.
//
// Validate mode parses a trace_event JSON file, checks it is well-formed
// (per-track monotonic timestamps, balanced and name-matched B/E pairs,
// non-negative durations), and prints its shape; a malformed trace exits
// non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/protocols"
	"warden/internal/telemetry"
	"warden/internal/topology"
	"warden/internal/trace"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark to run (see pbbs suite); required in run mode")
	protocol := flag.String("protocol", "mesi,warden", protocols.Usage())
	size := flag.String("size", "small", "input size class: small or medium")
	sockets := flag.Int("sockets", 2, "number of sockets in the simulated machine")
	out := flag.String("o", "report.html", "output HTML file")
	traceOut := flag.String("trace-out", "", "also write each run's Perfetto trace_event JSON under this directory")
	traceGz := flag.Bool("trace-gz", false, "gzip-compress the Perfetto traces (suffix .gz); -validate reads both forms")
	window := flag.Uint64("window", 0, "telemetry sampling window width in simulated cycles (0 = default)")
	validate := flag.String("validate", "", "validate a Perfetto trace_event JSON file and print its shape (no simulation)")
	flag.Parse()

	if *validate != "" {
		if err := runValidate(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "wardenreport: %s: %v\n", *validate, err)
			os.Exit(1)
		}
		return
	}
	if *benchmark == "" {
		fmt.Fprintln(os.Stderr, "wardenreport: -benchmark is required (or use -validate)")
		os.Exit(2)
	}
	protos, err := protocols.Parse(*protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: -protocol: %v\n", err)
		os.Exit(2)
	}
	e, err := pbbs.ByName(*benchmark)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
		os.Exit(2)
	}
	n := e.Small
	if *size == "medium" {
		n = e.Medium
	} else if *size != "small" {
		fmt.Fprintf(os.Stderr, "wardenreport: unknown size class %q\n", *size)
		os.Exit(2)
	}
	cfg := topology.XeonGold6126(*sockets)

	var runs []*telemetry.RunReport
	for _, proto := range protos {
		rep, err := observe(cfg, proto, e, n, *size, *window, *traceOut, *traceGz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
			os.Exit(1)
		}
		runs = append(runs, rep)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("%s on %s (%s)", e.Name, cfg.Name, *size)
	werr := telemetry.WriteHTML(f, title, runs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %s: %v\n", *out, werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wardenreport: wrote %s\n", *out)
}

// observe runs one simulation with the telemetry capture attached and
// returns its report view.
func observe(cfg topology.Config, proto core.Protocol, e pbbs.Entry, n int, sizeLabel string, window uint64, traceDir string, traceGz bool) (*telemetry.RunReport, error) {
	tcfg := telemetry.Config{Topology: cfg, WindowCycles: window}
	var traceF io.WriteCloser
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(traceDir, fmt.Sprintf("%s_%s.trace.json", e.Name, strings.ToLower(proto.String())))
		if traceGz {
			path += ".gz"
		}
		var err error
		traceF, err = trace.Create(path)
		if err != nil {
			return nil, err
		}
		tcfg.Trace = traceF
	}
	cap := telemetry.New(tcfg)
	res, err := bench.RunOneObserved(cfg, proto, e, n, hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return cap })
	if cerr := cap.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if traceF != nil {
		if cerr := traceF.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	return &telemetry.RunReport{
		Benchmark: e.Name,
		Protocol:  proto.String(),
		Size:      sizeLabel,
		Machine:   cfg.Name,
		Cycles:    res.Cycles,
		Counters:  res.Counters,
		Capture:   cap,
	}, nil
}

// runValidate checks one Perfetto trace file and prints its shape. Gzip
// traces are detected by magic bytes and decompressed transparently.
func runValidate(path string) error {
	f, err := trace.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := telemetry.ValidatePerfetto(f)
	if err != nil {
		return err
	}
	fmt.Printf("valid trace: %d events (%d slices, %d instants), %d phase pairs, max ts %.0f cycles\n",
		st.Events, st.Slices, st.Instants, st.PhasePairs, st.MaxTS)
	fmt.Printf("coherence events: %d inside a phase, %d outside\n", st.InPhase, st.OutOfPhase)
	names := make([]string, 0, len(st.PhaseNames))
	for name := range st.PhaseNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  phase %-16s x%d\n", name, st.PhaseNames[name])
	}
	return nil
}
