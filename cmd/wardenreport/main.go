// Command wardenreport renders a self-contained static HTML report for a
// telemetry-observed benchmark run, or validates a Perfetto trace written by
// wardenbench -trace-out.
//
// Usage:
//
//	wardenreport -benchmark primes -o primes.html            # WARDen-vs-MESI pair
//	wardenreport -benchmark dedup -protocol warden -o d.html # single run
//	wardenreport -benchmark primes -trace-out traces -o p.html
//	wardenreport -validate results/traces/primes_warden_xeon-gold-6126-2s_10000.trace.json
//	wardenreport -metrics http://host:9090/metrics -o obs.html
//	wardenreport -metrics scrape.txt -o obs.html
//
// Run mode simulates the benchmark with the full telemetry capture attached
// (cycle windows, phase accounting, sharing heatmap) and writes one HTML
// document with inline SVG sparklines and per-phase breakdown tables; with
// -protocol mesi,warden (the default) the MESI baseline and WARDen run are
// rendered side by side with a comparison header. Any registered protocols
// work, e.g. -protocol mesi,sisd. -trace-out DIR additionally writes each
// run's Perfetto timeline.
//
// Validate mode parses a trace_event JSON file, checks it is well-formed
// (per-track monotonic timestamps, balanced and name-matched B/E pairs,
// non-negative durations), and prints its shape; a malformed trace exits
// non-zero.
//
// Metrics mode renders a coordinator's operational state as HTML without
// simulating anything: it parses a Prometheus text scrape — a live
// /metrics URL or a saved file — and reports the warden_fleet_span_seconds_*
// duration histograms plus the memo and fleet result-cache hit-rates.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/protocols"
	"warden/internal/telemetry"
	"warden/internal/topology"
	"warden/internal/trace"
)

func main() {
	benchmark := flag.String("benchmark", "", "benchmark to run (see pbbs suite); required in run mode")
	protocol := flag.String("protocol", "mesi,warden", protocols.Usage())
	size := flag.String("size", "small", "input size class: small or medium")
	sockets := flag.Int("sockets", 2, "number of sockets in the simulated machine")
	out := flag.String("o", "report.html", "output HTML file")
	traceOut := flag.String("trace-out", "", "also write each run's Perfetto trace_event JSON under this directory")
	traceGz := flag.Bool("trace-gz", false, "gzip-compress the Perfetto traces (suffix .gz); -validate reads both forms")
	window := flag.Uint64("window", 0, "telemetry sampling window width in simulated cycles (0 = default)")
	validate := flag.String("validate", "", "validate a Perfetto trace_event JSON file and print its shape (no simulation)")
	metrics := flag.String("metrics", "",
		"render a host-observability report (fleet span histograms, cache hit-rates) from a Prometheus text scrape: a file path or an http(s) /metrics URL (no simulation)")
	flag.Parse()

	if *validate != "" {
		if err := runValidate(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "wardenreport: %s: %v\n", *validate, err)
			os.Exit(1)
		}
		return
	}
	if *metrics != "" {
		if err := runMetrics(*metrics, *out); err != nil {
			fmt.Fprintf(os.Stderr, "wardenreport: %s: %v\n", *metrics, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wardenreport: wrote %s\n", *out)
		return
	}
	if *benchmark == "" {
		fmt.Fprintln(os.Stderr, "wardenreport: -benchmark is required (or use -validate)")
		os.Exit(2)
	}
	protos, err := protocols.Parse(*protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: -protocol: %v\n", err)
		os.Exit(2)
	}
	e, err := pbbs.ByName(*benchmark)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
		os.Exit(2)
	}
	n := e.Small
	if *size == "medium" {
		n = e.Medium
	} else if *size != "small" {
		fmt.Fprintf(os.Stderr, "wardenreport: unknown size class %q\n", *size)
		os.Exit(2)
	}
	cfg := topology.XeonGold6126(*sockets)

	var runs []*telemetry.RunReport
	for _, proto := range protos {
		rep, err := observe(cfg, proto, e, n, *size, *window, *traceOut, *traceGz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
			os.Exit(1)
		}
		runs = append(runs, rep)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %v\n", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("%s on %s (%s)", e.Name, cfg.Name, *size)
	werr := telemetry.WriteHTML(f, title, runs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "wardenreport: %s: %v\n", *out, werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wardenreport: wrote %s\n", *out)
}

// observe runs one simulation with the telemetry capture attached and
// returns its report view.
func observe(cfg topology.Config, proto core.Protocol, e pbbs.Entry, n int, sizeLabel string, window uint64, traceDir string, traceGz bool) (*telemetry.RunReport, error) {
	tcfg := telemetry.Config{Topology: cfg, WindowCycles: window}
	var traceF io.WriteCloser
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(traceDir, fmt.Sprintf("%s_%s.trace.json", e.Name, strings.ToLower(proto.String())))
		if traceGz {
			path += ".gz"
		}
		var err error
		traceF, err = trace.Create(path)
		if err != nil {
			return nil, err
		}
		tcfg.Trace = traceF
	}
	cap := telemetry.New(tcfg)
	res, err := bench.RunOneObserved(cfg, proto, e, n, hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return cap })
	if cerr := cap.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if traceF != nil {
		if cerr := traceF.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	return &telemetry.RunReport{
		Benchmark: e.Name,
		Protocol:  proto.String(),
		Size:      sizeLabel,
		Machine:   cfg.Name,
		Cycles:    res.Cycles,
		Counters:  res.Counters,
		Capture:   cap,
	}, nil
}

// runMetrics renders the host-observability report: parse a Prometheus
// text scrape (a saved file or a live /metrics endpoint), fold the fleet
// span-duration histograms and the memo/fleet cache counters into views,
// and write them as a self-contained HTML document.
func runMetrics(source, out string) error {
	var r io.ReadCloser
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		resp, err := http.Get(source)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET %s: %s", source, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(source)
		if err != nil {
			return err
		}
		r = f
	}
	fams, err := obs.ParseText(r)
	r.Close()
	if err != nil {
		return err
	}

	view := &telemetry.ObsView{Source: source}
	for _, f := range obs.HistogramFamilies(fams, "warden_fleet_span_seconds_") {
		h := telemetry.HistView{Name: f.Name}
		var prev uint64
		for _, m := range f.Metrics {
			switch m.Suffix {
			case "_bucket":
				// Exposition buckets are cumulative; the table shows each
				// bucket's own observations.
				c := uint64(m.Value)
				h.Rows = append(h.Rows, telemetry.HistRow{LE: obs.LabelValue(m, "le"), Count: c - prev})
				prev = c
			case "_sum":
				h.Sum = m.Value
			case "_count":
				h.Count = uint64(m.Value)
			}
		}
		view.Hists = append(view.Hists, h)
	}
	for _, c := range []struct{ name, prefix string }{
		{"simulation memo", "warden_memo"},
		{"fleet result cache", "warden_fleet_cache"},
	} {
		if s, ok := obs.CacheStatsFrom(fams, c.prefix); ok {
			view.Caches = append(view.Caches, telemetry.CacheView{
				Name: c.name, Hits: s.Hits, Misses: s.Misses, Entries: uint64(s.Entries)})
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	werr := telemetry.WriteObsHTML(f, "fleet observability: "+source, view)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// runValidate checks one Perfetto trace file and prints its shape. Gzip
// traces are detected by magic bytes and decompressed transparently.
func runValidate(path string) error {
	f, err := trace.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := telemetry.ValidatePerfetto(f)
	if err != nil {
		return err
	}
	fmt.Printf("valid trace: %d events (%d slices, %d instants), %d phase pairs, max ts %.0f cycles\n",
		st.Events, st.Slices, st.Instants, st.PhasePairs, st.MaxTS)
	fmt.Printf("coherence events: %d inside a phase, %d outside\n", st.InPhase, st.OutOfPhase)
	names := make([]string, 0, len(st.PhaseNames))
	for name := range st.PhaseNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  phase %-16s x%d\n", name, st.PhaseNames[name])
	}
	return nil
}
