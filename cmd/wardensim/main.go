// Command wardensim runs one benchmark on one simulated machine and prints
// detailed architectural statistics — the tool for exploring a single
// configuration rather than regenerating the paper's figures.
//
// Usage:
//
//	wardensim -bench msort -protocol warden -sockets 2 -size 24000
//	wardensim -bench primes -protocol all -v
//	wardensim -bench msort -protocol mesi,sisd
//	wardensim -bench msort -engine pdes      # parallel engine, same results
//	wardensim -bench msort -serve :8080 -serve-linger 30s
//
// With -serve ADDR the process exposes Prometheus metrics (/metrics,
// including live simulated-cycle progress), a JSON run registry (/runs),
// and net/http/pprof while simulating; -serve-linger keeps the server up
// after the runs finish. Serving is host-side only and never changes the
// simulated results.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"warden/internal/bench"
	"warden/internal/engine"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/protocols"
	"warden/internal/stats"
	"warden/internal/topology"
)

func main() {
	name := flag.String("bench", "primes", "benchmark name (see -list)")
	protocol := flag.String("protocol", "mesi,warden", protocols.Usage())
	sockets := flag.Int("sockets", 2, "socket count")
	cores := flag.Int("cores", 0, "cores per socket (0 = Table 2 default of 12)")
	size := flag.Int("size", 0, "input size (0 = medium preset)")
	disagg := flag.Bool("disaggregated", false, "use the disaggregated 2-node topology")
	engineMode := flag.String("engine", "seq",
		"simulation engine: seq (single-goroutine) or pdes (conservative parallel; byte-identical results)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print message-type breakdown")
	serve := flag.String("serve", "",
		"serve /metrics, /runs, and /debug/pprof on this address while simulating (e.g. :8080)")
	serveLinger := flag.Duration("serve-linger", 0,
		"with -serve, keep serving this long after the simulations finish")
	logLevel := flag.String("log-level", "info",
		"slog level for lifecycle and request logs: debug, info, warn, or error")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardensim: -log-level: %v\n", err)
		os.Exit(2)
	}
	if *serveLinger != 0 && *serve == "" {
		fmt.Fprintln(os.Stderr, "wardensim: -serve-linger requires -serve")
		os.Exit(2)
	}
	emode, err := machine.ParseEngineMode(*engineMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardensim: -engine: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range pbbs.Suite {
			fmt.Printf("%-14s small=%-8d medium=%d\n", e.Name, e.Small, e.Medium)
		}
		return
	}
	entry, err := pbbs.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wardensim:", err)
		os.Exit(2)
	}
	if *size == 0 {
		*size = entry.Medium
	}
	cfg := topology.XeonGold6126(*sockets)
	if *disagg {
		cfg = topology.Disaggregated()
	}
	if *cores > 0 {
		cfg.CoresPerSocket = *cores
	}

	protos, err := protocols.Parse(*protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardensim: -protocol: %v\n", err)
		os.Exit(2)
	}

	// Optional observability plane: host-side only, so the printed
	// statistics are identical with or without it.
	var probe *engine.Probe
	var registry *obs.Registry
	var shutdown func()
	if *serve != "" {
		probe = &engine.Probe{}
		registry = obs.NewRegistry()
		srv := &obs.Server{Registry: registry, Probe: probe.Sample, Log: logger}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardensim: -serve: %v\n", err)
			os.Exit(2)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("observability server failed", "err", err)
			}
		}()
		logger.Info("observability server listening",
			"addr", ln.Addr().String(), "endpoints", "/metrics /runs /healthz /debug/pprof/")
		shutdown = func() {
			// SIGINT/SIGTERM during the lingering window cuts it short and
			// proceeds to the graceful drain, instead of killing the process
			// with scrapes mid-flight.
			ctx, stop := obs.SignalContext(context.Background())
			defer stop()
			if *serveLinger > 0 {
				logger.Info("simulations done; lingering for late scrapes", "linger", *serveLinger)
				obs.Linger(ctx, *serveLinger)
			}
			obs.Drain(hs, 5*time.Second, logger)
		}
	}

	results := make([]bench.Result, 0, len(protos))
	for _, p := range protos {
		fmt.Fprintf(os.Stderr, "... simulating %s/%v on %s (size %d)\n", entry.Name, p, cfg.Name, *size)
		var run *obs.Run
		if registry != nil {
			run = registry.NewRun("simulation", fmt.Sprintf("%s/%v/%s", entry.Name, p, cfg.Name),
				map[string]string{"benchmark": entry.Name, "protocol": p.String(), "machine": cfg.Name,
					"size": strconv.Itoa(*size)})
			run.Start()
		}
		res, err := bench.RunOneProbedOn(emode, cfg, p, entry, *size, hlpl.DefaultOptions(), probe)
		if run != nil {
			run.SetCounter("instructions", res.Counters.Instructions)
			run.SetCounter("messages", res.Counters.TotalMsgs())
			run.SetCounter("intersocket_flits", res.Counters.IntersocketFlits)
			run.Finish(res.Cycles, err)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardensim:", err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	defer func() {
		if shutdown != nil {
			shutdown()
		}
	}()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric")
	for _, r := range results {
		fmt.Fprintf(tw, "\t%v", r.Protocol)
	}
	fmt.Fprintln(tw)
	row := func(label string, f func(bench.Result) string) {
		fmt.Fprintf(tw, "%s", label)
		for _, r := range results {
			fmt.Fprintf(tw, "\t%s", f(r))
		}
		fmt.Fprintln(tw)
	}
	row("cycles", func(r bench.Result) string { return fmt.Sprintf("%d", r.Cycles) })
	row("instructions", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Instructions) })
	row("IPC", func(r bench.Result) string { return fmt.Sprintf("%.3f", r.IPC()) })
	row("loads", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Loads) })
	row("stores", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Stores) })
	row("atomics", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Atomics) })
	row("L1 hit rate", func(r bench.Result) string {
		if r.Counters.L1Accesses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(r.Counters.L1Hits)/float64(r.Counters.L1Accesses))
	})
	row("dir accesses", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.DirAccesses) })
	row("DRAM accesses", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.DRAMAccesses) })
	row("invalidations", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Invalidations) })
	row("downgrades", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.Downgrades) })
	row("inv+dg per kilo-instr", func(r bench.Result) string { return fmt.Sprintf("%.2f", r.Counters.InvDowngradesPerKiloInstr()) })
	row("total messages", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.TotalMsgs()) })
	row("intersocket flits", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.IntersocketFlits) })
	row("WARD accesses", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.WardAccesses) })
	row("WARD access share", func(r bench.Result) string {
		memOps := r.Counters.Loads + r.Counters.Stores
		if memOps == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(r.Counters.WardAccesses)/float64(memOps))
	})
	row("region adds/removes", func(r bench.Result) string {
		return fmt.Sprintf("%d/%d", r.Counters.RegionAdds, r.Counters.RegionRemoves)
	})
	row("reconciled blocks", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.ReconciledBlocks) })
	row("false/true share merges", func(r bench.Result) string {
		return fmt.Sprintf("%d/%d", r.Counters.FalseShareMerges, r.Counters.TrueShareMerges)
	})
	row("store-buffer stalls", func(r bench.Result) string { return fmt.Sprintf("%d", r.Counters.StoreBufferStalls) })
	row("energy total (mJ)", func(r bench.Result) string { return fmt.Sprintf("%.3f", r.Energy.Total*1e3) })
	row("energy interconnect (mJ)", func(r bench.Result) string { return fmt.Sprintf("%.3f", r.Energy.Interconnect*1e3) })
	tw.Flush()

	if len(results) == 2 {
		// Pairwise footer: first protocol is the baseline, second the
		// subject (the default "mesi,warden" preserves the old reading).
		c := bench.Comparison{Name: entry.Name, MESI: results[0], WARDen: results[1]}
		fmt.Printf("\nspeedup %.3fx, interconnect savings %.1f%%, total energy savings %.1f%%, IPC %+.1f%%\n",
			c.Speedup(), c.InterconnectSavings(), c.TotalEnergySavings(), c.IPCImprovement())
	}
	if *verbose {
		fmt.Println("\nmessages by type:")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "type")
		for _, r := range results {
			fmt.Fprintf(tw, "\t%v\t(x-socket)", r.Protocol)
		}
		fmt.Fprintln(tw)
		for t := 0; t < stats.NumMsgTypes; t++ {
			fmt.Fprintf(tw, "%v", stats.MsgType(t))
			for _, r := range results {
				fmt.Fprintf(tw, "\t%d\t%d", r.Counters.Msgs[t], r.Counters.IntersocketMsgs[t])
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}
