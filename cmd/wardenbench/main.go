// Command wardenbench regenerates the paper's evaluation artifacts (Table 1
// and Figures 7–12) on the simulator, plus the ablation studies described
// in DESIGN.md.
//
// Usage:
//
//	wardenbench -experiment all              # everything, medium inputs
//	wardenbench -experiment fig8 -size small # one figure, quick inputs
//	wardenbench -experiment ablations
//	wardenbench -parallel 1                  # force sequential simulation
//	wardenbench -timing BENCH_runner.json    # record wall-clock per step
//	wardenbench -telemetry results           # per-run windowed dumps
//	wardenbench -telemetry results -trace-out results/traces
//
// Simulations fan out across host cores (-parallel 0, the default, uses
// GOMAXPROCS workers; each simulation is internally deterministic), and
// the printed tables are byte-identical at every parallelism level. The
// -timing file records host wall-clock and newly-simulated cycles per
// experiment so performance can be compared across runs, e.g.
// -parallel 0 vs -parallel 1 on a multi-core host.
//
// With -telemetry DIR each uncached simulation additionally writes its
// cycle-windowed counter series (.windows.csv/.windows.jsonl), phase table
// (.phases.csv), and sharing heatmap (.heatmap.csv) under DIR; -trace-out
// DIR adds a Chrome trace_event/Perfetto timeline (.trace.json) per run,
// viewable at https://ui.perfetto.dev. Telemetry never perturbs a
// measurement: the printed tables stay byte-identical with or without it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"warden/internal/bench"
	"warden/internal/runner"
	"warden/internal/topology"
)

// stepTiming is one experiment's entry in the -timing report.
type stepTiming struct {
	Experiment      string  `json:"experiment"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimulatedCycles uint64  `json:"simulated_cycles"` // newly simulated (memo hits add nothing)
	SimulatedRuns   uint64  `json:"simulated_runs"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// timingReport is the schema of the -timing JSON file.
type timingReport struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallel    int          `json:"parallel"`
	Size        string       `json:"size"`
	Experiments []stepTiming `json:"experiments"`
	Total       stepTiming   `json:"total"`
}

func main() {
	experiment := flag.String("experiment", "all",
		"which artifact to regenerate: table1, table2, fig7, fig8, fig9, fig10, fig11, fig12, ablations, manysockets, events, or all")
	size := flag.String("size", "medium", "input size class: small or medium")
	quiet := flag.Bool("q", false, "suppress progress messages")
	parallel := flag.Int("parallel", 0,
		"max simulations running concurrently on the host; 0 = one per host core, 1 = sequential")
	timing := flag.String("timing", "",
		"write a JSON timing report (host wall-clock and simulated cycles per experiment) to this file")
	teleDir := flag.String("telemetry", "",
		"write per-run telemetry artifacts (windowed series, phase tables, sharing heatmaps) under this directory")
	traceDir := flag.String("trace-out", "",
		"with -telemetry, also write a Perfetto trace_event JSON timeline per run under this directory")
	window := flag.Uint64("window", 0,
		"telemetry sampling window width in simulated cycles (0 = default)")
	flag.Parse()

	var sizes bench.SizeClass
	switch *size {
	case "small":
		sizes = bench.Small
	case "medium":
		sizes = bench.Medium
	default:
		fmt.Fprintf(os.Stderr, "wardenbench: unknown size class %q\n", *size)
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "wardenbench: -parallel must be non-negative, got %d\n", *parallel)
		os.Exit(2)
	}
	if *timing != "" {
		// Fail on an unwritable -timing path before simulating for minutes,
		// not after.
		f, err := os.Create(*timing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: -timing: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	if *traceDir != "" && *teleDir == "" {
		fmt.Fprintln(os.Stderr, "wardenbench: -trace-out requires -telemetry")
		os.Exit(2)
	}
	r := bench.NewRunner(sizes)
	r.SetParallel(*parallel)
	if !*quiet {
		r.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "... %s\n", msg) }
	}
	var artifacts runner.Artifacts
	if *teleDir != "" {
		r.SetTelemetry(bench.TelemetryConfig{
			Dir:          *teleDir,
			TraceDir:     *traceDir,
			WindowCycles: *window,
			Artifacts:    &artifacts,
		})
	}

	out := os.Stdout
	report := timingReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Parallel: r.Parallel(), Size: *size}
	start := time.Now()
	run := func(name string, fn func() error) {
		stepStart := time.Now()
		cyc0, runs0 := r.SimulatedCycles()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
		cyc1, runs1 := r.SimulatedCycles()
		report.Experiments = append(report.Experiments,
			newStepTiming(name, time.Since(stepStart), cyc1-cyc0, runs1-runs0))
	}

	iters := 20000
	if sizes == bench.Small {
		iters = 2000
	}

	steps := map[string]func() error{
		"table1":      func() error { return bench.Table1(out, iters) },
		"table2":      func() error { bench.Table2(out); return nil },
		"fig7":        func() error { return bench.Figure7(out, r) },
		"fig8":        func() error { return bench.Figure8(out, r) },
		"fig9":        func() error { return bench.Figure9(out, r) },
		"fig10":       func() error { return bench.Figure10(out, r) },
		"fig11":       func() error { return bench.Figure11(out, r) },
		"fig12":       func() error { return bench.Figure12(out, r) },
		"ablations":   func() error { return bench.Ablations(out, r) },
		"manysockets": func() error { return bench.ManySockets(out, r) },
		// events profiles the deep-dive benchmark subset through the Metrics
		// event sink (latency histograms, sharer distributions, per-block
		// contention). It is opt-in rather than part of "all": the sink runs
		// are diagnostic, not paper artifacts.
		"events": func() error { return bench.EventsReport(out, topology.XeonGold6126(1), sizes, nil, 10) },
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations", "manysockets"} {
			run(name, steps[name])
		}
	} else {
		fn, ok := steps[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "wardenbench: unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		run(*experiment, fn)
	}

	if *teleDir != "" {
		fmt.Fprintf(os.Stderr, "wardenbench: wrote %d telemetry artifacts:\n", artifacts.Len())
		for _, p := range artifacts.Paths() {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
	}

	if *timing != "" {
		cycles, runs := r.SimulatedCycles()
		report.Total = newStepTiming("total", time.Since(start), cycles, runs)
		if err := writeTiming(*timing, report); err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wardenbench: %.1fs wall, %d simulations, %.0f simulated cycles/sec -> %s\n",
			report.Total.WallSeconds, runs, report.Total.CyclesPerSecond, *timing)
	}
}

func newStepTiming(name string, wall time.Duration, cycles, runs uint64) stepTiming {
	s := stepTiming{
		Experiment:      name,
		WallSeconds:     wall.Seconds(),
		SimulatedCycles: cycles,
		SimulatedRuns:   runs,
	}
	if s.WallSeconds > 0 {
		s.CyclesPerSecond = float64(cycles) / s.WallSeconds
	}
	return s
}

func writeTiming(path string, report timingReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
