// Command wardenbench regenerates the paper's evaluation artifacts (Table 1
// and Figures 7–12) on the simulator, plus the ablation studies described
// in DESIGN.md.
//
// Usage:
//
//	wardenbench -experiment all              # everything, medium inputs
//	wardenbench -experiment fig8 -size small # one figure, quick inputs
//	wardenbench -experiment ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"warden/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which artifact to regenerate: table1, table2, fig7, fig8, fig9, fig10, fig11, fig12, ablations, manysockets, or all")
	size := flag.String("size", "medium", "input size class: small or medium")
	quiet := flag.Bool("q", false, "suppress progress messages")
	flag.Parse()

	var sizes bench.SizeClass
	switch *size {
	case "small":
		sizes = bench.Small
	case "medium":
		sizes = bench.Medium
	default:
		fmt.Fprintf(os.Stderr, "wardenbench: unknown size class %q\n", *size)
		os.Exit(2)
	}
	r := bench.NewRunner(sizes)
	if !*quiet {
		r.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "... %s\n", msg) }
	}

	out := os.Stdout
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	iters := 20000
	if sizes == bench.Small {
		iters = 2000
	}

	steps := map[string]func() error{
		"table1":      func() error { return bench.Table1(out, iters) },
		"table2":      func() error { bench.Table2(out); return nil },
		"fig7":        func() error { return bench.Figure7(out, r) },
		"fig8":        func() error { return bench.Figure8(out, r) },
		"fig9":        func() error { return bench.Figure9(out, r) },
		"fig10":       func() error { return bench.Figure10(out, r) },
		"fig11":       func() error { return bench.Figure11(out, r) },
		"fig12":       func() error { return bench.Figure12(out, r) },
		"ablations":   func() error { return bench.Ablations(out, r) },
		"manysockets": func() error { return bench.ManySockets(out, r) },
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations", "manysockets"} {
			run(name, steps[name])
		}
		return
	}
	fn, ok := steps[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "wardenbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run(*experiment, fn)
}
