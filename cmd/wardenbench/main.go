// Command wardenbench regenerates the paper's evaluation artifacts (Table 1
// and Figures 7–12) on the simulator, plus the ablation studies described
// in DESIGN.md.
//
// Usage:
//
//	wardenbench -experiment all              # everything, medium inputs
//	wardenbench -experiment fig8 -size small # one figure, quick inputs
//	wardenbench -experiment ablations
//	wardenbench -parallel 1                  # force sequential simulation
//	wardenbench -engine pdes                 # parallel engine, same results
//	wardenbench -timing BENCH_runner.json    # record wall-clock per step
//	wardenbench -history results/history.jsonl  # append to the perf history
//	wardenbench -telemetry results           # per-run windowed dumps
//	wardenbench -telemetry results -trace-out results/traces
//	wardenbench -attrib results              # per-run attribution ledgers
//	wardenbench -serve :8080                 # live /metrics, /runs, pprof
//
// Simulations fan out across host cores (-parallel 0, the default, uses
// GOMAXPROCS workers; each simulation is internally deterministic), and
// the printed tables are byte-identical at every parallelism level.
// Orthogonally, -engine pdes parallelizes each simulation internally with
// the conservative parallel discrete-event engine; its results are
// byte-identical to the sequential engine's (see internal/engine). The
// -timing file records host wall-clock, simulated cycles, and host memory
// stats per experiment in the perfdb record schema; -history appends the
// same records to an append-only JSONL store keyed by config fingerprint
// and git revision, which `wardendiff` compares across runs as a
// regression gate.
//
// With -serve ADDR the process exposes its observability plane over HTTP
// while the sweep runs: Prometheus text metrics at /metrics (run states,
// live simulated-cycle progress from a lock-free engine probe, memo-cache
// hit rates, machine counters, Go runtime stats), a JSON run registry at
// /runs and /runs/{id} (including artifact paths), and net/http/pprof
// under /debug/pprof/. Serving is host-side only: a continuously scraped
// run is byte-identical to an unobserved one (asserted by
// TestServeScrapeNonPerturbing). -serve-linger keeps the server up after
// the sweep finishes so late scrapes can collect final state; -log-level
// selects the slog level for lifecycle and request logging.
//
// With -telemetry DIR each uncached simulation additionally writes its
// cycle-windowed counter series (.windows.csv/.windows.jsonl), phase table
// (.phases.csv), and sharing heatmap (.heatmap.csv) under DIR; -trace-out
// DIR adds a Chrome trace_event/Perfetto timeline (.trace.json) per run,
// viewable at https://ui.perfetto.dev. With -attrib DIR each uncached run
// additionally writes its exact cycle-attribution ledger (.attrib.jsonl)
// and block flight records (.blocks.jsonl) — the inputs `wardenlens`
// decomposes protocol deltas with. Telemetry and attribution never perturb
// a measurement: the printed tables stay byte-identical with or without
// them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"warden/internal/bench"
	"warden/internal/engine"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/runner"
	"warden/internal/topology"
)

// timingReport is the schema of the -timing JSON file. Its step entries
// share the perfdb record schema, so BENCH_*.json snapshots and the
// -history store are mutually comparable.
type timingReport struct {
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Parallel    int             `json:"parallel"`
	Size        string          `json:"size"`
	RunID       string          `json:"run_id,omitempty"`
	GitRev      string          `json:"git_rev,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Experiments []perfdb.Record `json:"experiments"`
	Total       perfdb.Record   `json:"total"`
}

// gitRev best-effort identifies the code under measurement: the
// WARDEN_GIT_REV override (CI sets it from the checkout SHA), else `git
// rev-parse`, else empty.
func gitRev() string {
	if v := os.Getenv("WARDEN_GIT_REV"); v != "" {
		return v
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	experiment := flag.String("experiment", "all",
		"which artifact to regenerate: table1, table2, fig7, fig8, fig9, fig10, fig11, fig12, ablations, manysockets, threeway, engine-seq, engine-pdes, events, or all")
	size := flag.String("size", "medium", "input size class: small or medium")
	quiet := flag.Bool("q", false, "suppress progress messages")
	parallel := flag.Int("parallel", 0,
		"max simulations running concurrently on the host; 0 = one per host core, 1 = sequential")
	engineMode := flag.String("engine", "seq",
		"simulation engine: seq (single-goroutine) or pdes (conservative parallel; byte-identical results)")
	timing := flag.String("timing", "",
		"write a JSON timing report (host wall-clock, simulated cycles, and host memory stats per experiment) to this file")
	history := flag.String("history", "",
		"append the run's perfdb records to this JSONL history file (see wardendiff)")
	teleDir := flag.String("telemetry", "",
		"write per-run telemetry artifacts (windowed series, phase tables, sharing heatmaps) under this directory")
	attribDir := flag.String("attrib", "",
		"write per-run attribution artifacts (cycle-account ledgers, block flight records) under this directory")
	traceDir := flag.String("trace-out", "",
		"with -telemetry, also write a Perfetto trace_event JSON timeline per run under this directory")
	traceGz := flag.Bool("trace-gz", false,
		"gzip-compress the Perfetto timelines (suffix .gz); wardenreport -validate reads both forms")
	window := flag.Uint64("window", 0,
		"telemetry sampling window width in simulated cycles (0 = default)")
	serve := flag.String("serve", "",
		"serve /metrics, /runs, and /debug/pprof on this address while running (e.g. :8080)")
	serveLinger := flag.Duration("serve-linger", 0,
		"with -serve, keep serving this long after the experiments finish")
	logLevel := flag.String("log-level", "info",
		"slog level for lifecycle and request logs: debug, info, warn, or error")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenbench: -log-level: %v\n", err)
		os.Exit(2)
	}

	var sizes bench.SizeClass
	switch *size {
	case "small":
		sizes = bench.Small
	case "medium":
		sizes = bench.Medium
	default:
		fmt.Fprintf(os.Stderr, "wardenbench: unknown size class %q\n", *size)
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "wardenbench: -parallel must be non-negative, got %d\n", *parallel)
		os.Exit(2)
	}
	if *timing != "" {
		// Fail on an unwritable -timing path before simulating for minutes,
		// not after.
		f, err := os.Create(*timing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: -timing: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	if *traceDir != "" && *teleDir == "" {
		fmt.Fprintln(os.Stderr, "wardenbench: -trace-out requires -telemetry")
		os.Exit(2)
	}
	if *traceGz && *traceDir == "" {
		fmt.Fprintln(os.Stderr, "wardenbench: -trace-gz requires -trace-out")
		os.Exit(2)
	}
	if *serveLinger != 0 && *serve == "" {
		fmt.Fprintln(os.Stderr, "wardenbench: -serve-linger requires -serve")
		os.Exit(2)
	}

	emode, err := machine.ParseEngineMode(*engineMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wardenbench: -engine: %v\n", err)
		os.Exit(2)
	}

	r := bench.NewRunner(sizes)
	r.SetParallel(*parallel)
	r.Engine = emode
	if !*quiet {
		r.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "... %s\n", msg) }
	}
	var artifacts runner.Artifacts
	if wd, err := os.Getwd(); err == nil {
		artifacts.SetRoot(wd)
	}
	if *teleDir != "" {
		r.SetTelemetry(bench.TelemetryConfig{
			Dir:          *teleDir,
			TraceDir:     *traceDir,
			TraceGzip:    *traceGz,
			WindowCycles: *window,
			Artifacts:    &artifacts,
		})
	}
	if *attribDir != "" {
		r.SetAttrib(bench.AttribConfig{Dir: *attribDir, Artifacts: &artifacts})
	}

	// The observability plane: a run registry and a lock-free engine
	// probe, served over HTTP. Everything it reads is host-side, so the
	// sweep's simulated results are identical with or without it.
	var registry *obs.Registry
	var shutdown func()
	if *serve != "" {
		registry = obs.NewRegistry()
		probe := &engine.Probe{}
		r.SetProbe(probe)
		r.SetObserver(registry)
		srv := &obs.Server{
			Registry: registry,
			Probe:    probe.Sample,
			Sources:  []obs.Source{r},
			Log:      logger,
		}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: -serve: %v\n", err)
			os.Exit(2)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("observability server failed", "err", err)
			}
		}()
		logger.Info("observability server listening",
			"addr", ln.Addr().String(), "endpoints", "/metrics /runs /healthz /debug/pprof/")
		shutdown = func() {
			// SIGINT/SIGTERM during the lingering window cuts it short and
			// proceeds to the graceful drain, instead of killing the process
			// with scrapes mid-flight.
			ctx, stop := obs.SignalContext(context.Background())
			defer stop()
			if *serveLinger > 0 {
				logger.Info("experiments done; lingering for late scrapes", "linger", *serveLinger)
				obs.Linger(ctx, *serveLinger)
			}
			obs.Drain(hs, 5*time.Second, logger)
		}
	}

	runID := time.Now().UTC().Format("20060102T150405") + fmt.Sprintf("-%d", os.Getpid())
	rev := gitRev()
	// The engine mode joins the fingerprint only when it is not the default,
	// so the long-lived seq history remains comparable across this change.
	fingerprint := runner.Fingerprint("wardenbench", *experiment, *size)
	if emode != machine.EngineSequential {
		fingerprint = runner.Fingerprint("wardenbench", *experiment, *size, emode.String())
	}
	// stepEngine labels each record with the engine that actually ran it:
	// the engine-seq/engine-pdes timing steps pin their own mode regardless
	// of the global -engine selection.
	stepEngine := func(step string) string {
		switch step {
		case "engine-seq":
			return machine.EngineSequential.String()
		case "engine-pdes":
			return machine.EnginePDES.String()
		}
		return emode.String()
	}
	stamp := time.Now().UTC().Format(time.RFC3339)
	newRecord := func(step string, wall time.Duration, cycles, runs uint64, m0, m1 runtime.MemStats) perfdb.Record {
		rec := perfdb.Record{
			Schema:          perfdb.SchemaVersion,
			RunID:           runID,
			Time:            stamp,
			GitRev:          rev,
			Fingerprint:     fingerprint,
			Step:            step,
			Engine:          stepEngine(step),
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			SimulatedCycles: cycles,
			SimulatedRuns:   runs,
			WallSeconds:     wall.Seconds(),
			HostAllocs:      m1.Mallocs - m0.Mallocs,
			HostAllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
			HostHeapBytes:   m1.HeapAlloc,
		}
		if rec.WallSeconds > 0 {
			rec.CyclesPerSecond = float64(cycles) / rec.WallSeconds
		}
		return rec
	}

	out := os.Stdout
	report := timingReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), Parallel: r.Parallel(), Size: *size,
		RunID: runID, GitRev: rev, Fingerprint: fingerprint,
	}
	start := time.Now()
	var startMem runtime.MemStats
	runtime.ReadMemStats(&startMem)

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations", "manysockets",
			"threeway", "engine-seq", "engine-pdes"}
	}

	iters := 20000
	if sizes == bench.Small {
		iters = 2000
	}

	steps := map[string]func() error{
		"table1": func() error { return bench.Table1(out, r, iters) },
		"table2": func() error { bench.Table2(out); return nil },
		// engine-seq / engine-pdes re-simulate a fixed subset under each
		// engine on a single host worker; the wall-clock ratio of the two
		// step records is the PDES speedup on this host.
		"engine-seq":  func() error { return bench.EngineComparison(out, r, machine.EngineSequential) },
		"engine-pdes": func() error { return bench.EngineComparison(out, r, machine.EnginePDES) },
		"fig7":        func() error { return bench.Figure7(out, r) },
		"fig8":        func() error { return bench.Figure8(out, r) },
		"fig9":        func() error { return bench.Figure9(out, r) },
		"fig10":       func() error { return bench.Figure10(out, r) },
		"fig11":       func() error { return bench.Figure11(out, r) },
		"fig12":       func() error { return bench.Figure12(out, r) },
		"ablations":   func() error { return bench.Ablations(out, r) },
		"manysockets": func() error { return bench.ManySockets(out, r) },
		// threeway is the registry's proof figure: the MESI baseline, the
		// WARDen regions protocol, and the out-of-core SiSd family side by
		// side over the full suite.
		"threeway": func() error { return bench.ThreeWay(out, r) },
		// events profiles the deep-dive benchmark subset through the Metrics
		// event sink (latency histograms, sharer distributions, per-block
		// contention). It is opt-in rather than part of "all": the sink runs
		// are diagnostic, not paper artifacts.
		"events": func() error { return bench.EventsReport(out, topology.XeonGold6126(1), sizes, nil, 10) },
	}
	for _, name := range names {
		if _, ok := steps[name]; !ok {
			fmt.Fprintf(os.Stderr, "wardenbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	// With -serve, every step is registered up front so /runs shows the
	// whole sweep — queued steps included — from the first scrape.
	stepRuns := make(map[string]*obs.Run, len(names))
	if registry != nil {
		for _, name := range names {
			stepRuns[name] = registry.NewRun("experiment", name, map[string]string{"size": *size})
		}
	}

	for _, name := range names {
		stepStart := time.Now()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cyc0, runs0 := r.SimulatedCycles()
		if sr := stepRuns[name]; sr != nil {
			sr.Start()
		}
		err := steps[name]()
		cyc1, runs1 := r.SimulatedCycles()
		if sr := stepRuns[name]; sr != nil {
			sr.Finish(cyc1-cyc0, err)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		report.Experiments = append(report.Experiments,
			newRecord(name, time.Since(stepStart), cyc1-cyc0, runs1-runs0, m0, m1))
	}

	if *teleDir != "" || *attribDir != "" {
		fmt.Fprintf(os.Stderr, "wardenbench: wrote %d telemetry artifacts:\n", artifacts.Len())
		for _, p := range artifacts.Paths() {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
	}

	var endMem runtime.MemStats
	runtime.ReadMemStats(&endMem)
	cycles, runs := r.SimulatedCycles()
	report.Total = newRecord("total", time.Since(start), cycles, runs, startMem, endMem)

	if *timing != "" {
		if err := writeTiming(*timing, report); err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wardenbench: %.1fs wall, %d simulations, %.0f simulated cycles/sec -> %s\n",
			report.Total.WallSeconds, runs, report.Total.CyclesPerSecond, *timing)
	}
	if *history != "" {
		recs := append(append([]perfdb.Record{}, report.Experiments...), report.Total)
		if err := perfdb.Append(*history, recs); err != nil {
			fmt.Fprintf(os.Stderr, "wardenbench: -history: %v\n", err)
			os.Exit(1)
		}
		logger.Info("appended perf history", "file", *history, "records", len(recs), "run_id", runID)
	}

	if shutdown != nil {
		shutdown()
	}
}

func writeTiming(path string, report timingReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
