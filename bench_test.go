// Package warden's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§7) as testing.B benchmarks — one per
// artifact. Each reports the headline numbers via b.ReportMetric so that
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. The benchmarks use the Small input class so
// the suite completes in minutes; `wardenbench -size medium` regenerates
// the recorded EXPERIMENTS.md numbers.
package warden_test

import (
	"io"
	"math"
	"testing"

	"warden/internal/bench"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// BenchmarkTable1 runs the Fig. 6 true-sharing microbenchmark in the three
// Table 1 placements and reports cycles/iteration for each.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		smt := topology.XeonGold6126(1)
		smt.ThreadsPerCore = 2
		same, err := pbbs.PingPong(smt, 0, 1, 2000, "same core")
		if err != nil {
			b.Fatal(err)
		}
		sock, err := pbbs.PingPong(topology.XeonGold6126(1), 0, 1, 2000, "same socket")
		if err != nil {
			b.Fatal(err)
		}
		cross, err := pbbs.PingPong(topology.XeonGold6126(2), 0, 12, 2000, "cross socket")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(same.CyclesPerIter, "sameCore-cyc/iter")
		b.ReportMetric(sock.CyclesPerIter, "sameSocket-cyc/iter")
		b.ReportMetric(cross.CyclesPerIter, "crossSocket-cyc/iter")
	}
}

// reportFigure runs the full suite comparison on cfg and reports the mean
// speedup and energy savings (the MEAN bars of the figure).
func reportFigure(b *testing.B, cfg topology.Config, subset []string) {
	b.Helper()
	r := bench.NewRunner(bench.Small)
	for i := 0; i < b.N; i++ {
		comps, err := r.CompareAll(cfg, subset)
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0
		var ic, tot float64
		for _, c := range comps {
			prod *= c.Speedup()
			ic += c.InterconnectSavings()
			tot += c.TotalEnergySavings()
			n++
		}
		b.ReportMetric(math.Pow(prod, 1/float64(n)), "meanSpeedup-x")
		b.ReportMetric(ic/float64(n), "interconnectSavings-%")
		b.ReportMetric(tot/float64(n), "totalSavings-%")
	}
}

// BenchmarkFigure7 regenerates the single-socket speedup/energy study.
func BenchmarkFigure7(b *testing.B) {
	reportFigure(b, topology.XeonGold6126(1), nil)
}

// BenchmarkFigure8 regenerates the dual-socket speedup/energy study.
func BenchmarkFigure8(b *testing.B) {
	reportFigure(b, topology.XeonGold6126(2), nil)
}

// BenchmarkFigure9 reports the Fig. 9 correlation inputs: mean avoided
// invalidations+downgrades per kilo-instruction alongside mean speedup.
func BenchmarkFigure9(b *testing.B) {
	r := bench.NewRunner(bench.Small)
	for i := 0; i < b.N; i++ {
		comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
		if err != nil {
			b.Fatal(err)
		}
		var perKilo float64
		for _, c := range comps {
			perKilo += c.InvDgReducedPerKilo()
		}
		b.ReportMetric(perKilo/float64(len(comps)), "meanInvDgReduced/kiloInstr")
	}
}

// BenchmarkFigure10 reports the mean downgrade share of the avoided
// coherence events (Fig. 10).
func BenchmarkFigure10(b *testing.B) {
	r := bench.NewRunner(bench.Small)
	for i := 0; i < b.N; i++ {
		comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
		if err != nil {
			b.Fatal(err)
		}
		var down float64
		n := 0
		for _, c := range comps {
			d, _ := c.ReductionShares()
			down += d
			n++
		}
		b.ReportMetric(down/float64(n), "meanDowngradeShare-%")
	}
}

// BenchmarkFigure11 reports the mean percent IPC improvement (Fig. 11).
func BenchmarkFigure11(b *testing.B) {
	r := bench.NewRunner(bench.Small)
	for i := 0; i < b.N; i++ {
		comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
		if err != nil {
			b.Fatal(err)
		}
		var ipc float64
		for _, c := range comps {
			ipc += c.IPCImprovement()
		}
		b.ReportMetric(ipc/float64(len(comps)), "meanIPCImprovement-%")
	}
}

// BenchmarkFigure12 regenerates the disaggregated-machine study on the
// most-promising subset.
func BenchmarkFigure12(b *testing.B) {
	reportFigure(b, topology.Disaggregated(), bench.DisaggregatedSubset)
}

// BenchmarkSuite runs every PBBS benchmark under both protocols on the
// dual-socket machine and reports per-benchmark speedups; this is the
// per-bar view of Fig. 8a.
func BenchmarkSuite(b *testing.B) {
	for _, e := range pbbs.Suite {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			r := bench.NewRunner(bench.Small)
			for i := 0; i < b.N; i++ {
				c, err := r.Compare(topology.XeonGold6126(2), e)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(c.Speedup(), "speedup-x")
				b.ReportMetric(c.InvDgReducedPerKilo(), "invDgReduced/kilo")
			}
		})
	}
}

// BenchmarkAblations runs the design-choice studies (region sources, table
// capacity, sector granularity) end to end.
func BenchmarkAblations(b *testing.B) {
	r := bench.NewRunner(bench.Small)
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}
