module warden

go 1.22
