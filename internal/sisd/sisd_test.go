package sisd_test

// Verification of the SiSd protocol THROUGH the existing harnesses —
// internal/modelcheck (exhaustive + walks + differential) and the litmus
// suite — without any SiSd-specific code in those packages: everything
// here drives their exported APIs with sisd.Protocol, which is the
// registry's acceptance test for an out-of-core protocol family.

import (
	"fmt"
	"testing"

	"warden/internal/cache"
	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/modelcheck"
	"warden/internal/modelcheck/litmus"
	"warden/internal/sisd"
	"warden/internal/stats"
	"warden/internal/topology"
)

// fenceAlphabet is the standard free alphabet plus a fence per core, so
// exploration and walks drive the self-invalidation/self-downgrade sweep
// between ordinary accesses.
func fenceAlphabet(cores, blocks int, atomics bool) []modelcheck.Action {
	out := modelcheck.WordAlphabet(cores, blocks, 0, atomics)
	for c := 0; c < cores; c++ {
		out = append(out, modelcheck.Fence(c))
	}
	return out
}

// sisdConfig is the reference exhaustive configuration: 2 cores, one
// tracked block, loads/stores/atomics plus fences.
func sisdConfig(blocks int) modelcheck.Config {
	top := modelcheck.TinyTopology(2, 1, 2)
	return modelcheck.Config{
		Protocol: sisd.Protocol,
		Topology: top,
		Cores:    2,
		Blocks:   modelcheck.DefaultBlocks(blocks, top.BlockSize),
		Alphabet: fenceAlphabet(2, blocks, true),
		MaxDepth: 7,
	}
}

func TestExhaustive(t *testing.T) {
	res, err := modelcheck.Explore(sisdConfig(1))
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	t.Logf("SiSd: %d reachable states, %d transitions, depth %d", res.States, res.Transitions, res.Depth)
	if res.States < 10 {
		t.Fatalf("implausibly small state space: %d states", res.States)
	}
}

// TestExhaustiveTwoBlocksConflict makes every second access evict in the
// single-set L2, driving the silent shared evictions and dirty
// shared-copy writebacks through exploration.
func TestExhaustiveTwoBlocksConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("larger alphabet; covered by the full run and CI")
	}
	cfg := sisdConfig(2)
	cfg.Alphabet = fenceAlphabet(2, 2, false)
	cfg.MaxDepth = 5
	res, err := modelcheck.Explore(cfg)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	t.Logf("SiSd 2-block: %d reachable states, %d transitions", res.States, res.Transitions)
}

// TestExhaustiveStoreBuffer interleaves store issue and commit, so fences
// run their buffer-drain feasibility gate before the sync sweep.
func TestExhaustiveStoreBuffer(t *testing.T) {
	cfg := sisdConfig(1)
	cfg.StoreBufferDepth = 2
	cfg.MaxDepth = 5
	res, err := modelcheck.Explore(cfg)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
}

// TestLitmusSuite runs every scenario that advertises SiSd (the whole
// registry-driven suite except the MOESI-specific one) under SiSd.
func TestLitmusSuite(t *testing.T) {
	ran := 0
	for _, s := range litmus.Scenarios() {
		covers := false
		for _, p := range s.Protocols {
			if p == sisd.Protocol {
				covers = true
			}
		}
		if !covers {
			continue
		}
		ran++
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := s.Run(sisd.Protocol)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%s", res.Violation)
			}
			t.Logf("%d states, %d transitions", res.States, res.Transitions)
		})
	}
	if ran < 10 {
		t.Fatalf("only %d scenarios advertise SiSd — the registry-driven suite should cover it automatically", ran)
	}
}

// TestWalkClean runs seeded random walks well past the exhaustive depth.
func TestWalkClean(t *testing.T) {
	steps := 400
	if testing.Short() {
		steps = 100
	}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := modelcheck.Walk(sisdConfig(1), seed, steps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d violation:\n%s", seed, res.Violation)
		}
	}
}

// TestDiffWalkAgainstMESI is the observational-equivalence contract: with
// no WARD merges in either execution, every tracked byte must drain to
// the same value under SiSd and MESI.
func TestDiffWalkAgainstMESI(t *testing.T) {
	steps := 300
	seeds := int64(6)
	if testing.Short() {
		steps, seeds = 80, 2
	}
	cfg := sisdConfig(2)
	cfg.Alphabet = fenceAlphabet(2, 2, true)
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := modelcheck.DiffWalk(cfg, sisd.Protocol, core.MESI, seed, steps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d violation:\n%s", seed, res.Violation)
		}
	}
}

// --- direct unit tests of the SiSd-specific arcs ----------------------

// sisdSystem builds a system with a tiny direct-mapped hierarchy (one
// 64-byte block per L2 set, so a and a+512 always conflict).
func sisdSystem() (*core.System, *mem.Memory, *stats.Counters) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	cfg.L1Size = 4 * 64
	cfg.L1Assoc = 1
	cfg.L2Size = 8 * 64
	cfg.L2Assoc = 1
	m := mem.New(0)
	ctr := &stats.Counters{}
	return core.NewSystem(cfg, sisd.Protocol, m, ctr), m, ctr
}

const conflictStride = 8 * 64

func rd(t *testing.T, s *core.System, c int, a mem.Addr) uint64 {
	t.Helper()
	var buf [8]byte
	s.Read(c, a, buf[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

func wr(s *core.System, c int, a mem.Addr, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	s.Write(c, a, buf[:])
}

// TestSharedWriteSendsNoInvalidations pins the headline behaviour: a
// write to shared-classified data upgrades in place, other holders keep
// their copies, and zero invalidation messages travel.
func TestSharedWriteSendsNoInvalidations(t *testing.T) {
	s, m, ctr := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	rd(t, s, 0, a) // private E at core 0
	rd(t, s, 1, a) // second touch: shared classification
	if e, ok := s.DirEntry(a.Block(64)); !ok || e.State != cache.Shared {
		t.Fatalf("after second touch entry = %+v, want Shared", e)
	}

	invs := ctr.Invalidations
	wr(s, 1, a, 42) // silent S→M upgrade, no directory transaction
	if ctr.Invalidations != invs {
		t.Fatalf("shared write sent %d invalidations, want 0", ctr.Invalidations-invs)
	}
	if ctr.Msgs[stats.Inv] != 0 {
		t.Fatalf("Inv messages = %d, want 0", ctr.Msgs[stats.Inv])
	}
	if _, l2 := s.PrivLines(1, a.Block(64)); l2 != cache.Modified {
		t.Fatalf("writer's L2 = %v, want Modified (dirty shared copy)", l2)
	}
	if _, l2 := s.PrivLines(0, a.Block(64)); l2 != cache.Shared {
		t.Fatalf("other holder's L2 = %v, want Shared (kept, stale until its sync)", l2)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncPointSweepsSharedLines: a sync point writes dirty shared
// copies back and self-invalidates every shared-classified line, leaving
// private lines alone.
func TestSyncPointSweepsSharedLines(t *testing.T) {
	s, m, ctr := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	b := a + 64 // different L2 set from a (direct-mapped): no conflict
	rd(t, s, 0, a)
	rd(t, s, 1, a) // a: shared-classified at both cores
	wr(s, 1, a, 7) // dirty shared copy at core 1
	wr(s, 1, b, 9) // b: private M at core 1 — must survive the sync

	wbs := ctr.Msgs[stats.DataDir]
	if lat := s.SyncPoint(1); lat == 0 {
		t.Fatal("sync with shared lines should cost cycles")
	}
	if ctr.Msgs[stats.DataDir] != wbs+1 {
		t.Fatalf("DataDir after sync = %d, want %d (self-downgrade writeback)", ctr.Msgs[stats.DataDir], wbs+1)
	}
	if _, l2 := s.PrivLines(1, a.Block(64)); l2 != cache.Invalid {
		t.Fatalf("shared line after own sync = %v, want Invalid (self-invalidated)", l2)
	}
	if _, l2 := s.PrivLines(1, b.Block(64)); l2 != cache.Modified {
		t.Fatalf("private line after sync = %v, want Modified (untouched)", l2)
	}
	if _, l2 := s.PrivLines(0, a.Block(64)); l2 != cache.Shared {
		t.Fatalf("other core's line after core 1's sync = %v, want Shared", l2)
	}
	if got := rd(t, s, 0, a); got != 7 {
		t.Fatalf("value visible after writer's sync = %d, want 7", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCleanSharedEvictionIsSilent: evicting a clean shared copy sends no
// message at all (no PutS), unlike MESI.
func TestCleanSharedEvictionIsSilent(t *testing.T) {
	s, m, ctr := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	rd(t, s, 0, a)
	rd(t, s, 1, a) // shared classification
	before := ctr.Snap()
	rd(t, s, 0, a+conflictStride) // conflicts: core 0 evicts its clean S copy
	d := ctr.Snap().Sub(before)
	if d.Msgs[stats.PutS] != 0 {
		t.Fatalf("PutS on clean shared eviction = %d, want 0 (silent)", d.Msgs[stats.PutS])
	}
	e, ok := s.DirEntry(a.Block(64))
	if !ok || e.State != cache.Shared || e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("entry after silent eviction = %+v ok=%v, want Shared held by core 1 only", e, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDirtySharedEvictionWritesBack: a dirty shared copy discharges its
// writeback obligation when evicted.
func TestDirtySharedEvictionWritesBack(t *testing.T) {
	s, m, ctr := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	rd(t, s, 0, a)
	rd(t, s, 1, a)
	wr(s, 0, a, 1234) // dirty shared copy at core 0
	before := ctr.Snap()
	rd(t, s, 0, a+conflictStride) // evicts it
	d := ctr.Snap().Sub(before)
	if d.Msgs[stats.DataDir] != 1 {
		t.Fatalf("DataDir on dirty shared eviction = %d, want 1", d.Msgs[stats.DataDir])
	}
	if got := rd(t, s, 2, a); got != 1234 {
		t.Fatalf("value after dirty shared eviction = %d", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicSyncsAndRecoversExclusivity: an atomic on shared-classified
// data first runs the issuing core's sync sweep; an atomic on another
// core's private block recovers exclusivity with a single directed
// invalidation.
func TestAtomicSyncsAndRecoversExclusivity(t *testing.T) {
	s, m, _ := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	wr(s, 0, a, 5) // private M at core 0
	old, _ := s.RMW(1, a, 8, func(v uint64) uint64 { return v + 1 })
	if old != 5 {
		t.Fatalf("RMW old = %d, want 5", old)
	}
	e, ok := s.DirEntry(a.Block(64))
	if !ok || e.State != cache.Exclusive || e.Owner != 1 {
		t.Fatalf("entry after atomic = %+v, want Exclusive owned by core 1", e)
	}
	if _, l2 := s.PrivLines(0, a.Block(64)); l2 != cache.Invalid {
		t.Fatalf("previous owner after atomic = %v, want Invalid", l2)
	}
	if got := rd(t, s, 2, a); got != 6 {
		t.Fatalf("value after atomic = %d, want 6", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainDischargesObligations: DrainAll writes back dirty private and
// dirty shared copies, after which the canonical store and a fresh
// invariant sweep agree.
func TestDrainDischargesObligations(t *testing.T) {
	s, m, ctr := sisdSystem()
	a := m.Alloc(4096, mem.PageSize)
	b := a + 64 // different L2 set from a: no conflict evictions
	rd(t, s, 0, a)
	rd(t, s, 1, a)
	wr(s, 0, a, 11) // dirty shared copy
	wr(s, 1, b, 22) // dirty private copy
	before := ctr.Snap()
	s.DrainAll()
	d := ctr.Snap().Sub(before)
	if d.Msgs[stats.DataDir] != 2 {
		t.Fatalf("DataDir during drain = %d, want 2", d.Msgs[stats.DataDir])
	}
	if m.ReadUint(a, 8) != 11 || m.ReadUint(b, 8) != 22 {
		t.Fatalf("memory after drain = %d/%d, want 11/22", m.ReadUint(a, 8), m.ReadUint(b, 8))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain must be idempotent.
	before = ctr.Snap()
	s.DrainAll()
	if d := ctr.Snap().Sub(before); d.Msgs[stats.DataDir] != 0 {
		t.Fatalf("second drain wrote back %d blocks, want 0", d.Msgs[stats.DataDir])
	}
}

// TestRegistration pins the registry contract for an out-of-core
// protocol: resolvable by name, case-insensitively, with sync fences.
func TestRegistration(t *testing.T) {
	p, ok := core.Lookup("sisd")
	if !ok || p != sisd.Protocol {
		t.Fatalf("Lookup(sisd) = %v, %v", p, ok)
	}
	if got := fmt.Sprint(sisd.Protocol); got != "SiSd" {
		t.Fatalf("display name = %q, want SiSd", got)
	}
	if !core.Describe(sisd.Protocol).SyncFences {
		t.Fatal("SiSd must mark fences as synchronization points")
	}
}
