// Package sisd implements a self-invalidation/self-downgrade coherence
// protocol in the family of "Mending Fences with Self-Invalidation and
// Self-Downgrade" (VIPS-M-like), registered with the protocol registry as
// "SiSd". It is deliberately implemented entirely outside internal/core:
// it uses only the exported ProtocolImpl surface (core/impl.go), which is
// the registry's proof that a new protocol family plugs in without
// touching the dispatch sites, the verifiers, or the tools.
//
// The protocol classifies each block by its directory entry:
//
//   - Private (directory Exclusive + Owner): exactly one core has touched
//     the block. It behaves MESI-like — E on a read fill, silent E→M on a
//     write, PutE/PutM on eviction — with no sharing cost.
//   - Shared (directory Shared): a second core touched the block. From
//     then on there are NO invalidation rounds: reads fetch from the LLC,
//     writes upgrade a local copy to Modified in place (the dirty copy is
//     a *self-downgrade obligation*, written back at the writer's next
//     synchronization point, eviction, or drain), and stale copies die by
//     *self-invalidation* when their holder reaches a synchronization
//     point. Clean shared evictions are silent (no PutS traffic).
//
// The directory's holder set under a Shared entry is simulator
// bookkeeping mirroring the private tag arrays (what a real SiSd machine
// keeps in its caches), not a coherence structure: no message is ever
// addressed through it. The protocol never consults sharer lists to
// invalidate or downgrade anyone — that is the point of SiSd.
//
// Synchronization points are fences (the descriptor sets SyncFences, so
// the machine routes fences through System.SyncPoint) and atomics (the
// directory transaction for an atomic syncs the issuing core first).
// Data values are functionally coherent by construction — loads and
// stores move through the canonical store, as for every protocol in this
// simulator — so SiSd's relaxation shows up in timing, traffic, and
// state, which is exactly what the model checker's ghost model and the
// differential walks verify.
package sisd

import (
	"fmt"
	"sort"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/stats"
)

// Protocol is SiSd's registered handle. Importing this package (usually
// via internal/protocols) makes "sisd" resolvable everywhere.
var Protocol = core.Register(core.ProtocolDesc{
	Name:       "SiSd",
	SyncFences: true,
	New:        newImpl,
})

// impl is the per-System state machine. It keeps no protocol state of its
// own: everything lives in the directory entries and private tag arrays,
// so the model checker's canonical state (DirState) captures it fully.
type impl struct {
	s     *core.System
	cores int
	l2Lat uint64
}

func newImpl(s *core.System) core.ProtocolImpl {
	cfg := s.Config()
	return &impl{s: s, cores: cfg.Cores(), l2Lat: cfg.L2Latency}
}

// dirtyL2 reports whether core's L2 holds block in Modified.
func (p *impl) dirtyL2(core int, block mem.Addr) bool {
	_, l2 := p.s.PrivLines(core, block)
	return l2 == cache.Modified
}

// DirTransact implements core.ProtocolImpl.
func (p *impl) DirTransact(c int, block mem.Addr, mode core.AccessMode, e *coherence.Entry, lat uint64) (cache.State, uint64) {
	s := p.s
	if mode == core.ModeAtomic {
		// Atomics are synchronization: the issuing core self-invalidates
		// and self-downgrades first, then transacts at the LLC. The sweep
		// may have dropped or reshaped this block's entry, so re-resolve.
		lat += p.SyncPoint(c)
		e = s.Directory().Ensure(block)
	}
	switch e.State {
	case cache.Invalid:
		// First touch: private classification, MESI-like fill.
		lat += s.LLCFetch(block)
		lat += s.Fabric().HomeToCore(stats.Data, block, c)
		e.State, e.Owner, e.Sharers = cache.Exclusive, c, 0
		if mode == core.ModeRead {
			s.InstallPrivate(c, block, cache.Exclusive)
			return cache.Exclusive, lat
		}
		s.InstallPrivate(c, block, cache.Modified)
		return cache.Modified, lat

	case cache.Exclusive:
		if e.Owner == c {
			panic("sisd: directory transaction from the recorded owner (private state out of sync)")
		}
		owner := e.Owner
		if mode == core.ModeAtomic {
			// Recover exclusivity for the atomic: this is the one place
			// SiSd sends a (single, directed) invalidation, because an
			// atomic must own the line and the previous owner is known.
			lat += s.Fabric().HomeToCore(stats.FwdGetM, block, owner)
			lat += p.l2Lat
			if p.dirtyL2(owner, block) {
				s.Fabric().CoreToHome(stats.DataDir, owner, block) // posted
				s.LLCInsert(block)
			}
			s.InvalidatePrivate(owner, block, true)
			lat += s.Fabric().CoreToCore(stats.Data, owner, c)
			e.State, e.Owner, e.Sharers = cache.Exclusive, c, 0
			s.InstallPrivate(c, block, cache.Modified)
			return cache.Modified, lat
		}
		// Second-core touch: the block becomes shared-classified. The
		// owner is notified once (it recovers its dirty data and keeps a
		// clean Shared copy); from here on, no coherence rounds ever.
		lat += s.Fabric().HomeToCore(stats.FwdGetS, block, owner)
		lat += p.l2Lat
		if p.dirtyL2(owner, block) {
			s.Fabric().CoreToHome(stats.DataDir, owner, block) // posted writeback
			s.LLCInsert(block)
		}
		s.DowngradePrivateTo(owner, block, cache.Shared)
		lat += s.Fabric().CoreToCore(stats.Data, owner, c)
		e.State, e.Owner = cache.Shared, 0
		e.Sharers = coherence.Bitset(0).Add(owner).Add(c)
		if mode == core.ModeRead {
			s.InstallPrivate(c, block, cache.Shared)
			return cache.Shared, lat
		}
		s.InstallPrivate(c, block, cache.Modified)
		return cache.Modified, lat

	case cache.Shared:
		// Shared-classified: serve from the LLC. Writes and atomics
		// install a Modified copy WITHOUT invalidating anyone — other
		// holders' stale copies die at their own sync points.
		lat += s.LLCFetch(block)
		lat += s.Fabric().HomeToCore(stats.Data, block, c)
		e.Sharers = e.Sharers.Add(c)
		st := cache.Shared
		if mode != core.ModeRead {
			st = cache.Modified
		}
		s.InstallPrivate(c, block, st)
		return st, lat
	}
	panic(fmt.Sprintf("sisd: directory transaction with entry in state %v", e.State))
}

// PrivHit implements core.ProtocolImpl. Reads hit on any valid line
// (possibly stale until the next sync point — SiSd's sanctioned
// relaxation). Writes hit on M, silently upgrade E, and — the SiSd win —
// silently upgrade a Shared line to Modified with no invalidation round.
// Atomics hit only on privately classified lines; shared-classified
// atomics must sync and transact at the directory.
func (p *impl) PrivHit(c int, block mem.Addr, st cache.State, mode core.AccessMode) (bool, cache.State) {
	switch mode {
	case core.ModeRead:
		return true, st
	case core.ModeWrite:
		switch st {
		case cache.Modified:
			return true, st
		case cache.Exclusive, cache.Shared:
			// E→M is MESI's silent upgrade; S→M is self-downgrade's dual:
			// the write lands locally and becomes a writeback obligation
			// discharged at the next sync point, eviction, or drain.
			p.s.SetPrivState(c, block, cache.Modified)
			return true, cache.Modified
		}
		return false, st
	case core.ModeAtomic:
		if e := p.s.Directory().Lookup(block); e != nil && e.State == cache.Exclusive && e.Owner == c {
			switch st {
			case cache.Modified:
				return true, st
			case cache.Exclusive:
				p.s.SetPrivState(c, block, cache.Modified)
				return true, cache.Modified
			}
		}
		return false, st
	}
	panic("sisd: unknown access mode")
}

// EvictVictim implements core.ProtocolImpl. Private victims take the
// MESI-like PutE/PutM path; shared-classified victims write back only if
// dirty and otherwise leave silently (no PutS traffic — the directory's
// holder set is tag-mirror bookkeeping, updated without a message).
func (p *impl) EvictVictim(c int, ev cache.Eviction, e *coherence.Entry) {
	s := p.s
	switch e.State {
	case cache.Exclusive:
		switch ev.State {
		case cache.Exclusive:
			s.Fabric().CoreToHome(stats.PutE, c, ev.Addr)
		case cache.Modified:
			s.Fabric().CoreToHome(stats.PutM, c, ev.Addr)
			s.Fabric().CoreToHome(stats.DataDir, c, ev.Addr)
			s.LLCInsert(ev.Addr)
		default:
			panic(fmt.Sprintf("sisd: evicting private line in state %v", ev.State))
		}
		s.Directory().Drop(ev.Addr)
	case cache.Shared:
		if ev.State == cache.Modified {
			// Self-downgrade obligation discharged by the eviction.
			s.Fabric().CoreToHome(stats.DataDir, c, ev.Addr)
			s.LLCInsert(ev.Addr)
		}
		e.Sharers = e.Sharers.Remove(c)
		if e.Sharers.Empty() {
			// Last copy gone: the classification decays back to private
			// on the next touch.
			s.Directory().Drop(ev.Addr)
		}
	default:
		panic(fmt.Sprintf("sisd: evicting with directory entry in state %v", e.State))
	}
}

// SyncPoint implements core.ProtocolImpl: the self-invalidation/
// self-downgrade sweep. Every shared-classified line in core's private
// caches is written back if dirty (posted) and invalidated; privately
// classified lines survive. The sweep walks addresses in ascending order
// for determinism and charges one cycle per swept line (the tag-walk
// cost; writebacks are posted and charged as traffic only).
func (p *impl) SyncPoint(c int) uint64 {
	s := p.s
	var swept []cache.Line
	for _, ln := range s.L2Recency(c) {
		if e := s.Directory().Lookup(ln.Addr); e != nil && e.State == cache.Shared {
			swept = append(swept, ln)
		}
	}
	sort.Slice(swept, func(i, j int) bool { return swept[i].Addr < swept[j].Addr })
	for _, ln := range swept {
		if ln.State == cache.Modified {
			s.Fabric().CoreToHome(stats.DataDir, c, ln.Addr) // posted writeback
			s.LLCInsert(ln.Addr)
		}
		s.InvalidatePrivate(c, ln.Addr, false) // self-invalidation: no Inv traffic
		e := s.Directory().Lookup(ln.Addr)
		e.Sharers = e.Sharers.Remove(c)
		if e.Sharers.Empty() {
			s.Directory().Drop(ln.Addr)
		}
	}
	return uint64(len(swept))
}

// AddRegion implements core.ProtocolImpl: SiSd has no regions; the
// instruction is the legacy no-op.
func (p *impl) AddRegion(c int, lo, hi mem.Addr) (core.RegionID, uint64, bool) {
	return core.NullRegion, core.LegacyRegionOpCycles, false
}

// RemoveRegion implements core.ProtocolImpl: a no-op, matching AddRegion.
func (p *impl) RemoveRegion(c int, id core.RegionID) uint64 {
	return core.LegacyRegionOpCycles
}

// Drain implements core.ProtocolImpl: discharge every outstanding
// writeback obligation — dirty private owners and dirty shared copies —
// charging the writeback traffic so protocols are compared fairly.
// Addresses ascending, then cores ascending, for determinism.
func (p *impl) Drain() {
	s := p.s
	var addrs []mem.Addr
	entries := make(map[mem.Addr]*coherence.Entry)
	s.Directory().ForEach(func(a mem.Addr, e *coherence.Entry) {
		addrs = append(addrs, a)
		entries[a] = e
	})
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		e := entries[a]
		switch e.State {
		case cache.Exclusive:
			if p.dirtyL2(e.Owner, a) {
				s.Fabric().CoreToHome(stats.PutM, e.Owner, a)
				s.Fabric().CoreToHome(stats.DataDir, e.Owner, a)
				s.LLCInsert(a)
				s.SetPrivState(e.Owner, a, cache.Exclusive) // now clean
			}
		case cache.Shared:
			e.Sharers.ForEach(func(c int) {
				if p.dirtyL2(c, a) {
					s.Fabric().CoreToHome(stats.DataDir, c, a)
					s.LLCInsert(a)
					s.SetPrivState(c, a, cache.Shared) // clean, still held
				}
			})
		}
	}
}

// CheckBlock implements core.ProtocolImpl: SiSd's per-state invariants.
// Private entries are MESI-strict. Shared entries track holders exactly
// (every eviction updates the set), but a holder's line may be Shared or
// Modified — multiple dirty copies of a shared-classified block are legal
// pending self-downgrade, which is precisely where SiSd's invariants
// differ from an eagerly coherent protocol's.
func (p *impl) CheckBlock(a mem.Addr, e *coherence.Entry) error {
	s := p.s
	switch e.State {
	case cache.Exclusive:
		_, l2 := s.PrivLines(e.Owner, a)
		if l2 != cache.Exclusive && l2 != cache.Modified {
			return fmt.Errorf("sisd: dir says core %d owns %#x but its L2 has %v", e.Owner, uint64(a), l2)
		}
		for c := 0; c < p.cores; c++ {
			if c == e.Owner {
				continue
			}
			if _, l2 := s.PrivLines(c, a); l2 != cache.Invalid {
				return fmt.Errorf("sisd: private block %#x owned by core %d also valid in core %d", uint64(a), e.Owner, c)
			}
		}
	case cache.Shared:
		if e.Sharers.Empty() {
			return fmt.Errorf("sisd: shared block %#x with empty holder set", uint64(a))
		}
		for c := 0; c < p.cores; c++ {
			_, l2 := s.PrivLines(c, a)
			if e.Sharers.Has(c) {
				if l2 != cache.Shared && l2 != cache.Modified {
					return fmt.Errorf("sisd: dir says core %d holds shared block %#x but its L2 has %v", c, uint64(a), l2)
				}
			} else if l2 != cache.Invalid {
				return fmt.Errorf("sisd: core %d holds shared block %#x (%v) but is not in the holder set", c, uint64(a), l2)
			}
		}
	default:
		return fmt.Errorf("sisd: directory entry for %#x in state %v", uint64(a), e.State)
	}
	return nil
}
