package coherence

import (
	"fmt"
	"math/bits"
)

// Bitset tracks a set of core ids (sharer masks in directory entries). It
// supports machines up to 64 cores, which covers every configuration in the
// evaluation (the paper tops out at 2 sockets × 12 cores).
type Bitset uint64

// MaxCores is the largest core id (exclusive) a Bitset can track.
const MaxCores = 64

// checkCore panics when core cannot be represented: Go evaluates
// 1<<core to 0 for shifts past the word width, which would silently turn
// Add/Remove/Has into no-ops and corrupt sharer tracking on >64-core
// machines instead of failing loudly.
func checkCore(core int) {
	if core < 0 || core >= MaxCores {
		panic(fmt.Sprintf("coherence: core id %d out of Bitset range [0, %d)", core, MaxCores))
	}
}

// Add returns b with core added.
func (b Bitset) Add(core int) Bitset {
	checkCore(core)
	return b | 1<<uint(core)
}

// Remove returns b with core removed.
func (b Bitset) Remove(core int) Bitset {
	checkCore(core)
	return b &^ (1 << uint(core))
}

// Has reports whether core is in the set.
func (b Bitset) Has(core int) bool {
	checkCore(core)
	return b&(1<<uint(core)) != 0
}

// Count returns the number of cores in the set.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// Empty reports whether the set is empty.
func (b Bitset) Empty() bool { return b == 0 }

// Sole returns the single member of a one-element set. It panics if the set
// does not have exactly one member.
func (b Bitset) Sole() int {
	if b.Count() != 1 {
		panic("coherence: Sole on bitset without exactly one member")
	}
	return bits.TrailingZeros64(uint64(b))
}

// ForEach calls fn for each member in ascending core order. Ascending order
// keeps every protocol action deterministic, including WARDen's
// "last processed wins" reconciliation merges.
func (b Bitset) ForEach(fn func(core int)) {
	for v := uint64(b); v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
}

// Members returns the set as an ascending slice of core ids.
func (b Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(c int) { out = append(out, c) })
	return out
}
