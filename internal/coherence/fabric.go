package coherence

import (
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// Fabric models the interconnect: it charges latency and records traffic for
// every protocol message. On-chip messages pay a hop-count × hop-latency
// cost; messages whose endpoints are on different sockets additionally pay
// the (much larger) intersocket latency, which is what makes coherence
// increasingly expensive on multi-socket and disaggregated machines (§7.3).
type Fabric struct {
	cfg          topology.Config
	ctr          *stats.Counters
	flitsPerData uint64
}

// NewFabric returns a fabric for the given machine, recording traffic into
// ctr.
func NewFabric(cfg topology.Config, ctr *stats.Counters) *Fabric {
	// A 16-byte flit link: a 64-byte block takes 4 data flits plus a header.
	return &Fabric{cfg: cfg, ctr: ctr, flitsPerData: cfg.BlockSize/16 + 1}
}

// onChip returns the latency of traversing the on-chip network once.
func (f *Fabric) onChip() uint64 { return f.cfg.AvgNoCHops * f.cfg.NoCHopLatency }

func (f *Fabric) send(t stats.MsgType, fromSocket, toSocket int) uint64 {
	flits := uint64(1)
	if t.Carries() {
		flits = f.flitsPerData
	}
	return f.sendFlits(t, fromSocket, toSocket, flits)
}

func (f *Fabric) sendFlits(t stats.MsgType, fromSocket, toSocket int, flits uint64) uint64 {
	crossed := fromSocket != toSocket
	f.ctr.Message(t, f.cfg.AvgNoCHops, crossed, flits)
	lat := f.onChip()
	if crossed {
		lat += f.cfg.InterSocketLatency
	}
	return lat
}

// FlushToHome sends a reconciliation flush carrying only the block's dirty
// sectors (§6.1: "any sector of a flushed cache block with the write flag
// set is written back"), so sparse writers move only what they wrote.
func (f *Fabric) FlushToHome(core int, block mem.Addr, dirtyBytes uint64) uint64 {
	flits := 1 + (dirtyBytes+15)/16
	return f.sendFlits(stats.ReconcileFlush, f.cfg.SocketOf(core), f.cfg.HomeSocket(uint64(block)), flits)
}

// CoreToHome sends a request from core to the home directory of block and
// returns its latency.
func (f *Fabric) CoreToHome(t stats.MsgType, core int, block mem.Addr) uint64 {
	return f.send(t, f.cfg.SocketOf(core), f.cfg.HomeSocket(uint64(block)))
}

// HomeToCore sends a response or forwarded request from block's home
// directory to core and returns its latency.
func (f *Fabric) HomeToCore(t stats.MsgType, block mem.Addr, core int) uint64 {
	return f.send(t, f.cfg.HomeSocket(uint64(block)), f.cfg.SocketOf(core))
}

// CoreToCore sends a cache-to-cache message (e.g. the data response to a
// Fwd-GetS) and returns its latency.
func (f *Fabric) CoreToCore(t stats.MsgType, from, to int) uint64 {
	return f.send(t, f.cfg.SocketOf(from), f.cfg.SocketOf(to))
}

// HomeSocket returns the home socket of block (exposed for protocol code).
func (f *Fabric) HomeSocket(block mem.Addr) int {
	return f.cfg.HomeSocket(uint64(block))
}
