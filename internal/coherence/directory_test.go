package coherence

// Direct tests for the full-map directory container. The protocol-level
// race windows over these entries (upgrade vs eviction, reconcile vs
// remote write) are pinned in internal/core's race_windows_test.go; here
// we pin the container semantics those sequences rely on: entry identity
// across Ensure calls, Drop removing state entirely, and Holders merging
// the owner/sharer views.

import (
	"testing"

	"warden/internal/cache"
	"warden/internal/mem"
)

func TestDirectoryEnsureLookupDrop(t *testing.T) {
	d := NewDirectory()
	const blk mem.Addr = 0x1000
	if d.Lookup(blk) != nil || d.Len() != 0 {
		t.Fatal("fresh directory not empty")
	}
	e := d.Ensure(blk)
	if e.State != cache.Invalid {
		t.Fatalf("new entry state = %v, want Invalid", e.State)
	}
	if d.Ensure(blk) != e || d.Lookup(blk) != e {
		t.Fatal("Ensure/Lookup must return the same entry, not a copy")
	}
	// Mutations through one alias are visible through the other — the
	// upgrade path mutates the Lookup result in place.
	e.State = cache.Shared
	e.Sharers = Bitset(0).Add(0).Add(1)
	if got := d.Lookup(blk); got.State != cache.Shared || got.Sharers.Count() != 2 {
		t.Fatalf("aliased mutation lost: %+v", got)
	}
	d.Drop(blk)
	if d.Lookup(blk) != nil || d.Len() != 0 {
		t.Fatal("Drop left the entry behind")
	}
	// A re-Ensured block starts from scratch: no sharer bits survive Drop.
	if e2 := d.Ensure(blk); e2.State != cache.Invalid || !e2.Sharers.Empty() {
		t.Fatalf("re-ensured entry carries stale state: %+v", e2)
	}
}

func TestDirectoryHolders(t *testing.T) {
	cases := []struct {
		name string
		e    Entry
		want Bitset
	}{
		{"exclusive", Entry{State: cache.Exclusive, Owner: 3}, Bitset(0).Add(3)},
		{"shared", Entry{State: cache.Shared, Sharers: Bitset(0).Add(0).Add(2)}, Bitset(0).Add(0).Add(2)},
		{"ward", Entry{State: cache.Ward, Sharers: Bitset(0).Add(1).Add(2), Region: 7}, Bitset(0).Add(1).Add(2)},
		{"invalid", Entry{State: cache.Invalid}, Bitset(0)},
	}
	for _, c := range cases {
		if got := c.e.Holders(); got != c.want {
			t.Errorf("%s: Holders() = %b, want %b", c.name, got, c.want)
		}
	}
	// Exclusive ignores a stale sharer bitset: Owner is authoritative. The
	// upgrade path relies on this when it flips S→E without clearing bits
	// one by one.
	e := Entry{State: cache.Exclusive, Owner: 0, Sharers: Bitset(0).Add(0).Add(1)}
	if got := e.Holders(); got != Bitset(0).Add(0) {
		t.Errorf("Exclusive Holders() = %b, want just the owner", got)
	}
}

func TestDirectoryForEachVisitsAll(t *testing.T) {
	d := NewDirectory()
	blocks := []mem.Addr{0x0, 0x40, 0x1000, 0xffc0}
	for i, b := range blocks {
		d.Ensure(b).Owner = i
	}
	seen := map[mem.Addr]int{}
	d.ForEach(func(b mem.Addr, e *Entry) { seen[b] = e.Owner })
	if len(seen) != len(blocks) {
		t.Fatalf("ForEach visited %d entries, want %d", len(seen), len(blocks))
	}
	for i, b := range blocks {
		if seen[b] != i {
			t.Fatalf("block %#x visited with owner %d, want %d", uint64(b), seen[b], i)
		}
	}
}
