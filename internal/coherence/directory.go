// Package coherence provides the protocol-agnostic building blocks of a
// directory-based coherence implementation: full-map directory entries with
// sharer bitsets, and a message fabric that accounts for the latency and
// traffic of every protocol message. The MESI and WARDen protocols
// themselves live in internal/core and are built from these pieces.
package coherence

import (
	"warden/internal/cache"
	"warden/internal/mem"
)

// Entry is one directory entry. The directory is full-map: it precisely
// tracks the owner or sharer set of every cached block.
//
// State is one of:
//   - cache.Invalid: no private cache holds the block (entries in this state
//     are removed from the map).
//   - cache.Shared: Sharers hold read-only copies.
//   - cache.Exclusive: Owner holds the block in E or M (the directory cannot
//     distinguish a silent E->M upgrade, as in real MESI directories).
//   - cache.Ward: coherence is disabled; Sharers hold private copies and
//     Region identifies the WARD region responsible.
type Entry struct {
	State   cache.State
	Owner   int
	Sharers Bitset
	Region  uint32 // valid only when State == cache.Ward
}

// Holders returns the set of cores holding the block in any state.
func (e *Entry) Holders() Bitset {
	if e.State == cache.Exclusive {
		return Bitset(0).Add(e.Owner)
	}
	return e.Sharers
}

// Directory is a full-map directory over block addresses. The zero value is
// not ready; use NewDirectory.
type Directory struct {
	entries map[mem.Addr]*Entry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[mem.Addr]*Entry)}
}

// Lookup returns the entry for block, or nil if the block is uncached
// (logically in state I).
func (d *Directory) Lookup(block mem.Addr) *Entry {
	return d.entries[block]
}

// Ensure returns the entry for block, creating an Invalid one if absent.
func (d *Directory) Ensure(block mem.Addr) *Entry {
	e, ok := d.entries[block]
	if !ok {
		e = &Entry{State: cache.Invalid}
		d.entries[block] = e
	}
	return e
}

// Drop removes block's entry entirely (the block is uncached).
func (d *Directory) Drop(block mem.Addr) {
	delete(d.entries, block)
}

// Len reports the number of tracked (cached) blocks.
func (d *Directory) Len() int { return len(d.entries) }

// ForEach calls fn for every tracked block. Iteration order is undefined;
// callers that need determinism must collect and sort the addresses (see
// core.System.checkInvariants and the reconciliation path, which iterate
// per-region sorted block lists instead).
func (d *Directory) ForEach(fn func(block mem.Addr, e *Entry)) {
	for a, e := range d.entries {
		fn(a, e)
	}
}
