package coherence

import (
	"testing"
	"testing/quick"

	"warden/internal/cache"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() {
		t.Fatal("zero bitset not empty")
	}
	b = b.Add(3).Add(17).Add(3)
	if b.Count() != 2 || !b.Has(3) || !b.Has(17) || b.Has(4) {
		t.Fatalf("bitset state wrong: %b", b)
	}
	b = b.Remove(3)
	if b.Count() != 1 || b.Has(3) {
		t.Fatal("remove failed")
	}
	if b.Sole() != 17 {
		t.Fatalf("Sole = %d", b.Sole())
	}
}

func TestBitsetSolePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sole on two-element set did not panic")
		}
	}()
	Bitset(0).Add(1).Add(2).Sole()
}

func TestBitsetForEachAscending(t *testing.T) {
	b := Bitset(0).Add(9).Add(0).Add(33)
	var got []int
	b.ForEach(func(c int) { got = append(got, c) })
	want := []int{0, 9, 33}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want ascending %v", got, want)
		}
	}
}

func TestQuickBitsetAddRemove(t *testing.T) {
	f := func(adds, removes []uint8) bool {
		var b Bitset
		ref := map[int]bool{}
		for _, a := range adds {
			c := int(a % MaxCores)
			b = b.Add(c)
			ref[c] = true
		}
		for _, r := range removes {
			c := int(r % MaxCores)
			b = b.Remove(c)
			delete(ref, c)
		}
		if b.Count() != len(ref) {
			return false
		}
		for c := 0; c < MaxCores; c++ {
			if b.Has(c) != ref[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryEnsureDrop(t *testing.T) {
	d := NewDirectory()
	if d.Lookup(0x40) != nil {
		t.Fatal("empty directory returned an entry")
	}
	e := d.Ensure(0x40)
	if e.State != cache.Invalid {
		t.Fatal("fresh entry not Invalid")
	}
	e.State = cache.Shared
	e.Sharers = Bitset(0).Add(2)
	if got := d.Lookup(0x40); got != e {
		t.Fatal("Lookup did not return the stored entry")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	d.Drop(0x40)
	if d.Lookup(0x40) != nil || d.Len() != 0 {
		t.Fatal("Drop incomplete")
	}
}

func TestEntryHolders(t *testing.T) {
	e := &Entry{State: cache.Exclusive, Owner: 5}
	if h := e.Holders(); h.Count() != 1 || !h.Has(5) {
		t.Fatal("E holders wrong")
	}
	e = &Entry{State: cache.Shared, Sharers: Bitset(0).Add(1).Add(2)}
	if h := e.Holders(); h.Count() != 2 {
		t.Fatal("S holders wrong")
	}
}

func TestFabricLatencyAndTraffic(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	ctr := &stats.Counters{}
	f := NewFabric(cfg, ctr)

	// Core 0 (socket 0) to a block homed on socket 0: on-chip only.
	var sameBlock mem.Addr
	for b := mem.Addr(0); ; b += mem.Addr(cfg.BlockSize) {
		if cfg.HomeSocket(uint64(b)) == 0 {
			sameBlock = b
			break
		}
	}
	onChip := f.CoreToHome(stats.GetS, 0, sameBlock)
	if onChip != cfg.AvgNoCHops*cfg.NoCHopLatency {
		t.Fatalf("on-chip latency = %d", onChip)
	}
	// Cross-socket message pays the intersocket latency.
	var crossBlock mem.Addr
	for b := mem.Addr(0); ; b += mem.Addr(cfg.BlockSize) {
		if cfg.HomeSocket(uint64(b)) == 1 {
			crossBlock = b
			break
		}
	}
	cross := f.CoreToHome(stats.GetM, 0, crossBlock)
	if cross != onChip+cfg.InterSocketLatency {
		t.Fatalf("cross-socket latency = %d, want %d", cross, onChip+cfg.InterSocketLatency)
	}
	if ctr.Msgs[stats.GetS] != 1 || ctr.Msgs[stats.GetM] != 1 {
		t.Fatal("messages not counted")
	}
	if ctr.IntersocketMsgs[stats.GetM] != 1 || ctr.IntersocketMsgs[stats.GetS] != 0 {
		t.Fatal("intersocket accounting wrong")
	}
}

func TestFabricDataVsControlFlits(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	ctr := &stats.Counters{}
	f := NewFabric(cfg, ctr)
	f.CoreToCore(stats.Inv, 0, 1) // control: 1 flit
	ctrl := ctr.NoCFlitHops
	f.CoreToCore(stats.Data, 0, 1) // data: header + block
	data := ctr.NoCFlitHops - ctrl
	if data <= ctrl {
		t.Fatalf("data flits (%d) not larger than control (%d)", data, ctrl)
	}
	if want := (cfg.BlockSize/16 + 1) * cfg.AvgNoCHops; data != want {
		t.Fatalf("data flit-hops = %d, want %d", data, want)
	}
}

func TestFabricPartialFlush(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	ctr := &stats.Counters{}
	f := NewFabric(cfg, ctr)
	f.FlushToHome(0, 0, 3) // 3 dirty bytes: header + 1 payload flit
	if got, want := ctr.NoCFlitHops, 2*cfg.AvgNoCHops; got != want {
		t.Fatalf("flush flit-hops = %d, want %d", got, want)
	}
	f.FlushToHome(0, 0, 64) // full block
	if got, want := ctr.NoCFlitHops-2*cfg.AvgNoCHops, 5*cfg.AvgNoCHops; got != want {
		t.Fatalf("full flush flit-hops = %d, want %d", got, want)
	}
}
