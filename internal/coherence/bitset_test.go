package coherence

import "testing"

func TestBitsetOutOfRangePanics(t *testing.T) {
	// A shift past the word width evaluates to zero in Go, so without the
	// range check Add(64) would silently drop the core from the sharer
	// mask — the failure must be loud instead.
	for _, core := range []int{-1, MaxCores, MaxCores + 7} {
		for name, fn := range map[string]func(){
			"Add":    func() { Bitset(0).Add(core) },
			"Remove": func() { Bitset(0).Remove(core) },
			"Has":    func() { Bitset(0).Has(core) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s(%d) did not panic", name, core)
					}
				}()
				fn()
			}()
		}
	}
}
