package machine

import (
	"testing"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/topology"
)

func testCfg() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return cfg
}

// run executes body on thread 0 with the other threads idle.
func run(t *testing.T, proto core.Protocol, bodies map[int]func(*Ctx)) *Machine {
	t.Helper()
	m := New(testCfg(), proto)
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		if b, ok := bodies[i]; ok {
			all[i] = b
		} else {
			all[i] = func(*Ctx) {}
		}
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadStoreSizes(t *testing.T) {
	var got [4]uint64
	m := New(testCfg(), core.MESI)
	a := m.Mem().Alloc(64, 64)
	run2 := func(ctx *Ctx) {
		ctx.Store(a, 1, 0xff12) // truncates to 0x12
		ctx.Store(a+8, 2, 0x3456)
		ctx.Store(a+16, 4, 0x789abcde)
		ctx.Store(a+24, 8, 0x1122334455667788)
		got[0] = ctx.Load(a, 1)
		got[1] = ctx.Load(a+8, 2)
		got[2] = ctx.Load(a+16, 4)
		got[3] = ctx.Load(a+24, 8)
	}
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(*Ctx) {}
	}
	all[0] = run2
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	want := [4]uint64{0x12, 0x3456, 0x789abcde, 0x1122334455667788}
	if got != want {
		t.Fatalf("got %x, want %x", got, want)
	}
}

func TestLoadBytesAcrossBlocks(t *testing.T) {
	m := New(testCfg(), core.MESI)
	a := m.Mem().Alloc(256, 64)
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	buf := make([]byte, 200)
	bodies := map[int]func(*Ctx){0: func(ctx *Ctx) {
		ctx.StoreBytes(a+30, data) // crosses several blocks
		ctx.LoadBytes(a+30, buf)
	}}
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		if b, ok := bodies[i]; ok {
			all[i] = b
		} else {
			all[i] = func(*Ctx) {}
		}
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], data[i])
		}
	}
}

func TestCASSemantics(t *testing.T) {
	var first, second bool
	var final uint64
	m := New(testCfg(), core.MESI)
	a := m.Mem().Alloc(8, 8)
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(*Ctx) {}
	}
	all[0] = func(ctx *Ctx) {
		first = ctx.CAS(a, 8, 0, 42)
		second = ctx.CAS(a, 8, 0, 99) // must fail: value is 42
		final = ctx.Load(a, 8)
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	if !first || second || final != 42 {
		t.Fatalf("first=%v second=%v final=%d", first, second, final)
	}
}

func TestFetchAddAccumulates(t *testing.T) {
	m := New(testCfg(), core.MESI)
	a := m.Mem().Alloc(8, 8)
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(ctx *Ctx) {
			for k := 0; k < 100; k++ {
				ctx.FetchAdd(a, 8, 1)
			}
		}
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	want := uint64(100 * m.Config().Threads())
	if got := m.Mem().ReadUint(a, 8); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if m.Counters().Atomics != want {
		t.Fatalf("atomics counted %d, want %d", m.Counters().Atomics, want)
	}
}

func TestInstructionCounting(t *testing.T) {
	m := run(t, core.MESI, map[int]func(*Ctx){0: func(ctx *Ctx) {
		a := ctx.Machine().Mem().Alloc(64, 64)
		ctx.Compute(100)
		ctx.Store(a, 8, 1)
		ctx.Load(a, 8)
		ctx.Fence()
	}})
	c := m.Counters()
	if c.Instructions != 100+3 {
		t.Fatalf("instructions = %d, want 103", c.Instructions)
	}
	if c.Loads != 1 || c.Stores != 1 || c.FenceDrains != 1 {
		t.Fatalf("mix: loads=%d stores=%d fences=%d", c.Loads, c.Stores, c.FenceDrains)
	}
}

func TestStoreBufferAbsorbsThenStalls(t *testing.T) {
	// Far more store misses than the buffer can hold must produce stalls;
	// a handful must not.
	countStalls := func(stores int) uint64 {
		m := New(testCfg(), core.MESI)
		a := m.Mem().Alloc(uint64(stores*64), 64)
		all := make([]func(*Ctx), m.Config().Threads())
		for i := range all {
			all[i] = func(*Ctx) {}
		}
		all[0] = func(ctx *Ctx) {
			for i := 0; i < stores; i++ {
				// Each store misses a fresh block: worst case.
				ctx.Store(a+mem.Addr(i*64), 8, uint64(i))
			}
		}
		if _, err := m.Run(all); err != nil {
			t.Fatal(err)
		}
		return m.Counters().StoreBufferStalls
	}
	if s := countStalls(8); s != 0 {
		t.Fatalf("8 stores caused %d stalls", s)
	}
	if s := countStalls(4000); s == 0 {
		t.Fatal("4000 missing stores caused no stalls")
	}
}

func TestFenceDrainsBuffer(t *testing.T) {
	m := New(testCfg(), core.MESI)
	a := m.Mem().Alloc(64*64, 64)
	var tFence, tAfter uint64
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(*Ctx) {}
	}
	all[0] = func(ctx *Ctx) {
		for i := 0; i < 32; i++ {
			ctx.Store(a+mem.Addr(i*64), 8, 1)
		}
		tFence = ctx.Now()
		ctx.Fence()
		tAfter = ctx.Now()
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	if tAfter <= tFence+1 {
		t.Fatalf("fence cost %d cycles; expected a drain", tAfter-tFence)
	}
}

func TestWardenMachineEndToEnd(t *testing.T) {
	m := New(testCfg(), core.WARDen)
	a := m.Mem().Alloc(4096, mem.PageSize)
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(*Ctx) {}
	}
	all[0] = func(ctx *Ctx) {
		id, ok := ctx.AddRegion(a, a+4096)
		if !ok {
			t.Error("AddRegion failed on WARDen machine")
			return
		}
		for i := 0; i < 512; i++ {
			ctx.Store(a+mem.Addr(i*8), 8, uint64(i))
		}
		ctx.RemoveRegion(id)
	}
	if _, err := m.Run(all); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if v := m.Mem().ReadUint(a+mem.Addr(i*8), 8); v != uint64(i) {
			t.Fatalf("word %d = %d after reconcile", i, v)
		}
	}
	if m.Counters().WardAccesses == 0 {
		t.Fatal("no WARD accesses recorded")
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsWrongBodyCount(t *testing.T) {
	m := New(testCfg(), core.MESI)
	if _, err := m.Run([]func(*Ctx){func(*Ctx) {}}); err == nil {
		t.Fatal("Run accepted wrong body count")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	m := New(testCfg(), core.MESI)
	m.SetMaxCycles(10_000)
	all := make([]func(*Ctx), m.Config().Threads())
	for i := range all {
		all[i] = func(*Ctx) {}
	}
	all[0] = func(ctx *Ctx) {
		for {
			ctx.Compute(100)
		}
	}
	if _, err := m.Run(all); err == nil {
		t.Fatal("runaway program did not trip the cycle guard")
	}
}
