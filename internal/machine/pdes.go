// PDES integration for the machine layer: op classification, the
// thread-local fast-path handler, the speculative event buffers published
// in serialized order, and the Host escape hatch for shared host state.
//
// Classification is deliberately conservative. Only compute and fence are
// local: both read and write nothing beyond the issuing thread's clock,
// its private store buffer, and its private counters. Every memory-system
// op — loads included — is global, because this simulator's coherence
// state changes are instantaneous at the issuing clock: another thread's
// store with a smaller timestamp in the same epoch window changes an L1
// "hit" into a miss, so shared state has zero usable lookahead and
// classifying L1 hits as local would break bit-identity. The epoch window
// (topology.MinVisibilityLatency) is therefore purely a batching
// parameter for the paper's compute-heavy disentangled phases, where long
// runs of compute/fence between memory ops are the common case.
package machine

import (
	"fmt"

	"warden/internal/core"
	"warden/internal/engine"
)

// EngineMode selects the simulation scheduler.
type EngineMode int

const (
	// EngineSequential is the default lease/handoff scheduler: one
	// goroutine live at a time, the determinism ground truth.
	EngineSequential EngineMode = iota
	// EnginePDES is the conservative epoch-window parallel scheduler;
	// byte-identical results to EngineSequential, potentially using all
	// host cores.
	EnginePDES
)

// String returns the flag spelling of the mode.
func (m EngineMode) String() string {
	switch m {
	case EngineSequential:
		return "seq"
	case EnginePDES:
		return "pdes"
	}
	return fmt.Sprintf("EngineMode(%d)", int(m))
}

// ParseEngineMode parses the -engine flag values "seq" and "pdes".
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "seq", "sequential":
		return EngineSequential, nil
	case "pdes", "parallel":
		return EnginePDES, nil
	}
	return EngineSequential, fmt.Errorf("machine: unknown engine mode %q (want seq or pdes)", s)
}

// localEvent is one buffered thread-local event awaiting publication.
// sortCycle is its position key in the serialized stream: the issuing
// thread's clock at emission (phase markers inherit the key of the event
// they follow; see emitMarker).
type localEvent struct {
	sortCycle uint64
	ev        core.Event
}

// threadLocal is the per-thread speculative state PDES local execution
// writes to: a private counter set merged into the machine's counters
// after the run, and an event buffer flushed in serialized order.
type threadLocal struct {
	ctr    localCounters
	events []localEvent
	head   int
}

// localCounters are the counter fields local ops touch. Kept separate
// from stats.Counters so a new counter on a global path can't silently
// miss the merge.
type localCounters struct {
	instructions  uint64
	computeCycles uint64
	fenceDrains   uint64
	storeCycles   uint64 // unused today; fences charge drains, stores are global
}

// pdesWindowScale multiplies the topology's minimum cross-thread
// visibility latency to form the epoch window. Any width gives identical
// results (see the engine package comment) — the window is pure batching
// — so it is sized to amortize the per-epoch coordinator round trip
// (open, phase-1 barrier, drain seed) over many ops. 8x the visibility
// latency keeps single-core overhead within a few percent of the
// sequential engine while bounding run-ahead to well under a microsecond
// of simulated time.
const pdesWindowScale = 8

// SetEngineMode selects the scheduler. Call before Run; the default is
// EngineSequential.
func (m *Machine) SetEngineMode(mode EngineMode) {
	m.emode = mode
	if mode != EnginePDES {
		return
	}
	m.locals = make([]threadLocal, m.cfg.Threads())
	m.eng.SetPDES(engine.PDESConfig{
		Window: pdesWindowScale * m.cfg.MinVisibilityLatency(),
		Local:  m.execLocal,
		Flush:  m.flushLocal,
	})
}

// EngineMode returns the scheduler selected for this machine.
func (m *Machine) EngineMode() EngineMode { return m.emode }

// Local-op markers: compute and fence touch only thread-private state.
func (*computeOp) EngineLocal() {}
func (*fenceOp) EngineLocal()   {}

// hostOp runs a host callback at the thread's exact serialized position.
// It is global (not a LocalOp) and advances no clock, emits no event, and
// touches no counter — simulated results with and without Host calls are
// identical; only host-side bookkeeping happens inside fn.
type hostOp struct{ fn func() }

// execLocal is the PDES local handler: it executes compute and fence ops
// against thread-private state only, buffering the would-be event. It runs
// concurrently with other threads' execLocal calls, so it must not touch
// m.ctr, m.sys, or any shared structure.
func (m *Machine) execLocal(t *engine.Thread, op engine.Op) uint64 {
	tl := &m.locals[t.ID()]
	var adv uint64
	var ev core.Event
	switch o := op.(type) {
	case *computeOp:
		tl.ctr.instructions += o.cycles
		adv = (o.cycles + superscalarWidth - 1) / superscalarWidth
		tl.ctr.computeCycles += adv
		ev.Kind = core.EvCompute
		ev.Arg1 = o.cycles
	case *fenceOp:
		tl.ctr.instructions++
		tl.ctr.fenceDrains++
		adv = 1 + m.sbufs[t.ID()].drain(t.Now())
		ev.Kind = core.EvFence
	default:
		panic(fmt.Sprintf("machine: op %T marked local but not handled", op))
	}
	if m.observing {
		ev.Thread = t.ID()
		ev.Core = m.cfg.CoreOf(t.ID())
		ev.Cycle = t.Now()
		ev.Latency = adv
		ev.Advance = adv
		tl.events = append(tl.events, localEvent{sortCycle: t.Now(), ev: ev})
		m.nbuffered.Add(1)
	}
	return adv
}

// flushLocal publishes buffered local events whose serialized position
// (sortCycle, thread) is at or before (maxCycle, maxID), in exactly the
// order the sequential engine would have emitted them: ascending
// (sortCycle, thread), via a k-way merge over the per-thread FIFO buffers.
// It runs only in serialized context (the PDES drain or coordinator).
func (m *Machine) flushLocal(maxCycle uint64, maxID int) {
	if m.nbuffered.Load() == 0 {
		return
	}
	for {
		best := -1
		var bestKey uint64
		for tid := range m.locals {
			tl := &m.locals[tid]
			if tl.head >= len(tl.events) {
				continue
			}
			k := tl.events[tl.head].sortCycle
			if k > maxCycle || (k == maxCycle && tid > maxID) {
				continue
			}
			if best < 0 || k < bestKey {
				best, bestKey = tid, k
			}
		}
		if best < 0 {
			return
		}
		tl := &m.locals[best]
		le := &tl.events[tl.head]
		m.sys.Emit(&le.ev)
		*le = localEvent{}
		tl.head++
		if tl.head == len(tl.events) {
			tl.events = tl.events[:0]
			tl.head = 0
		}
		m.nbuffered.Add(-1)
	}
}

// emitMarker emits a phase marker. Sequentially (and in PDES serialized
// contexts with an empty own buffer) it goes straight to the sink. Under
// PDES with buffered local events on this thread, the marker must stay
// FIFO-after them — the sequential engine emits a marker immediately after
// the thread's preceding op, before other threads' smaller-clock ops that
// execute later — so it inherits the sort key of the last buffered event.
func (m *Machine) emitMarker(t *engine.Thread, ev *core.Event) {
	if m.emode == EnginePDES {
		tl := &m.locals[t.ID()]
		if tl.head < len(tl.events) {
			key := tl.events[len(tl.events)-1].sortCycle
			tl.events = append(tl.events, localEvent{sortCycle: key, ev: *ev})
			m.nbuffered.Add(1)
			return
		}
		// Own buffer empty: this thread's preceding ops are all published,
		// and body code only runs here in serialized contexts (startup, or
		// after a global op whose flush cleared the buffer), so a direct
		// emit lands in exactly the sequential position.
	}
	m.sys.Emit(ev)
}

// mergeLocals folds the per-thread PDES counters into the machine's
// shared counters. Called once after the engine run, including on error
// returns, so counters match the sequential engine's in every outcome.
func (m *Machine) mergeLocals() {
	if m.locals == nil {
		return
	}
	for i := range m.locals {
		c := &m.locals[i].ctr
		m.ctr.Instructions += c.instructions
		m.ctr.ComputeCycles += c.computeCycles
		m.ctr.FenceDrains += c.fenceDrains
		m.ctr.StoreCycles += c.storeCycles
	}
}

// Host executes fn at this thread's exact position in the serialized op
// order, with every other simulated thread quiescent. It advances no
// simulated clock, emits no event, and changes no counter — results are
// bit-identical with or without the call.
//
// Use it for host-side bookkeeping that is shared across threads (pools,
// flags, allocation that assigns simulation-visible addresses): under the
// PDES scheduler, body code between two local ops may run concurrently
// with other threads and out of clock order, so plain access to shared
// host state there is both racy and nondeterministic. Wrapping the access
// in Host serializes it at a deterministic point. Thread-private host
// state needs no wrapping.
func (c *Ctx) Host(fn func()) {
	c.host.fn = fn
	c.t.Call(&c.host)
	c.host.fn = nil
}
