// Package machine assembles the simulated computer: the discrete-event
// engine, the MESI/WARDen memory system, and the instruction set that
// simulated programs execute (loads, stores, compute, fences, atomics, and
// WARDen's Add/Remove Region instructions).
//
// Programs are ordinary Go functions receiving a *Ctx per hardware thread;
// every Ctx method is one or more simulated instructions whose timing and
// coherence behaviour flow through the memory system. Stores retire through
// a finite store buffer and only stall the core when it fills, while loads
// block — the asymmetry behind the paper's observation that avoided
// downgrades matter more than avoided invalidations (Fig. 10).
package machine

import (
	"fmt"
	"sync/atomic"

	"warden/internal/core"
	"warden/internal/engine"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// Machine is a full simulated system. Create with New, install one Body per
// hardware thread, then Run.
type Machine struct {
	cfg   topology.Config
	proto core.Protocol
	mem   *mem.Memory
	sys   *core.System
	ctr   *stats.Counters
	eng   *engine.Engine
	sbufs []*storeBuffer

	cycles uint64 // final clock after Run

	// syncFences marks fences as protocol synchronization points (the
	// protocol descriptor's SyncFences): Ctx.Fence then issues the global
	// syncFenceOp, which runs System.SyncPoint on the serialized path,
	// instead of the thread-local fenceOp.
	syncFences bool

	// PDES state (see pdes.go). locals is non-nil iff emode is EnginePDES;
	// observing caches Sink() != nil for the concurrent local handler,
	// which must not read the (mutable) sink field itself.
	emode     EngineMode
	locals    []threadLocal
	nbuffered atomic.Int64
	observing bool
}

// New builds a machine with the given topology and protocol.
func New(cfg topology.Config, proto core.Protocol) *Machine {
	m := &Machine{
		cfg:        cfg,
		proto:      proto,
		mem:        mem.New(0),
		ctr:        &stats.Counters{},
		syncFences: core.Describe(proto).SyncFences,
	}
	m.sys = core.NewSystem(cfg, proto, m.mem, m.ctr)
	m.eng = engine.New(cfg.Threads(), m.exec)
	m.eng.MaxCycles = 50_000_000_000
	for i := 0; i < cfg.Threads(); i++ {
		m.sbufs = append(m.sbufs, newStoreBuffer(cfg.StoreBufferEntries))
	}
	return m
}

// Config returns the machine's topology.
func (m *Machine) Config() topology.Config { return m.cfg }

// Protocol returns the coherence protocol in use.
func (m *Machine) Protocol() core.Protocol { return m.proto }

// Mem returns the simulated physical memory (host-side access, no timing).
func (m *Machine) Mem() *mem.Memory { return m.mem }

// System returns the memory system, for stats and invariant checks.
func (m *Machine) System() *core.System { return m.sys }

// Counters returns the machine's architectural counters.
func (m *Machine) Counters() *stats.Counters { return m.ctr }

// Cycles returns the total simulated execution time after Run.
func (m *Machine) Cycles() uint64 { return m.cycles }

// SetMaxCycles overrides the runaway guard.
func (m *Machine) SetMaxCycles(c uint64) { m.eng.MaxCycles = c }

// SetProbe attaches a live progress probe to the machine's engine. The
// probe is host-visible only (lock-free atomic counters read by the
// observability server); attaching one cannot change simulated results.
// Call before Run.
func (m *Machine) SetProbe(p *engine.Probe) { m.eng.SetProbe(p) }

// SetEpochHook attaches a host-side observer of PDES epoch phase
// boundaries to the machine's engine (see engine.SetEpochHook). Like the
// probe it is host-visible only: the hook fires on the scheduler
// goroutine at phase open/close and cannot change simulated results. It
// only fires under EnginePDES. Call before Run.
func (m *Machine) SetEpochHook(h func(engine.EpochEvent)) { m.eng.SetEpochHook(h) }

// Run executes bodies (one per hardware thread; len must equal
// Config().Threads()) to completion, drains all caches so memory is
// coherent, and returns total cycles.
func (m *Machine) Run(bodies []func(*Ctx)) (uint64, error) {
	if len(bodies) != m.cfg.Threads() {
		return 0, fmt.Errorf("machine: %d bodies for %d hardware threads", len(bodies), m.cfg.Threads())
	}
	for i, body := range bodies {
		body := body
		core := m.cfg.CoreOf(i)
		m.eng.SetBody(i, func(t *engine.Thread) {
			body(&Ctx{m: m, t: t, core: core})
		})
	}
	m.observing = m.sys.Sink() != nil
	cycles, err := m.eng.Run()
	m.cycles = cycles
	// Fold PDES per-thread counters into the shared set before anything
	// reads them — on every outcome, so errors report the same counters
	// the sequential engine would.
	m.mergeLocals()
	if err != nil {
		return cycles, err
	}
	if m.sys.Sink() != nil {
		// The drain is system activity, not any thread's: attribute its
		// reconciliations, writebacks, and traffic to one EvDrain event.
		m.sys.SetEventThread(-1)
		m.sys.SetEventCycle(cycles)
		before := m.ctr.Snap()
		m.sys.DrainAll()
		m.sys.Emit(&core.Event{Kind: core.EvDrain, Thread: -1, Core: -1, Cycle: cycles, Ctrs: m.ctr.Snap().Sub(before)})
	} else {
		m.sys.DrainAll()
	}
	return cycles, nil
}

// ---------------------------------------------------------------------------
// Instruction set (ops posted to the engine)

type loadOp struct {
	addr mem.Addr
	buf  []byte
}

type storeOp struct {
	addr mem.Addr
	data []byte
	lat  uint64 // memory-system latency (the buffer hides it from the core)
}

type rmwOp struct {
	addr mem.Addr
	size int
	fn   func(uint64) uint64
	old  uint64

	kind core.RMWKind // which atomic this is, for the event stream
	a, b uint64       // CAS: expected/new; FetchAdd: delta in a
	lat  uint64       // memory-system latency (excludes the drain stall)
}

// superscalarWidth is how many ALU instructions retire per cycle.
const superscalarWidth = 2

type computeOp struct{ cycles uint64 }

type fenceOp struct{}

// syncFenceOp is the fence of a protocol whose descriptor sets
// SyncFences: beyond draining the store buffer it runs the protocol's
// SyncPoint hook against the shared memory system, so — unlike fenceOp —
// it is a global op (no EngineLocal marker; see pdes.go).
type syncFenceOp struct{}

type addRegionOp struct {
	lo, hi mem.Addr
	id     core.RegionID
	ok     bool
}

type removeRegionOp struct{ id core.RegionID }

// exec is the engine handler: it executes one op and returns the clock
// advance for the issuing thread. With a sink attached it also emits one
// instruction-level event per op (execObserved); without one, the only
// overhead versus the pre-event-stream machine is this nil check.
func (m *Machine) exec(t *engine.Thread, op engine.Op) uint64 {
	if h, ok := op.(*hostOp); ok {
		// Host callback: serialized host-side bookkeeping only — no event,
		// no counters, no clock advance (see Ctx.Host).
		h.fn()
		return 0
	}
	if m.sys.Sink() == nil {
		return m.execOp(t, op)
	}
	return m.execObserved(t, op)
}

// execObserved wraps execOp with instruction-level event emission: it
// attributes the op to its hardware thread, snapshots the counters around
// it, and emits the matching event carrying operands and deltas.
func (m *Machine) execObserved(t *engine.Thread, op engine.Op) uint64 {
	m.sys.SetEventThread(t.ID())
	m.sys.SetEventCycle(t.Now())
	before := m.ctr.Snap()
	adv := m.execOp(t, op)
	ev := core.Event{
		Thread:  t.ID(),
		Core:    m.cfg.CoreOf(t.ID()),
		Cycle:   t.Now(),
		Latency: adv,
		Advance: adv,
		Ctrs:    m.ctr.Snap().Sub(before),
	}
	switch o := op.(type) {
	case *loadOp:
		ev.Kind = core.EvLoad
		ev.Addr = o.addr
		ev.Block = o.addr.Block(m.cfg.BlockSize)
		ev.Size = len(o.buf)
		ev.Mode = core.ModeRead
	case *storeOp:
		ev.Kind = core.EvStore
		ev.Addr = o.addr
		ev.Block = o.addr.Block(m.cfg.BlockSize)
		ev.Size = len(o.data)
		ev.Mode = core.ModeWrite
		ev.Latency = o.lat
		if len(o.data) <= 8 {
			for i := len(o.data) - 1; i >= 0; i-- {
				ev.Arg1 = ev.Arg1<<8 | uint64(o.data[i])
			}
		} else {
			ev.Data = o.data // borrowed: valid only during the sink call
		}
	case *rmwOp:
		ev.Kind = core.EvAtomic
		ev.Addr = o.addr
		ev.Block = o.addr.Block(m.cfg.BlockSize)
		ev.Size = o.size
		ev.Mode = core.ModeAtomic
		ev.RMW = o.kind
		ev.Arg1 = o.a
		ev.Arg2 = o.b
		ev.Latency = o.lat
	case *computeOp:
		ev.Kind = core.EvCompute
		ev.Arg1 = o.cycles
	case *fenceOp:
		ev.Kind = core.EvFence
	case *syncFenceOp:
		ev.Kind = core.EvFence
	case *addRegionOp:
		ev.Kind = core.EvRegionAdd
		ev.Lo, ev.Hi = o.lo, o.hi
		ev.Region = o.id
		ev.RegionOK = o.ok
	case *removeRegionOp:
		ev.Kind = core.EvRegionRemove
		ev.Region = o.id
	}
	m.sys.Emit(&ev)
	m.sys.SetEventThread(-1)
	return adv
}

// execOp executes one op against the memory system.
func (m *Machine) execOp(t *engine.Thread, op engine.Op) uint64 {
	switch o := op.(type) {
	case *loadOp:
		m.ctr.Instructions++
		m.ctr.Loads++
		var lat uint64
		forEachBlockSpan(o.addr, len(o.buf), m.cfg.BlockSize, func(a mem.Addr, off, n int) {
			lat += m.sys.Read(m.cfg.CoreOf(t.ID()), a, o.buf[off:off+n])
		})
		m.ctr.LoadCycles += lat
		return lat

	case *storeOp:
		m.ctr.Instructions++
		m.ctr.Stores++
		var lat uint64
		forEachBlockSpan(o.addr, len(o.data), m.cfg.BlockSize, func(a mem.Addr, off, n int) {
			lat += m.sys.Write(m.cfg.CoreOf(t.ID()), a, o.data[off:off+n])
		})
		o.lat = lat
		// The store's state change is visible now; its latency drains
		// through the store buffer. The core advances by the issue cost
		// plus any stall the full buffer imposes.
		stall := m.sbufs[t.ID()].push(t.Now(), lat)
		if stall > 0 {
			m.ctr.StoreBufferStalls++
		}
		m.ctr.StoreCycles += 1 + stall
		return 1 + stall

	case *rmwOp:
		m.ctr.Instructions++
		m.ctr.Atomics++
		// Atomics order the store buffer (TSO): drain first.
		lat := m.sbufs[t.ID()].drain(t.Now())
		old, alat := m.sys.RMW(m.cfg.CoreOf(t.ID()), o.addr, o.size, o.fn)
		o.old = old
		o.lat = alat
		m.ctr.AtomicCycles += lat + alat
		return lat + alat

	case *computeOp:
		// n ALU instructions retire at the core's superscalar width.
		m.ctr.Instructions += o.cycles
		adv := (o.cycles + superscalarWidth - 1) / superscalarWidth
		m.ctr.ComputeCycles += adv
		return adv

	case *fenceOp:
		m.ctr.Instructions++
		m.ctr.FenceDrains++
		return 1 + m.sbufs[t.ID()].drain(t.Now())

	case *syncFenceOp:
		m.ctr.Instructions++
		m.ctr.FenceDrains++
		lat := 1 + m.sbufs[t.ID()].drain(t.Now())
		return lat + m.sys.SyncPoint(m.cfg.CoreOf(t.ID()))

	case *addRegionOp:
		m.ctr.Instructions++
		id, lat, ok := m.sys.AddRegion(m.cfg.CoreOf(t.ID()), o.lo, o.hi)
		o.id, o.ok = id, ok
		m.ctr.RegionCycles += lat
		return lat

	case *removeRegionOp:
		m.ctr.Instructions++
		lat := m.sys.RemoveRegion(m.cfg.CoreOf(t.ID()), o.id)
		m.ctr.RegionCycles += lat
		return lat
	}
	panic(fmt.Sprintf("machine: unknown op %T", op))
}

// forEachBlockSpan splits [addr, addr+n) into block-contained spans.
func forEachBlockSpan(addr mem.Addr, n int, blockSize uint64, fn func(a mem.Addr, off, n int)) {
	off := 0
	for n > 0 {
		a := addr + mem.Addr(off)
		room := int(blockSize - uint64(a)%blockSize)
		if room > n {
			room = n
		}
		fn(a, off, room)
		off += room
		n -= room
	}
}

// ---------------------------------------------------------------------------
// Store buffer

// storeMSHRs is how many store misses can be outstanding at once: with the
// buffer draining in order but misses overlapping, the effective
// serialization between consecutive stores is lat/storeMSHRs.
const storeMSHRs = 4

// storeBuffer models a per-thread FIFO of in-flight stores. Entries hold
// completion times; pushing into a full buffer stalls until the oldest
// entry completes. Consecutive misses overlap (storeMSHRs outstanding), as
// in a real core's miss-handling architecture.
type storeBuffer struct {
	completions []uint64 // ring buffer
	head, size  int
	lastDone    uint64 // completion time of the most recent entry
}

func newStoreBuffer(entries int) *storeBuffer {
	return &storeBuffer{completions: make([]uint64, entries)}
}

func (b *storeBuffer) pop(now uint64) {
	for b.size > 0 && b.completions[b.head] <= now {
		b.head = (b.head + 1) % len(b.completions)
		b.size--
	}
}

// push enqueues a store taking lat cycles in the memory system and returns
// the stall (beyond the 1-cycle issue cost) the core suffers.
func (b *storeBuffer) push(now, lat uint64) (stall uint64) {
	b.pop(now)
	if b.size == len(b.completions) {
		oldest := b.completions[b.head]
		stall = oldest - now
		now = oldest
		b.pop(now)
	}
	// Retirement stays in order (TSO) but misses overlap: a store finishes
	// no earlier than its own full latency and no earlier than a
	// pipelined step after its predecessor.
	done := now + lat
	if pipelined := b.lastDone + lat/storeMSHRs; pipelined > done {
		done = pipelined
	}
	b.lastDone = done
	tail := (b.head + b.size) % len(b.completions)
	b.completions[tail] = done
	b.size++
	return stall
}

// drain blocks until every buffered store completes, returning the stall.
func (b *storeBuffer) drain(now uint64) (stall uint64) {
	b.pop(now)
	if b.size == 0 {
		return 0
	}
	stall = b.lastDone - now
	b.head, b.size = 0, 0
	return stall
}

// ---------------------------------------------------------------------------
// Ctx: the API simulated programs run against

// Ctx is a hardware thread's view of the machine. All methods execute
// simulated instructions; none are safe to call from any goroutine other
// than the thread's own body.
//
// The op structs below are reused across calls: every engine call is
// synchronous (the op is fully executed before the method returns), so a
// single scratch op per kind keeps the per-instruction host cost
// allocation-free.
type Ctx struct {
	m    *Machine
	t    *engine.Thread
	core int

	ld   loadOp
	st   storeOp
	cmp  computeOp
	fnc  fenceOp
	sfnc syncFenceOp
	rmw  rmwOp
	host hostOp
	buf  [8]byte // backing store for scalar Load/Store data
}

// ThreadID returns the hardware thread id.
func (c *Ctx) ThreadID() int { return c.t.ID() }

// CoreID returns the core this thread runs on.
func (c *Ctx) CoreID() int { return c.core }

// Now returns the thread's local clock.
func (c *Ctx) Now() uint64 { return c.t.Now() }

// Machine returns the underlying machine.
func (c *Ctx) Machine() *Machine { return c.m }

// Load performs a size-byte load (size 1, 2, 4, or 8) and returns the value.
func (c *Ctx) Load(a mem.Addr, size int) uint64 {
	c.ld.addr = a
	c.ld.buf = c.buf[:size]
	c.t.Call(&c.ld)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(c.buf[i])
	}
	return v
}

// Store performs a size-byte store of v at a.
func (c *Ctx) Store(a mem.Addr, size int, v uint64) {
	for i := 0; i < size; i++ {
		c.buf[i] = byte(v)
		v >>= 8
	}
	c.st.addr = a
	c.st.data = c.buf[:size]
	c.t.Call(&c.st)
}

// LoadBytes fills buf from simulated memory starting at a, as a single
// load instruction per cache block touched.
func (c *Ctx) LoadBytes(a mem.Addr, buf []byte) {
	c.ld.addr = a
	c.ld.buf = buf
	c.t.Call(&c.ld)
	c.ld.buf = nil
}

// StoreBytes writes data to simulated memory starting at a.
func (c *Ctx) StoreBytes(a mem.Addr, data []byte) {
	c.st.addr = a
	c.st.data = data
	c.t.Call(&c.st)
	c.st.data = nil
}

// Compute advances the thread by n single-cycle ALU instructions. Like
// every op it goes through Thread.Call, whose inline lease executes it
// without a park/resume handshake whenever this thread is the one the
// scheduler would resume anyway.
func (c *Ctx) Compute(n uint64) {
	if n == 0 {
		return
	}
	c.cmp.cycles = n
	c.t.Call(&c.cmp)
}

// Fence drains the store buffer (a full memory barrier under TSO). Under
// a protocol with SyncFences it is also the protocol's synchronization
// point: the memory system's SyncPoint hook runs (self-invalidation /
// self-downgrade protocols flush their shared data here).
func (c *Ctx) Fence() {
	if c.m.syncFences {
		c.t.Call(&c.sfnc)
		return
	}
	c.t.Call(&c.fnc)
}

// CAS atomically compares the size-byte value at a with old and, if equal,
// stores new. It reports whether the swap happened.
func (c *Ctx) CAS(a mem.Addr, size int, old, new uint64) bool {
	c.rmw.addr = a
	c.rmw.size = size
	c.rmw.kind = core.RMWCAS
	c.rmw.a, c.rmw.b = old, new
	c.rmw.fn = func(cur uint64) uint64 {
		if cur == old {
			return new
		}
		return cur
	}
	c.t.Call(&c.rmw)
	c.rmw.fn = nil
	return c.rmw.old == old
}

// FetchAdd atomically adds delta to the size-byte value at a and returns
// the previous value.
func (c *Ctx) FetchAdd(a mem.Addr, size int, delta uint64) uint64 {
	c.rmw.addr = a
	c.rmw.size = size
	c.rmw.kind = core.RMWFetchAdd
	c.rmw.a, c.rmw.b = delta, 0
	c.rmw.fn = func(cur uint64) uint64 { return cur + delta }
	c.t.Call(&c.rmw)
	c.rmw.fn = nil
	return c.rmw.old
}

// PhaseBegin emits an EvPhaseBegin marker naming the program phase the
// thread is entering. Phase markers are pure observation: they execute no
// simulated instruction, advance no clock, and touch no counter, so with or
// without them the simulation is byte-identical. With no sink attached the
// call is a single nil check. Body code runs while every other thread is
// parked, so emitting from here is as serialized as emitting from an op
// handler.
func (c *Ctx) PhaseBegin(name string) {
	if !c.m.observing {
		return
	}
	c.m.emitMarker(c.t, &core.Event{
		Kind: core.EvPhaseBegin, Thread: c.t.ID(), Core: c.core,
		Cycle: c.t.Now(), Label: name,
	})
}

// PhaseEnd emits the EvPhaseEnd marker closing the innermost open phase on
// this thread. The name is carried for validation; well-formed programs
// close phases in LIFO order per thread.
func (c *Ctx) PhaseEnd(name string) {
	if !c.m.observing {
		return
	}
	c.m.emitMarker(c.t, &core.Event{
		Kind: core.EvPhaseEnd, Thread: c.t.ID(), Core: c.core,
		Cycle: c.t.Now(), Label: name,
	})
}

// AddRegion executes WARDen's Add Region instruction for [lo, hi). Under
// MESI or when the region table is full it returns (core.NullRegion, false).
func (c *Ctx) AddRegion(lo, hi mem.Addr) (core.RegionID, bool) {
	op := addRegionOp{lo: lo, hi: hi}
	c.t.Call(&op)
	return op.id, op.ok
}

// RemoveRegion executes WARDen's Remove Region instruction, reconciling the
// region's W blocks. Removing core.NullRegion is a cheap no-op.
func (c *Ctx) RemoveRegion(id core.RegionID) {
	c.t.Call(&removeRegionOp{id: id})
}
