package machine

import (
	"testing"

	"warden/internal/core"
	"warden/internal/topology"
)

func benchConfig() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return cfg
}

// BenchmarkL1HitPath measures the host cost of one simulated load that
// hits in the L1: operand encoding, the engine's inline fast path (the
// other cores exit immediately, so core 0 never parks), and the cache
// lookup itself. This is the dominant per-instruction cost of every
// benchmark run.
func BenchmarkL1HitPath(b *testing.B) {
	m := New(benchConfig(), core.WARDen)
	addr := m.Mem().Alloc(64, 64)
	bodies := make([]func(*Ctx), m.Config().Threads())
	bodies[0] = func(ctx *Ctx) {
		ctx.Store(addr, 8, 1)
		for i := 0; i < b.N; i++ {
			ctx.Load(addr, 8)
		}
	}
	for i := 1; i < len(bodies); i++ {
		bodies[i] = func(*Ctx) {}
	}
	b.ResetTimer()
	if _, err := m.Run(bodies); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkComputePath is BenchmarkL1HitPath's sibling for pure compute
// operations (no cache interaction at all).
func BenchmarkComputePath(b *testing.B) {
	m := New(benchConfig(), core.WARDen)
	bodies := make([]func(*Ctx), m.Config().Threads())
	bodies[0] = func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Compute(3)
		}
	}
	for i := 1; i < len(bodies); i++ {
		bodies[i] = func(*Ctx) {}
	}
	b.ResetTimer()
	if _, err := m.Run(bodies); err != nil {
		b.Fatal(err)
	}
}
