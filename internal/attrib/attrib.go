// Package attrib is the exact cycle-attribution layer: a core.Sink that
// folds the instruction-level event stream into per-core × per-event-kind ×
// per-address-bucket × per-phase cycle accounts, together with a bounded
// per-block flight recorder of coherence transitions (flight.go) and a
// protocol-delta explainer (explain.go) that decomposes a subject-vs-
// baseline cycle difference into those accounts with zero residue.
//
// The exactness contract rests on one engine identity: a thread's clock
// advances only by the value the machine's op handler returns, and that
// value is stamped on every instruction-level event as Event.Advance. The
// sum of Advance over a thread's events is therefore the thread's final
// clock, and the run's cycle count is the maximum over threads. Reconcile
// checks both equalities and treats any residue as an error — an
// attribution that does not sum to the measurement is a bug, not a caveat.
//
// Like every sink before it (telemetry, trace), a Ledger is pure
// observation: it copies what it needs from each event and never mutates
// the simulated system, so attribution-enabled runs are byte-identical to
// bare runs (TestAttribMatchesUnobserved).
package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"warden/internal/core"
)

// Pseudo-phase names, shared with internal/telemetry's phase table so the
// two attributions of one run agree row for row.
const (
	// OutsidePhase attributes events on a thread with no open phase.
	OutsidePhase = "(outside)"
	// SystemPhase attributes threadless events (the end-of-run drain).
	SystemPhase = "(system)"
)

// NoBucket is the address-bucket value for instruction kinds that carry no
// address operand (compute, fences, region ops, drain).
const NoBucket = ^uint64(0)

// Config parameterizes a Ledger. The zero value is usable: defaults are
// filled in by New.
type Config struct {
	// BucketBytes is the address-bucket granularity (power of two).
	// Default 4096 — one page, matching the telemetry heatmap.
	BucketBytes uint64
	// FlightDepth bounds the per-block transition ring. Default 32.
	FlightDepth int
	// MaxBlocks bounds how many distinct blocks the flight recorder
	// tracks; once full, transitions on new blocks are counted but not
	// recorded. Default 4096.
	MaxBlocks int
	// SampleEvery emits one cumulative-cycles sample per this many
	// instruction events, feeding the Perfetto counter tracks. 0 disables
	// sampling.
	SampleEvery uint64
}

func (c Config) withDefaults() Config {
	if c.BucketBytes == 0 {
		c.BucketBytes = 4096
	}
	if c.BucketBytes&(c.BucketBytes-1) != 0 {
		panic("attrib: BucketBytes must be a power of two")
	}
	if c.FlightDepth <= 0 {
		c.FlightDepth = 32
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 4096
	}
	return c
}

// Key identifies one attribution account. Bucket is the address bucket
// (NoBucket for address-less kinds); Phase is the innermost program phase
// open on the thread when the instruction retired.
type Key struct {
	Thread int
	Kind   core.EventKind
	Bucket uint64
	Phase  string
}

// Account is one ledger cell: every cycle the engine charged Thread for
// Kind instructions touching Bucket inside Phase.
type Account struct {
	Key
	Core   int    // core the thread maps to (topology-invariant per run)
	Cycles uint64 // sum of Event.Advance
	Events uint64 // instruction count
}

// threadTotal reconstructs one thread's clock two independent ways.
type threadTotal struct {
	sum   uint64 // sum of Advance over the thread's events
	clock uint64 // max over events of Cycle+Advance (the post-op clock)
}

// Sample is one point of the cumulative attributed-cycles series, for
// counter tracks: total cycles attributed per kind up to Cycle.
type Sample struct {
	Cycle   uint64
	ByKind  map[string]uint64
	Untimed uint64 // events observed so far (all kinds)
}

// Ledger is the attribution sink. Not safe for concurrent use; the event
// stream is serialized by construction.
type Ledger struct {
	cfg      Config
	accounts map[Key]*Account
	threads  map[int]*threadTotal
	stacks   map[int][]string // per-thread open-phase stack (LIFO)
	flight   *Flight

	// Unbalanced counts EvPhaseEnd markers that did not match the top of
	// their thread's stack. Always zero for runtime-emitted markers.
	Unbalanced uint64

	events   uint64
	perKind  map[core.EventKind]uint64 // cumulative cycles per kind
	samples  []Sample
	reconOK  bool
	reconFor uint64
}

// New builds a Ledger with cfg (zero value → defaults).
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	return &Ledger{
		cfg:      cfg,
		accounts: make(map[Key]*Account),
		threads:  make(map[int]*threadTotal),
		stacks:   make(map[int][]string),
		perKind:  make(map[core.EventKind]uint64),
		flight:   newFlight(cfg),
	}
}

// Flight returns the ledger's block flight recorder.
func (l *Ledger) Flight() *Flight { return l.flight }

// Config returns the (defaulted) configuration the ledger runs with.
func (l *Ledger) Config() Config { return l.cfg }

// Events returns how many events of any kind the ledger observed.
func (l *Ledger) Events() uint64 { return l.events }

// Event implements core.Sink.
func (l *Ledger) Event(ev *core.Event) {
	l.events++
	switch ev.Kind {
	case core.EvPhaseBegin:
		l.stacks[ev.Thread] = append(l.stacks[ev.Thread], ev.Label)
		return
	case core.EvPhaseEnd:
		st := l.stacks[ev.Thread]
		if n := len(st); n > 0 && st[n-1] == ev.Label {
			l.stacks[ev.Thread] = st[:n-1]
		} else {
			l.Unbalanced++
		}
		return
	case core.EvTransaction, core.EvEvict, core.EvReconcile:
		l.flight.observe(ev)
		return
	}
	// Instruction-level event: charge its Advance to the account.
	if ev.Thread >= 0 {
		tt := l.threads[ev.Thread]
		if tt == nil {
			tt = &threadTotal{}
			l.threads[ev.Thread] = tt
		}
		tt.sum += ev.Advance
		if end := ev.Cycle + ev.Advance; end > tt.clock {
			tt.clock = end
		}
	}
	k := Key{Thread: ev.Thread, Kind: ev.Kind, Bucket: l.bucketOf(ev), Phase: l.phaseOf(ev)}
	acct := l.accounts[k]
	if acct == nil {
		acct = &Account{Key: k, Core: ev.Core}
		l.accounts[k] = acct
	}
	acct.Cycles += ev.Advance
	acct.Events++
	l.perKind[ev.Kind] += ev.Advance
	if l.cfg.SampleEvery > 0 && l.events%l.cfg.SampleEvery == 0 {
		l.sample(ev.Cycle + ev.Advance)
	}
}

// sample appends one cumulative per-kind point.
func (l *Ledger) sample(cycle uint64) {
	by := make(map[string]uint64, len(l.perKind))
	for k, v := range l.perKind {
		by[k.String()] = v
	}
	l.samples = append(l.samples, Sample{Cycle: cycle, ByKind: by, Untimed: l.events})
}

// Samples returns the cumulative counter-track series (nil when sampling
// is disabled).
func (l *Ledger) Samples() []Sample { return l.samples }

// bucketOf maps an instruction event to its address bucket.
func (l *Ledger) bucketOf(ev *core.Event) uint64 {
	switch ev.Kind {
	case core.EvLoad, core.EvStore, core.EvAtomic:
		return uint64(ev.Block) &^ (l.cfg.BucketBytes - 1)
	}
	return NoBucket
}

// phaseOf charges an instruction event to the innermost phase open on its
// thread, like telemetry's PhaseAccount.
func (l *Ledger) phaseOf(ev *core.Event) string {
	if ev.Thread < 0 {
		return SystemPhase
	}
	if st := l.stacks[ev.Thread]; len(st) > 0 {
		return st[len(st)-1]
	}
	return OutsidePhase
}

// Rows returns every account in deterministic order: thread, kind, bucket,
// phase ascending.
func (l *Ledger) Rows() []*Account {
	rows := make([]*Account, 0, len(l.accounts))
	for _, a := range l.accounts {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Bucket != b.Bucket {
			return a.Bucket < b.Bucket
		}
		return a.Phase < b.Phase
	})
	return rows
}

// ThreadCycles returns thread t's reconstructed final clock (0 if the
// thread emitted no events).
func (l *Ledger) ThreadCycles(t int) uint64 {
	if tt := l.threads[t]; tt != nil {
		return tt.clock
	}
	return 0
}

// CriticalThread returns the thread whose final clock equals the run's
// cycle count (the critical path), smallest id on ties, and that clock.
// ok is false when the ledger saw no threaded instruction events.
func (l *Ledger) CriticalThread() (thread int, cycles uint64, ok bool) {
	thread = -1
	for id, tt := range l.threads {
		if !ok || tt.clock > cycles || (tt.clock == cycles && id < thread) {
			thread, cycles, ok = id, tt.clock, true
		}
	}
	return thread, cycles, ok
}

// Reconcile verifies the ledger against the measured run cycle count: per
// thread, the sum of charged advances must equal the reconstructed clock,
// and the maximum clock must equal total. Any difference is returned as an
// error naming the residue — attribution that does not reconcile exactly
// is always a bug.
func (l *Ledger) Reconcile(total uint64) error {
	var maxClock uint64
	for id, tt := range l.threads {
		if tt.sum != tt.clock {
			return fmt.Errorf("attrib: thread %d residue: sum of advances %d != final clock %d (residue %d)",
				id, tt.sum, tt.clock, int64(tt.sum)-int64(tt.clock))
		}
		if tt.clock > maxClock {
			maxClock = tt.clock
		}
	}
	if maxClock != total {
		return fmt.Errorf("attrib: run residue: max thread clock %d != measured cycles %d (residue %d)",
			maxClock, total, int64(maxClock)-int64(total))
	}
	l.reconOK, l.reconFor = true, total
	return nil
}

// Reconciled reports whether Reconcile has succeeded, and for what total.
func (l *Ledger) Reconciled() (uint64, bool) { return l.reconFor, l.reconOK }

// KindShares aggregates cycles per event kind over all threads and returns
// (kind name, cycles) rows sorted by cycles descending, plus the total.
func (l *Ledger) KindShares() (rows []KindShare, total uint64) {
	for k, v := range l.perKind {
		rows = append(rows, KindShare{Kind: k.String(), Cycles: v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Kind < rows[j].Kind
	})
	return rows, total
}

// KindShare is one per-kind aggregate.
type KindShare struct {
	Kind   string `json:"kind"`
	Cycles uint64 `json:"cycles"`
}

// TopKind returns the event kind with the most attributed cycles and its
// share of all attributed cycles — the summary a fleet worker ships back
// with each result. Empty when nothing was attributed.
func (l *Ledger) TopKind() (kind string, share float64) {
	rows, total := l.KindShares()
	if len(rows) == 0 || total == 0 {
		return "", 0
	}
	return rows[0].Kind, float64(rows[0].Cycles) / float64(total)
}

// accountJSON is the JSONL artifact row for one account.
type accountJSON struct {
	Thread int    `json:"thread"`
	Core   int    `json:"core"`
	Kind   string `json:"kind"`
	Bucket string `json:"bucket"` // hex, or "-" for NoBucket
	Phase  string `json:"phase"`
	Cycles uint64 `json:"cycles"`
	Events uint64 `json:"events"`
}

// BucketLabel renders an address bucket for humans: hex, "-" for NoBucket.
func BucketLabel(b uint64) string {
	if b == NoBucket {
		return "-"
	}
	return fmt.Sprintf("0x%x", b)
}

// WriteJSONL dumps the ledger accounts, one JSON object per line, in
// deterministic row order.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, a := range l.Rows() {
		row := accountJSON{
			Thread: a.Thread, Core: a.Core, Kind: a.Kind.String(),
			Bucket: BucketLabel(a.Bucket), Phase: a.Phase,
			Cycles: a.Cycles, Events: a.Events,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
