package attrib

import (
	"bytes"
	"strings"
	"testing"

	"warden/internal/cache"
	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/stats"
)

// instr feeds one instruction-level event through the ledger.
func instr(l *Ledger, thread int, kind core.EventKind, cycle, adv uint64, block uint64) {
	l.Event(&core.Event{
		Kind: kind, Thread: thread, Core: thread, Cycle: cycle,
		Advance: adv, Block: mem.Addr(block), Addr: mem.Addr(block),
	})
}

func marker(l *Ledger, thread int, kind core.EventKind, label string) {
	l.Event(&core.Event{Kind: kind, Thread: thread, Label: label})
}

func TestLedgerReconcilesExactly(t *testing.T) {
	l := New(Config{BucketBytes: 64})
	// Thread 0: 10 + 5 cycles; thread 1: 7 cycles. Run cycles = 15.
	instr(l, 0, core.EvLoad, 0, 10, 0x1000)
	instr(l, 0, core.EvCompute, 10, 5, 0)
	instr(l, 1, core.EvStore, 0, 7, 0x1040)
	if err := l.Reconcile(15); err != nil {
		t.Fatalf("Reconcile(15): %v", err)
	}
	if th, cy, ok := l.CriticalThread(); !ok || th != 0 || cy != 15 {
		t.Fatalf("CriticalThread = %d,%d,%v; want 0,15,true", th, cy, ok)
	}
	if err := l.Reconcile(16); err == nil {
		t.Fatal("Reconcile(16) accepted a 1-cycle residue")
	}
	if got := l.ThreadCycles(1); got != 7 {
		t.Fatalf("ThreadCycles(1) = %d, want 7", got)
	}
}

func TestLedgerDetectsPerThreadResidue(t *testing.T) {
	l := New(Config{})
	// Advance says 3 but the next event's Cycle implies the clock moved 5:
	// sum(3) != clock(5) must be caught even when the run total matches.
	instr(l, 0, core.EvLoad, 0, 3, 0)
	l.Event(&core.Event{Kind: core.EvLoad, Thread: 0, Cycle: 5, Advance: 0})
	if err := l.Reconcile(5); err == nil || !strings.Contains(err.Error(), "residue") {
		t.Fatalf("per-thread residue not detected: %v", err)
	}
}

func TestLedgerPhaseAndBucketAxes(t *testing.T) {
	l := New(Config{BucketBytes: 4096})
	marker(l, 0, core.EvPhaseBegin, "build")
	instr(l, 0, core.EvLoad, 0, 4, 0x1010)
	marker(l, 0, core.EvPhaseEnd, "build")
	instr(l, 0, core.EvLoad, 4, 4, 0x1020) // outside any phase, same page
	l.Event(&core.Event{Kind: core.EvDrain, Thread: -1, Cycle: 8})
	rows := l.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	byPhase := map[string]uint64{}
	for _, r := range rows {
		byPhase[r.Phase] += r.Cycles
		if r.Kind == core.EvLoad && r.Bucket != 0x1000 {
			t.Fatalf("load bucket = %#x, want 0x1000", r.Bucket)
		}
	}
	if byPhase["build"] != 4 || byPhase[OutsidePhase] != 4 || byPhase[SystemPhase] != 0 {
		t.Fatalf("phase attribution wrong: %v", byPhase)
	}
	if l.Unbalanced != 0 {
		t.Fatalf("Unbalanced = %d", l.Unbalanced)
	}
	marker(l, 0, core.EvPhaseEnd, "never-opened")
	if l.Unbalanced != 1 {
		t.Fatalf("unmatched EvPhaseEnd not counted")
	}
}

func txn(l *Ledger, block uint64, from, to cache.State, inv uint64) {
	l.Event(&core.Event{
		Kind: core.EvTransaction, Thread: 0, Core: 0,
		Block: mem.Addr(block), Mode: core.ModeWrite,
		DirBefore: from, DirAfter: to,
		Ctrs: stats.Snapshot{Invalidations: inv},
	})
}

func TestFlightRecorderBoundsAndChurn(t *testing.T) {
	l := New(Config{FlightDepth: 4, MaxBlocks: 2})
	for i := 0; i < 10; i++ {
		txn(l, 0x100, cache.Shared, cache.Modified, 2)
	}
	txn(l, 0x200, cache.Invalid, cache.Exclusive, 0)
	txn(l, 0x300, cache.Invalid, cache.Exclusive, 0) // over MaxBlocks
	f := l.Flight()
	b := f.Block(0x100)
	if b == nil {
		t.Fatal("block 0x100 untracked")
	}
	if got := len(b.Timeline()); got != 4 {
		t.Fatalf("ring holds %d, want FlightDepth=4", got)
	}
	if b.Dropped != 6 || b.Transactions != 10 {
		t.Fatalf("Dropped=%d Transactions=%d, want 6/10", b.Dropped, b.Transactions)
	}
	if b.Invalidations != 20 || b.InvChains != 10 || b.MaxChain != 2 {
		t.Fatalf("churn aggregates wrong: %+v", b)
	}
	if f.Block(0x300) != nil || f.Untracked != 1 {
		t.Fatalf("MaxBlocks not enforced: untracked=%d", f.Untracked)
	}
	// Hottest-first ordering and summaries.
	blocks := f.Blocks()
	if len(blocks) != 2 || blocks[0].Block != 0x100 {
		t.Fatalf("Blocks() order wrong: %+v", blocks)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 2 {
		t.Fatalf("WriteJSONL wrote %d lines, want 2", lines)
	}
}

func TestExplainSumsExactlyToDelta(t *testing.T) {
	subject := New(Config{BucketBytes: 64})
	instr(subject, 0, core.EvLoad, 0, 100, 0x0)
	instr(subject, 0, core.EvStore, 100, 50, 0x40)
	instr(subject, 1, core.EvLoad, 0, 20, 0x0)

	baseline := New(Config{BucketBytes: 64})
	instr(baseline, 0, core.EvLoad, 0, 120, 0x0)
	instr(baseline, 0, core.EvAtomic, 120, 60, 0x80)

	ex, err := Explain("warden", subject, 150, "mesi", baseline, 180)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.CycleDelta != -30 {
		t.Fatalf("CycleDelta = %d, want -30", ex.CycleDelta)
	}
	var sum int64
	for _, d := range ex.Deltas {
		sum += d.Delta
	}
	if sum != ex.CycleDelta {
		t.Fatalf("bucket deltas sum %d != delta %d", sum, ex.CycleDelta)
	}
	// Thread 1's 20 cycles are off the critical path and must not appear.
	for _, d := range ex.Deltas {
		if d.Subject == 20 {
			t.Fatalf("non-critical thread leaked into decomposition: %+v", d)
		}
	}
	kinds := ex.TopKinds()
	if len(kinds) == 0 || abs64(kinds[0].Delta) < abs64(kinds[len(kinds)-1].Delta) {
		t.Fatalf("TopKinds not |delta|-descending: %+v", kinds)
	}
	var txt bytes.Buffer
	if err := ex.WriteText(&txt, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "residue 0") {
		t.Fatalf("text report missing reconciliation line:\n%s", txt.String())
	}
}

func TestExplainRejectsResidue(t *testing.T) {
	subject := New(Config{})
	instr(subject, 0, core.EvLoad, 0, 10, 0)
	baseline := New(Config{})
	instr(baseline, 0, core.EvLoad, 0, 10, 0)
	if _, err := Explain("a", subject, 11, "b", baseline, 10); err == nil {
		t.Fatal("Explain accepted a subject-side residue")
	}
}

func TestLedgerJSONLDeterministic(t *testing.T) {
	build := func() *Ledger {
		l := New(Config{BucketBytes: 64})
		instr(l, 1, core.EvStore, 0, 3, 0x40)
		instr(l, 0, core.EvLoad, 0, 2, 0x0)
		instr(l, 0, core.EvCompute, 2, 1, 0)
		return l
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"bucket":"-"`) {
		t.Fatalf("NoBucket not rendered as '-':\n%s", a.String())
	}
}

func TestAnnotateVocabulary(t *testing.T) {
	cases := []struct {
		tr   Transition
		want string
	}{
		{Transition{Kind: "transaction", Mode: "read", From: "I", To: "E"}, "read miss"},
		{Transition{Kind: "transaction", Mode: "write", From: "S", To: "M", Invalidations: 3}, "3 sharer(s) invalidated"},
		{Transition{Kind: "transaction", Mode: "read", From: "E", To: "S", Downgrades: 1}, "Fwd-GetS"},
		{Transition{Kind: "transaction", Mode: "write", From: "I", To: "W"}, "ward grant"},
		{Transition{Kind: "transaction", Mode: "atomic", From: "W", To: "M"}, "forced reconcile"},
		{Transition{Kind: "evict", LineState: "M"}, "PutM"},
		{Transition{Kind: "reconcile", Writers: 2, SectorMask: 0x3}, "2 writer(s)"},
	}
	for _, c := range cases {
		if got := Annotate(c.tr); !strings.Contains(got, c.want) {
			t.Errorf("Annotate(%+v) = %q, want substring %q", c.tr, got, c.want)
		}
	}
}

func TestSampling(t *testing.T) {
	l := New(Config{SampleEvery: 2})
	for i := uint64(0); i < 6; i++ {
		instr(l, 0, core.EvLoad, i*4, 4, 0)
	}
	s := l.Samples()
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	if s[2].ByKind["load"] != 24 {
		t.Fatalf("last sample cumulative = %d, want 24", s[2].ByKind["load"])
	}
}
