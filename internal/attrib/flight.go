package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"warden/internal/cache"
	"warden/internal/core"
)

// Transition is one recorded coherence event on a block: a directory
// transaction, an eviction, or a reconciliation, with the directory
// transition and the counter deltas that matter for churn analysis. All
// fields are copied out of the event — nothing aliases simulator state.
type Transition struct {
	Seq           uint64 `json:"seq"`
	Cycle         uint64 `json:"cycle"`
	Kind          string `json:"kind"` // transaction | evict | reconcile
	Thread        int    `json:"thread"`
	Core          int    `json:"core"`
	Mode          string `json:"mode,omitempty"` // transactions: access mode
	From          string `json:"from,omitempty"` // directory state before
	To            string `json:"to,omitempty"`   // directory state after
	OwnerBefore   int    `json:"owner_before"`
	OwnerAfter    int    `json:"owner_after"`
	SharersBefore int    `json:"sharers_before"`
	SharersAfter  int    `json:"sharers_after"`
	LineState     string `json:"line_state,omitempty"` // evictions: victim state
	Latency       uint64 `json:"latency"`
	Invalidations uint64 `json:"inv"`
	Downgrades    uint64 `json:"downg"`
	Writers       uint64 `json:"writers,omitempty"` // reconciles: writers merged
	SectorMask    uint64 `json:"sectors,omitempty"` // reconciles: merged mask
}

// BlockLog is the flight record for one cache block: rolling ring of the
// most recent transitions plus whole-run churn aggregates.
type BlockLog struct {
	Block         uint64 // block address
	Transactions  uint64
	Evictions     uint64
	Reconciles    uint64
	Invalidations uint64 // summed over transactions
	Downgrades    uint64
	SharerChurn   uint64 // sum |sharersAfter - sharersBefore|
	InvChains     uint64 // transactions that invalidated at least one sharer
	MaxChain      uint64 // largest invalidation burst in one transaction
	Dropped       uint64 // transitions overwritten in the ring
	LastState     string // directory state after the latest transition

	lastSeq uint64
	ring    []Transition // bounded at FlightDepth, oldest first after Timeline
	head    int
	full    bool
}

// record appends tr to the bounded ring.
func (b *BlockLog) record(tr Transition, depth int) {
	if len(b.ring) < depth {
		b.ring = append(b.ring, tr)
		return
	}
	b.ring[b.head] = tr
	b.head = (b.head + 1) % len(b.ring)
	b.full = true
	b.Dropped++
}

// Timeline returns the recorded transitions oldest-first.
func (b *BlockLog) Timeline() []Transition {
	if !b.full {
		return append([]Transition(nil), b.ring...)
	}
	out := make([]Transition, 0, len(b.ring))
	out = append(out, b.ring[b.head:]...)
	out = append(out, b.ring[:b.head]...)
	return out
}

// Flight is the bounded per-block flight recorder. It tracks up to
// MaxBlocks distinct blocks; transitions on further blocks are counted in
// Untracked but not recorded, keeping memory bounded on any run.
type Flight struct {
	cfg       Config
	blocks    map[uint64]*BlockLog
	Untracked uint64 // transitions dropped because MaxBlocks was reached
}

func newFlight(cfg Config) *Flight {
	return &Flight{cfg: cfg, blocks: make(map[uint64]*BlockLog)}
}

// observe folds one protocol-internal event into the recorder.
func (f *Flight) observe(ev *core.Event) {
	bl := f.blocks[uint64(ev.Block)]
	if bl == nil {
		if len(f.blocks) >= f.cfg.MaxBlocks {
			f.Untracked++
			return
		}
		bl = &BlockLog{Block: uint64(ev.Block)}
		f.blocks[uint64(ev.Block)] = bl
	}
	tr := Transition{
		Seq:           ev.Seq,
		Cycle:         ev.Cycle,
		Thread:        ev.Thread,
		Core:          ev.Core,
		OwnerBefore:   ev.OwnerBefore,
		OwnerAfter:    ev.OwnerAfter,
		SharersBefore: ev.SharersBefore.Count(),
		SharersAfter:  ev.SharersAfter.Count(),
		Latency:       ev.Latency,
		Invalidations: ev.Ctrs.Invalidations,
		Downgrades:    ev.Ctrs.Downgrades,
	}
	switch ev.Kind {
	case core.EvTransaction:
		tr.Kind = "transaction"
		tr.Mode = ev.Mode.String()
		tr.From = ev.DirBefore.String()
		tr.To = ev.DirAfter.String()
		bl.Transactions++
		bl.Invalidations += ev.Ctrs.Invalidations
		bl.Downgrades += ev.Ctrs.Downgrades
		d := tr.SharersAfter - tr.SharersBefore
		if d < 0 {
			d = -d
		}
		bl.SharerChurn += uint64(d)
		if ev.Ctrs.Invalidations > 0 {
			bl.InvChains++
			if ev.Ctrs.Invalidations > bl.MaxChain {
				bl.MaxChain = ev.Ctrs.Invalidations
			}
		}
		bl.LastState = tr.To
	case core.EvEvict:
		tr.Kind = "evict"
		tr.LineState = ev.LineState.String()
		tr.From = ev.DirBefore.String()
		tr.To = ev.DirAfter.String()
		bl.Evictions++
		bl.LastState = tr.To
	case core.EvReconcile:
		tr.Kind = "reconcile"
		tr.Writers = ev.Arg1
		tr.SectorMask = ev.Arg2
		tr.From = ev.DirBefore.String()
		tr.To = ev.DirAfter.String()
		bl.Reconciles++
		bl.LastState = tr.To
	}
	bl.lastSeq = ev.Seq
	bl.record(tr, f.cfg.FlightDepth)
}

// Block returns the log for one block address, nil if untracked.
func (f *Flight) Block(addr uint64) *BlockLog { return f.blocks[addr] }

// Blocks returns every tracked block log, hottest first (invalidations +
// downgrades + sharer churn descending, block address ascending on ties).
func (f *Flight) Blocks() []*BlockLog {
	out := make([]*BlockLog, 0, len(f.blocks))
	for _, b := range f.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		hi := out[i].Invalidations + out[i].Downgrades + out[i].SharerChurn
		hj := out[j].Invalidations + out[j].Downgrades + out[j].SharerChurn
		if hi != hj {
			return hi > hj
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// BlockSummary is the wire form of one block's flight record, served at
// /runs/{id}/blocks and written to the .blocks.jsonl artifact.
type BlockSummary struct {
	Block         string       `json:"block"` // hex address
	Transactions  uint64       `json:"transactions"`
	Evictions     uint64       `json:"evictions"`
	Reconciles    uint64       `json:"reconciles"`
	Invalidations uint64       `json:"invalidations"`
	Downgrades    uint64       `json:"downgrades"`
	SharerChurn   uint64       `json:"sharer_churn"`
	InvChains     uint64       `json:"inv_chains"`
	MaxChain      uint64       `json:"max_chain"`
	LastState     string       `json:"last_state"`
	Dropped       uint64       `json:"dropped,omitempty"`
	Recent        []Transition `json:"recent"`
}

func (b *BlockLog) summary() BlockSummary {
	return BlockSummary{
		Block:         fmt.Sprintf("0x%x", b.Block),
		Transactions:  b.Transactions,
		Evictions:     b.Evictions,
		Reconciles:    b.Reconciles,
		Invalidations: b.Invalidations,
		Downgrades:    b.Downgrades,
		SharerChurn:   b.SharerChurn,
		InvChains:     b.InvChains,
		MaxChain:      b.MaxChain,
		LastState:     b.LastState,
		Dropped:       b.Dropped,
		Recent:        b.Timeline(),
	}
}

// Summaries returns every tracked block as a BlockSummary, hottest first.
func (f *Flight) Summaries() []BlockSummary {
	blocks := f.Blocks()
	out := make([]BlockSummary, len(blocks))
	for i, b := range blocks {
		out[i] = b.summary()
	}
	return out
}

// WriteJSONL dumps one BlockSummary per line, hottest block first.
func (f *Flight) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, b := range f.Blocks() {
		if err := enc.Encode(b.summary()); err != nil {
			return err
		}
	}
	return nil
}

// Annotate names the protocol arc a transition corresponds to, in the
// vocabulary of PROTOCOL.md's event glossary (Fig. 5 of the paper): GetS /
// GetM directory transactions by requested mode, PutS/PutE/PutM(PutO)
// eviction arcs by victim state, ward grants and forced reconciliations
// for the W state. The annotation is descriptive only — it names the arc,
// it does not re-derive protocol behaviour.
func Annotate(tr Transition) string {
	switch tr.Kind {
	case "evict":
		return fmt.Sprintf("Put%s eviction (victim line in %s)", tr.LineState, tr.LineState)
	case "reconcile":
		return fmt.Sprintf("reconcile: %d writer(s) merged, sector mask %#x — W block folded back to directory control",
			tr.Writers, tr.SectorMask)
	}
	// Directory transaction.
	req := "GetS"
	if tr.Mode == "write" || tr.Mode == "atomic" {
		req = "GetM"
	}
	arc := fmt.Sprintf("%s %s→%s", req, tr.From, tr.To)
	switch {
	case tr.To == cache.Ward.String():
		return arc + " ward grant: region-private block handed to self-management, directory bypassed until reconcile"
	case tr.From == cache.Ward.String() && tr.Mode == "atomic":
		return arc + " atomic on warded block: forced reconcile then GetM"
	case tr.From == "I" && req == "GetS":
		return arc + " read miss: directory supplies data, requester added as sharer"
	case tr.From == "I" && req == "GetM":
		return arc + " write miss: directory grants exclusive ownership"
	case req == "GetM" && tr.Invalidations > 0:
		return fmt.Sprintf("%s write upgrade: %d sharer(s) invalidated", arc, tr.Invalidations)
	case req == "GetS" && tr.Downgrades > 0:
		return arc + " Fwd-GetS: owner downgraded, data forwarded"
	case req == "GetM":
		return arc + " write upgrade"
	}
	return arc + " read hit in directory: sharer added"
}
