package attrib

import (
	"fmt"
	"io"
	"sort"

	"warden/internal/core"
)

// DimKey is an attribution dimension independent of thread identity: the
// axes a subject-vs-baseline delta is decomposed along. (The two sides'
// critical threads may be different hardware threads; what is comparable
// is what kinds of work, on which addresses, in which phases, filled their
// critical paths.)
type DimKey struct {
	Kind   core.EventKind
	Bucket uint64
	Phase  string
}

// Delta is one bucket of a cycle-delta decomposition.
type Delta struct {
	DimKey
	Subject  uint64 // cycles on the subject's critical thread
	Baseline uint64 // cycles on the baseline's critical thread
	Delta    int64  // Subject - Baseline
}

// Explanation decomposes the cycle difference between a subject and a
// baseline run of the same benchmark into attribution buckets that sum
// exactly to the measured delta. Exactness follows from Reconcile: each
// side's critical thread's accounts sum to that side's cycle count, so
// bucket-wise subtraction sums to the difference with zero residue.
type Explanation struct {
	SubjectName    string
	BaselineName   string
	SubjectCycles  uint64
	BaselineCycles uint64
	CycleDelta     int64 // SubjectCycles - BaselineCycles
	SubjectThread  int   // subject's critical thread
	BaselineThread int
	Deltas         []Delta // every bucket, |Delta| descending
}

// criticalAccounts gathers one side's critical-thread accounts keyed by
// dimension, verifying they sum to the side's cycle total.
func criticalAccounts(name string, l *Ledger, cycles uint64) (int, map[DimKey]uint64, error) {
	thread, clock, ok := l.CriticalThread()
	if !ok {
		if cycles != 0 {
			return -1, nil, fmt.Errorf("attrib: %s: no threaded events but %d cycles measured", name, cycles)
		}
		return -1, map[DimKey]uint64{}, nil
	}
	if clock != cycles {
		return -1, nil, fmt.Errorf("attrib: %s residue: critical thread %d clock %d != measured cycles %d",
			name, thread, clock, cycles)
	}
	acc := make(map[DimKey]uint64)
	var sum uint64
	for _, a := range l.accounts {
		if a.Thread != thread {
			continue
		}
		acc[DimKey{Kind: a.Kind, Bucket: a.Bucket, Phase: a.Phase}] += a.Cycles
		sum += a.Cycles
	}
	if sum != cycles {
		return -1, nil, fmt.Errorf("attrib: %s residue: critical-thread accounts sum %d != measured cycles %d (residue %d)",
			name, sum, cycles, int64(sum)-int64(cycles))
	}
	return thread, acc, nil
}

// Explain builds the exact decomposition of subjectCycles-baselineCycles.
// Both ledgers must observe runs of the same benchmark; any reconciliation
// residue — per thread, per side, or across the final bucket sum — is an
// error, never a warning.
func Explain(subjectName string, subject *Ledger, subjectCycles uint64,
	baselineName string, baseline *Ledger, baselineCycles uint64) (*Explanation, error) {
	if err := subject.Reconcile(subjectCycles); err != nil {
		return nil, fmt.Errorf("subject %s: %w", subjectName, err)
	}
	if err := baseline.Reconcile(baselineCycles); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", baselineName, err)
	}
	st, sacc, err := criticalAccounts(subjectName, subject, subjectCycles)
	if err != nil {
		return nil, err
	}
	bt, bacc, err := criticalAccounts(baselineName, baseline, baselineCycles)
	if err != nil {
		return nil, err
	}
	keys := make(map[DimKey]bool, len(sacc)+len(bacc))
	for k := range sacc {
		keys[k] = true
	}
	for k := range bacc {
		keys[k] = true
	}
	ex := &Explanation{
		SubjectName: subjectName, BaselineName: baselineName,
		SubjectCycles: subjectCycles, BaselineCycles: baselineCycles,
		CycleDelta:    int64(subjectCycles) - int64(baselineCycles),
		SubjectThread: st, BaselineThread: bt,
	}
	var sum int64
	for k := range keys {
		d := Delta{DimKey: k, Subject: sacc[k], Baseline: bacc[k]}
		d.Delta = int64(d.Subject) - int64(d.Baseline)
		sum += d.Delta
		ex.Deltas = append(ex.Deltas, d)
	}
	if sum != ex.CycleDelta {
		return nil, fmt.Errorf("attrib: decomposition residue: bucket deltas sum %d != cycle delta %d (residue %d)",
			sum, ex.CycleDelta, sum-ex.CycleDelta)
	}
	sort.Slice(ex.Deltas, func(i, j int) bool {
		a, b := ex.Deltas[i], ex.Deltas[j]
		am, bm := abs64(a.Delta), abs64(b.Delta)
		if am != bm {
			return am > bm
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Bucket != b.Bucket {
			return a.Bucket < b.Bucket
		}
		return a.Phase < b.Phase
	})
	return ex, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TopKinds aggregates the decomposition over the kind axis, |delta|
// descending.
func (ex *Explanation) TopKinds() []Delta {
	agg := make(map[core.EventKind]*Delta)
	for _, d := range ex.Deltas {
		a := agg[d.Kind]
		if a == nil {
			a = &Delta{DimKey: DimKey{Kind: d.Kind, Bucket: NoBucket, Phase: ""}}
			agg[d.Kind] = a
		}
		a.Subject += d.Subject
		a.Baseline += d.Baseline
		a.Delta += d.Delta
	}
	out := make([]Delta, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		am, bm := abs64(out[i].Delta), abs64(out[j].Delta)
		if am != bm {
			return am > bm
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// TopBuckets aggregates the decomposition over the address-bucket axis
// (dropping NoBucket rows), |delta| descending, at most n rows (n<=0: all).
func (ex *Explanation) TopBuckets(n int) []Delta {
	agg := make(map[uint64]*Delta)
	for _, d := range ex.Deltas {
		if d.Bucket == NoBucket {
			continue
		}
		a := agg[d.Bucket]
		if a == nil {
			a = &Delta{DimKey: DimKey{Bucket: d.Bucket, Phase: ""}}
			agg[d.Bucket] = a
		}
		a.Subject += d.Subject
		a.Baseline += d.Baseline
		a.Delta += d.Delta
	}
	out := make([]Delta, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		am, bm := abs64(out[i].Delta), abs64(out[j].Delta)
		if am != bm {
			return am > bm
		}
		return out[i].Bucket < out[j].Bucket
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopPhases aggregates the decomposition over the phase axis, |delta|
// descending.
func (ex *Explanation) TopPhases() []Delta {
	agg := make(map[string]*Delta)
	order := []string{}
	for _, d := range ex.Deltas {
		a := agg[d.Phase]
		if a == nil {
			a = &Delta{DimKey: DimKey{Bucket: NoBucket, Phase: d.Phase}}
			agg[d.Phase] = a
			order = append(order, d.Phase)
		}
		a.Subject += d.Subject
		a.Baseline += d.Baseline
		a.Delta += d.Delta
	}
	out := make([]Delta, 0, len(agg))
	for _, p := range order {
		out = append(out, *agg[p])
	}
	sort.Slice(out, func(i, j int) bool {
		am, bm := abs64(out[i].Delta), abs64(out[j].Delta)
		if am != bm {
			return am > bm
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// WriteText renders the explanation as an aligned text report: the
// headline delta, then the kind, phase, and top-n bucket aggregations.
func (ex *Explanation) WriteText(w io.Writer, topN int) error {
	rel := "slower than"
	if ex.CycleDelta < 0 {
		rel = "faster than"
	} else if ex.CycleDelta == 0 {
		rel = "equal to"
	}
	if _, err := fmt.Fprintf(w, "%s: %d cycles (critical thread %d)\n%s: %d cycles (critical thread %d)\ndelta: %+d cycles — %s is %s %s\n",
		ex.SubjectName, ex.SubjectCycles, ex.SubjectThread,
		ex.BaselineName, ex.BaselineCycles, ex.BaselineThread,
		ex.CycleDelta, ex.SubjectName, rel, ex.BaselineName); err != nil {
		return err
	}
	write := func(title, keyHdr string, rows []Delta, key func(Delta) string) error {
		if len(rows) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(w, "\n%s\n%-24s %14s %14s %14s\n", title, keyHdr, ex.SubjectName, ex.BaselineName, "delta"); err != nil {
			return err
		}
		for _, d := range rows {
			if _, err := fmt.Fprintf(w, "%-24s %14d %14d %+14d\n", key(d), d.Subject, d.Baseline, d.Delta); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("by event kind (critical-path cycles):", "kind", ex.TopKinds(),
		func(d Delta) string { return d.Kind.String() }); err != nil {
		return err
	}
	if err := write("by phase:", "phase", ex.TopPhases(),
		func(d Delta) string { return d.Phase }); err != nil {
		return err
	}
	if err := write(fmt.Sprintf("top %d address buckets:", topN), "bucket", ex.TopBuckets(topN),
		func(d Delta) string { return BucketLabel(d.Bucket) }); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nreconciliation: buckets sum exactly to the %+d-cycle delta (residue 0)\n", ex.CycleDelta)
	return err
}
