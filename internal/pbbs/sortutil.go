package pbbs

import (
	"warden/internal/hlpl"
)

// sortGrain is the sequential chunk size at the bottom of the merge sort.
const sortGrain = 48

// insertionSortRange sorts a[lo:hi) in place with simulated accesses.
func insertionSortRange(t *hlpl.Task, a hlpl.U64, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		v := a.Get(t, i)
		j := i - 1
		for j >= lo {
			u := a.Get(t, j)
			t.Compute(1)
			if u <= v {
				break
			}
			a.Set(t, j+1, u)
			j--
		}
		a.Set(t, j+1, v)
	}
}

// mergeRanges merges sorted src[lo:mid) and src[mid:hi) into dst[lo:hi).
func mergeRanges(t *hlpl.Task, src, dst hlpl.U64, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		t.Compute(1)
		v1, v2 := src.Get(t, i), src.Get(t, j)
		if v1 <= v2 {
			dst.Set(t, k, v1)
			i++
		} else {
			dst.Set(t, k, v2)
			j++
		}
		k++
	}
	for ; i < mid; i++ {
		dst.Set(t, k, src.Get(t, i))
		k++
	}
	for ; j < hi; j++ {
		dst.Set(t, k, src.Get(t, j))
		k++
	}
}

// parallelSort sorts src into a freshly allocated array using a
// level-synchronized bottom-up merge sort over ping-pong buffers — the
// PBBS-style bulk-parallel structure. Every level is one bulk operation:
// it reads the previous level's output (written largely by other cores) and
// writes the destination buffer, which the library protects as a WARD
// region. Under MESI each level therefore re-pays forward/downgrade and
// invalidation traffic for nearly every block of both buffers; under WARDen
// the destination writes are W-state private and each level ends with one
// bulk reconciliation.
func parallelSort(t *hlpl.Task, src hlpl.U64) hlpl.U64 {
	n := src.N
	a := t.NewU64(n)
	b := t.NewU64(n)
	// Base level: copy chunks in and sort them sequentially per task.
	nChunks := (n + sortGrain - 1) / sortGrain
	t.WardScope(a.Base, uint64(n)*8, func() {
		t.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
			lo, hi := c*sortGrain, (c+1)*sortGrain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				a.Set(leaf, i, src.Get(leaf, i))
			}
			insertionSortRange(leaf, a, lo, hi)
		})
	})
	// Merge levels: ping-pong between a and b.
	from, to := a, b
	for width := sortGrain; width < n; width *= 2 {
		nPairs := (n + 2*width - 1) / (2 * width)
		t.WardScope(to.Base, uint64(n)*8, func() {
			t.ParallelFor(0, nPairs, 1, func(leaf *hlpl.Task, p int) {
				lo := p * 2 * width
				mid, hi := lo+width, lo+2*width
				if mid > n {
					mid = n
				}
				if hi > n {
					hi = n
				}
				mergeRanges(leaf, from, to, lo, mid, hi)
			})
		})
		from, to = to, from
	}
	return from
}
