package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// MSort is the functional parallel merge sort of a random word array. Every
// task allocates its sorted output in its own leaf heap; parents read both
// children's freshly written arrays while merging. Allocation churn is high
// (one array per tree node), so page recycling keeps MESI busy
// invalidating stale copies.
func MSort(n int) *Workload {
	w := &Workload{Name: "msort", Size: n}
	r := newRng(0x5027)
	input := make([]uint64, n)
	for i := range input {
		input[i] = r.next() % 1_000_000
	}
	var (
		in, out hlpl.U64
	)

	w.Prepare = func(m *machine.Machine) {
		in = hostAllocU64(m, n)
		hostWriteU64(m, in, input)
	}
	w.Root = func(root *hlpl.Task) {
		out = parallelSort(root, in)
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU64(m, out)
		want := sortedCopy(input)
		if len(got) != len(want) {
			return fmt.Errorf("msort: %d elements, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("msort: out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}
