package pbbs

import (
	"bytes"
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// grepPattern is the fixed needle; three characters over a 26-letter
// alphabet gives a realistic sparse hit rate.
var grepPattern = []byte("the")

// Grep finds every occurrence of a pattern in text. Each chunk task scans
// its range, buffering hit positions in task-local scratch (recycled pages
// — the allocation-churn traffic WARDen absorbs); per-chunk counts are
// combined into offsets and a second pass scatters positions into the
// output.
func Grep(n int) *Workload {
	w := &Workload{Name: "grep", Size: n}
	text := genText(n, 0x93e9)
	// Plant extra occurrences so matches are non-trivial.
	r := newRng(7)
	for k := 0; k < n/200; k++ {
		i := r.intn(n - len(grepPattern))
		copy(text[i:], grepPattern)
	}
	var (
		textArr hlpl.U8
		out     hlpl.U64
		total   int
	)

	w.Prepare = func(m *machine.Machine) {
		textArr = hostAllocU8(m, n)
		hostWriteU8(m, textArr, text)
	}

	const nChunks = 96
	scan := func(leaf *hlpl.Task, lo, hi int, emit func(pos int)) {
		if hi > n-len(grepPattern)+1 {
			hi = n - len(grepPattern) + 1
		}
		for i := lo; i < hi; i++ {
			if textArr.Get(leaf, i) != grepPattern[0] {
				continue
			}
			ok := true
			for j := 1; j < len(grepPattern); j++ {
				leaf.Compute(1)
				if textArr.Get(leaf, i+j) != grepPattern[j] {
					ok = false
					break
				}
			}
			if ok {
				emit(i)
			}
		}
	}

	w.Root = func(root *hlpl.Task) {
		sums := root.NewU64(nChunks)
		// Phase 1: scan chunks, buffering hits in task-local scratch.
		root.WardScope(sums.Base, nChunks*8, func() {
			root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
				lo, hi := c*n/nChunks, (c+1)*n/nChunks
				buf := leaf.NewU64Scratch(hi - lo)
				cnt := 0
				scan(leaf, lo, hi, func(pos int) {
					buf.Set(leaf, cnt, uint64(pos))
					cnt++
				})
				sums.Set(leaf, c, uint64(cnt))
			})
		})
		offs := root.NewU64(nChunks)
		var acc uint64
		for c := 0; c < nChunks; c++ {
			offs.Set(root, c, acc)
			acc += sums.Get(root, c)
		}
		total = int(acc)

		// Phase 2: rescan and scatter positions at each chunk's offset.
		out = root.NewU64(total)
		root.WardScope(out.Base, uint64(total)*8, func() {
			root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
				lo, hi := c*n/nChunks, (c+1)*n/nChunks
				k := int(offs.Get(leaf, c))
				scan(leaf, lo, hi, func(pos int) {
					out.Set(leaf, k, uint64(pos))
					k++
				})
			})
		})
	}

	w.Verify = func(m *machine.Machine) error {
		var want []int
		for i := 0; i+len(grepPattern) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(grepPattern)], grepPattern) {
				want = append(want, i)
			}
		}
		if total != len(want) {
			return fmt.Errorf("grep: %d matches, want %d", total, len(want))
		}
		got := hostReadU64(m, out)
		for i := range want {
			if got[i] != uint64(want[i]) {
				return fmt.Errorf("grep: match[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}
