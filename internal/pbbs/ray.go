package pbbs

import (
	"fmt"
	"math"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// raySphere is one scene sphere in fixed layout: cx, cy, cz, r, shade.
const raySphereWords = 5

// raySpheres is the scene size; enough that per-tile culling matters.
const raySpheres = 96

// rayScene builds a deterministic scene of k spheres as float64 bit
// patterns.
func rayScene(k int) []uint64 {
	r := newRng(0x4a4)
	s := make([]uint64, 0, k*raySphereWords)
	for i := 0; i < k; i++ {
		cx := float64(r.intn(2000))/1000 - 1
		cy := float64(r.intn(2000))/1000 - 1
		cz := 2 + float64(r.intn(3000))/1000
		rad := 0.08 + float64(r.intn(250))/1000
		shade := 0.2 + float64(r.intn(800))/1000
		for _, f := range []float64{cx, cy, cz, rad, shade} {
			s = append(s, math.Float64bits(f))
		}
	}
	return s
}

// rayTiles is the per-axis screen tile count for the binning acceleration
// structure.
const rayTiles = 12

// sphereTileBounds conservatively projects sphere s onto the tile grid.
func sphereTileBounds(scene []uint64, s int) (tx0, tx1, ty0, ty1 int) {
	cx := math.Float64frombits(scene[s*raySphereWords+0])
	cy := math.Float64frombits(scene[s*raySphereWords+1])
	cz := math.Float64frombits(scene[s*raySphereWords+2])
	rad := math.Float64frombits(scene[s*raySphereWords+3])
	// Screen position of the center (project to z=1) with a conservative
	// radius expansion.
	px := cx / cz
	py := cy / cz
	pr := rad/cz + rad // slack for perspective distortion
	toTile := func(v float64) int {
		t := int((v + 1) / 2 * rayTiles)
		if t < 0 {
			t = 0
		}
		if t >= rayTiles {
			t = rayTiles - 1
		}
		return t
	}
	return toTile(px - pr), toTile(px + pr), toTile(py - pr), toTile(py + pr)
}

// traceRay intersects the pixel ray with the candidate spheres (indices
// supplied by next) and returns an 8-bit shade. The identical arithmetic
// runs host-side in Verify, so results must match bit-for-bit.
func traceRay(px, py float64, candidates []int, get func(i int) float64) byte {
	bestT := math.Inf(1)
	shade := 0.0
	for _, s := range candidates {
		cx := get(s*raySphereWords + 0)
		cy := get(s*raySphereWords + 1)
		cz := get(s*raySphereWords + 2)
		rad := get(s*raySphereWords + 3)
		// Solve |t*d - c|^2 = r^2 with d = (px, py, 1).
		dd := px*px + py*py + 1
		dc := px*cx + py*cy + cz
		cc := cx*cx + cy*cy + cz*cz - rad*rad
		disc := dc*dc - dd*cc
		if disc <= 0 {
			continue
		}
		t := (dc - math.Sqrt(disc)) / dd
		if t > 0 && t < bestT {
			bestT = t
			shade = get(s*raySphereWords + 4)
		}
	}
	if math.IsInf(bestT, 1) {
		return 0
	}
	return byte(math.Min(255, shade*255))
}

// Ray renders an n×n image of a sphere scene through a two-phase pipeline:
// a parallel build of a screen-space binning structure (per-tile sphere
// lists), then pixel-parallel tracing that reads the freshly built tile
// lists — a producer/consumer shuffle whose loads block on other cores'
// modified blocks under MESI. A checksum pass consumes the image. Like the
// paper's ray, speedup comes almost entirely from avoided downgrades, and
// busy-wait joins can make IPC fall while performance improves.
func Ray(n int) *Workload {
	w := &Workload{Name: "ray", Size: n}
	scene := rayScene(raySpheres)
	var (
		sceneArr hlpl.U64
		img      hlpl.U8
		checksum hlpl.U64
	)

	// Host-side reference binning (identical logic drives Verify).
	hostBins := make([][]int, rayTiles*rayTiles)
	for s := 0; s < raySpheres; s++ {
		tx0, tx1, ty0, ty1 := sphereTileBounds(scene, s)
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				hostBins[ty*rayTiles+tx] = append(hostBins[ty*rayTiles+tx], s)
			}
		}
	}

	w.Prepare = func(m *machine.Machine) {
		sceneArr = hostAllocU64(m, len(scene))
		hostWriteU64(m, sceneArr, scene)
	}
	w.Root = func(root *hlpl.Task) {
		tiles := rayTiles * rayTiles
		// Phase 1: bin spheres into tiles. Counts, offsets, then scatter.
		counts := root.NewU64(tiles)
		root.WardScope(counts.Base, uint64(tiles)*8, func() {
			root.ParallelFor(0, tiles, 4, func(leaf *hlpl.Task, tile int) {
				counts.Set(leaf, tile, 0)
			})
		})
		root.ParallelFor(0, raySpheres, 4, func(leaf *hlpl.Task, s int) {
			leaf.Compute(24)
			// Touch the sphere record (projection reads).
			for wi := 0; wi < raySphereWords; wi++ {
				sceneArr.Get(leaf, s*raySphereWords+wi)
			}
			tx0, tx1, ty0, ty1 := sphereTileBounds(scene, s)
			for ty := ty0; ty <= ty1; ty++ {
				for tx := tx0; tx <= tx1; tx++ {
					leaf.Ctx().FetchAdd(counts.Addr(ty*rayTiles+tx), 8, 1)
				}
			}
		})
		starts := root.NewU64(tiles)
		cursor := root.NewU64(tiles)
		var acc uint64
		for tile := 0; tile < tiles; tile++ {
			starts.Set(root, tile, acc)
			cursor.Set(root, tile, acc)
			acc += counts.Get(root, tile)
		}
		bins := root.NewU64(int(acc))
		root.ParallelFor(0, raySpheres, 4, func(leaf *hlpl.Task, s int) {
			tx0, tx1, ty0, ty1 := sphereTileBounds(scene, s)
			for ty := ty0; ty <= ty1; ty++ {
				for tx := tx0; tx <= tx1; tx++ {
					slot := leaf.Ctx().FetchAdd(cursor.Addr(ty*rayTiles+tx), 8, 1)
					bins.Set(leaf, int(slot), uint64(s))
				}
			}
		})

		// Phase 2: trace pixels through their tile's sphere list.
		img = root.NewU8(n * n)
		root.WardScope(img.Base, uint64(n*n), func() {
			root.ParallelFor(0, n*n, 32, func(leaf *hlpl.Task, p int) {
				x, y := p%n, p/n
				px := 2*(float64(x)+0.5)/float64(n) - 1
				py := 2*(float64(y)+0.5)/float64(n) - 1
				tx := int((px + 1) / 2 * rayTiles)
				ty := int((py + 1) / 2 * rayTiles)
				if tx >= rayTiles {
					tx = rayTiles - 1
				}
				if ty >= rayTiles {
					ty = rayTiles - 1
				}
				tile := ty*rayTiles + tx
				lo := starts.Get(leaf, tile)
				cnt := counts.Get(leaf, tile)
				cand := make([]int, 0, cnt)
				for k := uint64(0); k < cnt; k++ {
					cand = append(cand, int(bins.Get(leaf, int(lo+k))))
				}
				leaf.Compute(uint64(8 * (len(cand) + 1)))
				v := traceRay(px, py, cand, func(i int) float64 {
					return sceneArr.GetF(leaf, i)
				})
				img.Set(leaf, p, v)
			})
		})
		// Consume the image: a tone-map/checksum pass.
		sum := root.Reduce(0, n*n, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(img.Get(leaf, i))
			}
			return s
		}, func(a, b uint64) uint64 { return a + b })
		checksum = root.NewU64(1)
		checksum.Set(root, 0, sum)
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU8(m, img)
		var wantSum uint64
		for p := 0; p < n*n; p++ {
			x, y := p%n, p/n
			px := 2*(float64(x)+0.5)/float64(n) - 1
			py := 2*(float64(y)+0.5)/float64(n) - 1
			tx := int((px + 1) / 2 * rayTiles)
			ty := int((py + 1) / 2 * rayTiles)
			if tx >= rayTiles {
				tx = rayTiles - 1
			}
			if ty >= rayTiles {
				ty = rayTiles - 1
			}
			want := traceRay(px, py, hostBins[ty*rayTiles+tx], func(i int) float64 {
				return math.Float64frombits(scene[i])
			})
			if got[p] != want {
				return fmt.Errorf("ray: pixel %d = %d, want %d", p, got[p], want)
			}
			wantSum += uint64(want)
		}
		if gotSum := m.Mem().ReadUint(checksum.Addr(0), 8); gotSum != wantSum {
			return fmt.Errorf("ray: checksum = %d, want %d", gotSum, wantSum)
		}
		return nil
	}
	return w
}
