package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

func mix(i uint64) uint64 {
	i = (i ^ (i >> 33)) * 0xff51afd7ed558ccd
	return i ^ (i >> 33)
}

// MakeArray is a pure parallel tabulate: allocate an n-word array and fill
// element i with a hash of i. There is no sharing to speak of, so WARDen's
// region-tracking/reconciliation overhead is all cost and no benefit — the
// paper calls make_array out as the benchmark WARDen helps least (§7.2).
func MakeArray(n int) *Workload {
	w := &Workload{Name: "make_array", Size: n}
	var arr hlpl.U64

	w.Root = func(root *hlpl.Task) {
		arr = root.NewU64(n)
		root.WardScope(arr.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
				leaf.Compute(2)
				arr.Set(leaf, i, mix(uint64(i)))
			})
		})
	}
	w.Verify = func(m *machine.Machine) error {
		vals := hostReadU64(m, arr)
		for i, v := range vals {
			if v != mix(uint64(i)) {
				return fmt.Errorf("make_array[%d] = %#x, want %#x", i, v, mix(uint64(i)))
			}
		}
		return nil
	}
	return w
}
