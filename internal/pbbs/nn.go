package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// nnPoint packs 20-bit x and y coordinates into one word.
func nnPack(x, y uint32) uint64 { return uint64(x)<<20 | uint64(y) }
func nnX(p uint64) int          { return int(p >> 20) }
func nnY(p uint64) int          { return int(p & 0xfffff) }
func nnDist2(a, b uint64) uint64 {
	dx := int64(nnX(a) - nnX(b))
	dy := int64(nnY(a) - nnY(b))
	return uint64(dx*dx + dy*dy)
}

// NN finds each point's nearest neighbour via a uniform grid: bucket counts
// are built with fetch-and-add (true synchronization, MESI), points scatter
// into buckets, and the parallel query phase writes results into a WARD
// region while reading the shared grid.
func NN(n int) *Workload {
	w := &Workload{Name: "nn", Size: n}
	const coordRange = 1 << 20
	r := newRng(0x22b)
	pts := make([]uint64, n)
	for i := range pts {
		pts[i] = nnPack(uint32(r.intn(coordRange)), uint32(r.intn(coordRange)))
	}
	g := 1
	for g*g < n/3 {
		g++
	}
	cell := func(p uint64) int {
		cx := nnX(p) * g / coordRange
		cy := nnY(p) * g / coordRange
		return cy*g + cx
	}
	var (
		in      hlpl.U64
		result  hlpl.U64
		sumCell hlpl.U64
	)

	w.Prepare = func(m *machine.Machine) {
		in = hostAllocU64(m, n)
		hostWriteU64(m, in, pts)
	}
	w.Root = func(root *hlpl.Task) {
		cells := g * g
		counts := root.NewU64(cells)
		root.WardScope(counts.Base, uint64(cells)*8, func() {
			root.ParallelFor(0, cells, 512, func(leaf *hlpl.Task, i int) {
				counts.Set(leaf, i, 0)
			})
		})
		// Histogram with atomics.
		root.ParallelFor(0, n, 128, func(leaf *hlpl.Task, i int) {
			p := in.Get(leaf, i)
			leaf.Compute(4)
			leaf.Ctx().FetchAdd(counts.Addr(cell(p)), 8, 1)
		})
		// Exclusive scan (root-sequential over the modest cell count).
		starts := root.NewU64(cells)
		cursor := root.NewU64(cells)
		var acc uint64
		for i := 0; i < cells; i++ {
			starts.Set(root, i, acc)
			cursor.Set(root, i, acc)
			acc += counts.Get(root, i)
		}
		// Scatter point ids into buckets (atomic cursor bump).
		bucketed := root.NewU64(n)
		root.ParallelFor(0, n, 128, func(leaf *hlpl.Task, i int) {
			p := in.Get(leaf, i)
			slot := leaf.Ctx().FetchAdd(cursor.Addr(cell(p)), 8, 1)
			bucketed.Set(leaf, int(slot), uint64(i))
		})
		// Query: nearest neighbour among the 3×3 neighbouring cells.
		result = root.NewU64(n)
		root.WardScope(result.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 64, func(leaf *hlpl.Task, i int) {
				p := in.Get(leaf, i)
				cx := nnX(p) * g / coordRange
				cy := nnY(p) * g / coordRange
				best := uint64(0)
				bestD := ^uint64(0)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						x, y := cx+dx, cy+dy
						if x < 0 || y < 0 || x >= g || y >= g {
							continue
						}
						c := y*g + x
						lo := starts.Get(leaf, c)
						hi := lo + counts.Get(leaf, c)
						for s := lo; s < hi; s++ {
							j := bucketed.Get(leaf, int(s))
							if int(j) == i {
								continue
							}
							leaf.Compute(6)
							d := nnDist2(p, in.Get(leaf, int(j)))
							if d < bestD || (d == bestD && j < best) {
								bestD, best = d, j
							}
						}
					}
				}
				result.Set(leaf, i, best)
			})
		})
		// Consume the results (downstream passes always read them): a
		// checksum over the neighbour indices.
		sum := root.Reduce(0, n, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += result.Get(leaf, i)
			}
			return s
		}, func(a, b uint64) uint64 { return a + b })
		sumCell = root.NewU64(1)
		sumCell.Set(root, 0, sum)
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU64(m, result)
		var wantSum uint64
		for _, v := range got {
			wantSum += v
		}
		if gotSum := m.Mem().ReadUint(sumCell.Addr(0), 8); gotSum != wantSum {
			return fmt.Errorf("nn: checksum = %d, want %d", gotSum, wantSum)
		}
		// Spot-check a deterministic sample against grid-limited brute
		// force (the kernel's contract is "nearest within neighbouring
		// cells", which for uniform data is the true nearest neighbour
		// almost always; verify the same contract).
		check := newRng(9)
		for k := 0; k < 64; k++ {
			i := check.intn(n)
			want, wantD := uint64(0), ^uint64(0)
			cx := nnX(pts[i]) * g / coordRange
			cy := nnY(pts[i]) * g / coordRange
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				jx := nnX(pts[j]) * g / coordRange
				jy := nnY(pts[j]) * g / coordRange
				if jx < cx-1 || jx > cx+1 || jy < cy-1 || jy > cy+1 {
					continue
				}
				d := nnDist2(pts[i], pts[j])
				if d < wantD || (d == wantD && uint64(j) < want) {
					wantD, want = d, uint64(j)
				}
			}
			if wantD != ^uint64(0) && got[i] != want {
				gd := nnDist2(pts[i], pts[got[i]])
				if gd != wantD {
					return fmt.Errorf("nn: point %d -> %d (d2=%d), want %d (d2=%d)", i, got[i], gd, want, wantD)
				}
			}
		}
		return nil
	}
	return w
}
