package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
)

// fibCutoff is the depth below which fib runs sequentially.
const fibCutoff = 11

func fibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	a, b := uint64(0), uint64(1)
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

// fibWork approximates the instruction count of a sequential recursive
// fib(n): about three instructions per call, with call count ~ 2*fib(n).
func fibWork(n int) uint64 { return 3 * (2*fibSeq(n) + 1) }

// Fib is the classic fork-join recursion: almost no memory footprint, so
// its cost is dominated by the scheduler — forks, steals, and join-cell
// synchronization. The paper's fib sees a large reduction in coherence
// events but almost no speedup because few of them are downgrades (§7.2).
func Fib(n int) *Workload {
	w := &Workload{Name: "fib", Size: n}
	var result mem.Addr

	var fib func(t *hlpl.Task, n int) uint64
	fib = func(t *hlpl.Task, n int) uint64 {
		if n <= fibCutoff {
			t.Compute(fibWork(n))
			return fibSeq(n)
		}
		var a, b uint64
		t.Join2(
			func(l *hlpl.Task) { a = fib(l, n-1) },
			func(r *hlpl.Task) { b = fib(r, n-2) },
		)
		// A functional language allocates the result pair after the join.
		pair := t.Alloc(16, 8)
		t.Store(pair, 8, a)
		t.Store(pair+8, 8, b)
		return a + b
	}

	w.Root = func(root *hlpl.Task) {
		result = root.Alloc(8, 8)
		root.Store(result, 8, fib(root, n))
	}
	w.Verify = func(m *machine.Machine) error {
		got := m.Mem().ReadUint(result, 8)
		if want := fibSeq(n); got != want {
			return fmt.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
		return nil
	}
	return w
}
