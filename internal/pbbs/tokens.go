package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

func isWordByte(c byte) bool { return c != ' ' }

// Tokens splits text into space-separated tokens: a flags phase marks token
// starts (dense byte writes with heavy false sharing at chunk boundaries —
// a WARD region), a counting phase computes per-chunk offsets, and a
// scatter phase writes each token's start position into the output array.
func Tokens(n int) *Workload {
	w := &Workload{Name: "tokens", Size: n}
	text := genText(n, 0x70c3)
	var (
		textArr hlpl.U8
		starts  hlpl.U8
		out     hlpl.U64
		total   int
	)

	w.Prepare = func(m *machine.Machine) {
		textArr = hostAllocU8(m, n)
		hostWriteU8(m, textArr, text)
	}

	const nChunks = 96
	w.Root = func(root *hlpl.Task) {
		starts = root.NewU8(n)
		root.WardScope(starts.Base, uint64(n), func() {
			root.ParallelFor(0, n, 512, func(leaf *hlpl.Task, i int) {
				c := textArr.Get(leaf, i)
				prev := byte(' ')
				if i > 0 {
					prev = textArr.Get(leaf, i-1)
				}
				v := byte(0)
				if isWordByte(c) && !isWordByte(prev) {
					v = 1
				}
				starts.Set(leaf, i, v)
			})
		})

		// Per-chunk token counts, then an exclusive scan by the root.
		sums := root.NewU64(nChunks)
		root.WardScope(sums.Base, nChunks*8, func() {
			root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
				lo, hi := c*n/nChunks, (c+1)*n/nChunks
				var cnt uint64
				for i := lo; i < hi; i++ {
					cnt += uint64(starts.Get(leaf, i))
				}
				sums.Set(leaf, c, cnt)
			})
		})
		offs := root.NewU64(nChunks)
		var acc uint64
		for c := 0; c < nChunks; c++ {
			offs.Set(root, c, acc)
			acc += sums.Get(root, c)
		}
		total = int(acc)

		// Scatter token start positions.
		out = root.NewU64(total)
		root.WardScope(out.Base, uint64(total)*8, func() {
			root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
				lo, hi := c*n/nChunks, (c+1)*n/nChunks
				k := offs.Get(leaf, c)
				for i := lo; i < hi; i++ {
					if starts.Get(leaf, i) == 1 {
						out.Set(leaf, int(k), uint64(i))
						k++
					}
				}
			})
		})
	}

	w.Verify = func(m *machine.Machine) error {
		want := hostTokenStarts(text)
		if total != len(want) {
			return fmt.Errorf("tokens: count = %d, want %d", total, len(want))
		}
		got := hostReadU64(m, out)
		for i := range want {
			if got[i] != uint64(want[i]) {
				return fmt.Errorf("tokens: out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

func hostTokenStarts(text []byte) []int {
	var out []int
	prev := byte(' ')
	for i, c := range text {
		if isWordByte(c) && !isWordByte(prev) {
			out = append(out, i)
		}
		prev = c
	}
	return out
}
