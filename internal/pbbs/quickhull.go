package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// qhPack packs signed 20-bit coordinates (offset by 2^19) into one word.
func qhPack(x, y int32) uint64 {
	return uint64(uint32(x+1<<19))<<20 | uint64(uint32(y+1<<19))&0xfffff
}
func qhX(p uint64) int64 { return int64(p>>20) - 1<<19 }
func qhY(p uint64) int64 { return int64(p&0xfffff) - 1<<19 }

// qhCross returns the cross product (b-a) × (c-a): positive when c is left
// of the directed line a→b.
func qhCross(a, b, c uint64) int64 {
	return (qhX(b)-qhX(a))*(qhY(c)-qhY(a)) - (qhY(b)-qhY(a))*(qhX(c)-qhX(a))
}

// QuickHull computes the upper convex hull of a point set. Each recursion
// level filters the surviving points into a fresh array in the task's own
// heap — the functional, allocation-heavy style MPL programs take — and
// hull points concatenate upward through joins. Like the paper's
// quickhull, coherence-event reductions are large but the speedup is
// modest: the kernel is latency-tolerant (stores into fresh pages).
func QuickHull(n int) *Workload {
	w := &Workload{Name: "quickhull", Size: n}
	r := newRng(0x9d11)
	pts := make([]uint64, n)
	for i := range pts {
		x := int32(r.intn(1 << 19))
		y := int32(r.intn(1 << 19))
		pts[i] = qhPack(x-1<<18, y-1<<18)
	}
	var (
		in      hlpl.U64
		hullArr hlpl.U64
		hullLen int
	)

	w.Prepare = func(m *machine.Machine) {
		in = hostAllocU64(m, n)
		hostWriteU64(m, in, pts)
	}

	// hull returns the hull points strictly left of a→b (as packed coords,
	// in a→b order), from candidate point values cand.
	var hull func(t *hlpl.Task, cand hlpl.U64, a, b uint64) hlpl.U64
	hull = func(t *hlpl.Task, cand hlpl.U64, a, b uint64) hlpl.U64 {
		if cand.N == 0 {
			return hlpl.U64{}
		}
		// Farthest point from line a→b.
		far := t.Reduce(0, cand.N, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			best, bestD := uint64(0), int64(-1)
			for i := lo; i < hi; i++ {
				leaf.Compute(4)
				p := cand.Get(leaf, i)
				if d := qhCross(a, b, p); d > bestD {
					best, bestD = p, d
				}
			}
			return best
		}, func(x, y uint64) uint64 {
			if qhCross(a, b, x) >= qhCross(a, b, y) {
				return x
			}
			return y
		})
		// Filter the two flanks into fresh arrays (sequential below a
		// threshold; the recursion supplies the parallelism).
		left := t.NewU64(cand.N)
		right := t.NewU64(cand.N)
		nl, nr := 0, 0
		for i := 0; i < cand.N; i++ {
			t.Compute(4)
			p := cand.Get(t, i)
			if qhCross(a, far, p) > 0 {
				left.Set(t, nl, p)
				nl++
			} else if qhCross(far, b, p) > 0 {
				right.Set(t, nr, p)
				nr++
			}
		}
		var hl, hr hlpl.U64
		t.Join2(
			func(l *hlpl.Task) { hl = hull(l, left.Slice(0, nl), a, far) },
			func(rt *hlpl.Task) { hr = hull(rt, right.Slice(0, nr), far, b) },
		)
		// Concatenate hl ++ [far] ++ hr into a fresh array.
		out := t.NewU64(hl.N + 1 + hr.N)
		k := 0
		for i := 0; i < hl.N; i++ {
			out.Set(t, k, hl.Get(t, i))
			k++
		}
		out.Set(t, k, far)
		k++
		for i := 0; i < hr.N; i++ {
			out.Set(t, k, hr.Get(t, i))
			k++
		}
		return out
	}

	w.Root = func(root *hlpl.Task) {
		// Anchors: leftmost and rightmost points.
		lo, hi := pts[0], pts[0]
		for _, p := range pts {
			if qhX(p) < qhX(lo) || (qhX(p) == qhX(lo) && qhY(p) < qhY(lo)) {
				lo = p
			}
			if qhX(p) > qhX(hi) || (qhX(p) == qhX(hi) && qhY(p) > qhY(hi)) {
				hi = p
			}
		}
		root.Compute(uint64(2 * n)) // anchor scan cost
		upper := hull(root, in, lo, hi)
		hullArr = root.NewU64(upper.N + 2)
		hullArr.Set(root, 0, lo)
		for i := 0; i < upper.N; i++ {
			hullArr.Set(root, i+1, upper.Get(root, i))
		}
		hullArr.Set(root, upper.N+1, hi)
		hullLen = upper.N + 2
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU64(m, hullArr)[:hullLen]
		// 1. Hull vertices must be input points, in strictly increasing x
		//    order... (ties broken by construction) and convex.
		set := make(map[uint64]bool, len(pts))
		for _, p := range pts {
			set[p] = true
		}
		for i, p := range got {
			if !set[p] {
				return fmt.Errorf("quickhull: vertex %d (%#x) not an input point", i, p)
			}
		}
		for i := 2; i < len(got); i++ {
			if qhCross(got[i-2], got[i-1], got[i]) >= 0 {
				return fmt.Errorf("quickhull: vertices %d..%d not convex", i-2, i)
			}
		}
		// 2. No input point lies strictly above any hull edge.
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			for _, p := range pts {
				if qhCross(a, b, p) > 0 {
					return fmt.Errorf("quickhull: point %#x above edge %d", p, i-1)
				}
			}
		}
		return nil
	}
	return w
}
