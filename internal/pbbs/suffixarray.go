package pbbs

import (
	"fmt"
	"sort"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// SuffixArray builds the suffix array of a text by prefix doubling: each
// round packs (rank[i], rank[i+k]) pairs into keys, sorts them with the
// functional parallel merge sort, and rebuilds ranks. Every round allocates
// fresh key/rank arrays (heavy allocation churn), and the sort's merge
// levels read other cores' freshly written data.
func SuffixArray(n int) *Workload {
	if n > 1<<16 {
		panic("pbbs: suffix-array size must fit 16-bit packing")
	}
	w := &Workload{Name: "suffix-array", Size: n}
	text := genText(n, 0x5a5a)
	var (
		textArr hlpl.U8
		saArr   hlpl.U64
	)

	w.Prepare = func(m *machine.Machine) {
		textArr = hostAllocU8(m, n)
		hostWriteU8(m, textArr, text)
	}
	w.Root = func(root *hlpl.Task) {
		// Initial ranks = byte values.
		rank := root.NewU64(n)
		root.WardScope(rank.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
				rank.Set(leaf, i, uint64(textArr.Get(leaf, i))+1)
			})
		})
		var sorted hlpl.U64
		for k := 1; ; k *= 2 {
			// keys[i] = r1<<32 | r2<<16 | i.
			keys := root.NewU64(n)
			root.WardScope(keys.Base, uint64(n)*8, func() {
				root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
					r1 := rank.Get(leaf, i)
					var r2 uint64
					if i+k < n {
						r2 = rank.Get(leaf, i+k)
					}
					leaf.Compute(2)
					keys.Set(leaf, i, r1<<32|r2<<16|uint64(i))
				})
			})
			sorted = parallelSort(root, keys)
			// Rebuild ranks: flag key changes, then a sequential rank
			// assignment by the root (ranks are dense, 1-based).
			diff := root.NewU8(n)
			root.WardScope(diff.Base, uint64(n), func() {
				root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
					v := byte(0)
					if i == 0 || sorted.Get(leaf, i)>>16 != sorted.Get(leaf, i-1)>>16 {
						v = 1
					}
					diff.Set(leaf, i, v)
				})
			})
			newRank := root.NewU64(n)
			var r uint64
			distinct := 0
			for i := 0; i < n; i++ {
				if diff.Get(root, i) == 1 {
					r++
					distinct++
				}
				idx := int(sorted.Get(root, i) & 0xffff)
				newRank.Set(root, idx, r)
			}
			rank = newRank
			if distinct == n {
				break
			}
		}
		saArr = root.NewU64(n)
		root.WardScope(saArr.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 256, func(leaf *hlpl.Task, i int) {
				saArr.Set(leaf, i, sorted.Get(leaf, i)&0xffff)
			})
		})
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU64(m, saArr)
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.Slice(want, func(a, b int) bool {
			return string(text[want[a]:]) < string(text[want[b]:])
		})
		for i := range want {
			if got[i] != uint64(want[i]) {
				return fmt.Errorf("suffix-array: sa[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}
