package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
)

// genPalindromeText produces text over a small alphabet with planted
// palindromes so searches do real work.
func genPalindromeText(n int, seed uint64) []byte {
	r := newRng(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + r.intn(4))
	}
	for k := 0; k < n/64; k++ {
		l := 5 + r.intn(24)
		c := r.intn(n)
		for d := 1; d <= l && c-d >= 0 && c+d < n; d++ {
			out[c+d] = out[c-d]
		}
	}
	return out
}

const palB = 0x100000001b3 // odd polynomial base (mod 2^64 arithmetic)

// Palindrome finds the longest odd-length palindromic substring using
// rolling prefix hashes: forward and reversed hash arrays are built in
// parallel (chunked two-pass scan), then every center binary-searches its
// palindromic radius with hash probes at data-dependent offsets. The probe
// phase reads hash-array blocks freshly written by other cores all over the
// string — the downgrade-dominated pattern behind palindrome's standing as
// the paper's strongest benchmark.
func Palindrome(n int) *Workload {
	w := &Workload{Name: "palindrome", Size: n}
	text := genPalindromeText(n, 0xba1)
	var (
		textArr hlpl.U8
		best    mem.Addr
	)

	w.Prepare = func(m *machine.Machine) {
		textArr = hostAllocU8(m, n)
		hostWriteU8(m, textArr, text)
	}

	const nChunks = 96
	// buildHashes fills h (length n+1) with prefix hashes of the byte
	// sequence read through at (h[i+1] = h[i]*B + at(i)), and pow with
	// powers of B, using a two-pass chunked parallel scan.
	buildHashes := func(root *hlpl.Task, h, pow hlpl.U64, at func(t *hlpl.Task, i int) byte) {
		// Pass 1: per-chunk hash and B^len.
		chunkHash := root.NewU64(nChunks)
		chunkPow := root.NewU64(nChunks)
		root.WardScope(chunkHash.Base, nChunks*8, func() {
			root.WardScope(chunkPow.Base, nChunks*8, func() {
				root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
					lo, hi := c*n/nChunks, (c+1)*n/nChunks
					var hv, pv uint64 = 0, 1
					for i := lo; i < hi; i++ {
						leaf.Compute(2)
						hv = hv*palB + uint64(at(leaf, i))
						pv *= palB
					}
					chunkHash.Set(leaf, c, hv)
					chunkPow.Set(leaf, c, pv)
				})
			})
		})
		// Pass 2: exclusive prefixes over chunks (root-sequential, tiny).
		baseHash := root.NewU64(nChunks)
		basePow := root.NewU64(nChunks)
		var hv, pv uint64 = 0, 1
		for c := 0; c < nChunks; c++ {
			baseHash.Set(root, c, hv)
			basePow.Set(root, c, pv)
			hv = hv*chunkPow.Get(root, c) + chunkHash.Get(root, c)
			pv *= chunkPow.Get(root, c)
		}
		// Pass 3: absolute prefix hashes and powers.
		root.WardScope(h.Base, uint64(h.N)*8, func() {
			root.WardScope(pow.Base, uint64(pow.N)*8, func() {
				if h.N > 0 {
					h.Set(root, 0, 0)
				}
				pow.Set(root, 0, 1)
				root.ParallelFor(0, nChunks, 1, func(leaf *hlpl.Task, c int) {
					lo, hi := c*n/nChunks, (c+1)*n/nChunks
					hv := baseHash.Get(leaf, c)
					pv := basePow.Get(leaf, c)
					for i := lo; i < hi; i++ {
						leaf.Compute(2)
						hv = hv*palB + uint64(at(leaf, i))
						pv *= palB
						h.Set(leaf, i+1, hv)
						pow.Set(leaf, i+1, pv)
					}
				})
			})
		})
	}

	w.Root = func(root *hlpl.Task) {
		hf := root.NewU64(n + 1) // forward prefix hashes
		hr := root.NewU64(n + 1) // reversed-text prefix hashes
		pow := root.NewU64(n + 1)
		buildHashes(root, hf, pow, func(t *hlpl.Task, i int) byte { return textArr.Get(t, i) })
		powDummy := root.NewU64(n + 1)
		buildHashes(root, hr, powDummy, func(t *hlpl.Task, i int) byte { return textArr.Get(t, n-1-i) })

		// isPal reports whether s[l..r] is a palindrome via hash equality.
		isPal := func(t *hlpl.Task, l, r int) bool {
			length := r - l + 1
			t.Compute(8)
			fwd := hf.Get(t, r+1) - hf.Get(t, l)*pow.Get(t, length)
			rl, rr := n-1-r, n-1-l
			rev := hr.Get(t, rr+1) - hr.Get(t, rl)*pow.Get(t, length)
			return fwd == rev
		}

		lens := root.NewU64(n)
		root.WardScope(lens.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 64, func(leaf *hlpl.Task, c int) {
				// Binary search the palindromic radius around center c.
				lo, hi := 0, c
				if n-1-c < hi {
					hi = n - 1 - c
				}
				for lo < hi {
					mid := (lo + hi + 1) / 2
					if isPal(leaf, c-mid, c+mid) {
						lo = mid
					} else {
						hi = mid - 1
					}
				}
				lens.Set(leaf, c, uint64(2*lo+1))
			})
		})
		m := root.Reduce(0, n, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var mx uint64
			for i := lo; i < hi; i++ {
				if v := lens.Get(leaf, i); v > mx {
					mx = v
				}
			}
			return mx
		}, func(a, b uint64) uint64 {
			if a > b {
				return a
			}
			return b
		})
		best = root.Alloc(8, 8)
		root.Store(best, 8, m)
	}

	w.Verify = func(m *machine.Machine) error {
		got := m.Mem().ReadUint(best, 8)
		var want uint64
		for c := 0; c < n; c++ {
			d := 0
			for c-d-1 >= 0 && c+d+1 < n && text[c-d-1] == text[c+d+1] {
				d++
			}
			if v := uint64(2*d + 1); v > want {
				want = v
			}
		}
		if got != want {
			return fmt.Errorf("palindrome: longest = %d, want %d", got, want)
		}
		return nil
	}
	return w
}
