package pbbs

import (
	"fmt"

	"warden/internal/engine"
	"warden/internal/machine"
	"warden/internal/topology"
)

// PingPongResult reports the true-sharing microbenchmark's measurement.
type PingPongResult struct {
	Scenario      string
	Cycles        uint64
	Iterations    int
	CyclesPerIter float64
}

// PingPong runs the paper's Fig. 6 true-sharing kernel on a fresh machine:
// two hardware threads alternately spin on a shared word and overwrite it
// with their own id, forcing the cache block to ping-pong. It returns the
// measured cycles per iteration, the quantity validated against real
// hardware in Table 1.
//
//	while (iterations--) {
//	    while (buf != partnerID) ;
//	    buf = myID;
//	}
func PingPong(cfg topology.Config, threadA, threadB, iterations int, scenario string) (PingPongResult, error) {
	return PingPongOn(machine.EngineSequential, nil, cfg, threadA, threadB, iterations, scenario)
}

// PingPongOn is PingPong under an explicit engine mode with an optional
// live progress probe — the harness path, so kernel-validation steps
// report real simulated throughput like every other perfdb step.
func PingPongOn(emode machine.EngineMode, probe *engine.Probe, cfg topology.Config, threadA, threadB, iterations int, scenario string) (PingPongResult, error) {
	m := machine.New(cfg, 0 /* MESI; the kernel has no WARD regions */)
	m.SetEngineMode(emode)
	if probe != nil {
		m.SetProbe(probe)
	}
	buf := m.Mem().Alloc(64, 64)
	idA, idB := uint64(threadA+1), uint64(threadB+1)
	// A waits for B's id; seed the buffer so A goes first.
	m.Mem().WriteUint(buf, 8, idB)

	player := func(myID, partnerID uint64) func(*machine.Ctx) {
		return func(ctx *machine.Ctx) {
			for it := 0; it < iterations; it++ {
				for ctx.Load(buf, 8) != partnerID {
				}
				ctx.Store(buf, 8, myID)
			}
		}
	}
	bodies := make([]func(*machine.Ctx), cfg.Threads())
	for i := range bodies {
		bodies[i] = func(*machine.Ctx) {}
	}
	if threadA == threadB || threadA >= cfg.Threads() || threadB >= cfg.Threads() {
		return PingPongResult{}, fmt.Errorf("pbbs: bad ping-pong threads %d, %d for %d-thread machine", threadA, threadB, cfg.Threads())
	}
	bodies[threadA] = player(idA, idB)
	bodies[threadB] = player(idB, idA)

	cycles, err := m.Run(bodies)
	if err != nil {
		return PingPongResult{}, err
	}
	return PingPongResult{
		Scenario:      scenario,
		Cycles:        cycles,
		Iterations:    iterations,
		CyclesPerIter: float64(cycles) / float64(iterations),
	}, nil
}
