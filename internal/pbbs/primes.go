package pbbs

import (
	"fmt"
	"math"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// Primes is the paper's running example (Fig. 4): a parallel prime sieve
// whose flags array is written concurrently by many tasks. The races are
// benign write-after-write races — every writer stores the same value
// (false) — so the whole marking phase runs inside a WARD region: under
// WARDen the blocks ping-ponging between markers under MESI instead sit in
// the W state and merge once at the end.
func Primes(n int) *Workload {
	w := &Workload{Name: "primes", Size: n}
	var flags hlpl.U8

	// sieve computes flags[0..n] with flags[p] == 1 iff p is prime,
	// following Fig. 4's structure (recursive sqrt sieve, then parallel
	// marking of composites).
	var sieve func(t *hlpl.Task, n int) hlpl.U8
	sieve = func(t *hlpl.Task, n int) hlpl.U8 {
		f := t.NewU8(n + 1)
		t.Phase("sieve.init", func() {
			t.WardScope(f.Base, uint64(n+1), func() {
				t.ParallelFor(0, n+1, 512, func(leaf *hlpl.Task, i int) {
					f.Set(leaf, i, 1)
				})
			})
		})
		f.Set(t, 0, 0)
		if n >= 1 {
			f.Set(t, 1, 0)
		}
		if n >= 4 {
			sq := int(math.Sqrt(float64(n)))
			sqf := sieve(t, sq)
			t.Phase("sieve.mark", func() {
				t.WardScope(f.Base, uint64(n+1), func() {
					t.ParallelFor(2, sq+1, 1, func(leaf *hlpl.Task, p int) {
						if sqf.Get(leaf, p) == 1 {
							for m := 2 * p; m <= n; m += p {
								leaf.Compute(1)
								f.Set(leaf, m, 0)
							}
						}
					})
				})
			})
		}
		return f
	}

	w.Root = func(root *hlpl.Task) {
		flags = sieve(root, n)
	}
	w.Verify = func(m *machine.Machine) error {
		got := hostReadU8(m, flags)
		want := hostSieve(n)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("primes: flags[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

// hostSieve is the reference sequential sieve.
func hostSieve(n int) []byte {
	f := make([]byte, n+1)
	for i := range f {
		f[i] = 1
	}
	f[0] = 0
	if n >= 1 {
		f[1] = 0
	}
	for p := 2; p*p <= n; p++ {
		if f[p] == 1 {
			for m := p * p; m <= n; m += p {
				f[m] = 0
			}
		}
	}
	return f
}
