package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
)

// DMM is a dense n×n integer matrix multiply, parallel over output rows.
// The output matrix is a WARD region while it is computed: row boundaries
// within cache blocks would otherwise false-share between row tasks, and
// the result is read back by the root afterwards (checksum), exercising the
// proactive-flush path.
func DMM(n int) *Workload {
	w := &Workload{Name: "dmm", Size: n}
	r := newRng(0xd33)
	av := make([]uint64, n*n)
	bv := make([]uint64, n*n)
	for i := range av {
		av[i] = r.next() % 1000
		bv[i] = r.next() % 1000
	}
	var (
		a, b, c hlpl.U64
		sumCell hlpl.U64
	)

	w.Prepare = func(m *machine.Machine) {
		a = hostAllocU64(m, n*n)
		b = hostAllocU64(m, n*n)
		hostWriteU64(m, a, av)
		hostWriteU64(m, b, bv)
	}
	w.Root = func(root *hlpl.Task) {
		c = root.NewU64(n * n)
		root.WardScope(c.Base, uint64(n*n)*8, func() {
			root.ParallelFor(0, n, 1, func(leaf *hlpl.Task, i int) {
				for j := 0; j < n; j++ {
					var s uint64
					for k := 0; k < n; k++ {
						leaf.Compute(2)
						s += a.Get(leaf, i*n+k) * b.Get(leaf, k*n+j)
					}
					c.Set(leaf, i*n+j, s)
				}
			})
		})
		// Checksum pass by the root: reads every freshly produced block.
		sum := root.Reduce(0, n*n, 256, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += c.Get(leaf, i)
			}
			return s
		}, func(x, y uint64) uint64 { return x + y })
		sumCell = root.NewU64(1)
		sumCell.Set(root, 0, sum)
	}
	w.Verify = func(m *machine.Machine) error {
		want := make([]uint64, n*n)
		var wantSum uint64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s uint64
				for k := 0; k < n; k++ {
					s += av[i*n+k] * bv[k*n+j]
				}
				want[i*n+j] = s
				wantSum += s
			}
		}
		got := hostReadU64(m, c)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("dmm: c[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		if gotSum := m.Mem().ReadUint(sumCell.Addr(0), 8); gotSum != wantSum {
			return fmt.Errorf("dmm: checksum = %d, want %d", gotSum, wantSum)
		}
		return nil
	}
	return w
}
