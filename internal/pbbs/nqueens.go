package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
)

// nqueensCount is the sequential bitmask backtracking solver. It returns
// the solution count and the number of search nodes visited (to charge
// simulated compute).
func nqueensCount(n int, cols, diag1, diag2 uint32) (solutions, nodes uint64) {
	full := uint32(1<<n) - 1
	if cols == full {
		return 1, 1
	}
	nodes = 1
	avail := full &^ (cols | diag1 | diag2)
	for avail != 0 {
		bit := avail & (^avail + 1)
		avail &^= bit
		s, nd := nqueensCount(n, cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1)
		solutions += s
		nodes += nd
	}
	return solutions, nodes
}

// nqueensSim is the simulated backtracking search: like a functional
// program, it allocates a fresh board record per search node in the task's
// leaf heap (heap churn is the point — MPL programs allocate constantly)
// and charges compute per node.
func nqueensSim(t *hlpl.Task, n int, cols, diag1, diag2 uint32) uint64 {
	full := uint32(1<<n) - 1
	if cols == full {
		return 1
	}
	var solutions uint64
	avail := full &^ (cols | diag1 | diag2)
	for avail != 0 {
		bit := avail & (^avail + 1)
		avail &^= bit
		node := t.Alloc(16, 8)
		t.Store(node, 8, uint64(cols|bit))
		t.Store(node+8, 8, uint64(diag1|bit))
		t.Compute(6)
		solutions += nqueensSim(t, n, cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1)
	}
	return solutions
}

// NQueens counts the solutions to the n-queens problem. The first two rows
// fan out as parallel tasks (one per legal placement pair); each task then
// backtracks sequentially, allocating a record per search node in its leaf
// heap. The benchmark is fork/steal/allocation-heavy with short-lived
// heaps (discarded at completion, as a generational collector would) — in
// the paper it speeds up mostly through avoided downgrades on scheduler
// and allocator metadata.
func NQueens(n int) *Workload {
	w := &Workload{Name: "nqueens", Size: n}
	var result mem.Addr

	w.Root = func(root *hlpl.Task) {
		full := uint32(1<<n) - 1
		// Enumerate the first two rows' placements.
		type seed struct{ cols, d1, d2 uint32 }
		var seeds []seed
		for c0 := 0; c0 < n; c0++ {
			b0 := uint32(1) << c0
			d1, d2 := b0<<1&full, b0>>1
			for c1 := 0; c1 < n; c1++ {
				b1 := uint32(1) << c1
				if b1&(b0|d1|d2) != 0 {
					continue
				}
				seeds = append(seeds, seed{b0 | b1, (d1 | b1) << 1 & full, (d2 | b1) >> 1})
			}
		}
		counts := root.NewU64(len(seeds))
		root.WardScope(counts.Base, uint64(len(seeds))*8, func() {
			root.ParallelFor(0, len(seeds), 1, func(leaf *hlpl.Task, i int) {
				s := seeds[i]
				sol := nqueensSim(leaf, n, s.cols, s.d1, s.d2)
				counts.Set(leaf, i, sol)
				// The search's node records are garbage once the count is
				// out; a generational collector reclaims them at the join.
				leaf.DiscardHeap()
			})
		})
		total := root.Reduce(0, len(seeds), 16, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += counts.Get(leaf, i)
			}
			return s
		}, func(a, b uint64) uint64 { return a + b })
		result = root.Alloc(8, 8)
		root.Store(result, 8, total)
	}
	w.Verify = func(m *machine.Machine) error {
		got := m.Mem().ReadUint(result, 8)
		want, _ := nqueensCount(n, 0, 0, 0)
		if got != want {
			return fmt.Errorf("nqueens(%d) = %d, want %d", n, got, want)
		}
		return nil
	}
	return w
}
