package pbbs

import (
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
)

// TestSuiteIsDisentangled runs every benchmark with entanglement detection
// enabled and requires zero violations: each benchmark's WARD regions (leaf
// heaps and library scopes) must never host a cross-thread read-after-write.
// This validates the disentanglement-by-construction claim for the whole
// suite, not just output correctness.
func TestSuiteIsDisentangled(t *testing.T) {
	for _, e := range Suite {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m := machine.New(smallConfig(), core.WARDen)
			m.System().SetEntanglementDetection(true)
			w := e.New(e.Small)
			if w.Prepare != nil {
				w.Prepare(m)
			}
			rt := hlpl.New(m, hlpl.DefaultOptions())
			if _, err := rt.Run(w.Root); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m); err != nil {
				t.Fatal(err)
			}
			if n := m.Counters().EntanglementViolations; n != 0 {
				t.Fatalf("%d entangled reads; first: %v", n, m.System().Violations()[0])
			}
		})
	}
}
