package pbbs

import (
	"fmt"

	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
)

// Dedup removes duplicates from a word array using a concurrent
// linear-probing hash set claimed with compare-and-swap. The table is true
// synchronization — CAS races decide winners — so it cannot be a WARD
// region; WARDen leaves this access pattern on the MESI paths, which is
// why dedup is the paper's weakest benchmark (§7.2, Fig. 8).
func Dedup(n int) *Workload {
	w := &Workload{Name: "dedup", Size: n}
	r := newRng(0xdedb)
	// Roughly half the keys are duplicates.
	input := make([]uint64, n)
	for i := range input {
		input[i] = 1 + r.next()%uint64(n/2) // keys are nonzero (0 = empty slot)
	}
	slots := 1
	for slots < 2*n {
		slots *= 2
	}
	var (
		in       hlpl.U64
		table    hlpl.U64
		uniqCell mem.Addr
	)

	w.Prepare = func(m *machine.Machine) {
		in = hostAllocU64(m, n)
		hostWriteU64(m, in, input)
	}
	w.Root = func(root *hlpl.Task) {
		table = root.NewU64(slots)
		// Zero the table (tabulate: a WARD region).
		root.WardScope(table.Base, uint64(slots)*8, func() {
			root.ParallelFor(0, slots, 512, func(leaf *hlpl.Task, i int) {
				table.Set(leaf, i, 0)
			})
		})
		// Insert phase: CAS-claimed slots, per-leaf unique counts.
		unique := root.Reduce(0, n, 128, func(leaf *hlpl.Task, lo, hi int) uint64 {
			var cnt uint64
			ctx := leaf.Ctx()
			for i := lo; i < hi; i++ {
				k := in.Get(leaf, i)
				h := int(mix(k)) & (slots - 1)
				for {
					leaf.Compute(2)
					cur := leaf.Load(table.Addr(h), 8)
					if cur == k {
						break // duplicate
					}
					if cur == 0 {
						if ctx.CAS(table.Addr(h), 8, 0, k) {
							cnt++
							break
						}
						continue // lost the race: re-examine the slot
					}
					h = (h + 1) & (slots - 1)
				}
			}
			return cnt
		}, func(a, b uint64) uint64 { return a + b })
		uniqCell = root.Alloc(8, 8)
		root.Store(uniqCell, 8, unique)
	}
	w.Verify = func(m *machine.Machine) error {
		seen := make(map[uint64]bool, n)
		for _, k := range input {
			seen[k] = true
		}
		got := m.Mem().ReadUint(uniqCell, 8)
		if got != uint64(len(seen)) {
			return fmt.Errorf("dedup: %d unique keys, want %d", got, len(seen))
		}
		// The table must contain exactly the unique keys.
		vals := hostReadU64(m, table)
		found := 0
		for _, v := range vals {
			if v == 0 {
				continue
			}
			if !seen[v] {
				return fmt.Errorf("dedup: table contains unexpected key %d", v)
			}
			found++
		}
		if found != len(seen) {
			return fmt.Errorf("dedup: table holds %d keys, want %d", found, len(seen))
		}
		return nil
	}
	return w
}
