// Package pbbs reimplements the PBBS-style benchmark suite the paper
// evaluates (§7.1): fourteen benchmarks spanning graph/text/geometry/
// numeric workloads, ported to the hlpl fork-join runtime the way the
// Parallel ML benchmarks are ported to MPL. Each workload prepares
// deterministic inputs, runs its parallel kernel on the simulated machine,
// and verifies its own output afterwards.
//
// The package also contains the true-sharing ping-pong microbenchmark of
// Fig. 6 used to validate the simulator's latency model (Table 1).
package pbbs

import (
	"fmt"
	"sort"

	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
)

// Workload is one runnable benchmark instance. Prepare writes inputs into
// simulated memory host-side (input generation is not part of the measured
// region, matching PBBS methodology); Root is the parallel kernel; Verify
// checks outputs host-side after the run.
type Workload struct {
	Name    string
	Size    int
	Prepare func(m *machine.Machine)
	Root    func(*hlpl.Task)
	Verify  func(m *machine.Machine) error
}

// Factory builds a workload for an input size parameter (meaning varies per
// benchmark: element count, string length, matrix dimension, ...).
type Factory func(size int) *Workload

// Entry describes one suite member with its preset sizes. Small keeps unit
// tests fast; Medium is the evaluation size (tuned, like the paper's
// inputs, for feasible simulation times).
type Entry struct {
	Name   string
	New    Factory
	Small  int
	Medium int
}

// Suite lists the fourteen evaluated benchmarks in the paper's (alphabetical)
// order.
var Suite = []Entry{
	{"dedup", Dedup, 2_000, 24_000},
	{"dmm", DMM, 24, 56},
	{"fib", Fib, 17, 24},
	{"grep", Grep, 8_000, 120_000},
	{"make_array", MakeArray, 8_000, 150_000},
	{"msort", MSort, 2_000, 24_000},
	{"nn", NN, 1_000, 12_000},
	{"nqueens", NQueens, 6, 8},
	{"palindrome", Palindrome, 2_000, 20_000},
	{"primes", Primes, 10_000, 200_000},
	{"quickhull", QuickHull, 2_000, 24_000},
	{"ray", Ray, 24, 72},
	{"suffix-array", SuffixArray, 512, 4_096},
	{"tokens", Tokens, 8_000, 150_000},
}

// ByName returns the suite entry with the given name.
func ByName(name string) (Entry, error) {
	for _, e := range Suite {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("pbbs: unknown benchmark %q", name)
}

// Names returns all suite benchmark names in order.
func Names() []string {
	out := make([]string, len(Suite))
	for i, e := range Suite {
		out[i] = e.Name
	}
	return out
}

// ---------------------------------------------------------------------------
// Deterministic input generation (host-side)

// rng is a splitmix64 generator for reproducible inputs.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// hostAllocU64 reserves an n-word array in simulated memory without timing
// (used for inputs prepared before the measured run).
func hostAllocU64(m *machine.Machine, n int) hlpl.U64 {
	return hlpl.U64{Base: m.Mem().Alloc(uint64(n)*8, mem.PageSize), N: n}
}

// hostAllocU8 reserves an n-byte array in simulated memory without timing.
func hostAllocU8(m *machine.Machine, n int) hlpl.U8 {
	return hlpl.U8{Base: m.Mem().Alloc(uint64(n), mem.PageSize), N: n}
}

func hostWriteU64(m *machine.Machine, a hlpl.U64, vals []uint64) {
	for i, v := range vals {
		m.Mem().WriteUint(a.Addr(i), 8, v)
	}
}

func hostReadU64(m *machine.Machine, a hlpl.U64) []uint64 {
	out := make([]uint64, a.N)
	for i := range out {
		out[i] = m.Mem().ReadUint(a.Addr(i), 8)
	}
	return out
}

func hostWriteU8(m *machine.Machine, a hlpl.U8, vals []byte) {
	m.Mem().Write(a.Base, vals)
}

func hostReadU8(m *machine.Machine, a hlpl.U8) []byte {
	out := make([]byte, a.N)
	m.Mem().Read(a.Base, out)
	return out
}

// genText produces deterministic lowercase text with word structure for the
// string benchmarks.
func genText(n int, seed uint64) []byte {
	r := newRng(seed)
	out := make([]byte, n)
	for i := range out {
		if r.intn(7) == 0 {
			out[i] = ' '
		} else {
			out[i] = byte('a' + r.intn(26))
		}
	}
	return out
}

// sortedCopy returns a sorted copy of vals (host-side reference results).
func sortedCopy(vals []uint64) []uint64 {
	out := append([]uint64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
