package pbbs

import (
	"sort"
	"testing"
	"testing/quick"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
)

func TestRngDeterministic(t *testing.T) {
	a, b := newRng(42), newRng(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRng(43)
	same := true
	a = newRng(42)
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenTextShape(t *testing.T) {
	text := genText(10_000, 7)
	spaces := 0
	for _, c := range text {
		if c == ' ' {
			spaces++
		} else if c < 'a' || c > 'z' {
			t.Fatalf("unexpected byte %q", c)
		}
	}
	if spaces == 0 || spaces > len(text)/3 {
		t.Fatalf("space density off: %d/%d", spaces, len(text))
	}
}

func TestHostSieveAgainstTrialDivision(t *testing.T) {
	f := hostSieve(200)
	isPrime := func(n int) bool {
		if n < 2 {
			return false
		}
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i <= 200; i++ {
		if (f[i] == 1) != isPrime(i) {
			t.Fatalf("sieve wrong at %d", i)
		}
	}
}

func TestHostTokenStarts(t *testing.T) {
	got := hostTokenStarts([]byte("ab  cd e "))
	want := []int{0, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQhGeometry(t *testing.T) {
	a := qhPack(0, 0)
	b := qhPack(10, 0)
	up := qhPack(5, 7)
	down := qhPack(5, -7)
	if qhCross(a, b, up) <= 0 {
		t.Fatal("point above the line must have positive cross product")
	}
	if qhCross(a, b, down) >= 0 {
		t.Fatal("point below the line must have negative cross product")
	}
	if qhX(qhPack(-300, 44)) != -300 || qhY(qhPack(-300, 44)) != 44 {
		t.Fatal("pack/unpack round trip failed")
	}
}

func TestQuickQhPackRoundTrip(t *testing.T) {
	f := func(x, y int32) bool {
		x %= 1 << 19
		y %= 1 << 19
		p := qhPack(x, y)
		return qhX(p) == int64(x) && qhY(p) == int64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNNDistance(t *testing.T) {
	a := nnPack(10, 20)
	b := nnPack(13, 24)
	if d := nnDist2(a, b); d != 25 {
		t.Fatalf("dist2 = %d, want 25", d)
	}
	if nnDist2(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestFibHelpers(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13}
	for i, w := range want {
		if got := fibSeq(i); got != w {
			t.Fatalf("fibSeq(%d) = %d, want %d", i, got, w)
		}
	}
	if fibWork(10) <= fibWork(5) {
		t.Fatal("fibWork not increasing")
	}
}

func TestNQueensReference(t *testing.T) {
	for n, want := range map[int]uint64{4: 2, 5: 10, 6: 4, 8: 92} {
		if got, _ := nqueensCount(n, 0, 0, 0); got != want {
			t.Fatalf("nqueens(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestParallelSortProperty: the in-simulator parallel sort must equal the
// host sort for random inputs of random sizes.
func TestParallelSortProperty(t *testing.T) {
	f := func(seed uint16, size uint16) bool {
		n := int(size)%1500 + 2
		r := newRng(uint64(seed))
		input := make([]uint64, n)
		for i := range input {
			input[i] = r.next() % 10_000
		}
		m := machine.New(smallConfig(), core.WARDen)
		in := hostAllocU64(m, n)
		hostWriteU64(m, in, input)
		rt := hlpl.New(m, hlpl.DefaultOptions())
		var out hlpl.U64
		if _, err := rt.Run(func(root *hlpl.Task) {
			out = parallelSort(root, in)
		}); err != nil {
			t.Log(err)
			return false
		}
		got := hostReadU64(m, out)
		want := sortedCopy(input)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if names := Names(); len(names) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14", len(names))
	}
	if !sort.StringsAreSorted(Names()) {
		t.Fatal("suite not in alphabetical (paper) order")
	}
}

func TestPingPongRejectsBadThreads(t *testing.T) {
	cfg := smallConfig()
	if _, err := PingPong(cfg, 0, 0, 10, "same"); err == nil {
		t.Fatal("identical threads accepted")
	}
	if _, err := PingPong(cfg, 0, 99, 10, "oob"); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}
