package pbbs

import (
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/topology"
)

func smallConfig() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return cfg
}

// runWorkload executes one workload on a small machine and verifies it.
func runWorkload(t *testing.T, e Entry, proto core.Protocol, sockets int) *machine.Machine {
	t.Helper()
	cfg := topology.XeonGold6126(sockets)
	cfg.CoresPerSocket = 4
	m := machine.New(cfg, proto)
	w := e.New(e.Small)
	if w.Prepare != nil {
		w.Prepare(m)
	}
	rt := hlpl.New(m, hlpl.DefaultOptions())
	if _, err := rt.Run(w.Root); err != nil {
		t.Fatalf("%s/%v: run: %v", e.Name, proto, err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatalf("%s/%v: verify: %v", e.Name, proto, err)
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatalf("%s/%v: invariants: %v", e.Name, proto, err)
	}
	return m
}

// TestSuiteCorrectUnderAllProtocols is the core end-to-end check: every
// benchmark must produce verified-correct output under MESI, MOESI, and
// WARDen.
func TestSuiteCorrectUnderAllProtocols(t *testing.T) {
	for _, e := range Suite {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			for _, proto := range core.Protocols("mesi", "moesi", "warden") {
				runWorkload(t, e, proto, 1)
			}
		})
	}
}

// TestSuiteDualSocket runs the suite on a (shrunken) two-socket machine.
func TestSuiteDualSocket(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Suite {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			runWorkload(t, e, core.WARDen, 2)
		})
	}
}

// TestSuiteDeterministic re-runs a few benchmarks and compares cycle counts.
func TestSuiteDeterministic(t *testing.T) {
	for _, name := range []string{"primes", "msort", "fib"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m1 := runWorkload(t, e, core.WARDen, 1)
		m2 := runWorkload(t, e, core.WARDen, 1)
		if m1.Cycles() != m2.Cycles() {
			t.Errorf("%s: cycles differ across runs: %d vs %d", name, m1.Cycles(), m2.Cycles())
		}
		if m1.Counters().Instructions != m2.Counters().Instructions {
			t.Errorf("%s: instruction counts differ: %d vs %d",
				name, m1.Counters().Instructions, m2.Counters().Instructions)
		}
	}
}

// TestPingPong checks the Fig. 6 microbenchmark's latency ordering: same
// core ≪ same socket < cross socket (the Table 1 validation property).
func TestPingPong(t *testing.T) {
	const iters = 2000

	smt := topology.XeonGold6126(1)
	smt.ThreadsPerCore = 2
	same, err := PingPong(smt, 0, 1, iters, "same core")
	if err != nil {
		t.Fatal(err)
	}

	one := topology.XeonGold6126(1)
	sock, err := PingPong(one, 0, 1, iters, "same socket")
	if err != nil {
		t.Fatal(err)
	}

	two := topology.XeonGold6126(2)
	cross, err := PingPong(two, 0, 12, iters, "cross socket")
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("cycles/iter: same core %.1f, same socket %.1f, cross socket %.1f",
		same.CyclesPerIter, sock.CyclesPerIter, cross.CyclesPerIter)
	if !(same.CyclesPerIter < sock.CyclesPerIter && sock.CyclesPerIter < cross.CyclesPerIter) {
		t.Errorf("latency ordering violated: %.1f, %.1f, %.1f",
			same.CyclesPerIter, sock.CyclesPerIter, cross.CyclesPerIter)
	}
	if same.CyclesPerIter > 40 {
		t.Errorf("same-core ping-pong too slow: %.1f cycles/iter", same.CyclesPerIter)
	}
	if cross.CyclesPerIter < 500 {
		t.Errorf("cross-socket ping-pong too fast: %.1f cycles/iter", cross.CyclesPerIter)
	}
}
