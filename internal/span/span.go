// Package span is a stdlib-only hierarchical span model for tracing
// distributed sweeps: every interesting interval of work (a job, a unit's
// lease attempt, a worker's simulation, a PDES epoch phase) becomes a Span
// with a trace id shared by everything in one logical request, a span id,
// and a parent pointer — the same shape as OpenTelemetry spans, without
// the dependency.
//
// Context propagation uses the W3C trace-context `traceparent` header
// format ("00-<trace-id>-<span-id>-<flags>"), so the fleet's HTTP hops
// carry trace identity in one header and any standards-aware tool can
// join the trace. Parsing is forgiving by design: a malformed or absent
// header never rejects a request — the receiver just starts a fresh root
// trace (Parse returns the zero, invalid Context).
//
// Everything timestamped is wall-clock microseconds from an injected
// clock, and ids come from an injected uint64 source, so tests are
// sleep-free and byte-stable: a fake clock makes durations exact and a
// counter id source makes every id predictable.
//
// The package is deliberately collector-centric rather than
// goroutine-context-centric: a Collector owns finished spans, and an
// Active span hands out its Context for explicit propagation. A nil
// *Collector (and the nil *Active it returns) is fully inert — every
// method is a no-op — which is how instrumented code paths stay zero-cost
// when tracing is off.
package span

import (
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Context is the propagated identity of a span: which trace it belongs
// to, which span is the parent of whatever happens next, and whether the
// trace is sampled (downstream hops collect detailed child spans only
// when it is).
type Context struct {
	// TraceID is 32 lowercase hex characters, shared by every span in
	// one logical request. All-zero is invalid.
	TraceID string `json:"trace_id"`
	// SpanID is 16 lowercase hex characters identifying the parent span
	// for downstream work. All-zero is invalid.
	SpanID string `json:"span_id"`
	// Sampled is the W3C sampled flag: downstream components should
	// collect and report detailed spans for this trace.
	Sampled bool `json:"sampled"`
}

// Valid reports whether the context carries usable trace identity.
func (c Context) Valid() bool {
	return isHex(c.TraceID, 32) && !allZero(c.TraceID) &&
		isHex(c.SpanID, 16) && !allZero(c.SpanID)
}

// Traceparent renders the context as a W3C traceparent header value,
// version 00. Invalid contexts render as "" (callers omit the header).
func (c Context) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.TraceID + "-" + c.SpanID + "-" + flags
}

// Parse decodes a traceparent header value. It never errors: anything
// malformed — wrong field count, bad lengths, uppercase hex, all-zero
// ids, the forbidden version ff — yields the zero (invalid) Context, and
// the caller starts a fresh root trace. Unknown future versions with
// extra fields are accepted as long as the first four fields parse.
func Parse(header string) Context {
	parts := strings.Split(header, "-")
	if len(parts) < 4 {
		return Context{}
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(version, 2) || version == "ff" {
		return Context{}
	}
	if version == "00" && len(parts) != 4 {
		return Context{}
	}
	if !isHex(traceID, 32) || allZero(traceID) {
		return Context{}
	}
	if !isHex(spanID, 16) || allZero(spanID) {
		return Context{}
	}
	if !isHex(flags, 2) {
		return Context{}
	}
	return Context{
		TraceID: traceID,
		SpanID:  spanID,
		Sampled: hexByte(flags)&0x01 != 0,
	}
}

// isHex reports whether s is exactly n lowercase hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// hexByte decodes a 2-char lowercase hex string (already validated).
func hexByte(s string) byte {
	nib := func(c byte) byte {
		if c <= '9' {
			return c - '0'
		}
		return c - 'a' + 10
	}
	return nib(s[0])<<4 | nib(s[1])
}

const hexDigits = "0123456789abcdef"

// hexUint64 renders v as 16 lowercase hex characters.
func hexUint64(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// NewContext mints a fresh root context from an id source (nil uses
// math/rand). Sampled controls downstream detailed collection.
func NewContext(ids func() uint64, sampled bool) Context {
	if ids == nil {
		ids = rand.Uint64
	}
	return Context{
		TraceID: hexUint64(nonzero(ids)) + hexUint64(ids()),
		SpanID:  hexUint64(nonzero(ids)),
		Sampled: sampled,
	}
}

// nonzero draws from ids until it returns a nonzero value, keeping
// generated ids valid under the all-zero exclusion.
func nonzero(ids func() uint64) uint64 {
	for {
		if v := ids(); v != 0 {
			return v
		}
	}
}

// Span is one finished interval of work. Timestamps are wall-clock
// microseconds (UnixMicro); Track is the display lane the span belongs
// to in an exported timeline (e.g. "coordinator" or a worker id).
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span id, "" for a trace root.
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Track  string `json:"track"`
	// StartUS and EndUS are wall-clock microseconds since the Unix epoch.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Attrs carries small string annotations (unit id, worker, outcome).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent, clamped at zero against
// cross-host clock skew on reconstructed spans.
func (s Span) Duration() time.Duration {
	if s.EndUS < s.StartUS {
		return 0
	}
	return time.Duration(s.EndUS-s.StartUS) * time.Microsecond
}

// Options configures a Collector. Zero values select production
// defaults; tests inject a fake clock and a counter id source.
type Options struct {
	// Clock overrides the wall clock. Default time.Now.
	Clock func() time.Time
	// IDs overrides the id source with a func returning uint64s (zero
	// draws are skipped). Default math/rand.
	IDs func() uint64
	// OnEnd, if set, observes every span as it finishes — the histogram
	// and live-streaming hook. It is called outside the collector lock.
	OnEnd func(Span)
}

// Collector accumulates finished spans for one trace domain (one fleet
// job, one worker execution). All methods are safe for concurrent use,
// and safe on a nil receiver (fully inert).
type Collector struct {
	mu       sync.Mutex
	clock    func() time.Time
	ids      func() uint64
	onEnd    func(Span)
	finished []Span
}

// NewCollector builds a collector.
func NewCollector(opts Options) *Collector {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.IDs == nil {
		opts.IDs = rand.Uint64
	}
	return &Collector{clock: opts.Clock, ids: opts.IDs, onEnd: opts.OnEnd}
}

// StartRoot opens a root span in a fresh trace.
func (c *Collector) StartRoot(name, track string, sampled bool) *Active {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ctx := NewContext(c.ids, sampled)
	now := c.clock().UnixMicro()
	c.mu.Unlock()
	return &Active{c: c, s: Span{
		TraceID: ctx.TraceID,
		SpanID:  ctx.SpanID,
		Name:    name,
		Track:   track,
		StartUS: now,
	}, sampled: sampled}
}

// StartChild opens a span under parent. An invalid parent starts a fresh
// root trace instead (inheriting parent.Sampled, which is false for the
// zero Context) — the never-reject half of the propagation contract.
func (c *Collector) StartChild(parent Context, name, track string) *Active {
	if c == nil {
		return nil
	}
	if !parent.Valid() {
		return c.StartRoot(name, track, parent.Sampled)
	}
	c.mu.Lock()
	id := hexUint64(nonzero(c.ids))
	now := c.clock().UnixMicro()
	c.mu.Unlock()
	return &Active{c: c, s: Span{
		TraceID: parent.TraceID,
		SpanID:  id,
		Parent:  parent.SpanID,
		Name:    name,
		Track:   track,
		StartUS: now,
	}, sampled: parent.Sampled}
}

// Add appends externally produced finished spans (e.g. reported by a
// worker over the wire) to the collector, feeding OnEnd for each.
func (c *Collector) Add(spans []Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	c.mu.Lock()
	c.finished = append(c.finished, spans...)
	onEnd := c.onEnd
	c.mu.Unlock()
	if onEnd != nil {
		for _, s := range spans {
			onEnd(s)
		}
	}
}

// Spans returns a snapshot of the finished spans in end order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.finished...)
}

// Len returns the number of finished spans.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.finished)
}

// Active is an open span. All methods are safe on a nil receiver, so
// call sites never need to guard on whether tracing is enabled.
type Active struct {
	c       *Collector
	mu      sync.Mutex
	s       Span
	sampled bool
	ended   bool
}

// Context returns the propagation context for work done under this span.
// A nil Active returns the zero (invalid) Context.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return Context{TraceID: a.s.TraceID, SpanID: a.s.SpanID, Sampled: a.sampled}
}

// SetAttr annotates the span. Later values win.
func (a *Active) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.Attrs == nil {
		a.s.Attrs = make(map[string]string)
	}
	a.s.Attrs[k] = v
}

// StartChild opens a child span on the same track.
func (a *Active) StartChild(name string) *Active {
	if a == nil {
		return nil
	}
	return a.c.StartChild(a.Context(), name, a.track())
}

func (a *Active) track() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s.Track
}

// End finishes the span, records it in the collector, fires OnEnd, and
// returns the finished Span. Ending twice is a no-op returning the same
// Span — a duplicate completion reuses the first attempt's span.
func (a *Active) End() Span {
	if a == nil {
		return Span{}
	}
	a.mu.Lock()
	if a.ended {
		s := a.s
		a.mu.Unlock()
		return s
	}
	a.ended = true
	c := a.c
	c.mu.Lock()
	a.s.EndUS = c.clock().UnixMicro()
	s := a.s
	c.finished = append(c.finished, s)
	onEnd := c.onEnd
	c.mu.Unlock()
	a.mu.Unlock()
	if onEnd != nil {
		onEnd(s)
	}
	return s
}
