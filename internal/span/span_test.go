package span

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// counterIDs returns a deterministic id source: 1, 2, 3, ...
func counterIDs() func() uint64 {
	var n uint64
	return func() uint64 {
		n++
		return n
	}
}

// fakeClock is a sleep-free microsecond clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testCollector() (*Collector, *fakeClock) {
	clk := newFakeClock()
	return NewCollector(Options{Clock: clk.Now, IDs: counterIDs()}), clk
}

func TestTraceparentRoundTrip(t *testing.T) {
	ctx := NewContext(counterIDs(), true)
	h := ctx.Traceparent()
	want := "00-00000000000000010000000000000002-0000000000000003-01"
	if h != want {
		t.Fatalf("Traceparent() = %q, want %q", h, want)
	}
	back := Parse(h)
	if back != ctx {
		t.Fatalf("Parse(Traceparent()) = %+v, want %+v", back, ctx)
	}
	unsampled := Context{TraceID: ctx.TraceID, SpanID: ctx.SpanID}
	if got := Parse(unsampled.Traceparent()); got != unsampled {
		t.Fatalf("unsampled round trip = %+v, want %+v", got, unsampled)
	}
}

func TestParseMalformed(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if !Parse(valid).Valid() {
		t.Fatalf("Parse(%q) should be valid", valid)
	}
	cases := []string{
		"",
		"garbage",
		"00-0123456789abcdef-0123456789abcdef-01",                   // short trace id
		"00-0123456789abcdef0123456789abcdef-0123456789abcde-01",    // short span id
		"00-00000000000000000000000000000000-0123456789abcdef-01",   // all-zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",   // all-zero span id
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01",   // uppercase hex
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // forbidden version
		"0-0123456789abcdef0123456789abcdef-0123456789abcdef-01",    // short version
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-x", // version 00 with extra field
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0x",   // bad flags
		"00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01",   // non-hex trace id
	}
	for _, h := range cases {
		if ctx := Parse(h); ctx.Valid() {
			t.Errorf("Parse(%q) = %+v, want invalid", h, ctx)
		}
	}
	// A future version may carry extra fields.
	future := "cc-0123456789abcdef0123456789abcdef-0123456789abcdef-01-extra"
	if !Parse(future).Valid() {
		t.Errorf("Parse(%q) should accept a future version's extra fields", future)
	}
}

func TestDeterministicIDsAndExactDurations(t *testing.T) {
	c, clk := testCollector()
	root := c.StartRoot("job", "coordinator", true)
	clk.Advance(2 * time.Second)
	child := root.StartChild("unit")
	child.SetAttr("unit", "J1/0")
	clk.Advance(5 * time.Second)
	cs := child.End()
	clk.Advance(time.Second)
	rs := root.End()

	if cs.TraceID != rs.TraceID {
		t.Fatalf("child trace id %q != root trace id %q", cs.TraceID, rs.TraceID)
	}
	if cs.Parent != rs.SpanID {
		t.Fatalf("child parent %q != root span id %q", cs.Parent, rs.SpanID)
	}
	if cs.Duration() != 5*time.Second {
		t.Fatalf("child duration = %v, want exactly 5s", cs.Duration())
	}
	if rs.Duration() != 8*time.Second {
		t.Fatalf("root duration = %v, want exactly 8s", rs.Duration())
	}
	if cs.Attrs["unit"] != "J1/0" {
		t.Fatalf("child attrs = %v", cs.Attrs)
	}
	if cs.Track != "coordinator" {
		t.Fatalf("child track = %q, want inherited coordinator", cs.Track)
	}
	// Byte-stable ids from the counter source.
	if rs.SpanID != "0000000000000003" || cs.SpanID != "0000000000000004" {
		t.Fatalf("ids not deterministic: root %q child %q", rs.SpanID, cs.SpanID)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("collector has %d spans, want 2", got)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	c, clk := testCollector()
	a := c.StartRoot("attempt", "coordinator", false)
	clk.Advance(time.Second)
	first := a.End()
	clk.Advance(time.Hour)
	second := a.End()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("second End() = %+v, want the first attempt's span %+v", second, first)
	}
	if c.Len() != 1 {
		t.Fatalf("collector has %d spans, want 1 (duplicate End must not re-record)", c.Len())
	}
}

func TestInvalidParentStartsFreshRoot(t *testing.T) {
	c, _ := testCollector()
	a := c.StartChild(Context{}, "job", "coordinator")
	ctx := a.Context()
	if !ctx.Valid() {
		t.Fatalf("child of invalid parent has invalid context %+v", ctx)
	}
	if ctx.Sampled {
		t.Fatal("fresh root from zero context must be unsampled")
	}
	s := a.End()
	if s.Parent != "" {
		t.Fatalf("fresh root has parent %q, want none", s.Parent)
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	a := c.StartChild(Context{TraceID: "0123456789abcdef0123456789abcdef", SpanID: "0123456789abcdef"}, "x", "t")
	if a != nil {
		t.Fatal("nil collector must return nil Active")
	}
	a.SetAttr("k", "v")
	if got := a.Context(); got.Valid() {
		t.Fatalf("nil Active context = %+v, want invalid", got)
	}
	if s := a.End(); s.Name != "" {
		t.Fatalf("nil Active End = %+v, want zero", s)
	}
	b := a.StartChild("y")
	if b != nil {
		t.Fatal("nil Active StartChild must return nil")
	}
	c.Add([]Span{{Name: "n"}})
	if c.Len() != 0 || c.Spans() != nil {
		t.Fatal("nil collector must stay empty")
	}
	if r := c.StartRoot("x", "t", true); r != nil {
		t.Fatal("nil collector StartRoot must return nil")
	}
}

func TestAddFeedsOnEnd(t *testing.T) {
	var seen []Span
	clk := newFakeClock()
	c := NewCollector(Options{Clock: clk.Now, IDs: counterIDs(), OnEnd: func(s Span) { seen = append(seen, s) }})
	a := c.StartRoot("job", "coordinator", false)
	a.End()
	c.Add([]Span{{Name: "execute", Track: "W1"}, {Name: "epoch", Track: "W1"}})
	if len(seen) != 3 {
		t.Fatalf("OnEnd saw %d spans, want 3", len(seen))
	}
	if seen[1].Name != "execute" || seen[2].Name != "epoch" {
		t.Fatalf("OnEnd order wrong: %+v", seen)
	}
	if c.Len() != 3 {
		t.Fatalf("collector has %d spans, want 3", c.Len())
	}
}

func TestNonzeroSkipsZeroDraws(t *testing.T) {
	draws := []uint64{0, 0, 7, 8, 9, 10}
	i := 0
	ids := func() uint64 { v := draws[i%len(draws)]; i++; return v }
	ctx := NewContext(ids, false)
	if !ctx.Valid() {
		t.Fatalf("context from zero-leading source invalid: %+v", ctx)
	}
	if ctx.TraceID[:16] != "0000000000000007" {
		t.Fatalf("trace id hi = %q, want first nonzero draw", ctx.TraceID[:16])
	}
}
