// Package litmus is the named-scenario suite for the protocol model
// checker: each scenario is a small fixed multi-core program whose *every*
// interleaving internal/modelcheck explores against the real protocol
// implementation, checking the full invariant set (SWMR, directory/cache
// agreement, data-value coherence with the WARD relaxation, reconcile
// termination, deadlock freedom, terminal drain equivalence).
//
// Unlike classic litmus testing, a scenario does not assert one
// forbidden/required final outcome: the checker's ghost model already pins
// every load and the drained memory image to the strongest claim the
// protocol makes (sequential consistency outside WARD regions, bounded
// divergence inside). A scenario therefore "passes" when no interleaving
// violates any invariant, and the suite's value is choosing programs that
// steer exploration through the interesting transition arcs —
// store-buffer commits, message races, W-state tenures, mid-tenure
// evictions, dirty writebacks, forced reconciliations. PROTOCOL.md links
// each transition arc to the scenario that covers it.
package litmus

import (
	"fmt"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/modelcheck"
)

// Scenario is one named litmus program.
type Scenario struct {
	Name string
	// Doc says what the scenario steers exploration through.
	Doc string
	// Protocols are the protocols the scenario runs under.
	Protocols []core.Protocol
	// Build returns the checker configuration for one protocol.
	Build func(p core.Protocol) modelcheck.Config
}

// Run explores every interleaving of the scenario under protocol p.
func (s Scenario) Run(p core.Protocol) (modelcheck.Result, error) {
	return modelcheck.Explore(s.Build(p))
}

// universal returns every registered protocol. It is computed at call
// time (never captured in a package variable) so that protocols
// registered outside internal/core — e.g. internal/sisd — are included
// regardless of package initialization order. Scenarios that open
// regions remain valid under protocols without region support: their
// Add Region is rejected and the accesses stay plainly coherent, the
// same arc the region-overflow scenario pins.
func universal() []core.Protocol { return core.All() }

// base returns a scenario topology/addressing skeleton: cores cores whose
// L1/L2 hold l2Lines lines (1 makes distinct blocks conflict), blocks
// tracked blocks, and one region slot per given span.
func base(p core.Protocol, cores, l2Lines, blocks int, regions ...modelcheck.RegionSpan) modelcheck.Config {
	top := modelcheck.TinyTopology(cores, l2Lines, 2)
	return modelcheck.Config{
		Protocol: p,
		Topology: top,
		Cores:    cores,
		Blocks:   modelcheck.DefaultBlocks(blocks, top.BlockSize),
		Regions:  regions,
	}
}

// span covers tracked blocks [lo, hi] (inclusive) of a 64-byte-block
// machine rooted at modelcheck.BlockBase.
func span(lo, hi int) modelcheck.RegionSpan {
	return modelcheck.RegionSpan{
		Lo: modelcheck.BlockBase + mem.Addr(lo*64),
		Hi: modelcheck.BlockBase + mem.Addr((hi+1)*64),
	}
}

// Scenarios returns the suite.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "store-buffering",
			Doc: "Classic SB shape (c0: St x; Ld y ‖ c1: St y; Ld x) under the " +
				"functional store-buffer model: issue and commit interleave as " +
				"separate transitions with TSO same-address forwarding, so the " +
				"checker sees every buffered/committed combination.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 2)
				cfg.StoreBufferDepth = 2
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.St(0, 0, 0, 8), modelcheck.Ld(0, 1, 0, 8)},
					{modelcheck.St(1, 1, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "message-passing",
			Doc: "MP shape (c0: St data; St flag ‖ c1: Ld flag; Ld data): the " +
				"message race between the flag's invalidation and the data's " +
				"GetS — every load must still return the last committed store.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 2)
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.St(0, 0, 0, 8), modelcheck.St(0, 1, 0, 8)},
					{modelcheck.Ld(1, 1, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "fence-sync-point",
			Doc: "MP shape with a fence on each side (c0: St data; Fence; St flag " +
				"‖ c1: Ld flag; Fence; Ld data): the fence drains the store buffer " +
				"and runs the protocol's synchronization-point hook — a no-op under " +
				"eagerly coherent protocols, the self-invalidation/self-downgrade " +
				"flush under SiSd-style ones. Every load must still return the " +
				"last committed store, and the sync sweep must leave the " +
				"directory, private tags, and drain image coherent.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 2)
				cfg.StoreBufferDepth = 2
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.St(0, 0, 0, 8), modelcheck.Fence(0), modelcheck.St(0, 1, 0, 8)},
					{modelcheck.Ld(1, 1, 0, 8), modelcheck.Fence(1), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "ward-stale-read",
			Doc: "One core ward-writes a block while the other reads it: inside " +
				"the open region the reader may see a stale value (the sanctioned " +
				"relaxation); the moment the region ends, reads must be coherent " +
				"again. Under MESI the region is a no-op and every read is strict.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1, span(0, 0))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.St(0, 0, 0, 8), modelcheck.End(0, 0)},
					{modelcheck.Ld(1, 0, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "ward-false-sharing",
			Doc: "Two cores write disjoint halves of one block under a WARD " +
				"region — the paper's target pattern. Reconciliation's sector " +
				"masks must merge both halves exactly; the drain check requires " +
				"the final block to carry each core's bytes (no lost update).",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1, span(0, 0))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.St(0, 0, 0, 4), modelcheck.End(0, 0)},
					{modelcheck.St(1, 0, 4, 4)},
				}
				return cfg
			},
		},
		{
			Name: "ward-true-sharing",
			Doc: "Two cores write the *same* bytes under a WARD region — outside " +
				"the language's WAR-only guarantee. The merge result is " +
				"order-dependent (reconcile order vs. mid-tenure eviction " +
				"flushes), which the ghost model tolerates via per-byte race " +
				"tracking, but every structural invariant must still hold.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1, span(0, 0))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.St(0, 0, 0, 8), modelcheck.End(0, 0)},
					{modelcheck.St(1, 0, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "evict-during-reconcile",
			Doc: "A ward writer touches a conflicting block (single-set L2), " +
				"evicting its own W line mid-tenure: the proactive flush applies " +
				"its sector mask early, and the later region end must reconcile " +
				"the remaining copies without resurrecting flushed state.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 1, 2, span(0, 1))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.St(0, 0, 0, 8), modelcheck.End(0, 0)},
					{modelcheck.St(1, 0, 0, 8), modelcheck.Ld(1, 1, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "w-dirty-writeback-race",
			Doc: "A block is dirty (M) at one core when a region opens and " +
				"another core ward-writes it: granting W must not lose the dirty " +
				"data, and the eventual writeback/reconcile must land both the " +
				"pre-region value and the warded writes correctly.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1, span(0, 0))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.St(0, 0, 0, 4), modelcheck.Begin(0, 0), modelcheck.End(0, 0)},
					{modelcheck.St(1, 0, 4, 4), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "atomic-forces-reconcile",
			Doc: "An atomic hits a ward-written block inside an open region: " +
				"WARDen must force an early reconciliation — the RMW's old value " +
				"must be the last committed store and the block must not remain W.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1, span(0, 0))
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.St(0, 0, 0, 8), modelcheck.End(0, 0)},
					{modelcheck.FA(1, 0, 0, 8, 1)},
				}
				return cfg
			},
		},
		{
			Name: "upgrade-eviction",
			Doc: "S→M upgrade racing a sharer's silent eviction (single-set L2): " +
				"the directory's sharer set must stay conservative — the upgrade " +
				"invalidates a possibly-already-evicted copy without wedging " +
				"either core.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 1, 2)
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Ld(0, 0, 0, 8), modelcheck.St(0, 0, 0, 8)},
					{modelcheck.Ld(1, 0, 0, 8), modelcheck.Ld(1, 1, 0, 8), modelcheck.Ld(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "moesi-owned-sourcing",
			Doc: "MOESI's O state: a dirty block is downgraded to Owned by a " +
				"reader and sourced from the owner, then written again — the " +
				"owner transition must keep exactly one writable copy and the " +
				"dirty data must survive the O→M/I arcs.",
			Protocols: core.Protocols("moesi"),
			Build: func(p core.Protocol) modelcheck.Config {
				cfg := base(p, 2, 2, 1)
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.St(0, 0, 0, 8), modelcheck.Ld(0, 0, 0, 8)},
					{modelcheck.Ld(1, 0, 0, 8), modelcheck.St(1, 0, 0, 8)},
				}
				return cfg
			},
		},
		{
			Name: "region-overflow",
			Doc: "Opening more regions than the table holds (capacity 1, two " +
				"slots): the second Add Region is rejected, its End removes the " +
				"null region, and accesses under the rejected region stay fully " +
				"coherent — the fallback the paper requires when hardware " +
				"resources run out.",
			Protocols: universal(),
			Build: func(p core.Protocol) modelcheck.Config {
				top := modelcheck.TinyTopology(2, 2, 1)
				cfg := modelcheck.Config{
					Protocol: p,
					Topology: top,
					Cores:    2,
					Blocks:   modelcheck.DefaultBlocks(2, top.BlockSize),
					Regions:  []modelcheck.RegionSpan{span(0, 0), span(1, 1)},
				}
				cfg.Programs = [][]modelcheck.Action{
					{modelcheck.Begin(0, 0), modelcheck.Begin(0, 1), modelcheck.St(0, 1, 0, 8),
						modelcheck.End(0, 1), modelcheck.End(0, 0)},
					{modelcheck.St(1, 1, 0, 8)},
				}
				return cfg
			},
		},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("litmus: unknown scenario %q", name)
}
