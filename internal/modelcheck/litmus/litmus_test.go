package litmus

import (
	"testing"

	"warden/internal/core"
)

// TestScenarios explores every interleaving of every scenario under each
// of its protocols. This is the suite CI runs; it must stay fast (each
// scenario is a handful of instructions, so state counts are small).
func TestScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, p := range s.Protocols {
				res, err := s.Run(p)
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if res.Violation != nil {
					trace, terr := res.Violation.TraceText(true)
					if terr != nil {
						trace = "(trace render failed: " + terr.Error() + ")"
					}
					t.Fatalf("%s violation:\n%s\ntrace:\n%s", p, res.Violation.String(), trace)
				}
				t.Logf("%s: %d states, %d transitions, depth %d",
					p, res.States, res.Transitions, res.Depth)
			}
		})
	}
}

// TestSuiteShape pins the suite's advertised coverage: the scenario set is
// referenced by name from PROTOCOL.md, so renames/removals must be
// deliberate.
func TestSuiteShape(t *testing.T) {
	want := []string{
		"store-buffering", "message-passing", "fence-sync-point", "ward-stale-read",
		"ward-false-sharing", "ward-true-sharing", "evict-during-reconcile",
		"w-dirty-writeback-race", "atomic-forces-reconcile",
		"upgrade-eviction", "moesi-owned-sourcing", "region-overflow",
	}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("suite has %d scenarios, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("scenario %d named %q, want %q", i, s.Name, want[i])
		}
		if s.Doc == "" || len(s.Protocols) == 0 {
			t.Errorf("scenario %q missing doc or protocols", s.Name)
		}
		if _, err := ByName(s.Name); err != nil {
			t.Errorf("ByName(%q): %v", s.Name, err)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("ByName accepted an unknown name")
	}
}

// TestWardScenariosReachW sanity-checks that the WARD scenarios actually
// drive the protocol into W-state territory: their WARDen state spaces
// must be strictly larger than MESI's (where regions are no-ops).
func TestWardScenariosReachW(t *testing.T) {
	for _, name := range []string{"ward-stale-read", "ward-false-sharing", "ward-true-sharing"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := s.Run(core.MESI)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := s.Run(core.WARDen)
		if err != nil {
			t.Fatal(err)
		}
		if rw.States <= rm.States {
			t.Errorf("%s: WARDen explored %d states vs MESI %d — W arcs not exercised",
				name, rw.States, rm.States)
		}
	}
}
