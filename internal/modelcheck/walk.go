package modelcheck

import (
	"fmt"
	"math/rand"

	"warden/internal/core"
)

// WalkResult summarizes one random walk.
type WalkResult struct {
	Protocol core.Protocol
	Seed     int64
	// Steps is how many actions were stepped before stopping (the walk
	// stops early at a violation).
	Steps int
	// Violation is the failing execution, or nil.
	Violation *Counterexample
}

// Walk runs one seeded random walk of up to steps actions over cfg's free
// alphabet, checking every invariant after every transition, then drives
// the state to termination and runs the drain checks. Walks reach depths
// exhaustive search cannot; the price is that a found violation is not
// minimal (its path is the whole walk).
func Walk(cfg Config, seed int64, steps int) (WalkResult, error) {
	if cfg.Alphabet == nil {
		return WalkResult{}, fmt.Errorf("modelcheck: Walk needs a free alphabet (litmus programs are for Explore)")
	}
	if err := cfg.validate(); err != nil {
		return WalkResult{}, err
	}
	res := WalkResult{Protocol: cfg.Protocol, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	e := newExec(&cfg)
	var path []Action
	for i := 0; i < steps; i++ {
		acts := e.enabledActions()
		a := acts[rng.Intn(len(acts))]
		path = append(path, a)
		if err := e.step(a); err != nil {
			res.Steps = len(path)
			res.Violation = newCounterexample(&cfg, path, len(path), e.beginOK, err)
			return res, nil
		}
	}
	res.Steps = len(path)
	res.Violation = finishCheck(&cfg, path, e)
	return res, nil
}

// DiffWalk runs the same seeded random walk on two registered protocols
// in lockstep (the action schedule is a function of model state only,
// which the two executions share) and additionally requires the two
// final memories to agree on every tracked byte not affected by a
// true-sharing WARD merge — the paper's contract that WARDen is
// observationally equivalent to MESI outside WARD regions, generalized
// to any protocol pair. "Affected" is transitive through atomics: a
// fetch-add that consumes a racy byte bakes the (order-dependent) merge
// outcome into its result, so the byte stays exempt from the comparison
// until a plain store — whose value both protocols agree on —
// overwrites it. Racy bytes only arise under WARD tenures, so for pairs
// with no region support (e.g. SiSd vs MESI) the comparison demands
// full byte equality. cfg.Protocol is ignored; subject is the protocol
// reported in the result and whose execution drives the divergence
// bookkeeping.
func DiffWalk(cfg Config, subject, baseline core.Protocol, seed int64, steps int) (WalkResult, error) {
	if cfg.Alphabet == nil {
		return WalkResult{}, fmt.Errorf("modelcheck: DiffWalk needs a free alphabet")
	}
	wcfg, mcfg := cfg, cfg
	wcfg.Protocol, mcfg.Protocol = subject, baseline
	if err := wcfg.validate(); err != nil {
		return WalkResult{}, err
	}
	if err := mcfg.validate(); err != nil {
		return WalkResult{}, err
	}
	res := WalkResult{Protocol: subject, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	ew, em := newExec(&wcfg), newExec(&mcfg)
	// div marks bytes whose WARDen value may legitimately differ from
	// MESI's: an atomic read a racy byte, and nothing deterministic has
	// overwritten the result yet.
	div := make([][64]bool, len(cfg.Blocks))
	// updateDiv inspects ew *before* the action executes (an atomic
	// clears the racy flags it consumes; a commit pops the buffer entry
	// it retires).
	updateDiv := func(a Action) {
		switch a.Kind {
		case ActFetchAdd:
			g := &ew.ghost[a.Block]
			tainted := false
			for j := a.Off; j < a.Off+a.Size; j++ {
				if g.racy[j] || div[a.Block][j] {
					tainted = true
				}
			}
			if tainted {
				for j := a.Off; j < a.Off+a.Size; j++ {
					div[a.Block][j] = true
				}
			}
		case ActStore:
			if cfg.StoreBufferDepth == 0 {
				for j := a.Off; j < a.Off+a.Size; j++ {
					div[a.Block][j] = false
				}
			}
		case ActCommit:
			ent := ew.bufs[a.Core][0]
			for j := ent.off; j < ent.off+ent.size; j++ {
				div[ent.block][j] = false
			}
		}
	}
	var path []Action
	for i := 0; i < steps; i++ {
		acts := ew.enabledActions()
		a := acts[rng.Intn(len(acts))]
		path = append(path, a)
		updateDiv(a)
		if err := ew.step(a); err != nil {
			res.Steps = len(path)
			res.Violation = newCounterexample(&wcfg, path, len(path), ew.beginOK, err)
			return res, nil
		}
		if err := em.step(a); err != nil {
			res.Steps = len(path)
			res.Violation = newCounterexample(&mcfg, path, len(path), em.beginOK, err)
			return res, nil
		}
	}
	res.Steps = len(path)
	// Drain by hand (rather than via finish) so the divergence
	// bookkeeping sees the drain's buffered-store commits too.
	finW := ew.finalActions()
	for i, a := range finW {
		updateDiv(a)
		if err := ew.step(a); err != nil {
			res.Violation = newCounterexample(&wcfg, appendPath(path, finW[:i+1]), len(path), ew.beginOK, err)
			return res, nil
		}
	}
	if err := ew.drainCheck(); err != nil {
		res.Violation = newCounterexample(&wcfg, appendPath(path, finW), len(path), ew.beginOK, err)
		return res, nil
	}
	finM, errM := em.finish()
	if errM != nil {
		res.Violation = newCounterexample(&mcfg, appendPath(path, finM), len(path), em.beginOK, errM)
		return res, nil
	}
	bs := int(cfg.Topology.BlockSize)
	var bw, bm [64]byte
	for i, blk := range cfg.Blocks {
		ew.sut.Mem().Read(blk, bw[:bs])
		em.sut.Mem().Read(blk, bm[:bs])
		for j := 0; j < bs; j++ {
			if ew.ghost[i].racy[j] || div[i][j] {
				continue // true-sharing WARD merge: order-dependent by design
			}
			if bw[j] != bm[j] {
				res.Violation = newCounterexample(&wcfg, appendPath(path, finW), len(path), ew.beginOK,
					fmt.Errorf("differential violation: block %d byte %d drains to %#02x under %v but %#02x under %v",
						i, j, bw[j], subject, bm[j], baseline))
				return res, nil
			}
		}
	}
	return res, nil
}

func appendPath(path, fin []Action) []Action {
	out := make([]Action, 0, len(path)+len(fin))
	out = append(out, path...)
	return append(out, fin...)
}
