package modelcheck

import (
	"encoding/binary"

	"warden/internal/cache"
	"warden/internal/core"
)

// canon returns the canonical encoding of the current state: two executions
// with equal encodings behave identically under every future action
// sequence, so the encoding is the visited-set key (the full encoding is
// the key — no lossy hashing, so collisions cannot merge distinct states).
//
// Included, because future behaviour depends on it: directory entries (with
// region ids normalized to region-slot indices — raw ids are allocation
// order, which is path-dependent but behaviourally opaque), tracked-block
// bytes in the backing store, per-core W-state private copies (mask and
// data), the ghost model (values, racy flags, tenure writers), each core's
// L2 content in recency order (the complete replacement-relevant state; see
// core.DirState.L2Recency for why L1/L3 are excluded), region-slot
// occupancy, store-buffer contents, per-core store counters modulo
// ValueMod, and litmus program counters.
//
// Excluded, because future behaviour does not depend on it: latencies and
// statistics counters, LRU clock absolute values, raw RegionID values and
// the allocator's next id, and L1/L3 tag contents.
func (e *exec) canon() string {
	var b []byte
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	bs := e.bs
	var tmp [64]byte
	for i, blk := range e.cfg.Blocks {
		ent, ok := e.sut.DirEntry(blk)
		if !ok {
			b = append(b, 0xff)
		} else {
			slot := byte(0xfe)
			if ent.State == cache.Ward {
				slot = byte(e.slotOf(ent.Region))
			}
			b = append(b, byte(ent.State), byte(ent.Owner), slot)
			u64(uint64(ent.Sharers))
		}
		e.sut.Mem().Read(blk, tmp[:bs])
		b = append(b, tmp[:bs]...)
		for c := 0; c < e.cfg.Cores; c++ {
			mask, data, ok := e.sut.WardCopyView(c, blk)
			if !ok {
				b = append(b, 0)
				continue
			}
			b = append(b, 1)
			u64(uint64(mask))
			b = append(b, data[:bs]...)
		}
		g := &e.ghost[i]
		b = append(b, g.val[:bs]...)
		for j := 0; j < bs; j++ {
			f := byte(g.writer[j] + 1) // -1..cores-1 -> 0..cores (≤ 15)
			if g.multi[j] {
				f |= 0x40
			}
			if g.racy[j] {
				f |= 0x80
			}
			b = append(b, f)
		}
	}
	for c := 0; c < e.cfg.Cores; c++ {
		b = append(b, 0xfd) // separator: recency lists vary in length
		for _, ln := range e.sut.L2Recency(c) {
			u64(uint64(ln.Addr))
			b = append(b, byte(ln.State))
		}
	}
	b = append(b, e.slotOpen...)
	for c := 0; c < e.cfg.Cores; c++ {
		b = append(b, byte(e.storeSeq[c]%e.cfg.ValueMod))
		b = append(b, byte(len(e.bufs[c])))
		for _, ent := range e.bufs[c] {
			b = append(b, byte(ent.block), byte(ent.off), byte(ent.size))
			u64(ent.val)
		}
	}
	for _, pc := range e.pcs {
		b = append(b, byte(pc))
	}
	return string(b)
}

// slotOf maps an active region id to its model slot index.
func (e *exec) slotOf(id core.RegionID) int {
	for s, sid := range e.slots {
		if sid == id && id != core.NullRegion {
			return s
		}
	}
	return 0xfd // not slot-tracked (cannot happen for checker-opened regions)
}
