// Package modelcheck is a Murphi-style explicit-state model checker for the
// coherence protocols in internal/core. It explores *all* interleavings of
// a small abstract machine — 2–3 cores, 1–2 cache blocks, optional bounded
// store buffers — where every transition is a call into the real protocol
// implementation through the core.ProtocolStep interface; nothing here
// re-implements a transition table.
//
// The abstract machine is untimed: an action is one atomic memory-system
// call (the simulation engine serializes cores, so this matches the
// simulator's own granularity), and returned latencies are ignored. Two
// exploration modes share one execution model:
//
//   - Explore performs breadth-first search over canonical states with a
//     visited set, either over a free action alphabet (any core may issue
//     any action at every step, bounded by Config.MaxDepth) or over fixed
//     per-core programs (litmus mode: all interleavings of the programs).
//     BFS makes the first counterexample a shortest one.
//   - Walk performs a seeded random walk for configurations too big to
//     exhaust, optionally running MESI and WARDen in lockstep and requiring
//     their final memories to agree outside WARD-racy bytes.
//
// Both modes check, after every transition: the whole-system protocol
// invariants (single-writer/multiple-reader, directory/private-cache
// agreement, inclusion — core.DirState.CheckInvariants), data-value
// coherence against a ghost sequentially-consistent memory (each load must
// return the last committed store, with the single WARD-scoped relaxation
// that a W-state block under an active region may disagree), reconcile
// termination (no block stays W under a removed region), and — in litmus
// mode — deadlock freedom (an unfinished state must have an enabled
// action) plus terminal drain checks (DrainAll restores exact ghost/memory
// agreement except bytes subject to a true-sharing WARD merge).
//
// Violations are reported as a Counterexample whose action path renders in
// the internal/trace text format, so it replays directly under wardentrace.
package modelcheck

import (
	"fmt"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// SUT (system under test) is what the checker drives: the mutating
// transition surface plus the read-only inspection surface. *core.System
// implements it; mutation tests wrap one and corrupt a method.
type SUT interface {
	core.ProtocolStep
	core.DirState
}

// RegionSpan is one region slot the model may open and close: a fixed
// [Lo, Hi) interval. Slots are model-level names; each Begin maps a slot to
// a fresh core.RegionID.
type RegionSpan struct {
	Lo, Hi mem.Addr
}

// Config describes one abstract machine to explore.
type Config struct {
	// Protocol is the coherence protocol under test.
	Protocol core.Protocol
	// Topology is the simulated machine; use TinyTopology for checking.
	Topology topology.Config
	// Cores is how many cores issue actions (≤ Topology.Cores()).
	Cores int
	// Blocks are the tracked cache-block addresses every access targets.
	Blocks []mem.Addr
	// Regions are the region slots available to Begin/End actions.
	Regions []RegionSpan

	// Alphabet is the free-mode action set (any enabled action at every
	// step, depth-bounded by MaxDepth). Exactly one of Alphabet and
	// Programs must be set.
	Alphabet []Action
	// Programs is the litmus-mode per-core instruction sequence; the
	// checker explores every interleaving and runs terminal drain checks
	// when all programs finish.
	Programs [][]Action

	// StoreBufferDepth > 0 splits each store into an issue (into a
	// bounded per-core FIFO, with TSO same-address load forwarding) and a
	// separate commit transition, modelling the relaxed store visibility a
	// hardware store buffer would add. 0 commits stores at issue, which is
	// what the simulator's timing-only buffer does.
	StoreBufferDepth int

	// MaxDepth bounds free-mode path length (default 8). Litmus mode is
	// bounded by the programs themselves.
	MaxDepth int
	// MaxStates aborts exploration beyond this many canonical states
	// (default 1 << 20), a runaway guard rather than a tuning knob.
	MaxStates int
	// ValueMod is the per-core store-value rotation period (default 8):
	// core c's k-th store writes byte value 16*(c+1)+(k mod ValueMod)+1 in
	// every byte it touches. The rotation keeps the value domain — and
	// with it the canonical state space — finite while still detecting
	// stale reads up to ValueMod stores deep.
	ValueMod int

	// New builds the system under test (nil: a real core.System).
	New func(p core.Protocol, cfg topology.Config) SUT
}

// TinyTopology returns a minimal machine for model checking: cores cores on
// one socket, direct-mapped L1/L2 tag arrays of l2Lines 64-byte lines each
// (l2Lines must be a power of two; 1 makes every distinct block conflict,
// which is how eviction litmus tests force victims), a one-line LLC slice,
// and regionCap WARD region table entries.
func TinyTopology(cores, l2Lines, regionCap int) topology.Config {
	if l2Lines <= 0 || l2Lines&(l2Lines-1) != 0 {
		panic(fmt.Sprintf("modelcheck: l2Lines must be a power of two, got %d", l2Lines))
	}
	return topology.Config{
		Name:               fmt.Sprintf("modelcheck-%dc-%dl", cores, l2Lines),
		Sockets:            1,
		CoresPerSocket:     cores,
		ThreadsPerCore:     1,
		BlockSize:          64,
		L1Size:             uint64(l2Lines) * 64,
		L1Assoc:            1,
		L2Size:             uint64(l2Lines) * 64,
		L2Assoc:            1,
		L3SizePerCore:      64,
		L3Assoc:            1,
		L1Latency:          1,
		L2Latency:          2,
		L3Latency:          4,
		DRAMLatency:        8,
		InterSocketLatency: 16,
		NoCHopLatency:      1,
		AvgNoCHops:         1,
		FrequencyGHz:       1,
		StoreBufferEntries: 4,
		WardRegionCapacity: regionCap,
	}
}

// BlockBase is where tracked blocks live by default (any block-aligned
// address works; the backing store is sparse).
const BlockBase mem.Addr = 0x10000

// DefaultBlocks returns n tracked block addresses. With a direct-mapped
// single-set L2 (TinyTopology l2Lines=1) they all conflict; with l2Lines ≥
// n they cohabit.
func DefaultBlocks(n int, blockSize uint64) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = BlockBase + mem.Addr(uint64(i)*blockSize)
	}
	return out
}

// newSUT builds the system under test for cfg.
func (c *Config) newSUT() SUT {
	if c.New != nil {
		return c.New(c.Protocol, c.Topology)
	}
	return core.NewSystem(c.Topology, c.Protocol, mem.New(0), &stats.Counters{})
}

// validate normalizes defaults and rejects unusable configurations.
func (c *Config) validate() error {
	if c.Cores < 1 || c.Cores > c.Topology.Cores() {
		return fmt.Errorf("modelcheck: %d cores outside machine's %d", c.Cores, c.Topology.Cores())
	}
	if len(c.Blocks) == 0 {
		return fmt.Errorf("modelcheck: no tracked blocks")
	}
	bs := c.Topology.BlockSize
	if bs > 64 {
		return fmt.Errorf("modelcheck: block size %d exceeds the 64-byte ghost granularity", bs)
	}
	for _, b := range c.Blocks {
		if b.Block(bs) != b {
			return fmt.Errorf("modelcheck: tracked block %#x not block-aligned", uint64(b))
		}
	}
	if (c.Alphabet == nil) == (c.Programs == nil) {
		return fmt.Errorf("modelcheck: exactly one of Alphabet and Programs must be set")
	}
	if c.Programs != nil && len(c.Programs) != c.Cores {
		return fmt.Errorf("modelcheck: %d programs for %d cores", len(c.Programs), c.Cores)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 8
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 20
	}
	if c.ValueMod == 0 {
		c.ValueMod = 8
	}
	if c.ValueMod > 15 {
		return fmt.Errorf("modelcheck: ValueMod %d overflows the byte value encoding", c.ValueMod)
	}
	check := func(a Action, where string) error {
		if a.Core < 0 || a.Core >= c.Cores {
			return fmt.Errorf("modelcheck: %s: core %d out of range", where, a.Core)
		}
		switch a.Kind {
		case ActLoad, ActStore, ActFetchAdd:
			if a.Block < 0 || a.Block >= len(c.Blocks) {
				return fmt.Errorf("modelcheck: %s: block %d out of range", where, a.Block)
			}
			if a.Size < 1 || a.Size > 8 || a.Off < 0 || a.Off+a.Size > int(bs) {
				return fmt.Errorf("modelcheck: %s: access [%d,%d) outside block", where, a.Off, a.Off+a.Size)
			}
		case ActBegin, ActEnd:
			if a.Slot < 0 || a.Slot >= len(c.Regions) {
				return fmt.Errorf("modelcheck: %s: region slot %d out of range", where, a.Slot)
			}
		case ActFence:
		case ActCommit:
			return fmt.Errorf("modelcheck: %s: ActCommit is model-internal and cannot appear in inputs", where)
		default:
			return fmt.Errorf("modelcheck: %s: unknown action kind %d", where, a.Kind)
		}
		return nil
	}
	for i, a := range c.Alphabet {
		if err := check(a, fmt.Sprintf("alphabet[%d]", i)); err != nil {
			return err
		}
	}
	for ci, prog := range c.Programs {
		for i, a := range prog {
			if a.Core != ci {
				return fmt.Errorf("modelcheck: programs[%d][%d]: action names core %d", ci, i, a.Core)
			}
			if err := check(a, fmt.Sprintf("programs[%d][%d]", ci, i)); err != nil {
				return err
			}
		}
	}
	return nil
}
