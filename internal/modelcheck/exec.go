package modelcheck

import (
	"fmt"

	"warden/internal/cache"
	"warden/internal/core"
	"warden/internal/mem"
)

// bufEntry is one pending store in the modelled (functional) store buffer.
type bufEntry struct {
	block, off, size int
	val              uint64 // little-endian byte pattern, size bytes significant
}

// model is the SUT-independent half of the execution: program counters,
// region-slot occupancy, store-buffer contents and per-core store sequence
// numbers. Enabledness is a pure function of this state — never of SUT
// state — so exploration can compute the successor actions of a visited
// state without replaying the system under test.
type model struct {
	cfg      *Config
	slotOpen []uint8 // 0 closed, 1 open but AddRegion rejected, 2 open
	bufs     [][]bufEntry
	pcs      []int // litmus mode only
	storeSeq []int // stores issued per core (value rotation counter)
}

func newModel(cfg *Config) *model {
	m := &model{
		cfg:      cfg,
		slotOpen: make([]uint8, len(cfg.Regions)),
		bufs:     make([][]bufEntry, cfg.Cores),
		storeSeq: make([]int, cfg.Cores),
	}
	if cfg.Programs != nil {
		m.pcs = make([]int, cfg.Cores)
	}
	return m
}

// storeVal returns the byte value core c's k-th store writes into every byte
// it touches: a per-core nibble plus a rotating sequence nibble, so stale
// values are distinguishable from fresh ones up to ValueMod stores deep
// while the value domain stays finite.
func (m *model) storeVal(c, k int) uint64 {
	b := uint64(16*(c+1) + k%m.cfg.ValueMod + 1)
	v := uint64(0)
	for i := 0; i < 8; i++ {
		v = v<<8 | b
	}
	return v
}

// feasible reports whether a may fire in the current model state. It is the
// single definition of enabledness shared by exploration, the random walk
// and the drain phase.
func (m *model) feasible(a Action) bool {
	switch a.Kind {
	case ActLoad:
		return true
	case ActStore:
		return m.cfg.StoreBufferDepth == 0 || len(m.bufs[a.Core]) < m.cfg.StoreBufferDepth
	case ActFetchAdd, ActFence:
		// Atomics and fences drain the issuing core's buffer first; they
		// become enabled once the commits they would wait for have fired.
		return len(m.bufs[a.Core]) == 0
	case ActCommit:
		return len(m.bufs[a.Core]) > 0
	case ActBegin:
		return m.slotOpen[a.Slot] == 0
	case ActEnd:
		return m.slotOpen[a.Slot] != 0
	}
	return false
}

// enabledActions returns every action that may fire next, in a fixed
// deterministic order: pending commits first, then the alphabet (free mode)
// or each core's next program instruction (litmus mode).
func (m *model) enabledActions() []Action {
	var out []Action
	for c := range m.bufs {
		if len(m.bufs[c]) > 0 {
			out = append(out, Action{Core: c, Kind: ActCommit})
		}
	}
	if m.cfg.Programs != nil {
		for c, prog := range m.cfg.Programs {
			if pc := m.pcs[c]; pc < len(prog) && m.feasible(prog[pc]) {
				out = append(out, prog[pc])
			}
		}
		return out
	}
	for _, a := range m.cfg.Alphabet {
		if m.feasible(a) {
			out = append(out, a)
		}
	}
	return out
}

// done reports whether every litmus program has retired all instructions
// and drained its buffer. Free mode has no completion notion.
func (m *model) done() bool {
	if m.pcs == nil {
		return false
	}
	for c := range m.pcs {
		if m.pcs[c] < len(m.cfg.Programs[c]) || len(m.bufs[c]) > 0 {
			return false
		}
	}
	return true
}

// forwardIdx returns the buffer index a load forwards from: the newest
// pending store of the same core with the exact same footprint (TSO
// same-address forwarding). It returns -2 when an older overlapping but
// non-identical footprint would make forwarding partial, which the model
// does not support (configs use aligned same-size accesses).
func (m *model) forwardIdx(a Action) int {
	buf := m.bufs[a.Core]
	for i := len(buf) - 1; i >= 0; i-- {
		e := buf[i]
		if e.block != a.Block {
			continue
		}
		if e.off == a.Off && e.size == a.Size {
			return i
		}
		if e.off < a.Off+a.Size && a.Off < e.off+e.size {
			return -2
		}
	}
	return -1
}

// apply updates the model state for a. The value pushed for a buffered
// store is returned so exec emits the identical bytes at commit.
func (m *model) apply(a Action) {
	if m.pcs != nil && a.Kind != ActCommit {
		if pc := m.pcs[a.Core]; pc < len(m.cfg.Programs[a.Core]) && m.cfg.Programs[a.Core][pc] == a {
			m.pcs[a.Core] = pc + 1
		}
	}
	switch a.Kind {
	case ActStore:
		v := m.storeVal(a.Core, m.storeSeq[a.Core])
		m.storeSeq[a.Core]++
		if m.cfg.StoreBufferDepth > 0 {
			m.bufs[a.Core] = append(m.bufs[a.Core], bufEntry{block: a.Block, off: a.Off, size: a.Size, val: v})
		}
	case ActCommit:
		m.bufs[a.Core] = m.bufs[a.Core][1:]
	case ActBegin:
		// exec overrides 1 with 2 when AddRegion accepted the interval.
		m.slotOpen[a.Slot] = 1
	case ActEnd:
		m.slotOpen[a.Slot] = 0
	}
}

// finalActions returns the canonical drain sequence from the current model
// state: every pending store committed (core-major, FIFO), then every open
// region slot closed. Stepping these before DrainAll turns any state into a
// terminal one.
func (m *model) finalActions() []Action {
	var out []Action
	for c := range m.bufs {
		for range m.bufs[c] {
			out = append(out, Action{Core: c, Kind: ActCommit})
		}
	}
	for s, open := range m.slotOpen {
		if open != 0 {
			out = append(out, End(0, s))
		}
	}
	return out
}

// ghostBlock is the checker's per-block ghost state: a sequentially
// consistent shadow of the block's data plus per-byte race bookkeeping for
// WARD's sanctioned relaxation.
type ghostBlock struct {
	val [64]byte
	// racy marks bytes whose final value is order-dependent: two distinct
	// cores ward-wrote the byte during one W tenure. Reconciliation merges
	// copies in ascending core order, but a mid-tenure eviction flushes its
	// victim's copy early, so with two writers *any* of their last values
	// can win — the byte stays racy until a coherent (non-W) store or an
	// atomic re-serializes it, or a new tenure with a sole writer
	// deterministically overwrites it.
	racy [64]bool
	// writer is the last core to ward-write the byte in the current W
	// tenure (-1 outside a tenure); multi records that a second distinct
	// core wrote it this tenure. Both reset when the tenure ends.
	writer [64]int8
	multi  [64]bool
}

// exec drives one SUT along one action path, maintaining the ghost model
// and checking every invariant after every transition.
type exec struct {
	*model
	sut     SUT
	slots   []core.RegionID // region id per open slot (NullRegion: rejected)
	beginOK []bool          // per ActBegin stepped, whether AddRegion accepted
	ghost   []ghostBlock
	bs      int // block size in bytes
}

func newExec(cfg *Config) *exec {
	e := &exec{
		model: newModel(cfg),
		sut:   cfg.newSUT(),
		slots: make([]core.RegionID, len(cfg.Regions)),
		ghost: make([]ghostBlock, len(cfg.Blocks)),
		bs:    int(cfg.Topology.BlockSize),
	}
	for i := range e.ghost {
		for j := range e.ghost[i].writer {
			e.ghost[i].writer[j] = -1
		}
	}
	return e
}

// addr returns the concrete address of an access action.
func (e *exec) addr(a Action) mem.Addr {
	return e.cfg.Blocks[a.Block] + mem.Addr(a.Off)
}

// step fires one transition: the SUT call, the ghost update, and the
// post-transition checks. A non-nil error is an invariant violation (or an
// internal inconsistency) at this action.
func (e *exec) step(a Action) error {
	if !e.feasible(a) {
		return fmt.Errorf("internal: action %v stepped while not enabled", a)
	}
	var err error
	switch a.Kind {
	case ActLoad:
		err = e.doLoad(a)
	case ActStore:
		if e.cfg.StoreBufferDepth == 0 {
			err = e.commitStore(a.Core, bufEntry{block: a.Block, off: a.Off, size: a.Size,
				val: e.storeVal(a.Core, e.storeSeq[a.Core])})
		}
		// Buffered stores touch only model state until their ActCommit.
	case ActCommit:
		err = e.commitStore(a.Core, e.bufs[a.Core][0])
	case ActFetchAdd:
		err = e.doFetchAdd(a)
	case ActFence:
		// A fence orders the store buffer (already drained, per
		// feasibility) and runs the protocol's synchronization-point
		// hook: a no-op under eagerly coherent protocols, the
		// self-invalidation/self-downgrade flush under SiSd-style ones.
		// The ghost needs no update either way — sync points may only
		// discard stale private copies, never change visible values.
		e.sut.SyncPoint(a.Core)
	case ActBegin:
		err = e.doBegin(a)
	case ActEnd:
		err = e.doEnd(a)
	}
	if err != nil {
		return err
	}
	e.apply(a)
	if a.Kind == ActBegin && e.beginOK[len(e.beginOK)-1] {
		e.slotOpen[a.Slot] = 2
	}
	e.syncTenures()
	if ierr := e.sut.CheckInvariants(); ierr != nil {
		return fmt.Errorf("after %v: %w", a, ierr)
	}
	return nil
}

func (e *exec) doLoad(a Action) error {
	switch e.forwardIdx(a) {
	case -2:
		return fmt.Errorf("config: load %v partially overlaps a pending store (unsupported footprint mix)", a)
	case -1:
	default:
		// Forwarded from the core's own buffer: no memory-system call, and
		// the value is the buffered one by construction.
		return nil
	}
	buf := make([]byte, a.Size)
	e.sut.Read(a.Core, e.addr(a), buf)
	ent, ok := e.sut.DirEntry(e.cfg.Blocks[a.Block])
	wardOpen := ok && ent.State == cache.Ward && e.sut.RegionIsActive(ent.Region)
	if wardOpen {
		// The one sanctioned relaxation: inside an open WARD region a
		// W-state block's reads may return any tenure-local value.
		return nil
	}
	g := &e.ghost[a.Block]
	for i := 0; i < a.Size; i++ {
		bi := a.Off + i
		if g.racy[bi] {
			continue
		}
		if buf[i] != g.val[bi] {
			return fmt.Errorf("data-value violation: %v returned %#02x at block byte %d, want %#02x (last coherent store); dir=%s",
				a, buf[i], bi, g.val[bi], dirDesc(ent, ok))
		}
	}
	return nil
}

// commitStore makes one store visible to the memory system and advances the
// ghost. For ward-state destinations it maintains the per-byte race
// bookkeeping that scopes the data-value check.
func (e *exec) commitStore(c int, ent bufEntry) error {
	var b [8]byte
	v := ent.val
	for i := 0; i < ent.size; i++ {
		b[i] = byte(v)
		v >>= 8
	}
	e.sut.Write(c, e.cfg.Blocks[ent.block]+mem.Addr(ent.off), b[:ent.size])
	_, l2 := e.sut.PrivLines(c, e.cfg.Blocks[ent.block])
	ward := l2 == cache.Ward
	g := &e.ghost[ent.block]
	for i := 0; i < ent.size; i++ {
		bi := ent.off + i
		g.val[bi] = b[i]
		if !ward {
			g.racy[bi] = false
			continue
		}
		if w := g.writer[bi]; w >= 0 && w != int8(c) {
			g.multi[bi] = true
		}
		g.writer[bi] = int8(c)
		// Sole ward writer so far this tenure: the merge (reconcile or
		// eviction flush) applies exactly this core's masked bytes, so the
		// outcome is this value and the byte is deterministic again even if
		// it was racy before. With two distinct writers it stays racy for
		// the rest of the tenure and beyond (see ghostBlock).
		g.racy[bi] = g.multi[bi]
	}
	return nil
}

func (e *exec) doFetchAdd(a Action) error {
	old, _ := e.sut.RMW(a.Core, e.addr(a), a.Size, func(o uint64) uint64 { return o + a.Value })
	blk := e.cfg.Blocks[a.Block]
	if ent, ok := e.sut.DirEntry(blk); ok && ent.State == cache.Ward {
		return fmt.Errorf("atomicity violation: %v left block %d in W (atomics must force reconciliation)", a, a.Block)
	}
	g := &e.ghost[a.Block]
	anyRacy := false
	want := uint64(0)
	for i := a.Size - 1; i >= 0; i-- {
		bi := a.Off + i
		anyRacy = anyRacy || g.racy[bi]
		want = want<<8 | uint64(g.val[bi])
	}
	if !anyRacy && old != want {
		return fmt.Errorf("data-value violation: %v read old=%#x, want %#x (last coherent store)", a, old, want)
	}
	// The atomic re-serializes the bytes it touches: ghost follows the
	// SUT-observed old value so subsequent checks stay anchored.
	nv := old + a.Value
	for i := 0; i < a.Size; i++ {
		bi := a.Off + i
		g.val[bi] = byte(nv)
		g.racy[bi] = false
		nv >>= 8
	}
	return nil
}

func (e *exec) doBegin(a Action) error {
	r := e.cfg.Regions[a.Slot]
	id, _, ok := e.sut.AddRegion(a.Core, r.Lo, r.Hi)
	if ok && id == core.NullRegion {
		return fmt.Errorf("protocol bug: AddRegion reported ok with the null region id")
	}
	if !ok {
		id = core.NullRegion
	}
	e.slots[a.Slot] = id
	e.beginOK = append(e.beginOK, ok)
	return nil
}

func (e *exec) doEnd(a Action) error {
	id := e.slots[a.Slot]
	e.slots[a.Slot] = core.NullRegion
	e.sut.RemoveRegion(a.Core, id)
	if id == core.NullRegion {
		return nil
	}
	// Reconcile termination: removing a region must leave no tracked block
	// warded under it, and the id must be gone from the region table.
	for i, b := range e.cfg.Blocks {
		if ent, ok := e.sut.DirEntry(b); ok && ent.State == cache.Ward && ent.Region == id {
			return fmt.Errorf("reconcile violation: block %d (%#x) still W under removed region %d", i, uint64(b), id)
		}
	}
	if e.sut.RegionIsActive(id) {
		return fmt.Errorf("reconcile violation: region %d still registered after RemoveRegion", id)
	}
	return nil
}

// syncTenures closes ghost W tenures for blocks that are no longer
// directory-W (tenures end inside transitions: reconciliation, forced
// reconcile on atomics, eviction of the sole holder).
func (e *exec) syncTenures() {
	for i, b := range e.cfg.Blocks {
		if ent, ok := e.sut.DirEntry(b); ok && ent.State == cache.Ward {
			continue
		}
		g := &e.ghost[i]
		for j := range g.writer {
			g.writer[j] = -1
			g.multi[j] = false
		}
	}
}

// finish drives the state to termination (commit every pending store, close
// every open slot) and runs the terminal checks: DrainAll must restore full
// coherence and exact ghost/memory agreement outside racy bytes.
func (e *exec) finish() ([]Action, error) {
	fin := e.finalActions()
	for i, a := range fin {
		if err := e.step(a); err != nil {
			return fin[:i+1], err
		}
	}
	return fin, e.drainCheck()
}

func (e *exec) drainCheck() error {
	e.sut.DrainAll()
	if err := e.sut.CheckInvariants(); err != nil {
		return fmt.Errorf("after DrainAll: %w", err)
	}
	var buf [64]byte
	for i, b := range e.cfg.Blocks {
		if ent, ok := e.sut.DirEntry(b); ok && ent.State == cache.Ward {
			return fmt.Errorf("drain violation: block %d still W after DrainAll (region %d)", i, ent.Region)
		}
		e.sut.Mem().Read(b, buf[:e.bs])
		g := &e.ghost[i]
		for j := 0; j < e.bs; j++ {
			if g.racy[j] {
				continue
			}
			if buf[j] != g.val[j] {
				return fmt.Errorf("drain violation: block %d byte %d drained to %#02x, want %#02x (last coherent store)",
					i, j, buf[j], g.val[j])
			}
		}
	}
	return nil
}

// dirDesc renders a directory entry for diagnostics.
func dirDesc(ent core.DirEntryView, ok bool) string {
	if !ok {
		return "uncached"
	}
	return fmt.Sprintf("{%s owner=%d sharers=%v region=%d}", ent.State, ent.Owner, ent.Sharers, ent.Region)
}
