package modelcheck

import (
	"fmt"
	"io"
	"strings"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/trace"
)

// padSlot is the compute padding per global action slot when a
// counterexample is rendered with padding: large enough to dwarf any
// memory-system latency, so the replay engine schedules the threads in the
// counterexample's interleaving.
const padSlot = 1_000_000

// Counterexample is a violating execution: the exact action path that was
// stepped (including any drain-phase actions appended by the terminal
// check) and the invariant that failed. It renders as an internal/trace
// text trace, so `wardentrace -protocol <p> <file>` replays it directly.
type Counterexample struct {
	Protocol core.Protocol
	// Path holds every action stepped, in order. Unless the violation is a
	// terminal (drain) one, the last action is the violating transition.
	Path []Action
	// FinalStart is the index in Path where the terminal-check drain
	// actions begin (len(Path) when the violation is mid-path).
	FinalStart int
	// Err is the violated invariant.
	Err error

	cfg     *Config
	beginOK []bool
}

func newCounterexample(cfg *Config, path []Action, finalStart int, beginOK []bool, err error) *Counterexample {
	return &Counterexample{
		Protocol:   cfg.Protocol,
		Path:       path,
		FinalStart: finalStart,
		Err:        err,
		cfg:        cfg,
		beginOK:    beginOK,
	}
}

// Error implements error.
func (cx *Counterexample) Error() string {
	return fmt.Sprintf("%s: %v (after %d actions)", cx.Protocol, cx.Err, len(cx.Path))
}

// String renders the action path and the violation for humans.
func (cx *Counterexample) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counterexample (%s, %d actions):\n", cx.Protocol, len(cx.Path))
	for i, a := range cx.Path {
		marker := "  "
		if i >= cx.FinalStart {
			marker = " *" // drain-phase action appended by the terminal check
		}
		fmt.Fprintf(&sb, "%s%3d: %v\n", marker, i, a)
	}
	fmt.Fprintf(&sb, "violation: %v\n", cx.Err)
	return sb.String()
}

// Events lowers the action path to trace events. Model-internal actions
// that perform no memory-system call (forwarded loads, buffered store
// issues) are elided; a buffered store surfaces as a W line at its commit.
// With padded set, compute lines space the events ~padSlot cycles apart so
// a timed replay schedules the threads in the counterexample's
// interleaving; without it the trace is minimal (replayable, but the
// engine picks its own interleaving).
func (cx *Counterexample) Events(padded bool) ([]trace.Event, error) {
	m := newModel(cx.cfg)
	names := make([]string, len(cx.cfg.Regions)) // open trace name per slot
	nextName, begins := 0, 0
	pos := make([]int, cx.cfg.Cores) // next global slot per thread (padding)
	var out []trace.Event

	emit := func(slot int, ev trace.Event) {
		if padded {
			if lag := slot - pos[ev.Thread]; lag > 0 {
				out = append(out, trace.Event{Thread: ev.Thread, Kind: trace.Compute,
					Value: uint64(2 * padSlot * lag)})
			}
			pos[ev.Thread] = slot + 1
		}
		out = append(out, ev)
	}

	for i, a := range cx.Path {
		switch a.Kind {
		case ActLoad:
			if m.forwardIdx(a) >= 0 {
				break // served from the core's own buffer; no memory-system call
			}
			emit(i, trace.Event{Thread: a.Core, Kind: trace.Read,
				Addr: cx.cfg.Blocks[a.Block] + mem.Addr(a.Off), Size: a.Size})
		case ActStore:
			if cx.cfg.StoreBufferDepth > 0 {
				break // surfaces at its ActCommit
			}
			emit(i, trace.Event{Thread: a.Core, Kind: trace.Write, Size: a.Size,
				Addr:  cx.cfg.Blocks[a.Block] + mem.Addr(a.Off),
				Value: truncVal(m.storeVal(a.Core, m.storeSeq[a.Core]), a.Size)})
		case ActCommit:
			e := m.bufs[a.Core][0]
			emit(i, trace.Event{Thread: a.Core, Kind: trace.Write, Size: e.size,
				Addr:  cx.cfg.Blocks[e.block] + mem.Addr(e.off),
				Value: truncVal(e.val, e.size)})
		case ActFetchAdd:
			emit(i, trace.Event{Thread: a.Core, Kind: trace.Atomic, Size: a.Size,
				Addr: cx.cfg.Blocks[a.Block] + mem.Addr(a.Off), Value: a.Value})
		case ActFence:
			emit(i, trace.Event{Thread: a.Core, Kind: trace.Fence})
		case ActBegin:
			// Recorder convention: every Begin gets a fresh unique name,
			// including rejected ones; only accepted ones are referenced by
			// a later E line (a rejected pair ends the null region, "E -").
			name := fmt.Sprintf("r%d", nextName)
			nextName++
			if begins < len(cx.beginOK) && cx.beginOK[begins] {
				names[a.Slot] = name
			}
			begins++
			r := cx.cfg.Regions[a.Slot]
			emit(i, trace.Event{Thread: a.Core, Kind: trace.BeginRegion,
				Name: name, Addr: r.Lo, Hi: r.Hi})
		case ActEnd:
			name := names[a.Slot]
			names[a.Slot] = ""
			if name == "" {
				name = trace.NullRegionName
			}
			emit(i, trace.Event{Thread: a.Core, Kind: trace.EndRegion, Name: name})
		}
		m.apply(a)
	}
	return out, nil
}

// truncVal keeps the low size bytes of a store value, matching what the
// memory system writes.
func truncVal(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

// WriteTrace writes the counterexample as a replayable text trace, headed
// by comment lines describing the violation.
func (cx *Counterexample) WriteTrace(w io.Writer, padded bool) error {
	evs, err := cx.Events(padded)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# modelcheck counterexample (%s): %v\n# %d actions; replay: wardentrace -protocol %s <this file>\n",
		cx.Protocol, cx.Err, len(cx.Path), strings.ToLower(cx.Protocol.String())); err != nil {
		return err
	}
	for _, ev := range evs {
		line, err := trace.FormatEvent(ev)
		if err != nil {
			return fmt.Errorf("modelcheck: unrenderable counterexample event: %w", err)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// TraceText renders the counterexample trace to a string.
func (cx *Counterexample) TraceText(padded bool) (string, error) {
	var sb strings.Builder
	if err := cx.WriteTrace(&sb, padded); err != nil {
		return "", err
	}
	return sb.String(), nil
}
