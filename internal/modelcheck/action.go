package modelcheck

import "fmt"

// ActionKind enumerates the abstract machine's transitions. Each maps to
// one core.ProtocolStep call (ActStore under a buffered model maps to a
// deferred call performed by the matching ActCommit).
type ActionKind int

const (
	// ActLoad reads Size bytes at Blocks[Block]+Off.
	ActLoad ActionKind = iota
	// ActStore writes Size bytes at Blocks[Block]+Off. The value is chosen
	// by the execution (per-core rotation, see Config.ValueMod), not by
	// the action, so that the value domain stays canonical.
	ActStore
	// ActFetchAdd atomically adds Value at Blocks[Block]+Off.
	ActFetchAdd
	// ActCommit retires the oldest buffered store of Core. It is
	// model-internal: exploration schedules it whenever Core's buffer is
	// non-empty; it never appears in alphabets or programs.
	ActCommit
	// ActFence orders the store buffer; it is enabled only once Core's
	// buffer has drained (i.e. after the commits it would wait for).
	ActFence
	// ActBegin executes Add Region for Regions[Slot].
	ActBegin
	// ActEnd executes Remove Region for the id Slot currently holds.
	ActEnd
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case ActLoad:
		return "load"
	case ActStore:
		return "store"
	case ActFetchAdd:
		return "fetch_add"
	case ActCommit:
		return "commit"
	case ActFence:
		return "fence"
	case ActBegin:
		return "begin"
	case ActEnd:
		return "end"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is one transition of the abstract machine.
type Action struct {
	Core  int
	Kind  ActionKind
	Block int // index into Config.Blocks (accesses)
	Off   int // byte offset within the block
	Size  int // access size in bytes (1..8)
	Value uint64
	Slot  int // index into Config.Regions (Begin/End)
}

// String renders the action for diagnostics.
func (a Action) String() string {
	switch a.Kind {
	case ActLoad, ActStore, ActFetchAdd:
		s := fmt.Sprintf("c%d %s b%d+%d/%d", a.Core, a.Kind, a.Block, a.Off, a.Size)
		if a.Kind == ActFetchAdd {
			s += fmt.Sprintf(" +%d", a.Value)
		}
		return s
	case ActBegin, ActEnd:
		return fmt.Sprintf("c%d %s r%d", a.Core, a.Kind, a.Slot)
	default:
		return fmt.Sprintf("c%d %s", a.Core, a.Kind)
	}
}

// Convenience constructors for litmus programs and alphabets.

// Ld is a load of size bytes at block blk offset off by core c.
func Ld(c, blk, off, size int) Action {
	return Action{Core: c, Kind: ActLoad, Block: blk, Off: off, Size: size}
}

// St is a store of size bytes at block blk offset off by core c.
func St(c, blk, off, size int) Action {
	return Action{Core: c, Kind: ActStore, Block: blk, Off: off, Size: size}
}

// FA is an atomic fetch-add of delta at block blk offset off by core c.
func FA(c, blk, off, size int, delta uint64) Action {
	return Action{Core: c, Kind: ActFetchAdd, Block: blk, Off: off, Size: size, Value: delta}
}

// Begin opens region slot by core c.
func Begin(c, slot int) Action { return Action{Core: c, Kind: ActBegin, Slot: slot} }

// End closes region slot by core c.
func End(c, slot int) Action { return Action{Core: c, Kind: ActEnd, Slot: slot} }

// Fence is a store-buffer fence by core c.
func Fence(c int) Action { return Action{Core: c, Kind: ActFence} }

// WordAlphabet builds the standard free-mode alphabet: for every core and
// every tracked block, an 8-byte load, an 8-byte store, and (if atomics is
// true) an 8-byte fetch-add at offset 0, plus Begin/End for every region
// slot by core 0. It is the alphabet the exhaustive CI configuration and
// the fuzzer both use.
func WordAlphabet(cores, blocks, slots int, atomics bool) []Action {
	var out []Action
	for c := 0; c < cores; c++ {
		for b := 0; b < blocks; b++ {
			out = append(out, Ld(c, b, 0, 8), St(c, b, 0, 8))
			if atomics {
				out = append(out, FA(c, b, 0, 8, 1))
			}
		}
	}
	for s := 0; s < slots; s++ {
		out = append(out, Begin(0, s), End(0, s))
	}
	return out
}
