package modelcheck

import (
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
	"warden/internal/trace"
)

// twoCoreOneBlock is the reference exhaustive configuration: 2 cores, one
// tracked block, one region slot covering it, the full word alphabet with
// atomics. It is what the CI modelcheck job runs for both protocols.
func twoCoreOneBlock(p core.Protocol) Config {
	top := TinyTopology(2, 1, 2)
	blocks := DefaultBlocks(1, top.BlockSize)
	return Config{
		Protocol: p,
		Topology: top,
		Cores:    2,
		Blocks:   blocks,
		Regions:  []RegionSpan{{Lo: blocks[0], Hi: blocks[0] + mem.Addr(top.BlockSize)}},
		Alphabet: WordAlphabet(2, 1, 1, true),
		MaxDepth: 8,
	}
}

func TestExhaustiveTwoCoreOneBlock(t *testing.T) {
	for _, p := range core.Protocols("mesi", "warden") {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := Explore(twoCoreOneBlock(p))
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%s", res.Violation)
			}
			t.Logf("%s: %d reachable states, %d transitions, depth %d (depth-bounded=%v)",
				p, res.States, res.Transitions, res.Depth, res.DepthBounded)
			if res.States < 10 {
				t.Fatalf("implausibly small state space: %d states", res.States)
			}
		})
	}
}

// TestExhaustiveStoreBuffer turns on the functional store-buffer model, so
// store issue and commit interleave as separate transitions (store
// buffering litmus behaviour, TSO forwarding).
func TestExhaustiveStoreBuffer(t *testing.T) {
	for _, p := range core.Protocols("mesi", "warden") {
		cfg := twoCoreOneBlock(p)
		cfg.StoreBufferDepth = 2
		cfg.MaxDepth = 5
		res, err := Explore(cfg)
		if err != nil {
			t.Fatalf("%s: Explore: %v", p, err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation:\n%s", p, res.Violation)
		}
		t.Logf("%s+SB: %d reachable states, %d transitions", p, res.States, res.Transitions)
	}
}

// TestExhaustiveTwoBlocksConflict tracks two blocks that collide in a
// single-set L2, so every second access evicts — including W-state victims
// (proactive flush) and dirty writebacks.
func TestExhaustiveTwoBlocksConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("larger alphabet; covered by the full run and CI")
	}
	for _, p := range core.Protocols("mesi", "warden") {
		top := TinyTopology(2, 1, 2)
		blocks := DefaultBlocks(2, top.BlockSize)
		cfg := Config{
			Protocol: p,
			Topology: top,
			Cores:    2,
			Blocks:   blocks,
			Regions:  []RegionSpan{{Lo: blocks[0], Hi: blocks[1] + mem.Addr(top.BlockSize)}},
			Alphabet: WordAlphabet(2, 2, 1, false),
			MaxDepth: 5,
		}
		res, err := Explore(cfg)
		if err != nil {
			t.Fatalf("%s: Explore: %v", p, err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation:\n%s", p, res.Violation)
		}
		t.Logf("%s 2-block: %d reachable states, %d transitions", p, res.States, res.Transitions)
	}
}

// --- mutation testing: the checker must catch injected transition bugs ---

// mutantSUT wraps a real system and corrupts one ProtocolStep method.
type mutantSUT struct {
	SUT
	dropWritesBy  int // core whose Writes are silently dropped (-1: none)
	corruptWrites bool
	skipRemove    bool
}

func (m *mutantSUT) Write(c int, a mem.Addr, src []byte) uint64 {
	if m.dropWritesBy == c {
		return 0
	}
	if m.corruptWrites {
		bad := make([]byte, len(src))
		copy(bad, src)
		bad[0] ^= 0x40
		return m.SUT.Write(c, a, bad)
	}
	return m.SUT.Write(c, a, src)
}

func (m *mutantSUT) RemoveRegion(c int, id core.RegionID) uint64 {
	if m.skipRemove {
		return 0
	}
	return m.SUT.RemoveRegion(c, id)
}

func mutantFactory(mutate func(*mutantSUT)) func(core.Protocol, topology.Config) SUT {
	return func(p core.Protocol, cfg topology.Config) SUT {
		m := &mutantSUT{
			SUT:          core.NewSystem(cfg, p, mem.New(0), &stats.Counters{}),
			dropWritesBy: -1,
		}
		mutate(m)
		return m
	}
}

func TestMutationsCaught(t *testing.T) {
	cases := []struct {
		name   string
		proto  core.Protocol
		mutate func(*mutantSUT)
	}{
		{"dropped-write", core.MESI, func(m *mutantSUT) { m.dropWritesBy = 1 }},
		{"corrupted-write", core.WARDen, func(m *mutantSUT) { m.corruptWrites = true }},
		{"skipped-reconcile", core.WARDen, func(m *mutantSUT) { m.skipRemove = true }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := twoCoreOneBlock(tc.proto)
			cfg.New = mutantFactory(tc.mutate)
			res, err := Explore(cfg)
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if res.Violation == nil {
				t.Fatalf("injected %s bug not caught (%d states explored)", tc.name, res.States)
			}
			t.Logf("caught after %d actions: %v", len(res.Violation.Path), res.Violation.Err)
			assertReplayable(t, res.Violation)
		})
	}
}

// assertReplayable renders the counterexample as a text trace and runs it
// through the real parser and a timed replay — exactly what `wardentrace
// <file>` does — for both padded and minimal renderings.
func assertReplayable(t *testing.T, cx *Counterexample) {
	t.Helper()
	for _, padded := range []bool{false, true} {
		text, err := cx.TraceText(padded)
		if err != nil {
			t.Fatalf("TraceText(padded=%v): %v", padded, err)
		}
		tr, err := trace.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("counterexample trace rejected by parser (padded=%v): %v\n%s", padded, err, text)
		}
		if _, err := trace.Replay(tr, machine.New(topology.XeonGold6126(1), cx.Protocol)); err != nil {
			t.Fatalf("counterexample trace rejected by replay (padded=%v): %v\n%s", padded, err, text)
		}
	}
}

// TestWalkClean runs seeded walks well past the exhaustive depth bound.
func TestWalkClean(t *testing.T) {
	steps := 400
	if testing.Short() {
		steps = 100
	}
	for _, p := range core.Protocols("mesi", "warden") {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := Walk(twoCoreOneBlock(p), seed, steps)
			if err != nil {
				t.Fatalf("%s seed %d: %v", p, seed, err)
			}
			if res.Violation != nil {
				t.Fatalf("%s seed %d violation:\n%s", p, seed, res.Violation)
			}
		}
	}
}

// TestDiffWalkClean checks MESI/WARDen final-memory equivalence outside
// racy bytes on deep differential walks.
func TestDiffWalkClean(t *testing.T) {
	steps := 300
	if testing.Short() {
		steps = 80
	}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := DiffWalk(twoCoreOneBlock(core.WARDen), core.WARDen, core.MESI, seed, steps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d violation:\n%s", seed, res.Violation)
		}
	}
}

// TestDiffWalkAtomicOverRacyByte pins the divergence-taint rule on the
// configuration that exposed it: 3 cores, 2 conflicting blocks, atomics
// in the alphabet. A fetch-add that consumes a multi-writer ward byte
// bakes the order-dependent merge result into memory; the comparison must
// exempt that byte until a plain store re-serializes it, and still hold
// everywhere else.
func TestDiffWalkAtomicOverRacyByte(t *testing.T) {
	steps := 300
	seeds := int64(8)
	if testing.Short() {
		steps, seeds = 100, 3
	}
	top := TinyTopology(3, 1, 2)
	bl := DefaultBlocks(2, top.BlockSize)
	cfg := Config{
		Protocol: core.WARDen,
		Topology: top,
		Cores:    3,
		Blocks:   bl,
		Regions:  []RegionSpan{{Lo: bl[0], Hi: bl[1] + mem.Addr(top.BlockSize)}},
		Alphabet: WordAlphabet(3, 2, 1, true),
	}
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := DiffWalk(cfg, core.WARDen, core.MESI, seed, steps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d violation:\n%s", seed, res.Violation.String())
		}
	}
}

// TestWalkCatchesMutant: the fuzzer must also catch an injected bug.
func TestWalkCatchesMutant(t *testing.T) {
	cfg := twoCoreOneBlock(core.MESI)
	cfg.New = mutantFactory(func(m *mutantSUT) { m.dropWritesBy = 1 })
	for seed := int64(1); seed <= 20; seed++ {
		res, err := Walk(cfg, seed, 200)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			assertReplayable(t, res.Violation)
			return
		}
	}
	t.Fatal("20 seeded walks of 200 steps missed a dropped-write bug")
}
