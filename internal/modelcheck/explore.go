package modelcheck

import (
	"fmt"

	"warden/internal/core"
)

// Result summarizes one exhaustive exploration.
type Result struct {
	Protocol core.Protocol
	// States is the number of distinct canonical states reached (including
	// the initial state); Transitions counts explored edges.
	States, Transitions int
	// Depth is the longest action path explored.
	Depth int
	// DepthBounded reports that free-mode exploration cut off paths at
	// Config.MaxDepth; when false, the reachable state space closed on its
	// own and the run is exhaustive for the configured alphabet.
	DepthBounded bool
	// Violation is the shortest counterexample found, or nil. (BFS order
	// guarantees no shorter violating path exists.)
	Violation *Counterexample
}

// Explore runs breadth-first search over all interleavings of cfg,
// checking every invariant after every transition and the terminal drain
// checks once per newly reached state. It returns the first (shortest)
// violation in Result.Violation; the error return is reserved for unusable
// configurations and the MaxStates runaway guard.
func Explore(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	res := Result{Protocol: cfg.Protocol}

	root := newExec(&cfg)
	visited := map[string]struct{}{root.canon(): {}}
	res.States = 1
	if v := finishCheck(&cfg, nil, root); v != nil {
		res.Violation = v
		return res, nil
	}
	queue := [][]Action{nil}

	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if len(path) > res.Depth {
			res.Depth = len(path)
		}
		// Enabledness is a pure function of model state, so successor
		// actions come from a cheap SUT-free replay.
		m := newModel(&cfg)
		for _, a := range path {
			m.apply(a)
		}
		acts := m.enabledActions()
		if cfg.Programs != nil && len(acts) == 0 {
			if !m.done() {
				e, v := runPath(&cfg, path)
				if v == nil {
					v = newCounterexample(&cfg, path, len(path),
						e.beginOK, fmt.Errorf("deadlock: programs unfinished (pcs %v) but no action is enabled", m.pcs))
				}
				res.Violation = v
				return res, nil
			}
			continue // all programs retired; terminal checks already ran
		}
		if cfg.Programs == nil && len(path) >= cfg.MaxDepth {
			res.DepthBounded = true
			continue
		}
		for _, a := range acts {
			res.Transitions++
			next := make([]Action, len(path)+1)
			copy(next, path)
			next[len(path)] = a
			e, v := runPath(&cfg, next)
			if v != nil {
				res.Violation = v
				return res, nil
			}
			key := e.canon()
			if _, seen := visited[key]; seen {
				continue
			}
			visited[key] = struct{}{}
			res.States++
			if res.States > cfg.MaxStates {
				return res, fmt.Errorf("modelcheck: state count exceeded MaxStates=%d (runaway guard)", cfg.MaxStates)
			}
			// Terminal check once per new state: drive it to completion
			// (consuming e, which is not otherwise reused) and drain.
			if v := finishCheck(&cfg, next, e); v != nil {
				res.Violation = v
				return res, nil
			}
			queue = append(queue, next)
		}
	}
	return res, nil
}

// runPath replays path on a fresh SUT, returning the execution or the
// counterexample at the first violating action.
func runPath(cfg *Config, path []Action) (*exec, *Counterexample) {
	e := newExec(cfg)
	for i, a := range path {
		if err := e.step(a); err != nil {
			pfx := make([]Action, i+1)
			copy(pfx, path[:i+1])
			return e, newCounterexample(cfg, pfx, i+1, e.beginOK, err)
		}
	}
	return e, nil
}

// finishCheck drives e to termination and runs the drain checks, returning
// a counterexample whose path extends path with the drain-phase actions.
// It consumes e.
func finishCheck(cfg *Config, path []Action, e *exec) *Counterexample {
	fin, err := e.finish()
	if err == nil {
		return nil
	}
	full := make([]Action, 0, len(path)+len(fin))
	full = append(full, path...)
	full = append(full, fin...)
	return newCounterexample(cfg, full, len(path), e.beginOK, err)
}
