// Package mem implements the simulated physical address space: a sparse,
// paged backing store plus a simple region allocator.
//
// The backing store holds the canonical value of every byte of simulated
// memory. Under MESI the coherence protocol guarantees a single writer per
// block, so reads and writes operate directly on the canonical store. Blocks
// in the WARD state are the exception: each sharer keeps a private copy (see
// internal/core), and the canonical store is only updated when those copies
// reconcile.
package mem

import "fmt"

// PageSize is the size of a simulated physical page in bytes. The HLPL
// runtime allocates heap space and registers WARD regions at page
// granularity, mirroring MPL's page-based heaps.
const PageSize = 4096

// Addr is a simulated physical address.
type Addr uint64

// Page returns the page-aligned base address containing a.
func (a Addr) Page() Addr { return a &^ (PageSize - 1) }

// Block returns the cache-block-aligned base of a for the given block size,
// which must be a power of two.
func (a Addr) Block(blockSize uint64) Addr { return a &^ Addr(blockSize-1) }

// Memory is a sparse simulated address space with a bump region allocator.
// The zero value is not ready to use; call New.
type Memory struct {
	pages map[Addr]*[PageSize]byte
	next  Addr // next unallocated address for Alloc
}

// New returns an empty address space. Allocation starts at base, which is
// rounded up to a page boundary; address 0 is never handed out so that it
// can serve as a null pointer in runtime data structures.
func New(base Addr) *Memory {
	if base == 0 {
		base = PageSize
	}
	return &Memory{
		pages: make(map[Addr]*[PageSize]byte),
		next:  (base + PageSize - 1).Page(),
	}
}

// Alloc reserves size bytes aligned to align (a power of two, at least 1)
// and returns the base address. The memory is zeroed on first touch.
func (m *Memory) Alloc(size, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (m.next + Addr(align-1)) &^ Addr(align-1)
	if base < m.next {
		panic(fmt.Sprintf("mem: aligning %#x to %d overflows the address space", m.next, align))
	}
	end := base + Addr(size)
	if end < base {
		panic(fmt.Sprintf("mem: allocating %d bytes at %#x overflows the address space", size, base))
	}
	m.next = end
	return base
}

// AllocPages reserves n whole pages and returns the page-aligned base.
func (m *Memory) AllocPages(n int) Addr {
	return m.Alloc(uint64(n)*PageSize, PageSize)
}

// Brk reports the current top of the allocated address range.
func (m *Memory) Brk() Addr { return m.next }

func (m *Memory) page(a Addr) *[PageSize]byte {
	base := a.Page()
	p, ok := m.pages[base]
	if !ok {
		p = new([PageSize]byte)
		m.pages[base] = p
	}
	return p
}

// ByteAt returns the canonical value of the byte at a.
func (m *Memory) ByteAt(a Addr) byte {
	if p, ok := m.pages[a.Page()]; ok {
		return p[a-a.Page()]
	}
	return 0
}

// SetByte sets the canonical value of the byte at a.
func (m *Memory) SetByte(a Addr, v byte) {
	m.page(a)[a-a.Page()] = v
}

// Read copies len(dst) canonical bytes starting at a into dst. Reads may
// cross page boundaries.
func (m *Memory) Read(a Addr, dst []byte) {
	for len(dst) > 0 {
		base := a.Page()
		off := int(a - base)
		n := PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p, ok := m.pages[base]; ok {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		a += Addr(n)
	}
}

// Write copies src into the canonical store starting at a. Writes may cross
// page boundaries.
func (m *Memory) Write(a Addr, src []byte) {
	for len(src) > 0 {
		base := a.Page()
		off := int(a - base)
		n := PageSize - off
		if n > len(src) {
			n = len(src)
		}
		copy(m.page(a)[off:off+n], src[:n])
		src = src[n:]
		a += Addr(n)
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1, 2, 4, or 8) at a.
func (m *Memory) ReadUint(a Addr, size int) uint64 {
	var buf [8]byte
	m.Read(a, buf[:size])
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// WriteUint writes a little-endian unsigned integer of the given byte size
// (1, 2, 4, or 8) at a.
func (m *Memory) WriteUint(a Addr, size int, v uint64) {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v)
		v >>= 8
	}
	m.Write(a, buf[:size])
}

// PagesTouched reports how many distinct pages have been materialized.
func (m *Memory) PagesTouched() int { return len(m.pages) }
