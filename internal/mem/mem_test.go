package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrHelpers(t *testing.T) {
	if got := Addr(4097).Page(); got != 4096 {
		t.Errorf("Page(4097) = %d, want 4096", got)
	}
	if got := Addr(4096).Page(); got != 4096 {
		t.Errorf("Page(4096) = %d, want 4096", got)
	}
	if got := Addr(127).Block(64); got != 64 {
		t.Errorf("Block(127, 64) = %d, want 64", got)
	}
	if got := Addr(64).Block(64); got != 64 {
		t.Errorf("Block(64, 64) = %d, want 64", got)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	m := New(0)
	seen := map[Addr]uint64{} // base -> size
	for i, tc := range []struct{ size, align uint64 }{
		{1, 1}, {3, 2}, {8, 8}, {100, 64}, {4096, 4096}, {10, 1}, {64, 64},
	} {
		a := m.Alloc(tc.size, tc.align)
		if uint64(a)%tc.align != 0 {
			t.Errorf("alloc %d: base %#x not aligned to %d", i, uint64(a), tc.align)
		}
		for base, size := range seen {
			if uint64(a) < uint64(base)+size && uint64(base) < uint64(a)+tc.size {
				t.Errorf("alloc %d overlaps earlier allocation at %#x", i, uint64(base))
			}
		}
		seen[a] = tc.size
	}
}

func TestAllocNeverReturnsNull(t *testing.T) {
	m := New(0)
	if a := m.Alloc(1, 1); a == 0 {
		t.Fatal("allocator handed out the null address")
	}
}

func TestBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	New(0).Alloc(8, 3)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(0)
	a := m.Alloc(10000, 8)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.Write(a, data)
	got := make([]byte, len(data))
	m.Read(a, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read did not return written data")
	}
}

func TestCrossPageWrite(t *testing.T) {
	m := New(0)
	a := m.AllocPages(2) + PageSize - 3
	m.Write(a, []byte{1, 2, 3, 4, 5, 6})
	got := make([]byte, 6)
	m.Read(a, got)
	for i, v := range got {
		if v != byte(i+1) {
			t.Fatalf("byte %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestZeroFillUntouched(t *testing.T) {
	m := New(0)
	a := m.AllocPages(1)
	buf := []byte{9, 9, 9, 9}
	m.Read(a+100, buf)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("untouched byte %d = %d, want 0", i, v)
		}
	}
	if m.PagesTouched() != 0 {
		t.Fatalf("reading must not materialize pages, got %d", m.PagesTouched())
	}
}

func TestUintRoundTrip(t *testing.T) {
	m := New(0)
	a := m.Alloc(64, 8)
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		m.WriteUint(a, size, 0x1122334455667788)
		if got := m.ReadUint(a, size); got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestUintLittleEndian(t *testing.T) {
	m := New(0)
	a := m.Alloc(8, 8)
	m.WriteUint(a, 4, 0x04030201)
	for i := 0; i < 4; i++ {
		if got := m.ByteAt(a + Addr(i)); got != byte(i+1) {
			t.Errorf("byte %d = %d, want %d (little endian)", i, got, i+1)
		}
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	m := New(0)
	a := m.Alloc(PageSize, 8)
	f := func(off uint16, v uint64) bool {
		addr := a + Addr(off%(PageSize-8))
		m.WriteUint(addr, 8, v)
		return m.ReadUint(addr, 8) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWriteReadSlices(t *testing.T) {
	m := New(0)
	base := m.AllocPages(4)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		a := base + Addr(off)
		m.Write(a, data)
		got := make([]byte, len(data))
		m.Read(a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocOverflowPanics(t *testing.T) {
	// Silently wrapping next would hand out address ranges that alias
	// live allocations; exhaustion of the 64-bit space must panic.
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	m := New(0)
	m.Alloc(uint64(^Addr(0))-uint64(m.Brk())-PageSize, 1) // nearly exhaust the space
	mustPanic("size overflow", func() { m.Alloc(2*PageSize, 1) })
	mustPanic("alignment overflow", func() { m.Alloc(1, 1<<40) })
}
