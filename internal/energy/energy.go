// Package energy is the McPAT substitute: an event-energy model that turns
// the simulator's architectural counters into processor and interconnect
// energy estimates.
//
// Dynamic energy is a sum of per-event energies (cache/directory accesses,
// NoC flit-hops, intersocket flits, DRAM accesses, core activity per
// instruction); static energy integrates per-core and per-socket idle power
// over the simulated execution time. The per-event constants are ballpark
// values in the range published for CACTI/McPAT models of ~14 nm server
// parts; absolute joules are not meaningful, but relative comparisons
// between two runs of the same binary (the paper's methodology) are.
package energy

import (
	"warden/internal/stats"
	"warden/internal/topology"
)

// Model holds per-event energies (joules) and static powers (watts).
type Model struct {
	PerInstruction  float64 // core front-end+ALU energy per instruction
	L1Access        float64
	L2Access        float64
	L3Access        float64
	DirAccess       float64
	RegionCAMAccess float64 // WARD region table lookup (§6.1: tiny vs caches)
	NoCFlitHop      float64
	IntersocketFlit float64
	DRAMAccess      float64

	CorePower         float64 // static, per core
	UncorePowerSocket float64 // static, per socket (LLC, directory, NoC)
}

// Default returns the model used throughout the evaluation, with the
// intersocket link energy scaled for disaggregated fabrics (whose per-bit
// transport energy is far higher than a package-to-package link).
func Default(cfg topology.Config) Model {
	m := Model{
		PerInstruction:    80e-12,
		L1Access:          20e-12,
		L2Access:          55e-12,
		L3Access:          480e-12,
		DirAccess:         45e-12,
		RegionCAMAccess:   9e-12,
		NoCFlitHop:        26e-12,
		IntersocketFlit:   1600e-12,
		DRAMAccess:        14e-9,
		CorePower:         0.85,
		UncorePowerSocket: 7.5,
	}
	if cfg.InterSocketLatency >= 1000 {
		// Disaggregated: remote traffic traverses a network fabric.
		m.IntersocketFlit *= 4.5
	}
	return m
}

// Breakdown is the energy of one run split the way the paper reports it:
// Figs. 7b/8b chart "Interconnect" and "Total Processor"; Fig. 12b adds the
// "In-Processor" remainder explicitly.
type Breakdown struct {
	Core         float64 // instruction execution + static core power
	Caches       float64 // L1/L2/L3/directory/region-CAM dynamic energy
	Interconnect float64 // NoC + intersocket dynamic energy
	DRAM         float64
	Uncore       float64 // static uncore power
	Total        float64 // sum of the above ("Total Processor")
}

// InProcessor is everything that is not interconnect or DRAM — the
// "In-Processor" series of Fig. 12b.
func (b Breakdown) InProcessor() float64 { return b.Core + b.Caches + b.Uncore }

// Evaluate converts counters plus total runtime (cycles) into a Breakdown
// for a machine of the given topology.
func (m Model) Evaluate(c *stats.Counters, cycles uint64, cfg topology.Config) Breakdown {
	seconds := cfg.CyclesToSeconds(cycles)
	var b Breakdown
	b.Core = float64(c.Instructions)*m.PerInstruction +
		m.CorePower*seconds*float64(cfg.Cores())
	b.Caches = float64(c.L1Accesses)*m.L1Access +
		float64(c.L2Accesses)*m.L2Access +
		float64(c.L3Accesses)*m.L3Access +
		float64(c.DirAccesses)*(m.DirAccess+m.RegionCAMAccess)
	b.Interconnect = float64(c.NoCFlitHops)*m.NoCFlitHop +
		float64(c.IntersocketFlits)*m.IntersocketFlit
	b.DRAM = float64(c.DRAMAccesses) * m.DRAMAccess
	b.Uncore = m.UncorePowerSocket * seconds * float64(cfg.Sockets)
	b.Total = b.Core + b.Caches + b.Interconnect + b.DRAM + b.Uncore
	return b
}

// Savings returns the percent energy saved going from base to opt:
// 100*(base-opt)/base. Negative values mean opt used more energy.
func Savings(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - opt) / base
}
