package energy

// Accumulator is a core.Sink that integrates dynamic energy directly from
// the event stream instead of from end-of-run counters. Instruction-level
// events carry counter deltas covering everything the instruction caused
// (including nested transactions, evictions, and reconciliations), and the
// final EvDrain event covers the end-of-run flushes, so summing the
// instruction-level deltas reproduces the counter-derived dynamic energy
// exactly. The gain over Model.Evaluate is attribution: energy can be
// split per event kind (and could be split per thread or region), which
// the counter totals cannot do.

import (
	"warden/internal/core"
	"warden/internal/stats"
	"warden/internal/topology"
)

// Accumulator integrates dynamic energy event by event. Static energy
// needs the final cycle count, so it is added by Breakdown at the end.
type Accumulator struct {
	model Model
	cfg   topology.Config

	core, caches, interconnect, dram float64

	// ByKind attributes dynamic energy to the instruction-level event kind
	// that caused it (protocol-internal events are nested inside and would
	// double count; they are skipped).
	ByKind map[core.EventKind]float64
}

// NewAccumulator returns an Accumulator for the given model and topology.
func NewAccumulator(model Model, cfg topology.Config) *Accumulator {
	return &Accumulator{model: model, cfg: cfg, ByKind: make(map[core.EventKind]float64)}
}

// Event implements core.Sink.
func (a *Accumulator) Event(ev *core.Event) {
	if !ev.Kind.Instruction() {
		return // nested inside an instruction event's deltas
	}
	// Instruction count: a compute event retires Arg1 ALU instructions;
	// every other instruction-level event retires one; the drain retires
	// none.
	var instrs uint64
	switch ev.Kind {
	case core.EvCompute:
		instrs = ev.Arg1
	case core.EvDrain:
		instrs = 0
	default:
		instrs = 1
	}
	coreE := float64(instrs) * a.model.PerInstruction
	cachesE := a.dynCaches(ev.Ctrs)
	icE := float64(ev.Ctrs.NoCFlitHops)*a.model.NoCFlitHop +
		float64(ev.Ctrs.IntersocketFlits)*a.model.IntersocketFlit
	dramE := float64(ev.Ctrs.DRAMAccesses) * a.model.DRAMAccess

	a.core += coreE
	a.caches += cachesE
	a.interconnect += icE
	a.dram += dramE
	a.ByKind[ev.Kind] += coreE + cachesE + icE + dramE
}

func (a *Accumulator) dynCaches(s stats.Snapshot) float64 {
	return float64(s.L1Accesses)*a.model.L1Access +
		float64(s.L2Accesses)*a.model.L2Access +
		float64(s.L3Accesses)*a.model.L3Access +
		float64(s.DirAccesses)*(a.model.DirAccess+a.model.RegionCAMAccess)
}

// Breakdown finalizes the run: dynamic energy from the integrated events
// plus static energy over the run's cycle count, in the same shape as
// Model.Evaluate.
func (a *Accumulator) Breakdown(cycles uint64) Breakdown {
	seconds := a.cfg.CyclesToSeconds(cycles)
	var b Breakdown
	b.Core = a.core + a.model.CorePower*seconds*float64(a.cfg.Cores())
	b.Caches = a.caches
	b.Interconnect = a.interconnect
	b.DRAM = a.dram
	b.Uncore = a.model.UncorePowerSocket * seconds * float64(a.cfg.Sockets)
	b.Total = b.Core + b.Caches + b.Interconnect + b.DRAM + b.Uncore
	return b
}
