package energy

import (
	"testing"
	"testing/quick"

	"warden/internal/stats"
	"warden/internal/topology"
)

func TestEvaluateComponents(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	m := Default(cfg)
	c := &stats.Counters{
		Instructions: 1_000_000,
		L1Accesses:   800_000,
		L2Accesses:   100_000,
		L3Accesses:   20_000,
		DirAccesses:  20_000,
		DRAMAccesses: 1_000,
		NoCFlitHops:  500_000,
	}
	c.IntersocketFlits = 50_000
	b := m.Evaluate(c, 10_000_000, cfg)
	if b.Total <= 0 {
		t.Fatal("non-positive total energy")
	}
	sum := b.Core + b.Caches + b.Interconnect + b.DRAM + b.Uncore
	if diff := b.Total - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("total %v != sum of parts %v", b.Total, sum)
	}
	if b.InProcessor() != b.Core+b.Caches+b.Uncore {
		t.Fatal("InProcessor decomposition wrong")
	}
}

func TestMoreTrafficMoreEnergy(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	m := Default(cfg)
	base := &stats.Counters{Instructions: 1000, NoCFlitHops: 1000}
	more := &stats.Counters{Instructions: 1000, NoCFlitHops: 100000}
	eb := m.Evaluate(base, 1000, cfg)
	em := m.Evaluate(more, 1000, cfg)
	if em.Interconnect <= eb.Interconnect {
		t.Fatal("more flit-hops did not increase interconnect energy")
	}
	if em.Core != eb.Core {
		t.Fatal("flit-hops changed core energy")
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	m := Default(cfg)
	c := &stats.Counters{}
	short := m.Evaluate(c, 1_000_000, cfg)
	long := m.Evaluate(c, 2_000_000, cfg)
	if long.Uncore <= short.Uncore || long.Core <= short.Core {
		t.Fatal("static energy did not scale with runtime")
	}
	if got, want := long.Uncore/short.Uncore, 2.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("uncore scaling = %v, want 2", got)
	}
}

func TestDisaggregatedLinkCostsMore(t *testing.T) {
	std := Default(topology.XeonGold6126(2))
	dis := Default(topology.Disaggregated())
	if dis.IntersocketFlit <= std.IntersocketFlit {
		t.Fatal("disaggregated fabric not costlier per flit")
	}
}

func TestSavings(t *testing.T) {
	if Savings(100, 75) != 25 {
		t.Fatal("Savings(100,75) != 25")
	}
	if Savings(100, 125) != -25 {
		t.Fatal("Savings(100,125) != -25")
	}
	if Savings(0, 10) != 0 {
		t.Fatal("Savings with zero base must be 0")
	}
}

func TestQuickEnergyMonotoneInCounters(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	m := Default(cfg)
	f := func(l1, l3, dram uint32) bool {
		a := &stats.Counters{L1Accesses: uint64(l1), L3Accesses: uint64(l3), DRAMAccesses: uint64(dram)}
		b := &stats.Counters{L1Accesses: uint64(l1) + 1, L3Accesses: uint64(l3) + 1, DRAMAccesses: uint64(dram) + 1}
		return m.Evaluate(b, 1000, cfg).Total > m.Evaluate(a, 1000, cfg).Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
