package energy_test

import (
	"math"
	"testing"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/energy"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// TestAccumulatorMatchesCounters runs a benchmark with the event-driven
// energy accumulator attached and checks that the integrated breakdown
// agrees with the counter-derived one: the instruction-level counter deltas
// (plus the EvDrain event) partition the whole run, so the two integrals
// must agree to floating-point accumulation error.
func TestAccumulatorMatchesCounters(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	model := energy.Default(cfg)
	for _, proto := range core.Protocols("mesi", "warden") {
		var acc *energy.Accumulator
		res, err := bench.RunOneObserved(cfg, proto, e, e.Small, hlpl.DefaultOptions(),
			func(*machine.Machine) core.Sink {
				acc = energy.NewAccumulator(model, cfg)
				return acc
			})
		if err != nil {
			t.Fatal(err)
		}
		want := model.Evaluate(&res.Counters, res.Cycles, cfg)
		got := acc.Breakdown(res.Cycles)
		check := func(name string, g, w float64) {
			if w == 0 && g == 0 {
				return
			}
			if rel := math.Abs(g-w) / math.Max(math.Abs(w), 1e-30); rel > 1e-9 {
				t.Errorf("%v %s: accumulator %.6g != counters %.6g (rel %.2g)", proto, name, g, w, rel)
			}
		}
		check("core", got.Core, want.Core)
		check("caches", got.Caches, want.Caches)
		check("interconnect", got.Interconnect, want.Interconnect)
		check("dram", got.DRAM, want.DRAM)
		check("total", got.Total, want.Total)
		if len(acc.ByKind) == 0 {
			t.Fatalf("%v: no per-kind attribution", proto)
		}
		// The per-kind attribution must partition the dynamic energy: the
		// breakdown minus the static (power × time) terms.
		var byKind float64
		for _, v := range acc.ByKind {
			byKind += v
		}
		seconds := cfg.CyclesToSeconds(res.Cycles)
		static := model.CorePower*seconds*float64(cfg.Cores()) +
			model.UncorePowerSocket*seconds*float64(cfg.Sockets)
		check("by-kind sum", byKind, want.Total-static)
	}
}
