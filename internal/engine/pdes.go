// Conservative parallel discrete-event scheduling (PDES) for the engine.
//
// The sequential scheduler in engine.go executes every op in exact
// (clock, id) order, one goroutine live at a time. The PDES scheduler
// below spreads one simulation across host cores while producing the
// bit-identical serialized history, by splitting ops into two classes:
//
//   - LocalOp (compute, fence): touches only state owned by the issuing
//     thread. Within an epoch window [T, T+W) every thread whose next op
//     is local runs concurrently on its own host goroutine, buffering any
//     observable side effects (counters, events) privately.
//
//   - Global (everything else — loads, stores, atomics, region ops, host
//     callbacks): may touch shared simulator state (caches, directory,
//     memory, the event sink). Globals are never executed concurrently or
//     speculatively: a single goroutine drains them in exact (clock, id)
//     order at the epoch barrier, flushing buffered thread-local effects
//     ahead of each one so the shared event stream sees the sequential
//     engine's exact order.
//
// Why determinism holds: the serialized history seen by all shared state
// is ops sorted by (clock, id) — identical to the sequential engine's
// execution order. Local ops cannot observe or influence any other
// thread, so running them early (in host time) and in any host
// interleaving changes nothing they compute; their clock advances are a
// pure function of thread-private state. The window W is therefore a
// performance parameter only: any W >= 1 yields byte-identical results,
// because no shared-state op ever executes ahead of its serialized turn.
// This is stronger than classic conservative PDES (which needs W to
// lower-bound cross-thread latency) and is forced by this simulator's
// instantaneous coherence-state transitions: a load's L1 hit/miss outcome
// can be changed by another thread's store with a smaller timestamp in
// the same window, so there is no usable lookahead for shared state —
// L1 "hits" cannot be classified local without breaking bit-identity.
//
// Epoch structure (runPDES):
//
//  1. T = min (clock, id) over parked threads; H = min(T+W, MaxCycles+1).
//  2. Phase 1 (parallel): release every parked thread whose pending op is
//     local and clock < H. Each released thread executes local ops and the
//     host code between them concurrently until its next op is global, its
//     clock reaches H, or its body exits; then it parks back. The barrier
//     waits for all released threads.
//  3. Phase 2 (serial drain): repeatedly pick the parked thread u with the
//     smallest (clock, id) below H — its pending op is global by the phase
//     1 invariant — and wake it in serial mode with an inline lease bounded
//     by the smallest (clock, id) among the other parked threads (valid
//     because they are all frozen). u flushes buffered effects and executes
//     its global ops inline, interleaving any local ops, until it hits the
//     lease or H; then it parks back. Exactly one goroutine runs during the
//     drain, and globals execute in strictly ascending (clock, id) order.
//  4. When no parked thread remains below H, open the next epoch.
//
// Host-visible side effects of body code between ops follow the segment
// rule: code after a local op may run concurrently in phase 1 and must
// touch only thread-private state (or commutative atomics); code after a
// global op always runs serialized, in exact serialized order. Shared
// host state mutated from arbitrary segments goes through a global op
// (machine.Ctx.Host) to land at its exact serialized position.
package engine

import (
	"fmt"
	"runtime"
)

// PDESConfig configures the conservative epoch-window scheduler.
type PDESConfig struct {
	// Window is the epoch width W in cycles. Any value >= 1 is correct
	// (see the package comment above); larger windows amortize barrier
	// cost, smaller ones bound how far threads run ahead. Zero is treated
	// as 1.
	Window uint64

	// Local executes a LocalOp on behalf of t. It runs concurrently with
	// other threads' Local calls and with body code, so it must touch only
	// state owned by t (plus atomics). The machine layer supplies a
	// handler that writes per-thread counters and buffers events.
	Local Handler

	// Flush, if non-nil, is called in serialized context immediately
	// before each global op executes, with that op's issue (clock, id).
	// It must publish every buffered thread-local effect whose position
	// (cycle, thread) precedes or equals the bound — cycle < clock, or
	// cycle == clock && thread <= id — in (cycle, thread) order. It is
	// called once more with (^uint64(0), MaxInt) before Run returns.
	Flush func(maxCycle uint64, maxID int)
}

// EpochEvent marks a PDES scheduler phase boundary: the hook installed
// with SetEpochHook receives one Begin=true event when a phase opens and
// one Begin=false event when it closes. Events fire on the scheduler's
// own goroutine — phase 1 events while every simulated thread is parked
// or about to be released, phase 2 events before the drain is seeded and
// after it runs dry — so the hook observes the engine, never the other
// way around: it cannot reorder an op, advance a clock, or touch
// simulated state, and a nil hook costs one predictable branch per phase.
type EpochEvent struct {
	// Epoch is the 0-based epoch ordinal for this Run.
	Epoch int
	// Phase is 1 (parallel local window) or 2 (serial drain).
	Phase int
	// Begin is true at phase open, false at phase close.
	Begin bool
	// Clock is the epoch's base simulated time T (the minimum parked
	// (clock, id) when the epoch opened).
	Clock uint64
	// Horizon is the epoch horizon H: ops with clock < H may execute.
	Horizon uint64
	// Threads is the number of threads released in phase 1; 0 in phase 2
	// events (the drain wakes threads one at a time).
	Threads int
}

// SetEpochHook installs a host-side observer of PDES epoch phase
// boundaries. Call before Run; nil (the default) disables the hook with
// no per-op cost. The sequential scheduler has no epochs and never fires
// the hook. The hook must not call back into the engine.
func (e *Engine) SetEpochHook(h func(EpochEvent)) { e.epochHook = h }

// SetPDES selects the conservative PDES scheduler for this engine's Run.
// Call before Run. The handler passed to New still executes every global
// op; cfg.Local executes ops marked LocalOp.
func (e *Engine) SetPDES(cfg PDESConfig) {
	if cfg.Local == nil {
		panic("engine: PDESConfig.Local handler is required")
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	e.pdes = &cfg
}

// pdesMsg is a running thread's report to the coordinator: a park (the
// zero flags), a body exit, or a panic.
type pdesMsg struct {
	t      *Thread
	exited bool
	panicv any
}

// callPDES is Thread.Call under the PDES scheduler.
func (t *Thread) callPDES(op Op) {
	e := t.eng
	for {
		if _, local := op.(LocalOp); local {
			if t.now < t.limit {
				// Phase 1 (or serial-mode) local execution: concurrent,
				// thread-private, effects buffered by the Local handler.
				adv := e.pdes.Local(t, op)
				t.now += adv
				if p := e.probe; p != nil {
					p.note(adv)
				}
				return
			}
		} else if t.serial && t.now < t.limit &&
			(t.now < t.horizonNow || (t.now == t.horizonNow && t.id < t.horizonID)) {
			// Serial-drain inline lease: this thread's (clock, id) precedes
			// every other parked thread's and the epoch horizon, so its
			// global op is exactly the next one in serialized order.
			// now < limit <= MaxCycles+1 also preserves the cycle guard.
			if f := e.pdes.Flush; f != nil {
				f(t.now, t.id)
			}
			adv := e.handler(t, op)
			t.now += adv
			if p := e.probe; p != nil {
				p.note(adv)
			}
			return
		}
		t.parkPDES(op)
	}
}

// parkPDES hands control back and waits to be released into the next
// phase. A thread holding the serial-drain baton passes it directly to the
// next thread (the coordinator is only involved when the drain runs dry);
// everything else reports to the coordinator. The loop in callPDES
// re-dispatches the op under the refreshed limit/serial/horizon state.
func (t *Thread) parkPDES(op Op) {
	e := t.eng
	t.pending = op
	serial := t.serial
	t.serial = false
	switch {
	case !e.running:
		// Startup: Run launches threads one at a time; just register.
		e.pdesParked = append(e.pdesParked, t)
		e.startc <- nil
	case serial:
		// Direct handoff: this thread holds the drain baton, so it owns
		// drainHeap and may wake its successor itself — one channel
		// send per switch instead of a round trip through the
		// coordinator. Safe because after the wake this goroutine only
		// blocks on its own res channel (unbuffered, so a successor that
		// immediately picks this thread just rendezvouses here).
		e.drainHeap.push(t)
		if !e.wakeNextDrain() {
			e.parkc <- pdesMsg{t: t} // drain ran dry; close the epoch
		}
	default:
		e.parkc <- pdesMsg{t: t}
	}
	<-t.res
	t.pending = nil
}

// wakeNextDrain picks the parked thread with the smallest (clock, id)
// below the epoch horizon, grants it the serial lease (bounded by the
// smallest (clock, id) among the threads left parked), and wakes it. It
// reports false when no thread is runnable this epoch. The caller must
// hold the drain baton: the one live serial thread as it parks, or the
// coordinator when seeding the drain or resuming it after an exit.
func (e *Engine) wakeNextDrain() bool {
	dh := &e.drainHeap
	if dh.len() == 0 || dh.a[0].now >= e.drainH {
		return false
	}
	u := dh.pop()
	// The inline global lease: the smallest (clock, id) among the threads
	// left parked — the new heap root. They are all frozen until u parks
	// back, so the lease cannot go stale.
	if dh.len() > 0 {
		u.horizonNow, u.horizonID = dh.a[0].now, dh.a[0].id
	} else {
		u.horizonNow, u.horizonID = ^uint64(0), int(^uint(0)>>1)
	}
	u.limit = e.drainH
	u.serial = true
	u.res <- struct{}{}
	return true
}

// runPDES is Run under the PDES scheduler: the epoch coordinator. It runs
// on Run's goroutine and owns all scheduling decisions; thread goroutines
// only ever run between a wake (res) and their next park (parkc).
func (e *Engine) runPDES() (uint64, error) {
	w := e.pdes.Window
	e.procs = runtime.GOMAXPROCS(0)
	e.startc = make(chan any)
	e.parkc = make(chan pdesMsg, len(e.threads))

	// Startup: identical to the sequential engine — threads launch one at
	// a time and run to their first op (limit 0 forces an immediate park),
	// so exactly one goroutine is live and host allocation order is
	// deterministic.
	for _, t := range e.threads {
		if t.body == nil {
			panic(fmt.Sprintf("engine: thread %d has no body", t.id))
		}
		t.horizonNow, t.horizonID = 0, -1
		t.limit = 0
		e.launch(t)
		if v := <-e.startc; v != nil {
			panic(v)
		}
	}
	e.running = true

	parked := e.pdesParked
	live := len(parked)
	finalFlush := func() {
		if f := e.pdes.Flush; f != nil {
			f(^uint64(0), int(^uint(0)>>1))
		}
	}

	epoch := 0
	for {
		if live == 0 {
			finalFlush()
			return e.final, nil
		}

		// Epoch open: find T = min (clock, id) over parked threads.
		minT := parked[0]
		for _, t := range parked[1:] {
			if clockLess(t, minT) {
				minT = t
			}
		}
		if e.MaxCycles > 0 && minT.now > e.MaxCycles {
			// Same condition and same reported clock as the sequential
			// scheduler: every op with clock <= MaxCycles has executed.
			finalFlush()
			return minT.now, ErrMaxCycles
		}
		h := minT.now + w
		if h < minT.now {
			h = ^uint64(0) // saturate
		}
		if e.MaxCycles > 0 && h > e.MaxCycles+1 {
			h = e.MaxCycles + 1
		}

		// Phase 1 exists only to buy host parallelism: it needs at least
		// two runnable local threads and more than one host proc to pay
		// for its per-thread release/park round trip. Otherwise skip it —
		// the serial drain executes pending local ops inline at the same
		// serialized positions (byte-identical either way; locals
		// commute), with direct handoffs instead of barrier crossings.
		runnable := 0
		for _, t := range parked {
			if _, local := t.pending.(LocalOp); local && t.now < h {
				runnable++
			}
		}
		// Capture the epoch base before any thread runs: minT's clock
		// advances during the phases below.
		baseT := minT.now
		if e.procs > 1 && runnable >= 2 {
			if hk := e.epochHook; hk != nil {
				hk(EpochEvent{Epoch: epoch, Phase: 1, Begin: true,
					Clock: baseT, Horizon: h, Threads: runnable})
			}
			// Phase 1: release every thread whose pending op is local and
			// whose clock is inside the window; they run concurrently.
			released := 0
			keep := parked[:0]
			for _, t := range parked {
				if _, local := t.pending.(LocalOp); local && t.now < h {
					t.limit = h
					t.serial = false
					released++
					t.res <- struct{}{}
					continue
				}
				keep = append(keep, t)
			}
			parked = keep

			// Barrier: every released thread parks back, exits, or panics.
			var panics []pdesMsg
			for released > 0 {
				m := <-e.parkc
				released--
				switch {
				case m.panicv != nil:
					panics = append(panics, m)
				case m.exited:
					live--
					if m.t.now > e.final {
						e.final = m.t.now
					}
				default:
					parked = append(parked, m.t)
				}
			}
			if len(panics) > 0 {
				// Propagate the panic the sequential engine would hit
				// first: the one at the smallest (clock, id).
				min := panics[0]
				for _, p := range panics[1:] {
					if clockLess(p.t, min.t) {
						min = p
					}
				}
				panic(min.panicv)
			}
			if hk := e.epochHook; hk != nil {
				hk(EpochEvent{Epoch: epoch, Phase: 1, Begin: false,
					Clock: baseT, Horizon: h, Threads: runnable})
			}
		}

		// Phase 2: serial drain below the horizon, smallest (clock, id)
		// first. After phase 1 every parked thread below H has a global
		// pending op; if phase 1 was skipped, the drained thread executes
		// its local ops inline (callPDES) before reaching the global one.
		// The coordinator only seeds the drain;
		// after that each parking thread wakes its successor directly, and
		// the coordinator hears back on a thread exit, a panic, or the
		// drain running dry (the baton-holder found no successor).
		if hk := e.epochHook; hk != nil {
			hk(EpochEvent{Epoch: epoch, Phase: 2, Begin: true, Clock: baseT, Horizon: h})
		}
		e.drainH = h
		for _, t := range parked {
			e.drainHeap.push(t)
		}
		parked = parked[:0]
		for e.wakeNextDrain() {
			m := <-e.parkc
			if m.panicv != nil {
				panic(m.panicv)
			}
			if m.exited {
				live--
				if m.t.now > e.final {
					e.final = m.t.now
				}
				continue // resume the drain in the exited thread's stead
			}
			// Drain-dry park: m.t already re-parked itself into
			// drainHeap before reporting, so every thread is frozen.
			break
		}
		// Reclaim the heap into the parked slice (order is irrelevant;
		// the epoch open rescans for the minimum). Keeps the backing
		// arrays of both containers for the next epoch.
		parked = append(parked, e.drainHeap.a...)
		for i := range e.drainHeap.a {
			e.drainHeap.a[i] = nil
		}
		e.drainHeap.a = e.drainHeap.a[:0]
		if hk := e.epochHook; hk != nil {
			hk(EpochEvent{Epoch: epoch, Phase: 2, Begin: false, Clock: baseT, Horizon: h})
		}
		epoch++
	}
}
