package engine

import (
	"errors"
	"testing"
)

// simpleOp advances a thread's clock by its value.
type simpleOp uint64

func TestSingleThreadRuns(t *testing.T) {
	var executed []uint64
	e := New(1, func(_ *Thread, op Op) uint64 {
		v := uint64(op.(simpleOp))
		executed = append(executed, v)
		return v
	})
	e.SetBody(0, func(th *Thread) {
		th.Call(simpleOp(5))
		th.Call(simpleOp(7))
	})
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if final != 12 {
		t.Fatalf("final clock = %d, want 12", final)
	}
	if len(executed) != 2 || executed[0] != 5 || executed[1] != 7 {
		t.Fatalf("ops executed: %v", executed)
	}
}

// TestSmallestTimeFirst: ops must execute in global simulated-time order,
// with thread-id tie-breaking.
func TestSmallestTimeFirst(t *testing.T) {
	type ev struct {
		tid  int
		when uint64
	}
	var order []ev
	e := New(3, func(th *Thread, op Op) uint64 {
		order = append(order, ev{th.ID(), th.Now()})
		return uint64(op.(simpleOp))
	})
	// Thread 0: ops at t=0, 10, 20...; thread 1: 0, 3, 6...; thread 2: 0, 7, 14.
	steps := [][]uint64{{10, 10}, {3, 3, 3}, {7, 7}}
	for i, st := range steps {
		i, st := i, st
		e.SetBody(i, func(th *Thread) {
			for _, s := range st {
				th.Call(simpleOp(s))
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if a.when > b.when {
			t.Fatalf("time order violated at %d: %+v then %+v", i, a, b)
		}
		if a.when == b.when && a.tid > b.tid {
			t.Fatalf("tie-break violated at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestExactlyOneRunning: the handler must never observe two threads having
// mutated shared state concurrently. We verify by having bodies bump an
// unguarded counter before each op; any data race would trip -race, and
// the serialized total must be exact.
func TestExactlyOneRunning(t *testing.T) {
	shared := 0
	e := New(8, func(_ *Thread, op Op) uint64 { return 1 })
	for i := 0; i < 8; i++ {
		e.SetBody(i, func(th *Thread) {
			for k := 0; k < 100; k++ {
				shared++ // unsynchronized on purpose
				th.Call(simpleOp(1))
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if shared != 800 {
		t.Fatalf("shared = %d, want 800 (lost updates => concurrency bug)", shared)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		var order []int
		e := New(4, func(th *Thread, op Op) uint64 {
			order = append(order, th.ID())
			return uint64(op.(simpleOp))
		})
		for i := 0; i < 4; i++ {
			i := i
			e.SetBody(i, func(th *Thread) {
				for k := 0; k < 50; k++ {
					th.Call(simpleOp(uint64(1 + (i+k)%5)))
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different op counts across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at %d", i)
		}
	}
}

func TestMaxCycles(t *testing.T) {
	e := New(1, func(_ *Thread, op Op) uint64 { return 100 })
	e.MaxCycles = 1000
	e.SetBody(0, func(th *Thread) {
		for { // simulated runaway
			th.Call(simpleOp(0))
		}
	})
	_, err := e.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestBodyWithNoOpsExitsCleanly(t *testing.T) {
	e := New(2, func(_ *Thread, op Op) uint64 { return 1 })
	e.SetBody(0, func(th *Thread) {}) // exits immediately
	e.SetBody(1, func(th *Thread) { th.Call(simpleOp(3)) })
	final, err := e.Run()
	if err != nil || final != 1 {
		t.Fatalf("final=%d err=%v", final, err)
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	e := New(2, func(_ *Thread, op Op) uint64 { return 1 })
	e.SetBody(0, func(th *Thread) { th.Call(simpleOp(1)) })
	e.SetBody(1, func(th *Thread) {
		th.Call(simpleOp(1))
		panic("boom")
	})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Run()
	t.Fatal("Run returned despite body panic")
}

// TestProbeCountsCyclesAndOps: the probe must see every executed op and the
// exact sum of clock advances, and attaching it must not change the final
// clock. A shared probe across two engines accumulates both.
func TestProbeCountsCyclesAndOps(t *testing.T) {
	build := func(p *Probe) *Engine {
		e := New(2, func(_ *Thread, op Op) uint64 { return uint64(op.(simpleOp)) })
		for i := 0; i < 2; i++ {
			e.SetBody(i, func(th *Thread) {
				for k := 0; k < 5; k++ {
					th.Call(simpleOp(3))
				}
			})
		}
		if p != nil {
			e.SetProbe(p)
		}
		return e
	}

	bare, err := build(nil).Run()
	if err != nil {
		t.Fatal(err)
	}

	var p Probe
	probed, err := build(&p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if probed != bare {
		t.Fatalf("probe changed final clock: %d vs %d", probed, bare)
	}
	cycles, ops := p.Sample()
	if ops != 10 {
		t.Fatalf("ops = %d, want 10", ops)
	}
	if cycles != 30 { // 2 threads x 5 ops x 3 cycles of thread-clock advance
		t.Fatalf("cycles = %d, want 30", cycles)
	}

	// A second engine sharing the probe accumulates on top.
	if _, err := build(&p).Run(); err != nil {
		t.Fatal(err)
	}
	cycles, ops = p.Sample()
	if ops != 20 || cycles != 60 {
		t.Fatalf("shared probe = (%d cycles, %d ops), want (60, 20)", cycles, ops)
	}
}
