// Package engine is a deterministic, execution-driven multicore simulation
// engine. Each simulated hardware thread is a goroutine running real Go
// code (the HLPL runtime plus benchmark); whenever that code performs a
// simulated operation (load, store, compute, ...) the goroutine parks and
// the engine decides when — in simulated time — the operation happens.
//
// Determinism comes from two rules:
//
//  1. Exactly one goroutine runs simulator or program state at any instant.
//     Control passes from goroutine to goroutine through explicit
//     handoffs; nothing else runs in between.
//  2. Among parked threads, the engine always executes the operation of the
//     thread with the smallest local clock, breaking ties by thread id.
//
// Under these rules all simulator state is accessed single-threaded — no
// locks anywhere — and every run of the same program is bit-identical,
// which the test suite asserts.
//
// The scheduler is decentralized for host speed. There is no engine
// goroutine in the hot loop; two mechanisms keep the op rate high:
//
//   - Inline lease: when a thread is resumed it learns the smallest
//     (clock, id) among every *other* parked thread. While its own
//     (clock, id) stays below that horizon, its next operation is by
//     definition the one rule 2 would pick, so Thread.Call executes the
//     handler inline on the thread's own goroutine with no handoff and no
//     scheduling structure touched at all. The horizon cannot go stale:
//     other threads' clocks only move while this thread is parked.
//
//   - Direct handoff: when a thread's clock catches up to the horizon it
//     parks itself in the scheduler heap, pops the new global minimum
//     thread, executes that thread's pending operation on the *current*
//     goroutine (handlers are goroutine-agnostic), and wakes it — one
//     channel handoff per op instead of the two an engine-in-the-middle
//     design pays.
//
// Both paths execute handlers in exactly the (clock, id) serialized order,
// and the body code between two of a thread's operations always runs
// immediately after the first operation's handler — identical to a
// centralized engine, so simulated results are unchanged to the bit.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Probe is a lock-free progress counter pair an observer can read while
// the engine runs. The engine adds each executed op's clock advance to
// Cycles and bumps Ops by one; both are plain atomic adds, so attaching a
// probe changes nothing about scheduling, clocks, or results — it is
// host-visible only, and one probe may be shared by many engines running
// concurrently (the adds commute).
//
// Cycles is cumulative *thread*-cycles: the sum of every thread's clock
// advances, across all machines feeding the probe. It is a throughput
// counter (cycles simulated), not any single machine's wall clock.
type Probe struct {
	cycles atomic.Uint64
	ops    atomic.Uint64
}

// Sample returns the current cumulative thread-cycles and op count. Safe
// from any goroutine.
func (p *Probe) Sample() (cycles, ops uint64) {
	return p.cycles.Load(), p.ops.Load()
}

// note records one executed op advancing a thread clock by adv.
func (p *Probe) note(adv uint64) {
	p.cycles.Add(adv)
	p.ops.Add(1)
}

// Op is a simulated operation posted by a thread. Concrete op types are
// defined by the machine layer; the engine treats them opaquely.
type Op interface{}

// LocalOp marks an op as thread-local: executing it reads and writes only
// state owned by the issuing thread (its clock, its store buffer, its
// private counters) and never shared simulator state. The PDES scheduler
// (see SetPDES) executes LocalOps concurrently on host threads inside an
// epoch window; everything else is serialized in exact (clock, id) order.
// Ops that do not implement LocalOp are global. The sequential scheduler
// ignores the marker entirely.
type LocalOp interface{ EngineLocal() }

// Handler executes op on behalf of t and returns how many cycles t's local
// clock advances. Handlers run while every other thread is parked and may
// freely mutate simulator state; the goroutine they run on varies (the
// issuing thread's on the inline path, the previous thread's on a handoff)
// but is always the only one running.
type Handler func(t *Thread, op Op) (advance uint64)

// Thread is one simulated hardware thread.
type Thread struct {
	id      int
	now     uint64
	eng     *Engine
	res     chan struct{}
	body    func(*Thread)
	pending Op // parked operation awaiting execution

	// Inline-execution lease: the smallest (clock, id) among all *other*
	// parked threads, refreshed by the scheduler before each wake. While
	// (now, id) precedes (horizonNow, horizonID) this thread is the one the
	// scheduler would pick, so Call runs the handler inline with no
	// handshake. The PDES serial drain reuses the same pair as its global
	// lease (see pdes.go).
	horizonNow uint64
	horizonID  int

	// PDES state (unused by the sequential scheduler). limit is the current
	// epoch horizon H: local ops execute only while now < limit. serial is
	// set while the thread holds the phase-2 drain lease, allowing global
	// ops to run inline under (horizonNow, horizonID).
	limit  uint64
	serial bool
}

// ID returns the hardware thread id (dense, starting at 0).
func (t *Thread) ID() int { return t.id }

// Now returns the thread's local clock in cycles.
func (t *Thread) Now() uint64 { return t.now }

// Call posts op and returns once it has executed (advancing the thread's
// clock by the handler's result). It must only be called from the thread's
// own body. While the thread holds the inline lease — its clock strictly
// precedes every other parked thread's — the handler runs immediately on
// this goroutine; otherwise the thread parks and hands control to the
// thread with the smallest clock.
func (t *Thread) Call(op Op) {
	e := t.eng
	if e.pdes != nil {
		t.callPDES(op)
		return
	}
	if (t.now < t.horizonNow || (t.now == t.horizonNow && t.id < t.horizonID)) &&
		(e.MaxCycles == 0 || t.now <= e.MaxCycles) {
		// This thread is the scheduler's next pick: executing inline is
		// bit-identical to parking and being rescheduled, minus the
		// handoff. (Past MaxCycles, fall through so the scheduler raises
		// ErrMaxCycles exactly as a centralized engine would.)
		adv := e.handler(t, op)
		t.now += adv
		if p := e.probe; p != nil {
			p.note(adv)
		}
		return
	}
	t.park(op)
}

// park is Call's slow path: enqueue op, run the scheduling step, transfer
// control, and wait to be rescheduled.
func (t *Thread) park(op Op) {
	e := t.eng
	t.pending = op
	e.heap.push(t)
	if !e.running {
		// Startup: Run drives scheduling; just report that this thread
		// reached its first operation.
		e.startc <- nil
		<-t.res
		return
	}
	u := e.schedule()
	if u == t {
		// Unreachable while the lease is granted eagerly (the lease
		// condition is the pick condition), but harmless: t's op already
		// executed, so just continue.
		return
	}
	if u != nil {
		u.res <- struct{}{}
	}
	// On a scheduler-raised error (u == nil) nobody ever wakes this
	// goroutine; it pins its stack until the process exits, exactly like
	// the parked threads a centralized engine abandons when Run errors.
	<-t.res
}

// Engine runs a set of threads to completion. Create with New.
type Engine struct {
	threads []*Thread
	handler Handler

	heap clockHeap

	running bool       // startup complete; threads schedule each other
	final   uint64     // maximum clock observed (the global clock)
	startc  chan any   // startup: thread parked/exited (nil) or panicked (value)
	donec   chan attic // terminal outcome for Run

	// MaxCycles aborts the run when every runnable thread's clock exceeds
	// it — a guard against deadlocked simulated programs. Zero means no
	// limit.
	MaxCycles uint64

	// probe, if set, receives per-op progress (see Probe). Nil costs one
	// predictable branch per op.
	probe *Probe

	// ran guards Run against double invocation (the channels and heap are
	// single-use; a second Run would silently corrupt them).
	ran bool

	// PDES scheduler state (nil selects the sequential scheduler).
	pdes       *PDESConfig
	pdesParked []*Thread    // threads parked during startup / between epochs
	parkc      chan pdesMsg // running threads report park/exit/panic here
	epochHook  func(EpochEvent)

	// Serial-drain state for the current epoch, owned by whichever
	// goroutine holds the drain baton: the one live serial thread, or the
	// coordinator when none is live (ownership passes through the parkc/
	// res handoffs, which also order the accesses). See wakeNextDrain.
	drainHeap clockHeap
	drainH    uint64
	procs     int // host procs available to this run (GOMAXPROCS at Run)
}

// SetProbe attaches a live progress probe. Call before Run; the probe may
// be shared across engines.
func (e *Engine) SetProbe(p *Probe) { e.probe = p }

// attic is the terminal state Run recovers from the last scheduling step.
type attic struct {
	final  uint64
	err    error
	panicv any
}

// ErrMaxCycles is returned by Run when the cycle guard trips.
var ErrMaxCycles = errors.New("engine: exceeded MaxCycles (simulated program deadlocked or runaway)")

// New creates an engine with n threads whose operations are executed by
// handler.
func New(n int, handler Handler) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: need at least one thread, got %d", n))
	}
	e := &Engine{handler: handler}
	for i := 0; i < n; i++ {
		e.threads = append(e.threads, &Thread{id: i, eng: e, res: make(chan struct{})})
	}
	return e
}

// Threads returns the number of hardware threads.
func (e *Engine) Threads() int { return len(e.threads) }

// SetBody sets the code thread id runs. Every thread must have a body
// before Run.
func (e *Engine) SetBody(id int, body func(*Thread)) {
	e.threads[id].body = body
}

// schedule pops the thread with the smallest (clock, id), executes its
// pending operation on the current goroutine, grants it a fresh inline
// lease, and returns it for the caller to wake. On a tripped cycle guard it
// reports the terminal outcome instead and returns nil.
func (e *Engine) schedule() *Thread {
	u := e.heap.pop()
	if e.MaxCycles > 0 && u.now > e.MaxCycles {
		e.donec <- attic{final: u.now, err: ErrMaxCycles}
		return nil
	}
	op := u.pending
	u.pending = nil
	adv := e.handler(u, op)
	u.now += adv
	if p := e.probe; p != nil {
		p.note(adv)
	}
	if u.now > e.final {
		e.final = u.now
	}
	if e.heap.len() > 0 {
		r := e.heap.a[0]
		u.horizonNow, u.horizonID = r.now, r.id
	} else {
		u.horizonNow, u.horizonID = ^uint64(0), int(^uint(0)>>1)
	}
	return u
}

// launch starts t's body on its own goroutine. The wrapper turns body
// completion into a scheduling step (or a startup/terminal notification)
// and forwards panics so they surface from Run instead of deadlocking.
func (e *Engine) launch(t *Thread) {
	go func() {
		defer func() {
			if e.pdes != nil && e.running {
				// PDES: the coordinator owns termination; report the exit
				// (or panic) and let it account the final clock.
				e.parkc <- pdesMsg{t: t, exited: true, panicv: recover()}
				return
			}
			if r := recover(); r != nil {
				if !e.running {
					e.startc <- r
				} else {
					e.donec <- attic{panicv: r}
				}
				return
			}
			if t.now > e.final {
				e.final = t.now
			}
			if !e.running {
				e.startc <- nil
				return
			}
			if e.heap.len() == 0 {
				// Last thread out reports the final clock.
				e.donec <- attic{final: e.final}
				return
			}
			if u := e.schedule(); u != nil {
				u.res <- struct{}{}
			}
		}()
		t.body(t)
	}()
}

// Run executes all thread bodies to completion and returns the final global
// clock (the maximum thread-local clock). It can only be called once:
// the scheduling channels and parked-thread structures are single-use, so
// a second call panics rather than silently corrupting them.
func (e *Engine) Run() (uint64, error) {
	if e.ran {
		panic("engine: Run called twice on the same Engine (create a new Engine per run)")
	}
	e.ran = true
	if e.pdes != nil {
		return e.runPDES()
	}
	e.heap.a = make([]*Thread, 0, len(e.threads))
	e.startc = make(chan any)
	e.donec = make(chan attic, 1)

	// Start threads one at a time; a freshly started thread runs until its
	// first op (or exit), so only one goroutine is ever live. The inline
	// lease stays revoked (horizon (0, -1)) until the full parked set is
	// known.
	for _, t := range e.threads {
		if t.body == nil {
			panic(fmt.Sprintf("engine: thread %d has no body", t.id))
		}
		t.horizonNow, t.horizonID = 0, -1
		e.launch(t)
		if v := <-e.startc; v != nil {
			panic(v)
		}
	}
	if e.heap.len() == 0 {
		return e.final, nil // every body exited without a single op
	}

	// Kick off decentralized scheduling: execute the first op here, wake
	// its thread, and wait for the last scheduling step to report back.
	e.running = true
	if u := e.schedule(); u != nil {
		u.res <- struct{}{}
	}
	out := <-e.donec
	if out.panicv != nil {
		panic(out.panicv)
	}
	return out.final, out.err
}

// clockHeap is a binary min-heap of parked threads ordered by (now, id) —
// the scheduler's pick order. Threads are only pushed when they park and
// popped when resumed, so no decrease-key is needed.
type clockHeap struct {
	a []*Thread
}

func clockLess(x, y *Thread) bool {
	return x.now < y.now || (x.now == y.now && x.id < y.id)
}

func (h *clockHeap) len() int { return len(h.a) }

func (h *clockHeap) push(t *Thread) {
	h.a = append(h.a, t)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !clockLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *clockHeap) pop() *Thread {
	root := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.a) {
			break
		}
		c := l
		if r < len(h.a) && clockLess(h.a[r], h.a[l]) {
			c = r
		}
		if !clockLess(h.a[c], h.a[i]) {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return root
}
