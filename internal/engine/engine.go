// Package engine is a deterministic, execution-driven multicore simulation
// engine. Each simulated hardware thread is a goroutine running real Go
// code (the HLPL runtime plus benchmark); whenever that code performs a
// simulated operation (load, store, compute, ...) the goroutine parks and
// the engine decides when — in simulated time — the operation happens.
//
// Determinism comes from two rules:
//
//  1. Exactly one goroutine (a thread body or the engine itself) runs at any
//     instant. The engine resumes a thread, then blocks until that thread
//     posts its next operation (or exits) before doing anything else.
//  2. Among parked threads, the engine always executes the operation of the
//     thread with the smallest local clock, breaking ties by thread id.
//
// Under these rules all simulator state is accessed single-threaded — no
// locks anywhere — and every run of the same program is bit-identical,
// which the test suite asserts.
package engine

import (
	"errors"
	"fmt"
)

// Op is a simulated operation posted by a thread. Concrete op types are
// defined by the machine layer; the engine treats them opaquely.
type Op interface{}

// Handler executes op on behalf of t and returns how many cycles t's local
// clock advances. Handlers run on the engine goroutine and may freely
// mutate simulator state.
type Handler func(t *Thread, op Op) (advance uint64)

// Thread is one simulated hardware thread.
type Thread struct {
	id   int
	now  uint64
	eng  *Engine
	res  chan struct{}
	body func(*Thread)
}

// ID returns the hardware thread id (dense, starting at 0).
func (t *Thread) ID() int { return t.id }

// Now returns the thread's local clock in cycles.
func (t *Thread) Now() uint64 { return t.now }

// Call posts op and blocks until the engine has executed it (advancing the
// thread's clock by the handler's result). It must only be called from the
// thread's own body.
func (t *Thread) Call(op Op) {
	t.eng.events <- event{t: t, op: op}
	<-t.res
}

type event struct {
	t  *Thread
	op Op // nil means the thread's body returned
}

// Engine runs a set of threads to completion. Create with New.
type Engine struct {
	threads []*Thread
	handler Handler
	events  chan event

	// MaxCycles aborts the run when every runnable thread's clock exceeds
	// it — a guard against deadlocked simulated programs. Zero means no
	// limit.
	MaxCycles uint64
}

// ErrMaxCycles is returned by Run when the cycle guard trips.
var ErrMaxCycles = errors.New("engine: exceeded MaxCycles (simulated program deadlocked or runaway)")

// New creates an engine with n threads whose operations are executed by
// handler.
func New(n int, handler Handler) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: need at least one thread, got %d", n))
	}
	e := &Engine{handler: handler, events: make(chan event)}
	for i := 0; i < n; i++ {
		e.threads = append(e.threads, &Thread{id: i, eng: e, res: make(chan struct{})})
	}
	return e
}

// Threads returns the number of hardware threads.
func (e *Engine) Threads() int { return len(e.threads) }

// SetBody sets the code thread id runs. Every thread must have a body
// before Run.
func (e *Engine) SetBody(id int, body func(*Thread)) {
	e.threads[id].body = body
}

// Run executes all thread bodies to completion and returns the final global
// clock (the maximum thread-local clock). It can only be called once.
func (e *Engine) Run() (uint64, error) {
	pending := make([]event, len(e.threads)) // indexed by thread id; op nil = none
	alive := 0

	start := func(t *Thread) {
		go func() {
			defer func() {
				// Even on panic, unblock the engine with an exit event so
				// the panic propagates instead of deadlocking. Re-panic on
				// the engine side is not possible; just forward the value.
				if r := recover(); r != nil {
					e.events <- event{t: t, op: panicOp{r}}
					return
				}
				e.events <- event{t: t, op: nil}
			}()
			t.body(t)
		}()
	}

	// Start threads one at a time; a freshly started thread runs until its
	// first op (or exit), so only one goroutine is ever live.
	for _, t := range e.threads {
		if t.body == nil {
			panic(fmt.Sprintf("engine: thread %d has no body", t.id))
		}
		start(t)
		ev := <-e.events
		if p, ok := ev.op.(panicOp); ok {
			panic(p.v)
		}
		if ev.op != nil {
			pending[ev.t.id] = ev
			alive++
		}
	}

	var final uint64
	for alive > 0 {
		// Pick the parked thread with the smallest clock (lowest id wins
		// ties).
		var next *Thread
		for i := range pending {
			if pending[i].op == nil {
				continue
			}
			t := pending[i].t
			if next == nil || t.now < next.now {
				next = t
			}
		}
		if e.MaxCycles > 0 && next.now > e.MaxCycles {
			return next.now, ErrMaxCycles
		}
		op := pending[next.id].op
		pending[next.id] = event{}
		alive--

		next.now += e.handler(next, op)
		if next.now > final {
			final = next.now
		}

		// Resume the thread and wait for its next event; nothing else runs
		// in the meantime.
		next.res <- struct{}{}
		ev := <-e.events
		if p, ok := ev.op.(panicOp); ok {
			panic(p.v)
		}
		if ev.op != nil {
			pending[ev.t.id] = ev
			alive++
		}
	}
	return final, nil
}

type panicOp struct{ v any }
