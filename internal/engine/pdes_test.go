package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// localOp is a LocalOp advancing the thread clock by its value.
type localOp uint64

func (localOp) EngineLocal() {}

// globalOp is a plain (global) op advancing the clock by its value.
type globalOp uint64

// pdesLogEntry is one executed op in serialized order.
type pdesLogEntry struct {
	tid  int
	when uint64
	val  uint64
}

// pdesHarness mimics the machine layer's buffering contract: global ops
// append to the shared log directly; local ops are buffered per thread and
// published by Flush in (cycle, tid) order up to the given bound.
type pdesHarness struct {
	mu  sync.Mutex // guards log against misuse; never contended if engine is correct
	log []pdesLogEntry
	buf [][]pdesLogEntry // per-thread local buffers
}

func (h *pdesHarness) global(t *Thread, op Op) uint64 {
	h.mu.Lock()
	h.log = append(h.log, pdesLogEntry{t.ID(), t.Now(), uint64(op.(globalOp))})
	h.mu.Unlock()
	return uint64(op.(globalOp))
}

func (h *pdesHarness) local(t *Thread, op Op) uint64 {
	v := uint64(op.(localOp))
	h.buf[t.ID()] = append(h.buf[t.ID()], pdesLogEntry{t.ID(), t.Now(), v})
	return v
}

func (h *pdesHarness) flush(maxCycle uint64, maxID int) {
	var ready []pdesLogEntry
	for tid := range h.buf {
		keep := h.buf[tid][:0]
		for _, e := range h.buf[tid] {
			if e.when < maxCycle || (e.when == maxCycle && e.tid <= maxID) {
				ready = append(ready, e)
			} else {
				keep = append(keep, e)
			}
		}
		h.buf[tid] = keep
	}
	sort.Slice(ready, func(i, j int) bool {
		a, b := ready[i], ready[j]
		return a.when < b.when || (a.when == b.when && a.tid < b.tid)
	})
	h.log = append(h.log, ready...)
}

// pdesProgram builds a deterministic per-thread op mix: a pseudo-random
// interleaving of local and global ops with varying advances.
func pdesProgram(threads, opsPer int) [][]Op {
	prog := make([][]Op, threads)
	for i := range prog {
		s := uint64(i*2654435761 + 12345)
		for k := 0; k < opsPer; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			adv := 1 + (s>>33)%9
			if (s>>62)&1 == 0 {
				prog[i] = append(prog[i], localOp(adv))
			} else {
				prog[i] = append(prog[i], globalOp(adv))
			}
		}
	}
	return prog
}

func runSequentialRef(prog [][]Op, maxCycles uint64) ([]pdesLogEntry, uint64, error) {
	var log []pdesLogEntry
	e := New(len(prog), func(t *Thread, op Op) uint64 {
		var v uint64
		switch o := op.(type) {
		case localOp:
			v = uint64(o)
		case globalOp:
			v = uint64(o)
		}
		log = append(log, pdesLogEntry{t.ID(), t.Now(), v})
		return v
	})
	e.MaxCycles = maxCycles
	for i, ops := range prog {
		ops := ops
		e.SetBody(i, func(t *Thread) {
			for _, op := range ops {
				t.Call(op)
			}
		})
	}
	final, err := e.Run()
	return log, final, err
}

func runPDESHarness(prog [][]Op, window, maxCycles uint64) ([]pdesLogEntry, uint64, error) {
	h := &pdesHarness{buf: make([][]pdesLogEntry, len(prog))}
	e := New(len(prog), h.global)
	e.MaxCycles = maxCycles
	e.SetPDES(PDESConfig{Window: window, Local: h.local, Flush: h.flush})
	for i, ops := range prog {
		ops := ops
		e.SetBody(i, func(t *Thread) {
			for _, op := range ops {
				t.Call(op)
			}
		})
	}
	final, err := e.Run()
	return h.log, final, err
}

// TestPDESMatchesSequential: the PDES scheduler must produce the exact
// serialized op history of the sequential scheduler — same ops, same
// clocks, same order — for a mixed local/global workload, at every window
// size. Run with -race: phase-1 concurrency is real.
func TestPDESMatchesSequential(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		prog := pdesProgram(threads, 200)
		want, wantFinal, err := runSequentialRef(prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []uint64{1, 3, 17, 99, 1 << 40} {
			t.Run(fmt.Sprintf("threads=%d/window=%d", threads, window), func(t *testing.T) {
				got, gotFinal, err := runPDESHarness(prog, window, 0)
				if err != nil {
					t.Fatal(err)
				}
				if gotFinal != wantFinal {
					t.Fatalf("final clock = %d, want %d", gotFinal, wantFinal)
				}
				if len(got) != len(want) {
					t.Fatalf("op count = %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("log diverged at %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestPDESMaxCycles: the cycle guard must trip under PDES with the same
// error, the same reported clock, and the same executed-op prefix as the
// sequential scheduler.
func TestPDESMaxCycles(t *testing.T) {
	prog := pdesProgram(4, 500)
	const limit = 600
	want, wantFinal, err := runSequentialRef(prog, limit)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("sequential err = %v, want ErrMaxCycles", err)
	}
	for _, window := range []uint64{1, 50, 10000} {
		got, gotFinal, err := runPDESHarness(prog, window, limit)
		if !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("window=%d: err = %v, want ErrMaxCycles", window, err)
		}
		if gotFinal != wantFinal {
			t.Fatalf("window=%d: final = %d, want %d", window, gotFinal, wantFinal)
		}
		if len(got) != len(want) {
			t.Fatalf("window=%d: op count = %d, want %d", window, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window=%d: log diverged at %d: got %+v, want %+v", window, i, got[i], want[i])
			}
		}
	}
}

// TestPDESPanicPropagates: a body panic in a parallel phase must surface
// from Run, and when several threads panic in one epoch the one the
// sequential engine would hit first (smallest clock) must win.
func TestPDESPanicPropagates(t *testing.T) {
	h := &pdesHarness{buf: make([][]pdesLogEntry, 3)}
	e := New(3, h.global)
	e.SetPDES(PDESConfig{Window: 1 << 30, Local: h.local, Flush: h.flush})
	// All three threads run locally inside one huge epoch; threads 1 and 2
	// panic, thread 1 at the smaller clock.
	e.SetBody(0, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Call(localOp(1))
		}
	})
	e.SetBody(1, func(th *Thread) {
		th.Call(localOp(5))
		panic("first")
	})
	e.SetBody(2, func(th *Thread) {
		th.Call(localOp(50))
		panic("second")
	})
	defer func() {
		if r := recover(); r != "first" {
			t.Fatalf("recovered %v, want first (smallest clock wins)", r)
		}
	}()
	e.Run()
	t.Fatal("Run returned despite body panic")
}

// TestPDESProbe: the probe must count every op (local and global) and the
// exact cycle sum, identical to the sequential engine.
func TestPDESProbe(t *testing.T) {
	prog := pdesProgram(4, 100)

	var seq Probe
	{
		e := New(len(prog), func(t *Thread, op Op) uint64 {
			switch o := op.(type) {
			case localOp:
				return uint64(o)
			default:
				return uint64(o.(globalOp))
			}
		})
		e.SetProbe(&seq)
		for i, ops := range prog {
			ops := ops
			e.SetBody(i, func(t *Thread) {
				for _, op := range ops {
					t.Call(op)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}

	var pd Probe
	{
		h := &pdesHarness{buf: make([][]pdesLogEntry, len(prog))}
		e := New(len(prog), h.global)
		e.SetProbe(&pd)
		e.SetPDES(PDESConfig{Window: 64, Local: h.local, Flush: h.flush})
		for i, ops := range prog {
			ops := ops
			e.SetBody(i, func(t *Thread) {
				for _, op := range ops {
					t.Call(op)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}

	sc, so := seq.Sample()
	pc, po := pd.Sample()
	if sc != pc || so != po {
		t.Fatalf("probe mismatch: sequential (%d cycles, %d ops), pdes (%d, %d)", sc, so, pc, po)
	}
}

// TestPDESBodyWithNoOps: op-less bodies must exit cleanly during startup
// under PDES, exactly as under the sequential scheduler.
func TestPDESBodyWithNoOps(t *testing.T) {
	h := &pdesHarness{buf: make([][]pdesLogEntry, 2)}
	e := New(2, h.global)
	e.SetPDES(PDESConfig{Window: 8, Local: h.local, Flush: h.flush})
	e.SetBody(0, func(th *Thread) {}) // exits immediately
	e.SetBody(1, func(th *Thread) { th.Call(globalOp(3)) })
	final, err := e.Run()
	if err != nil || final != 3 {
		t.Fatalf("final=%d err=%v", final, err)
	}
}

// TestRunTwicePanics: a second Run on the same Engine must panic loudly
// instead of silently corrupting scheduler state, under both schedulers.
func TestRunTwicePanics(t *testing.T) {
	for _, pdes := range []bool{false, true} {
		t.Run(fmt.Sprintf("pdes=%v", pdes), func(t *testing.T) {
			e := New(1, func(_ *Thread, op Op) uint64 { return 1 })
			if pdes {
				e.SetPDES(PDESConfig{Window: 4, Local: func(_ *Thread, op Op) uint64 { return 1 }})
			}
			e.SetBody(0, func(th *Thread) { th.Call(globalOp(1)) })
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("second Run did not panic")
				}
				if s, ok := r.(string); !ok || s == "" {
					t.Fatalf("second Run panicked with %v, want descriptive string", r)
				}
			}()
			e.Run()
		})
	}
}

// TestPDESExactlyOneGlobalRunning: global handlers and flushes must never
// run concurrently with each other — the serial drain is single-threaded.
// An unguarded counter bumped in the handler would trip -race otherwise,
// and the total must be exact.
func TestPDESExactlyOneGlobalRunning(t *testing.T) {
	shared := 0
	e := New(8, func(_ *Thread, op Op) uint64 {
		shared++ // unsynchronized on purpose: serial drain guarantees safety
		return 1
	})
	e.SetPDES(PDESConfig{Window: 16, Local: func(_ *Thread, op Op) uint64 { return 1 }})
	for i := 0; i < 8; i++ {
		e.SetBody(i, func(th *Thread) {
			for k := 0; k < 100; k++ {
				th.Call(localOp(1))
				th.Call(globalOp(1))
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if shared != 800 {
		t.Fatalf("shared = %d, want 800 (lost updates => serial-drain bug)", shared)
	}
}
