package engine

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkEngineOpOverhead measures the engine's per-operation host cost
// with a trivial handler. threads=1 exercises the inline-lease fast path
// (the thread owns an infinite horizon, so Call never parks); higher
// thread counts advance in lockstep, forcing a park/handoff on every
// operation — the slow path's upper bound.
func BenchmarkEngineOpOverhead(b *testing.B) {
	for _, threads := range []int{1, 4, 24} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			e := New(threads, func(t *Thread, op Op) uint64 { return 1 })
			per := b.N/threads + 1
			for id := 0; id < threads; id++ {
				e.SetBody(id, func(t *Thread) {
					for i := 0; i < per; i++ {
						t.Call(nil)
					}
				})
			}
			b.ResetTimer()
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(threads*per)/float64(b.N), "ops/iter")
		})
	}
}

// BenchmarkEngineSequentialVsPDES compares the two schedulers on a
// local-heavy workload (each thread runs long compute bursts between
// global synchronization points — the shape PDES targets), sweeping
// simulated thread counts × GOMAXPROCS. On a single-core host PDES can
// only lose (goroutine parking without parallelism); the interesting
// numbers come from GOMAXPROCS>1.
func BenchmarkEngineSequentialVsPDES(b *testing.B) {
	hostCPUs := runtime.NumCPU()
	procs := []int{1}
	if hostCPUs >= 4 {
		procs = append(procs, 4)
	} else if hostCPUs > 1 {
		procs = append(procs, hostCPUs)
	}
	build := func(threads int, pdes bool) *Engine {
		e := New(threads, func(t *Thread, op Op) uint64 { return 1 })
		if pdes {
			e.SetPDES(PDESConfig{
				Window: 256,
				Local:  func(t *Thread, op Op) uint64 { return uint64(op.(localOp)) },
			})
		}
		for id := 0; id < threads; id++ {
			e.SetBody(id, func(t *Thread) {
				for i := 0; i < 2000; i++ {
					for k := 0; k < 32; k++ { // local burst
						t.Call(localOp(4))
					}
					t.Call(globalOp(1)) // synchronization point
				}
			})
		}
		return e
	}
	for _, engine := range []string{"seq", "pdes"} {
		for _, threads := range []int{4, 16} {
			for _, p := range procs {
				name := fmt.Sprintf("engine=%s/threads=%d/gomaxprocs=%d", engine, threads, p)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(p)
					defer runtime.GOMAXPROCS(prev)
					ops := threads * 2000 * 33
					for i := 0; i < b.N; i++ {
						if _, err := build(threads, engine == "pdes").Run(); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(ops), "simops/iter")
				})
			}
		}
	}
}
