package engine

import (
	"fmt"
	"testing"
)

// BenchmarkEngineOpOverhead measures the engine's per-operation host cost
// with a trivial handler. threads=1 exercises the inline-lease fast path
// (the thread owns an infinite horizon, so Call never parks); higher
// thread counts advance in lockstep, forcing a park/handoff on every
// operation — the slow path's upper bound.
func BenchmarkEngineOpOverhead(b *testing.B) {
	for _, threads := range []int{1, 4, 24} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			e := New(threads, func(t *Thread, op Op) uint64 { return 1 })
			per := b.N/threads + 1
			for id := 0; id < threads; id++ {
				e.SetBody(id, func(t *Thread) {
					for i := 0; i < per; i++ {
						t.Call(nil)
					}
				})
			}
			b.ResetTimer()
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(threads*per)/float64(b.N), "ops/iter")
		})
	}
}
