package stats

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed histogram of uint64 samples (latency
// in cycles, sectors per flush, ...). Bucket 0 counts the value 0; bucket i
// (i >= 1) counts values in [2^(i-1), 2^i). The zero value is ready to use.
type Histogram struct {
	Buckets [65]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v)
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the arithmetic mean of the observed samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// exclusive upper edge of the bucket holding the q-th sample, clamped to the
// largest observed sample (which is also the exact answer whenever the
// bucket's edge would exceed it, including the overflow bucket for values
// >= 2^63, whose edge does not fit in a uint64).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return 0
			}
			if i >= 64 || uint64(1)<<uint(i) > h.Max {
				return h.Max
			}
			return uint64(1) << uint(i)
		}
	}
	return h.Max
}

// P50 returns the median upper bound.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Merge accumulates o into h. The merge is exact: power-of-two bucket edges
// are identical across histograms, so the merged histogram equals the one
// that would have observed both sample streams directly — Count, Sum, Max,
// and every quantile bound included. This is what lets the parallel runner
// aggregate per-shard latency histograms without widening error bars.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Render writes a deterministic textual view of the histogram: one line per
// non-empty bucket with a proportional bar, plus a summary line.
func (h *Histogram) Render(w io.Writer, indent string) {
	if h.Count == 0 {
		fmt.Fprintf(w, "%s(no samples)\n", indent)
		return
	}
	var peak uint64
	for _, n := range h.Buckets {
		if n > peak {
			peak = n
		}
	}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo = uint64(1) << uint(i-1)
			hi = uint64(1)<<uint(i) - 1
		}
		bar := strings.Repeat("#", int(1+n*39/peak))
		fmt.Fprintf(w, "%s[%8d..%8d] %10d %s\n", indent, lo, hi, n, bar)
	}
	fmt.Fprintf(w, "%ssamples=%d mean=%.1f p50<=%d p99<=%d max=%d\n",
		indent, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
}

// Distribution counts small non-negative integer samples exactly (sharer-set
// sizes, writers per reconcile). Samples beyond the last slot are clamped
// into it. The zero value is ready to use.
type Distribution struct {
	Counts [65]uint64
	N      uint64
}

// Observe records one sample.
func (d *Distribution) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(d.Counts) {
		v = len(d.Counts) - 1
	}
	d.Counts[v]++
	d.N++
}

// Mean returns the arithmetic mean of the observed samples.
func (d *Distribution) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	var sum uint64
	for v, n := range d.Counts {
		sum += uint64(v) * n
	}
	return float64(sum) / float64(d.N)
}

// Render writes one line per non-empty value with a proportional bar.
func (d *Distribution) Render(w io.Writer, indent string) {
	if d.N == 0 {
		fmt.Fprintf(w, "%s(no samples)\n", indent)
		return
	}
	var peak uint64
	for _, n := range d.Counts {
		if n > peak {
			peak = n
		}
	}
	for v, n := range d.Counts {
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", int(1+n*39/peak))
		fmt.Fprintf(w, "%s%4d %10d %s\n", indent, v, n, bar)
	}
	fmt.Fprintf(w, "%ssamples=%d mean=%.2f\n", indent, d.N, d.Mean())
}
