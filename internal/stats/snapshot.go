package stats

// Snapshot is the subset of Counters that event-stream consumers care about.
// The event layer in internal/core and internal/machine snapshots the
// counters around each instruction or coherence transaction and attaches the
// difference to the emitted Event, so sinks see exactly which cache
// accesses, coherence damage, and interconnect traffic each event caused
// without the hot path maintaining any per-event state of its own.
type Snapshot struct {
	L1Accesses, L1Hits uint64
	L2Accesses, L2Hits uint64
	L3Accesses, L3Hits uint64
	DirAccesses        uint64
	DRAMAccesses       uint64

	Invalidations uint64
	Downgrades    uint64

	Msgs             [NumMsgTypes]uint64
	NoCFlitHops      uint64
	IntersocketFlits uint64

	WardAccesses      uint64
	ReconciledBlocks  uint64
	ReconciledSectors uint64
}

// Snap captures the current values of the snapshot-tracked counters.
func (c *Counters) Snap() Snapshot {
	s := Snapshot{
		L1Accesses:        c.L1Accesses,
		L1Hits:            c.L1Hits,
		L2Accesses:        c.L2Accesses,
		L2Hits:            c.L2Hits,
		L3Accesses:        c.L3Accesses,
		L3Hits:            c.L3Hits,
		DirAccesses:       c.DirAccesses,
		DRAMAccesses:      c.DRAMAccesses,
		Invalidations:     c.Invalidations,
		Downgrades:        c.Downgrades,
		NoCFlitHops:       c.NoCFlitHops,
		IntersocketFlits:  c.IntersocketFlits,
		WardAccesses:      c.WardAccesses,
		ReconciledBlocks:  c.ReconciledBlocks,
		ReconciledSectors: c.ReconciledSectors,
	}
	s.Msgs = c.Msgs
	return s
}

// Sub returns the component-wise difference s - o. The counters only ever
// increase, so with o taken before s every field is a true event count.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{
		L1Accesses:        s.L1Accesses - o.L1Accesses,
		L1Hits:            s.L1Hits - o.L1Hits,
		L2Accesses:        s.L2Accesses - o.L2Accesses,
		L2Hits:            s.L2Hits - o.L2Hits,
		L3Accesses:        s.L3Accesses - o.L3Accesses,
		L3Hits:            s.L3Hits - o.L3Hits,
		DirAccesses:       s.DirAccesses - o.DirAccesses,
		DRAMAccesses:      s.DRAMAccesses - o.DRAMAccesses,
		Invalidations:     s.Invalidations - o.Invalidations,
		Downgrades:        s.Downgrades - o.Downgrades,
		NoCFlitHops:       s.NoCFlitHops - o.NoCFlitHops,
		IntersocketFlits:  s.IntersocketFlits - o.IntersocketFlits,
		WardAccesses:      s.WardAccesses - o.WardAccesses,
		ReconciledBlocks:  s.ReconciledBlocks - o.ReconciledBlocks,
		ReconciledSectors: s.ReconciledSectors - o.ReconciledSectors,
	}
	for i := range d.Msgs {
		d.Msgs[i] = s.Msgs[i] - o.Msgs[i]
	}
	return d
}

// TotalMsgs sums the snapshot's message counts across all types.
func (s Snapshot) TotalMsgs() uint64 {
	var n uint64
	for _, v := range s.Msgs {
		n += v
	}
	return n
}

// IsZero reports whether the snapshot records no activity at all.
func (s Snapshot) IsZero() bool { return s == Snapshot{} }
