// Package stats collects the architectural counters the evaluation needs:
// instruction and cycle counts (IPC, Fig. 11), invalidations and downgrades
// per cache (Figs. 9 and 10), coherence message and flit-hop counts (energy,
// Figs. 7b/8b/12b), and WARDen-specific events (region adds/removes,
// reconciliations).
package stats

import "fmt"

// MsgType enumerates the coherence messages of the directory MESI protocol
// (Nagarajan et al.) plus WARDen's region-management traffic.
type MsgType int

const (
	GetS MsgType = iota
	GetM
	PutS
	PutE
	PutM
	FwdGetS
	FwdGetM
	Inv
	InvAck
	Data    // data response carrying a block
	DataDir // writeback data to the directory/LLC
	RegionAdd
	RegionRemove
	ReconcileFlush // masked W-block flush during reconciliation
	numMsgTypes
)

// NumMsgTypes is the number of distinct message types.
const NumMsgTypes = int(numMsgTypes)

var msgNames = [...]string{
	"GetS", "GetM", "PutS", "PutE", "PutM", "Fwd-GetS", "Fwd-GetM",
	"Inv", "Inv-Ack", "Data", "Data-to-Dir", "Region-Add", "Region-Remove",
	"Reconcile-Flush",
}

// String returns the protocol name of the message type.
func (t MsgType) String() string {
	if t < 0 || int(t) >= NumMsgTypes {
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
	return msgNames[t]
}

// Carries reports whether the message carries a full data block (and thus
// occupies data-message flits on the interconnect).
func (t MsgType) Carries() bool {
	switch t {
	case Data, DataDir, ReconcileFlush:
		return true
	}
	return false
}

// Counters aggregates every event the evaluation consumes. The zero value is
// ready to use. Counters are single-threaded by construction: the simulation
// engine serializes all cores.
type Counters struct {
	// Instruction mix. Every load, store, and atomic counts as one
	// instruction; Compute(n) counts as n single-cycle instructions.
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Atomics      uint64

	// Cache accesses and hits by level, summed over all caches.
	L1Accesses, L1Hits uint64
	L2Accesses, L2Hits uint64
	L3Accesses, L3Hits uint64
	DirAccesses        uint64
	DRAMAccesses       uint64

	// Coherence damage, summed over all caches (per-cache splits live in
	// the cache objects themselves).
	Invalidations uint64
	Downgrades    uint64

	// Interconnect traffic.
	Msgs             [NumMsgTypes]uint64
	IntersocketMsgs  [NumMsgTypes]uint64
	NoCFlitHops      uint64
	IntersocketFlits uint64

	// WARDen events.
	WardAccesses      uint64 // loads/stores satisfied under the W state
	RegionAdds        uint64
	RegionRemoves     uint64
	RegionOverflows   uint64 // AddRegion rejected: table full (falls back to MESI)
	Reconciliations   uint64 // region removals that flushed at least one block
	ReconciledBlocks  uint64
	ReconciledSectors uint64
	TrueShareMerges   uint64 // reconciled blocks where write masks overlapped
	FalseShareMerges  uint64 // reconciled blocks with multiple disjoint writers

	// EntanglementViolations counts reads that observed a W-state block
	// whose read sectors another core had concurrently written — a
	// cross-thread RAW inside a WARD region, i.e. an entangled access
	// (only counted when detection is enabled; see
	// core.System.SetEntanglementDetection).
	EntanglementViolations uint64

	// Pipeline-ish events.
	StoreBufferStalls uint64
	FenceDrains       uint64

	// Cycle attribution: how much thread-clock advance each op class
	// caused (diagnostic; sums to total thread-cycles, not wall cycles).
	LoadCycles    uint64
	StoreCycles   uint64
	AtomicCycles  uint64
	ComputeCycles uint64
	RegionCycles  uint64
}

// Message records one protocol message of the given type travelling hops
// NoC hops, crossing a socket boundary iff crossed, and occupying flits
// link flits (1 for control messages; header plus payload for data).
func (c *Counters) Message(t MsgType, hops uint64, crossed bool, flits uint64) {
	c.Msgs[t]++
	c.NoCFlitHops += flits * hops
	if crossed {
		c.IntersocketMsgs[t]++
		c.IntersocketFlits += flits
	}
}

// TotalMsgs sums message counts across all types.
func (c *Counters) TotalMsgs() uint64 {
	var n uint64
	for _, v := range c.Msgs {
		n += v
	}
	return n
}

// InvDowngradesPerKiloInstr returns (invalidations+downgrades) per 1000
// instructions, the Fig. 9 metric.
func (c *Counters) InvDowngradesPerKiloInstr() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Invalidations+c.Downgrades) * 1000 / float64(c.Instructions)
}

// IPC returns instructions per cycle for the given total cycle count.
func (c *Counters) IPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(cycles)
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Atomics += o.Atomics
	c.L1Accesses += o.L1Accesses
	c.L1Hits += o.L1Hits
	c.L2Accesses += o.L2Accesses
	c.L2Hits += o.L2Hits
	c.L3Accesses += o.L3Accesses
	c.L3Hits += o.L3Hits
	c.DirAccesses += o.DirAccesses
	c.DRAMAccesses += o.DRAMAccesses
	c.Invalidations += o.Invalidations
	c.Downgrades += o.Downgrades
	for i := range c.Msgs {
		c.Msgs[i] += o.Msgs[i]
		c.IntersocketMsgs[i] += o.IntersocketMsgs[i]
	}
	c.NoCFlitHops += o.NoCFlitHops
	c.IntersocketFlits += o.IntersocketFlits
	c.WardAccesses += o.WardAccesses
	c.RegionAdds += o.RegionAdds
	c.RegionRemoves += o.RegionRemoves
	c.RegionOverflows += o.RegionOverflows
	c.Reconciliations += o.Reconciliations
	c.ReconciledBlocks += o.ReconciledBlocks
	c.ReconciledSectors += o.ReconciledSectors
	c.TrueShareMerges += o.TrueShareMerges
	c.FalseShareMerges += o.FalseShareMerges
	c.EntanglementViolations += o.EntanglementViolations
	c.StoreBufferStalls += o.StoreBufferStalls
	c.FenceDrains += o.FenceDrains
	c.LoadCycles += o.LoadCycles
	c.StoreCycles += o.StoreCycles
	c.AtomicCycles += o.AtomicCycles
	c.ComputeCycles += o.ComputeCycles
	c.RegionCycles += o.RegionCycles
}
