package stats

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		q       float64
		want    uint64
	}{
		{name: "empty", samples: nil, q: 0.5, want: 0},
		{name: "single zero", samples: []uint64{0}, q: 0.5, want: 0},
		{name: "single value clamps to max", samples: []uint64{100}, q: 0.5, want: 100},
		{name: "single bucket", samples: []uint64{64, 100, 127}, q: 0.99, want: 127},
		{name: "two buckets p50", samples: []uint64{1, 1, 1, 1000, 1000}, q: 0.5, want: 2},
		{name: "two buckets p99", samples: []uint64{1, 1, 1, 1000, 1000}, q: 0.99, want: 1000},
		{name: "q zero", samples: []uint64{5, 6, 7}, q: 0, want: 7},
		{name: "q one", samples: []uint64{5, 6, 900}, q: 1, want: 900},
		{name: "overflow bucket", samples: []uint64{1 << 63}, q: 0.5, want: 1 << 63},
		{name: "overflow bucket max", samples: []uint64{math.MaxUint64}, q: 0.99, want: math.MaxUint64},
		{name: "overflow among small", samples: []uint64{1, 2, 3, math.MaxUint64}, q: 1, want: math.MaxUint64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramAccessors(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Power-of-two buckets: the p50 bound is the bucket edge above sample
	// 500 (bucket [512,1024) -> 1000 after the max clamp... no: 500 lands in
	// bucket [256,512), edge 512).
	if got := h.P50(); got != 512 {
		t.Errorf("P50 = %d, want 512", got)
	}
	if got := h.P95(); got != 1000 {
		t.Errorf("P95 = %d, want 1000 (edge 1024 clamped to max)", got)
	}
	if got := h.P99(); got != 1000 {
		t.Errorf("P99 = %d, want 1000 (edge 1024 clamped to max)", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	cases := []struct {
		name string
		a, b []uint64
	}{
		{name: "both empty", a: nil, b: nil},
		{name: "empty into full", a: []uint64{1, 2, 3}, b: nil},
		{name: "full into empty", a: nil, b: []uint64{1, 2, 3}},
		{name: "single bucket each", a: []uint64{4, 5}, b: []uint64{6, 7}},
		{name: "disjoint ranges", a: []uint64{0, 1, 2}, b: []uint64{1 << 20, 1 << 30}},
		{name: "overflow bucket", a: []uint64{42}, b: []uint64{1 << 63, math.MaxUint64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ha, hb, want Histogram
			for _, v := range tc.a {
				ha.Observe(v)
				want.Observe(v)
			}
			for _, v := range tc.b {
				hb.Observe(v)
				want.Observe(v)
			}
			ha.Merge(&hb)
			if ha != want {
				t.Fatalf("merged histogram differs from direct observation:\nmerged: %+v\ndirect: %+v", ha, want)
			}
			// Exactness: every quantile of the merged histogram matches the
			// directly observed one.
			for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
				if got, exp := ha.Quantile(q), want.Quantile(q); got != exp {
					t.Errorf("Quantile(%v) = %d after merge, want %d", q, got, exp)
				}
			}
		})
	}
}
