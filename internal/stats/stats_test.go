package stats

import (
	"testing"
	"testing/quick"
)

func TestMsgTypeNames(t *testing.T) {
	for typ, want := range map[MsgType]string{
		GetS: "GetS", GetM: "GetM", FwdGetS: "Fwd-GetS", Inv: "Inv",
		Data: "Data", RegionAdd: "Region-Add", ReconcileFlush: "Reconcile-Flush",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if MsgType(99).String() == "" {
		t.Fatal("out-of-range type must still format")
	}
}

func TestCarries(t *testing.T) {
	for typ, want := range map[MsgType]bool{
		Data: true, DataDir: true, ReconcileFlush: true,
		GetS: false, Inv: false, PutM: false,
	} {
		if typ.Carries() != want {
			t.Errorf("%v.Carries() = %v, want %v", typ, typ.Carries(), want)
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	var c Counters
	c.Message(GetS, 3, false, 1)
	c.Message(Data, 3, true, 5)
	if c.Msgs[GetS] != 1 || c.Msgs[Data] != 1 {
		t.Fatal("message counts wrong")
	}
	if c.NoCFlitHops != 3+15 {
		t.Fatalf("flit-hops = %d, want 18", c.NoCFlitHops)
	}
	if c.IntersocketFlits != 5 || c.IntersocketMsgs[Data] != 1 || c.IntersocketMsgs[GetS] != 0 {
		t.Fatal("intersocket accounting wrong")
	}
	if c.TotalMsgs() != 2 {
		t.Fatalf("TotalMsgs = %d", c.TotalMsgs())
	}
}

func TestDerivedMetrics(t *testing.T) {
	c := Counters{Instructions: 2000, Invalidations: 30, Downgrades: 10}
	if got := c.InvDowngradesPerKiloInstr(); got != 20 {
		t.Fatalf("per-kilo = %v, want 20", got)
	}
	if got := c.IPC(1000); got != 2 {
		t.Fatalf("IPC = %v, want 2", got)
	}
	var zero Counters
	if zero.InvDowngradesPerKiloInstr() != 0 || zero.IPC(0) != 0 {
		t.Fatal("zero-division guards missing")
	}
}

func TestAddAccumulatesEverything(t *testing.T) {
	f := func(a, b uint16) bool {
		x := Counters{Instructions: uint64(a), Loads: uint64(a), Invalidations: uint64(a), NoCFlitHops: uint64(a), WardAccesses: uint64(a), LoadCycles: uint64(a)}
		x.Msgs[GetM] = uint64(a)
		y := Counters{Instructions: uint64(b), Loads: uint64(b), Invalidations: uint64(b), NoCFlitHops: uint64(b), WardAccesses: uint64(b), LoadCycles: uint64(b)}
		y.Msgs[GetM] = uint64(b)
		x.Add(&y)
		sum := uint64(a) + uint64(b)
		return x.Instructions == sum && x.Loads == sum && x.Invalidations == sum &&
			x.NoCFlitHops == sum && x.WardAccesses == sum && x.Msgs[GetM] == sum &&
			x.LoadCycles == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
