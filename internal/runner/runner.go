// Package runner fans independent, deterministic simulations out across
// host cores. It is deliberately simulator-agnostic: a Pool bounds host
// parallelism, Map runs an indexed job set with ordered aggregation, and
// Memo single-flights cache fills keyed by config fingerprints.
//
// Every simulation in this repository is bit-reproducible and shares no
// mutable state with its siblings, so running the (benchmark × protocol ×
// topology) matrix concurrently and then aggregating results in index
// order yields byte-identical reports to a sequential run — the bench
// tests assert this.
package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Pool bounds how many jobs run concurrently on the host. The zero value
// is unusable; create pools with New.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs at once. workers <= 0
// selects GOMAXPROCS (one job per host core). New(1) is the sequential
// pool: Map runs jobs in index order on the calling goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(0) … fn(n-1) on the pool and returns the results in index
// order. Job order of *execution* is unspecified beyond the sequential
// pool's; aggregation order is always 0..n-1, which is what makes
// parallel and sequential runs indistinguishable to callers. If any jobs
// fail, the error of the lowest failing index is returned (again so the
// outcome does not depend on scheduling).
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p.workers
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Memo is a concurrency-safe, single-flight memo cache. The first caller
// of a key computes the value while any concurrent callers of the same
// key block and then share the result (including an error). Values are
// cached forever — the cache's lifetime is the experiment process.
type Memo[V any] struct {
	mu     sync.Mutex
	m      map[string]*memoEntry[V]
	hits   uint64 // Do calls that found an existing entry (including in-flight)
	misses uint64 // Do calls that created the entry (one per key)
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached value for key, computing it with fn on first use.
func (c *Memo[V]) Do(key string, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &memoEntry[V]{}
		c.m[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// Len reports how many keys have been memoized (including in-flight ones).
func (c *Memo[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// MemoStats is a point-in-time view of a memo cache's effectiveness; the
// observability plane exports it as warden_memo_* counters.
type MemoStats struct {
	Hits    uint64 // lookups satisfied by an existing (possibly in-flight) entry
	Misses  uint64 // lookups that had to compute, one per distinct key
	Entries int    // distinct keys memoized
}

// Stats reports the cache's hit/miss counts and entry count.
func (c *Memo[V]) Stats() MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoStats{Hits: c.hits, Misses: c.misses, Entries: len(c.m)}
}

// Fingerprint renders parts into a stable cache key. Structs are rendered
// with their field names ("%+v"), so two configs differing in any field —
// not just their Name — fingerprint differently. It is a key, not a hash:
// collisions require equal renderings.
func Fingerprint(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%+v", p)
	}
	return b.String()
}
