package runner

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestArtifactsDeterministicOrder(t *testing.T) {
	var a Artifacts
	// Register from a parallel Map in whatever order the pool schedules.
	_, err := Map(New(4), 20, func(i int) (struct{}, error) {
		a.Add(fmt.Sprintf("results/run_%02d.csv", 19-i))
		a.Add(fmt.Sprintf("results/run_%02d.csv", 19-i)) // duplicate is a no-op
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (duplicates must collapse)", a.Len())
	}
	want := make([]string, 20)
	for i := range want {
		want[i] = fmt.Sprintf("results/run_%02d.csv", i)
	}
	if got := a.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths() not sorted:\ngot:  %v\nwant: %v", got, want)
	}
	// Paths returns a copy: mutating it must not corrupt the registry.
	a.Paths()[0] = "mutated"
	if got := a.Paths()[0]; got != "results/run_00.csv" {
		t.Fatalf("registry corrupted by caller mutation: %q", got)
	}
}

// TestArtifactsConcurrentRegistration hammers Add from many goroutines —
// including duplicate and root-relative registrations — and checks the
// listing is complete, duplicate-free, and deterministic. Runs under -race
// in CI.
func TestArtifactsConcurrentRegistration(t *testing.T) {
	var a Artifacts
	a.SetRoot("/work/results")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Every worker registers the same file set; only one copy
				// of each may survive.
				got := a.Add(fmt.Sprintf("/work/results/telemetry/run_%03d.csv", i))
				if want := fmt.Sprintf("telemetry/run_%03d.csv", i); got != want {
					t.Errorf("worker %d: Add returned %q, want %q", w, got, want)
					return
				}
				_ = a.Len() // concurrent reads must be safe
			}
		}()
	}
	wg.Wait()
	if a.Len() != per {
		t.Fatalf("Len = %d, want %d", a.Len(), per)
	}
	paths := a.Paths()
	for i, p := range paths {
		if want := fmt.Sprintf("telemetry/run_%03d.csv", i); p != want {
			t.Fatalf("paths[%d] = %q, want %q", i, p, want)
		}
	}
}

// TestArtifactsRelativePaths: with a root set, inside paths relativize and
// outside paths stay as given.
func TestArtifactsRelativePaths(t *testing.T) {
	var a Artifacts
	a.SetRoot("/work/results")
	if got := a.Add("/work/results/traces/x.trace.json"); got != "traces/x.trace.json" {
		t.Fatalf("inside path stored as %q", got)
	}
	if got := a.Add("/elsewhere/y.csv"); got != "/elsewhere/y.csv" {
		t.Fatalf("outside path stored as %q", got)
	}
	if got := a.Add("already/relative.csv"); got != "already/relative.csv" {
		t.Fatalf("relative path stored as %q", got)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}
