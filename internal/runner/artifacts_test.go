package runner

import (
	"fmt"
	"reflect"
	"testing"
)

func TestArtifactsDeterministicOrder(t *testing.T) {
	var a Artifacts
	// Register from a parallel Map in whatever order the pool schedules.
	_, err := Map(New(4), 20, func(i int) (struct{}, error) {
		a.Add(fmt.Sprintf("results/run_%02d.csv", 19-i))
		a.Add(fmt.Sprintf("results/run_%02d.csv", 19-i)) // duplicate is a no-op
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (duplicates must collapse)", a.Len())
	}
	want := make([]string, 20)
	for i := range want {
		want[i] = fmt.Sprintf("results/run_%02d.csv", i)
	}
	if got := a.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths() not sorted:\ngot:  %v\nwant: %v", got, want)
	}
	// Paths returns a copy: mutating it must not corrupt the registry.
	a.Paths()[0] = "mutated"
	if got := a.Paths()[0]; got != "results/run_00.csv" {
		t.Fatalf("registry corrupted by caller mutation: %q", got)
	}
}
