package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		p := New(workers)
		got, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	p := New(8)
	for trial := 0; trial < 10; trial++ {
		_, err := Map(p, 50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: err = %v, want job 3's error", trial, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	p := New(3)
	var live, peak atomic.Int64
	_, err := Map(p, 64, func(i int) (int, error) {
		n := live.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		defer live.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs, pool bound is 3", got)
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	out, err := Map(New(4), 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[int]
	var fills atomic.Int64
	p := New(8)
	got, err := Map(p, 32, func(i int) (int, error) {
		return m.Do(fmt.Sprintf("key%d", i%4), func() (int, error) {
			fills.Add(1)
			return i % 4, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i%4 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i%4)
		}
	}
	if fills.Load() != 4 {
		t.Fatalf("fn ran %d times for 4 distinct keys", fills.Load())
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int]
	calls := 0
	fail := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := m.Do("k", func() (int, error) { calls++; return 0, fail })
		if err != fail {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("error was not cached: %d calls", calls)
	}
}

func TestFingerprintSeesAllFields(t *testing.T) {
	type cfg struct {
		Name string
		Cap  int
	}
	a := Fingerprint(cfg{"x", 8}, "MESI")
	b := Fingerprint(cfg{"x", 16}, "MESI")
	if a == b {
		t.Fatal("fingerprint ignored a non-Name field")
	}
	if a != Fingerprint(cfg{"x", 8}, "MESI") {
		t.Fatal("fingerprint is not stable")
	}
}

// TestMemoStats: one miss per distinct key, hits for every repeat —
// including concurrent callers coalesced by single-flight.
func TestMemoStats(t *testing.T) {
	var m Memo[int]
	if s := m.Stats(); s != (MemoStats{}) {
		t.Fatalf("fresh stats = %+v", s)
	}
	const callers = 16
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				time.Sleep(5 * time.Millisecond) // widen the single-flight window
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Misses != 1 || s.Hits != callers-1 || s.Entries != 1 {
		t.Fatalf("stats after coalesced fill = %+v", s)
	}
	if _, err := m.Do("k2", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do("k", func() (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	s = m.Stats()
	if s.Misses != 2 || s.Hits != callers || s.Entries != 2 {
		t.Fatalf("final stats = %+v", s)
	}
}
