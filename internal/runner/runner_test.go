package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		p := New(workers)
		got, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	p := New(8)
	for trial := 0; trial < 10; trial++ {
		_, err := Map(p, 50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: err = %v, want job 3's error", trial, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	p := New(3)
	var live, peak atomic.Int64
	_, err := Map(p, 64, func(i int) (int, error) {
		n := live.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		defer live.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs, pool bound is 3", got)
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	out, err := Map(New(4), 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[int]
	var fills atomic.Int64
	p := New(8)
	got, err := Map(p, 32, func(i int) (int, error) {
		return m.Do(fmt.Sprintf("key%d", i%4), func() (int, error) {
			fills.Add(1)
			return i % 4, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i%4 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i%4)
		}
	}
	if fills.Load() != 4 {
		t.Fatalf("fn ran %d times for 4 distinct keys", fills.Load())
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int]
	calls := 0
	fail := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := m.Do("k", func() (int, error) { calls++; return 0, fail })
		if err != fail {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("error was not cached: %d calls", calls)
	}
}

func TestFingerprintSeesAllFields(t *testing.T) {
	type cfg struct {
		Name string
		Cap  int
	}
	a := Fingerprint(cfg{"x", 8}, "MESI")
	b := Fingerprint(cfg{"x", 16}, "MESI")
	if a == b {
		t.Fatal("fingerprint ignored a non-Name field")
	}
	if a != Fingerprint(cfg{"x", 8}, "MESI") {
		t.Fatal("fingerprint is not stable")
	}
}
