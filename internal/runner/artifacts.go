package runner

import (
	"sort"
	"sync"
)

// Artifacts is a concurrency-safe registry of files an experiment run
// produced (telemetry dumps, traces, reports). Jobs running on a Pool
// register paths as they write them; reporting code reads them back in a
// deterministic order at the end, so artifact listings — like every other
// report — do not depend on host scheduling.
type Artifacts struct {
	mu    sync.Mutex
	paths []string
	seen  map[string]bool
}

// Add registers a produced file. Duplicate paths are ignored (a memoized
// simulation may be requested by several experiments but writes its
// artifacts once).
func (a *Artifacts) Add(path string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}
	if a.seen[path] {
		return
	}
	a.seen[path] = true
	a.paths = append(a.paths, path)
}

// Len reports how many distinct paths are registered.
func (a *Artifacts) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.paths)
}

// Paths returns the registered paths sorted lexically — insertion order
// varies with pool scheduling, so the sorted view is the deterministic one.
func (a *Artifacts) Paths() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.paths))
	copy(out, a.paths)
	sort.Strings(out)
	return out
}
