package runner

import (
	"path/filepath"
	"sort"
	"sync"
)

// Artifacts is a concurrency-safe registry of files an experiment run
// produced (telemetry dumps, traces, reports). Jobs running on a Pool
// register paths as they write them; reporting code reads them back in a
// deterministic order at the end, so artifact listings — like every other
// report — do not depend on host scheduling.
//
// With a root set (SetRoot), registered paths are stored relative to it:
// the stable form the observability server publishes via /runs/{id}, so
// listings survive the artifact tree being moved or served from another
// host.
type Artifacts struct {
	mu    sync.Mutex
	root  string
	paths []string
	seen  map[string]bool
}

// SetRoot makes subsequently added paths relative to dir when possible
// (paths outside dir, or on another volume, are kept as given). Call
// before registration starts; changing the root mid-run would split the
// namespace.
func (a *Artifacts) SetRoot(dir string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.root = dir
}

// Add registers a produced file and returns the stored (possibly
// root-relative) form. Duplicate paths are ignored (a memoized simulation
// may be requested by several experiments but writes its artifacts once).
func (a *Artifacts) Add(path string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	stored := path
	if a.root != "" {
		if rel, err := filepath.Rel(a.root, path); err == nil && filepath.IsLocal(rel) {
			stored = filepath.ToSlash(rel)
		}
	}
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}
	if a.seen[stored] {
		return stored
	}
	a.seen[stored] = true
	a.paths = append(a.paths, stored)
	return stored
}

// Len reports how many distinct paths are registered.
func (a *Artifacts) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.paths)
}

// Paths returns the registered paths sorted lexically — insertion order
// varies with pool scheduling, so the sorted view is the deterministic one.
func (a *Artifacts) Paths() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.paths))
	copy(out, a.paths)
	sort.Strings(out)
	return out
}
