package protocols_test

import (
	"testing"

	"warden/internal/core"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"

	_ "warden/internal/protocols"
)

// Tiny direct-mapped machine: 4 cores, 4-line L1 and 8-line L2, so a
// five-address working set overflows both private levels and every
// protocol's eviction paths run constantly.
func sweepSystem(p core.Protocol) (*core.System, *mem.Memory) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	cfg.L1Size = 4 * 64
	cfg.L1Assoc = 1
	cfg.L2Size = 8 * 64
	cfg.L2Assoc = 1
	m := mem.New(0)
	return core.NewSystem(cfg, p, m, &stats.Counters{}), m
}

// conflictStride maps two addresses to the same set of the 8-set L2.
const conflictStride = 8 * 64

// TestRegistrySweep drives every registered protocol — whatever is
// linked, with no per-protocol case — through a deterministic mixed
// workload (reads, writes, fetch-adds, sync points, region open/close,
// capacity evictions) with the whole-system invariant sweep after every
// step. Each word has a single writer core, so after DrainAll the
// canonical memory must hold the last value written regardless of the
// protocol's write-propagation policy (eager invalidation, ward
// reconciliation, or self-downgrade).
func TestRegistrySweep(t *testing.T) {
	if len(core.All()) < 4 {
		t.Fatalf("registry has %d protocols, want at least mesi/moesi/warden/sisd", len(core.All()))
	}
	for _, p := range core.All() {
		t.Run(p.String(), func(t *testing.T) {
			s, m := sweepSystem(p)
			base := m.Alloc(4096, mem.PageSize)
			addrs := []mem.Addr{
				base, base + 64,
				base + conflictStride, base + conflictStride + 64,
				base + 2*conflictStride,
			}
			writer := func(i int) int { return i % s.Config().Cores() }

			last := make([]uint64, len(addrs))
			rng := uint64(0x9e3779b97f4a7c15)
			next := func(n uint64) uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return (rng >> 33) % n
			}

			var openRegion core.RegionID
			regionOpen := false
			for step := 0; step < 1500; step++ {
				i := int(next(uint64(len(addrs))))
				a := addrs[i]
				c := writer(i)
				switch next(10) {
				case 0, 1, 2, 3:
					var buf [8]byte
					s.Read(int(next(uint64(s.Config().Cores()))), a, buf[:])
				case 4, 5, 6:
					v := rng
					var buf [8]byte
					for b := 0; b < 8; b++ {
						buf[b] = byte(v >> (8 * b))
					}
					s.Write(c, a, buf[:])
					last[i] = v
				case 7:
					old, _ := s.RMW(c, a, 8, func(o uint64) uint64 { return o + 3 })
					last[i] = old + 3
				case 8:
					s.SyncPoint(int(next(uint64(s.Config().Cores()))))
				case 9:
					if !regionOpen {
						if id, _, ok := s.AddRegion(0, base, base+conflictStride); ok {
							openRegion, regionOpen = id, true
						}
					} else {
						s.RemoveRegion(0, openRegion)
						regionOpen = false
					}
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if regionOpen {
				s.RemoveRegion(0, openRegion)
			}
			s.DrainAll()
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after drain: %v", err)
			}
			for i, a := range addrs {
				if got := m.ReadUint(a, 8); got != last[i] {
					t.Errorf("addr %#x drains to %#x, want %#x", a, got, last[i])
				}
			}
		})
	}
}

// TestRegistryEvictionStates pins the eviction sweep: every registered
// protocol must keep its directory consistent while each private cache
// state (fresh fill, silently upgraded dirty line, shared copy) is
// pushed out by direct-mapped conflicts.
func TestRegistryEvictionStates(t *testing.T) {
	for _, p := range core.All() {
		t.Run(p.String(), func(t *testing.T) {
			s, m := sweepSystem(p)
			base := m.Alloc(4096, mem.PageSize)
			a, b, c := base, base+conflictStride, base+2*conflictStride
			one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
			var buf [8]byte

			// Clean exclusive fill, then conflict-evict it.
			s.Read(0, a, buf[:])
			s.Read(0, b, buf[:])
			s.Read(0, c, buf[:])
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("clean evictions: %v", err)
			}

			// Dirty line, then conflict-evict it.
			s.Write(1, a, one)
			s.Read(1, b, buf[:])
			s.Read(1, c, buf[:])
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("dirty eviction: %v", err)
			}

			// Shared in two cores, evicted from one of them.
			s.Read(2, a, buf[:])
			s.Read(3, a, buf[:])
			s.Read(2, b, buf[:])
			s.Read(2, c, buf[:])
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shared eviction: %v", err)
			}

			s.DrainAll()
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after drain: %v", err)
			}
			if got := m.ReadUint(a, 8); got != 1 {
				t.Errorf("addr %#x drains to %#x, want 1", a, got)
			}
		})
	}
}
