// Package protocols links every protocol implementation into the binary
// that imports it and provides the shared -protocol flag parser used by
// all the command-line tools. A CLI that imports this package (even
// blank) can resolve every registered protocol by name; the parser's
// error messages enumerate the live registry, so they stay correct as
// protocol packages come and go.
package protocols

import (
	"fmt"
	"strings"

	"warden/internal/core"

	// Out-of-core protocol families register themselves on import.
	_ "warden/internal/sisd"
)

// Usage is the canonical help text for a -protocol flag.
func Usage() string {
	return fmt.Sprintf("protocol: %s, a comma-separated list, or all (alias: both)",
		strings.ToLower(strings.Join(core.Names(), "|")))
}

// Parse resolves a -protocol flag value: a registered name
// (case-insensitive), a comma-separated list of names, or "all"/"both"
// for every registered protocol. The error lists the registered names;
// CLIs report it and exit 2 (a usage error).
func Parse(s string) ([]core.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return nil, fmt.Errorf("no protocol given (registered: %s; also: all, both)", registered())
	case "all", "both":
		return core.All(), nil
	}
	var out []core.Protocol
	for _, name := range strings.Split(s, ",") {
		p, ok := core.Lookup(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (registered: %s; also: all, both)",
				strings.TrimSpace(name), registered())
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseOne resolves a single registered protocol name.
func ParseOne(s string) (core.Protocol, error) {
	p, ok := core.Lookup(strings.TrimSpace(s))
	if !ok {
		return 0, fmt.Errorf("unknown protocol %q (registered: %s)", strings.TrimSpace(s), registered())
	}
	return p, nil
}

// ParsePair resolves a "subject:baseline" pair of registered protocol
// names (e.g. "sisd:mesi"), as taken by differential modes.
func ParsePair(s string) (subject, baseline core.Protocol, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want a protocol pair %q (registered: %s)", "subject:baseline", registered())
	}
	if subject, err = ParseOne(a); err != nil {
		return 0, 0, err
	}
	if baseline, err = ParseOne(b); err != nil {
		return 0, 0, err
	}
	return subject, baseline, nil
}

func registered() string {
	return strings.ToLower(strings.Join(core.Names(), ", "))
}
