package protocols_test

import (
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/protocols"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"mesi", []string{"MESI"}},
		{"WARDen", []string{"WARDen"}},
		{"MOESI", []string{"MOESI"}},
		{"sisd", []string{"SiSd"}},
		{"mesi,warden", []string{"MESI", "WARDen"}},
		{" mesi , sisd ", []string{"MESI", "SiSd"}},
		{"all", []string{"MESI", "WARDen", "MOESI", "SiSd"}},
		{"both", []string{"MESI", "WARDen", "MOESI", "SiSd"}},
	} {
		got, err := protocols.Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		var names []string
		for _, p := range got {
			names = append(names, p.String())
		}
		if strings.Join(names, ",") != strings.Join(tc.want, ",") {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, names, tc.want)
		}
	}
}

func TestParseErrorsListRegistry(t *testing.T) {
	for _, in := range []string{"", "mosi", "mesi,bogus"} {
		_, err := protocols.Parse(in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
			continue
		}
		for _, name := range []string{"mesi", "moesi", "warden", "sisd"} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("Parse(%q) error %q does not list %q", in, err, name)
			}
		}
	}
}

func TestParsePair(t *testing.T) {
	sub, base, err := protocols.ParsePair("sisd:mesi")
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "SiSd" || base.String() != "MESI" {
		t.Fatalf("ParsePair(sisd:mesi) = %v, %v", sub, base)
	}
	for _, in := range []string{"sisd", "sisd:", ":mesi", "sisd:nope"} {
		if _, _, err := protocols.ParsePair(in); err == nil {
			t.Errorf("ParsePair(%q) succeeded, want error", in)
		}
	}
}

func TestUsageListsEveryRegisteredName(t *testing.T) {
	u := protocols.Usage()
	for _, name := range core.Names() {
		if !strings.Contains(strings.ToLower(u), strings.ToLower(name)) {
			t.Errorf("Usage() %q does not mention %q", u, name)
		}
	}
}
