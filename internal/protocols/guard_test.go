package protocols_test

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// The registry contract (DESIGN.md §11): protocol sets come from the
// registry (core.All, core.Protocols) and behaviour differences live
// behind ProtocolImpl, so adding a protocol never means editing a
// hand-enumerated list. These patterns catch the two ways that contract
// erodes — literal protocol slices and enum comparisons — anywhere
// outside internal/core, which owns the registry itself.
var banned = []*regexp.Regexp{
	// No whitespace before the brace: a gofmt'd composite literal abuts
	// it, while a space after the type is a function body following a
	// slice return type (fine — that is registry use).
	regexp.MustCompile(`\[\]core\.Protocol\{`),
	regexp.MustCompile(`[=!]=\s*core\.(MESI|MOESI|WARDen)\b`),
}

// TestNoProtocolLiteralsOutsideRegistry walks every .go file in the
// module and fails on a banned pattern outside internal/core.
func TestNoProtocolLiteralsOutsideRegistry(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	root := filepath.Clean(filepath.Join(filepath.Dir(self), "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || path == filepath.Join(root, "internal", "core") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, re := range banned {
				if re.MatchString(line) {
					rel, _ := filepath.Rel(root, path)
					t.Errorf("%s:%d: %q matches %s — use the core registry (core.All, core.Protocols) instead",
						rel, i+1, strings.TrimSpace(line), re)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
