// Package cache models set-associative cache tag arrays with LRU
// replacement, per-block coherence state, and byte-sectored write masks.
//
// The package is mechanism only: it answers "is this block here, in what
// state, and what gets evicted if I insert" while the coherence protocol
// (internal/coherence, internal/core) decides what those events mean. Block
// *data* is not stored here — canonical data lives in internal/mem, and
// WARD-state private copies live in the protocol layer — so the tag arrays
// stay cheap even for large simulated footprints.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"warden/internal/mem"
)

// State is a coherence state as tracked by a cache line or directory entry.
// It covers the classic MESI states (Nagarajan et al.) plus the WARD state W
// introduced by the WARDen protocol (§5.1 of the paper).
type State uint8

const (
	// Invalid: the block is not present (or present but unusable).
	Invalid State = iota
	// Shared: read-only copy; other caches may also hold copies.
	Shared
	// Owned: dirty but shared — this cache sources the data for readers
	// instead of writing it back (the MOESI baseline's O state).
	Owned
	// Exclusive: the only copy, clean.
	Exclusive
	// Modified: the only copy, dirty.
	Modified
	// Ward: coherence is disabled for this block; the holder may read and
	// write a private copy without notifying anyone until reconciliation.
	Ward
)

// String returns the conventional one-letter name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Ward:
		return "W"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// SectorMask records which sectors of a block have been written while the
// block was in the WARD state. With byte sectoring on 64-byte blocks (§6.1)
// each bit covers one byte.
type SectorMask uint64

// Set marks sectors [lo, lo+n) as written.
func (m SectorMask) Set(lo, n uint) SectorMask {
	if n >= 64 {
		return ^SectorMask(0)
	}
	return m | SectorMask((uint64(1)<<n)-1)<<lo
}

// Has reports whether sector i is marked written.
func (m SectorMask) Has(i uint) bool { return m&(1<<i) != 0 }

// Count returns the number of written sectors.
func (m SectorMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Overlaps reports whether two masks mark any common sector.
func (m SectorMask) Overlaps(o SectorMask) bool { return m&o != 0 }

// Line is one cache line's metadata. (W-state write masks live with the
// private block copies in internal/core, not in the tag array.)
type Line struct {
	Addr  mem.Addr // block-aligned address; meaningful only when State != Invalid
	State State
	lru   uint64
}

// Eviction describes a block displaced by an insertion.
type Eviction struct {
	Addr  mem.Addr
	State State
}

// Cache is a set-associative tag array. Create with New.
type Cache struct {
	name      string
	blockSize uint64
	numSets   uint64
	assoc     int
	sets      []Line // numSets * assoc, row-major
	tick      uint64 // global LRU clock

	// Counters maintained for the evaluation (Figs. 9 and 10 count
	// invalidations and downgrades per cache).
	Invalidations uint64
	Downgrades    uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
}

// New returns a cache with the given total size, associativity and block
// size. size must be divisible by assoc*blockSize and the resulting set
// count must be a power of two.
func New(name string, size uint64, assoc int, blockSize uint64) *Cache {
	if assoc <= 0 || blockSize == 0 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry assoc=%d block=%d", name, assoc, blockSize))
	}
	if size%(uint64(assoc)*blockSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by assoc*block", name, size))
	}
	numSets := size / (uint64(assoc) * blockSize)
	if numSets&(numSets-1) != 0 {
		// Round down to a power of two; exotic set counts (e.g. 20-way LLC
		// slices) still work, just with a power-of-two index.
		numSets = uint64(1) << (bits.Len64(numSets) - 1)
	}
	return &Cache{
		name:      name,
		blockSize: blockSize,
		numSets:   numSets,
		assoc:     assoc,
		sets:      make([]Line, numSets*uint64(assoc)),
	}
}

// Name returns the cache's diagnostic name (e.g. "L1-3").
func (c *Cache) Name() string { return c.name }

// BlockSize returns the cache's block size in bytes.
func (c *Cache) BlockSize() uint64 { return c.blockSize }

func (c *Cache) setOf(addr mem.Addr) []Line {
	idx := (uint64(addr) / c.blockSize) & (c.numSets - 1)
	return c.sets[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)]
}

// Lookup finds the line holding addr's block. It returns nil if the block is
// not present in a valid state. The LRU clock is touched on hit.
func (c *Cache) Lookup(addr mem.Addr) *Line {
	block := addr.Block(c.blockSize)
	set := c.setOf(block)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == block {
			c.tick++
			set[i].lru = c.tick
			return &set[i]
		}
	}
	return nil
}

// Peek is Lookup without touching LRU state or counters; for assertions and
// protocol bookkeeping.
func (c *Cache) Peek(addr mem.Addr) *Line {
	block := addr.Block(c.blockSize)
	set := c.setOf(block)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == block {
			return &set[i]
		}
	}
	return nil
}

// Insert places addr's block in the cache with the given state, evicting the
// LRU valid line of the set if it is full. It returns the eviction (if any)
// so the protocol can write back or reconcile the victim. Inserting a block
// that is already present just updates its state.
func (c *Cache) Insert(addr mem.Addr, st State) (Eviction, bool) {
	block := addr.Block(c.blockSize)
	if ln := c.Lookup(block); ln != nil {
		ln.State = st
		return Eviction{}, false
	}
	set := c.setOf(block)
	victim := -1
	for i := range set {
		if set[i].State == Invalid {
			victim = i
			break
		}
	}
	var ev Eviction
	evicted := false
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		ev = Eviction{Addr: set[victim].Addr, State: set[victim].State}
		evicted = true
		c.Evictions++
	}
	c.tick++
	set[victim] = Line{Addr: block, State: st, lru: c.tick}
	return ev, evicted
}

// Invalidate removes addr's block, returning its prior state. The caller
// decides whether this counts as a coherence invalidation (counted via
// CountInvalidation) or a silent drop.
func (c *Cache) Invalidate(addr mem.Addr) State {
	block := addr.Block(c.blockSize)
	set := c.setOf(block)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == block {
			st := set[i].State
			set[i] = Line{}
			return st
		}
	}
	return Invalid
}

// CountInvalidation records a coherence-driven invalidation at this cache.
func (c *Cache) CountInvalidation() { c.Invalidations++ }

// CountDowngrade records a coherence-driven downgrade (M/E -> S) at this
// cache.
func (c *Cache) CountDowngrade() { c.Downgrades++ }

// ForEach calls fn for every valid line. Iteration order is deterministic
// (set-major). fn must not insert or invalidate lines.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			fn(&c.sets[i])
		}
	}
}

// Recency returns copies of every valid line, set-major with each set's
// lines ordered most-recently-used first. The absolute LRU clock is not
// included (the returned lines have a zero clock): two caches with equal
// Recency respond identically to any future access sequence, which is
// exactly the replacement-relevant state canonical hashing needs
// (internal/modelcheck).
func (c *Cache) Recency() []Line {
	out := make([]Line, 0, c.assoc)
	for s := uint64(0); s < c.numSets; s++ {
		set := c.sets[s*uint64(c.assoc) : (s+1)*uint64(c.assoc)]
		start := len(out)
		for i := range set {
			if set[i].State != Invalid {
				out = append(out, set[i])
			}
		}
		lines := out[start:]
		sort.Slice(lines, func(i, j int) bool { return lines[i].lru > lines[j].lru })
		for i := range lines {
			lines[i].lru = 0
		}
	}
	return out
}

// ValidLines reports the number of valid lines, for occupancy assertions.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			n++
		}
	}
	return n
}

// Reset invalidates every line and clears counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = Line{}
	}
	c.tick = 0
	c.Invalidations, c.Downgrades, c.Hits, c.Misses, c.Evictions = 0, 0, 0, 0, 0
}
