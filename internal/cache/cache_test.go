package cache

import (
	"testing"
	"testing/quick"

	"warden/internal/mem"
)

func small() *Cache { return New("t", 1024, 2, 64) } // 8 sets, 2-way

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Ward: "W",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := small()
	if _, ev := c.Insert(0x1000, Exclusive); ev {
		t.Fatal("insert into empty cache evicted")
	}
	ln := c.Lookup(0x1000)
	if ln == nil || ln.State != Exclusive || ln.Addr != 0x1000 {
		t.Fatalf("lookup after insert: %+v", ln)
	}
	if c.Lookup(0x1040) != nil {
		t.Fatal("lookup of absent block succeeded")
	}
	// Sub-block addresses resolve to the containing block.
	if c.Lookup(0x103f) == nil {
		t.Fatal("lookup within the block failed")
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := small()
	c.Insert(0x1000, Shared)
	c.Insert(0x1000, Modified)
	if c.ValidLines() != 1 {
		t.Fatalf("duplicate insert created %d lines", c.ValidLines())
	}
	if st := c.Peek(0x1000).State; st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three blocks mapping to the same set (set index = bits above block
	// offset, 8 sets): addresses 64*setCount apart collide.
	const stride = 64 * 8
	a, b, d := mem.Addr(0), mem.Addr(stride), mem.Addr(2*stride)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Lookup(a) // make b the LRU
	ev, evicted := c.Insert(d, Shared)
	if !evicted {
		t.Fatal("third insert into 2-way set did not evict")
	}
	if ev.Addr != b {
		t.Fatalf("evicted %#x, want %#x (LRU)", uint64(ev.Addr), uint64(b))
	}
	if c.Peek(a) == nil || c.Peek(d) == nil || c.Peek(b) != nil {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(0x40, Modified)
	st := c.Invalidate(0x40)
	if st != Modified {
		t.Fatalf("invalidate returned %v, want M", st)
	}
	if c.Peek(0x40) != nil {
		t.Fatal("block still present after invalidate")
	}
	if st := c.Invalidate(0x40); st != Invalid {
		t.Fatal("double invalidate found a block")
	}
}

func TestCounters(t *testing.T) {
	c := small()
	c.CountInvalidation()
	c.CountDowngrade()
	c.CountDowngrade()
	if c.Invalidations != 1 || c.Downgrades != 2 {
		t.Fatalf("counters: inv=%d dg=%d", c.Invalidations, c.Downgrades)
	}
	c.Reset()
	if c.Invalidations != 0 || c.ValidLines() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSectorMask(t *testing.T) {
	var m SectorMask
	m = m.Set(3, 2)
	if !m.Has(3) || !m.Has(4) || m.Has(2) || m.Has(5) {
		t.Fatalf("mask after Set(3,2): %b", m)
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d, want 2", m.Count())
	}
	if m.Overlaps(SectorMask(0).Set(5, 1)) {
		t.Fatal("disjoint masks reported overlapping")
	}
	if !m.Overlaps(SectorMask(0).Set(4, 3)) {
		t.Fatal("overlapping masks reported disjoint")
	}
	if full := SectorMask(0).Set(0, 64); full != ^SectorMask(0) {
		t.Fatalf("full mask = %b", full)
	}
	if full := SectorMask(0).Set(0, 100); full != ^SectorMask(0) {
		t.Fatal("oversized Set must saturate")
	}
}

func TestQuickSectorMaskSetHas(t *testing.T) {
	f := func(lo8, n8 uint8) bool {
		lo, n := uint(lo8%64), uint(n8%16)
		m := SectorMask(0).Set(lo, n)
		for i := uint(0); i < 64; i++ {
			want := i >= lo && i < lo+n
			if m.Has(i) != want {
				return false
			}
		}
		return m.Count() == int(minu(n, 64-lo))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func minu(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// TestQuickCacheNeverExceedsCapacity inserts random blocks and checks the
// structural invariants: per-set occupancy never exceeds associativity, and
// a just-inserted block is always present.
func TestQuickCacheNeverExceedsCapacity(t *testing.T) {
	c := New("q", 4096, 4, 64) // 16 sets, 4-way
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			block := mem.Addr(a) &^ 63
			c.Insert(block, Shared)
			if c.Peek(block) == nil {
				return false
			}
		}
		return c.ValidLines() <= 16*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachDeterministic(t *testing.T) {
	c := small()
	c.Insert(0x40, Shared)
	c.Insert(0x80, Modified)
	c.Insert(0xc0, Exclusive)
	var order1, order2 []mem.Addr
	c.ForEach(func(ln *Line) { order1 = append(order1, ln.Addr) })
	c.ForEach(func(ln *Line) { order2 = append(order2, ln.Addr) })
	if len(order1) != 3 || len(order1) != len(order2) {
		t.Fatalf("ForEach visited %d/%d lines", len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("ForEach order not deterministic")
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct {
		size  uint64
		assoc int
		block uint64
	}{
		{1000, 2, 64}, // size not divisible
		{1024, 0, 64}, // zero assoc
		{1024, 2, 48}, // non-power-of-two block
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", tc.size, tc.assoc, tc.block)
				}
			}()
			New("bad", tc.size, tc.assoc, tc.block)
		}()
	}
}
