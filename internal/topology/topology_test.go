package topology

import (
	"testing"
	"testing/quick"
)

func TestTable2Defaults(t *testing.T) {
	c := XeonGold6126(2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Table 2 values.
	if c.L1Size != 32<<10 || c.L2Size != 256<<10 || c.L3SizePerCore != 2560<<10 {
		t.Fatal("cache sizes do not match Table 2")
	}
	if c.L1Latency != 6 || c.L2Latency != 16 || c.L3Latency != 71 {
		t.Fatal("latencies do not match Table 2 (6-16-71)")
	}
	if c.CoresPerSocket != 12 || c.BlockSize != 64 || c.FrequencyGHz != 3.3 {
		t.Fatal("core count/block size/frequency do not match Table 2")
	}
	if c.Cores() != 24 || c.Threads() != 24 {
		t.Fatalf("cores=%d threads=%d", c.Cores(), c.Threads())
	}
	if c.L3SizePerSocket() != 12*2560<<10 {
		t.Fatal("per-socket LLC size wrong")
	}
}

func TestVariants(t *testing.T) {
	d := Disaggregated()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 µs at 3.3 GHz = 3300 cycles.
	if d.InterSocketLatency != 3300 {
		t.Fatalf("disaggregated remote latency = %d, want 3300", d.InterSocketLatency)
	}
	m := ManySocket(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Sockets != 8 || m.InterSocketLatency <= XeonGold6126(2).InterSocketLatency {
		t.Fatal("many-socket variant did not scale the interconnect latency")
	}
}

func TestThreadCoreSocketMapping(t *testing.T) {
	c := XeonGold6126(2)
	c.ThreadsPerCore = 2
	if c.Threads() != 48 {
		t.Fatalf("threads = %d", c.Threads())
	}
	if c.CoreOf(0) != 0 || c.CoreOf(1) != 0 || c.CoreOf(2) != 1 {
		t.Fatal("thread->core mapping wrong")
	}
	if c.SocketOf(0) != 0 || c.SocketOf(11) != 0 || c.SocketOf(12) != 1 {
		t.Fatal("core->socket mapping wrong")
	}
	if c.SocketOfThread(23) != 0 || c.SocketOfThread(24) != 1 {
		t.Fatal("thread->socket mapping wrong")
	}
}

func TestHomeSocketInterleavesBlocks(t *testing.T) {
	c := XeonGold6126(2)
	if c.HomeSocket(0) == c.HomeSocket(64) {
		t.Fatal("adjacent blocks share a home socket on a 2-socket machine")
	}
	f := func(addr uint64) bool {
		h := c.HomeSocket(addr)
		return h >= 0 && h < c.Sockets && h == c.HomeSocket(addr|63)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.CoresPerSocket = -1 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.BlockSize = 48 },
		func(c *Config) { c.L1Size = 0 },
		func(c *Config) { c.L1Assoc = 0 },
		func(c *Config) { c.L1Size = 1000 },
		func(c *Config) { c.StoreBufferEntries = 0 },
		func(c *Config) { c.WardRegionCapacity = 0 },
		func(c *Config) { c.FrequencyGHz = 0 },
	}
	for i, mut := range mutations {
		c := XeonGold6126(1)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestCyclesToSeconds(t *testing.T) {
	c := XeonGold6126(1)
	if got := c.CyclesToSeconds(3_300_000_000); got < 0.999 || got > 1.001 {
		t.Fatalf("3.3e9 cycles = %v s, want 1", got)
	}
}

func TestMinVisibilityLatency(t *testing.T) {
	c := XeonGold6126(2)
	// Fastest cross-core path: L2 miss, NoC to the home slice, L3 lookup.
	want := c.L2Latency + c.NoCHopLatency*c.AvgNoCHops + c.L3Latency
	if got := c.MinVisibilityLatency(); got != want || got == 0 {
		t.Fatalf("MinVisibilityLatency = %d, want %d (nonzero)", got, want)
	}
	// A degenerate zero-latency config must still yield a usable window.
	var z Config
	if got := z.MinVisibilityLatency(); got != 1 {
		t.Fatalf("zero config window = %d, want 1", got)
	}
}
