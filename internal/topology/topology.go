// Package topology describes the simulated machine: sockets, cores, hardware
// threads, cache geometry, and the latency/energy-relevant distances between
// components. It encodes the paper's Table 2 configuration (two-socket Intel
// Xeon Gold 6126) plus the §7.3 future-machine variants (many-socket and
// disaggregated systems).
package topology

import "fmt"

// Config describes a simulated machine. The zero value is not usable; start
// from XeonGold6126 (Table 2) or one of the variant constructors.
type Config struct {
	Name string

	Sockets        int // processor packages (or nodes when disaggregated)
	CoresPerSocket int
	ThreadsPerCore int // hardware threads (SMT contexts) per core

	// Cache geometry. L1 and L2 are private per core; L3 is shared per
	// socket and sized per core (Table 2: 2.5 MB per core).
	BlockSize     uint64
	L1Size        uint64
	L1Assoc       int
	L2Size        uint64
	L2Assoc       int
	L3SizePerCore uint64
	L3Assoc       int

	// Access latencies in cycles (Table 2: 6-16-71).
	L1Latency   uint64
	L2Latency   uint64
	L3Latency   uint64
	DRAMLatency uint64

	// InterSocketLatency is the one-way latency added to any message that
	// crosses a socket boundary. Disaggregated systems raise this to the
	// remote-access time (§7.3: 1 µs ≈ 3300 cycles at 3.3 GHz).
	InterSocketLatency uint64

	// NoCHopLatency is the per-hop latency of the on-chip interconnect, and
	// AvgNoCHops the average hop count between a core tile and its L3/
	// directory slice. These stand in for Sniper's network model.
	NoCHopLatency uint64
	AvgNoCHops    uint64

	// FrequencyGHz is used only to convert cycles to seconds for the static
	// part of the energy model.
	FrequencyGHz float64

	// StoreBufferEntries bounds the per-thread store buffer; a store only
	// stalls its core when the buffer is full (§7.2 analysis).
	StoreBufferEntries int

	// WardRegionCapacity bounds the directory's WARD region table (§6.1
	// sizes the CAM at 1024 simultaneous regions).
	WardRegionCapacity int
}

// XeonGold6126 returns the paper's Table 2 machine with the given socket
// count (the paper evaluates 1 and 2).
func XeonGold6126(sockets int) Config {
	return Config{
		Name:               fmt.Sprintf("xeon-gold-6126-%ds", sockets),
		Sockets:            sockets,
		CoresPerSocket:     12,
		ThreadsPerCore:     1,
		BlockSize:          64,
		L1Size:             32 << 10,
		L1Assoc:            8,
		L2Size:             256 << 10,
		L2Assoc:            8,
		L3SizePerCore:      2560 << 10,
		L3Assoc:            20,
		L1Latency:          6,
		L2Latency:          16,
		L3Latency:          71,
		DRAMLatency:        210,
		InterSocketLatency: 240,
		NoCHopLatency:      4,
		AvgNoCHops:         3,
		FrequencyGHz:       3.3,
		StoreBufferEntries: 56,
		WardRegionCapacity: 1024,
	}
}

// Disaggregated returns a two-node machine whose nodes are disaggregated
// from their shared memory hierarchy: every cross-node message pays the
// remote access time of 1 µs (§7.3), i.e. 3300 cycles at 3.3 GHz.
func Disaggregated() Config {
	c := XeonGold6126(2)
	c.Name = "disaggregated-2n"
	c.InterSocketLatency = 3300
	return c
}

// ManySocket returns an s-socket machine with proportionally higher
// intersocket latency, modelling the §7.3 many-socket trend where
// interconnect latencies continue to rise with scale.
func ManySocket(s int) Config {
	c := XeonGold6126(s)
	c.Name = fmt.Sprintf("many-socket-%ds", s)
	c.InterSocketLatency = 240 + 90*uint64(s)
	return c
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return fmt.Errorf("topology: %q: sockets must be positive, got %d", c.Name, c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("topology: %q: cores per socket must be positive, got %d", c.Name, c.CoresPerSocket)
	case c.ThreadsPerCore <= 0:
		return fmt.Errorf("topology: %q: threads per core must be positive, got %d", c.Name, c.ThreadsPerCore)
	case c.BlockSize == 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("topology: %q: block size must be a power of two, got %d", c.Name, c.BlockSize)
	case c.L1Size == 0 || c.L2Size == 0 || c.L3SizePerCore == 0:
		return fmt.Errorf("topology: %q: cache sizes must be nonzero", c.Name)
	case c.L1Assoc <= 0 || c.L2Assoc <= 0 || c.L3Assoc <= 0:
		return fmt.Errorf("topology: %q: associativities must be positive", c.Name)
	case c.L1Size%(uint64(c.L1Assoc)*c.BlockSize) != 0:
		return fmt.Errorf("topology: %q: L1 size %d not divisible by assoc*block", c.Name, c.L1Size)
	case c.L2Size%(uint64(c.L2Assoc)*c.BlockSize) != 0:
		return fmt.Errorf("topology: %q: L2 size %d not divisible by assoc*block", c.Name, c.L2Size)
	case c.StoreBufferEntries <= 0:
		return fmt.Errorf("topology: %q: store buffer must have at least one entry", c.Name)
	case c.WardRegionCapacity <= 0:
		return fmt.Errorf("topology: %q: WARD region capacity must be positive", c.Name)
	case c.FrequencyGHz <= 0:
		return fmt.Errorf("topology: %q: frequency must be positive", c.Name)
	}
	return nil
}

// Cores is the total number of cores in the machine.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }

// Threads is the total number of hardware threads in the machine.
func (c Config) Threads() int { return c.Cores() * c.ThreadsPerCore }

// L3SizePerSocket is the total shared-LLC capacity of one socket.
func (c Config) L3SizePerSocket() uint64 {
	return c.L3SizePerCore * uint64(c.CoresPerSocket)
}

// CoreOf maps a hardware thread id to its core id.
func (c Config) CoreOf(thread int) int { return thread / c.ThreadsPerCore }

// SocketOf maps a core id to its socket id.
func (c Config) SocketOf(core int) int { return core / c.CoresPerSocket }

// SocketOfThread maps a hardware thread id to its socket id.
func (c Config) SocketOfThread(thread int) int { return c.SocketOf(c.CoreOf(thread)) }

// HomeSocket maps a block address to the socket whose L3 slice and directory
// own it. Blocks are interleaved across sockets at block granularity, the
// usual address-interleaved home-node policy.
func (c Config) HomeSocket(blockAddr uint64) int {
	return int((blockAddr / c.BlockSize) % uint64(c.Sockets))
}

// MinVisibilityLatency is the minimum simulated-cycle delay before one
// thread's memory-system action can affect another thread's timing: the
// fastest cross-core path, through the home L3/directory slice over the
// NoC (both cores on one socket; an inter-socket hop only adds to it).
// The PDES scheduler uses it as the epoch window width — under this
// simulator's conservative op classification any window is correct (see
// internal/engine), so this is a batching heuristic, sized so that
// threads in compute-heavy phases share epochs with their neighbours.
func (c Config) MinVisibilityLatency() uint64 {
	w := c.L2Latency + c.NoCHopLatency*c.AvgNoCHops + c.L3Latency
	if w == 0 {
		w = 1
	}
	return w
}

// CyclesToSeconds converts a cycle count to seconds at the configured clock.
func (c Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (c.FrequencyGHz * 1e9)
}
