package hlpl

import (
	"warden/internal/machine"
	"warden/internal/mem"
)

// taskDesc describes a forked task sitting in a deque. The Go-side struct
// carries the closure; the simulated side carries the fork record the
// parent wrote into its heap (function pointer + argument words) that the
// executing worker must read, and the join cell it must signal.
type taskDesc struct {
	fn     func(*Task)
	parent *Heap
	desc   mem.Addr // fork record in the parent's heap (16 bytes)
	join   mem.Addr // join cell in runtime memory
}

// worker is one scheduler participant, pinned to a hardware thread. Its
// deque holds Go task descriptors; a pair of simulated control words (top
// and bottom indices, in runtime memory on separate blocks) carries the
// coherence traffic a Chase-Lev deque would generate.
type worker struct {
	rt  *RT
	id  int
	ctx *machine.Ctx

	items []*taskDesc
	head  int

	topCell    mem.Addr // stolen-from end: thieves FetchAdd here
	bottomCell mem.Addr // owner end: owner loads/stores here

	runPool map[int][]mem.Addr // worker-local free page runs by size

	rng uint64
}

func newWorker(rt *RT, id int) *worker {
	return &worker{
		rt:         rt,
		id:         id,
		topCell:    rt.allocCell(),
		bottomCell: rt.allocCell(),
		runPool:    make(map[int][]mem.Addr),
		rng:        uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
}

func (w *worker) nextRand() uint64 {
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	return w.rng
}

// push makes td stealable. The owner publishes the new bottom index.
func (w *worker) push(td *taskDesc) {
	w.items = append(w.items, td)
	w.ctx.Store(w.bottomCell, 8, uint64(len(w.items)))
}

// popIf removes td from the owner's end if it was not stolen, performing
// the owner side of the deque protocol (load top, move bottom).
func (w *worker) popIf(td *taskDesc) bool {
	w.ctx.Load(w.topCell, 8)
	if len(w.items) > w.head && w.items[len(w.items)-1] == td {
		w.items = w.items[:len(w.items)-1]
		w.ctx.Store(w.bottomCell, 8, uint64(len(w.items)))
		return true
	}
	return false
}

// trySteal probes up to stealProbeLimit random victims and takes the oldest
// task of the first victim with work. The simulated CAS on the victim's top
// cell is the classic steal-side contention.
func (w *worker) trySteal() *taskDesc {
	n := len(w.rt.workers)
	if n <= 1 {
		return nil
	}
	for probe := 0; probe < stealProbeLimit; probe++ {
		v := w.rt.workers[int(w.nextRand()%uint64(n))]
		if v == w {
			continue
		}
		w.ctx.Load(v.bottomCell, 8)
		// The load parks this worker; other workers may mutate the deque in
		// the meantime, so decide and commit on the post-load state before
		// issuing more simulated operations.
		if len(v.items) > v.head {
			td := v.items[v.head]
			v.head++
			if v.head == len(v.items) {
				v.items = v.items[:0]
				v.head = 0
			}
			w.rt.Steals++
			w.ctx.FetchAdd(v.topCell, 8, 1)
			return td
		}
	}
	return nil
}

// runTask executes a (typically stolen) task: read the fork record the
// parent wrote into its heap, run the task in a fresh leaf heap, unmark and
// merge the heap, and signal the join cell.
func (w *worker) runTask(td *taskDesc) {
	w.ctx.Compute(taskSetupCycles)
	w.ctx.Load(td.desc, 8)
	w.ctx.Load(td.desc+8, 8)
	h := w.rt.newHeap(td.parent)
	t := &Task{w: w, heap: h}
	w.ctx.PhaseBegin(StealPhase)
	td.fn(t)
	t.finish(td.parent)
	w.ctx.Store(td.join, 8, 1)
	w.ctx.PhaseEnd(StealPhase)
}

// loop is the body of every non-root worker: steal until the computation
// finishes. The done flag is host-side state shared with the root thread,
// so it is read through Ctx.Host — pinning each check to this worker's
// serialized position, which keeps the number of idle iterations (and so
// the instruction stream) identical across engine modes.
func (w *worker) loop() {
	for {
		var done bool
		w.ctx.Host(func() { done = w.rt.done })
		if done {
			return
		}
		if td := w.trySteal(); td != nil {
			w.runTask(td)
			continue
		}
		w.ctx.Compute(idleProbeCycles)
	}
}
