package hlpl

import (
	"fmt"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
)

// maxRunPages caps the doubling growth of heap page runs. Growing runs keep
// the number of live WARD regions per heap logarithmic in its size, so the
// directory's 1024-entry region table (§6.1) is never under pressure in
// practice.
const maxRunPages = 64

type run struct {
	base  mem.Addr
	pages int
}

func (r run) end() mem.Addr { return r.base + mem.Addr(r.pages)*mem.PageSize }

// Heap is one node of the heap hierarchy: a linked list of page runs with
// bump allocation, as in MPL (§4.2). A heap belongs to exactly one task
// while that task is a leaf; at join it merges into its parent.
type Heap struct {
	rt      *RT
	parent  *Heap
	cur     mem.Addr // bump pointer
	end     mem.Addr
	runs    []run
	regions []core.RegionID // active WARD regions covering this heap's runs
	nextRun int             // pages in the next run (doubles up to maxRunPages)
	merged  bool
}

func (rt *RT) newHeap(parent *Heap) *Heap {
	return &Heap{rt: rt, parent: parent, nextRun: 1}
}

// alloc bump-allocates size bytes aligned to align in the heap, extending
// it with a fresh (WARD-marked) run when exhausted. It charges the
// allocator's simulated cost to ctx.
func (h *Heap) alloc(w *worker, size, align uint64) mem.Addr {
	ctx := w.ctx
	if h.merged {
		panic("hlpl: allocation into a merged heap (task kept a stale reference)")
	}
	if align == 0 {
		align = 1
	}
	ctx.Compute(allocBumpCycles)
	base := (h.cur + mem.Addr(align-1)) &^ mem.Addr(align-1)
	if base+mem.Addr(size) <= h.end {
		h.cur = base + mem.Addr(size)
		return base
	}
	// Slow path: extend the heap. Oversized requests get a dedicated run.
	pages := h.nextRun
	need := int((size + align + mem.PageSize - 1) / mem.PageSize)
	if need > pages {
		pages = need
	} else {
		if h.nextRun < maxRunPages {
			h.nextRun *= 2
		}
	}
	h.extend(w, pages)
	base = (h.cur + mem.Addr(align-1)) &^ mem.Addr(align-1)
	if base+mem.Addr(size) > h.end {
		panic(fmt.Sprintf("hlpl: run of %d pages cannot hold %d bytes", pages, size))
	}
	h.cur = base + mem.Addr(size)
	return base
}

// extend acquires a run of the given page count and, per §4.2, marks it as
// a WARD region — the allocating task is by construction a leaf.
func (h *Heap) extend(w *worker, pages int) {
	ctx := w.ctx
	ctx.Compute(runAllocCycles)
	base := h.rt.getRun(w, pages)
	r := run{base: base, pages: pages}
	h.runs = append(h.runs, r)
	h.cur, h.end = r.base, r.end()
	if h.rt.opts.MarkHeapPages {
		if id, ok := ctx.AddRegion(r.base, r.end()); ok {
			h.regions = append(h.regions, id)
		}
	} else {
		// Keep the instruction stream shape comparable across ablations.
		ctx.Compute(1)
	}
}

// unmark removes every active WARD region of the heap (the Remove Region
// instruction), reconciling their W blocks. The scheduler calls this before
// forks and when the heap's task completes.
func (h *Heap) unmark(ctx *machine.Ctx) {
	for _, id := range h.regions {
		ctx.RemoveRegion(id)
	}
	h.regions = h.regions[:0]
}

// mergeInto gives the heap's pages to parent (the join-time merge of
// Fig. 2). The heap must have been unmarked first: its data is about to be
// readable by the parent's hardware thread.
func (h *Heap) mergeInto(ctx *machine.Ctx, parent *Heap) {
	if len(h.regions) != 0 {
		panic("hlpl: merging a heap with active WARD regions")
	}
	ctx.Compute(joinMergeCycles)
	// Two children of one parent may complete concurrently under the PDES
	// engine, and the resulting run order feeds later putRun/getRun address
	// reuse: append at this thread's serialized position.
	ctx.Host(func() {
		parent.runs = append(parent.runs, h.runs...)
		h.runs = nil
	})
	h.merged = true
}

// release returns every run to the pool (scratch heaps only — merged data
// must stay live).
func (h *Heap) release(w *worker) {
	for _, r := range h.runs {
		h.rt.putRun(w, r.base, r.pages)
	}
	h.runs = nil
	h.cur, h.end = 0, 0
	h.merged = true
}

// Bytes reports the heap's total page footprint, for tests.
func (h *Heap) Bytes() uint64 {
	var n uint64
	for _, r := range h.runs {
		n += uint64(r.pages) * mem.PageSize
	}
	return n
}
