package hlpl

import (
	"testing"

	"warden/internal/core"
	"warden/internal/machine"
)

func newTestRT(t *testing.T, proto core.Protocol, opts Options) (*machine.Machine, *RT) {
	t.Helper()
	m := machine.New(testConfig(1), proto)
	return m, New(m, opts)
}

func TestRunTwicePanicsGracefully(t *testing.T) {
	_, rt := newTestRT(t, core.MESI, DefaultOptions())
	if _, err := rt.Run(func(*Task) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(*Task) {}); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestNestedJoinDepth(t *testing.T) {
	m, rt := newTestRT(t, core.WARDen, DefaultOptions())
	var depthReached int
	var rec func(t *Task, d int)
	rec = func(tk *Task, d int) {
		if d > depthReached {
			depthReached = d
		}
		if d == 0 {
			tk.Compute(10)
			return
		}
		tk.Join2(
			func(a *Task) { rec(a, d-1) },
			func(b *Task) { rec(b, d-1) },
		)
	}
	if _, err := rt.Run(func(root *Task) { rec(root, 8) }); err != nil {
		t.Fatal(err)
	}
	if depthReached != 8 {
		t.Fatalf("depth = %d", depthReached)
	}
	if rt.Forks != 255 {
		t.Fatalf("forks = %d, want 255 (2^8 - 1)", rt.Forks)
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRangeCoversExactly(t *testing.T) {
	_, rt := newTestRT(t, core.WARDen, DefaultOptions())
	covered := make([]int, 1000)
	_, err := rt.Run(func(root *Task) {
		root.ParallelRange(0, 1000, 37, func(leaf *Task, lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++ // host-side; engine serializes all tasks
			}
			leaf.Compute(uint64(hi - lo))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestDiscardHeapRecyclesRuns(t *testing.T) {
	_, rt := newTestRT(t, core.WARDen, DefaultOptions())
	_, err := rt.Run(func(root *Task) {
		root.ParallelFor(0, 64, 1, func(leaf *Task, i int) {
			arr := leaf.NewU64(256)
			for j := 0; j < 256; j++ {
				arr.Set(leaf, j, uint64(j))
			}
			leaf.DiscardHeap()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	pooled := 0
	for _, w := range rt.workers {
		for _, runs := range w.runPool {
			pooled += len(runs)
		}
	}
	for _, runs := range rt.pool {
		pooled += len(runs)
	}
	if pooled == 0 {
		t.Fatal("discarded heaps returned no runs to any pool")
	}
}

func TestHeapRunDoubling(t *testing.T) {
	m, rt := newTestRT(t, core.WARDen, DefaultOptions())
	var h *Heap
	_, err := rt.Run(func(root *Task) {
		h = root.heap
		// Allocate ~100 KB in small pieces: runs must double 1,2,4,... up
		// to the cap rather than growing one page at a time.
		for i := 0; i < 400; i++ {
			root.Alloc(256, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.runs) == 0 {
		t.Fatal("no runs allocated")
	}
	if len(h.runs) > 12 {
		t.Fatalf("%d runs for ~100KB; doubling is broken", len(h.runs))
	}
	for i := 1; i < len(h.runs) && i < 5; i++ {
		if h.runs[i].pages < h.runs[i-1].pages {
			t.Fatalf("run %d has %d pages after %d", i, h.runs[i].pages, h.runs[i-1].pages)
		}
	}
	_ = m
}

func TestBigAllocationGetsDedicatedRun(t *testing.T) {
	_, rt := newTestRT(t, core.WARDen, DefaultOptions())
	var arr U64
	_, err := rt.Run(func(root *Task) {
		arr = root.NewU64(1 << 17) // 1 MB, far beyond maxRunPages
		arr.Set(root, 0, 1)
		arr.Set(root, 1<<17-1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr.N != 1<<17 {
		t.Fatal("allocation failed")
	}
}

func TestWardScopeDisabledByOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkScopes = false
	m, rt := newTestRT(t, core.WARDen, opts)
	_, err := rt.Run(func(root *Task) {
		arr := root.NewU64(64)
		root.WardScope(arr.Base, 64*8, func() {
			arr.Fill(root, 7)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only heap-page regions may have been added; scope adds would push the
	// count higher. With MarkScopes off and one tiny heap, expect the adds
	// to equal the number of heap runs.
	c := m.Counters()
	if c.RegionAdds > 4 {
		t.Fatalf("scopes disabled but %d regions added", c.RegionAdds)
	}
}

func TestStealsHappenOnWideFanout(t *testing.T) {
	_, rt := newTestRT(t, core.WARDen, DefaultOptions())
	_, err := rt.Run(func(root *Task) {
		root.ParallelFor(0, 512, 1, func(leaf *Task, i int) {
			leaf.Compute(500)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Steals == 0 {
		t.Fatal("no steals on a 512-way fan-out over multiple cores")
	}
}

func TestU8BulkRoundTrip(t *testing.T) {
	m, rt := newTestRT(t, core.WARDen, DefaultOptions())
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 3)
	}
	var arr U8
	_, err := rt.Run(func(root *Task) {
		arr = root.NewU8(512)
		arr.SetBulk(root, 100, data)
		buf := make([]byte, len(data))
		arr.GetBulk(root, 100, buf)
		for i := range buf {
			if buf[i] != data[i] {
				t.Errorf("bulk byte %d = %d, want %d", i, buf[i], data[i])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = m
}

func TestArrayHelpers(t *testing.T) {
	_, rt := newTestRT(t, core.MESI, DefaultOptions())
	_, err := rt.Run(func(root *Task) {
		a := root.NewU64(16)
		a.Fill(root, 9)
		s := a.Slice(4, 8)
		if s.N != 4 {
			t.Errorf("slice length %d", s.N)
		}
		if s.Get(root, 0) != 9 {
			t.Error("slice does not alias the parent array")
		}
		s.SetF(root, 1, 2.5)
		if got := s.GetF(root, 1); got != 2.5 {
			t.Errorf("float round trip got %v", got)
		}
		b := root.NewU8(8)
		b.Set(root, 3, 200)
		if b.Get(root, 3) != 200 {
			t.Error("byte round trip failed")
		}
		if b.Slice(2, 6).Get(root, 1) != 200 {
			t.Error("byte slice alias failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
