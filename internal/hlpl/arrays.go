package hlpl

import (
	"math"

	"warden/internal/mem"
)

// U64 is a simulated array of 64-bit words. Elements are accessed with
// simulated loads and stores; the array's storage lives in whichever heap
// allocated it.
type U64 struct {
	Base mem.Addr
	N    int
}

// NewU64 allocates an n-element word array in the task's leaf heap. The
// contents are whatever the underlying (possibly recycled) pages held;
// initialize explicitly, as a language runtime's object initialization
// would.
func (t *Task) NewU64(n int) U64 {
	return U64{Base: t.Alloc(uint64(n)*8, 8), N: n}
}

// NewU64Scratch allocates a task-local temporary word array.
func (t *Task) NewU64Scratch(n int) U64 {
	return U64{Base: t.AllocScratch(uint64(n)*8, 8), N: n}
}

// Addr returns the address of element i.
func (a U64) Addr(i int) mem.Addr { return a.Base + mem.Addr(i)*8 }

// Get loads element i.
func (a U64) Get(t *Task, i int) uint64 { return t.Load(a.Addr(i), 8) }

// Set stores element i.
func (a U64) Set(t *Task, i int, v uint64) { t.Store(a.Addr(i), 8, v) }

// GetF loads element i as a float64.
func (a U64) GetF(t *Task, i int) float64 { return math.Float64frombits(a.Get(t, i)) }

// SetF stores a float64 into element i.
func (a U64) SetF(t *Task, i int, v float64) { a.Set(t, i, math.Float64bits(v)) }

// Fill stores v into every element sequentially on the calling task.
func (a U64) Fill(t *Task, v uint64) {
	for i := 0; i < a.N; i++ {
		a.Set(t, i, v)
	}
}

// Slice returns the subarray [lo, hi).
func (a U64) Slice(lo, hi int) U64 {
	return U64{Base: a.Addr(lo), N: hi - lo}
}

// U8 is a simulated byte array.
type U8 struct {
	Base mem.Addr
	N    int
}

// NewU8 allocates an n-byte array in the task's leaf heap.
func (t *Task) NewU8(n int) U8 {
	return U8{Base: t.Alloc(uint64(n), 1), N: n}
}

// NewU8Scratch allocates a task-local temporary byte array.
func (t *Task) NewU8Scratch(n int) U8 {
	return U8{Base: t.AllocScratch(uint64(n), 1), N: n}
}

// Addr returns the address of byte i.
func (a U8) Addr(i int) mem.Addr { return a.Base + mem.Addr(i) }

// Get loads byte i.
func (a U8) Get(t *Task, i int) byte { return byte(t.Load(a.Addr(i), 1)) }

// Set stores byte i.
func (a U8) Set(t *Task, i int, v byte) { t.Store(a.Addr(i), 1, uint64(v)) }

// SetBulk writes data starting at byte i using block-wide stores, the way
// optimized runtime memcpy/init loops would.
func (a U8) SetBulk(t *Task, i int, data []byte) {
	t.Ctx().StoreBytes(a.Addr(i), data)
}

// GetBulk reads len(buf) bytes starting at i using block-wide loads.
func (a U8) GetBulk(t *Task, i int, buf []byte) {
	t.Ctx().LoadBytes(a.Addr(i), buf)
}

// Slice returns the subarray [lo, hi).
func (a U8) Slice(lo, hi int) U8 {
	return U8{Base: a.Addr(lo), N: hi - lo}
}

// ReadU64 copies a simulated U64 array out through host-side (untimed)
// memory access — for result verification after a run.
func ReadU64(m interface{ ReadUint(mem.Addr, int) uint64 }, a U64) []uint64 {
	out := make([]uint64, a.N)
	for i := range out {
		out[i] = m.ReadUint(a.Addr(i), 8)
	}
	return out
}
