package hlpl

import "warden/internal/mem"

// WardScope runs body with [base, base+size) registered as a WARD region,
// reconciling it when body returns.
//
// This is the library-level analogue of MPL's trusted bulk primitives: the
// paper's runtime marks only leaf-heap pages (§4.2), but the language's
// standard library (tabulate, inject, bulk writes) knows by construction
// that an operation's output range satisfies the WARD definition for the
// operation's duration — concurrent tasks only *write* it (no cross-task
// RAW), and any write-write overlap is apathetic (§3). The prime sieve of
// Fig. 4 is exactly this pattern: the flags array "is a WARD region"
// semantically even while it lives in an internal heap.
//
// Like every WARD mechanism here, this requires no user annotation: it is
// used by the bulk operations in internal/pbbs's little standard library,
// not by benchmark "application" code. Under a MESI machine the scope is a
// no-op, so instruction streams stay comparable.
//
// The body must uphold the WARD contract: no task may read a location of
// the range that another task wrote during the scope (such a read returns
// stale data — the simulator models the divergence faithfully, and the
// entanglement test demonstrates it).
func (t *Task) WardScope(base mem.Addr, size uint64, body func()) {
	if !t.w.rt.opts.MarkScopes {
		body()
		return
	}
	id, _ := t.w.ctx.AddRegion(base, base+mem.Addr(size))
	body()
	t.w.ctx.RemoveRegion(id)
}
