package hlpl

// Bulk-parallel library primitives in the PBBS style: exclusive scan and
// filter. Like Task.WardScope itself, these belong to the runtime's trusted
// standard library — their output ranges are WARD by construction (each
// element is written by exactly one task and read only after the operation
// joins), so the library marks them without any user involvement (§4.2's
// "disentangled by construction" argument).

// scanChunks picks a chunk count balancing parallelism against the
// root-sequential combine over chunk totals.
func scanChunks(rt *RT, n int) int {
	c := rt.m.Config().Threads() * 4
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ScanU64 computes the exclusive prefix sum of src into a freshly allocated
// array and returns it along with the grand total: out[i] = src[0] + ... +
// src[i-1]. The classic two-pass chunked algorithm: per-chunk totals in
// parallel, a (short) sequential combine over chunks, then parallel
// emission of absolute prefixes.
func (t *Task) ScanU64(src U64) (out U64, total uint64) {
	n := src.N
	out = t.NewU64(n)
	if n == 0 {
		return out, 0
	}
	nChunks := scanChunks(t.w.rt, n)
	sums := t.NewU64(nChunks)
	t.WardScope(sums.Base, uint64(nChunks)*8, func() {
		t.ParallelFor(0, nChunks, 1, func(leaf *Task, c int) {
			lo, hi := c*n/nChunks, (c+1)*n/nChunks
			var s uint64
			for i := lo; i < hi; i++ {
				leaf.Compute(1)
				s += src.Get(leaf, i)
			}
			sums.Set(leaf, c, s)
		})
	})
	bases := t.NewU64(nChunks)
	var acc uint64
	for c := 0; c < nChunks; c++ {
		bases.Set(t, c, acc)
		acc += sums.Get(t, c)
	}
	total = acc
	t.WardScope(out.Base, uint64(n)*8, func() {
		t.ParallelFor(0, nChunks, 1, func(leaf *Task, c int) {
			lo, hi := c*n/nChunks, (c+1)*n/nChunks
			s := bases.Get(leaf, c)
			for i := lo; i < hi; i++ {
				leaf.Compute(1)
				out.Set(leaf, i, s)
				s += src.Get(leaf, i)
			}
		})
	})
	return out, total
}

// FilterU64 writes the elements of src for which keep returns true into a
// freshly allocated array, preserving order, and returns it. keep must be
// pure: it runs twice per element (count pass and emit pass), the standard
// parallel-filter recomputation trade.
func (t *Task) FilterU64(src U64, keep func(leaf *Task, i int, v uint64) bool) U64 {
	n := src.N
	nChunks := scanChunks(t.w.rt, n)
	if n == 0 {
		return t.NewU64(0)
	}
	counts := t.NewU64(nChunks)
	t.WardScope(counts.Base, uint64(nChunks)*8, func() {
		t.ParallelFor(0, nChunks, 1, func(leaf *Task, c int) {
			lo, hi := c*n/nChunks, (c+1)*n/nChunks
			var cnt uint64
			for i := lo; i < hi; i++ {
				leaf.Compute(1)
				if keep(leaf, i, src.Get(leaf, i)) {
					cnt++
				}
			}
			counts.Set(leaf, c, cnt)
		})
	})
	offs, total := t.ScanU64(counts)
	out := t.NewU64(int(total))
	t.WardScope(out.Base, total*8, func() {
		t.ParallelFor(0, nChunks, 1, func(leaf *Task, c int) {
			lo, hi := c*n/nChunks, (c+1)*n/nChunks
			k := int(offs.Get(leaf, c))
			for i := lo; i < hi; i++ {
				v := src.Get(leaf, i)
				if keep(leaf, i, v) {
					out.Set(leaf, k, v)
					k++
				}
			}
		})
	})
	return out
}
