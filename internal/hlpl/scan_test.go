package hlpl

import (
	"testing"
	"testing/quick"

	"warden/internal/core"
	"warden/internal/machine"
)

func TestScanU64(t *testing.T) {
	m := machine.New(testConfig(1), core.WARDen)
	rt := New(m, DefaultOptions())
	const n = 1500
	var out U64
	var total uint64
	_, err := rt.Run(func(root *Task) {
		src := root.NewU64(n)
		root.WardScope(src.Base, n*8, func() {
			root.ParallelFor(0, n, 64, func(leaf *Task, i int) {
				src.Set(leaf, i, uint64(i%7))
			})
		})
		out, total = root.ScanU64(src)
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := ReadU64(m.Mem(), out)
	var acc uint64
	for i := 0; i < n; i++ {
		if vals[i] != acc {
			t.Fatalf("scan[%d] = %d, want %d", i, vals[i], acc)
		}
		acc += uint64(i % 7)
	}
	if total != acc {
		t.Fatalf("total = %d, want %d", total, acc)
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanEmptyAndTiny(t *testing.T) {
	m := machine.New(testConfig(1), core.WARDen)
	rt := New(m, DefaultOptions())
	_, err := rt.Run(func(root *Task) {
		empty := root.NewU64(0)
		if out, total := root.ScanU64(empty); out.N != 0 || total != 0 {
			t.Errorf("empty scan: n=%d total=%d", out.N, total)
		}
		one := root.NewU64(1)
		one.Set(root, 0, 42)
		out, total := root.ScanU64(one)
		if out.N != 1 || total != 42 || out.Get(root, 0) != 0 {
			t.Errorf("singleton scan: n=%d total=%d first=%d", out.N, total, out.Get(root, 0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterU64(t *testing.T) {
	m := machine.New(testConfig(1), core.WARDen)
	rt := New(m, DefaultOptions())
	const n = 2000
	var out U64
	_, err := rt.Run(func(root *Task) {
		src := root.NewU64(n)
		root.WardScope(src.Base, n*8, func() {
			root.ParallelFor(0, n, 64, func(leaf *Task, i int) {
				src.Set(leaf, i, uint64(i))
			})
		})
		out = root.FilterU64(src, func(leaf *Task, i int, v uint64) bool {
			leaf.Compute(1)
			return v%3 == 0
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := ReadU64(m.Mem(), out)
	want := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			if vals[want] != uint64(i) {
				t.Fatalf("filter[%d] = %d, want %d", want, vals[want], i)
			}
			want++
		}
	}
	if len(vals) != want {
		t.Fatalf("filter produced %d elements, want %d", len(vals), want)
	}
}

func TestQuickScanMatchesSequential(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 800 {
			raw = raw[:800]
		}
		m := machine.New(testConfig(1), core.WARDen)
		rt := New(m, DefaultOptions())
		var out U64
		var total uint64
		_, err := rt.Run(func(root *Task) {
			src := root.NewU64(len(raw))
			for i, v := range raw {
				src.Set(root, i, uint64(v))
			}
			out, total = root.ScanU64(src)
		})
		if err != nil {
			return false
		}
		vals := ReadU64(m.Mem(), out)
		var acc uint64
		for i, v := range raw {
			if vals[i] != acc {
				return false
			}
			acc += uint64(v)
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
