package hlpl

import (
	"sync/atomic"

	"warden/internal/machine"
	"warden/internal/mem"
)

// Runtime-emitted phase names. Every fork/join scope is bracketed by
// EvPhaseBegin/EvPhaseEnd markers through the machine's event sink (zero
// simulated cost, nothing emitted without a sink): the root task, each
// child task run inline by Join2, and each stolen task executed by a thief
// worker. Benchmarks can add their own named phases with Task.Phase.
const (
	RootPhase  = "root"
	TaskPhase  = "task"
	StealPhase = "steal"
)

// Task is a node of the spawn tree. A task runs on exactly one worker at a
// time and owns a leaf heap for its allocations; Join2/ParallelFor suspend
// it while children run. Task methods proxy memory operations to the
// executing worker's hardware thread.
type Task struct {
	w       *worker
	heap    *Heap
	scratch *Heap // task-local temporary space, recycled at completion
	discard bool  // release (rather than merge) the heap at completion
}

// DiscardHeap declares that nothing allocated in this task's heap escapes
// the task: at completion the heap's pages are reclaimed instead of merged
// into the parent. This stands in for the generational collection MPL's GC
// performs — short-lived allocations are recycled across tasks and workers,
// which is precisely the memory churn WARDen absorbs. Using it on a task
// whose results are read later is a caller bug (the data is recycled).

// Ctx returns the hardware-thread context currently executing the task.
func (t *Task) Ctx() *machine.Ctx { return t.w.ctx }

// RT returns the runtime.
func (t *Task) RT() *RT { return t.w.rt }

// Alloc bump-allocates size bytes (align-aligned) in the task's leaf heap.
// The data survives the task: at join, the heap merges into the parent.
func (t *Task) Alloc(size, align uint64) mem.Addr {
	return t.heap.alloc(t.w, size, align)
}

// AllocScratch allocates task-local temporary space. Scratch pages return
// to the global pool when the task completes, so they are recycled across
// tasks — the main source of allocation-driven coherence traffic.
func (t *Task) AllocScratch(size, align uint64) mem.Addr {
	if t.scratch == nil {
		t.scratch = t.w.rt.newHeap(nil)
	}
	return t.scratch.alloc(t.w, size, align)
}

// DiscardHeap marks the task's heap for reclamation at completion.
func (t *Task) DiscardHeap() { t.discard = true }

func (t *Task) releaseScratch() {
	if t.scratch == nil {
		return
	}
	t.scratch.unmark(t.w.ctx)
	t.scratch.release(t.w)
	t.scratch = nil
}

// Phase runs body inside a named phase: telemetry sinks see an
// EvPhaseBegin/EvPhaseEnd pair bracketing every simulated operation body
// performs on this thread. Phases nest (LIFO per thread) and cost nothing:
// no instruction is executed and no cycle advances, so marked and unmarked
// runs are byte-identical. Forked children started inside body open their
// own task/steal phases on whichever worker runs them.
func (t *Task) Phase(name string, body func()) {
	t.w.ctx.PhaseBegin(name)
	body()
	t.w.ctx.PhaseEnd(name)
}

// Compute advances the task by n single-cycle instructions of local work.
func (t *Task) Compute(n uint64) { t.w.ctx.Compute(n) }

// Load performs a size-byte load.
func (t *Task) Load(a mem.Addr, size int) uint64 { return t.w.ctx.Load(a, size) }

// Store performs a size-byte store.
func (t *Task) Store(a mem.Addr, size int, v uint64) { t.w.ctx.Store(a, size, v) }

// Join2 runs a and b as parallel children of the task (fork-join). Per
// §4.2 the scheduler unmarks the current heap's WARD regions before the
// fork; each child runs in a fresh leaf heap that is unmarked and merged
// into this task's heap when it completes (Fig. 2).
func (t *Task) Join2(a, b func(*Task)) {
	w := t.w
	rt := w.rt
	// This segment may run concurrently under the PDES engine; the fork
	// count is commutative, so an atomic add keeps it exact and race-free.
	atomic.AddUint64(&rt.Forks, 1)
	w.ctx.Compute(forkSetupCycles)

	// Write the fork record for b into the current heap, then unmark it:
	// the record (and anything else the children will read) flushes to the
	// shared cache ahead of the children's first accesses (§5.3).
	desc := t.heap.alloc(w, 16, 8)
	w.ctx.Store(desc, 8, uint64(uintptr(t.w.id))) // stand-ins for fn pointer
	w.ctx.Store(desc+8, 8, uint64(len(w.items)))  // and argument word
	t.heap.unmark(w.ctx)

	// The cell free list is shared host state and the cell address is
	// simulation-visible: draw it at this thread's serialized position.
	var join mem.Addr
	w.ctx.Host(func() { join = rt.allocCell() })
	w.ctx.Store(join, 8, 0)
	td := &taskDesc{fn: b, parent: t.heap, desc: desc, join: join}
	w.push(td)

	// Run a inline in a fresh child heap.
	ta := &Task{w: w, heap: rt.newHeap(t.heap)}
	w.ctx.PhaseBegin(TaskPhase)
	a(ta)
	ta.finish(t.heap)
	w.ctx.PhaseEnd(TaskPhase)

	if w.popIf(td) {
		// b was not stolen: run it inline too.
		w.ctx.Load(desc, 8)
		w.ctx.Load(desc+8, 8)
		tb := &Task{w: w, heap: rt.newHeap(t.heap)}
		w.ctx.PhaseBegin(TaskPhase)
		b(tb)
		tb.finish(t.heap)
		w.ctx.PhaseEnd(TaskPhase)
	} else {
		// b was stolen: help with other work while waiting for the thief's
		// completion signal (busy-wait synchronization, as in the PBBS
		// runtime the paper describes in §7.2).
		for w.ctx.Load(join, 8) == 0 {
			if other := w.trySteal(); other != nil {
				w.runTask(other)
				continue
			}
			w.ctx.Compute(idleProbeCycles)
		}
	}
	w.ctx.Host(func() { rt.freeCell(join) })
}

// finish completes a child task: scratch is recycled, the heap's WARD
// regions reconcile, and the heap merges into parent (or is reclaimed for a
// discarded task).
func (t *Task) finish(parent *Heap) {
	t.releaseScratch()
	t.heap.unmark(t.w.ctx)
	if t.discard {
		t.heap.release(t.w)
		return
	}
	t.heap.mergeInto(t.w.ctx, parent)
}

// ParallelFor runs body(i) for lo <= i < hi in parallel, splitting the
// range binarily down to grain iterations (the runtime default when grain
// <= 0). The body receives the leaf task executing its chunk.
func (t *Task) ParallelFor(lo, hi, grain int, body func(leaf *Task, i int)) {
	if grain <= 0 {
		grain = t.w.rt.opts.Grain
	}
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(t, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	t.Join2(
		func(a *Task) { a.ParallelFor(lo, mid, grain, body) },
		func(b *Task) { b.ParallelFor(mid, hi, grain, body) },
	)
}

// ParallelRange is ParallelFor over chunks: body receives each leaf
// subrange [lo, hi) whole, for algorithms that want to process runs.
func (t *Task) ParallelRange(lo, hi, grain int, body func(leaf *Task, lo, hi int)) {
	if grain <= 0 {
		grain = t.w.rt.opts.Grain
	}
	if hi-lo <= grain {
		body(t, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	t.Join2(
		func(a *Task) { a.ParallelRange(lo, mid, grain, body) },
		func(b *Task) { b.ParallelRange(mid, hi, grain, body) },
	)
}

// Reduce computes the combination of leaf(lo', hi') over [lo, hi) in
// parallel. combine must be associative.
func (t *Task) Reduce(lo, hi, grain int, leaf func(*Task, int, int) uint64, combine func(uint64, uint64) uint64) uint64 {
	if grain <= 0 {
		grain = t.w.rt.opts.Grain
	}
	if hi-lo <= grain {
		return leaf(t, lo, hi)
	}
	mid := lo + (hi-lo)/2
	var va, vb uint64
	t.Join2(
		func(a *Task) { va = a.Reduce(lo, mid, grain, leaf, combine) },
		func(b *Task) { vb = b.Reduce(mid, hi, grain, leaf, combine) },
	)
	return combine(va, vb)
}
