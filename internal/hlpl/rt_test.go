package hlpl

import (
	"testing"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/topology"
)

func testConfig(sockets int) topology.Config {
	cfg := topology.XeonGold6126(sockets)
	cfg.CoresPerSocket = 4 // keep unit tests fast
	return cfg
}

// runFill runs a parallel tabulate of i*i into a freshly allocated array
// and returns (machine, array, cycles).
func runFill(t *testing.T, proto core.Protocol, n int) (*machine.Machine, U64, uint64) {
	t.Helper()
	m := machine.New(testConfig(1), proto)
	rt := New(m, DefaultOptions())
	var arr U64
	cycles, err := rt.Run(func(root *Task) {
		arr = root.NewU64(n)
		root.WardScope(arr.Base, uint64(n)*8, func() {
			root.ParallelFor(0, n, 32, func(leaf *Task, i int) {
				leaf.Compute(2)
				arr.Set(leaf, i, uint64(i)*uint64(i))
			})
		})
	})
	if err != nil {
		t.Fatalf("%v run: %v", proto, err)
	}
	return m, arr, cycles
}

func TestParallelFillBothProtocols(t *testing.T) {
	const n = 4096
	for _, proto := range core.Protocols("mesi", "warden") {
		m, arr, cycles := runFill(t, proto, n)
		if cycles == 0 {
			t.Fatalf("%v: zero cycles", proto)
		}
		vals := ReadU64(m.Mem(), arr)
		for i, v := range vals {
			if v != uint64(i)*uint64(i) {
				t.Fatalf("%v: arr[%d] = %d, want %d", proto, i, v, uint64(i)*uint64(i))
			}
		}
		if err := m.System().CheckInvariants(); err != nil {
			t.Fatalf("%v invariants: %v", proto, err)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, proto := range core.Protocols("mesi", "warden") {
		_, _, c1 := runFill(t, proto, 2048)
		m2, _, c2 := runFill(t, proto, 2048)
		if c1 != c2 {
			t.Fatalf("%v: cycles differ across identical runs: %d vs %d", proto, c1, c2)
		}
		_, _, c3 := runFill(t, proto, 2048)
		if c3 != c1 {
			t.Fatalf("%v: third run differs: %d vs %d", proto, c3, c1)
		}
		if m2.Counters().Instructions == 0 {
			t.Fatalf("%v: no instructions counted", proto)
		}
	}
}

func TestReduce(t *testing.T) {
	m := machine.New(testConfig(1), core.WARDen)
	rt := New(m, DefaultOptions())
	const n = 3000
	var sum uint64
	_, err := rt.Run(func(root *Task) {
		arr := root.NewU64(n)
		root.ParallelFor(0, n, 64, func(leaf *Task, i int) {
			arr.Set(leaf, i, uint64(i))
		})
		sum = root.Reduce(0, n, 64, func(leaf *Task, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += arr.Get(leaf, i)
			}
			return s
		}, func(a, b uint64) uint64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(n) * (n - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestWardRegionsDrainToZero(t *testing.T) {
	m, _, _ := runFill(t, core.WARDen, 2048)
	if got := m.System().ActiveRegions(); got != 0 {
		t.Fatalf("active regions after run = %d, want 0", got)
	}
	c := m.Counters()
	if c.RegionAdds == 0 || c.RegionRemoves == 0 {
		t.Fatalf("expected region activity, got adds=%d removes=%d", c.RegionAdds, c.RegionRemoves)
	}
	if c.WardAccesses == 0 {
		t.Fatal("expected some accesses to be satisfied under the W state")
	}
}

func TestWardenReducesCoherenceDamage(t *testing.T) {
	mMESI, _, cyclesMESI := runFill(t, core.MESI, 8192)
	mWARD, _, cyclesWARD := runFill(t, core.WARDen, 8192)
	dmgM := mMESI.Counters().Invalidations + mMESI.Counters().Downgrades
	dmgW := mWARD.Counters().Invalidations + mWARD.Counters().Downgrades
	t.Logf("MESI: %d cycles, %d inv+dg; WARDen: %d cycles, %d inv+dg",
		cyclesMESI, dmgM, cyclesWARD, dmgW)
	if dmgW > dmgM {
		t.Errorf("WARDen caused more invalidations+downgrades (%d) than MESI (%d)", dmgW, dmgM)
	}
}

func TestScratchRecycling(t *testing.T) {
	m := machine.New(testConfig(1), core.WARDen)
	rt := New(m, DefaultOptions())
	_, err := rt.Run(func(root *Task) {
		root.ParallelFor(0, 64, 1, func(leaf *Task, i int) {
			s := leaf.NewU64Scratch(512)
			for j := 0; j < 512; j++ {
				s.Set(leaf, j, uint64(i+j))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var pooled int
	for _, runs := range rt.pool {
		pooled += len(runs)
	}
	for _, w := range rt.workers {
		for _, runs := range w.runPool {
			pooled += len(runs)
		}
	}
	if pooled == 0 {
		t.Fatal("scratch runs were not returned to any pool")
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
