// Package hlpl is the high-level parallel language runtime — the MPL
// substitute. It provides nested fork-join parallelism over the simulated
// machine, a work-stealing scheduler, and MPL's heap hierarchy: every task
// gets a fresh heap of bump-allocated pages that merges into its parent's
// heap at join (§2.1 of the paper).
//
// Programs written against this package are disentangled by construction:
// tasks allocate only into their own leaf heap and hold pointers only into
// their root-to-leaf heap path. The runtime exploits that discipline
// exactly as the paper's modified MPL does (§4.2):
//
//   - whenever a new page run is allocated to extend a leaf heap, the run is
//     marked as a WARD region (the Add Region instruction);
//   - the scheduler unmarks the current heap's regions before each fork,
//     proactively flushing fork records to the shared cache (§5.3);
//   - additionally, a completing task unmarks its heap before merging it
//     into the parent. The paper's Sniper prototype executes functionally
//     on the host and would tolerate skipping this, but our simulator
//     models W-state data divergence for real, so the runtime must
//     reconcile a heap before another hardware thread may read it. This is
//     also where the bulk of the proactive-flush benefit materializes.
//
// Scheduler metadata (join cells, deque indices) lives in simulated memory
// that is never WARD-marked, so synchronization takes the plain MESI paths,
// as in the paper.
package hlpl

import (
	"fmt"

	"warden/internal/machine"
	"warden/internal/mem"
)

// Options tunes the runtime. The zero value is not useful; start from
// DefaultOptions.
//
// Note that the unmark-before-fork of §4.2 is not optional: children read
// fork records and other parent-heap data, so a parent's WARD regions must
// reconcile at every fork for program correctness (our simulator models
// W-state data divergence for real, unlike a functionally-coherent timing
// simulator). The ablations instead toggle the two *sources* of WARD
// regions.
type Options struct {
	// MarkHeapPages marks fresh leaf-heap page runs as WARD regions
	// (§4.2's mechanism). The Add/Remove Region instructions are issued
	// under MESI machines too (where they are no-ops), keeping instruction
	// streams comparable.
	MarkHeapPages bool
	// MarkScopes enables the standard library's bulk-operation WARD scopes
	// (Task.WardScope), the analogue of MPL's trusted library primitives.
	MarkScopes bool
	// Grain is the default sequential grain for ParallelFor when the caller
	// passes grain <= 0.
	Grain int
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{MarkHeapPages: true, MarkScopes: true, Grain: 64}
}

// Scheduler cost constants (simulated cycles). They approximate the
// instruction counts of a lean work-stealing runtime.
const (
	forkSetupCycles = 24 // create task descriptor, child heap bookkeeping
	taskSetupCycles = 18 // scheduler dispatch of a (possibly stolen) task
	joinMergeCycles = 14 // heap merge into parent
	runAllocCycles  = 22 // page-run acquisition (pool hit) in the allocator
	allocBumpCycles = 2  // pointer-bump allocation fast path
	idleProbeCycles = 40 // failed steal attempt backoff
	stealProbeLimit = 4  // victims probed per steal round
)

// RT is a runtime instance bound to one machine. Create with New, then call
// Run once.
type RT struct {
	m    *machine.Machine
	opts Options

	workers []*worker
	pool    map[int][]mem.Addr // free page runs keyed by page count (LIFO)
	cells   []mem.Addr         // free 64-byte runtime cells
	cellTop mem.Addr           // bump space for fresh cells
	cellEnd mem.Addr
	done    bool // set/read only via Ctx.Host (shared across workers)

	// Stats (host-side, for tests and reports). Forks is bumped with
	// atomic.AddUint64: fork setup runs in body segments that the PDES
	// engine may execute concurrently, and the count is commutative.
	// Steals is only mutated in post-load (serialized) segments.
	Forks  uint64
	Steals uint64
}

// New creates a runtime for m.
func New(m *machine.Machine, opts Options) *RT {
	if opts.Grain <= 0 {
		opts.Grain = DefaultOptions().Grain
	}
	return &RT{m: m, opts: opts, pool: make(map[int][]mem.Addr)}
}

// Machine returns the runtime's machine.
func (rt *RT) Machine() *machine.Machine { return rt.m }

// Run executes root as the root task of the spawn tree, with every hardware
// thread of the machine participating as a worker. It returns the total
// simulated cycles.
func (rt *RT) Run(root func(*Task)) (uint64, error) {
	if rt.workers != nil {
		return 0, fmt.Errorf("hlpl: RT.Run called twice")
	}
	n := rt.m.Config().Threads()
	rt.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		rt.workers[i] = newWorker(rt, i)
	}
	bodies := make([]func(*machine.Ctx), n)
	for i := 0; i < n; i++ {
		i := i
		bodies[i] = func(ctx *machine.Ctx) {
			w := rt.workers[i]
			w.ctx = ctx
			if i == 0 {
				h := rt.newHeap(nil)
				t := &Task{w: w, heap: h}
				ctx.PhaseBegin(RootPhase)
				root(t)
				t.releaseScratch()
				h.unmark(ctx)
				ctx.PhaseEnd(RootPhase)
				// done is shared host state: setting it through Host pins
				// the write to the root thread's exact serialized position,
				// so workers' Host-reads observe it at the same simulated
				// instant under both engine modes.
				ctx.Host(func() { rt.done = true })
				return
			}
			w.loop()
		}
	}
	return rt.m.Run(bodies)
}

// allocCell returns a cache-block-sized cell of runtime memory (join cells,
// deque control words). Cells are recycled, generating the runtime's own
// true-sharing coherence traffic, and are never WARD-marked.
func (rt *RT) allocCell() mem.Addr {
	if n := len(rt.cells); n > 0 {
		a := rt.cells[n-1]
		rt.cells = rt.cells[:n-1]
		return a
	}
	if rt.cellTop >= rt.cellEnd {
		base := rt.m.Mem().AllocPages(4)
		rt.cellTop, rt.cellEnd = base, base+4*mem.PageSize
	}
	a := rt.cellTop
	rt.cellTop += 64
	return a
}

func (rt *RT) freeCell(a mem.Addr) { rt.cells = append(rt.cells, a) }

// getRun pops a page run from the worker's local pool, the global pool, or
// fresh address space, in that order. Like MPL's per-processor page lists,
// workers prefer their own recently freed runs (warm in their caches);
// stolen work and imbalance still circulate runs between workers, which is
// what makes allocation-heavy programs generate coherence traffic under
// MESI: a cross-worker reused page's blocks are still cached by the worker
// that last wrote them.
func (rt *RT) getRun(w *worker, pages int) mem.Addr {
	if rs := w.runPool[pages]; len(rs) > 0 {
		a := rs[len(rs)-1]
		w.runPool[pages] = rs[:len(rs)-1]
		return a
	}
	// The global pool and the address-space bump allocator are shared host
	// state, and the address handed out feeds back into simulated cache
	// behaviour — it must be drawn at this thread's exact serialized
	// position (Ctx.Host) to stay deterministic under the PDES engine.
	var a mem.Addr
	w.ctx.Host(func() {
		if rs := rt.pool[pages]; len(rs) > 0 {
			a = rs[len(rs)-1]
			rt.pool[pages] = rs[:len(rs)-1]
			return
		}
		a = rt.m.Mem().AllocPages(pages)
	})
	return a
}

// putRun returns a run to the freeing worker's local pool, spilling to the
// global pool beyond a small cap.
func (rt *RT) putRun(w *worker, base mem.Addr, pages int) {
	const localCap = 8
	if len(w.runPool[pages]) < localCap {
		w.runPool[pages] = append(w.runPool[pages], base)
		return
	}
	// Spilling to the shared pool mutates shared host state: serialize it
	// (see getRun).
	w.ctx.Host(func() { rt.pool[pages] = append(rt.pool[pages], base) })
}
