package hlpl_test

import (
	"reflect"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/stats"
	"warden/internal/topology"
)

// runOnce executes one small benchmark end-to-end on a fresh machine and
// returns its full measurement state.
func runOnce(t *testing.T, name string) (uint64, stats.Counters) {
	t.Helper()
	e, err := pbbs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	m := machine.New(cfg, core.WARDen)
	w := e.New(e.Small)
	if w.Prepare != nil {
		w.Prepare(m)
	}
	rt := hlpl.New(m, hlpl.DefaultOptions())
	cycles, err := rt.Run(w.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	return cycles, *m.Counters()
}

// TestRunDeterministicUnderRace guards the engine's "exactly one goroutine
// runs, strict (clock, id) order" invariant, which the inline-lease and
// direct-handoff fast paths depend on: two end-to-end runs of the same
// benchmark must report bit-identical cycle counts and counters. Running
// this under `go test -race` (CI does) additionally proves the handoff
// protocol establishes happens-before edges for all simulator state.
func TestRunDeterministicUnderRace(t *testing.T) {
	for _, name := range []string{"fib", "primes"} {
		c1, ctr1 := runOnce(t, name)
		c2, ctr2 := runOnce(t, name)
		if c1 != c2 {
			t.Fatalf("%s: cycles differ across runs: %d vs %d", name, c1, c2)
		}
		if !reflect.DeepEqual(ctr1, ctr2) {
			t.Fatalf("%s: counters differ across runs:\n%+v\n%+v", name, ctr1, ctr2)
		}
	}
}
