package core

import (
	"testing"

	"warden/internal/cache"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

func TestMOESIOwnedStateOnDirtySharing(t *testing.T) {
	s, m, ctr := testSystem(MOESI, 1)
	a := m.Alloc(64, 64)
	write64(s, 0, a, 7) // core 0: M
	read64(s, 1, a)     // MOESI: core 0 -> O (no writeback), core 1 -> S
	l1, _ := s.PrivateCaches()
	if st := l1[0].Peek(a).State; st != cache.Owned {
		t.Fatalf("dirty sharer state = %v, want O", st)
	}
	if st := l1[1].Peek(a).State; st != cache.Shared {
		t.Fatalf("reader state = %v, want S", st)
	}
	if ctr.Msgs[stats.DataDir] != 0 {
		t.Fatal("MOESI dirty sharing wrote back to the LLC")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// More readers are served by the owner, still without writebacks.
	read64(s, 2, a)
	read64(s, 3, a)
	if ctr.Msgs[stats.DataDir] != 0 {
		t.Fatal("later readers triggered a writeback")
	}
	if v, _ := read64(s, 3, a); v != 7 {
		t.Fatalf("read %d, want 7", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESICleanSharingStaysShared(t *testing.T) {
	s, m, _ := testSystem(MOESI, 1)
	a := m.Alloc(64, 64)
	read64(s, 0, a) // E, clean
	read64(s, 1, a) // clean downgrade: plain S/S, no O
	l1, _ := s.PrivateCaches()
	if st := l1[0].Peek(a).State; st != cache.Shared {
		t.Fatalf("clean ex-owner state = %v, want S", st)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIOwnerUpgradeInvalidatesSharers(t *testing.T) {
	s, m, ctr := testSystem(MOESI, 1)
	a := m.Alloc(64, 64)
	write64(s, 0, a, 1)
	read64(s, 1, a)
	read64(s, 2, a)
	inv := ctr.Invalidations
	write64(s, 0, a, 2) // owner upgrades O -> M: both sharers invalidated
	if got := ctr.Invalidations - inv; got != 4 {
		t.Fatalf("invalidations = %d, want 4 (2 sharers x 2 caches)", got)
	}
	if v, _ := read64(s, 3, a); v != 2 {
		t.Fatalf("read %d, want 2", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESINonOwnerWriteTakesOwnership(t *testing.T) {
	s, m, _ := testSystem(MOESI, 1)
	a := m.Alloc(64, 64)
	write64(s, 0, a, 1)
	read64(s, 1, a)     // 0: O, 1: S
	write64(s, 2, a, 9) // third core takes M; 0 and 1 invalidated
	l1, _ := s.PrivateCaches()
	if l1[0].Peek(a) != nil || l1[1].Peek(a) != nil {
		t.Fatal("old holders still valid")
	}
	if st := l1[2].Peek(a).State; st != cache.Modified {
		t.Fatalf("new owner state = %v, want M", st)
	}
	if v, _ := read64(s, 3, a); v != 9 {
		t.Fatalf("read %d, want 9", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIOwnedEvictionWritesBack(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 2
	cfg.L1Size = 1 << 10
	cfg.L2Size = 2 << 10
	m := mem.New(0)
	ctr := &stats.Counters{}
	s := NewSystem(cfg, MOESI, m, ctr)
	base := m.Alloc(1<<14, mem.PageSize)
	// Make many O blocks at core 0, then thrash core 0's cache so they
	// evict.
	for i := 0; i < 64; i++ {
		write64(s, 0, base+mem.Addr(i*64), uint64(i)+1)
		read64(s, 1, base+mem.Addr(i*64))
	}
	for i := 64; i < 256; i++ {
		write64(s, 0, base+mem.Addr(i*64), uint64(i)+1)
	}
	if ctr.Msgs[stats.PutM] == 0 {
		t.Fatal("no owned/dirty writebacks despite thrashing")
	}
	for i := 0; i < 256; i++ {
		if v, _ := read64(s, 1, base+mem.Addr(i*64)); v != uint64(i)+1 {
			t.Fatalf("block %d = %d", i, v)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s.DrainAll()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if got := m.ReadUint(base+mem.Addr(i*64), 8); got != uint64(i)+1 {
			t.Fatalf("post-drain block %d = %d", i, got)
		}
	}
}

// TestMOESIMatchesMESIResults: identical programs must compute identical
// memory contents under all three protocols.
func TestMOESIMatchesMESIResults(t *testing.T) {
	final := func(proto Protocol) []uint64 {
		s, m, _ := testSystem(proto, 2)
		base := m.Alloc(1<<13, mem.PageSize)
		for i := 0; i < 3000; i++ {
			c := i % 8
			a := base + mem.Addr((i*2654435761)%(1<<13-8)&^7)
			switch i % 3 {
			case 0:
				write64(s, c, a, uint64(i))
			case 1:
				read64(s, c, a)
			case 2:
				s.RMW(c, a, 8, func(v uint64) uint64 { return v + 1 })
			}
		}
		s.DrainAll()
		out := make([]uint64, 1<<10)
		for i := range out {
			out[i] = m.ReadUint(base+mem.Addr(i*8), 8)
		}
		return out
	}
	mesi := final(MESI)
	moesi := final(MOESI)
	warden := final(WARDen)
	for i := range mesi {
		if mesi[i] != moesi[i] || mesi[i] != warden[i] {
			t.Fatalf("word %d differs: MESI %d, MOESI %d, WARDen %d", i, mesi[i], moesi[i], warden[i])
		}
	}
}
