package core

// Protocol invariant checking. CheckInvariants is the whole-system sweep
// used by the test suite and the end of wardentrace -check runs; the
// per-block checkBlockInvariant is also called incrementally by the Checker
// sink (checker.go) after each directory transaction.

import (
	"fmt"
	"sort"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
)

// CheckInvariants verifies the protocol's global invariants: single-writer/
// multiple-reader for MESI states, directory/private-cache agreement, L1⊆L2
// inclusion, and W-state bookkeeping. It returns the first violation found.
func (s *System) CheckInvariants() error {
	// Collect directory entries in address order for determinism.
	var addrs []mem.Addr
	s.dir.ForEach(func(a mem.Addr, _ *coherence.Entry) { addrs = append(addrs, a) })
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, a := range addrs {
		if err := s.checkBlockInvariant(a, s.dir.Lookup(a)); err != nil {
			return err
		}
	}
	// Inclusion and reverse-mapping: every valid private line is tracked.
	for c := range s.l1 {
		var err error
		s.l1[c].ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			l2ln := s.l2[c].Peek(ln.Addr)
			if l2ln == nil {
				err = fmt.Errorf("core %d: L1 holds %#x but L2 does not (inclusion)", c, uint64(ln.Addr))
			} else if l2ln.State != ln.State {
				err = fmt.Errorf("core %d: L1 state %v != L2 state %v for %#x", c, ln.State, l2ln.State, uint64(ln.Addr))
			}
		})
		if err != nil {
			return err
		}
		s.l2[c].ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			if s.dir.Lookup(ln.Addr) == nil {
				err = fmt.Errorf("core %d: L2 holds %#x with no directory entry", c, uint64(ln.Addr))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// checkBlockInvariant verifies the directory entry e for block a against
// every private cache. The per-state rules are the registered protocol's
// (ProtocolImpl.CheckBlock); the generic write-mask bookkeeping rules run
// here for every protocol. e may be nil (no entry), in which case the
// only requirement is that no write masks linger.
func (s *System) checkBlockInvariant(a mem.Addr, e *coherence.Entry) error {
	if e == nil {
		for c := range s.wcopies {
			if wc, ok := s.wcopies[c][a]; ok && wc.mask != 0 {
				return fmt.Errorf("core %d holds a write mask for %#x with no directory entry", c, uint64(a))
			}
		}
		return nil
	}
	if err := s.impl.CheckBlock(a, e); err != nil {
		return err
	}
	// Write masks may exist only under a W entry, and only at holders whose
	// private line is actually in the W state.
	for c := range s.wcopies {
		wc, ok := s.wcopies[c][a]
		if !ok || wc.mask == 0 {
			continue
		}
		if e.State != cache.Ward {
			return fmt.Errorf("core %d holds a write mask for %#x but the directory entry is %v", c, uint64(a), e.State)
		}
		if ln := s.l2[c].Peek(a); ln == nil || ln.State != cache.Ward {
			return fmt.Errorf("core %d holds a write mask for W block %#x but its L2 has %v", c, uint64(a), lnState(s.l2[c].Peek(a)))
		}
	}
	return nil
}

// regionActive reports whether region id is currently registered.
func (s *System) regionActive(id RegionID) bool {
	_, ok := s.regions.byID[id]
	return ok
}

func lnState(ln *cache.Line) cache.State {
	if ln == nil {
		return cache.Invalid
	}
	return ln.State
}
