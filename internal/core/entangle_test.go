package core

import (
	"strings"
	"testing"

	"warden/internal/mem"
)

func TestEntanglementDetectionFlagsViolation(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	s.SetEntanglementDetection(true)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)

	write64(s, 0, a, 42)
	read64(s, 1, a) // cross-thread RAW in a WARD region
	if ctr.EntanglementViolations == 0 {
		t.Fatal("entangled read not detected")
	}
	vs := s.Violations()
	if len(vs) == 0 {
		t.Fatal("no violation retained")
	}
	v := vs[0]
	if v.Reader != 1 || v.Writer != 0 || v.Addr != a {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "core 1") {
		t.Fatalf("String() = %q", v.String())
	}
	s.RemoveRegion(0, id)
}

func TestEntanglementDetectionNoFalsePositives(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	s.SetEntanglementDetection(true)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)

	// Disjoint per-core writes plus reads of one's own writes: WARD-legal.
	for c := 0; c < 4; c++ {
		write64(s, c, a+mem.Addr(c*8), uint64(c))
	}
	for c := 0; c < 4; c++ {
		read64(s, c, a+mem.Addr(c*8))
	}
	// Reading a sector nobody wrote is also legal, even in a block others
	// wrote elsewhere.
	read64(s, 3, a+128)
	if ctr.EntanglementViolations != 0 {
		t.Fatalf("%d false positives (violations: %v)", ctr.EntanglementViolations, s.Violations())
	}
	s.RemoveRegion(0, id)
	// Post-reconcile reads are coherent, never violations.
	read64(s, 2, a)
	if ctr.EntanglementViolations != 0 {
		t.Fatal("post-reconcile read flagged")
	}
}

func TestEntanglementDetectionOffByDefault(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	write64(s, 0, a, 1)
	read64(s, 1, a)
	if ctr.EntanglementViolations != 0 || len(s.Violations()) != 0 {
		t.Fatal("detection ran while disabled")
	}
	s.RemoveRegion(0, id)
}

func TestEntanglementRetentionCap(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	s.SetEntanglementDetection(true)
	a := m.Alloc(1<<14, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+1<<14)
	for i := 0; i < 64; i++ {
		off := mem.Addr(i * 64)
		write64(s, 0, a+off, 1)
		read64(s, 1, a+off)
	}
	if ctr.EntanglementViolations != 64 {
		t.Fatalf("violations = %d, want 64", ctr.EntanglementViolations)
	}
	if len(s.Violations()) != maxRetainedViolations {
		t.Fatalf("retained %d, want cap %d", len(s.Violations()), maxRetainedViolations)
	}
	s.RemoveRegion(0, id)
}
