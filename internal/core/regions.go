// Package core implements the paper's contribution: the WARDen cache
// coherence protocol (§5) layered over a directory-based MESI protocol, the
// WARD region table the directory consults (§6.1), and the reconciliation
// process that returns WARD blocks to the MESI states (§5.2).
//
// The memory system in this package serves both protocols: with Protocol
// MESI it is a plain directory MESI hierarchy; with Protocol WARDen the
// directory additionally consults the region table, moves in-region blocks
// to the W state (disabling invalidations and downgrades for them), and
// reconciles on region removal. Legacy traffic — any block outside an
// active region — takes the unmodified MESI paths, which is the paper's
// backward-compatibility argument.
package core

import (
	"sort"

	"warden/internal/mem"
)

// RegionID names an active WARD region. The zero RegionID is never issued
// and acts as a null region (AddRegion returns it when the protocol is MESI
// or the table is full; RemoveRegion ignores it).
type RegionID uint32

// NullRegion is the invalid region id.
const NullRegion RegionID = 0

type region struct {
	id     RegionID
	lo, hi mem.Addr // [lo, hi)
	// blocks are the block addresses currently held in the W state under
	// this region; they are reconciled when the region is removed.
	blocks map[mem.Addr]struct{}
}

// regionTable is the directory's WARD region storage (§6.1): a bounded
// associative structure holding [lo, hi) address intervals. The hardware
// proposal stores regions as CAM entries of two pointers; we model the same
// capacity bound and lookup semantics (an address matches if lo <= a < hi;
// if an address is somehow in more than one region it is simply WARD).
type regionTable struct {
	capacity int
	nextID   RegionID
	byID     map[RegionID]*region
	// sorted is ordered by lo for binary-search lookup; intervals from the
	// HLPL runtime are disjoint, but overlap is tolerated (first match
	// wins, which still answers "is this address in any region").
	sorted []*region
}

func newRegionTable(capacity int) *regionTable {
	return &regionTable{
		capacity: capacity,
		nextID:   1,
		byID:     make(map[RegionID]*region),
	}
}

// add registers [lo, hi) and returns its id, or (NullRegion, false) if the
// table is at capacity or the interval is empty.
func (t *regionTable) add(lo, hi mem.Addr) (RegionID, bool) {
	if lo >= hi || len(t.byID) >= t.capacity {
		return NullRegion, false
	}
	r := &region{id: t.nextID, lo: lo, hi: hi, blocks: make(map[mem.Addr]struct{})}
	t.nextID++
	t.byID[r.id] = r
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].lo > lo })
	t.sorted = append(t.sorted, nil)
	copy(t.sorted[i+1:], t.sorted[i:])
	t.sorted[i] = r
	return r.id, true
}

// lookup returns the id of a region containing a, if any.
func (t *regionTable) lookup(a mem.Addr) (RegionID, bool) {
	// Find the last region with lo <= a, then scan left while regions could
	// still cover a. With disjoint intervals the first probe decides.
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].lo > a })
	for j := i - 1; j >= 0; j-- {
		r := t.sorted[j]
		if a < r.hi {
			return r.id, true
		}
		// Disjoint, sorted intervals: nothing further left can cover a
		// unless intervals nest; tolerate one level of slop by continuing
		// only while the gap is zero.
		if r.hi <= a && j == i-1 {
			continue
		}
		break
	}
	return NullRegion, false
}

// remove deletes region id and returns its W-state blocks in ascending
// address order (the deterministic reconciliation order).
func (t *regionTable) remove(id RegionID) (blocks []mem.Addr, ok bool) {
	r, found := t.byID[id]
	if !found {
		return nil, false
	}
	delete(t.byID, id)
	for i, s := range t.sorted {
		if s == r {
			t.sorted = append(t.sorted[:i], t.sorted[i+1:]...)
			break
		}
	}
	blocks = make([]mem.Addr, 0, len(r.blocks))
	for b := range r.blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	return blocks, true
}

// noteBlock records that block entered the W state under region id.
func (t *regionTable) noteBlock(id RegionID, block mem.Addr) {
	if r, ok := t.byID[id]; ok {
		r.blocks[block] = struct{}{}
	}
}

// forgetBlock records that block left the W state (eviction-time flush).
func (t *regionTable) forgetBlock(id RegionID, block mem.Addr) {
	if r, ok := t.byID[id]; ok {
		delete(r.blocks, block)
	}
}

// len reports the number of active regions.
func (t *regionTable) len() int { return len(t.byID) }
