package core

// The MESI family: the plain directory MESI baseline and MOESI, which is
// MESI with the Owned state (a dirty block shared without writeback, the
// owner sourcing data). Both are one implementation with an `owned` flag;
// the transaction bodies (mesiGetS/mesiGetM) live in protocol.go because
// WARDen reuses them for out-of-region "legacy" traffic.

import (
	"fmt"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
)

// mesiImpl is the eagerly coherent MESI/MOESI state machine.
type mesiImpl struct {
	s *System
	// owned enables MOESI's Owned state: a dirty block downgraded by a
	// read stays dirty at its owner instead of writing back.
	owned bool
}

func newMESI(s *System) ProtocolImpl  { return &mesiImpl{s: s} }
func newMOESI(s *System) ProtocolImpl { return &mesiImpl{s: s, owned: true} }

// DirTransact implements ProtocolImpl: the plain MESI/MOESI read and
// write transactions. The directory never holds W entries under this
// family, so no reconcile path exists.
func (p *mesiImpl) DirTransact(core int, block mem.Addr, mode AccessMode, e *coherence.Entry, lat uint64) (cache.State, uint64) {
	switch mode {
	case ModeRead:
		return p.s.mesiGetS(core, block, e, &lat, p.owned), lat
	default:
		return p.s.mesiGetM(core, block, e, &lat, p.owned), lat
	}
}

// PrivHit implements ProtocolImpl: reads hit on any valid line; writes
// and atomics hit on M and silently upgrade E; S needs an upgrade.
func (p *mesiImpl) PrivHit(core int, block mem.Addr, st cache.State, mode AccessMode) (bool, cache.State) {
	return p.s.mesiPrivHit(core, block, st, mode)
}

// EvictVictim implements ProtocolImpl via the shared coherent-eviction
// actions (protocol.go); the W case there is unreachable here.
func (p *mesiImpl) EvictVictim(core int, ev cache.Eviction, e *coherence.Entry) {
	p.s.evictCoherentVictim(core, ev, e)
}

// SyncPoint implements ProtocolImpl: eager coherence needs no sync hook.
func (p *mesiImpl) SyncPoint(core int) uint64 { return 0 }

// AddRegion implements ProtocolImpl: on legacy hardware the instruction
// is a cheap no-op and no region becomes active.
func (p *mesiImpl) AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool) {
	return NullRegion, regionOpCycles, false
}

// RemoveRegion implements ProtocolImpl: a no-op, matching AddRegion.
func (p *mesiImpl) RemoveRegion(core int, id RegionID) uint64 { return regionOpCycles }

// Drain implements ProtocolImpl via the shared coherent drain; the
// W-reconcile pass there finds nothing under this family.
func (p *mesiImpl) Drain() { p.s.drainCoherent() }

// CheckBlock implements ProtocolImpl: the MESI-family per-state
// invariants, with W entries illegal.
func (p *mesiImpl) CheckBlock(a mem.Addr, e *coherence.Entry) error {
	return p.s.checkCoherentBlock(a, e, false)
}

// mesiPrivHit decides whether a privately cached line in state st
// satisfies the access without a directory transaction, returning the
// (possibly silently upgraded) state. Shared by the MESI family and
// WARDen (whose W lines also hit here).
func (s *System) mesiPrivHit(core int, block mem.Addr, st cache.State, mode AccessMode) (bool, cache.State) {
	switch mode {
	case ModeRead:
		return true, st
	case ModeWrite:
		switch st {
		case cache.Modified, cache.Ward:
			return true, st
		case cache.Exclusive:
			// Silent E->M upgrade; the directory's E entry already names
			// this core as owner.
			s.setPrivState(core, block, cache.Modified)
			return true, cache.Modified
		}
		return false, st // S needs an upgrade
	case ModeAtomic:
		switch st {
		case cache.Modified:
			return true, st
		case cache.Exclusive:
			s.setPrivState(core, block, cache.Modified)
			return true, cache.Modified
		}
		return false, st // S upgrade; Ward must reconcile at the directory
	}
	panic("core: unknown access mode")
}

// checkCoherentBlock verifies the MESI-family per-state invariants for
// block a's directory entry e: at most one M/E holder, sharer bitsets
// consistent with private-cache states, and (when wardOK) W entries only
// while their region is active. Shared by the MESI family (wardOK=false)
// and WARDen (wardOK=true).
func (s *System) checkCoherentBlock(a mem.Addr, e *coherence.Entry, wardOK bool) error {
	switch e.State {
	case cache.Exclusive:
		ln := s.l2[e.Owner].Peek(a)
		if ln == nil || (ln.State != cache.Exclusive && ln.State != cache.Modified) {
			return fmt.Errorf("dir says core %d owns %#x but its L2 has %v", e.Owner, uint64(a), lnState(ln))
		}
		for c := range s.l2 {
			if c != e.Owner && s.l2[c].Peek(a) != nil {
				return fmt.Errorf("block %#x owned by core %d also valid in core %d", uint64(a), e.Owner, c)
			}
		}
	case cache.Owned:
		ln := s.l2[e.Owner].Peek(a)
		if ln == nil || ln.State != cache.Owned {
			return fmt.Errorf("dir says core %d owns %#x (O) but its L2 has %v", e.Owner, uint64(a), lnState(ln))
		}
		for c := range s.l2 {
			if c == e.Owner {
				continue
			}
			l := s.l2[c].Peek(a)
			if e.Sharers.Has(c) {
				if l == nil || l.State != cache.Shared {
					return fmt.Errorf("dir says core %d shares O-block %#x but its L2 has %v", c, uint64(a), lnState(l))
				}
			} else if l != nil {
				return fmt.Errorf("core %d holds O-block %#x (%v) but is not a sharer", c, uint64(a), l.State)
			}
		}
	case cache.Shared:
		if e.Sharers.Empty() {
			return fmt.Errorf("shared block %#x with empty sharer set", uint64(a))
		}
		for c := range s.l2 {
			ln := s.l2[c].Peek(a)
			if e.Sharers.Has(c) {
				if ln == nil || ln.State != cache.Shared {
					return fmt.Errorf("dir says core %d shares %#x but its L2 has %v", c, uint64(a), lnState(ln))
				}
			} else if ln != nil {
				return fmt.Errorf("core %d holds %#x (%v) but is not in sharer set", c, uint64(a), ln.State)
			}
		}
	case cache.Ward:
		if !wardOK {
			return fmt.Errorf("block %#x in W state under %v", uint64(a), s.proto)
		}
		if !s.regionActive(RegionID(e.Region)) {
			return fmt.Errorf("W block %#x belongs to region %d, which is not active", uint64(a), e.Region)
		}
		for c := range s.l2 {
			ln := s.l2[c].Peek(a)
			if e.Sharers.Has(c) {
				if ln == nil || (ln.State != cache.Ward && ln.State != cache.Shared) {
					return fmt.Errorf("dir says core %d holds W block %#x but its L2 has %v", c, uint64(a), lnState(ln))
				}
			} else if ln != nil {
				return fmt.Errorf("core %d holds W block %#x but is not in holder set", c, uint64(a))
			}
		}
	default:
		return fmt.Errorf("directory entry for %#x in state %v", uint64(a), e.State)
	}
	return nil
}
