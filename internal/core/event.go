package core

// The structured coherence event stream. Every instruction and every
// coherence transaction in the simulator can be observed as one Event
// delivered to a Sink attached via SetSink. With no sink attached the
// access paths pay only a nil check: no snapshots are taken and no Event
// values are built, so nil-sink runs are byte-for-byte identical to a build
// without the event layer at all.
//
// Two layers emit events:
//
//   - internal/machine emits one instruction-level event per retired
//     memory-system instruction (EvLoad, EvStore, EvAtomic, EvCompute,
//     EvFence, EvRegionAdd, EvRegionRemove) plus one EvDrain after the
//     end-of-run DrainAll. These carry the hardware thread, the address
//     operands, and the counter deltas for the whole instruction.
//   - internal/core emits protocol-internal events from within those
//     instructions: EvTransaction for each directory transaction, EvEvict
//     for each L2 capacity eviction, and EvReconcile for each W-block
//     reconciliation. These carry the directory transition (state, owner,
//     sharer set before and after).
//
// Protocol-internal events therefore nest inside instruction-level events,
// and their counter deltas are subsets of the enclosing instruction's
// delta. Seq orders all events globally in simulated execution order.

import (
	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
)

// EventKind identifies what an Event describes.
type EventKind int

const (
	// Instruction-level events, emitted by internal/machine.
	EvLoad         EventKind = iota // a load instruction retired
	EvStore                         // a store instruction retired
	EvAtomic                        // an atomic RMW retired
	EvCompute                       // a compute delay elapsed
	EvFence                         // a fence (store-buffer drain) retired
	EvRegionAdd                     // an Add Region instruction retired
	EvRegionRemove                  // a Remove Region instruction retired
	EvDrain                         // the end-of-run DrainAll completed

	// Protocol-internal events, emitted by internal/core.
	EvTransaction // one directory transaction (miss or upgrade)
	EvEvict       // one private-L2 capacity eviction
	EvReconcile   // one W block reconciled

	// Phase markers, emitted by the HLPL runtime (and Ctx.PhaseBegin/
	// PhaseEnd callers) around fork/join task scopes and user-named program
	// phases. They execute no simulated instruction and cost zero cycles:
	// with no sink attached they are not emitted at all, so attaching a sink
	// still cannot change simulated behaviour.
	EvPhaseBegin // a named phase opened on Thread at Cycle
	EvPhaseEnd   // the innermost open phase on Thread closed
)

// String names the event kind (used by the JSONL encoder and reports).
func (k EventKind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvAtomic:
		return "atomic"
	case EvCompute:
		return "compute"
	case EvFence:
		return "fence"
	case EvRegionAdd:
		return "region_add"
	case EvRegionRemove:
		return "region_remove"
	case EvDrain:
		return "drain"
	case EvTransaction:
		return "transaction"
	case EvEvict:
		return "evict"
	case EvReconcile:
		return "reconcile"
	case EvPhaseBegin:
		return "phase_begin"
	case EvPhaseEnd:
		return "phase_end"
	}
	return "unknown"
}

// Instruction reports whether k is an instruction-level event (emitted by
// the machine layer, safe points for whole-system invariant checks) rather
// than a protocol-internal one (which may observe mid-transaction state).
func (k EventKind) Instruction() bool { return k <= EvDrain }

// RMWKind distinguishes the atomic operations an EvAtomic event can carry.
type RMWKind int

const (
	RMWNone     RMWKind = iota
	RMWFetchAdd         // Arg1 = delta
	RMWCAS              // Arg1 = expected old, Arg2 = new
)

// String names the RMW kind.
func (k RMWKind) String() string {
	switch k {
	case RMWFetchAdd:
		return "fetch_add"
	case RMWCAS:
		return "cas"
	}
	return "none"
}

// Event is one observation from the simulated memory system. Which fields
// are meaningful depends on Kind; unused fields are zero. Events are valid
// only for the duration of the Sink.Event call — sinks that retain data
// must copy what they need (Data in particular aliases machine-owned
// scratch space).
type Event struct {
	Seq    uint64    // global sequence number, dense from 0
	Kind   EventKind // what happened
	Thread int       // hardware thread driving the op (-1: none/system)
	Core   int       // core performing the op (-1 for EvReconcile/EvDrain)
	Cycle  uint64    // issuing thread's local clock when the op was issued
	Label  string    // phase name (EvPhaseBegin/EvPhaseEnd only)

	// Operands (instruction-level kinds, and Addr/Block for all).
	Addr  mem.Addr // instruction address operand; block address for internal events
	Block mem.Addr // cache-block address of Addr
	Size  int      // access size in bytes (loads/stores/atomics)

	Mode AccessMode // permission the access needed (EvLoad/EvStore/EvAtomic/EvTransaction)
	RMW  RMWKind    // EvAtomic: which atomic op
	Arg1 uint64     // EvStore: value (Size<=8); EvAtomic: old/delta; EvCompute: cycles; EvReconcile: writers
	Arg2 uint64     // EvAtomic (CAS): new value; EvReconcile: merged sector mask
	Data []byte     // EvStore with Size>8: the stored bytes (borrowed, copy to keep)

	// Region instructions (EvRegionAdd/EvRegionRemove) and W-state events.
	Lo, Hi   mem.Addr // EvRegionAdd: requested interval
	Region   RegionID // region id involved (NullRegion if none)
	RegionOK bool     // EvRegionAdd: whether the region table accepted it

	// Directory transition (EvTransaction/EvEvict/EvReconcile). Before is
	// the entry state on entry (Invalid if absent), After on exit.
	DirBefore, DirAfter         cache.State
	OwnerBefore, OwnerAfter     int // -1 when the entry is absent
	SharersBefore, SharersAfter coherence.Bitset

	LineState cache.State // EvEvict: state of the victim line

	Latency uint64         // cycles charged to the requester (where defined)
	Ctrs    stats.Snapshot // counter deltas attributable to this event

	// Advance is the exact clock advance the engine charged the issuing
	// thread for this instruction — the value the machine's op handler
	// returned, which is the only quantity ever added to a thread clock.
	// Summing Advance over one thread's instruction-level events therefore
	// reconstructs that thread's final clock exactly, and the run's cycle
	// count is the maximum over threads; internal/attrib builds its
	// zero-residue reconciliation on this identity. Zero for
	// protocol-internal events, phase markers, and EvDrain (none of which
	// advance any thread clock). Advance can differ from Latency: a store
	// charges issue+stall to the clock while Latency reports the memory
	// latency the store buffer will absorb.
	Advance uint64
}

// Sink receives events. Implementations must not retain ev or ev.Data past
// the call. Sinks run synchronously on the simulation's single thread, so
// they need no locking, but everything they do is pure observation: a sink
// must not mutate the system.
type Sink interface {
	Event(ev *Event)
}

// multiSink fans one event out to several sinks in order.
type multiSink []Sink

func (m multiSink) Event(ev *Event) {
	for _, s := range m {
		s.Event(ev)
	}
}

// Sinks combines several sinks into one; nil entries are dropped. Returns
// nil if none remain (keeping the nil-sink fast path intact).
func Sinks(sinks ...Sink) Sink {
	var m multiSink
	for _, s := range sinks {
		if s != nil {
			m = append(m, s)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// SetSink attaches sink to the system (nil detaches). The sequence counter
// continues across re-attachments so Seq stays globally unique.
func (s *System) SetSink(sink Sink) { s.sink = sink }

// Sink returns the currently attached sink (nil if none). The machine layer
// uses this to decide whether to build instruction-level events.
func (s *System) Sink() Sink { return s.sink }

// SetEventThread records the hardware thread about to drive accesses, for
// attribution in emitted events. The machine layer calls this only when a
// sink is attached; -1 means "no thread" (system activity such as DrainAll).
func (s *System) SetEventThread(t int) { s.evThread = t }

// EventThread returns the thread set by SetEventThread (-1 if none).
func (s *System) EventThread() int { return s.evThread }

// SetEventCycle records the issuing thread's local clock, stamped onto the
// protocol-internal events the current instruction causes. Like
// SetEventThread it is only called by the machine layer when a sink is
// attached; with no sink the field is never read.
func (s *System) SetEventCycle(c uint64) { s.evCycle = c }

// EventCycle returns the cycle set by SetEventCycle.
func (s *System) EventCycle() uint64 { return s.evCycle }

// Emit stamps ev with the next sequence number and delivers it to the
// attached sink, if any. The machine layer emits its instruction-level
// events through this so core- and machine-emitted events share one
// ordering.
func (s *System) Emit(ev *Event) {
	if s.sink == nil {
		return
	}
	s.emit(ev)
}

func (s *System) emit(ev *Event) {
	ev.Seq = s.evSeq
	s.evSeq++
	s.sink.Event(ev)
}

// dirPeek reports block's directory transition triple: its entry state
// (Invalid if absent), owner (-1 if absent), and sharer set.
func (s *System) dirPeek(block mem.Addr) (cache.State, int, coherence.Bitset) {
	if e := s.dir.Lookup(block); e != nil {
		return e.State, e.Owner, e.Sharers
	}
	return cache.Invalid, -1, 0
}

// dirTransaction wraps dirTransact with EvTransaction emission. With no
// sink attached it is a direct tail call — the hot path pays one nil check.
func (s *System) dirTransaction(core int, block mem.Addr, mode AccessMode) (cache.State, uint64) {
	if s.sink == nil {
		return s.dirTransact(core, block, mode)
	}
	before := s.ctr.Snap()
	db, ob, sb := s.dirPeek(block)
	st, lat := s.dirTransact(core, block, mode)
	ev := &Event{
		Kind:          EvTransaction,
		Thread:        s.evThread,
		Core:          core,
		Cycle:         s.evCycle,
		Addr:          block,
		Block:         block,
		Mode:          mode,
		DirBefore:     db,
		OwnerBefore:   ob,
		SharersBefore: sb,
		Latency:       lat,
		Ctrs:          s.ctr.Snap().Sub(before),
	}
	ev.DirAfter, ev.OwnerAfter, ev.SharersAfter = s.dirPeek(block)
	if ev.DirAfter == cache.Ward {
		if e := s.dir.Lookup(block); e != nil {
			ev.Region = RegionID(e.Region)
		}
	}
	s.emit(ev)
	return st, lat
}
