package core

// The protocol state machines: directory transactions, the W-state grant
// path, private-cache maintenance, eviction handling, and reconciliation.
// Everything in this file runs inside a single simulated transaction; the
// instruction-facing access paths live in system.go and the event-stream
// plumbing in event.go.

import (
	"fmt"
	"sort"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
)

// dirTransact performs a full coherence transaction at block's home
// directory on behalf of core. Because the simulation engine serializes
// cores, the transaction runs atomically; latency and messages accumulate
// as if the message sequence executed on the fabric. The generic prelude
// (request message, directory access, entry lookup) runs here; the rest is
// the registered protocol's. Callers go through dirTransaction (event.go),
// which wraps this with EvTransaction emission when a sink is attached.
func (s *System) dirTransact(core int, block mem.Addr, mode AccessMode) (cache.State, uint64) {
	req := stats.GetS
	if mode != ModeRead {
		req = stats.GetM
	}
	lat := s.fabric.CoreToHome(req, core, block)
	s.ctr.DirAccesses++
	lat += s.cfg.L3Latency // directory + LLC slice access
	e := s.dir.Ensure(block)
	return s.impl.DirTransact(core, block, mode, e, lat)
}

// mesiGetS is the MESI read-miss transaction; owned enables MOESI's Owned
// state on the dirty-sharing path.
func (s *System) mesiGetS(core int, block mem.Addr, e *coherence.Entry, lat *uint64, owned bool) cache.State {
	switch e.State {
	case cache.Invalid:
		// No cached copies: fetch from LLC/DRAM and grant Exclusive (the
		// MESI E optimization for unshared data).
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)
		e.State = cache.Exclusive
		e.Owner = core
		e.Sharers = 0
		s.installPrivate(core, block, cache.Exclusive)
		return cache.Exclusive

	case cache.Exclusive:
		if e.Owner == core {
			panic("core: GetS from the recorded owner (private state out of sync)")
		}
		// Forward to the owner, who downgrades and sends the requester the
		// data. Under MESI a dirty owner also writes back to the LLC and
		// everyone ends Shared; under MOESI a dirty owner keeps the block
		// in Owned and remains responsible for sourcing it.
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetS, block, owner)
		*lat += s.cfg.L2Latency // owner's private lookup
		ownerLine := s.l2[owner].Peek(block)
		dirty := ownerLine != nil && ownerLine.State == cache.Modified
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		if owned && dirty {
			s.downgradePrivateTo(owner, block, cache.Owned)
			e.State = cache.Owned
			e.Owner = owner
			e.Sharers = coherence.Bitset(0).Add(core)
		} else {
			s.downgradePrivate(owner, block)
			if dirty {
				s.fabric.CoreToHome(stats.DataDir, owner, block) // writeback, off critical path
			}
			e.State = cache.Shared
			e.Sharers = coherence.Bitset(0).Add(owner).Add(core)
		}
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared

	case cache.Owned:
		// MOESI: the owner sources the data; no LLC involvement, no
		// writeback, no state change at the owner.
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetS, block, owner)
		*lat += s.cfg.L2Latency
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		e.Sharers = e.Sharers.Add(core)
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared

	case cache.Shared:
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)
		e.Sharers = e.Sharers.Add(core)
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared
	}
	panic(fmt.Sprintf("core: GetS with directory in state %v", e.State))
}

// mesiGetM is the MESI write-miss/upgrade transaction. The owned flag is
// accepted for symmetry with mesiGetS; the GetM transaction is identical
// under MESI and MOESI (Owned entries are invalidated either way).
func (s *System) mesiGetM(core int, block mem.Addr, e *coherence.Entry, lat *uint64, owned bool) cache.State {
	switch e.State {
	case cache.Invalid:
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)

	case cache.Exclusive:
		if e.Owner == core {
			panic("core: GetM from the recorded owner (private state out of sync)")
		}
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetM, block, owner)
		*lat += s.cfg.L2Latency
		s.invalidatePrivate(owner, block, true)
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)

	case cache.Owned:
		// MOESI: invalidate the sharers; the owner supplies data (or just
		// upgrades in place if the requester is the owner).
		owner := e.Owner
		var worst uint64
		e.Sharers.ForEach(func(sh int) {
			if sh == core {
				return
			}
			l := s.fabric.HomeToCore(stats.Inv, block, sh)
			s.invalidatePrivate(sh, block, true)
			l += s.fabric.CoreToCore(stats.InvAck, sh, core)
			if l > worst {
				worst = l
			}
		})
		*lat += worst
		if owner != core {
			*lat += s.fabric.HomeToCore(stats.FwdGetM, block, owner)
			*lat += s.cfg.L2Latency
			s.invalidatePrivate(owner, block, true)
			*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		}

	case cache.Shared:
		// Invalidate every other sharer; invalidations proceed in parallel,
		// so latency is the slowest inv+ack round.
		upgrade := e.Sharers.Has(core)
		var worst uint64
		e.Sharers.ForEach(func(sh int) {
			if sh == core {
				return
			}
			l := s.fabric.HomeToCore(stats.Inv, block, sh)
			s.invalidatePrivate(sh, block, true)
			l += s.fabric.CoreToCore(stats.InvAck, sh, core)
			if l > worst {
				worst = l
			}
		})
		*lat += worst
		if !upgrade {
			*lat += s.llcFetch(block)
			*lat += s.fabric.HomeToCore(stats.Data, block, core)
		}
	default:
		panic(fmt.Sprintf("core: GetM with directory in state %v", e.State))
	}
	e.State = cache.Exclusive
	e.Owner = core
	e.Sharers = 0
	s.installPrivate(core, block, cache.Modified)
	return cache.Modified
}

// wardGrant serves a request for a block inside an active WARD region: the
// directory moves the block to W (if not already), adds the requester to the
// holder set, and furnishes a copy without invalidating or downgrading any
// other holder (§5.1).
func (s *System) wardGrant(core int, block mem.Addr, e *coherence.Entry, rid RegionID) uint64 {
	var lat uint64
	if e.State != cache.Ward {
		switch e.State {
		case cache.Exclusive:
			// The previous owner keeps its copy, now as a W line with a
			// fresh private snapshot. No invalidation, no downgrade.
			owner := e.Owner
			e.Sharers = coherence.Bitset(0).Add(owner)
			s.setPrivState(owner, block, cache.Ward)
			s.wcopy(owner, block)
		case cache.Shared:
			// Existing S holders keep their (clean, still-valid) S lines.
		case cache.Invalid:
			e.Sharers = 0
		}
		e.State = cache.Ward
		e.Region = uint32(rid)
		s.regions.noteBlock(rid, block)
	}
	already := e.Sharers.Has(core) && s.l2[core].Peek(block) != nil
	e.Sharers = e.Sharers.Add(core)
	if !already {
		lat += s.llcFetch(block)
		lat += s.fabric.HomeToCore(stats.Data, block, core)
	}
	s.installPrivate(core, block, cache.Ward)
	s.wcopy(core, block)
	return lat
}

// llcFetch reads block at its home LLC slice, falling back to DRAM on miss,
// and returns the latency beyond the already-charged L3 access.
func (s *System) llcFetch(block mem.Addr) uint64 {
	home := s.fabric.HomeSocket(block)
	s.ctr.L3Accesses++
	l3 := s.l3[home]
	if l3.Lookup(block) != nil {
		l3.Hits++
		s.ctr.L3Hits++
		return 0
	}
	l3.Misses++
	s.ctr.DRAMAccesses++
	l3.Insert(block, cache.Shared) // LLC victim drops silently (non-inclusive LLC)
	return s.cfg.DRAMLatency
}

// ---------------------------------------------------------------------------
// Private-cache maintenance

// fillL1 installs block into L1 after an L2 hit (inclusion holds; the L1
// victim needs no action).
func (s *System) fillL1(core int, block mem.Addr, st cache.State) {
	s.l1[core].Insert(block, st)
}

// installPrivate installs block into the core's L2 then L1, handling the L2
// capacity victim's protocol actions.
func (s *System) installPrivate(core int, block mem.Addr, st cache.State) {
	if ev, ok := s.l2[core].Insert(block, st); ok {
		s.evictL2Victim(core, ev)
	}
	s.l1[core].Insert(block, st)
}

// setPrivState updates block's state in the core's L1 and L2 where present.
func (s *System) setPrivState(core int, block mem.Addr, st cache.State) {
	if ln := s.l2[core].Peek(block); ln != nil {
		ln.State = st
	}
	if ln := s.l1[core].Peek(block); ln != nil {
		ln.State = st
	}
}

// invalidatePrivate removes block from the core's private caches; when
// coherence is true the removals are counted as coherence invalidations
// (one per cache holding the block, matching the paper's per-cache counts).
func (s *System) invalidatePrivate(core int, block mem.Addr, coherenceInv bool) {
	if st := s.l1[core].Invalidate(block); st != cache.Invalid && coherenceInv {
		s.l1[core].CountInvalidation()
		s.ctr.Invalidations++
	}
	if st := s.l2[core].Invalidate(block); st != cache.Invalid && coherenceInv {
		s.l2[core].CountInvalidation()
		s.ctr.Invalidations++
	}
}

// downgradePrivate moves block to S in the core's private caches, counting a
// coherence downgrade per cache holding it.
func (s *System) downgradePrivate(core int, block mem.Addr) {
	s.downgradePrivateTo(core, block, cache.Shared)
}

// downgradePrivateTo moves block to the given (less privileged) state in the
// core's private caches, counting a coherence downgrade per cache holding it.
func (s *System) downgradePrivateTo(core int, block mem.Addr, st cache.State) {
	if ln := s.l1[core].Peek(block); ln != nil {
		ln.State = st
		s.l1[core].CountDowngrade()
		s.ctr.Downgrades++
	}
	if ln := s.l2[core].Peek(block); ln != nil {
		ln.State = st
		s.l2[core].CountDowngrade()
		s.ctr.Downgrades++
	}
}

// evictL2Victim handles a block displaced from a private L2: maintain
// inclusion, then let the registered protocol notify the directory and
// write back or reconcile-flush dirty data (EvictVictim). Writebacks are
// posted (they do not stall the evicting core) but their traffic is
// charged.
func (s *System) evictL2Victim(core int, ev cache.Eviction) {
	var before stats.Snapshot
	var db cache.State
	var ob int
	var sb coherence.Bitset
	if s.sink != nil {
		before = s.ctr.Snap()
		db, ob, sb = s.dirPeek(ev.Addr)
	}

	// Inclusion: the L1 copy (if any) must go too. Not a coherence inv.
	s.l1[core].Invalidate(ev.Addr)

	e := s.dir.Lookup(ev.Addr)
	if e == nil {
		panic(fmt.Sprintf("core: evicting %#x with no directory entry", uint64(ev.Addr)))
	}
	s.impl.EvictVictim(core, ev, e)

	if s.sink != nil {
		evn := &Event{
			Kind:          EvEvict,
			Thread:        s.evThread,
			Core:          core,
			Cycle:         s.evCycle,
			Addr:          ev.Addr,
			Block:         ev.Addr,
			LineState:     ev.State,
			DirBefore:     db,
			OwnerBefore:   ob,
			SharersBefore: sb,
			Ctrs:          s.ctr.Snap().Sub(before),
		}
		evn.DirAfter, evn.OwnerAfter, evn.SharersAfter = s.dirPeek(ev.Addr)
		s.emit(evn)
	}
}

// evictCoherentVictim performs the MESI-family and WARDen eviction
// actions for an L2 victim; e is its directory entry. Shared by every
// in-tree protocol (the W case is unreachable under the MESI family).
func (s *System) evictCoherentVictim(core int, ev cache.Eviction, e *coherence.Entry) {
	switch ev.State {
	case cache.Shared:
		s.fabric.CoreToHome(stats.PutS, core, ev.Addr)
		e.Sharers = e.Sharers.Remove(core)
		if e.State == cache.Shared && e.Sharers.Empty() {
			s.dir.Drop(ev.Addr)
		}
		// Under an Owned entry, sharers come and go while the owner keeps
		// the block; nothing more to do.
		// Under a Ward directory entry an S holder may evict; the entry
		// stays W for the remaining holders.
		if e.State == cache.Ward && e.Sharers.Empty() {
			s.regions.forgetBlock(RegionID(e.Region), ev.Addr)
			s.dir.Drop(ev.Addr)
		}
	case cache.Owned:
		// The dirty sourcing copy leaves: write back to the LLC; remaining
		// sharers (if any) keep clean S copies served by the LLC.
		s.fabric.CoreToHome(stats.PutM, core, ev.Addr)
		s.fabric.CoreToHome(stats.DataDir, core, ev.Addr)
		s.l3[s.fabric.HomeSocket(ev.Addr)].Insert(ev.Addr, cache.Shared)
		if e.Sharers.Empty() {
			s.dir.Drop(ev.Addr)
		} else {
			e.State = cache.Shared
			e.Owner = 0
		}
	case cache.Exclusive:
		s.fabric.CoreToHome(stats.PutE, core, ev.Addr)
		s.dir.Drop(ev.Addr)
	case cache.Modified:
		s.fabric.CoreToHome(stats.PutM, core, ev.Addr)
		s.fabric.CoreToHome(stats.DataDir, core, ev.Addr)
		s.dir.Drop(ev.Addr)
	case cache.Ward:
		// Proactive flush: merge this core's written sectors into the LLC
		// now, off the critical path (§5.3's overlap benefit).
		s.flushWardCopy(core, ev.Addr)
		e.Sharers = e.Sharers.Remove(core)
		if e.Sharers.Empty() {
			s.regions.forgetBlock(RegionID(e.Region), ev.Addr)
			s.dir.Drop(ev.Addr)
		}
	default:
		panic(fmt.Sprintf("core: evicting line in state %v", ev.State))
	}
}

// flushWardCopy merges core's private copy of block into the canonical
// store (masked sectors only) and discards the copy.
func (s *System) flushWardCopy(core int, block mem.Addr) {
	wc, ok := s.wcopies[core][block]
	if !ok {
		return
	}
	if wc.mask != 0 {
		s.applyMask(block, wc)
		s.fabric.FlushToHome(core, block, uint64(wc.mask.Count())*s.sectorSize)
		s.ctr.ReconciledBlocks++
		s.ctr.ReconciledSectors += uint64(wc.mask.Count())
		s.l3[s.fabric.HomeSocket(block)].Insert(block, cache.Shared)
	}
	delete(s.wcopies[core], block)
}

func (s *System) applyMask(block mem.Addr, wc *wardCopy) {
	sectors := uint(s.cfg.BlockSize / s.sectorSize)
	for i := uint(0); i < sectors; i++ {
		if wc.mask.Has(i) {
			off := mem.Addr(uint64(i) * s.sectorSize)
			s.mem.Write(block+off, wc.data[uint64(i)*s.sectorSize:(uint64(i)+1)*s.sectorSize])
		}
	}
}

// ---------------------------------------------------------------------------
// Reconciliation

// reconcileBlock returns one W block to a coherent state following the
// §6.1 implementation (and the paper's prototype, per its footnote): every
// private W copy is flushed — written sectors merge into the LLC in
// ascending core order ("the final value of each sector is taken from
// whichever copy is processed last"; any order is correct by the WARD
// property, and ascending order keeps the simulation deterministic) — and
// invalidated. The merged block lands in its home LLC slice, which is what
// makes the §5.3 proactive flush pay off: the next consumer takes an LLC
// hit instead of a forward-and-downgrade round to the producer's private
// cache. Clean S holders under the W entry keep their (still valid) lines.
// forgetRegion also detaches the block from its region's index (used on the
// forced-reconcile path; RemoveRegion has already discarded the index).
func (s *System) reconcileBlock(block mem.Addr, e *coherence.Entry, forgetRegion bool) {
	var before stats.Snapshot
	if s.sink != nil {
		before = s.ctr.Snap()
	}
	holders := e.Sharers
	region := RegionID(e.Region)
	var totalMask cache.SectorMask
	writers := 0
	lastWriter := -1
	overlap := false
	var remaining coherence.Bitset // holders keeping valid S lines

	// First pass: merge every written sector into the canonical store.
	holders.ForEach(func(c int) {
		ln := s.l2[c].Peek(block)
		if ln == nil || ln.State != cache.Ward {
			return
		}
		wc, ok := s.wcopies[c][block]
		if ok && wc.mask != 0 {
			if wc.mask.Overlaps(totalMask) {
				overlap = true
			}
			totalMask |= wc.mask
			writers++
			lastWriter = c
			s.applyMask(block, wc)
			s.fabric.FlushToHome(c, block, uint64(wc.mask.Count())*s.sectorSize)
			s.ctr.ReconciledSectors += uint64(wc.mask.Count())
		}
	})
	// Second pass: dispose of the private copies. A copy that provably
	// equals the merged block — any copy when nothing was written, or the
	// sole writer's own copy — converts to a clean S line in place;
	// every other copy is stale and is flushed-and-invalidated (§6.1).
	// These invalidations are not coherence invalidations: no Inv messages
	// travel, the holders volunteered their blocks.
	holders.ForEach(func(c int) {
		ln := s.l2[c].Peek(block)
		if ln == nil {
			return
		}
		if ln.State != cache.Ward {
			remaining = remaining.Add(c) // clean S holder under a W entry
			return
		}
		delete(s.wcopies[c], block)
		if totalMask == 0 || (writers == 1 && c == lastWriter) {
			s.setPrivState(c, block, cache.Shared)
			remaining = remaining.Add(c)
			return
		}
		s.l1[c].Invalidate(block)
		s.l2[c].Invalidate(block)
	})
	s.ctr.ReconciledBlocks++
	if writers > 0 && holders.Count() > 1 {
		if overlap {
			s.ctr.TrueShareMerges++
		} else {
			s.ctr.FalseShareMerges++
		}
	}
	// The merged data now lives in the home LLC slice.
	s.l3[s.fabric.HomeSocket(block)].Insert(block, cache.Shared)
	if remaining.Empty() {
		s.dir.Drop(block)
	} else {
		e.State = cache.Shared
		e.Owner = 0
		e.Sharers = remaining
	}
	if forgetRegion {
		s.regions.forgetBlock(region, block)
	}

	if s.sink != nil {
		ev := &Event{
			Kind:          EvReconcile,
			Thread:        s.evThread,
			Core:          -1,
			Cycle:         s.evCycle,
			Addr:          block,
			Block:         block,
			Region:        region,
			Arg1:          uint64(writers),
			Arg2:          uint64(totalMask),
			DirBefore:     cache.Ward,
			SharersBefore: holders,
			Ctrs:          s.ctr.Snap().Sub(before),
		}
		ev.DirAfter, ev.OwnerAfter, ev.SharersAfter = s.dirPeek(block)
		s.emit(ev)
	}
}

// ---------------------------------------------------------------------------
// End-of-run drain

// DrainAll flushes every private cache back to a coherent state; used at
// the end of a run so final memory contents can be verified. The work is
// the registered protocol's: every protocol must charge the writeback
// traffic for data that must eventually reach shared memory, so protocols
// are compared fairly.
func (s *System) DrainAll() { s.impl.Drain() }

// drainCoherent is the MESI-family and WARDen drain: reconcile all W
// blocks, then write back every dirty block (counting the writeback
// traffic).
func (s *System) drainCoherent() {
	var wards, dirty []mem.Addr
	s.dir.ForEach(func(a mem.Addr, e *coherence.Entry) {
		switch e.State {
		case cache.Ward:
			wards = append(wards, a)
		case cache.Exclusive, cache.Owned:
			if ln := s.l2[e.Owner].Peek(a); ln != nil && (ln.State == cache.Modified || ln.State == cache.Owned) {
				dirty = append(dirty, a)
			}
		}
	})
	sort.Slice(wards, func(i, j int) bool { return wards[i] < wards[j] })
	for _, a := range wards {
		if e := s.dir.Lookup(a); e != nil && e.State == cache.Ward {
			s.reconcileBlock(a, e, true)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, a := range dirty {
		e := s.dir.Lookup(a)
		if e == nil || (e.State != cache.Exclusive && e.State != cache.Owned) {
			continue
		}
		owner := e.Owner
		s.fabric.CoreToHome(stats.PutM, owner, a)
		s.fabric.CoreToHome(stats.DataDir, owner, a)
		s.l3[s.fabric.HomeSocket(a)].Insert(a, cache.Shared)
		if e.State == cache.Owned {
			s.setPrivState(owner, a, cache.Shared) // clean, still shared
			e.State = cache.Shared
			e.Sharers = e.Sharers.Add(owner)
			e.Owner = 0
		} else {
			s.setPrivState(owner, a, cache.Exclusive) // now clean
		}
	}
}
