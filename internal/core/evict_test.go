package core

// Direct unit tests for the evictL2Victim paths: each private-cache state a
// victim can be in (S, E, M, O, W clean, W dirty) has its own protocol
// obligations — directory notification, sharer-set maintenance, writeback
// or reconcile-flush — which these tests pin down one by one using a
// direct-mapped L2 where conflicting addresses are deterministic.

import (
	"testing"

	"warden/internal/cache"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// evictSystem builds a system with a tiny direct-mapped hierarchy: 8-set L2
// (one 64-byte block per set), so a and a+512 always conflict.
func evictSystem(proto Protocol) (*System, *mem.Memory, *stats.Counters) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	cfg.L1Size = 4 * 64
	cfg.L1Assoc = 1
	cfg.L2Size = 8 * 64
	cfg.L2Assoc = 1
	m := mem.New(0)
	ctr := &stats.Counters{}
	return NewSystem(cfg, proto, m, ctr), m, ctr
}

const conflictStride = 8 * 64 // L2 sets × block size

func TestEvictSharedKeepsOtherSharers(t *testing.T) {
	s, m, ctr := evictSystem(MESI)
	a := m.Alloc(4096, mem.PageSize)
	b := a + conflictStride
	read64(s, 0, a) // core 0: E
	read64(s, 1, a) // downgrade: both S, sharers {0,1}

	read64(s, 0, b) // conflicts with a in core 0's L2: S eviction
	if ctr.Msgs[stats.PutS] != 1 {
		t.Fatalf("PutS = %d, want 1", ctr.Msgs[stats.PutS])
	}
	e := s.dir.Lookup(a)
	if e == nil || e.State != cache.Shared {
		t.Fatalf("entry after first S eviction = %+v, want Shared", e)
	}
	if e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("sharers = %v, want just core 1", e.Sharers)
	}

	read64(s, 1, b) // core 1 evicts its S copy too: last sharer leaves
	if ctr.Msgs[stats.PutS] != 2 {
		t.Fatalf("PutS = %d, want 2", ctr.Msgs[stats.PutS])
	}
	if s.dir.Lookup(a) != nil {
		t.Fatal("entry must drop when the last sharer evicts")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictExclusiveNotifiesDirectory(t *testing.T) {
	s, m, ctr := evictSystem(MESI)
	a := m.Alloc(4096, mem.PageSize)
	read64(s, 0, a)                // E, clean
	read64(s, 0, a+conflictStride) // evicts a
	if ctr.Msgs[stats.PutE] != 1 {
		t.Fatalf("PutE = %d, want 1", ctr.Msgs[stats.PutE])
	}
	if ctr.Msgs[stats.DataDir] != 0 {
		t.Fatal("clean eviction must not write data back")
	}
	if s.dir.Lookup(a) != nil {
		t.Fatal("entry must drop on E eviction")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictModifiedWritesBack(t *testing.T) {
	s, m, ctr := evictSystem(MESI)
	a := m.Alloc(4096, mem.PageSize)
	write64(s, 0, a, 77)               // M, dirty
	write64(s, 0, a+conflictStride, 1) // evicts a
	if ctr.Msgs[stats.PutM] != 1 || ctr.Msgs[stats.DataDir] != 1 {
		t.Fatalf("PutM = %d, DataDir = %d, want 1 each", ctr.Msgs[stats.PutM], ctr.Msgs[stats.DataDir])
	}
	if s.dir.Lookup(a) != nil {
		t.Fatal("entry must drop on M eviction")
	}
	// The writeback lands in the home LLC slice: the next read hits L3.
	l3Hits := ctr.L3Hits
	if v, _ := read64(s, 1, a); v != 77 {
		t.Fatalf("read after writeback = %d", v)
	}
	if ctr.L3Hits != l3Hits+1 {
		t.Fatal("re-fetch after M eviction should hit the LLC")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictOwnedDemotesEntryToShared(t *testing.T) {
	s, m, ctr := evictSystem(MOESI)
	a := m.Alloc(4096, mem.PageSize)
	write64(s, 0, a, 9) // core 0: M
	read64(s, 1, a)     // MOESI: core 0 → O, core 1 shares

	read64(s, 0, a+conflictStride) // evicts core 0's O copy
	if ctr.Msgs[stats.PutM] != 1 || ctr.Msgs[stats.DataDir] != 1 {
		t.Fatalf("PutM = %d, DataDir = %d, want 1 each", ctr.Msgs[stats.PutM], ctr.Msgs[stats.DataDir])
	}
	e := s.dir.Lookup(a)
	if e == nil || e.State != cache.Shared {
		t.Fatalf("entry after O eviction = %+v, want Shared (core 1 remains)", e)
	}
	if !e.Sharers.Has(1) {
		t.Fatalf("sharers = %v, want core 1", e.Sharers)
	}
	if v, _ := read64(s, 2, a); v != 9 {
		t.Fatalf("value after O eviction = %d", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictWardDirtyFlushesMaskedSectors(t *testing.T) {
	s, m, ctr := evictSystem(WARDen)
	a := m.Alloc(4096, mem.PageSize)
	id, _, ok := s.AddRegion(0, a, a+4096)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	write64(s, 0, a, 123)              // W copy, 8 bytes masked
	write64(s, 0, a+conflictStride, 1) // evicts the dirty W copy

	if ctr.ReconciledBlocks != 1 {
		t.Fatalf("ReconciledBlocks = %d, want 1 (proactive flush)", ctr.ReconciledBlocks)
	}
	if ctr.ReconciledSectors != 8 {
		t.Fatalf("ReconciledSectors = %d, want 8 (byte sectoring)", ctr.ReconciledSectors)
	}
	if s.dir.Lookup(a) != nil {
		t.Fatal("entry must drop when the last W holder evicts")
	}
	if _, tracked := s.wcopies[0][a]; tracked {
		t.Fatal("the flushed private copy must be discarded")
	}
	if r := s.regions.byID[id]; r != nil {
		if _, still := r.blocks[a]; still {
			t.Fatal("region must forget an evicted W block (no double reconcile)")
		}
	}
	// The flushed data is canonical even before RemoveRegion.
	if got := m.ReadUint(a, 8); got != 123 {
		t.Fatalf("mem after W flush = %d", got)
	}
	s.RemoveRegion(0, id)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictWardCleanIsSilent(t *testing.T) {
	s, m, ctr := evictSystem(WARDen)
	a := m.Alloc(4096, mem.PageSize)
	m.WriteUint(a, 8, 55)
	id, _, ok := s.AddRegion(0, a, a+4096)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	read64(s, 0, a)                // W copy, nothing written
	read64(s, 0, a+conflictStride) // evicts the clean W copy
	if ctr.ReconciledBlocks != 0 || ctr.ReconciledSectors != 0 {
		t.Fatalf("clean W eviction flushed: blocks=%d sectors=%d", ctr.ReconciledBlocks, ctr.ReconciledSectors)
	}
	if s.dir.Lookup(a) != nil {
		t.Fatal("entry must drop when the last W holder evicts")
	}
	if _, tracked := s.wcopies[0][a]; tracked {
		t.Fatal("the clean private copy must be discarded")
	}
	s.RemoveRegion(0, id)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictWardKeepsRemainingHolders(t *testing.T) {
	s, m, _ := evictSystem(WARDen)
	a := m.Alloc(4096, mem.PageSize)
	id, _, ok := s.AddRegion(0, a, a+4096)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	write64(s, 0, a, 1) // core 0: W holder
	write64(s, 1, a, 2) // core 1: W holder too (no invalidation)

	read64(s, 0, a+conflictStride) // core 0 evicts its W copy
	e := s.dir.Lookup(a)
	if e == nil || e.State != cache.Ward {
		t.Fatalf("entry = %+v, want Ward for the remaining holder", e)
	}
	if e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("holders = %v, want just core 1", e.Sharers)
	}
	s.RemoveRegion(0, id)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
