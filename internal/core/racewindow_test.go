package core

// Race-window tests: the cross-core interleavings the explicit-state model
// checker (internal/modelcheck) explores, pinned here as direct unit tests
// so they run even when the exhaustive checker is skipped under -short.
// Each test drives both orders of the racing pair through a real System
// and asserts the directory bookkeeping, the invariant sweep, and the
// final memory image.

import (
	"testing"

	"warden/internal/cache"
	"warden/internal/mem"
)

// TestRaceUpgradeVsSharerEviction: core 0's S→M upgrade races core 1's
// eviction of its shared copy (a conflicting fill in a direct-mapped L2).
// Whichever side goes first, the directory must end with core 0 as the
// sole owner and no stale sharer bit for core 1.
func TestRaceUpgradeVsSharerEviction(t *testing.T) {
	for _, order := range []string{"evict-first", "upgrade-first"} {
		t.Run(order, func(t *testing.T) {
			s, m, ctr := evictSystem(MESI)
			a := m.Alloc(4096, mem.PageSize)
			b := a + conflictStride
			read64(s, 0, a) // core 0: E
			read64(s, 1, a) // downgrade: both S, sharers {0,1}

			if order == "evict-first" {
				read64(s, 1, b)     // core 1's S copy of a evicts (PutS)
				write64(s, 0, a, 7) // upgrade finds core 0 the only holder
				if ctr.Invalidations != 0 {
					t.Fatalf("invalidations = %d, want 0: the evicted sharer must not be re-invalidated", ctr.Invalidations)
				}
			} else {
				write64(s, 0, a, 7) // upgrade invalidates core 1 (L1 + L2)
				if ctr.Invalidations == 0 {
					t.Fatal("upgrade past a live sharer must invalidate it")
				}
				read64(s, 1, b) // core 1's line is already I; eviction is a no-op for a
			}

			e := s.dir.Lookup(a)
			if e == nil || e.State != cache.Exclusive || e.Owner != 0 {
				t.Fatalf("entry after race = %+v, want Exclusive owner 0", e)
			}
			if l1, l2 := s.PrivLines(1, a); l1 != cache.Invalid || l2 != cache.Invalid {
				t.Fatalf("core 1 still holds a: L1=%v L2=%v", l1, l2)
			}
			if v, _ := read64(s, 1, a); v != 7 {
				t.Fatalf("core 1 reads %d after the race, want 7", v)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRaceReconcileVsRemoteWrite: a remote ward write lands just before or
// just after the region owner's RemoveRegion. Before: the write joins the
// W sharer set and reconciliation must merge it. After: the write sees a
// coherent (post-reconcile) block and takes normal MESI ownership. Either
// way no write may be lost. The three writes hit disjoint sectors so the
// merged image is unique.
func TestRaceReconcileVsRemoteWrite(t *testing.T) {
	for _, order := range []string{"write-first", "reconcile-first"} {
		t.Run(order, func(t *testing.T) {
			s, m, _ := evictSystem(WARDen)
			a := m.Alloc(4096, mem.PageSize)
			id, _, ok := s.AddRegion(0, a, a+64)
			if !ok {
				t.Fatal("AddRegion failed")
			}
			write64(s, 0, a, 0x11)   // sector 0, core 0's W copy
			write64(s, 1, a+8, 0x22) // sector 1, core 1's W copy
			if e := s.dir.Lookup(a); e == nil || e.State != cache.Ward ||
				!e.Sharers.Has(0) || !e.Sharers.Has(1) {
				t.Fatalf("entry with two ward writers = %+v, want Ward sharers {0,1}", e)
			}

			if order == "write-first" {
				write64(s, 1, a+16, 0x33) // still warded: a third W sector
				s.RemoveRegion(0, id)
			} else {
				s.RemoveRegion(0, id)
				write64(s, 1, a+16, 0x33) // post-reconcile: coherent write
				if e := s.dir.Lookup(a); e == nil || e.State != cache.Exclusive || e.Owner != 1 {
					t.Fatalf("entry after post-reconcile write = %+v, want Exclusive owner 1", e)
				}
			}

			if s.regionActive(id) {
				t.Fatal("region still active after RemoveRegion")
			}
			if e := s.dir.Lookup(a); e != nil && e.State == cache.Ward {
				t.Fatalf("entry still Ward after reconcile: %+v", e)
			}
			for core := 0; core < 2; core++ {
				if _, _, ok := s.WardCopyView(core, a); ok {
					t.Fatalf("core %d keeps a W copy after reconcile", core)
				}
			}
			// All three sectors survive, whichever side of the reconcile
			// the last write landed on.
			for _, want := range []struct {
				off mem.Addr
				v   uint64
			}{{0, 0x11}, {8, 0x22}, {16, 0x33}} {
				if v, _ := read64(s, 0, a+want.off); v != want.v {
					t.Fatalf("sector at +%d reads %#x, want %#x", want.off, v, want.v)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRaceEvictionFlushThenReconcile pins the merge order the model
// checker's ghost memory had to learn: when two cores ward-write the same
// sector and one copy is flushed early by an eviction, the copy applied by
// the later reconcile wins. (This is the counterexample schedule that
// falsified a simple "highest core merges last" ghost model.)
func TestRaceEvictionFlushThenReconcile(t *testing.T) {
	s, m, _ := evictSystem(WARDen)
	a := m.Alloc(4096, mem.PageSize)
	b := a + conflictStride
	id, _, ok := s.AddRegion(0, a, a+64)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	write64(s, 0, a, 0x11) // both cores ward-write the SAME sector
	write64(s, 1, a, 0x21)

	read64(s, 1, b) // evicts core 1's W copy: proactive flush writes 0x21
	e := s.dir.Lookup(a)
	if e == nil || e.State != cache.Ward || e.Sharers.Has(1) || !e.Sharers.Has(0) {
		t.Fatalf("entry after W eviction = %+v, want Ward sharers {0}", e)
	}
	if _, _, ok := s.WardCopyView(1, a); ok {
		t.Fatal("core 1's W copy must be discarded by the eviction flush")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	s.RemoveRegion(0, id) // reconcile applies core 0's surviving copy last
	if v, _ := read64(s, 0, a); v != 0x11 {
		t.Fatalf("final value %#x, want 0x11 (reconcile overwrites the early eviction flush)", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceWardUpgradeVsEviction: under WARDen a conflicting fill evicts a
// block whose directory entry is mid-tenure while the other core keeps
// writing. Interleaving writes with evictions must leave directory and
// private tags agreeing after every step.
func TestRaceWardWriteStormWithEvictions(t *testing.T) {
	s, m, _ := evictSystem(WARDen)
	a := m.Alloc(4096, mem.PageSize)
	b := a + conflictStride
	id, _, ok := s.AddRegion(0, a, a+64)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	for i := 0; i < 3; i++ {
		write64(s, 0, a, uint64(0x10+i))
		read64(s, 0, b) // evict own W copy (flush), refill next iteration
		write64(s, 1, a, uint64(0x20+i))
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	s.RemoveRegion(0, id)
	// Core 1's copy is the only one live at the end (core 0's last write
	// was flushed by its own eviction before core 1 wrote).
	if v, _ := read64(s, 1, a); v != 0x22 {
		t.Fatalf("final value %#x, want 0x22", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
