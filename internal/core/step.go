package core

// The protocol transition surface, extracted behind two narrow interfaces
// so that the simulator (internal/machine) and the explicit-state model
// checker (internal/modelcheck) drive the *same* transition implementation:
//
//   - ProtocolStep is the mutating surface: exactly the calls a core can
//     issue against the memory system, one atomic protocol transition each
//     (the engine serializes cores, so each call runs to completion).
//   - DirState is the read-only inspection surface: everything an external
//     verifier needs to canonicalize and validate protocol state without
//     perturbing it.
//
// *System implements both. The model checker accepts any implementation,
// which is how its mutation tests inject transition bugs: a test helper
// wraps a real System and corrupts one ProtocolStep method, and the checker
// must find a counterexample.

import (
	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/topology"
)

// ProtocolStep is the complete mutating transition surface of the memory
// system: every coherence-visible state change flows through one of these
// calls. Latencies are returned for the simulator's benefit; untimed
// clients (the model checker) ignore them.
type ProtocolStep interface {
	Protocol() Protocol
	Config() topology.Config

	// Read/Write/RMW perform one access by core within a single cache
	// block, driving a full directory transaction on a private miss.
	Read(core int, a mem.Addr, buf []byte) uint64
	Write(core int, a mem.Addr, src []byte) uint64
	RMW(core int, a mem.Addr, size int, fn func(old uint64) uint64) (old, lat uint64)

	// AddRegion/RemoveRegion are WARDen's region instructions (no-ops
	// under protocols without regions, per the legacy-compatibility story).
	AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool)
	RemoveRegion(core int, id RegionID) uint64

	// SyncPoint runs the protocol's synchronization-point hook for core
	// (a no-op returning 0 under eagerly coherent protocols; the
	// self-invalidation/self-downgrade flush under SiSd-style ones).
	SyncPoint(core int) uint64

	// DrainAll returns every private cache to a coherent state (end of
	// run; the model checker's terminal-state check).
	DrainAll()
}

// DirEntryView is a read-only copy of one directory entry.
type DirEntryView struct {
	State   cache.State
	Owner   int
	Sharers coherence.Bitset
	Region  RegionID // meaningful only when State == cache.Ward
}

// DirState is the read-only protocol-state inspection surface: the
// directory, the private tag arrays, the W-state private copies, and the
// canonical store. None of its methods mutate protocol state (they bypass
// LRU clocks and counters), so a verifier may call them between any two
// ProtocolStep calls without changing subsequent behaviour.
type DirState interface {
	// DirEntry reports block's directory entry, or ok=false when the
	// block is uncached (logically Invalid).
	DirEntry(block mem.Addr) (DirEntryView, bool)
	// PrivLines reports block's state in core's L1 and L2 (Invalid when
	// absent).
	PrivLines(core int, block mem.Addr) (l1, l2 cache.State)
	// L2Recency returns core's valid L2 lines, set-major with each set
	// ordered most-recently-used first — the complete replacement-relevant
	// private-cache state (L1 and L3 evictions carry no protocol actions,
	// so those arrays are excluded from canonical state).
	L2Recency(core int) []cache.Line
	// WardCopyView returns core's private W-state copy of block: the
	// written-sector mask and a copy of the data array.
	WardCopyView(core int, block mem.Addr) (mask cache.SectorMask, data [64]byte, ok bool)
	// RegionIsActive reports whether region id is currently registered.
	RegionIsActive(id RegionID) bool
	// CheckInvariants runs the whole-system invariant sweep.
	CheckInvariants() error
	// Mem exposes the canonical backing store (host-side reads only).
	Mem() *mem.Memory
}

// System implements both halves of the transition surface.
var (
	_ ProtocolStep = (*System)(nil)
	_ DirState     = (*System)(nil)
)

// DirEntry implements DirState.
func (s *System) DirEntry(block mem.Addr) (DirEntryView, bool) {
	e := s.dir.Lookup(block)
	if e == nil {
		return DirEntryView{State: cache.Invalid}, false
	}
	return DirEntryView{State: e.State, Owner: e.Owner, Sharers: e.Sharers, Region: RegionID(e.Region)}, true
}

// PrivLines implements DirState.
func (s *System) PrivLines(core int, block mem.Addr) (l1, l2 cache.State) {
	return lnState(s.l1[core].Peek(block)), lnState(s.l2[core].Peek(block))
}

// L2Recency implements DirState.
func (s *System) L2Recency(core int) []cache.Line {
	return s.l2[core].Recency()
}

// WardCopyView implements DirState.
func (s *System) WardCopyView(core int, block mem.Addr) (cache.SectorMask, [64]byte, bool) {
	wc, ok := s.wcopies[core][block]
	if !ok {
		return 0, [64]byte{}, false
	}
	return wc.mask, wc.data, true
}

// RegionIsActive implements DirState.
func (s *System) RegionIsActive(id RegionID) bool { return s.regionActive(id) }
