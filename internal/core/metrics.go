package core

// Metrics is a Sink that aggregates the event stream into the distribution
// views the paper's analysis uses (§7.2): latency histograms per operation
// kind, sharer-set-size distributions at transaction time, and a per-block
// contention table that surfaces the most-fought-over cache blocks.

import (
	"fmt"
	"io"
	"sort"

	"warden/internal/mem"
	"warden/internal/stats"
)

// blockStats aggregates per-block contention indicators.
type blockStats struct {
	Transactions  uint64
	Invalidations uint64
	Downgrades    uint64
	Evictions     uint64
	Reconciles    uint64
}

// contention ranks blocks by coherence damage caused (invalidations +
// downgrades), then by transaction count.
func (b blockStats) contention() uint64 { return b.Invalidations + b.Downgrades }

// Metrics aggregates events; attach with sys.SetSink(m) and render with
// WriteReport. The zero value is not ready — use NewMetrics.
type Metrics struct {
	LoadLat    stats.Histogram    // latency of load instructions
	StoreLat   stats.Histogram    // latency of store instructions
	AtomicLat  stats.Histogram    // latency of atomic RMWs
	TransLat   stats.Histogram    // latency of directory transactions
	Sharers    stats.Distribution // sharer-set size seen by each transaction
	ReconWrite stats.Distribution // writers merged per reconciliation

	Events uint64
	Msgs   [stats.NumMsgTypes]uint64

	blocks map[mem.Addr]*blockStats
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return &Metrics{blocks: make(map[mem.Addr]*blockStats)} }

// Event implements Sink.
func (m *Metrics) Event(ev *Event) {
	m.Events++
	for i, n := range ev.Ctrs.Msgs {
		// Internal events nest inside instruction events; count message
		// traffic only at the instruction level so nothing is double-counted.
		if ev.Kind.Instruction() {
			m.Msgs[i] += n
		}
	}
	switch ev.Kind {
	case EvLoad:
		m.LoadLat.Observe(ev.Latency)
	case EvStore:
		m.StoreLat.Observe(ev.Latency)
	case EvAtomic:
		m.AtomicLat.Observe(ev.Latency)
	case EvTransaction:
		m.TransLat.Observe(ev.Latency)
		m.Sharers.Observe(ev.SharersBefore.Count())
		b := m.block(ev.Block)
		b.Transactions++
		b.Invalidations += ev.Ctrs.Invalidations
		b.Downgrades += ev.Ctrs.Downgrades
	case EvEvict:
		m.block(ev.Block).Evictions++
	case EvReconcile:
		m.block(ev.Block).Reconciles++
		m.ReconWrite.Observe(int(ev.Arg1))
	}
}

func (m *Metrics) block(a mem.Addr) *blockStats {
	b, ok := m.blocks[a]
	if !ok {
		b = &blockStats{}
		m.blocks[a] = b
	}
	return b
}

// HotBlocks returns the topN most contended blocks (by invalidations +
// downgrades, then transactions, then address — fully deterministic).
func (m *Metrics) HotBlocks(topN int) []mem.Addr {
	addrs := make([]mem.Addr, 0, len(m.blocks))
	for a := range m.blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		bi, bj := m.blocks[addrs[i]], m.blocks[addrs[j]]
		if ci, cj := bi.contention(), bj.contention(); ci != cj {
			return ci > cj
		}
		if bi.Transactions != bj.Transactions {
			return bi.Transactions > bj.Transactions
		}
		return addrs[i] < addrs[j]
	})
	if topN >= 0 && len(addrs) > topN {
		addrs = addrs[:topN]
	}
	return addrs
}

// WriteReport renders the aggregated metrics deterministically: latency
// histograms, the sharer distribution, and the topN contention table.
func (m *Metrics) WriteReport(w io.Writer, topN int) {
	fmt.Fprintf(w, "events: %d\n", m.Events)
	fmt.Fprintf(w, "load latency (cycles):\n")
	m.LoadLat.Render(w, "  ")
	fmt.Fprintf(w, "store latency (cycles):\n")
	m.StoreLat.Render(w, "  ")
	if m.AtomicLat.Count > 0 {
		fmt.Fprintf(w, "atomic latency (cycles):\n")
		m.AtomicLat.Render(w, "  ")
	}
	fmt.Fprintf(w, "directory transaction latency (cycles):\n")
	m.TransLat.Render(w, "  ")
	fmt.Fprintf(w, "sharers at transaction time:\n")
	m.Sharers.Render(w, "  ")
	if m.ReconWrite.N > 0 {
		fmt.Fprintf(w, "writers per reconciliation:\n")
		m.ReconWrite.Render(w, "  ")
	}
	fmt.Fprintf(w, "hottest blocks (top %d of %d):\n", topN, len(m.blocks))
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s %8s\n", "block", "trans", "inv", "downg", "evict", "recon")
	for _, a := range m.HotBlocks(topN) {
		b := m.blocks[a]
		fmt.Fprintf(w, "  %#-12x %8d %8d %8d %8d %8d\n",
			uint64(a), b.Transactions, b.Invalidations, b.Downgrades, b.Evictions, b.Reconciles)
	}
}
