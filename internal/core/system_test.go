package core

import (
	"testing"
	"testing/quick"

	"warden/internal/cache"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

func testSystem(proto Protocol, sockets int) (*System, *mem.Memory, *stats.Counters) {
	cfg := topology.XeonGold6126(sockets)
	cfg.CoresPerSocket = 4
	m := mem.New(0)
	ctr := &stats.Counters{}
	return NewSystem(cfg, proto, m, ctr), m, ctr
}

func write64(s *System, core int, a mem.Addr, v uint64) uint64 {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return s.Write(core, a, buf[:])
}

func read64(s *System, core int, a mem.Addr) (uint64, uint64) {
	var buf [8]byte
	lat := s.Read(core, a, buf[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, lat
}

func TestMESIReadWriteRoundTrip(t *testing.T) {
	s, m, _ := testSystem(MESI, 1)
	a := m.Alloc(64, 64)
	write64(s, 0, a, 0xdeadbeef)
	if v, _ := read64(s, 0, a); v != 0xdeadbeef {
		t.Fatalf("read back %#x", v)
	}
	// Another core reads the value through coherence.
	if v, _ := read64(s, 3, a); v != 0xdeadbeef {
		t.Fatalf("remote read %#x", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIDowngradeAndInvalidateCounts(t *testing.T) {
	s, m, ctr := testSystem(MESI, 1)
	a := m.Alloc(64, 64)
	write64(s, 0, a, 1) // core 0: M
	read64(s, 1, a)     // Fwd-GetS: downgrade core 0 (L1+L2)
	if ctr.Downgrades != 2 {
		t.Fatalf("downgrades = %d, want 2 (L1+L2)", ctr.Downgrades)
	}
	write64(s, 2, a, 2) // GetM: invalidate both sharers
	if ctr.Invalidations != 4 {
		t.Fatalf("invalidations = %d, want 4 (2 sharers x 2 caches)", ctr.Invalidations)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIExclusiveGrantOnColdRead(t *testing.T) {
	s, m, _ := testSystem(MESI, 1)
	a := m.Alloc(64, 64)
	read64(s, 0, a)
	l1, _ := s.PrivateCaches()
	ln := l1[0].Peek(a)
	if ln == nil || ln.State != cache.Exclusive {
		t.Fatalf("cold read state = %v, want E", ln)
	}
	// A silent E->M upgrade must not need the directory.
	before := s.ctr.DirAccesses
	write64(s, 0, a, 7)
	if s.ctr.DirAccesses != before {
		t.Fatal("silent E->M upgrade went to the directory")
	}
}

func TestWardGrantAvoidsInvalidation(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, ok := s.AddRegion(0, a, a+4096)
	if !ok {
		t.Fatal("AddRegion failed")
	}
	write64(s, 0, a, 1)
	write64(s, 1, a, 2) // same block, second writer: W grant, no invalidation
	write64(s, 2, a+8, 3)
	if ctr.Invalidations != 0 || ctr.Downgrades != 0 {
		t.Fatalf("W-state writes caused inv=%d dg=%d", ctr.Invalidations, ctr.Downgrades)
	}
	if ctr.WardAccesses == 0 {
		t.Fatal("no accesses counted as WARD")
	}
	s.RemoveRegion(0, id)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWardWAWReconciliation: apathetic WAW — after reconciliation one of
// the written values persists (deterministically the highest core id's,
// since merges apply in ascending core order).
func TestWardWAWReconciliation(t *testing.T) {
	s, m, _ := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	write64(s, 0, a, 100)
	write64(s, 1, a, 200)
	write64(s, 3, a, 300)
	s.RemoveRegion(1, id)
	if v, _ := read64(s, 2, a); v != 300 {
		t.Fatalf("after WAW reconcile got %d, want 300 (last core processed)", v)
	}
}

// TestWardFalseSharingMerge: disjoint writes within one block must all
// survive reconciliation (the sectored-cache merge of §5.2/§6.1).
func TestWardFalseSharingMerge(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	write64(s, 0, a, 11)    // bytes 0-7
	write64(s, 1, a+8, 22)  // bytes 8-15
	write64(s, 2, a+16, 33) // bytes 16-23
	s.RemoveRegion(0, id)
	for i, want := range []uint64{11, 22, 33} {
		if v, _ := read64(s, 3, a+mem.Addr(8*i)); v != want {
			t.Fatalf("slot %d = %d, want %d", i, v, want)
		}
	}
	if ctr.FalseShareMerges == 0 {
		t.Fatal("false-sharing merge not counted")
	}
	if ctr.TrueShareMerges != 0 {
		t.Fatalf("true-share merges = %d, want 0", ctr.TrueShareMerges)
	}
}

// TestWardStalenessIsObservable: a cross-thread RAW inside a WARD region
// returns stale data — the simulator models W-state divergence for real,
// which is exactly why entangled programs must not be WARD-marked.
func TestWardStalenessIsObservable(t *testing.T) {
	s, m, _ := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	// Core 1 takes a W copy first, then core 0 writes.
	read64(s, 1, a)
	write64(s, 0, a, 42)
	if v, _ := read64(s, 1, a); v != 0 {
		t.Fatalf("WARD-violating read saw %d; wanted stale 0", v)
	}
	// After reconciliation the write is visible.
	s.RemoveRegion(0, id)
	if v, _ := read64(s, 1, a); v != 42 {
		t.Fatalf("post-reconcile read = %d, want 42", v)
	}
}

// TestWardOwnWritesVisible: a thread always observes its own W-state
// writes (read-own-writes within the private copy).
func TestWardOwnWritesVisible(t *testing.T) {
	s, m, _ := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	write64(s, 2, a+24, 7)
	if v, _ := read64(s, 2, a+24); v != 7 {
		t.Fatalf("own W write invisible: %d", v)
	}
	s.RemoveRegion(0, id)
}

func TestAtomicsBypassWard(t *testing.T) {
	s, m, ctr := testSystem(WARDen, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, _, _ := s.AddRegion(0, a, a+4096)
	write64(s, 0, a, 5) // W state
	old, _ := s.RMW(1, a, 8, func(v uint64) uint64 { return v + 1 })
	// The forced reconcile must have merged core 0's write first.
	if old != 5 {
		t.Fatalf("atomic saw %d, want 5 (reconciled)", old)
	}
	if v, _ := read64(s, 2, a); v != 6 {
		t.Fatalf("after atomic: %d, want 6", v)
	}
	_ = ctr
	s.RemoveRegion(0, id)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyMESIUnaffectedByRegionOps(t *testing.T) {
	// Under the MESI protocol, region instructions are no-ops.
	s, m, ctr := testSystem(MESI, 1)
	a := m.Alloc(4096, mem.PageSize)
	id, lat, ok := s.AddRegion(0, a, a+4096)
	if ok || id != NullRegion {
		t.Fatal("MESI machine registered a region")
	}
	if lat > 4 {
		t.Fatalf("MESI AddRegion cost %d cycles", lat)
	}
	write64(s, 0, a, 1)
	write64(s, 1, a, 2)
	if ctr.WardAccesses != 0 {
		t.Fatal("MESI machine recorded WARD accesses")
	}
	s.RemoveRegion(0, id)
}

func TestWardenWithoutRegionsIsMESI(t *testing.T) {
	// A WARDen machine running a program that never registers regions must
	// behave exactly like MESI (legacy support, Fig. 1).
	run := func(proto Protocol) (uint64, stats.Counters) {
		s, m, ctr := testSystem(proto, 2)
		base := m.Alloc(1<<16, mem.PageSize)
		var lat uint64
		for i := 0; i < 2000; i++ {
			c := i % 8
			a := base + mem.Addr((i*104729)%(1<<16-8)&^7)
			if i%3 == 0 {
				lat += write64(s, c, a, uint64(i))
			} else {
				_, l := read64(s, c, a)
				lat += l
			}
		}
		return lat, *ctr
	}
	latM, ctrM := run(MESI)
	latW, ctrW := run(WARDen)
	if latM != latW {
		t.Fatalf("latency differs: MESI %d vs WARDen %d", latM, latW)
	}
	if ctrM != ctrW {
		t.Fatal("counters differ between MESI and region-free WARDen")
	}
}

func TestRegionOverflowFallsBackToMESI(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 2
	cfg.WardRegionCapacity = 2
	m := mem.New(0)
	ctr := &stats.Counters{}
	s := NewSystem(cfg, WARDen, m, ctr)
	base := m.AllocPages(4)
	var ids []RegionID
	for i := 0; i < 3; i++ {
		lo := base + mem.Addr(i)*mem.PageSize
		id, _, ok := s.AddRegion(0, lo, lo+mem.PageSize)
		if i < 2 != ok {
			t.Fatalf("region %d: ok=%v", i, ok)
		}
		ids = append(ids, id)
	}
	if ctr.RegionOverflows != 1 {
		t.Fatalf("overflows = %d, want 1", ctr.RegionOverflows)
	}
	// The overflowed page's accesses take MESI paths.
	a := base + 2*mem.PageSize
	write64(s, 0, a, 1)
	write64(s, 1, a, 2)
	if ctr.Invalidations == 0 {
		t.Fatal("expected MESI invalidations for the unmarked page")
	}
	for _, id := range ids {
		s.RemoveRegion(0, id)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionWritebackAndRefetch(t *testing.T) {
	// Make a tiny L2 so evictions actually happen, then verify modified
	// data survives eviction and re-fetch.
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 2
	cfg.L1Size = 1 << 10
	cfg.L2Size = 2 << 10 // 32 blocks
	m := mem.New(0)
	ctr := &stats.Counters{}
	s := NewSystem(cfg, MESI, m, ctr)
	base := m.Alloc(1<<14, mem.PageSize) // 256 blocks: 8x the L2
	for i := 0; i < 256; i++ {
		write64(s, 0, base+mem.Addr(i*64), uint64(i)+1)
	}
	for i := 0; i < 256; i++ {
		if v, _ := read64(s, 0, base+mem.Addr(i*64)); v != uint64(i)+1 {
			t.Fatalf("block %d lost its value: %d", i, v)
		}
	}
	if ctr.Msgs[stats.PutM] == 0 {
		t.Fatal("no PutM writebacks despite capacity evictions")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWardEvictionFlushesCopy(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 2
	cfg.L1Size = 1 << 10
	cfg.L2Size = 2 << 10
	m := mem.New(0)
	ctr := &stats.Counters{}
	s := NewSystem(cfg, WARDen, m, ctr)
	base := m.Alloc(1<<14, mem.PageSize)
	id, _, _ := s.AddRegion(0, base, base+1<<14)
	for i := 0; i < 256; i++ { // far beyond L2: W blocks evict
		write64(s, 0, base+mem.Addr(i*64), uint64(i)+1)
	}
	if ctr.ReconciledBlocks == 0 {
		t.Fatal("expected eviction-time reconcile flushes")
	}
	s.RemoveRegion(0, id)
	for i := 0; i < 256; i++ {
		if v, _ := read64(s, 1, base+mem.Addr(i*64)); v != uint64(i)+1 {
			t.Fatalf("block %d = %d after flush+reconcile", i, v)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomTrafficInvariants drives random reads/writes/atomics from
// random cores, with and without WARD regions, and checks the protocol
// invariants plus (after a final drain) agreement with a sequential
// reference model. Writes are arranged so that WARD regions only ever see
// disjoint per-core slices (a disentangled access pattern), making the
// reference model exact.
func TestQuickRandomTrafficInvariants(t *testing.T) {
	f := func(seed uint32, ops []uint16) bool {
		s, m, _ := testSystem(WARDen, 2)
		cores := s.Config().Cores()
		base := m.Alloc(1<<14, mem.PageSize)
		ref := make(map[mem.Addr]uint64)

		// One WARD region over the second half; each core owns a disjoint
		// slice of it.
		wardBase := base + 1<<13
		id, _, ok := s.AddRegion(0, wardBase, base+1<<14)
		if !ok {
			return false
		}
		sliceSize := (1 << 13) / cores

		for i, op := range ops {
			c := int(op) % cores
			kind := (int(op) >> 4) % 3
			off := (int(op)*2654435761 + int(seed)) % (1<<13 - 8)
			off &^= 7
			switch kind {
			case 0: // MESI-side write
				a := base + mem.Addr(off)
				v := uint64(i)*2654435761 + 1
				write64(s, c, a, v)
				ref[a] = v
			case 1: // WARD write into the core's own slice
				a := wardBase + mem.Addr(c*sliceSize+off%(sliceSize-8)&^7)
				v := uint64(i)*40503 + 7
				write64(s, c, a, v)
				ref[a] = v
			case 2: // read anywhere in the MESI half
				a := base + mem.Addr(off)
				if v, _ := read64(s, c, a); v != ref[a] {
					t.Logf("MESI read at %#x: got %d want %d", uint64(a), v, ref[a])
					return false
				}
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		s.RemoveRegion(0, id)
		s.DrainAll()
		for a, v := range ref {
			if got := m.ReadUint(a, 8); got != v {
				t.Logf("final memory at %#x: got %d want %d", uint64(a), got, v)
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSectorGranularityValidation(t *testing.T) {
	s, _, _ := testSystem(WARDen, 1)
	for _, bad := range []uint64{0, 3, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetSectorSize(%d) did not panic", bad)
				}
			}()
			s.SetSectorSize(bad)
		}()
	}
	s.SetSectorSize(8) // word sectoring is fine
}

func TestProtocolString(t *testing.T) {
	if MESI.String() != "MESI" || WARDen.String() != "WARDen" {
		t.Fatal("protocol names wrong")
	}
}
