package core

import (
	"fmt"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// wardCopy is a core's private copy of a W-state block, with a sector mask
// recording which sectors this core wrote. This is the sectored-cache
// storage of §6.1 plus the private data that real hardware keeps in the
// cache's data array.
type wardCopy struct {
	data [64]byte
	mask cache.SectorMask
}

const (
	// regionOpCycles is the local cost of executing an Add/Remove Region
	// instruction (§6.1 expects the two new instructions to be cheap).
	regionOpCycles = 2
	// reconcileBlocksPerCycle is the directory's bulk-reconciliation rate
	// as seen by the removing core. Reconciliation is overlappable with
	// computation (§5.3) and parallelizable across directory banks (§6.1
	// suggests exactly that); the paper measures it at roughly one block
	// per 50k cycles in practice, so the core pays only a pipelined issue
	// cost.
	reconcileBlocksPerCycle = 4
	// forcedReconcileCycles is the critical-path cost of reconciling a
	// single block synchronously (an atomic hitting a W block must wait).
	forcedReconcileCycles = 8
	// rmwExtraCycles approximates the extra pipeline cost of an atomic
	// read-modify-write beyond obtaining write permission.
	rmwExtraCycles = 9
)

// System is the simulated memory system: per-core private L1/L2 caches,
// per-socket shared L3 slices, a full-map directory per the configured
// protocol, and the interconnect fabric. All methods are single-threaded;
// the simulation engine serializes cores.
//
// The implementation is layered across three files: this one holds the
// access paths (the instruction-facing API), protocol.go holds the
// directory transactions and private-cache maintenance (the protocol state
// machines), and event.go holds the structured event stream that observers
// subscribe to via SetSink.
type System struct {
	cfg    topology.Config
	proto  Protocol
	impl   ProtocolImpl // the registered state machine proto names
	mem    *mem.Memory
	ctr    *stats.Counters
	fabric *coherence.Fabric
	dir    *coherence.Directory

	l1, l2 []*cache.Cache // indexed by core
	l3     []*cache.Cache // indexed by socket

	regions    *regionTable
	wcopies    []map[mem.Addr]*wardCopy // indexed by core
	sectorSize uint64                   // bytes per sector bit (default 1: byte sectoring)

	detectEntangle bool
	violations     []Violation

	// Event stream (see event.go). sink == nil is the fast path: no
	// snapshots are taken and no events are built.
	sink     Sink
	evSeq    uint64
	evThread int    // hardware thread driving the current op (-1 when unknown)
	evCycle  uint64 // issuing thread's local clock for the current op
}

// NewSystem builds a memory system for the given machine and protocol over
// the given backing store, recording events into ctr.
func NewSystem(cfg topology.Config, proto Protocol, m *mem.Memory, ctr *stats.Counters) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Cores() > coherence.MaxCores {
		panic(fmt.Sprintf("core: %d cores exceeds directory sharer-mask capacity %d", cfg.Cores(), coherence.MaxCores))
	}
	if cfg.BlockSize > 64 {
		panic("core: block sizes above 64 bytes are not supported by the sector mask")
	}
	s := &System{
		cfg:        cfg,
		proto:      proto,
		mem:        m,
		ctr:        ctr,
		fabric:     coherence.NewFabric(cfg, ctr),
		dir:        coherence.NewDirectory(),
		regions:    newRegionTable(cfg.WardRegionCapacity),
		sectorSize: 1,
		evThread:   -1,
	}
	for c := 0; c < cfg.Cores(); c++ {
		s.l1 = append(s.l1, cache.New(fmt.Sprintf("L1-%d", c), cfg.L1Size, cfg.L1Assoc, cfg.BlockSize))
		s.l2 = append(s.l2, cache.New(fmt.Sprintf("L2-%d", c), cfg.L2Size, cfg.L2Assoc, cfg.BlockSize))
		s.wcopies = append(s.wcopies, make(map[mem.Addr]*wardCopy))
	}
	for k := 0; k < cfg.Sockets; k++ {
		s.l3 = append(s.l3, cache.New(fmt.Sprintf("L3-%d", k), cfg.L3SizePerSocket(), cfg.L3Assoc, cfg.BlockSize))
	}
	// The registered state machine is built last: its constructor may
	// inspect the caches, directory, and fabric above.
	s.impl = Describe(proto).New(s)
	return s
}

// Protocol returns the protocol the system runs.
func (s *System) Protocol() Protocol { return s.proto }

// Config returns the machine configuration.
func (s *System) Config() topology.Config { return s.cfg }

// Mem returns the canonical backing store.
func (s *System) Mem() *mem.Memory { return s.mem }

// SetSectorSize overrides the sector granularity (bytes per write-mask bit).
// The default is 1 (byte sectoring, §6.1); the ablation harness uses 8
// (word) and BlockSize (whole-block). Must be called before any access.
func (s *System) SetSectorSize(n uint64) {
	if n == 0 || n&(n-1) != 0 || s.cfg.BlockSize/n > 64 || n > s.cfg.BlockSize {
		panic(fmt.Sprintf("core: invalid sector size %d for block size %d", n, s.cfg.BlockSize))
	}
	s.sectorSize = n
}

// ActiveRegions reports the number of registered WARD regions.
func (s *System) ActiveRegions() int { return s.regions.len() }

// PrivateCaches returns the per-core L1 and L2 caches for stats collection.
func (s *System) PrivateCaches() (l1, l2 []*cache.Cache) { return s.l1, s.l2 }

// ---------------------------------------------------------------------------
// Access paths

// AccessMode classifies what permission an access needs from the memory
// system. It is exported so event-stream consumers can tell event kinds
// apart without string matching.
type AccessMode int

const (
	ModeRead AccessMode = iota
	ModeWrite
	ModeAtomic // write permission, but never via the W state
)

// String names the access mode.
func (m AccessMode) String() string {
	switch m {
	case ModeWrite:
		return "write"
	case ModeAtomic:
		return "atomic"
	default:
		return "read"
	}
}

// Read performs a load of len(buf) bytes at a (which must not cross a cache
// block boundary) by core, fills buf, and returns the access latency in
// cycles.
func (s *System) Read(core int, a mem.Addr, buf []byte) uint64 {
	s.checkSpan(a, len(buf))
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, ModeRead)
	if st == cache.Ward {
		s.ctr.WardAccesses++
		wc := s.wcopy(core, block)
		copy(buf, wc.data[a-block:int(a-block)+len(buf)])
		if s.detectEntangle {
			if e := s.dir.Lookup(block); e != nil && e.State == cache.Ward {
				s.checkEntangledRead(core, block, a, len(buf), e)
			}
		}
	} else {
		s.mem.Read(a, buf)
	}
	return lat
}

// Write performs a store of src at a (within one block) by core and returns
// the access latency; the store buffer in internal/machine decides how much
// of that latency stalls the core.
func (s *System) Write(core int, a mem.Addr, src []byte) uint64 {
	s.checkSpan(a, len(src))
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, ModeWrite)
	if st == cache.Ward {
		s.ctr.WardAccesses++
		wc := s.wcopy(core, block)
		copy(wc.data[a-block:], src)
		lo := uint(a-block) / uint(s.sectorSize)
		hi := (uint(a-block) + uint(len(src)) + uint(s.sectorSize) - 1) / uint(s.sectorSize)
		wc.mask = wc.mask.Set(lo, hi-lo)
	} else {
		s.mem.Write(a, src)
	}
	return lat
}

// RMW performs an atomic read-modify-write of a size-byte integer at a.
// Atomics are synchronization, which the WARD property explicitly does not
// cover, so they always take the MESI path: a W-state block is first
// reconciled, then owned exclusively.
func (s *System) RMW(core int, a mem.Addr, size int, fn func(old uint64) uint64) (old uint64, lat uint64) {
	s.checkSpan(a, size)
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, ModeAtomic)
	if st == cache.Ward {
		panic("core: atomic acquired a Ward line")
	}
	old = s.mem.ReadUint(a, size)
	s.mem.WriteUint(a, size, fn(old))
	return old, lat + rmwExtraCycles
}

func (s *System) checkSpan(a mem.Addr, n int) {
	if n <= 0 || uint64(a)/s.cfg.BlockSize != (uint64(a)+uint64(n)-1)/s.cfg.BlockSize {
		panic(fmt.Sprintf("core: access at %#x size %d crosses a block boundary", uint64(a), n))
	}
}

func (s *System) wcopy(core int, block mem.Addr) *wardCopy {
	wc, ok := s.wcopies[core][block]
	if !ok {
		wc = &wardCopy{}
		s.mem.Read(block, wc.data[:s.cfg.BlockSize])
		s.wcopies[core][block] = wc
	}
	return wc
}

// acquire obtains block at core with permissions for the given mode and
// returns the line's resulting state and the latency. On return the block is
// present in the core's L1 and L2.
func (s *System) acquire(core int, block mem.Addr, mode AccessMode) (cache.State, uint64) {
	lat := s.cfg.L1Latency
	s.ctr.L1Accesses++
	if ln := s.l1[core].Lookup(block); ln != nil {
		if ok, st := s.privHit(core, block, ln.State, mode); ok {
			s.l1[core].Hits++
			s.ctr.L1Hits++
			return st, lat
		}
	} else {
		s.ctr.L2Accesses++
		lat += s.cfg.L2Latency
		if ln2 := s.l2[core].Lookup(block); ln2 != nil {
			if ok, st := s.privHit(core, block, ln2.State, mode); ok {
				s.l2[core].Hits++
				s.ctr.L2Hits++
				s.fillL1(core, block, st)
				return st, lat
			}
		} else {
			s.l2[core].Misses++
		}
	}
	// Private miss (or S->M upgrade): go to the directory.
	st, dlat := s.dirTransaction(core, block, mode)
	return st, lat + dlat
}

// privHit decides whether a privately cached line in state st satisfies the
// access without a directory transaction, returning the (possibly silently
// upgraded) state. The decision is the protocol's.
func (s *System) privHit(core int, block mem.Addr, st cache.State, mode AccessMode) (bool, cache.State) {
	return s.impl.PrivHit(core, block, st, mode)
}

// SyncPoint runs the protocol's synchronization-point hook for core and
// returns the latency charged. The machine calls it on fences when the
// protocol's descriptor sets SyncFences (self-invalidation protocols);
// eagerly coherent protocols return 0 and never see the call.
func (s *System) SyncPoint(core int) uint64 { return s.impl.SyncPoint(core) }

// ---------------------------------------------------------------------------
// WARD region instructions

// AddRegion executes the "Add Region" instruction for [lo, hi) on behalf of
// core. Under MESI (legacy hardware) it is a cheap no-op. It returns the
// region id (NullRegion if not registered), the latency, and whether a
// region became active.
//
// The interval is rounded *inward* to cache-block boundaries: a block only
// partially inside a region cannot have coherence disabled, because its
// remaining bytes may hold unrelated data that other threads access
// coherently (the region's edge blocks therefore stay on the MESI paths).
// The paper's page-granular heap regions are always block-aligned; this
// matters for the library's byte-granular bulk-operation scopes.
func (s *System) AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool) {
	return s.impl.AddRegion(core, lo, hi)
}

// RemoveRegion executes the "Remove Region" instruction: it deactivates the
// region and reconciles every block it holds in the W state (§5.2),
// returning the latency charged to the removing core.
func (s *System) RemoveRegion(core int, id RegionID) uint64 {
	return s.impl.RemoveRegion(core, id)
}
