package core

import (
	"fmt"
	"sort"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
	"warden/internal/topology"
)

// Protocol selects the coherence protocol the memory system runs.
type Protocol int

const (
	// MESI is the baseline directory protocol of the paper; AddRegion/
	// RemoveRegion are near-free no-ops, modelling standard hardware.
	MESI Protocol = iota
	// WARDen is MESI augmented with the W state, the WARD region table, and
	// reconciliation (§5).
	WARDen
	// MOESI is a stronger baseline than the paper evaluates: the Owned
	// state lets a dirty block be shared without writing it back, with the
	// owner sourcing data for readers. Useful for judging how much of
	// WARDen's win a better legacy protocol could claw back.
	MOESI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case WARDen:
		return "WARDen"
	case MOESI:
		return "MOESI"
	default:
		return "MESI"
	}
}

// wardCopy is a core's private copy of a W-state block, with a sector mask
// recording which sectors this core wrote. This is the sectored-cache
// storage of §6.1 plus the private data that real hardware keeps in the
// cache's data array.
type wardCopy struct {
	data [64]byte
	mask cache.SectorMask
}

const (
	// regionOpCycles is the local cost of executing an Add/Remove Region
	// instruction (§6.1 expects the two new instructions to be cheap).
	regionOpCycles = 2
	// reconcileBlocksPerCycle is the directory's bulk-reconciliation rate
	// as seen by the removing core. Reconciliation is overlappable with
	// computation (§5.3) and parallelizable across directory banks (§6.1
	// suggests exactly that); the paper measures it at roughly one block
	// per 50k cycles in practice, so the core pays only a pipelined issue
	// cost.
	reconcileBlocksPerCycle = 4
	// forcedReconcileCycles is the critical-path cost of reconciling a
	// single block synchronously (an atomic hitting a W block must wait).
	forcedReconcileCycles = 8
	// rmwExtraCycles approximates the extra pipeline cost of an atomic
	// read-modify-write beyond obtaining write permission.
	rmwExtraCycles = 9
)

// System is the simulated memory system: per-core private L1/L2 caches,
// per-socket shared L3 slices, a full-map directory per the configured
// protocol, and the interconnect fabric. All methods are single-threaded;
// the simulation engine serializes cores.
type System struct {
	cfg    topology.Config
	proto  Protocol
	mem    *mem.Memory
	ctr    *stats.Counters
	fabric *coherence.Fabric
	dir    *coherence.Directory

	l1, l2 []*cache.Cache // indexed by core
	l3     []*cache.Cache // indexed by socket

	regions    *regionTable
	wcopies    []map[mem.Addr]*wardCopy // indexed by core
	sectorSize uint64                   // bytes per sector bit (default 1: byte sectoring)

	detectEntangle bool
	violations     []Violation
}

// NewSystem builds a memory system for the given machine and protocol over
// the given backing store, recording events into ctr.
func NewSystem(cfg topology.Config, proto Protocol, m *mem.Memory, ctr *stats.Counters) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Cores() > coherence.MaxCores {
		panic(fmt.Sprintf("core: %d cores exceeds directory sharer-mask capacity %d", cfg.Cores(), coherence.MaxCores))
	}
	if cfg.BlockSize > 64 {
		panic("core: block sizes above 64 bytes are not supported by the sector mask")
	}
	s := &System{
		cfg:        cfg,
		proto:      proto,
		mem:        m,
		ctr:        ctr,
		fabric:     coherence.NewFabric(cfg, ctr),
		dir:        coherence.NewDirectory(),
		regions:    newRegionTable(cfg.WardRegionCapacity),
		sectorSize: 1,
	}
	for c := 0; c < cfg.Cores(); c++ {
		s.l1 = append(s.l1, cache.New(fmt.Sprintf("L1-%d", c), cfg.L1Size, cfg.L1Assoc, cfg.BlockSize))
		s.l2 = append(s.l2, cache.New(fmt.Sprintf("L2-%d", c), cfg.L2Size, cfg.L2Assoc, cfg.BlockSize))
		s.wcopies = append(s.wcopies, make(map[mem.Addr]*wardCopy))
	}
	for k := 0; k < cfg.Sockets; k++ {
		s.l3 = append(s.l3, cache.New(fmt.Sprintf("L3-%d", k), cfg.L3SizePerSocket(), cfg.L3Assoc, cfg.BlockSize))
	}
	return s
}

// Protocol returns the protocol the system runs.
func (s *System) Protocol() Protocol { return s.proto }

// Config returns the machine configuration.
func (s *System) Config() topology.Config { return s.cfg }

// Mem returns the canonical backing store.
func (s *System) Mem() *mem.Memory { return s.mem }

// SetSectorSize overrides the sector granularity (bytes per write-mask bit).
// The default is 1 (byte sectoring, §6.1); the ablation harness uses 8
// (word) and BlockSize (whole-block). Must be called before any access.
func (s *System) SetSectorSize(n uint64) {
	if n == 0 || n&(n-1) != 0 || s.cfg.BlockSize/n > 64 || n > s.cfg.BlockSize {
		panic(fmt.Sprintf("core: invalid sector size %d for block size %d", n, s.cfg.BlockSize))
	}
	s.sectorSize = n
}

// ActiveRegions reports the number of registered WARD regions.
func (s *System) ActiveRegions() int { return s.regions.len() }

// PrivateCaches returns the per-core L1 and L2 caches for stats collection.
func (s *System) PrivateCaches() (l1, l2 []*cache.Cache) { return s.l1, s.l2 }

// ---------------------------------------------------------------------------
// Access paths

type accessMode int

const (
	modeRead accessMode = iota
	modeWrite
	modeAtomic // write permission, but never via the W state
)

// Read performs a load of len(buf) bytes at a (which must not cross a cache
// block boundary) by core, fills buf, and returns the access latency in
// cycles.
func (s *System) Read(core int, a mem.Addr, buf []byte) uint64 {
	s.checkSpan(a, len(buf))
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, modeRead)
	if st == cache.Ward {
		s.ctr.WardAccesses++
		wc := s.wcopy(core, block)
		copy(buf, wc.data[a-block:int(a-block)+len(buf)])
		if s.detectEntangle {
			if e := s.dir.Lookup(block); e != nil && e.State == cache.Ward {
				s.checkEntangledRead(core, block, a, len(buf), e)
			}
		}
	} else {
		s.mem.Read(a, buf)
	}
	return lat
}

// Write performs a store of src at a (within one block) by core and returns
// the access latency; the store buffer in internal/machine decides how much
// of that latency stalls the core.
func (s *System) Write(core int, a mem.Addr, src []byte) uint64 {
	s.checkSpan(a, len(src))
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, modeWrite)
	if st == cache.Ward {
		s.ctr.WardAccesses++
		wc := s.wcopy(core, block)
		copy(wc.data[a-block:], src)
		lo := uint(a-block) / uint(s.sectorSize)
		hi := (uint(a-block) + uint(len(src)) + uint(s.sectorSize) - 1) / uint(s.sectorSize)
		wc.mask = wc.mask.Set(lo, hi-lo)
	} else {
		s.mem.Write(a, src)
	}
	return lat
}

// RMW performs an atomic read-modify-write of a size-byte integer at a.
// Atomics are synchronization, which the WARD property explicitly does not
// cover, so they always take the MESI path: a W-state block is first
// reconciled, then owned exclusively.
func (s *System) RMW(core int, a mem.Addr, size int, fn func(old uint64) uint64) (old uint64, lat uint64) {
	s.checkSpan(a, size)
	block := a.Block(s.cfg.BlockSize)
	st, lat := s.acquire(core, block, modeAtomic)
	if st == cache.Ward {
		panic("core: atomic acquired a Ward line")
	}
	old = s.mem.ReadUint(a, size)
	s.mem.WriteUint(a, size, fn(old))
	return old, lat + rmwExtraCycles
}

func (s *System) checkSpan(a mem.Addr, n int) {
	if n <= 0 || uint64(a)/s.cfg.BlockSize != (uint64(a)+uint64(n)-1)/s.cfg.BlockSize {
		panic(fmt.Sprintf("core: access at %#x size %d crosses a block boundary", uint64(a), n))
	}
}

func (s *System) wcopy(core int, block mem.Addr) *wardCopy {
	wc, ok := s.wcopies[core][block]
	if !ok {
		wc = &wardCopy{}
		s.mem.Read(block, wc.data[:s.cfg.BlockSize])
		s.wcopies[core][block] = wc
	}
	return wc
}

// acquire obtains block at core with permissions for the given mode and
// returns the line's resulting state and the latency. On return the block is
// present in the core's L1 and L2.
func (s *System) acquire(core int, block mem.Addr, mode accessMode) (cache.State, uint64) {
	lat := s.cfg.L1Latency
	s.ctr.L1Accesses++
	if ln := s.l1[core].Lookup(block); ln != nil {
		if ok, st := s.privHit(core, block, ln.State, mode); ok {
			s.l1[core].Hits++
			s.ctr.L1Hits++
			return st, lat
		}
	} else {
		s.ctr.L2Accesses++
		lat += s.cfg.L2Latency
		if ln2 := s.l2[core].Lookup(block); ln2 != nil {
			if ok, st := s.privHit(core, block, ln2.State, mode); ok {
				s.l2[core].Hits++
				s.ctr.L2Hits++
				s.fillL1(core, block, st)
				return st, lat
			}
		} else {
			s.l2[core].Misses++
		}
	}
	// Private miss (or S->M upgrade): go to the directory.
	st, dlat := s.dirTransaction(core, block, mode)
	return st, lat + dlat
}

// privHit decides whether a privately cached line in state st satisfies the
// access without a directory transaction, returning the (possibly silently
// upgraded) state.
func (s *System) privHit(core int, block mem.Addr, st cache.State, mode accessMode) (bool, cache.State) {
	switch mode {
	case modeRead:
		return true, st
	case modeWrite:
		switch st {
		case cache.Modified, cache.Ward:
			return true, st
		case cache.Exclusive:
			// Silent E->M upgrade; the directory's E entry already names
			// this core as owner.
			s.setPrivState(core, block, cache.Modified)
			return true, cache.Modified
		}
		return false, st // S needs an upgrade
	case modeAtomic:
		switch st {
		case cache.Modified:
			return true, st
		case cache.Exclusive:
			s.setPrivState(core, block, cache.Modified)
			return true, cache.Modified
		}
		return false, st // S upgrade; Ward must reconcile at the directory
	}
	panic("core: unknown access mode")
}

// ---------------------------------------------------------------------------
// Directory transactions

// dirTransaction performs a full coherence transaction at block's home
// directory on behalf of core. Because the simulation engine serializes
// cores, the transaction runs atomically; latency and messages accumulate
// as if the message sequence executed on the fabric.
func (s *System) dirTransaction(core int, block mem.Addr, mode accessMode) (cache.State, uint64) {
	req := stats.GetS
	if mode != modeRead {
		req = stats.GetM
	}
	lat := s.fabric.CoreToHome(req, core, block)
	s.ctr.DirAccesses++
	lat += s.cfg.L3Latency // directory + LLC slice access
	e := s.dir.Ensure(block)

	// WARDen: in-region blocks take the W path, which never invalidates or
	// downgrades anyone (§5.1). Atomics are exempt.
	if s.proto == WARDen && mode != modeAtomic {
		if rid, ok := s.regions.lookup(block); ok {
			return cache.Ward, lat + s.wardGrant(core, block, e, rid)
		}
	}
	// A W block reached by an atomic, or whose region disappeared without
	// removal (defensive): reconcile it on the spot, then continue as MESI.
	if e.State == cache.Ward {
		s.reconcileBlock(block, e, true)
		lat += forcedReconcileCycles
	}

	switch mode {
	case modeRead:
		return s.mesiGetS(core, block, e, &lat), lat
	default:
		return s.mesiGetM(core, block, e, &lat), lat
	}
}

// mesiGetS is the MESI read-miss transaction.
func (s *System) mesiGetS(core int, block mem.Addr, e *coherence.Entry, lat *uint64) cache.State {
	switch e.State {
	case cache.Invalid:
		// No cached copies: fetch from LLC/DRAM and grant Exclusive (the
		// MESI E optimization for unshared data).
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)
		e.State = cache.Exclusive
		e.Owner = core
		e.Sharers = 0
		s.installPrivate(core, block, cache.Exclusive)
		return cache.Exclusive

	case cache.Exclusive:
		if e.Owner == core {
			panic("core: GetS from the recorded owner (private state out of sync)")
		}
		// Forward to the owner, who downgrades and sends the requester the
		// data. Under MESI a dirty owner also writes back to the LLC and
		// everyone ends Shared; under MOESI a dirty owner keeps the block
		// in Owned and remains responsible for sourcing it.
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetS, block, owner)
		*lat += s.cfg.L2Latency // owner's private lookup
		ownerLine := s.l2[owner].Peek(block)
		dirty := ownerLine != nil && ownerLine.State == cache.Modified
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		if s.proto == MOESI && dirty {
			s.downgradePrivateTo(owner, block, cache.Owned)
			e.State = cache.Owned
			e.Owner = owner
			e.Sharers = coherence.Bitset(0).Add(core)
		} else {
			s.downgradePrivate(owner, block)
			if dirty {
				s.fabric.CoreToHome(stats.DataDir, owner, block) // writeback, off critical path
			}
			e.State = cache.Shared
			e.Sharers = coherence.Bitset(0).Add(owner).Add(core)
		}
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared

	case cache.Owned:
		// MOESI: the owner sources the data; no LLC involvement, no
		// writeback, no state change at the owner.
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetS, block, owner)
		*lat += s.cfg.L2Latency
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		e.Sharers = e.Sharers.Add(core)
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared

	case cache.Shared:
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)
		e.Sharers = e.Sharers.Add(core)
		s.installPrivate(core, block, cache.Shared)
		return cache.Shared
	}
	panic(fmt.Sprintf("core: GetS with directory in state %v", e.State))
}

// mesiGetM is the MESI write-miss/upgrade transaction.
func (s *System) mesiGetM(core int, block mem.Addr, e *coherence.Entry, lat *uint64) cache.State {
	switch e.State {
	case cache.Invalid:
		*lat += s.llcFetch(block)
		*lat += s.fabric.HomeToCore(stats.Data, block, core)

	case cache.Exclusive:
		if e.Owner == core {
			panic("core: GetM from the recorded owner (private state out of sync)")
		}
		owner := e.Owner
		*lat += s.fabric.HomeToCore(stats.FwdGetM, block, owner)
		*lat += s.cfg.L2Latency
		s.invalidatePrivate(owner, block, true)
		*lat += s.fabric.CoreToCore(stats.Data, owner, core)

	case cache.Owned:
		// MOESI: invalidate the sharers; the owner supplies data (or just
		// upgrades in place if the requester is the owner).
		owner := e.Owner
		var worst uint64
		e.Sharers.ForEach(func(sh int) {
			if sh == core {
				return
			}
			l := s.fabric.HomeToCore(stats.Inv, block, sh)
			s.invalidatePrivate(sh, block, true)
			l += s.fabric.CoreToCore(stats.InvAck, sh, core)
			if l > worst {
				worst = l
			}
		})
		*lat += worst
		if owner != core {
			*lat += s.fabric.HomeToCore(stats.FwdGetM, block, owner)
			*lat += s.cfg.L2Latency
			s.invalidatePrivate(owner, block, true)
			*lat += s.fabric.CoreToCore(stats.Data, owner, core)
		}

	case cache.Shared:
		// Invalidate every other sharer; invalidations proceed in parallel,
		// so latency is the slowest inv+ack round.
		upgrade := e.Sharers.Has(core)
		var worst uint64
		e.Sharers.ForEach(func(sh int) {
			if sh == core {
				return
			}
			l := s.fabric.HomeToCore(stats.Inv, block, sh)
			s.invalidatePrivate(sh, block, true)
			l += s.fabric.CoreToCore(stats.InvAck, sh, core)
			if l > worst {
				worst = l
			}
		})
		*lat += worst
		if !upgrade {
			*lat += s.llcFetch(block)
			*lat += s.fabric.HomeToCore(stats.Data, block, core)
		}
	default:
		panic(fmt.Sprintf("core: GetM with directory in state %v", e.State))
	}
	e.State = cache.Exclusive
	e.Owner = core
	e.Sharers = 0
	s.installPrivate(core, block, cache.Modified)
	return cache.Modified
}

// wardGrant serves a request for a block inside an active WARD region: the
// directory moves the block to W (if not already), adds the requester to the
// holder set, and furnishes a copy without invalidating or downgrading any
// other holder (§5.1).
func (s *System) wardGrant(core int, block mem.Addr, e *coherence.Entry, rid RegionID) uint64 {
	var lat uint64
	if e.State != cache.Ward {
		switch e.State {
		case cache.Exclusive:
			// The previous owner keeps its copy, now as a W line with a
			// fresh private snapshot. No invalidation, no downgrade.
			owner := e.Owner
			e.Sharers = coherence.Bitset(0).Add(owner)
			s.setPrivState(owner, block, cache.Ward)
			s.wcopy(owner, block)
		case cache.Shared:
			// Existing S holders keep their (clean, still-valid) S lines.
		case cache.Invalid:
			e.Sharers = 0
		}
		e.State = cache.Ward
		e.Region = uint32(rid)
		s.regions.noteBlock(rid, block)
	}
	already := e.Sharers.Has(core) && s.l2[core].Peek(block) != nil
	e.Sharers = e.Sharers.Add(core)
	if !already {
		lat += s.llcFetch(block)
		lat += s.fabric.HomeToCore(stats.Data, block, core)
	}
	s.installPrivate(core, block, cache.Ward)
	s.wcopy(core, block)
	return lat
}

// llcFetch reads block at its home LLC slice, falling back to DRAM on miss,
// and returns the latency beyond the already-charged L3 access.
func (s *System) llcFetch(block mem.Addr) uint64 {
	home := s.fabric.HomeSocket(block)
	s.ctr.L3Accesses++
	l3 := s.l3[home]
	if l3.Lookup(block) != nil {
		l3.Hits++
		s.ctr.L3Hits++
		return 0
	}
	l3.Misses++
	s.ctr.DRAMAccesses++
	l3.Insert(block, cache.Shared) // LLC victim drops silently (non-inclusive LLC)
	return s.cfg.DRAMLatency
}

// ---------------------------------------------------------------------------
// Private-cache maintenance

// fillL1 installs block into L1 after an L2 hit (inclusion holds; the L1
// victim needs no action).
func (s *System) fillL1(core int, block mem.Addr, st cache.State) {
	s.l1[core].Insert(block, st)
}

// installPrivate installs block into the core's L2 then L1, handling the L2
// capacity victim's protocol actions.
func (s *System) installPrivate(core int, block mem.Addr, st cache.State) {
	if ev, ok := s.l2[core].Insert(block, st); ok {
		s.evictL2Victim(core, ev)
	}
	s.l1[core].Insert(block, st)
}

// setPrivState updates block's state in the core's L1 and L2 where present.
func (s *System) setPrivState(core int, block mem.Addr, st cache.State) {
	if ln := s.l2[core].Peek(block); ln != nil {
		ln.State = st
	}
	if ln := s.l1[core].Peek(block); ln != nil {
		ln.State = st
	}
}

// invalidatePrivate removes block from the core's private caches; when
// coherence is true the removals are counted as coherence invalidations
// (one per cache holding the block, matching the paper's per-cache counts).
func (s *System) invalidatePrivate(core int, block mem.Addr, coherenceInv bool) {
	if st := s.l1[core].Invalidate(block); st != cache.Invalid && coherenceInv {
		s.l1[core].CountInvalidation()
		s.ctr.Invalidations++
	}
	if st := s.l2[core].Invalidate(block); st != cache.Invalid && coherenceInv {
		s.l2[core].CountInvalidation()
		s.ctr.Invalidations++
	}
}

// downgradePrivate moves block to S in the core's private caches, counting a
// coherence downgrade per cache holding it.
func (s *System) downgradePrivate(core int, block mem.Addr) {
	s.downgradePrivateTo(core, block, cache.Shared)
}

// downgradePrivateTo moves block to the given (less privileged) state in the
// core's private caches, counting a coherence downgrade per cache holding it.
func (s *System) downgradePrivateTo(core int, block mem.Addr, st cache.State) {
	if ln := s.l1[core].Peek(block); ln != nil {
		ln.State = st
		s.l1[core].CountDowngrade()
		s.ctr.Downgrades++
	}
	if ln := s.l2[core].Peek(block); ln != nil {
		ln.State = st
		s.l2[core].CountDowngrade()
		s.ctr.Downgrades++
	}
}

// evictL2Victim performs the protocol actions for a block displaced from a
// private L2: maintain inclusion, notify the directory, and write back or
// reconcile-flush dirty data. Writebacks are posted (they do not stall the
// evicting core) but their traffic is charged.
func (s *System) evictL2Victim(core int, ev cache.Eviction) {
	// Inclusion: the L1 copy (if any) must go too. Not a coherence inv.
	s.l1[core].Invalidate(ev.Addr)

	e := s.dir.Lookup(ev.Addr)
	if e == nil {
		panic(fmt.Sprintf("core: evicting %#x with no directory entry", uint64(ev.Addr)))
	}
	switch ev.State {
	case cache.Shared:
		s.fabric.CoreToHome(stats.PutS, core, ev.Addr)
		e.Sharers = e.Sharers.Remove(core)
		if e.State == cache.Shared && e.Sharers.Empty() {
			s.dir.Drop(ev.Addr)
		}
		// Under an Owned entry, sharers come and go while the owner keeps
		// the block; nothing more to do.
		// Under a Ward directory entry an S holder may evict; the entry
		// stays W for the remaining holders.
		if e.State == cache.Ward && e.Sharers.Empty() {
			s.regions.forgetBlock(RegionID(e.Region), ev.Addr)
			s.dir.Drop(ev.Addr)
		}
	case cache.Owned:
		// The dirty sourcing copy leaves: write back to the LLC; remaining
		// sharers (if any) keep clean S copies served by the LLC.
		s.fabric.CoreToHome(stats.PutM, core, ev.Addr)
		s.fabric.CoreToHome(stats.DataDir, core, ev.Addr)
		s.l3[s.fabric.HomeSocket(ev.Addr)].Insert(ev.Addr, cache.Shared)
		if e.Sharers.Empty() {
			s.dir.Drop(ev.Addr)
		} else {
			e.State = cache.Shared
			e.Owner = 0
		}
	case cache.Exclusive:
		s.fabric.CoreToHome(stats.PutE, core, ev.Addr)
		s.dir.Drop(ev.Addr)
	case cache.Modified:
		s.fabric.CoreToHome(stats.PutM, core, ev.Addr)
		s.fabric.CoreToHome(stats.DataDir, core, ev.Addr)
		s.dir.Drop(ev.Addr)
	case cache.Ward:
		// Proactive flush: merge this core's written sectors into the LLC
		// now, off the critical path (§5.3's overlap benefit).
		s.flushWardCopy(core, ev.Addr)
		e.Sharers = e.Sharers.Remove(core)
		if e.Sharers.Empty() {
			s.regions.forgetBlock(RegionID(e.Region), ev.Addr)
			s.dir.Drop(ev.Addr)
		}
	default:
		panic(fmt.Sprintf("core: evicting line in state %v", ev.State))
	}
}

// flushWardCopy merges core's private copy of block into the canonical
// store (masked sectors only) and discards the copy.
func (s *System) flushWardCopy(core int, block mem.Addr) {
	wc, ok := s.wcopies[core][block]
	if !ok {
		return
	}
	if wc.mask != 0 {
		s.applyMask(block, wc)
		s.fabric.FlushToHome(core, block, uint64(wc.mask.Count())*s.sectorSize)
		s.ctr.ReconciledBlocks++
		s.ctr.ReconciledSectors += uint64(wc.mask.Count())
		s.l3[s.fabric.HomeSocket(block)].Insert(block, cache.Shared)
	}
	delete(s.wcopies[core], block)
}

func (s *System) applyMask(block mem.Addr, wc *wardCopy) {
	sectors := uint(s.cfg.BlockSize / s.sectorSize)
	for i := uint(0); i < sectors; i++ {
		if wc.mask.Has(i) {
			off := mem.Addr(uint64(i) * s.sectorSize)
			s.mem.Write(block+off, wc.data[uint64(i)*s.sectorSize:(uint64(i)+1)*s.sectorSize])
		}
	}
}

// ---------------------------------------------------------------------------
// WARD region instructions and reconciliation

// AddRegion executes the "Add Region" instruction for [lo, hi) on behalf of
// core. Under MESI (legacy hardware) it is a cheap no-op. It returns the
// region id (NullRegion if not registered), the latency, and whether a
// region became active.
//
// The interval is rounded *inward* to cache-block boundaries: a block only
// partially inside a region cannot have coherence disabled, because its
// remaining bytes may hold unrelated data that other threads access
// coherently (the region's edge blocks therefore stay on the MESI paths).
// The paper's page-granular heap regions are always block-aligned; this
// matters for the library's byte-granular bulk-operation scopes.
func (s *System) AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool) {
	if s.proto != WARDen {
		return NullRegion, regionOpCycles, false
	}
	lo = (lo + mem.Addr(s.cfg.BlockSize) - 1).Block(s.cfg.BlockSize)
	hi = hi.Block(s.cfg.BlockSize)
	id, ok := s.regions.add(lo, hi)
	if !ok {
		s.ctr.RegionOverflows++
		return NullRegion, regionOpCycles, false
	}
	s.ctr.RegionAdds++
	// The region-add message is posted: its traffic and energy count, but
	// the instruction retires without waiting for the directory.
	s.fabric.CoreToHome(stats.RegionAdd, core, lo)
	return id, regionOpCycles, true
}

// RemoveRegion executes the "Remove Region" instruction: it deactivates the
// region and reconciles every block it holds in the W state (§5.2),
// returning the latency charged to the removing core.
func (s *System) RemoveRegion(core int, id RegionID) uint64 {
	if s.proto != WARDen || id == NullRegion {
		return regionOpCycles
	}
	blocks, ok := s.regions.remove(id)
	if !ok {
		return regionOpCycles
	}
	s.ctr.RegionRemoves++
	s.fabric.CoreToHome(stats.RegionRemove, core, 0) // posted
	if len(blocks) == 0 {
		return regionOpCycles
	}
	s.ctr.Reconciliations++
	for _, b := range blocks {
		if e := s.dir.Lookup(b); e != nil && e.State == cache.Ward {
			s.reconcileBlock(b, e, false)
		}
	}
	return regionOpCycles + uint64(len(blocks))/reconcileBlocksPerCycle
}

// reconcileBlock returns one W block to a coherent state following the
// §6.1 implementation (and the paper's prototype, per its footnote): every
// private W copy is flushed — written sectors merge into the LLC in
// ascending core order ("the final value of each sector is taken from
// whichever copy is processed last"; any order is correct by the WARD
// property, and ascending order keeps the simulation deterministic) — and
// invalidated. The merged block lands in its home LLC slice, which is what
// makes the §5.3 proactive flush pay off: the next consumer takes an LLC
// hit instead of a forward-and-downgrade round to the producer's private
// cache. Clean S holders under the W entry keep their (still valid) lines.
// forgetRegion also detaches the block from its region's index (used on the
// forced-reconcile path; RemoveRegion has already discarded the index).
func (s *System) reconcileBlock(block mem.Addr, e *coherence.Entry, forgetRegion bool) {
	holders := e.Sharers
	var totalMask cache.SectorMask
	writers := 0
	lastWriter := -1
	overlap := false
	var remaining coherence.Bitset // holders keeping valid S lines

	// First pass: merge every written sector into the canonical store.
	holders.ForEach(func(c int) {
		ln := s.l2[c].Peek(block)
		if ln == nil || ln.State != cache.Ward {
			return
		}
		wc, ok := s.wcopies[c][block]
		if ok && wc.mask != 0 {
			if wc.mask.Overlaps(totalMask) {
				overlap = true
			}
			totalMask |= wc.mask
			writers++
			lastWriter = c
			s.applyMask(block, wc)
			s.fabric.FlushToHome(c, block, uint64(wc.mask.Count())*s.sectorSize)
			s.ctr.ReconciledSectors += uint64(wc.mask.Count())
		}
	})
	// Second pass: dispose of the private copies. A copy that provably
	// equals the merged block — any copy when nothing was written, or the
	// sole writer's own copy — converts to a clean S line in place;
	// every other copy is stale and is flushed-and-invalidated (§6.1).
	// These invalidations are not coherence invalidations: no Inv messages
	// travel, the holders volunteered their blocks.
	holders.ForEach(func(c int) {
		ln := s.l2[c].Peek(block)
		if ln == nil {
			return
		}
		if ln.State != cache.Ward {
			remaining = remaining.Add(c) // clean S holder under a W entry
			return
		}
		delete(s.wcopies[c], block)
		if totalMask == 0 || (writers == 1 && c == lastWriter) {
			s.setPrivState(c, block, cache.Shared)
			remaining = remaining.Add(c)
			return
		}
		s.l1[c].Invalidate(block)
		s.l2[c].Invalidate(block)
	})
	s.ctr.ReconciledBlocks++
	if writers > 0 && holders.Count() > 1 {
		if overlap {
			s.ctr.TrueShareMerges++
		} else {
			s.ctr.FalseShareMerges++
		}
	}
	// The merged data now lives in the home LLC slice.
	s.l3[s.fabric.HomeSocket(block)].Insert(block, cache.Shared)
	if remaining.Empty() {
		s.dir.Drop(block)
	} else {
		e.State = cache.Shared
		e.Owner = 0
		e.Sharers = remaining
	}
	if forgetRegion {
		s.regions.forgetBlock(RegionID(e.Region), block)
	}
}

// ---------------------------------------------------------------------------
// Invariant checking (used heavily by the test suite)

// CheckInvariants verifies the protocol's global invariants: single-writer/
// multiple-reader for MESI states, directory/private-cache agreement, L1⊆L2
// inclusion, and W-state bookkeeping. It returns the first violation found.
func (s *System) CheckInvariants() error {
	// Collect directory entries in address order for determinism.
	var addrs []mem.Addr
	s.dir.ForEach(func(a mem.Addr, _ *coherence.Entry) { addrs = append(addrs, a) })
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, a := range addrs {
		e := s.dir.Lookup(a)
		switch e.State {
		case cache.Exclusive:
			ln := s.l2[e.Owner].Peek(a)
			if ln == nil || (ln.State != cache.Exclusive && ln.State != cache.Modified) {
				return fmt.Errorf("dir says core %d owns %#x but its L2 has %v", e.Owner, uint64(a), lnState(ln))
			}
			for c := range s.l2 {
				if c != e.Owner && s.l2[c].Peek(a) != nil {
					return fmt.Errorf("block %#x owned by core %d also valid in core %d", uint64(a), e.Owner, c)
				}
			}
		case cache.Owned:
			ln := s.l2[e.Owner].Peek(a)
			if ln == nil || ln.State != cache.Owned {
				return fmt.Errorf("dir says core %d owns %#x (O) but its L2 has %v", e.Owner, uint64(a), lnState(ln))
			}
			for c := range s.l2 {
				if c == e.Owner {
					continue
				}
				l := s.l2[c].Peek(a)
				if e.Sharers.Has(c) {
					if l == nil || l.State != cache.Shared {
						return fmt.Errorf("dir says core %d shares O-block %#x but its L2 has %v", c, uint64(a), lnState(l))
					}
				} else if l != nil {
					return fmt.Errorf("core %d holds O-block %#x (%v) but is not a sharer", c, uint64(a), l.State)
				}
			}
		case cache.Shared:
			if e.Sharers.Empty() {
				return fmt.Errorf("shared block %#x with empty sharer set", uint64(a))
			}
			for c := range s.l2 {
				ln := s.l2[c].Peek(a)
				if e.Sharers.Has(c) {
					if ln == nil || ln.State != cache.Shared {
						return fmt.Errorf("dir says core %d shares %#x but its L2 has %v", c, uint64(a), lnState(ln))
					}
				} else if ln != nil {
					return fmt.Errorf("core %d holds %#x (%v) but is not in sharer set", c, uint64(a), ln.State)
				}
			}
		case cache.Ward:
			if s.proto != WARDen {
				return fmt.Errorf("block %#x in W state under MESI", uint64(a))
			}
			for c := range s.l2 {
				ln := s.l2[c].Peek(a)
				if e.Sharers.Has(c) {
					if ln == nil || (ln.State != cache.Ward && ln.State != cache.Shared) {
						return fmt.Errorf("dir says core %d holds W block %#x but its L2 has %v", c, uint64(a), lnState(ln))
					}
				} else if ln != nil {
					return fmt.Errorf("core %d holds W block %#x but is not in holder set", c, uint64(a))
				}
			}
		default:
			return fmt.Errorf("directory entry for %#x in state %v", uint64(a), e.State)
		}
	}
	// Inclusion and reverse-mapping: every valid private line is tracked.
	for c := range s.l1 {
		var err error
		s.l1[c].ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			l2ln := s.l2[c].Peek(ln.Addr)
			if l2ln == nil {
				err = fmt.Errorf("core %d: L1 holds %#x but L2 does not (inclusion)", c, uint64(ln.Addr))
			} else if l2ln.State != ln.State {
				err = fmt.Errorf("core %d: L1 state %v != L2 state %v for %#x", c, ln.State, l2ln.State, uint64(ln.Addr))
			}
		})
		if err != nil {
			return err
		}
		s.l2[c].ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			if s.dir.Lookup(ln.Addr) == nil {
				err = fmt.Errorf("core %d: L2 holds %#x with no directory entry", c, uint64(ln.Addr))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func lnState(ln *cache.Line) cache.State {
	if ln == nil {
		return cache.Invalid
	}
	return ln.State
}

// DrainAll flushes every private cache back to a coherent state; used at
// the end of a run so final memory contents can be verified. It reconciles
// all W blocks and writes back every dirty MESI block (counting the
// writeback traffic), so the two protocols are charged comparably for data
// that must eventually reach shared memory.
func (s *System) DrainAll() {
	var wards, dirty []mem.Addr
	s.dir.ForEach(func(a mem.Addr, e *coherence.Entry) {
		switch e.State {
		case cache.Ward:
			wards = append(wards, a)
		case cache.Exclusive, cache.Owned:
			if ln := s.l2[e.Owner].Peek(a); ln != nil && (ln.State == cache.Modified || ln.State == cache.Owned) {
				dirty = append(dirty, a)
			}
		}
	})
	sort.Slice(wards, func(i, j int) bool { return wards[i] < wards[j] })
	for _, a := range wards {
		if e := s.dir.Lookup(a); e != nil && e.State == cache.Ward {
			s.reconcileBlock(a, e, true)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, a := range dirty {
		e := s.dir.Lookup(a)
		if e == nil || (e.State != cache.Exclusive && e.State != cache.Owned) {
			continue
		}
		owner := e.Owner
		s.fabric.CoreToHome(stats.PutM, owner, a)
		s.fabric.CoreToHome(stats.DataDir, owner, a)
		s.l3[s.fabric.HomeSocket(a)].Insert(a, cache.Shared)
		if e.State == cache.Owned {
			s.setPrivState(owner, a, cache.Shared) // clean, still shared
			e.State = cache.Shared
			e.Sharers = e.Sharers.Add(owner)
			e.Owner = 0
		} else {
			s.setPrivState(owner, a, cache.Exclusive) // now clean
		}
	}
}
