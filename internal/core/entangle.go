package core

import (
	"fmt"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
)

// Entanglement detection.
//
// The WARD contract forbids cross-thread read-after-write inside a region
// (§3.1 condition 1); the language runtime guarantees it by construction
// for disentangled programs (§4). Westrick et al.'s companion work
// ("Entanglement detection with near-zero cost", ICFP 2022, the paper's
// [89]) shows such violations can be caught dynamically. This simulator can
// do the same at the memory system level: on a W-state read it checks
// whether any *other* holder's private write mask covers the sectors being
// read — if so, the program depended on a value coherence would have
// delivered but the W state hides.
//
// The check is best-effort in one direction only: a writer whose copy was
// already flushed (eviction-time reconciliation) is no longer visible, so
// a later stale read is not flagged. No false positives occur: a flagged
// read provably overlapped a concurrent writer's unreconciled sectors.
//
// Detection is off by default (it is a debugging facility, not part of the
// protocol) and costs one pass over the block's holder set per W read.

// Violation describes one detected entangled read.
type Violation struct {
	Reader int      // core performing the read
	Writer int      // core whose unreconciled write the read overlapped
	Addr   mem.Addr // address read
	Size   int
}

// String formats the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("entangled read: core %d read %d bytes at %#x written by core %d inside a WARD region",
		v.Reader, v.Size, uint64(v.Addr), v.Writer)
}

// SetEntanglementDetection enables or disables violation detection. The
// first few violations are retained for inspection via Violations.
func (s *System) SetEntanglementDetection(on bool) { s.detectEntangle = on }

// Violations returns the retained detected violations (up to a small cap);
// the full count is in the counters' EntanglementViolations.
func (s *System) Violations() []Violation { return s.violations }

const maxRetainedViolations = 16

// checkEntangledRead flags reads of sectors concurrently written by other
// holders of a W block. Called from the W-state read path when detection
// is on.
func (s *System) checkEntangledRead(reader int, block mem.Addr, a mem.Addr, n int, e *coherence.Entry) {
	lo := uint(a-block) / uint(s.sectorSize)
	hi := (uint(a-block) + uint(n) + uint(s.sectorSize) - 1) / uint(s.sectorSize)
	var readMask cache.SectorMask
	readMask = readMask.Set(lo, hi-lo)

	e.Sharers.ForEach(func(h int) {
		if h == reader {
			return
		}
		wc, ok := s.wcopies[h][block]
		if !ok || !wc.mask.Overlaps(readMask) {
			return
		}
		s.ctr.EntanglementViolations++
		if len(s.violations) < maxRetainedViolations {
			s.violations = append(s.violations, Violation{Reader: reader, Writer: h, Addr: a, Size: n})
		}
	})
}
