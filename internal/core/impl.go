package core

// The protocol-implementation surface: exported System helpers that an
// out-of-core ProtocolImpl (e.g. internal/sisd) builds on. Everything
// here is generic machinery — caches, directory, fabric, counters — with
// the same counting discipline the in-tree protocols use, so protocols
// implemented outside this package are charged comparably.
//
// These methods mutate protocol state; only ProtocolImpl methods (which
// run on the engine's serialized timeline) should call them.

import (
	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
)

// LegacyRegionOpCycles is the local cost of the Add/Remove Region
// instructions under protocols that ignore them. The instructions exist
// on every machine (legacy compatibility), so every implementation
// charges the same decode cost for the no-op.
const LegacyRegionOpCycles = regionOpCycles

// Fabric returns the interconnect model. Implementations charge message
// traffic through it (CoreToHome, HomeToCore, CoreToCore, FlushToHome).
func (s *System) Fabric() *coherence.Fabric { return s.fabric }

// Directory returns the full-map directory. Implementations own their
// entries' State/Owner/Sharers semantics; the generic invariant sweep
// only requires that an entry exist for every privately cached block.
func (s *System) Directory() *coherence.Directory { return s.dir }

// Counters returns the run's counter set.
func (s *System) Counters() *stats.Counters { return s.ctr }

// LLCFetch reads block at its home LLC slice, falling back to DRAM on a
// miss, and returns the latency beyond the already-charged L3 access.
func (s *System) LLCFetch(block mem.Addr) uint64 { return s.llcFetch(block) }

// LLCInsert installs block (clean) into its home LLC slice, e.g. after a
// writeback. The LLC victim drops silently (non-inclusive LLC).
func (s *System) LLCInsert(block mem.Addr) {
	s.l3[s.fabric.HomeSocket(block)].Insert(block, cache.Shared)
}

// InstallPrivate installs block into core's L2 then L1 in state st,
// routing the L2 capacity victim back through the protocol's EvictVictim.
func (s *System) InstallPrivate(core int, block mem.Addr, st cache.State) {
	s.installPrivate(core, block, st)
}

// SetPrivState updates block's state in core's L1 and L2 where present,
// without counting a coherence action (silent upgrades/downgrades).
func (s *System) SetPrivState(core int, block mem.Addr, st cache.State) {
	s.setPrivState(core, block, st)
}

// InvalidatePrivate removes block from core's private caches. With
// coherenceInv the removals count as coherence invalidations (one per
// cache holding the block); self-invalidations pass false.
func (s *System) InvalidatePrivate(core int, block mem.Addr, coherenceInv bool) {
	s.invalidatePrivate(core, block, coherenceInv)
}

// DowngradePrivateTo moves block to the given (less privileged) state in
// core's private caches, counting a coherence downgrade per cache
// holding it.
func (s *System) DowngradePrivateTo(core int, block mem.Addr, st cache.State) {
	s.downgradePrivateTo(core, block, st)
}
