package core

// The protocol registry. Every coherence protocol — the in-tree MESI,
// MOESI, and WARDen families below, and out-of-core families such as
// internal/sisd — is a ProtocolImpl registered under a display name.
// System dispatches every protocol-specific decision (directory
// transactions, private-cache hits, eviction actions, sync points, region
// instructions, drain, per-block invariants) through the registered
// implementation, so adding a protocol never edits the dispatch sites,
// the verifier, or the tools: they enumerate All() or resolve names with
// Lookup.

import (
	"fmt"
	"strings"

	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
)

// Protocol selects the coherence protocol a memory system runs. It is an
// opaque handle — an index into the package registry, assigned in
// registration order — valid only within one process. Persisted records
// (traces, perf history, fingerprints) must carry Protocol.String(): the
// registered *name* is the stable identity; the numeric value renumbers
// whenever the set of linked protocol packages changes.
type Protocol int

// ProtocolImpl is the coherence state machine behind one Protocol. One
// instance is built per System (by ProtocolDesc.New), so implementations
// may keep per-system state; all calls are made on the simulation
// engine's serialized timeline, never concurrently.
//
// The System retains everything generic — caches, directory storage,
// fabric, counters, the canonical store, and the access paths — and calls
// the implementation at each protocol-specific decision point. The
// exported helpers in impl.go (LLCFetch, InstallPrivate, Directory,
// Fabric, ...) are the surface an out-of-core implementation builds on.
type ProtocolImpl interface {
	// DirTransact performs the protocol-specific remainder of a directory
	// transaction at block's home on behalf of core, after the generic
	// prelude (request message, directory access, entry lookup) has
	// accumulated lat cycles. e is the live directory entry (Ensure'd). It
	// returns the requester's resulting line state and the total latency.
	DirTransact(core int, block mem.Addr, mode AccessMode, e *coherence.Entry, lat uint64) (cache.State, uint64)
	// PrivHit decides whether a privately cached line in state st
	// satisfies the access without a directory transaction, returning the
	// (possibly silently upgraded) state.
	PrivHit(core int, block mem.Addr, st cache.State, mode AccessMode) (bool, cache.State)
	// EvictVictim performs the protocol actions for a block displaced from
	// core's L2 (directory notification, writeback or flush). e is the
	// victim's directory entry, never nil; the System has already
	// invalidated the L1 copy for inclusion.
	EvictVictim(core int, ev cache.Eviction, e *coherence.Entry)
	// SyncPoint runs the protocol's synchronization-point hook for core
	// (fences when the descriptor sets SyncFences, and atomics), returning
	// the latency charged to the core. Eagerly coherent protocols return 0.
	SyncPoint(core int) uint64
	// AddRegion and RemoveRegion are WARDen's region instructions;
	// protocols without regions treat them as cheap no-ops (legacy
	// compatibility: the instructions exist on every machine).
	AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool)
	RemoveRegion(core int, id RegionID) uint64
	// Drain returns every private cache to a coherent state (end of run),
	// charging writeback traffic so protocols are compared fairly.
	Drain()
	// CheckBlock verifies block a's directory entry e (never nil) against
	// the private caches: the protocol's per-state invariants.
	CheckBlock(a mem.Addr, e *coherence.Entry) error
}

// ProtocolDesc describes one registered protocol.
type ProtocolDesc struct {
	// Name is the display and lookup name ("MESI"). Lookup is
	// case-insensitive; the exact spelling appears in records and tables.
	Name string
	// New builds the protocol's state machine for one System. It runs at
	// the end of NewSystem, when the caches, directory, and fabric exist.
	New func(*System) ProtocolImpl
	// SyncFences marks fences as protocol synchronization points: the
	// machine then routes fences through System.SyncPoint on the
	// serialized path. Eagerly coherent protocols leave it false, keeping
	// fences thread-local (and PDES-parallel).
	SyncFences bool
}

var (
	registry []ProtocolDesc
	byName   = map[string]Protocol{}
)

// Register adds a protocol to the registry and returns its handle.
// Call it from package initialization only (a package-level var); the
// registry is not synchronized. Names must be unique (case-insensitive).
func Register(d ProtocolDesc) Protocol {
	if d.Name == "" || d.New == nil {
		panic("core: Register needs a Name and a New constructor")
	}
	key := strings.ToLower(d.Name)
	if _, dup := byName[key]; dup {
		panic(fmt.Sprintf("core: protocol %q registered twice", d.Name))
	}
	p := Protocol(len(registry))
	registry = append(registry, d)
	byName[key] = p
	return p
}

// Lookup resolves a registered protocol by name, case-insensitively.
func Lookup(name string) (Protocol, bool) {
	p, ok := byName[strings.ToLower(name)]
	return p, ok
}

// All returns every registered protocol in registration order.
func All() []Protocol {
	out := make([]Protocol, len(registry))
	for i := range out {
		out[i] = Protocol(i)
	}
	return out
}

// Names returns the registered display names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// Protocols resolves an explicit per-experiment protocol set by name.
// It panics on an unregistered name: callers pass static name sets, and a
// typo should fail loudly at startup, not silently shrink an experiment.
func Protocols(names ...string) []Protocol {
	out := make([]Protocol, len(names))
	for i, n := range names {
		p, ok := Lookup(n)
		if !ok {
			panic(fmt.Sprintf("core: unregistered protocol %q (registered: %s)", n, strings.Join(Names(), ", ")))
		}
		out[i] = p
	}
	return out
}

// Describe returns p's registration record.
func Describe(p Protocol) ProtocolDesc {
	if int(p) < 0 || int(p) >= len(registry) {
		panic(fmt.Sprintf("core: unregistered protocol handle %d", int(p)))
	}
	return registry[p]
}

// String names the protocol. Unregistered handles render as their number,
// for debuggability of corrupted values.
func (p Protocol) String() string {
	if int(p) < 0 || int(p) >= len(registry) {
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
	return registry[p].Name
}

// MarshalText writes the registered name, so any serialized record
// carries the stable identity rather than the process-local ordinal.
func (p Protocol) MarshalText() ([]byte, error) {
	if int(p) < 0 || int(p) >= len(registry) {
		return nil, fmt.Errorf("core: marshaling unregistered protocol handle %d", int(p))
	}
	return []byte(registry[p].Name), nil
}

// UnmarshalText resolves a registered name (case-insensitive).
func (p *Protocol) UnmarshalText(b []byte) error {
	v, ok := Lookup(string(b))
	if !ok {
		return fmt.Errorf("core: unknown protocol %q (registered: %s)", b, strings.Join(Names(), ", "))
	}
	*p = v
	return nil
}

// The in-tree protocol families, registered in declaration order.
var (
	// MESI is the baseline directory protocol of the paper; AddRegion/
	// RemoveRegion are near-free no-ops, modelling standard hardware.
	MESI = Register(ProtocolDesc{Name: "MESI", New: newMESI})
	// WARDen is MESI augmented with the W state, the WARD region table,
	// and reconciliation (§5).
	WARDen = Register(ProtocolDesc{Name: "WARDen", New: newWARDen})
	// MOESI is a stronger baseline than the paper evaluates: the Owned
	// state lets a dirty block be shared without writing it back, with the
	// owner sourcing data for readers. Useful for judging how much of
	// WARDen's win a better legacy protocol could claw back.
	MOESI = Register(ProtocolDesc{Name: "MOESI", New: newMOESI})
)
