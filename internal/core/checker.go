package core

// Checker is a Sink that validates protocol invariants as the simulation
// runs. After every protocol-internal event it re-checks the affected block
// against the full directory/private-cache agreement rules (≤1 M/E holder,
// sharer bitsets consistent with private states, W only under an active
// region, write masks only under W copies); periodically, at instruction
// boundaries, it additionally sweeps the whole system with CheckInvariants.
//
// Protocol-internal events are emitted only at points where the *affected
// block* is consistent (a transaction has completed for its block, an
// eviction has fully retired its victim), so per-block checks are always
// safe; whole-system sweeps are restricted to instruction-level events
// because an EvEvict can fire nested inside a transaction whose own block
// is still mid-flight.

import "fmt"

// checkSweepInterval is how many instruction-level events pass between
// whole-system CheckInvariants sweeps.
const checkSweepInterval = 4096

// Checker validates invariants against the system it observes. Attach with
// sys.SetSink(core.NewChecker(sys)) — or via Sinks alongside other sinks —
// and poll Err (or let the next event panic-free run finish and check once).
type Checker struct {
	sys    *System
	err    error
	instrs uint64 // instruction-level events seen
	events uint64 // all events seen
}

// NewChecker returns a Checker bound to sys.
func NewChecker(sys *System) *Checker { return &Checker{sys: sys} }

// Err returns the first invariant violation observed, annotated with the
// event it followed, or nil.
func (c *Checker) Err() error { return c.err }

// Events reports how many events the checker has observed.
func (c *Checker) Events() uint64 { return c.events }

// Event implements Sink.
func (c *Checker) Event(ev *Event) {
	c.events++
	if c.err != nil {
		return
	}
	switch ev.Kind {
	case EvTransaction, EvEvict, EvReconcile:
		if err := c.sys.checkBlockInvariant(ev.Block, c.sys.dir.Lookup(ev.Block)); err != nil {
			c.fail(ev, err)
			return
		}
	default: // instruction-level: periodically sweep everything
		c.instrs++
		if c.instrs%checkSweepInterval == 0 {
			if err := c.sys.CheckInvariants(); err != nil {
				c.fail(ev, err)
				return
			}
		}
	}
}

// Final runs one last whole-system sweep (call after the run drains) and
// returns the first violation from the whole run, if any.
func (c *Checker) Final() error {
	if c.err == nil {
		if err := c.sys.CheckInvariants(); err != nil {
			c.err = fmt.Errorf("final sweep after %d events: %w", c.events, err)
		}
	}
	return c.err
}

func (c *Checker) fail(ev *Event, err error) {
	c.err = fmt.Errorf("after event %d (%s, block %#x): %w", ev.Seq, ev.Kind, uint64(ev.Block), err)
}
