package core

import (
	"testing"
	"testing/quick"

	"warden/internal/mem"
)

func TestRegionTableAddLookupRemove(t *testing.T) {
	rt := newRegionTable(8)
	id1, ok := rt.add(0x1000, 0x2000)
	if !ok || id1 == NullRegion {
		t.Fatal("add failed")
	}
	id2, ok := rt.add(0x3000, 0x4000)
	if !ok || id2 == id1 {
		t.Fatal("second add failed or reused id")
	}
	for a, want := range map[mem.Addr]bool{
		0x0fff: false, 0x1000: true, 0x1fff: true, 0x2000: false,
		0x2fff: false, 0x3000: true, 0x3fff: true, 0x4000: false,
	} {
		if _, ok := rt.lookup(a); ok != want {
			t.Errorf("lookup(%#x) = %v, want %v", uint64(a), ok, want)
		}
	}
	if _, ok := rt.remove(id1); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := rt.lookup(0x1800); ok {
		t.Fatal("removed region still matches")
	}
	if _, ok := rt.remove(id1); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestRegionTableCapacity(t *testing.T) {
	rt := newRegionTable(2)
	a, _ := rt.add(0, 10)
	rt.add(20, 30)
	if _, ok := rt.add(40, 50); ok {
		t.Fatal("add beyond capacity succeeded")
	}
	rt.remove(a)
	if _, ok := rt.add(40, 50); !ok {
		t.Fatal("add after remove failed")
	}
}

func TestRegionTableRejectsEmpty(t *testing.T) {
	rt := newRegionTable(8)
	if _, ok := rt.add(100, 100); ok {
		t.Fatal("empty interval accepted")
	}
	if _, ok := rt.add(200, 100); ok {
		t.Fatal("inverted interval accepted")
	}
}

func TestRegionBlocksSortedOnRemove(t *testing.T) {
	rt := newRegionTable(8)
	id, _ := rt.add(0, 1<<20)
	for _, b := range []mem.Addr{0x500, 0x100, 0x900, 0x300} {
		rt.noteBlock(id, b)
	}
	rt.forgetBlock(id, 0x300)
	blocks, ok := rt.remove(id)
	if !ok {
		t.Fatal("remove failed")
	}
	want := []mem.Addr{0x100, 0x500, 0x900}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks[%d] = %#x, want %#x (sorted)", i, uint64(blocks[i]), uint64(want[i]))
		}
	}
}

// TestQuickRegionLookup checks lookup against a linear scan over random
// disjoint interval sets with random probes.
func TestQuickRegionLookup(t *testing.T) {
	f := func(startsRaw []uint16, probes []uint32) bool {
		rt := newRegionTable(1024)
		type iv struct{ lo, hi mem.Addr }
		var ivs []iv
		next := mem.Addr(0)
		for _, s := range startsRaw {
			lo := next + mem.Addr(s%512)
			hi := lo + mem.Addr(1+s%300)
			if _, ok := rt.add(lo, hi); ok {
				ivs = append(ivs, iv{lo, hi})
			}
			next = hi + 1 // keep intervals disjoint
		}
		for _, p := range probes {
			a := mem.Addr(p) % (next + 100)
			want := false
			for _, v := range ivs {
				if a >= v.lo && a < v.hi {
					want = true
					break
				}
			}
			if _, got := rt.lookup(a); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
