package core

// The WARDen state machine: MESI (protocol.go's shared transaction
// bodies) plus the W state, the WARD region table, and reconciliation.
// The wardGrant path and reconcileBlock live in protocol.go next to the
// machinery they share with the eviction and drain paths.

import (
	"warden/internal/cache"
	"warden/internal/coherence"
	"warden/internal/mem"
	"warden/internal/stats"
)

// wardenImpl is MESI augmented with the W state (§5).
type wardenImpl struct {
	s *System
}

func newWARDen(s *System) ProtocolImpl { return &wardenImpl{s: s} }

// DirTransact implements ProtocolImpl: in-region blocks take the W path,
// which never invalidates or downgrades anyone (§5.1); everything else is
// legacy MESI traffic. Atomics are exempt from the W path.
func (p *wardenImpl) DirTransact(core int, block mem.Addr, mode AccessMode, e *coherence.Entry, lat uint64) (cache.State, uint64) {
	s := p.s
	if mode != ModeAtomic {
		if rid, ok := s.regions.lookup(block); ok {
			return cache.Ward, lat + s.wardGrant(core, block, e, rid)
		}
	}
	// A W block reached by an atomic, or whose region disappeared without
	// removal (defensive): reconcile it on the spot, then continue as MESI.
	if e.State == cache.Ward {
		s.reconcileBlock(block, e, true)
		lat += forcedReconcileCycles
		// Reconciliation may have dropped the entry entirely (every private
		// copy invalidated); re-fetch so the MESI path below mutates the
		// live entry rather than an orphan.
		e = s.dir.Ensure(block)
	}
	switch mode {
	case ModeRead:
		return s.mesiGetS(core, block, e, &lat, false), lat
	default:
		return s.mesiGetM(core, block, e, &lat, false), lat
	}
}

// PrivHit implements ProtocolImpl: the MESI rules, with W lines hitting
// for reads and writes (and reconciling at the directory for atomics).
func (p *wardenImpl) PrivHit(core int, block mem.Addr, st cache.State, mode AccessMode) (bool, cache.State) {
	return p.s.mesiPrivHit(core, block, st, mode)
}

// EvictVictim implements ProtocolImpl via the shared coherent-eviction
// actions, which include the W proactive-flush case (§5.3).
func (p *wardenImpl) EvictVictim(core int, ev cache.Eviction, e *coherence.Entry) {
	p.s.evictCoherentVictim(core, ev, e)
}

// SyncPoint implements ProtocolImpl: WARDen synchronizes through atomics
// (forced reconciliation in DirTransact), not through fences.
func (p *wardenImpl) SyncPoint(core int) uint64 { return 0 }

// AddRegion implements ProtocolImpl: register [lo, hi) in the directory's
// region table (§6.1). See System.AddRegion for the interval-rounding
// contract.
func (p *wardenImpl) AddRegion(core int, lo, hi mem.Addr) (RegionID, uint64, bool) {
	s := p.s
	lo = (lo + mem.Addr(s.cfg.BlockSize) - 1).Block(s.cfg.BlockSize)
	hi = hi.Block(s.cfg.BlockSize)
	id, ok := s.regions.add(lo, hi)
	if !ok {
		s.ctr.RegionOverflows++
		return NullRegion, regionOpCycles, false
	}
	s.ctr.RegionAdds++
	// The region-add message is posted: its traffic and energy count, but
	// the instruction retires without waiting for the directory.
	s.fabric.CoreToHome(stats.RegionAdd, core, lo)
	return id, regionOpCycles, true
}

// RemoveRegion implements ProtocolImpl: deactivate the region and
// reconcile every block it holds in the W state (§5.2).
func (p *wardenImpl) RemoveRegion(core int, id RegionID) uint64 {
	s := p.s
	if id == NullRegion {
		return regionOpCycles
	}
	blocks, ok := s.regions.remove(id)
	if !ok {
		return regionOpCycles
	}
	s.ctr.RegionRemoves++
	s.fabric.CoreToHome(stats.RegionRemove, core, 0) // posted
	if len(blocks) == 0 {
		return regionOpCycles
	}
	s.ctr.Reconciliations++
	for _, b := range blocks {
		if e := s.dir.Lookup(b); e != nil && e.State == cache.Ward {
			s.reconcileBlock(b, e, false)
		}
	}
	return regionOpCycles + uint64(len(blocks))/reconcileBlocksPerCycle
}

// Drain implements ProtocolImpl via the shared coherent drain, which
// reconciles every W block before writing back dirty MESI blocks.
func (p *wardenImpl) Drain() { p.s.drainCoherent() }

// CheckBlock implements ProtocolImpl: the MESI-family invariants plus the
// W-state rules (entry only while its region is active; holders in W/S).
func (p *wardenImpl) CheckBlock(a mem.Addr, e *coherence.Entry) error {
	return p.s.checkCoherentBlock(a, e, true)
}
