// Package trace implements a trace-driven front end for the simulator:
// textual per-thread memory traces replay through the machine without the
// HLPL runtime, which is useful for protocol exploration, regression
// reproduction, and differential debugging between MESI and WARDen.
//
// Trace format — one event per line, '#' comments and blank lines ignored:
//
//	<thread> R <addr> <size>          load (size 1..8 bytes)
//	<thread> W <addr> <size> <value>  store
//	<thread> A <addr> <size> <delta>  atomic fetch-add
//	<thread> C <cycles>               compute
//	<thread> F                        fence
//	<thread> B <name> <lo> <hi>       begin WARD region [lo, hi)
//	<thread> E <name>                 end (reconcile) region <name>
//
// Numbers may be decimal or 0x-prefixed hex. Threads replay their own
// events in order; cross-thread interleaving follows simulated time, as in
// any execution-driven run.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
)

// Kind enumerates trace event types.
type Kind int

const (
	Read Kind = iota
	Write
	Atomic
	Compute
	Fence
	BeginRegion
	EndRegion
)

// Event is one parsed trace line.
type Event struct {
	Thread int
	Kind   Kind
	Addr   mem.Addr
	Size   int
	Value  uint64 // store value / atomic delta / compute cycles
	Hi     mem.Addr
	Name   string // region name for BeginRegion/EndRegion
}

// Trace is a parsed trace: per-thread event queues.
type Trace struct {
	PerThread map[int][]Event
	Events    int
}

// MaxThread returns the largest thread id used.
func (t *Trace) MaxThread() int {
	max := 0
	for id := range t.PerThread {
		if id > max {
			max = id
		}
	}
	return max
}

func parseNum(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), pickBase(s), 64)
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// Parse reads a trace from r.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{PerThread: make(map[int][]Event)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("trace: line %d: %s: %q", lineNo, msg, line)
		}
		if len(f) < 2 {
			return nil, fail("too few fields")
		}
		tid, err := strconv.Atoi(f[0])
		if err != nil || tid < 0 {
			return nil, fail("bad thread id")
		}
		ev := Event{Thread: tid}
		need := func(n int) error {
			if len(f) != n {
				return fail(fmt.Sprintf("want %d fields", n))
			}
			return nil
		}
		switch strings.ToUpper(f[1]) {
		case "R":
			if err := need(4); err != nil {
				return nil, err
			}
			ev.Kind = Read
			a, err1 := parseNum(f[2])
			sz, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || sz < 1 || sz > 8 {
				return nil, fail("bad read operands")
			}
			ev.Addr, ev.Size = mem.Addr(a), sz
		case "W":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = Write
			a, err1 := parseNum(f[2])
			sz, err2 := strconv.Atoi(f[3])
			v, err3 := parseNum(f[4])
			if err1 != nil || err2 != nil || err3 != nil || sz < 1 || sz > 8 {
				return nil, fail("bad write operands")
			}
			ev.Addr, ev.Size, ev.Value = mem.Addr(a), sz, v
		case "A":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = Atomic
			a, err1 := parseNum(f[2])
			sz, err2 := strconv.Atoi(f[3])
			v, err3 := parseNum(f[4])
			if err1 != nil || err2 != nil || err3 != nil || sz < 1 || sz > 8 {
				return nil, fail("bad atomic operands")
			}
			ev.Addr, ev.Size, ev.Value = mem.Addr(a), sz, v
		case "C":
			if err := need(3); err != nil {
				return nil, err
			}
			ev.Kind = Compute
			v, err := parseNum(f[2])
			if err != nil {
				return nil, fail("bad compute cycles")
			}
			ev.Value = v
		case "F":
			if err := need(2); err != nil {
				return nil, err
			}
			ev.Kind = Fence
		case "B":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = BeginRegion
			lo, err1 := parseNum(f[3])
			hi, err2 := parseNum(f[4])
			if err1 != nil || err2 != nil || hi <= lo {
				return nil, fail("bad region bounds")
			}
			ev.Name, ev.Addr, ev.Hi = f[2], mem.Addr(lo), mem.Addr(hi)
		case "E":
			if err := need(3); err != nil {
				return nil, err
			}
			ev.Kind = EndRegion
			ev.Name = f[2]
		default:
			return nil, fail("unknown event kind")
		}
		t.PerThread[tid] = append(t.PerThread[tid], ev)
		t.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// Result summarizes one replay.
type Result struct {
	Cycles  uint64
	Machine *machine.Machine
}

// Replay runs the trace on a fresh machine with the given protocol. Region
// names are shared across threads: a region begun on one thread may be
// ended on another (ends before begins are errors).
func Replay(t *Trace, m *machine.Machine) (Result, error) {
	if t.MaxThread() >= m.Config().Threads() {
		return Result{}, fmt.Errorf("trace: uses thread %d but machine has %d threads",
			t.MaxThread(), m.Config().Threads())
	}
	regions := make(map[string]core.RegionID)
	var replayErr error
	bodies := make([]func(*machine.Ctx), m.Config().Threads())
	for i := range bodies {
		evs := t.PerThread[i]
		bodies[i] = func(ctx *machine.Ctx) {
			for _, ev := range evs {
				if replayErr != nil {
					return
				}
				switch ev.Kind {
				case Read:
					ctx.Load(ev.Addr, ev.Size)
				case Write:
					ctx.Store(ev.Addr, ev.Size, ev.Value)
				case Atomic:
					ctx.FetchAdd(ev.Addr, ev.Size, ev.Value)
				case Compute:
					ctx.Compute(ev.Value)
				case Fence:
					ctx.Fence()
				case BeginRegion:
					id, _ := ctx.AddRegion(ev.Addr, ev.Hi)
					regions[ev.Name] = id // single-threaded under the engine
				case EndRegion:
					id, ok := regions[ev.Name]
					if !ok {
						replayErr = fmt.Errorf("trace: thread %d ends unknown region %q", ev.Thread, ev.Name)
						return
					}
					ctx.RemoveRegion(id)
					delete(regions, ev.Name)
				}
			}
		}
	}
	cycles, err := m.Run(bodies)
	if err != nil {
		return Result{}, err
	}
	if replayErr != nil {
		return Result{}, replayErr
	}
	return Result{Cycles: cycles, Machine: m}, nil
}
