// Package trace implements a trace-driven front end for the simulator:
// textual per-thread memory traces replay through the machine without the
// HLPL runtime, which is useful for protocol exploration, regression
// reproduction, and differential debugging between MESI and WARDen. The
// Recorder in record.go writes this same format from an execution-driven
// run, closing the record→replay loop.
//
// Trace format — one event per line, '#' comments and blank lines ignored:
//
//	<thread> R <addr> <size>            load (size 1..4096 bytes)
//	<thread> W <addr> <size> <value>    store (size 1..8; value is the integer stored)
//	<thread> W <addr> <size> <hex>      wide store (size 9..4096; <hex> is 2*size hex digits, no 0x)
//	<thread> A <addr> <size> <delta>    atomic fetch-add (size 1..8)
//	<thread> X <addr> <size> <old> <new> atomic compare-and-swap (size 1..8)
//	<thread> C <cycles>                 compute
//	<thread> F                          fence
//	<thread> B <name> <lo> <hi>         begin WARD region [lo, hi)
//	<thread> E <name>                   end (reconcile) region <name>
//	<thread> E -                        end the null region (a failed/absent begin)
//
// Numbers may be decimal or 0x-prefixed hex. Threads replay their own
// events in order; cross-thread interleaving follows simulated time, as in
// any execution-driven run. Loads and stores wider than 8 bytes execute as
// one instruction per cache block touched, exactly like machine.Ctx
// LoadBytes/StoreBytes.
//
// Region names must be unique among *open* regions: a B for a name that is
// already open, or an E for a name that is not, is a parse error. The
// matching is by file order (the order lines appear), which for recorded
// traces equals simulated-time order; hand-written traces must list a
// region's B line before its E line. "-" never opens and may always be
// ended: it denotes the null region, which a recorded run emits when an
// AddRegion failed (region table full, or MESI) but the program still
// executed the paired RemoveRegion instruction.
package trace

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/mem"
)

// maxAccessBytes bounds R/W sizes; it matches the largest bulk transfer the
// HLPL runtime issues (one page).
const maxAccessBytes = 4096

// Kind enumerates trace event types.
type Kind int

const (
	Read Kind = iota
	Write
	Atomic // fetch-add
	CAS    // compare-and-swap
	Compute
	Fence
	BeginRegion
	EndRegion
)

// NullRegionName is the region name that ends the null region.
const NullRegionName = "-"

// Event is one parsed trace line.
type Event struct {
	Thread int
	Kind   Kind
	Addr   mem.Addr
	Size   int
	Value  uint64 // store value / atomic delta / CAS expected old / compute cycles
	Value2 uint64 // CAS: new value
	Data   []byte // wide store (Size > 8): the bytes stored
	Hi     mem.Addr
	Name   string // region name for BeginRegion/EndRegion
}

// Trace is a parsed trace: per-thread event queues.
type Trace struct {
	PerThread map[int][]Event
	Events    int
}

// MaxThread returns the largest thread id used.
func (t *Trace) MaxThread() int {
	max := 0
	for id := range t.PerThread {
		if id > max {
			max = id
		}
	}
	return max
}

func parseNum(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), pickBase(s), 64)
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// Parse reads a trace from r. Errors carry the 1-based line number.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{PerThread: make(map[int][]Event)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024) // wide stores make long lines
	lineNo := 0
	open := make(map[string]int) // open region name -> line of its B
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("trace: line %d: %s: %q", lineNo, msg, line)
		}
		if len(f) < 2 {
			return nil, fail("too few fields")
		}
		tid, err := strconv.Atoi(f[0])
		if err != nil || tid < 0 {
			return nil, fail("bad thread id")
		}
		ev := Event{Thread: tid}
		need := func(n int) error {
			if len(f) != n {
				return fail(fmt.Sprintf("want %d fields", n))
			}
			return nil
		}
		num := func(s, what string) (uint64, error) {
			v, err := parseNum(s)
			if err != nil {
				return 0, fail("malformed " + what)
			}
			return v, nil
		}
		size := func(s string, max int) (int, error) {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 || n > max {
				return 0, fail(fmt.Sprintf("bad size (want 1..%d)", max))
			}
			return n, nil
		}
		switch strings.ToUpper(f[1]) {
		case "R":
			if err := need(4); err != nil {
				return nil, err
			}
			ev.Kind = Read
			a, err := num(f[2], "address")
			if err != nil {
				return nil, err
			}
			sz, err := size(f[3], maxAccessBytes)
			if err != nil {
				return nil, err
			}
			ev.Addr, ev.Size = mem.Addr(a), sz
		case "W":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = Write
			a, err := num(f[2], "address")
			if err != nil {
				return nil, err
			}
			sz, err := size(f[3], maxAccessBytes)
			if err != nil {
				return nil, err
			}
			ev.Addr, ev.Size = mem.Addr(a), sz
			if sz <= 8 {
				if ev.Value, err = num(f[4], "store value"); err != nil {
					return nil, err
				}
			} else {
				data, err := hex.DecodeString(f[4])
				if err != nil || len(data) != sz {
					return nil, fail(fmt.Sprintf("malformed wide-store payload (want %d hex digits)", 2*sz))
				}
				ev.Data = data
			}
		case "A":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = Atomic
			a, err := num(f[2], "address")
			if err != nil {
				return nil, err
			}
			sz, err := size(f[3], 8)
			if err != nil {
				return nil, err
			}
			v, err := num(f[4], "atomic delta")
			if err != nil {
				return nil, err
			}
			ev.Addr, ev.Size, ev.Value = mem.Addr(a), sz, v
		case "X":
			if err := need(6); err != nil {
				return nil, err
			}
			ev.Kind = CAS
			a, err := num(f[2], "address")
			if err != nil {
				return nil, err
			}
			sz, err := size(f[3], 8)
			if err != nil {
				return nil, err
			}
			old, err := num(f[4], "CAS expected value")
			if err != nil {
				return nil, err
			}
			new, err := num(f[5], "CAS new value")
			if err != nil {
				return nil, err
			}
			ev.Addr, ev.Size, ev.Value, ev.Value2 = mem.Addr(a), sz, old, new
		case "C":
			if err := need(3); err != nil {
				return nil, err
			}
			ev.Kind = Compute
			v, err := num(f[2], "compute cycles")
			if err != nil {
				return nil, err
			}
			ev.Value = v
		case "F":
			if err := need(2); err != nil {
				return nil, err
			}
			ev.Kind = Fence
		case "B":
			if err := need(5); err != nil {
				return nil, err
			}
			ev.Kind = BeginRegion
			if f[2] == NullRegionName {
				return nil, fail("region name \"-\" is reserved for the null region")
			}
			if at, dup := open[f[2]]; dup {
				return nil, fail(fmt.Sprintf("region %q already open (begun at line %d)", f[2], at))
			}
			lo, err := num(f[3], "region bound")
			if err != nil {
				return nil, err
			}
			hi, err := num(f[4], "region bound")
			if err != nil {
				return nil, err
			}
			if hi <= lo {
				return nil, fail("bad region bounds")
			}
			ev.Name, ev.Addr, ev.Hi = f[2], mem.Addr(lo), mem.Addr(hi)
			open[f[2]] = lineNo
		case "E":
			if err := need(3); err != nil {
				return nil, err
			}
			ev.Kind = EndRegion
			ev.Name = f[2]
			if ev.Name != NullRegionName {
				if _, ok := open[ev.Name]; !ok {
					return nil, fail(fmt.Sprintf("end of region %q with no matching begin", ev.Name))
				}
				delete(open, ev.Name)
			}
		default:
			return nil, fail("unknown event kind")
		}
		t.PerThread[tid] = append(t.PerThread[tid], ev)
		t.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// Result summarizes one replay.
type Result struct {
	Cycles  uint64
	Machine *machine.Machine
}

// Replay runs the trace on a fresh machine with the given protocol. Region
// names are shared across threads: a region begun on one thread may be
// ended on another (the parser already rejects ends before begins in file
// order; replay re-checks at simulation time, since an unfortunate
// interleaving of hand-written traces can still end a region early).
func Replay(t *Trace, m *machine.Machine) (Result, error) {
	if t.MaxThread() >= m.Config().Threads() {
		return Result{}, fmt.Errorf("trace: uses thread %d but machine has %d threads",
			t.MaxThread(), m.Config().Threads())
	}
	regions := make(map[string]core.RegionID)
	var replayErr error
	bodies := make([]func(*machine.Ctx), m.Config().Threads())
	for i := range bodies {
		evs := t.PerThread[i]
		bodies[i] = func(ctx *machine.Ctx) {
			var wide []byte
			for _, ev := range evs {
				if replayErr != nil {
					return
				}
				switch ev.Kind {
				case Read:
					if ev.Size <= 8 {
						ctx.Load(ev.Addr, ev.Size)
					} else {
						if cap(wide) < ev.Size {
							wide = make([]byte, maxAccessBytes)
						}
						ctx.LoadBytes(ev.Addr, wide[:ev.Size])
					}
				case Write:
					if ev.Size <= 8 {
						ctx.Store(ev.Addr, ev.Size, ev.Value)
					} else {
						ctx.StoreBytes(ev.Addr, ev.Data)
					}
				case Atomic:
					ctx.FetchAdd(ev.Addr, ev.Size, ev.Value)
				case CAS:
					ctx.CAS(ev.Addr, ev.Size, ev.Value, ev.Value2)
				case Compute:
					ctx.Compute(ev.Value)
				case Fence:
					ctx.Fence()
				case BeginRegion:
					id, _ := ctx.AddRegion(ev.Addr, ev.Hi)
					regions[ev.Name] = id // single-threaded under the engine
				case EndRegion:
					if ev.Name == NullRegionName {
						ctx.RemoveRegion(core.NullRegion)
						continue
					}
					id, ok := regions[ev.Name]
					if !ok {
						replayErr = fmt.Errorf("trace: thread %d ends unknown region %q", ev.Thread, ev.Name)
						return
					}
					ctx.RemoveRegion(id)
					delete(regions, ev.Name)
				}
			}
		}
	}
	cycles, err := m.Run(bodies)
	if err != nil {
		return Result{}, err
	}
	if replayErr != nil {
		return Result{}, replayErr
	}
	return Result{Cycles: cycles, Machine: m}, nil
}
