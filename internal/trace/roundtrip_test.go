package trace_test

// Record→replay round-trip: an execution-driven pbbs run recorded through
// the Recorder sink, then replayed from the textual trace on a fresh
// machine, must reproduce every architectural counter and the cycle count
// exactly, under both protocols. This is the tentpole's closing property:
// coherence timing depends only on the address streams and their
// deterministic interleaving, both of which the trace preserves.

import (
	"strings"
	"testing"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
	"warden/internal/trace"
)

func roundtripConfig() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return cfg
}

func TestRecordReplayRoundTrip(t *testing.T) {
	cfg := roundtripConfig()
	for _, name := range []string{"primes", "dedup"} {
		e, err := pbbs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range core.Protocols("mesi", "warden") {
			t.Run(name+"/"+proto.String(), func(t *testing.T) {
				var text strings.Builder
				rec := trace.NewRecorder(&text, nil)
				recorded, err := bench.RunOneObserved(cfg, proto, e, e.Small, hlpl.DefaultOptions(),
					func(*machine.Machine) core.Sink { return rec })
				if err != nil {
					t.Fatal(err)
				}
				if err := rec.Err(); err != nil {
					t.Fatal(err)
				}

				tr, err := trace.Parse(strings.NewReader(text.String()))
				if err != nil {
					t.Fatal(err)
				}
				replayed, err := trace.Replay(tr, machine.New(cfg, proto))
				if err != nil {
					t.Fatal(err)
				}
				if replayed.Cycles != recorded.Cycles {
					t.Fatalf("cycles: recorded %d, replayed %d", recorded.Cycles, replayed.Cycles)
				}
				if got := *replayed.Machine.Counters(); got != recorded.Counters {
					t.Fatalf("counters diverge after replay:\nrecorded: %+v\nreplayed: %+v", recorded.Counters, got)
				}
			})
		}
	}
}

// TestRecorderJSONL sanity-checks the JSONL side: every line is an object,
// kinds cover both layers, and the count matches the text side's events
// plus the protocol-internal ones.
func TestRecorderJSONL(t *testing.T) {
	cfg := roundtripConfig()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	var text, jsonl strings.Builder
	rec := trace.NewRecorder(&text, &jsonl)
	if _, err := bench.RunOneObserved(cfg, core.WARDen, e, e.Small, hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return rec }); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	textLines := 0
	for _, l := range strings.Split(text.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			textLines++
		}
	}
	if len(lines) <= textLines {
		t.Fatalf("JSONL has %d events but the text trace alone has %d instructions", len(lines), textLines)
	}
	var kinds []string
	for _, want := range []string{`"kind":"load"`, `"kind":"transaction"`, `"kind":"region_add"`, `"kind":"drain"`} {
		found := false
		for _, l := range lines {
			if strings.Contains(l, want) {
				found = true
				break
			}
		}
		if !found {
			kinds = append(kinds, want)
		}
	}
	if len(kinds) > 0 {
		t.Fatalf("JSONL missing event kinds: %v", kinds)
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("JSONL line %d is not an object: %q", i+1, l)
		}
	}
}
