package trace

import (
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/topology"
)

func testMachine(proto core.Protocol) *machine.Machine {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return machine.New(cfg, proto)
}

func TestParseBasics(t *testing.T) {
	src := `
# a comment
0 W 0x1000 8 42
1 R 4096 8
0 C 100
1 F
0 A 0x2000 8 1
0 B buf 0x3000 0x4000
0 E buf
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events != 7 {
		t.Fatalf("events = %d, want 7", tr.Events)
	}
	if tr.MaxThread() != 1 {
		t.Fatalf("max thread = %d", tr.MaxThread())
	}
	ev := tr.PerThread[0][0]
	if ev.Kind != Write || ev.Addr != 0x1000 || ev.Size != 8 || ev.Value != 42 {
		t.Fatalf("first event = %+v", ev)
	}
	if tr.PerThread[1][0].Addr != 4096 {
		t.Fatal("decimal address parsed wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"x W 0x0 8 1",     // bad thread
		"0 Q 0x0 8",       // unknown kind
		"0 W 0x0 8",       // missing value
		"0 R 0x0 16",      // bad size
		"0 B r 0x10 0x10", // empty region
		"0",               // too short
		"0 C zz",          // bad number
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	src := `
0 W 0x10000 8 7
0 W 0x10008 8 9
1 C 50
1 R 0x10000 8
1 A 0x10008 8 1
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.MESI)
	res, err := Replay(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if got := m.Mem().ReadUint(0x10000, 8); got != 7 {
		t.Fatalf("mem[0x10000] = %d", got)
	}
	if got := m.Mem().ReadUint(0x10008, 8); got != 10 {
		t.Fatalf("mem[0x10008] = %d (atomic add applied?)", got)
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRegions(t *testing.T) {
	// Two threads write the same WARD block; reconciliation must merge the
	// disjoint sectors.
	src := `
0 B r 0x10000 0x11000
0 C 200
0 W 0x10000 8 1
1 C 220
1 W 0x10008 8 2
0 C 5000
0 E r
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.WARDen)
	if _, err := Replay(tr, m); err != nil {
		t.Fatal(err)
	}
	if m.Counters().WardAccesses == 0 {
		t.Fatal("regions did not take effect")
	}
	if m.Mem().ReadUint(0x10000, 8) != 1 || m.Mem().ReadUint(0x10008, 8) != 2 {
		t.Fatal("reconciliation lost a write")
	}
}

func TestReplayUnknownRegionFails(t *testing.T) {
	tr, err := Parse(strings.NewReader("0 E nope"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, testMachine(core.WARDen)); err == nil {
		t.Fatal("ending an unknown region must fail")
	}
}

func TestReplayTooManyThreads(t *testing.T) {
	tr, err := Parse(strings.NewReader("99 C 1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, testMachine(core.MESI)); err == nil {
		t.Fatal("thread beyond machine size must fail")
	}
}

func TestReplayDifferentialMESIvsWARDen(t *testing.T) {
	// A WAW ping-pong trace: WARDen must produce (many) fewer
	// invalidations than MESI.
	var sb strings.Builder
	sb.WriteString("0 B r 0x20000 0x21000\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("0 W 0x20000 8 1\n")
		sb.WriteString("1 W 0x20000 8 1\n")
	}
	sb.WriteString("0 C 100000\n0 E r\n")
	tr, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	mM := testMachine(core.MESI)
	if _, err := Replay(tr, mM); err != nil {
		t.Fatal(err)
	}
	mW := testMachine(core.WARDen)
	if _, err := Replay(tr, mW); err != nil {
		t.Fatal(err)
	}
	if mW.Counters().Invalidations*10 > mM.Counters().Invalidations {
		t.Fatalf("WARDen inv=%d not ≪ MESI inv=%d",
			mW.Counters().Invalidations, mM.Counters().Invalidations)
	}
}
