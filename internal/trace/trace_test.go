package trace

import (
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/machine"
	"warden/internal/topology"
)

func testMachine(proto core.Protocol) *machine.Machine {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return machine.New(cfg, proto)
}

func TestParseBasics(t *testing.T) {
	src := `
# a comment
0 W 0x1000 8 42
1 R 4096 8
0 C 100
1 F
0 A 0x2000 8 1
0 B buf 0x3000 0x4000
0 E buf
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events != 7 {
		t.Fatalf("events = %d, want 7", tr.Events)
	}
	if tr.MaxThread() != 1 {
		t.Fatalf("max thread = %d", tr.MaxThread())
	}
	ev := tr.PerThread[0][0]
	if ev.Kind != Write || ev.Addr != 0x1000 || ev.Size != 8 || ev.Value != 42 {
		t.Fatalf("first event = %+v", ev)
	}
	if tr.PerThread[1][0].Addr != 4096 {
		t.Fatal("decimal address parsed wrong")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		line string // line number the error must name
		want string // substring the error must contain
	}{
		{"bad thread", "x W 0x0 8 1", "line 1", "bad thread id"},
		{"unknown kind", "0 Q 0x0 8", "line 1", "unknown event kind"},
		{"missing value", "0 W 0x0 8", "line 1", "want 5 fields"},
		{"oversized read", "0 R 0x0 5000", "line 1", "bad size"},
		{"oversized cas", "0 X 0x0 16 1 2", "line 1", "bad size"},
		{"empty region", "0 B r 0x10 0x10", "line 1", "bad region bounds"},
		{"too short", "0", "line 1", "too few fields"},
		{"bad number", "0 C zz", "line 1", "malformed compute cycles"},
		{"malformed hex addr", "0 C 1\n0 R 0xzz 8", "line 2", "malformed address"},
		{"malformed store value", "0 W 0x0 8 0xgg", "line 1", "malformed store value"},
		{"malformed cas new", "0 X 0x0 8 1 0x..", "line 1", "malformed CAS new value"},
		{"short wide payload", "0 W 0x0 16 ffff", "line 1", "malformed wide-store payload"},
		{"odd wide payload", "0 W 0x0 9 ffffffffffffffffff0", "line 1", "malformed wide-store payload"},
		{"mismatched end", "0 C 1\n0 C 1\n0 E nope", "line 3", `end of region "nope" with no matching begin`},
		{"end after end", "0 B r 0x0 0x40\n0 E r\n0 E r", "line 3", `end of region "r" with no matching begin`},
		{"duplicate open region", "0 B r 0x0 0x40\n1 B r 0x40 0x80", "line 2", `region "r" already open (begun at line 1)`},
		{"reserved null name", "0 B - 0x0 0x40", "line 1", "reserved"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tc.src)
			}
			if !strings.Contains(err.Error(), tc.line) || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error %q, want %q at %q", tc.src, err, tc.want, tc.line)
			}
		})
	}
}

func TestParseReopenedRegionName(t *testing.T) {
	// A name may be reused once its region is closed.
	src := "0 B r 0x0 0x40\n0 E r\n0 B r 0x40 0x80\n0 E r\n"
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
}

func TestParseCAS(t *testing.T) {
	tr, err := Parse(strings.NewReader("0 X 0x100 8 0x2a 43"))
	if err != nil {
		t.Fatal(err)
	}
	ev := tr.PerThread[0][0]
	if ev.Kind != CAS || ev.Addr != 0x100 || ev.Size != 8 || ev.Value != 42 || ev.Value2 != 43 {
		t.Fatalf("CAS event = %+v", ev)
	}
}

func TestReplayCAS(t *testing.T) {
	// A CAS that hits (0->1) and one that misses (7 != 1): memory must end
	// at the value only the successful swap stored.
	src := `
0 W 0x100 8 0
0 X 0x100 8 0 1
0 X 0x100 8 7 9
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.MESI)
	if _, err := Replay(tr, m); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().ReadUint(0x100, 8); got != 1 {
		t.Fatalf("mem after CAS pair = %d, want 1", got)
	}
	if m.Counters().Atomics != 2 {
		t.Fatalf("atomics = %d, want 2", m.Counters().Atomics)
	}
}

func TestReplayWideStore(t *testing.T) {
	// A 16-byte store carries its payload as hex; replay must land every
	// byte (the store spans one block here).
	src := "0 W 0x1000 16 000102030405060708090a0b0c0d0e0f\n0 R 0x1000 16\n"
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.MESI)
	if _, err := Replay(tr, m); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	m.Mem().Read(0x1000, buf)
	for i, b := range buf {
		if int(b) != i {
			t.Fatalf("mem[0x1000+%d] = %d, want %d", i, b, i)
		}
	}
}

func TestReplayNullRegionEnd(t *testing.T) {
	// "E -" removes the null region: legal under both protocols, a no-op
	// beyond the instruction cost.
	src := "0 E -\n0 W 0x100 8 1\n"
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range core.Protocols("mesi", "warden") {
		m := testMachine(proto)
		if _, err := Replay(tr, m); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if got := m.Mem().ReadUint(0x100, 8); got != 1 {
			t.Fatalf("%v: mem = %d", proto, got)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	src := `
0 W 0x10000 8 7
0 W 0x10008 8 9
1 C 50
1 R 0x10000 8
1 A 0x10008 8 1
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.MESI)
	res, err := Replay(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if got := m.Mem().ReadUint(0x10000, 8); got != 7 {
		t.Fatalf("mem[0x10000] = %d", got)
	}
	if got := m.Mem().ReadUint(0x10008, 8); got != 10 {
		t.Fatalf("mem[0x10008] = %d (atomic add applied?)", got)
	}
	if err := m.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRegions(t *testing.T) {
	// Two threads write the same WARD block; reconciliation must merge the
	// disjoint sectors.
	src := `
0 B r 0x10000 0x11000
0 C 200
0 W 0x10000 8 1
1 C 220
1 W 0x10008 8 2
0 C 5000
0 E r
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(core.WARDen)
	if _, err := Replay(tr, m); err != nil {
		t.Fatal(err)
	}
	if m.Counters().WardAccesses == 0 {
		t.Fatal("regions did not take effect")
	}
	if m.Mem().ReadUint(0x10000, 8) != 1 || m.Mem().ReadUint(0x10008, 8) != 2 {
		t.Fatal("reconciliation lost a write")
	}
}

func TestReplayUnknownRegionFails(t *testing.T) {
	// The parser rejects file-order mismatches, but a hand-built Trace can
	// still end a region no thread ever began; replay must catch it.
	tr := &Trace{
		PerThread: map[int][]Event{0: {{Thread: 0, Kind: EndRegion, Name: "nope"}}},
		Events:    1,
	}
	if _, err := Replay(tr, testMachine(core.WARDen)); err == nil {
		t.Fatal("ending an unknown region must fail")
	}
}

func TestReplayTooManyThreads(t *testing.T) {
	tr, err := Parse(strings.NewReader("99 C 1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, testMachine(core.MESI)); err == nil {
		t.Fatal("thread beyond machine size must fail")
	}
}

func TestReplayDifferentialMESIvsWARDen(t *testing.T) {
	// A WAW ping-pong trace: WARDen must produce (many) fewer
	// invalidations than MESI.
	var sb strings.Builder
	sb.WriteString("0 B r 0x20000 0x21000\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("0 W 0x20000 8 1\n")
		sb.WriteString("1 W 0x20000 8 1\n")
	}
	sb.WriteString("0 C 100000\n0 E r\n")
	tr, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	mM := testMachine(core.MESI)
	if _, err := Replay(tr, mM); err != nil {
		t.Fatal(err)
	}
	mW := testMachine(core.WARDen)
	if _, err := Replay(tr, mW); err != nil {
		t.Fatal(err)
	}
	if mW.Counters().Invalidations*10 > mM.Counters().Invalidations {
		t.Fatalf("WARDen inv=%d not ≪ MESI inv=%d",
			mW.Counters().Invalidations, mM.Counters().Invalidations)
	}
}
