package trace

// Recorder is a core.Sink that serializes an execution-driven run back into
// the package's textual trace format (replayable via Replay) and/or a
// richer JSONL event log for offline analysis. Recording a run and
// replaying the text trace on a fresh machine with the same topology
// reproduces every architectural counter and the cycle count exactly:
// coherence behaviour depends only on the address streams and their
// deterministic interleaving, both of which the trace preserves, and store
// values are preserved too (they feed later CAS comparisons).

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"warden/internal/core"
	"warden/internal/stats"
)

// Recorder writes trace lines (text) and/or event records (jsonl) as the
// simulation runs. Either writer may be nil. Attach with
// sys.SetSink(rec) — or alongside other sinks via core.Sinks — and check
// Err once the run completes.
type Recorder struct {
	text  io.Writer
	jsonl io.Writer
	err   error

	names  map[core.RegionID]string // active region id -> trace name
	nextID int                      // next region name ordinal
	enc    *json.Encoder
}

// NewRecorder returns a Recorder writing the textual trace to text and the
// JSONL event log to jsonl (either may be nil).
func NewRecorder(text, jsonl io.Writer) *Recorder {
	r := &Recorder{text: text, jsonl: jsonl, names: make(map[core.RegionID]string)}
	if jsonl != nil {
		r.enc = json.NewEncoder(jsonl)
	}
	return r
}

// Err returns the first write or encode error, if any.
func (r *Recorder) Err() error { return r.err }

// Event implements core.Sink.
func (r *Recorder) Event(ev *core.Event) {
	if r.err != nil {
		return
	}
	if r.text != nil && ev.Kind.Instruction() && ev.Kind != core.EvDrain {
		r.writeText(ev)
	}
	if r.enc != nil {
		r.writeJSON(ev)
	}
}

func (r *Recorder) printf(format string, args ...interface{}) {
	if _, err := fmt.Fprintf(r.text, format, args...); err != nil && r.err == nil {
		r.err = err
	}
}

// writeText emits the trace line for one instruction-level event. Events
// arrive in simulated execution order, so the B line for a region always
// precedes its E line and the parser's file-order matching is exact.
func (r *Recorder) writeText(ev *core.Event) {
	switch ev.Kind {
	case core.EvLoad:
		r.printf("%d R 0x%x %d\n", ev.Thread, uint64(ev.Addr), ev.Size)
	case core.EvStore:
		if ev.Size <= 8 {
			r.printf("%d W 0x%x %d 0x%x\n", ev.Thread, uint64(ev.Addr), ev.Size, ev.Arg1)
		} else {
			r.printf("%d W 0x%x %d %s\n", ev.Thread, uint64(ev.Addr), ev.Size, hex.EncodeToString(ev.Data))
		}
	case core.EvAtomic:
		switch ev.RMW {
		case core.RMWCAS:
			r.printf("%d X 0x%x %d 0x%x 0x%x\n", ev.Thread, uint64(ev.Addr), ev.Size, ev.Arg1, ev.Arg2)
		default:
			r.printf("%d A 0x%x %d 0x%x\n", ev.Thread, uint64(ev.Addr), ev.Size, ev.Arg1)
		}
	case core.EvCompute:
		r.printf("%d C %d\n", ev.Thread, ev.Arg1)
	case core.EvFence:
		r.printf("%d F\n", ev.Thread)
	case core.EvRegionAdd:
		// Every Add Region instruction is recorded, including rejected ones
		// (MESI, or a full region table): the instruction still executed, and
		// a deterministic replay reproduces the same rejection. A rejected
		// add gets a unique name that no E line ever references; its paired
		// remove executed against the null region and records as "E -".
		name := fmt.Sprintf("r%d", r.nextID)
		r.nextID++
		if ev.RegionOK {
			r.names[ev.Region] = name
		}
		r.printf("%d B %s 0x%x 0x%x\n", ev.Thread, name, uint64(ev.Lo), uint64(ev.Hi))
	case core.EvRegionRemove:
		name, ok := r.names[ev.Region]
		if ev.Region == core.NullRegion || !ok {
			name = NullRegionName
		} else {
			delete(r.names, ev.Region)
		}
		r.printf("%d E %s\n", ev.Thread, name)
	}
}

// jsonEvent is the JSONL view of an Event: states as their short protocol
// names, sharer sets as bitmask integers, and only the non-zero counter
// deltas (as a name->count map; encoding/json sorts the keys).
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Thread int    `json:"thread"`
	Core   int    `json:"core"`
	Cycle  uint64 `json:"cycle"`
	Label  string `json:"label,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Block  uint64 `json:"block,omitempty"`
	Size   int    `json:"size,omitempty"`
	Mode   string `json:"mode,omitempty"`
	RMW    string `json:"rmw,omitempty"`
	Arg1   uint64 `json:"arg1,omitempty"`
	Arg2   uint64 `json:"arg2,omitempty"`
	Data   string `json:"data,omitempty"`
	Lo     uint64 `json:"lo,omitempty"`
	Hi     uint64 `json:"hi,omitempty"`
	Region uint32 `json:"region,omitempty"`
	ROK    *bool  `json:"region_ok,omitempty"`

	DirBefore string `json:"dir_before,omitempty"`
	DirAfter  string `json:"dir_after,omitempty"`
	OwnBefore *int   `json:"owner_before,omitempty"`
	OwnAfter  *int   `json:"owner_after,omitempty"`
	ShBefore  uint64 `json:"sharers_before,omitempty"`
	ShAfter   uint64 `json:"sharers_after,omitempty"`
	LineState string `json:"line_state,omitempty"`

	Latency uint64            `json:"latency,omitempty"`
	Ctrs    map[string]uint64 `json:"ctrs,omitempty"`
}

func (r *Recorder) writeJSON(ev *core.Event) {
	je := jsonEvent{
		Seq:     ev.Seq,
		Kind:    ev.Kind.String(),
		Thread:  ev.Thread,
		Core:    ev.Core,
		Cycle:   ev.Cycle,
		Label:   ev.Label,
		Addr:    uint64(ev.Addr),
		Block:   uint64(ev.Block),
		Size:    ev.Size,
		Arg1:    ev.Arg1,
		Arg2:    ev.Arg2,
		Lo:      uint64(ev.Lo),
		Hi:      uint64(ev.Hi),
		Region:  uint32(ev.Region),
		Latency: ev.Latency,
		Ctrs:    ctrMap(ev.Ctrs),
	}
	if len(ev.Data) > 0 {
		je.Data = hex.EncodeToString(ev.Data)
	}
	switch ev.Kind {
	case core.EvLoad, core.EvStore, core.EvAtomic, core.EvTransaction:
		je.Mode = ev.Mode.String()
	}
	if ev.Kind == core.EvAtomic {
		je.RMW = ev.RMW.String()
	}
	if ev.Kind == core.EvRegionAdd {
		ok := ev.RegionOK
		je.ROK = &ok
	}
	switch ev.Kind {
	case core.EvTransaction, core.EvEvict, core.EvReconcile:
		je.DirBefore = ev.DirBefore.String()
		je.DirAfter = ev.DirAfter.String()
		ob, oa := ev.OwnerBefore, ev.OwnerAfter
		je.OwnBefore, je.OwnAfter = &ob, &oa
		je.ShBefore = uint64(ev.SharersBefore)
		je.ShAfter = uint64(ev.SharersAfter)
	}
	if ev.Kind == core.EvEvict {
		je.LineState = ev.LineState.String()
	}
	if err := r.enc.Encode(&je); err != nil && r.err == nil {
		r.err = err
	}
}

// ctrMap flattens the non-zero counter deltas into a name->count map.
func ctrMap(s stats.Snapshot) map[string]uint64 {
	if s.IsZero() {
		return nil
	}
	m := make(map[string]uint64)
	put := func(k string, v uint64) {
		if v != 0 {
			m[k] = v
		}
	}
	put("l1_acc", s.L1Accesses)
	put("l1_hit", s.L1Hits)
	put("l2_acc", s.L2Accesses)
	put("l2_hit", s.L2Hits)
	put("l3_acc", s.L3Accesses)
	put("l3_hit", s.L3Hits)
	put("dir_acc", s.DirAccesses)
	put("dram", s.DRAMAccesses)
	put("inv", s.Invalidations)
	put("downgrade", s.Downgrades)
	put("flit_hops", s.NoCFlitHops)
	put("intersocket", s.IntersocketFlits)
	put("ward_acc", s.WardAccesses)
	put("recon_blocks", s.ReconciledBlocks)
	put("recon_sectors", s.ReconciledSectors)
	for i, n := range s.Msgs {
		put("msg_"+stats.MsgType(i).String(), n)
	}
	return m
}
