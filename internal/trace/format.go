package trace

// FormatEvent is Parse's inverse for a single event: it renders the trace
// line the parser would read back as an equal Event. It exists so clients
// that synthesize traces — the model checker's counterexample printer, the
// fuzzer — emit the exact grammar Parse accepts instead of hand-rolled
// printf strings.

import (
	"encoding/hex"
	"fmt"
	"unicode"
)

// FormatEvent renders ev as one trace line (no trailing newline). It
// rejects events that the grammar cannot express (bad sizes, missing
// region names, wide stores without a payload) rather than emitting a line
// Parse would refuse.
func FormatEvent(ev Event) (string, error) {
	if ev.Thread < 0 {
		return "", fmt.Errorf("trace: negative thread id %d", ev.Thread)
	}
	switch ev.Kind {
	case Read:
		if err := checkSize(ev.Size, maxAccessBytes); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d R 0x%x %d", ev.Thread, uint64(ev.Addr), ev.Size), nil
	case Write:
		if err := checkSize(ev.Size, maxAccessBytes); err != nil {
			return "", err
		}
		if ev.Size <= 8 {
			return fmt.Sprintf("%d W 0x%x %d 0x%x", ev.Thread, uint64(ev.Addr), ev.Size, ev.Value), nil
		}
		if len(ev.Data) != ev.Size {
			return "", fmt.Errorf("trace: wide store carries %d payload bytes for size %d", len(ev.Data), ev.Size)
		}
		return fmt.Sprintf("%d W 0x%x %d %s", ev.Thread, uint64(ev.Addr), ev.Size, hex.EncodeToString(ev.Data)), nil
	case Atomic:
		if err := checkSize(ev.Size, 8); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d A 0x%x %d 0x%x", ev.Thread, uint64(ev.Addr), ev.Size, ev.Value), nil
	case CAS:
		if err := checkSize(ev.Size, 8); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d X 0x%x %d 0x%x 0x%x", ev.Thread, uint64(ev.Addr), ev.Size, ev.Value, ev.Value2), nil
	case Compute:
		return fmt.Sprintf("%d C %d", ev.Thread, ev.Value), nil
	case Fence:
		return fmt.Sprintf("%d F", ev.Thread), nil
	case BeginRegion:
		if err := checkRegionName(ev.Name); err != nil {
			return "", err
		}
		if ev.Name == NullRegionName {
			return "", fmt.Errorf("trace: %q is not a valid region name for B", NullRegionName)
		}
		if ev.Hi <= ev.Addr {
			return "", fmt.Errorf("trace: empty region interval [%#x, %#x)", uint64(ev.Addr), uint64(ev.Hi))
		}
		return fmt.Sprintf("%d B %s 0x%x 0x%x", ev.Thread, ev.Name, uint64(ev.Addr), uint64(ev.Hi)), nil
	case EndRegion:
		if ev.Name != NullRegionName {
			if err := checkRegionName(ev.Name); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("%d E %s", ev.Thread, ev.Name), nil
	}
	return "", fmt.Errorf("trace: unknown event kind %d", int(ev.Kind))
}

func checkSize(sz, max int) error {
	if sz < 1 || sz > max {
		return fmt.Errorf("trace: access size %d outside [1, %d]", sz, max)
	}
	return nil
}

func checkRegionName(name string) error {
	if name == "" {
		return fmt.Errorf("trace: empty region name")
	}
	for _, r := range name {
		// The parser splits lines with strings.Fields (any Unicode
		// whitespace) and treats leading '#' as a comment.
		if unicode.IsSpace(r) || r == '#' {
			return fmt.Errorf("trace: region name %q contains whitespace or a comment marker", name)
		}
	}
	return nil
}
