package trace

// Transparent gzip support for trace files. Readers sniff the gzip magic
// bytes, so a compressed trace replays regardless of its name; writers
// compress when the target path ends in ".gz", so `-o primes.trace.gz` and
// `-jsonl events.jsonl.gz` just work. Both directions are stdlib-only
// (compress/gzip).

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// Reader wraps r, transparently decompressing gzip content. Detection is by
// the gzip magic bytes (0x1f 0x8b), not by file name, so it is safe to wrap
// any stream — plain text passes through with only buffering added.
func Reader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil || magic[0] != 0x1f || magic[1] != 0x8b {
		// Too short for the magic, or not gzip: hand back the buffered
		// stream untouched (Parse reports empty/garbage inputs itself).
		return br, nil
	}
	return gzip.NewReader(br)
}

// multiCloser closes a stack of closers innermost-first, keeping the first
// error.
type multiCloser struct {
	io.Reader
	io.Writer
	closers []io.Closer
}

func (m *multiCloser) Close() error {
	var first error
	for _, c := range m.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Open opens a trace file for reading with transparent gzip decompression
// ("-" means stdin, never closed).
func Open(path string) (io.ReadCloser, error) {
	if path == "-" {
		r, err := Reader(os.Stdin)
		if err != nil {
			return nil, err
		}
		return io.NopCloser(r), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := Reader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	mc := &multiCloser{Reader: r, closers: []io.Closer{f}}
	if zr, ok := r.(*gzip.Reader); ok {
		mc.closers = []io.Closer{zr, f}
	}
	return mc, nil
}

// Create creates a trace file for writing, gzip-compressing when path ends
// in ".gz". The caller must Close the result to flush the compressor.
func Create(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zw := gzip.NewWriter(f)
	return &multiCloser{Writer: zw, closers: []io.Closer{zw, f}}, nil
}
