package trace_test

// Native fuzz targets for the trace parser: Parse must reject arbitrary
// bytes with a line-numbered error — never panic, never hang — and
// FormatEvent must be its exact inverse on everything Parse accepts. The
// seed corpus combines a trace recorded from a real execution-driven run
// (every event kind the Recorder emits) with handcrafted edge cases near
// the grammar's limits.

import (
	"strings"
	"sync"
	"testing"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/pbbs"
	"warden/internal/trace"
)

// recordedSeed returns the text trace of a small recorded WARDen run,
// memoized across fuzz iterations (the seed setup runs once).
var recordedSeed = sync.OnceValue(func() string {
	e, err := pbbs.ByName("primes")
	if err != nil {
		panic(err)
	}
	var text strings.Builder
	rec := trace.NewRecorder(&text, nil)
	if _, err := bench.RunOneObserved(roundtripConfig(), core.WARDen, e, e.Small,
		hlpl.DefaultOptions(), func(*machine.Machine) core.Sink { return rec }); err != nil {
		panic(err)
	}
	if err := rec.Err(); err != nil {
		panic(err)
	}
	return text.String()
})

func fuzzSeeds() []string {
	return []string{
		recordedSeed(),
		// One of each grammar production.
		"0 R 0x1000 8\n1 W 0x1040 8 0xdeadbeef\n0 A 0x1080 8 0x1\n" +
			"1 X 0x10c0 8 0x0 0x1\n0 C 100\n1 F\n0 B r0 0x1000 0x2000\n1 E r0\n",
		// Wide store (hex payload) and comments/blank lines.
		"# comment\n\n0 W 0x0 16 000102030405060708090a0b0c0d0e0f\n",
		// Null-region end, decimal addresses, lowercase kind.
		"0 b r1 4096 8192\n0 e r1\n0 E -\n",
		// Near-miss malformed lines the parser must reject cleanly.
		"0 R 0x1000\n",
		"0 W 0x1000 9 0x1\n",
		"-1 R 0x0 1\n",
		"0 B - 0x0 0x1\n",
		"0 E never-opened\n",
		"0 W 0x0 16 zz\n",
		"0 R 0x0 99999\n",
		"\x00\xff\xfe\n",
	}
}

// FuzzParse: the parser must error, never panic, on arbitrary bytes, and
// anything it accepts must survive a format→reparse round trip unchanged.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := trace.Parse(strings.NewReader(input))
		if err != nil {
			return // rejected is fine; panics/hangs are the bug
		}
		// Round trip each accepted event individually: FormatEvent must
		// emit a line that reparses to the identical event. (Whole-file
		// round trips would need the original interleaving, which the
		// per-thread queues deliberately do not keep.)
		for tid, evs := range tr.PerThread {
			for i, ev := range evs {
				line, ferr := trace.FormatEvent(ev)
				if ferr != nil {
					t.Fatalf("parse accepted an event FormatEvent rejects: %+v: %v", ev, ferr)
				}
				// An E line needs its B earlier in the file; synthesize one.
				in := line + "\n"
				if ev.Kind == trace.EndRegion && ev.Name != trace.NullRegionName {
					in = "0 B " + ev.Name + " 0x0 0x40\n" + in
				}
				rt, rerr := trace.Parse(strings.NewReader(in))
				if rerr != nil {
					t.Fatalf("reparse of formatted line %q failed: %v", line, rerr)
				}
				got := rt.PerThread[ev.Thread][len(rt.PerThread[ev.Thread])-1]
				if got.Thread != ev.Thread || got.Kind != ev.Kind || got.Addr != ev.Addr ||
					got.Size != ev.Size || got.Value != ev.Value || got.Value2 != ev.Value2 ||
					got.Hi != ev.Hi || got.Name != ev.Name || string(got.Data) != string(ev.Data) {
					t.Fatalf("round trip changed thread %d event %d: %+v -> %+v", tid, i, ev, got)
				}
			}
		}
	})
}

// FuzzFormatEvent: FormatEvent either errors or emits a line Parse accepts
// back as the identical event — for arbitrary Event field combinations,
// not just parser-produced ones.
func FuzzFormatEvent(f *testing.F) {
	f.Add(0, int(trace.Read), uint64(0x1000), 8, uint64(0), uint64(0), "")
	f.Add(1, int(trace.Write), uint64(0x40), 4, uint64(0xbeef), uint64(0), "")
	f.Add(2, int(trace.CAS), uint64(0x80), 8, uint64(1), uint64(2), "")
	f.Add(0, int(trace.BeginRegion), uint64(0x1000), 0, uint64(0), uint64(0), "r0")
	f.Add(0, int(trace.EndRegion), uint64(0), 0, uint64(0), uint64(0), "-")
	f.Add(3, int(trace.Compute), uint64(0), 0, uint64(500), uint64(0), "")
	f.Fuzz(func(t *testing.T, thread, kind int, addr uint64, size int, v1, v2 uint64, name string) {
		ev := trace.Event{
			Thread: thread, Kind: trace.Kind(kind),
			Addr: mem.Addr(addr), Size: size, Value: v1, Value2: v2, Name: name,
			Hi: mem.Addr(addr + uint64(size)),
		}
		if ev.Kind == trace.Write && size > 8 && size <= 4096 {
			ev.Data = make([]byte, size)
		}
		line, err := trace.FormatEvent(ev)
		if err != nil {
			return
		}
		// B lines must come before their E lines for the parser; prefix a
		// matching begin so lone EndRegion events stay parseable.
		input := line + "\n"
		if ev.Kind == trace.EndRegion && ev.Name != trace.NullRegionName {
			pre, perr := trace.FormatEvent(trace.Event{
				Thread: 0, Kind: trace.BeginRegion, Name: ev.Name, Addr: 0, Hi: 64,
			})
			if perr != nil {
				return // the name itself is unformattable; nothing to check
			}
			input = pre + "\n" + input
		}
		if _, err := trace.Parse(strings.NewReader(input)); err != nil {
			t.Fatalf("FormatEvent emitted a line Parse rejects: %q: %v", line, err)
		}
	})
}
