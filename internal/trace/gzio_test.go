package trace_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/trace"
)

// TestGzipRoundTrip records a run to .trace.gz and .jsonl.gz files through
// trace.Create, reopens them through trace.Open, and replays: the compressed
// round trip must reproduce cycles and counters exactly, and the JSONL side
// must decompress to the same stream a plain writer produces.
func TestGzipRoundTrip(t *testing.T) {
	cfg := roundtripConfig()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	textPath := filepath.Join(dir, "primes.trace.gz")
	jsonlPath := filepath.Join(dir, "primes.jsonl.gz")

	textW, err := trace.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonlW, err := trace.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	var plainJSONL strings.Builder
	rec := trace.NewRecorder(textW, io.MultiWriter(jsonlW, &plainJSONL))
	recorded, err := bench.RunOneObserved(cfg, core.WARDen, e, e.Small, hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return rec })
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := textW.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jsonlW.Close(); err != nil {
		t.Fatal(err)
	}

	// Both files must actually be gzip on disk.
	for _, p := range []string{textPath, jsonlPath} {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
			t.Fatalf("%s is not gzip-compressed on disk", p)
		}
	}

	// Replay from the compressed trace.
	in, err := trace.Open(textPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.Replay(tr, machine.New(cfg, core.WARDen))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Cycles != recorded.Cycles {
		t.Fatalf("cycles: recorded %d, replayed %d", recorded.Cycles, replayed.Cycles)
	}
	if got := *replayed.Machine.Counters(); got != recorded.Counters {
		t.Fatalf("counters diverge after compressed replay:\nrecorded: %+v\nreplayed: %+v", recorded.Counters, got)
	}

	// The compressed JSONL decompresses byte-identical to the plain stream.
	jr, err := trace.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(jr); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != plainJSONL.String() {
		t.Fatal("decompressed JSONL differs from the plain stream")
	}
	// The new event fields ride along.
	if !strings.Contains(buf.String(), `"cycle":`) {
		t.Error("JSONL events carry no cycle stamps")
	}
	if !strings.Contains(buf.String(), `"label":"root"`) {
		t.Error("JSONL events carry no phase labels")
	}
}

// TestReaderSniffing feeds Reader plain, gzip, empty, and 1-byte inputs.
func TestReaderSniffing(t *testing.T) {
	plain := "0 W 0x1000 8 0x7\n"
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write([]byte(plain)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]string{"plain": plain, "gzip": gz.String()} {
		r, err := trace.Reader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var out bytes.Buffer
		if _, err := out.ReadFrom(r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.String() != plain {
			t.Fatalf("%s: got %q, want %q", name, out.String(), plain)
		}
	}
	for name, in := range map[string]string{"empty": "", "one byte": "x"} {
		r, err := trace.Reader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var out bytes.Buffer
		if _, err := out.ReadFrom(r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.String() != in {
			t.Fatalf("%s: got %q, want %q", name, out.String(), in)
		}
	}
}
