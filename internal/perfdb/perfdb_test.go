package perfdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func rec(runID, step string, cycles uint64, wall float64) Record {
	return Record{
		Schema: SchemaVersion, RunID: runID, GitRev: "abc123",
		Fingerprint: "wardenbench|all|small", Step: step,
		SimulatedCycles: cycles, SimulatedRuns: 4, WallSeconds: wall,
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	first := []Record{rec("r1", "fig7", 1000, 1.5), rec("r1", "total", 1000, 1.6)}
	if err := Append(path, first); err != nil {
		t.Fatal(err)
	}
	second := []Record{rec("r2", "fig7", 1100, 1.4), rec("r2", "total", 1100, 1.5)}
	if err := Append(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record{}, first...), second...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"step\":\"ok\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("malformed history line not rejected")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blank.jsonl")
	if err := os.WriteFile(path, []byte("\n{\"step\":\"a\"}\n\n{\"step\":\"b\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Step != "a" || recs[1].Step != "b" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestGroupAndSelectSnapshots(t *testing.T) {
	recs := []Record{
		rec("r1", "fig7", 1000, 1),
		rec("r1", "fig8", 2000, 2),
		rec("r2", "fig7", 1010, 1),
		rec("r2", "fig8", 2020, 2),
	}
	recs[2].GitRev = "def456"
	recs[3].GitRev = "def456"

	snaps := GroupSnapshots(recs)
	if len(snaps) != 2 || snaps[0].RunID != "r1" || snaps[1].RunID != "r2" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if len(snaps[0].Steps) != 2 {
		t.Fatalf("r1 steps = %+v", snaps[0].Steps)
	}
	if snaps[1].GitRev != "def456" {
		t.Fatalf("r2 rev = %q", snaps[1].GitRev)
	}

	latest, ok := LatestSnapshot(recs, "wardenbench|all|small")
	if !ok || latest.RunID != "r2" {
		t.Fatalf("latest = %+v, ok=%v", latest, ok)
	}
	if _, ok := LatestSnapshot(recs, "other|fingerprint"); ok {
		t.Fatal("fingerprint filter ignored")
	}
	byID, ok := ByRunID(recs, "r1")
	if !ok || byID.RunID != "r1" {
		t.Fatalf("ByRunID = %+v, ok=%v", byID, ok)
	}
	if _, ok := ByRunID(recs, "r9"); ok {
		t.Fatal("ByRunID invented a snapshot")
	}

	if step, ok := snaps[0].Step("fig8"); !ok || step.SimulatedCycles != 2000 {
		t.Fatalf("Step(fig8) = %+v, ok=%v", step, ok)
	}
	if _, ok := snaps[0].Step("nope"); ok {
		t.Fatal("Step invented a record")
	}
}
