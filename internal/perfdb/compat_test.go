package perfdb_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"warden/internal/core"
	"warden/internal/perfdb"
	"warden/internal/runner"
)

// TestBaselineFingerprintsStable proves the protocol-registry refactor
// did not disturb the perf-history pairing key: every record in the
// committed baseline still carries exactly the fingerprint wardendiff
// recomputes today, so old snapshots keep gating new runs.
func TestBaselineFingerprintsStable(t *testing.T) {
	recs, err := perfdb.Read(filepath.Join("..", "..", "perf", "baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("committed baseline is empty")
	}
	want := runner.Fingerprint("wardenbench", "all", "small")
	for i, rec := range recs {
		if rec.Fingerprint != want {
			t.Errorf("baseline record %d (step %s): fingerprint %q, want %q",
				i, rec.Step, rec.Fingerprint, want)
		}
	}
}

// TestBaselineRoundTripsByteStable proves the fleet-era Worker field is a
// purely additive schema change: every committed baseline line — all of
// which predate the field — decodes and re-encodes to exactly its original
// bytes, so pre-fleet history files are untouched by the new reader and
// writer. (Fleet-produced records carry "worker"; single-process ones
// never gain the key.)
func TestBaselineRoundTripsByteStable(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "perf", "baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		orig := bytes.TrimSpace(sc.Bytes())
		if len(orig) == 0 {
			continue
		}
		var rec perfdb.Record
		if err := json.Unmarshal(orig, &rec); err != nil {
			t.Fatalf("baseline line %d: %v", line, err)
		}
		if rec.Worker != "" {
			t.Fatalf("baseline line %d: pre-fleet record decoded a worker id %q", line, rec.Worker)
		}
		if rec.AttribTopKind != "" || rec.AttribTopShare != 0 || rec.AttribResidue != 0 {
			t.Fatalf("baseline line %d: pre-attribution record decoded attribution fields: %+v", line, rec)
		}
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("baseline line %d: re-encode: %v", line, err)
		}
		if !bytes.Equal(out, orig) {
			t.Fatalf("baseline line %d not byte-stable:\n old %s\n new %s", line, orig, out)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if line == 0 {
		t.Fatal("committed baseline is empty")
	}
}

// TestWorkerFieldTolerated pins the wardendiff-facing contract for
// fleet-produced records: the worker id parses, survives a round trip, and
// never participates in snapshot pairing or step comparison.
func TestWorkerFieldTolerated(t *testing.T) {
	const in = `{"schema":1,"run_id":"J1","fingerprint":"fp","step":"primes/MESI","simulated_cycles":42,"simulated_runs":1,"wall_seconds":0.5,"cycles_per_second":84,"worker":"w1"}`
	var rec perfdb.Record
	if err := json.Unmarshal([]byte(in), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Worker != "w1" {
		t.Fatalf("worker = %q, want w1", rec.Worker)
	}
	if rec.Fingerprint != "fp" {
		t.Fatalf("fingerprint = %q: worker id must not disturb the pairing key", rec.Fingerprint)
	}
	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != in {
		t.Fatalf("worker-bearing record not byte-stable:\n old %s\n new %s", in, out)
	}

	// Comparison is worker-blind: a fleet snapshot gates against a
	// single-process baseline of the same fingerprint with no deltas beyond
	// the measurements themselves.
	base := perfdb.Snapshot{RunID: "base", Fingerprint: "fp",
		Steps: []perfdb.Record{{Step: "primes/MESI", SimulatedCycles: 42, WallSeconds: 0.4}}}
	next := perfdb.Snapshot{RunID: "J1", Fingerprint: "fp", Steps: []perfdb.Record{rec}}
	deltas := perfdb.Compare(base, next, perfdb.DefaultThresholds())
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1: %+v", len(deltas), deltas)
	}
	if deltas[0].Regression {
		t.Fatalf("identical cycles flagged as regression: %+v", deltas[0])
	}
}

// TestAttribFieldsTolerated pins the contract for the attribution summary
// fields (wardenbench -attrib, attribution-enabled fleet workers): they
// parse, survive a round trip byte-identically, and never participate in
// fingerprint pairing or step comparison — wardendiff gates on the
// measurements alone.
func TestAttribFieldsTolerated(t *testing.T) {
	const in = `{"schema":1,"run_id":"J2","fingerprint":"fp","step":"fib/WARDen","simulated_cycles":42,"simulated_runs":1,"wall_seconds":0.5,"cycles_per_second":84,"worker":"w1","attrib_top_kind":"load","attrib_top_share":0.71}`
	var rec perfdb.Record
	if err := json.Unmarshal([]byte(in), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.AttribTopKind != "load" || rec.AttribTopShare != 0.71 {
		t.Fatalf("attribution summary = %q/%v, want load/0.71", rec.AttribTopKind, rec.AttribTopShare)
	}
	if rec.AttribResidue != 0 {
		t.Fatalf("residue = %d; records with nonzero residue must not exist (the run fails instead)", rec.AttribResidue)
	}
	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != in {
		t.Fatalf("attribution-bearing record not byte-stable:\n old %s\n new %s", in, out)
	}

	// Comparison ignores the summary: identical measurements gate clean
	// whether or not either side carries attribution fields.
	base := perfdb.Snapshot{RunID: "base", Fingerprint: "fp",
		Steps: []perfdb.Record{{Step: "fib/WARDen", SimulatedCycles: 42, WallSeconds: 0.4}}}
	next := perfdb.Snapshot{RunID: "J2", Fingerprint: "fp", Steps: []perfdb.Record{rec}}
	deltas := perfdb.Compare(base, next, perfdb.DefaultThresholds())
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1: %+v", len(deltas), deltas)
	}
	if deltas[0].Regression {
		t.Fatalf("identical cycles flagged as regression: %+v", deltas[0])
	}
}

// TestUnknownFieldsIgnored pins that the history reader is forward-
// compatible: a record written by a future schema with keys this build
// has never heard of still parses, and the known measurements come
// through intact — wardendiff keeps gating old binaries against new
// histories instead of erroring out.
func TestUnknownFieldsIgnored(t *testing.T) {
	const in = `{"schema":1,"run_id":"J3","fingerprint":"fp","step":"fib/MESI","simulated_cycles":7,"simulated_runs":1,"wall_seconds":0.1,"cycles_per_second":70,"some_future_field":"x","another":{"nested":true}}`
	var rec perfdb.Record
	if err := json.Unmarshal([]byte(in), &rec); err != nil {
		t.Fatalf("record with unknown fields rejected: %v", err)
	}
	if rec.Step != "fib/MESI" || rec.SimulatedCycles != 7 {
		t.Fatalf("known fields corrupted by unknown neighbours: %+v", rec)
	}
}

// TestFingerprintsEmbedProtocolNames pins that a protocol contributes
// its registered *name* to fingerprints and formatted records, never the
// registry ordinal: serialized artifacts survive registration-order
// changes (SiSd registering fourth moved no existing protocol's ordinal,
// and even if it had, no stored record would notice).
func TestFingerprintsEmbedProtocolNames(t *testing.T) {
	for _, tc := range []struct {
		p    core.Protocol
		name string
	}{
		{core.MESI, "MESI"},
		{core.WARDen, "WARDen"},
		{core.MOESI, "MOESI"},
	} {
		if got := runner.Fingerprint(tc.p); got != tc.name {
			t.Errorf("Fingerprint(%s) = %q, want the registered name", tc.name, got)
		}
		if got := fmt.Sprint(tc.p); got != tc.name {
			t.Errorf("Sprint = %q, want %q", got, tc.name)
		}
		b, err := tc.p.MarshalText()
		if err != nil || string(b) != tc.name {
			t.Errorf("MarshalText = %q, %v; want %q", b, err, tc.name)
		}
		var q core.Protocol
		if err := q.UnmarshalText(b); err != nil || q != tc.p {
			t.Errorf("UnmarshalText(%q) = %v, %v; want %v", b, q, err, tc.p)
		}
	}
}
