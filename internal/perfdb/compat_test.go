package perfdb_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"warden/internal/core"
	"warden/internal/perfdb"
	"warden/internal/runner"
)

// TestBaselineFingerprintsStable proves the protocol-registry refactor
// did not disturb the perf-history pairing key: every record in the
// committed baseline still carries exactly the fingerprint wardendiff
// recomputes today, so old snapshots keep gating new runs.
func TestBaselineFingerprintsStable(t *testing.T) {
	recs, err := perfdb.Read(filepath.Join("..", "..", "perf", "baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("committed baseline is empty")
	}
	want := runner.Fingerprint("wardenbench", "all", "small")
	for i, rec := range recs {
		if rec.Fingerprint != want {
			t.Errorf("baseline record %d (step %s): fingerprint %q, want %q",
				i, rec.Step, rec.Fingerprint, want)
		}
	}
}

// TestFingerprintsEmbedProtocolNames pins that a protocol contributes
// its registered *name* to fingerprints and formatted records, never the
// registry ordinal: serialized artifacts survive registration-order
// changes (SiSd registering fourth moved no existing protocol's ordinal,
// and even if it had, no stored record would notice).
func TestFingerprintsEmbedProtocolNames(t *testing.T) {
	for _, tc := range []struct {
		p    core.Protocol
		name string
	}{
		{core.MESI, "MESI"},
		{core.WARDen, "WARDen"},
		{core.MOESI, "MOESI"},
	} {
		if got := runner.Fingerprint(tc.p); got != tc.name {
			t.Errorf("Fingerprint(%s) = %q, want the registered name", tc.name, got)
		}
		if got := fmt.Sprint(tc.p); got != tc.name {
			t.Errorf("Sprint = %q, want %q", got, tc.name)
		}
		b, err := tc.p.MarshalText()
		if err != nil || string(b) != tc.name {
			t.Errorf("MarshalText = %q, %v; want %q", b, err, tc.name)
		}
		var q core.Protocol
		if err := q.UnmarshalText(b); err != nil || q != tc.p {
			t.Errorf("UnmarshalText(%q) = %v, %v; want %v", b, q, err, tc.p)
		}
	}
}
