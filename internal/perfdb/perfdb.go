// Package perfdb is the append-only performance-history store: one JSONL
// line per benchmark step, keyed by a config fingerprint and git revision,
// written by `wardenbench -history` and compared by `wardendiff`.
//
// The same Record schema backs the point-in-time BENCH_*.json snapshots
// (wardenbench -timing) and the longitudinal history file, so a snapshot
// can be diffed against history without translation. Records carry both
// deterministic measurements (simulated cycles — identical across hosts
// for the same code and inputs) and noisy host-side ones (wall-clock,
// allocation stats); the diff layer applies different thresholds to each.
package perfdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion is written into every record; bump on incompatible field
// changes so old history lines remain identifiable.
const SchemaVersion = 1

// Record is one step of one benchmark run. A full run (a "snapshot")
// is the set of records sharing a RunID.
type Record struct {
	Schema int `json:"schema"`
	// RunID groups the records of one wardenbench invocation.
	RunID string `json:"run_id,omitempty"`
	// Time is the run's RFC3339 UTC wall-clock timestamp.
	Time string `json:"time,omitempty"`
	// GitRev identifies the code that produced the record.
	GitRev string `json:"git_rev,omitempty"`
	// Fingerprint identifies *what* was measured (experiment selection,
	// size class): snapshots are only comparable at equal fingerprints.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Step names the experiment ("fig8", "ablations", or "total").
	Step string `json:"step"`
	// Engine names the simulation engine mode the step ran under ("seq" or
	// "pdes"); GOMAXPROCS records the host parallelism available to it.
	// Both are context for interpreting WallSeconds — engine timing is
	// host-dependent — and absent from pre-PDES history lines (additive
	// fields; the schema version is unchanged).
	Engine     string `json:"engine,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`

	// Deterministic simulation measurements.
	SimulatedCycles uint64 `json:"simulated_cycles"`
	SimulatedRuns   uint64 `json:"simulated_runs"`

	// Host-side (noisy) measurements.
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	HostAllocs      uint64  `json:"host_allocs,omitempty"`      // heap allocations during the step
	HostAllocBytes  uint64  `json:"host_alloc_bytes,omitempty"` // bytes allocated during the step
	HostHeapBytes   uint64  `json:"host_heap_bytes,omitempty"`  // live heap at step end

	// Worker names the fleet worker that executed the step when the record
	// was produced by a distributed sweep (internal/fleet); empty for
	// single-process runs. It is provenance only: fingerprints and the
	// wardendiff pairing/compare logic ignore it, and the field is additive
	// (omitempty, schema version unchanged) so pre-fleet history — including
	// the committed perf/baseline.jsonl — round-trips byte-identically.
	Worker string `json:"worker,omitempty"`

	// Attribution summary (wardenbench -attrib / fleet workers with
	// attribution enabled): the event kind holding the largest share of
	// attributed cycles and that share of the total. AttribResidue is the
	// reconciliation residue in cycles and is 0 by construction — a run
	// whose ledger does not sum exactly to its measured cycles fails
	// instead of producing a record. All three are additive (omitempty,
	// schema version unchanged): pre-attribution history, including the
	// committed perf/baseline.jsonl, round-trips byte-identically, and
	// wardendiff ignores them.
	AttribTopKind  string  `json:"attrib_top_kind,omitempty"`
	AttribTopShare float64 `json:"attrib_top_share,omitempty"`
	AttribResidue  int64   `json:"attrib_residue,omitempty"`
}

// Append writes recs to path as JSONL, creating the file if needed and
// never rewriting existing lines — the store is strictly append-only.
func Append(path string, recs []Record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("perfdb: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("perfdb: encode %s/%s: %w", rec.RunID, rec.Step, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("perfdb: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("perfdb: %w", err)
	}
	return nil
}

// Read loads every record from a JSONL history file in file order. Blank
// lines are skipped; a malformed line is an error naming its line number,
// since a corrupt history would silently weaken the perf gate.
func Read(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perfdb: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("perfdb: %s:%d: %w", path, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfdb: %s: %w", path, err)
	}
	return recs, nil
}

// Snapshot is one benchmark run reassembled from its records.
type Snapshot struct {
	RunID       string
	Time        string
	GitRev      string
	Fingerprint string
	Steps       []Record // file order
}

// Step returns the named step's record.
func (s *Snapshot) Step(name string) (Record, bool) {
	for _, rec := range s.Steps {
		if rec.Step == name {
			return rec, true
		}
	}
	return Record{}, false
}

// GroupSnapshots reassembles records into snapshots by RunID, ordered by
// each RunID's first appearance (append order = chronological order for a
// well-formed history). Records without a RunID group together under "".
func GroupSnapshots(recs []Record) []Snapshot {
	index := make(map[string]int)
	var out []Snapshot
	for _, rec := range recs {
		i, ok := index[rec.RunID]
		if !ok {
			i = len(out)
			index[rec.RunID] = i
			out = append(out, Snapshot{
				RunID:       rec.RunID,
				Time:        rec.Time,
				GitRev:      rec.GitRev,
				Fingerprint: rec.Fingerprint,
			})
		}
		out[i].Steps = append(out[i].Steps, rec)
	}
	return out
}

// LatestSnapshot returns the last snapshot in recs whose fingerprint
// matches (empty fingerprint matches anything).
func LatestSnapshot(recs []Record, fingerprint string) (Snapshot, bool) {
	snaps := GroupSnapshots(recs)
	for i := len(snaps) - 1; i >= 0; i-- {
		if fingerprint == "" || snaps[i].Fingerprint == fingerprint {
			return snaps[i], true
		}
	}
	return Snapshot{}, false
}

// ByRunID returns the snapshot with the given RunID.
func ByRunID(recs []Record, runID string) (Snapshot, bool) {
	for _, s := range GroupSnapshots(recs) {
		if s.RunID == runID {
			return s, true
		}
	}
	return Snapshot{}, false
}
