package perfdb

import (
	"fmt"
	"io"
	"math"
)

// Thresholds tunes regression detection. Simulated cycles are
// deterministic — any change is real — so their threshold is tight and on
// by default; host wall-clock varies run to run and machine to machine,
// so it is compared only on request, with a wide threshold and a noise
// floor that ignores sub-second steps entirely.
type Thresholds struct {
	// CyclePct flags a step whose simulated cycles grew by more than this
	// percentage.
	CyclePct float64
	// CompareWall enables wall-clock comparison (off for cross-machine
	// gates like CI vs a committed baseline).
	CompareWall bool
	// WallPct flags a step whose wall-clock grew by more than this
	// percentage (only with CompareWall).
	WallPct float64
	// MinWallSeconds is the noise floor: wall-clock deltas where both
	// sides ran faster than this are ignored (only with CompareWall).
	MinWallSeconds float64
}

// DefaultThresholds: 1% on deterministic cycles, 25% on wall-clock above
// a 0.5 s floor, wall comparison off.
func DefaultThresholds() Thresholds {
	return Thresholds{CyclePct: 1.0, WallPct: 25.0, MinWallSeconds: 0.5}
}

// Delta is one compared measurement of one step.
type Delta struct {
	Step       string  `json:"step"`
	Metric     string  `json:"metric"` // "simulated_cycles" or "wall_seconds"
	Base       float64 `json:"base"`
	New        float64 `json:"new"`
	Pct        float64 `json:"pct"` // 100*(new-base)/base; +Inf when base is 0 and new is not
	Regression bool    `json:"regression"`
	Note       string  `json:"note,omitempty"`
}

// pctChange returns the relative growth in percent.
func pctChange(base, new float64) float64 {
	switch {
	case base == new:
		return 0
	case base == 0:
		return math.Inf(1)
	}
	return 100 * (new - base) / base
}

// Compare evaluates next against base step by step and returns every
// delta, regressions flagged. Steps missing from next are regressions
// (coverage must not silently shrink); steps new in next are reported but
// never gate.
func Compare(base, next Snapshot, th Thresholds) []Delta {
	var out []Delta
	seen := make(map[string]bool)
	for _, b := range base.Steps {
		seen[b.Step] = true
		n, ok := next.Step(b.Step)
		if !ok {
			out = append(out, Delta{
				Step: b.Step, Metric: "simulated_cycles",
				Base: float64(b.SimulatedCycles), New: math.NaN(),
				Regression: true, Note: "step missing from new snapshot",
			})
			continue
		}
		cyc := Delta{
			Step: b.Step, Metric: "simulated_cycles",
			Base: float64(b.SimulatedCycles), New: float64(n.SimulatedCycles),
			Pct: pctChange(float64(b.SimulatedCycles), float64(n.SimulatedCycles)),
		}
		cyc.Regression = cyc.Pct > th.CyclePct
		if b.SimulatedCycles == 0 && n.SimulatedCycles > 0 {
			// The base snapshot predates cycle accounting for this step
			// (e.g. table1 before the kernel-validation runs were probed).
			// Gaining coverage is not a regression; there is just no
			// baseline to compare against yet.
			cyc.Regression = false
			cyc.Note = "base recorded no cycles for this step; new coverage, not a regression"
		}
		if note := suspectZeroCycles(n); note != "" {
			cyc.Note = note
		}
		out = append(out, cyc)

		if th.CompareWall && (b.WallSeconds >= th.MinWallSeconds || n.WallSeconds >= th.MinWallSeconds) {
			wall := Delta{
				Step: b.Step, Metric: "wall_seconds",
				Base: b.WallSeconds, New: n.WallSeconds,
				Pct: pctChange(b.WallSeconds, n.WallSeconds),
			}
			wall.Regression = wall.Pct > th.WallPct
			out = append(out, wall)
		}
	}
	for _, n := range next.Steps {
		if !seen[n.Step] {
			note := "new step (not in base snapshot)"
			if s := suspectZeroCycles(n); s != "" {
				note = s
			}
			out = append(out, Delta{
				Step: n.Step, Metric: "simulated_cycles",
				Base: math.NaN(), New: float64(n.SimulatedCycles),
				Note: note,
			})
		}
	}
	return out
}

// suspectWallFloor is the wall-clock above which a step that claims zero
// simulated cycles is suspicious: real simulation work almost certainly
// happened but was not credited to the runner (a Table1-style accounting
// gap). Purely-host steps (table2 renders a static table in microseconds)
// stay below it.
const suspectWallFloor = 0.001

// suspectZeroCycles returns a warning note when rec reports no simulated
// cycles despite non-trivial wall time. It is a warning, not a regression:
// the measurement is incomplete rather than worse.
func suspectZeroCycles(rec Record) string {
	if rec.SimulatedCycles == 0 && rec.WallSeconds >= suspectWallFloor {
		return fmt.Sprintf("suspect: zero simulated cycles but %.3fs wall — step likely not crediting its simulations", rec.WallSeconds)
	}
	return ""
}

// HasRegression reports whether any delta is flagged.
func HasRegression(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regression {
			return true
		}
	}
	return false
}

// WriteReport renders a human-readable comparison table.
func WriteReport(w io.Writer, base, next Snapshot, deltas []Delta) {
	ident := func(s Snapshot) string {
		id := s.RunID
		if id == "" {
			id = "(no run id)"
		}
		out := id
		if s.GitRev != "" {
			out += " @ " + s.GitRev
		}
		if s.Time != "" {
			out += " (" + s.Time + ")"
		}
		return out
	}
	fmt.Fprintf(w, "base: %s\nnew:  %s\n", ident(base), ident(next))
	if base.Fingerprint != next.Fingerprint {
		fmt.Fprintf(w, "WARNING: fingerprints differ (%q vs %q) — snapshots may not be comparable\n",
			base.Fingerprint, next.Fingerprint)
	}
	fmt.Fprintf(w, "%-14s %-17s %16s %16s %9s\n", "step", "metric", "base", "new", "change")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		note := ""
		if d.Note != "" {
			note = "  (" + d.Note + ")"
		}
		fmt.Fprintf(w, "%-14s %-17s %16s %16s %9s%s%s\n",
			d.Step, d.Metric, fnum(d.Base), fnum(d.New), fpct(d.Pct), mark, note)
	}
}

func fnum(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

func fpct(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%+.2f%%", v)
}
