package perfdb

import (
	"math"
	"strings"
	"testing"
)

func snap(runID string, cycles map[string]uint64, wall map[string]float64) Snapshot {
	s := Snapshot{RunID: runID, GitRev: "rev-" + runID, Fingerprint: "fp"}
	for _, step := range []string{"fig7", "fig8", "ablations", "total"} {
		c, ok := cycles[step]
		if !ok {
			continue
		}
		s.Steps = append(s.Steps, Record{
			Schema: SchemaVersion, RunID: runID, Fingerprint: "fp", Step: step,
			SimulatedCycles: c, WallSeconds: wall[step],
		})
	}
	return s
}

var baseCycles = map[string]uint64{"fig7": 100_000, "fig8": 200_000, "ablations": 50_000, "total": 350_000}
var baseWall = map[string]float64{"fig7": 2.0, "fig8": 4.0, "ablations": 1.0, "total": 7.0}

// TestCompareIdenticalSnapshotsClean is the acceptance criterion's easy
// half: identical snapshots must produce zero regressions.
func TestCompareIdenticalSnapshotsClean(t *testing.T) {
	base := snap("r1", baseCycles, baseWall)
	next := snap("r2", baseCycles, baseWall)
	th := DefaultThresholds()
	th.CompareWall = true
	deltas := Compare(base, next, th)
	if HasRegression(deltas) {
		t.Fatalf("identical snapshots flagged: %+v", deltas)
	}
	if len(deltas) == 0 {
		t.Fatal("no deltas produced")
	}
	for _, d := range deltas {
		if d.Pct != 0 {
			t.Fatalf("nonzero delta on identical input: %+v", d)
		}
	}
}

// TestCompareDetectsInjectedCycleRegression is the acceptance criterion's
// hard half: a >=5% simulated-cycle regression on one step must be caught
// at default thresholds.
func TestCompareDetectsInjectedCycleRegression(t *testing.T) {
	base := snap("r1", baseCycles, baseWall)
	injected := map[string]uint64{}
	for k, v := range baseCycles {
		injected[k] = v
	}
	injected["fig8"] = baseCycles["fig8"] * 105 / 100 // +5%
	injected["total"] = baseCycles["total"] + (injected["fig8"] - baseCycles["fig8"])
	next := snap("r2", injected, baseWall)

	deltas := Compare(base, next, DefaultThresholds())
	if !HasRegression(deltas) {
		t.Fatalf("injected +5%% cycle regression missed: %+v", deltas)
	}
	var hit bool
	for _, d := range deltas {
		if d.Step == "fig8" && d.Metric == "simulated_cycles" {
			hit = true
			if !d.Regression {
				t.Fatalf("fig8 delta not flagged: %+v", d)
			}
			if d.Pct < 4.9 || d.Pct > 5.1 {
				t.Fatalf("fig8 pct = %v", d.Pct)
			}
		}
		if d.Step == "fig7" && d.Regression {
			t.Fatalf("untouched step flagged: %+v", d)
		}
	}
	if !hit {
		t.Fatal("fig8 delta missing")
	}
}

// TestCompareCycleImprovementNotFlagged: faster is never a regression.
func TestCompareCycleImprovementNotFlagged(t *testing.T) {
	improved := map[string]uint64{}
	for k, v := range baseCycles {
		improved[k] = v * 80 / 100
	}
	deltas := Compare(snap("r1", baseCycles, baseWall), snap("r2", improved, baseWall), DefaultThresholds())
	if HasRegression(deltas) {
		t.Fatalf("improvement flagged as regression: %+v", deltas)
	}
}

// TestCompareWallGating: wall-clock is gated only on request, with its
// own threshold and a noise floor for sub-floor steps.
func TestCompareWallGating(t *testing.T) {
	noisyWall := map[string]float64{"fig7": 2.2, "fig8": 6.0, "ablations": 0.3, "total": 8.5}
	base := snap("r1", baseCycles, baseWall)
	next := snap("r2", baseCycles, noisyWall)

	// Wall comparison off: +50% on fig8 wall is invisible.
	if deltas := Compare(base, next, DefaultThresholds()); HasRegression(deltas) {
		t.Fatalf("wall regression flagged with CompareWall off: %+v", deltas)
	}

	th := DefaultThresholds()
	th.CompareWall = true
	deltas := Compare(base, next, th)
	var fig8Wall, ablationsWall bool
	for _, d := range deltas {
		if d.Metric != "wall_seconds" {
			continue
		}
		switch d.Step {
		case "fig8":
			fig8Wall = d.Regression // +50% > 25% threshold
		case "ablations":
			ablationsWall = true // 1.0s -> 0.3s: above floor on the base side
		case "fig7":
			if d.Regression {
				t.Fatalf("fig7 +10%% wall flagged at 25%% threshold: %+v", d)
			}
		}
	}
	if !fig8Wall {
		t.Fatal("fig8 +50% wall regression missed")
	}
	if !ablationsWall {
		t.Fatal("ablations wall delta dropped despite base above floor")
	}
}

// TestCompareMissingStepIsRegression: shrinking coverage cannot pass the
// gate silently.
func TestCompareMissingStepIsRegression(t *testing.T) {
	partial := map[string]uint64{}
	for k, v := range baseCycles {
		if k == "ablations" {
			continue
		}
		partial[k] = v
	}
	deltas := Compare(snap("r1", baseCycles, baseWall), snap("r2", partial, baseWall), DefaultThresholds())
	if !HasRegression(deltas) {
		t.Fatal("missing step not flagged")
	}
	var found bool
	for _, d := range deltas {
		if d.Step == "ablations" && d.Regression && strings.Contains(d.Note, "missing") {
			found = true
			if !math.IsNaN(d.New) {
				t.Fatalf("missing step New = %v", d.New)
			}
		}
	}
	if !found {
		t.Fatalf("no missing-step delta: %+v", deltas)
	}
}

// TestCompareNewStepInformational: added coverage is reported, not gated.
func TestCompareNewStepInformational(t *testing.T) {
	extended := map[string]uint64{}
	for k, v := range baseCycles {
		extended[k] = v
	}
	extended["manysockets"] = 42
	base := snap("r1", baseCycles, baseWall)
	next := Snapshot{RunID: "r2", Fingerprint: "fp"}
	for _, step := range []string{"fig7", "fig8", "ablations", "total", "manysockets"} {
		next.Steps = append(next.Steps, Record{RunID: "r2", Fingerprint: "fp", Step: step,
			SimulatedCycles: extended[step], WallSeconds: baseWall[step]})
	}
	deltas := Compare(base, next, DefaultThresholds())
	if HasRegression(deltas) {
		t.Fatalf("new step gated: %+v", deltas)
	}
	var found bool
	for _, d := range deltas {
		if d.Step == "manysockets" && strings.Contains(d.Note, "new step") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new step not reported: %+v", deltas)
	}
}

func TestWriteReportRendersRegressions(t *testing.T) {
	base := snap("r1", baseCycles, baseWall)
	injected := map[string]uint64{}
	for k, v := range baseCycles {
		injected[k] = v * 110 / 100
	}
	next := snap("r2", injected, baseWall)
	next.Fingerprint = "other"
	deltas := Compare(base, next, DefaultThresholds())
	var b strings.Builder
	WriteReport(&b, base, next, deltas)
	out := b.String()
	for _, want := range []string{"REGRESSION", "fig8", "simulated_cycles", "r1", "r2",
		"WARNING: fingerprints differ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCompareZeroBaseGainsCoverage: a step whose base recorded zero cycles
// but whose new snapshot reports real work (e.g. table1 once the
// kernel-validation runs were probed) is new coverage, not a regression.
func TestCompareZeroBaseGainsCoverage(t *testing.T) {
	base := snap("r1", map[string]uint64{"fig7": 0, "total": 100}, nil)
	next := snap("r2", map[string]uint64{"fig7": 5_000, "total": 100}, nil)
	deltas := Compare(base, next, DefaultThresholds())
	if HasRegression(deltas) {
		t.Fatalf("zero-base coverage gain flagged as regression: %+v", deltas)
	}
	var found bool
	for _, d := range deltas {
		if d.Step == "fig7" && d.Metric == "simulated_cycles" {
			found = true
			if d.Note == "" {
				t.Fatalf("zero-base step carries no explanatory note: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("fig7 delta missing")
	}
}

// TestCompareSuspectZeroCycles: a step claiming zero simulated cycles with
// non-trivial wall time is suspect — warned about, never a failure — both
// when the step exists in the base and when it is new.
func TestCompareSuspectZeroCycles(t *testing.T) {
	base := snap("r1", map[string]uint64{"fig7": 0, "total": 100}, map[string]float64{"fig7": 0.042})
	next := snap("r2", map[string]uint64{"fig7": 0, "total": 100, "fig8": 0},
		map[string]float64{"fig7": 0.042, "fig8": 1.5})
	deltas := Compare(base, next, DefaultThresholds())
	if HasRegression(deltas) {
		t.Fatalf("suspect zero-cycle steps must warn, not fail: %+v", deltas)
	}
	notes := map[string]string{}
	for _, d := range deltas {
		if d.Metric == "simulated_cycles" {
			notes[d.Step] = d.Note
		}
	}
	for _, step := range []string{"fig7", "fig8"} {
		if !strings.Contains(notes[step], "suspect") {
			t.Fatalf("%s: want suspect note, got %q", step, notes[step])
		}
	}
	// Sub-millisecond steps (table2 renders in microseconds) stay silent.
	if s := suspectZeroCycles(Record{SimulatedCycles: 0, WallSeconds: 0.0004}); s != "" {
		t.Fatalf("sub-floor wall time flagged: %q", s)
	}
}
