package fleet

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/bench"
)

// RunLocal executes a sweep spec sequentially in-process, in unit order —
// the reference a distributed run must match byte for byte. It is what
// `wardenfleet -local` runs, and what the CI fleet-integration job diffs
// the coordinator's output against.
func RunLocal(spec SweepSpec) ([]bench.Result, error) {
	units, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	out := make([]bench.Result, len(units))
	for i, u := range units {
		cfg, proto, entry, opts, emode, err := u.Resolve()
		if err != nil {
			return nil, err
		}
		res, err := bench.RunOneProbedOn(emode, cfg, proto, entry, u.Size, opts, nil)
		if err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", u.Name(), err)
		}
		out[i] = res
	}
	return out, nil
}

// WriteResultsTable renders results as a deterministic text table: only
// simulated quantities (cycles, IPC, messages, inter-socket flits, energy),
// never wall-clock — so two runs of the same sweep, local or distributed,
// produce byte-identical tables.
func WriteResultsTable(w io.Writer, results []bench.Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tPROTOCOL\tMACHINE\tSIZE\tCYCLES\tIPC\tMSGS\tXSOCKET-FLITS\tENERGY(pJ)")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%v\t%s\t%d\t%d\t%.3f\t%d\t%d\t%.0f\n",
			r.Benchmark, r.Protocol, r.Config.Name, r.Size,
			r.Cycles, r.IPC(), r.Counters.TotalMsgs(), r.Counters.IntersocketFlits,
			r.Energy.Total)
	}
	return tw.Flush()
}
