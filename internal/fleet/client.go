package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"warden/internal/bench"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/span"
)

// Client speaks the coordinator's HTTP API: the submit/poll side used by
// `wardenfleet -submit`, and the lease protocol (it implements WorkerAPI)
// used by `wardenfleet -worker`.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:9090".
	Base string
	// HTTP overrides the transport; nil uses a client with sane timeouts
	// for a localhost control plane.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// apiError is a non-2xx response: status code plus the server's message.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("fleet: coordinator replied %d: %s", e.Status, e.Msg)
}

// post sends a JSON body and decodes a JSON reply into out (skipped when
// out is nil, e.g. for 204 endpoints).
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fleet: encode request: %w", err)
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return decodeReply(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return decodeReply(resp, out)
}

func decodeReply(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: decode reply: %w", err)
	}
	return nil
}

// Submit posts a sweep spec and returns the accepted job's status.
func (c *Client) Submit(spec SweepSpec) (JobStatus, error) {
	return c.SubmitTraced(spec, span.Context{})
}

// SubmitTraced is Submit carrying a trace context in the W3C traceparent
// header, so the coordinator's job span joins the submitter's trace. An
// invalid context omits the header (identical to Submit). Set the
// context's Sampled flag to make workers collect execute and PDES epoch
// spans.
func (c *Client) SubmitTraced(spec SweepSpec, sctx span.Context) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("fleet: encode request: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := sctx.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("fleet: %w", err)
	}
	var st JobStatus
	return st, decodeReply(resp, &st)
}

// StreamEvents subscribes to a job's SSE feed (GET /jobs/{id}/events),
// calling fn for every event — the full replay first, then live events.
// It returns nil when the stream ends cleanly (the job settled and the
// coordinator closed the log), fn's error if fn rejects an event, or the
// transport error otherwise. The connection intentionally bypasses the
// default client timeout: an event stream legitimately outlives any fixed
// deadline, so its lifetime is governed by ctx.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(obs.StreamEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	var ev obs.StreamEvent
	flush := func() error {
		if ev.Type == "" && len(ev.Data) == 0 {
			return nil
		}
		err := fn(ev)
		ev = obs.StreamEvent{}
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(strings.TrimPrefix(line, "id: "), "%d", &ev.ID)
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("fleet: event stream: %w", err)
	}
	return flush()
}

// Trace fetches a job's Perfetto trace_event JSON document (the spans
// collected so far; complete once the job has settled).
func (c *Client) Trace(id string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + id + "/trace")
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: read trace: %w", err)
	}
	return b, nil
}

// Job fetches a job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.get("/jobs/"+id, &st)
	return st, err
}

// Wait polls a job until it settles (done or failed) or ctx expires,
// returning the final status. A failed job is returned with a nil error —
// the caller inspects State and Errors.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("fleet: wait for %s: %w (%d/%d done)", id, ctx.Err(), st.Done, st.Units)
		case <-time.After(poll):
		}
	}
}

// Results fetches a done job's results in unit-index order.
func (c *Client) Results(id string) ([]bench.Result, error) {
	var view jobView
	if err := c.get("/jobs/"+id+"?results=1", &view); err != nil {
		return nil, err
	}
	return view.Results, nil
}

// Queue fetches the coordinator's queue snapshot.
func (c *Client) Queue() (QueueStatus, error) {
	var st QueueStatus
	err := c.get("/queue", &st)
	return st, err
}

// --- WorkerAPI over HTTP ---

// RegisterWorker implements WorkerAPI. Registration failures (coordinator
// down) degrade to a zero TTL and empty id; the worker's lease calls will
// keep erroring and retrying until the coordinator is reachable.
func (c *Client) RegisterWorker(name string) (string, time.Duration) {
	var resp registerResponse
	if err := c.post("/fleet/register", registerRequest{Name: name}, &resp); err != nil {
		return "", 0
	}
	return resp.WorkerID, time.Duration(resp.LeaseTTLMillis) * time.Millisecond
}

// Lease implements WorkerAPI.
func (c *Client) Lease(workerID string, max int) ([]Unit, error) {
	var resp leaseResponse
	if err := c.post("/fleet/lease", leaseRequest{WorkerID: workerID, Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Units, nil
}

// Heartbeat implements WorkerAPI.
func (c *Client) Heartbeat(workerID string, unitIDs []string) error {
	return c.post("/fleet/heartbeat", heartbeatRequest{WorkerID: workerID, UnitIDs: unitIDs}, nil)
}

// Complete implements WorkerAPI.
func (c *Client) Complete(workerID, unitID string, res bench.Result, rec perfdb.Record, spans []span.Span) error {
	return c.post("/fleet/complete", completeRequest{
		WorkerID: workerID, UnitID: unitID, Result: res, Record: rec, Spans: spans,
	}, nil)
}

// Fail implements WorkerAPI.
func (c *Client) Fail(workerID, unitID, msg string) error {
	return c.post("/fleet/fail", failRequest{WorkerID: workerID, UnitID: unitID, Error: msg}, nil)
}

// Process exit codes for `wardenfleet -submit`, distinguishing "the job
// ran and failed" from "the request never worked" so scripts can retry
// transport errors but not poisoned sweeps.
const (
	ExitOK        = 0 // job done, results printed
	ExitJobFailed = 1 // job settled with poisoned units
	ExitUsage     = 2 // the coordinator rejected the request (4xx: bad spec, unknown job)
	ExitTransport = 3 // the coordinator was unreachable or replied 5xx
)

// SubmitExitCode maps a submit flow's terminal (status, error) pair onto
// the exit codes above. err wins over st: any 4xx apiError is a usage
// error, any other error (5xx, connection refused, timeouts) a transport
// error.
func SubmitExitCode(st JobStatus, err error) int {
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.Status >= 400 && ae.Status < 500 {
			return ExitUsage
		}
		return ExitTransport
	}
	if st.State == "done" {
		return ExitOK
	}
	return ExitJobFailed
}
