package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"warden/internal/bench"
	"warden/internal/perfdb"
)

// Client speaks the coordinator's HTTP API: the submit/poll side used by
// `wardenfleet -submit`, and the lease protocol (it implements WorkerAPI)
// used by `wardenfleet -worker`.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:9090".
	Base string
	// HTTP overrides the transport; nil uses a client with sane timeouts
	// for a localhost control plane.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// apiError is a non-2xx response: status code plus the server's message.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("fleet: coordinator replied %d: %s", e.Status, e.Msg)
}

// post sends a JSON body and decodes a JSON reply into out (skipped when
// out is nil, e.g. for 204 endpoints).
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fleet: encode request: %w", err)
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return decodeReply(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return decodeReply(resp, out)
}

func decodeReply(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: decode reply: %w", err)
	}
	return nil
}

// Submit posts a sweep spec and returns the accepted job's status.
func (c *Client) Submit(spec SweepSpec) (JobStatus, error) {
	var st JobStatus
	err := c.post("/jobs", spec, &st)
	return st, err
}

// Job fetches a job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	var st JobStatus
	err := c.get("/jobs/"+id, &st)
	return st, err
}

// Wait polls a job until it settles (done or failed) or ctx expires,
// returning the final status. A failed job is returned with a nil error —
// the caller inspects State and Errors.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("fleet: wait for %s: %w (%d/%d done)", id, ctx.Err(), st.Done, st.Units)
		case <-time.After(poll):
		}
	}
}

// Results fetches a done job's results in unit-index order.
func (c *Client) Results(id string) ([]bench.Result, error) {
	var view jobView
	if err := c.get("/jobs/"+id+"?results=1", &view); err != nil {
		return nil, err
	}
	return view.Results, nil
}

// Queue fetches the coordinator's queue snapshot.
func (c *Client) Queue() (QueueStatus, error) {
	var st QueueStatus
	err := c.get("/queue", &st)
	return st, err
}

// --- WorkerAPI over HTTP ---

// RegisterWorker implements WorkerAPI. Registration failures (coordinator
// down) degrade to a zero TTL and empty id; the worker's lease calls will
// keep erroring and retrying until the coordinator is reachable.
func (c *Client) RegisterWorker(name string) (string, time.Duration) {
	var resp registerResponse
	if err := c.post("/fleet/register", registerRequest{Name: name}, &resp); err != nil {
		return "", 0
	}
	return resp.WorkerID, time.Duration(resp.LeaseTTLMillis) * time.Millisecond
}

// Lease implements WorkerAPI.
func (c *Client) Lease(workerID string, max int) ([]Unit, error) {
	var resp leaseResponse
	if err := c.post("/fleet/lease", leaseRequest{WorkerID: workerID, Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Units, nil
}

// Heartbeat implements WorkerAPI.
func (c *Client) Heartbeat(workerID string, unitIDs []string) error {
	return c.post("/fleet/heartbeat", heartbeatRequest{WorkerID: workerID, UnitIDs: unitIDs}, nil)
}

// Complete implements WorkerAPI.
func (c *Client) Complete(workerID, unitID string, res bench.Result, rec perfdb.Record) error {
	return c.post("/fleet/complete", completeRequest{
		WorkerID: workerID, UnitID: unitID, Result: res, Record: rec,
	}, nil)
}

// Fail implements WorkerAPI.
func (c *Client) Fail(workerID, unitID, msg string) error {
	return c.post("/fleet/fail", failRequest{WorkerID: workerID, UnitID: unitID, Error: msg}, nil)
}
