package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"time"

	"warden/internal/attrib"
	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/engine"
	"warden/internal/machine"
	"warden/internal/perfdb"
	"warden/internal/span"
)

// Worker executes leased units against a coordinator: register, then loop
// lease → simulate (bench.RunOneTracedOn) → report, heartbeating while a
// simulation runs so long units outlive the lease TTL. A worker is
// stateless — killing one mid-unit loses nothing but the lease, which the
// coordinator reaps and requeues.
type Worker struct {
	// Coordinator speaks the lease protocol; either a Client (HTTP) or a
	// *Coordinator directly (in-process workers, used by tests).
	Coordinator WorkerAPI
	// Name labels the worker in metrics and perfdb records; defaulted by
	// the coordinator at registration when empty.
	Name string
	// PollInterval is how long to idle when no unit is eligible (the queue
	// may be empty or entirely in backoff). Default 200ms.
	PollInterval time.Duration
	// MaxUnits stops the worker after executing this many units; 0 means
	// run until ctx is cancelled. Tests use 1-unit workers for
	// deterministic interleavings.
	MaxUnits int
	// FailBeforeReport, if set, is consulted after a unit is simulated but
	// before its completion is reported; returning true makes the worker
	// drop the result and stop, simulating a crash mid-unit. Test hook for
	// the lease-expiry path.
	FailBeforeReport func(Unit) bool
	// Attrib attaches a cycle-attribution ledger (internal/attrib) to every
	// simulation and ships its summary back in the unit's perfdb record
	// (AttribTopKind/AttribTopShare). The ledger is pure observation —
	// results stay byte-identical — but it must reconcile exactly: a
	// nonzero residue fails the unit rather than reporting unsound
	// attribution.
	Attrib bool
	// Log, if set, receives lifecycle records.
	Log *slog.Logger
	// Clock and SpanIDs override the span timestamp and id sources for
	// the worker's trace collection (tests inject a fake clock and a
	// counter). Defaults: time.Now and math/rand.
	Clock   func() time.Time
	SpanIDs func() uint64

	workerID string
	leaseTTL time.Duration
	executed int
}

// WorkerAPI is the coordinator surface a worker consumes. *Coordinator
// implements it natively; Client implements it over HTTP.
type WorkerAPI interface {
	RegisterWorker(name string) (id string, leaseTTL time.Duration)
	Lease(workerID string, max int) ([]Unit, error)
	Heartbeat(workerID string, unitIDs []string) error
	Complete(workerID, unitID string, res bench.Result, rec perfdb.Record, spans []span.Span) error
	Fail(workerID, unitID, msg string) error
}

func (w *Worker) logf(msg string, args ...any) {
	if w.Log != nil {
		w.Log.Info(msg, args...)
	}
}

// Run is the worker loop. It returns nil when ctx is cancelled or MaxUnits
// is reached, and an error only on protocol-level failures that survive
// re-registration.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	w.workerID, w.leaseTTL = w.Coordinator.RegisterWorker(w.Name)
	w.logf("registered", "worker", w.workerID, "lease_ttl", w.leaseTTL)
	for {
		if ctx.Err() != nil {
			return nil
		}
		if w.MaxUnits > 0 && w.executed >= w.MaxUnits {
			return nil
		}
		units, err := w.Coordinator.Lease(w.workerID, 1)
		if err != nil {
			// A 409/unknown-worker means the coordinator restarted and lost
			// our registration: re-register and retry.
			w.workerID, w.leaseTTL = w.Coordinator.RegisterWorker(w.Name)
			w.logf("re-registered", "worker", w.workerID, "after", err)
			continue
		}
		if len(units) == 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		for _, u := range units {
			stop, err := w.executeOne(ctx, u)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
	}
}

// executeOne simulates one leased unit under a heartbeat and reports the
// outcome. The returned stop flag ends the worker loop (crash hook or
// MaxUnits).
func (w *Worker) executeOne(ctx context.Context, u Unit) (stop bool, err error) {
	// Heartbeat at a third of the TTL while the simulation runs, so units
	// longer than one TTL keep their lease. Simulations are host-bound and
	// uninterruptible; the heartbeat goroutine is host-side only and
	// cannot perturb simulated state.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := w.leaseTTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := w.Coordinator.Heartbeat(w.workerID, []string{u.ID}); err != nil {
					w.logf("heartbeat failed", "unit", u.ID, "err", err)
				}
			}
		}
	}()
	defer func() { stopHB(); <-hbDone }()

	cfg, proto, entry, opts, emode, rerr := u.Resolve()
	if rerr != nil {
		w.logf("unit unresolvable", "unit", u.ID, "err", rerr)
		return false, w.Coordinator.Fail(w.workerID, u.ID, rerr.Error())
	}
	w.logf("executing", "unit", u.ID, "name", u.Name())

	// Continue the coordinator's trace when the lease carried a sampled
	// context: an "execute" span on this worker's track, with one child
	// span per PDES epoch phase. Unsampled (or absent/malformed)
	// traceparents collect nothing, and the epoch hook stays nil — the
	// zero-cost path, so an untraced fleet run is byte-identical to a
	// traced one (results never depend on collection either way).
	sctx := span.Parse(u.Traceparent)
	var col *span.Collector
	var exec *span.Active
	var hook func(engine.EpochEvent)
	var epochsDropped int
	if sctx.Sampled {
		col = span.NewCollector(span.Options{Clock: w.Clock, IDs: w.SpanIDs})
		exec = col.StartChild(sctx, "execute", w.workerID)
		exec.SetAttr("unit", u.ID)
		exec.SetAttr("config", u.Name())
		// The hook fires on the engine's scheduler goroutine, strictly
		// alternating Begin/End per phase, so one open slot suffices. Epoch
		// spans are capped: a long simulation has millions of epochs, and an
		// unbounded trace would dwarf the sweep. Dropped spans are counted
		// on the execute span, never silently.
		var open *span.Active
		var kept int
		const maxEpochSpans = 1024
		hook = func(ev engine.EpochEvent) {
			if ev.Begin {
				if kept >= maxEpochSpans {
					epochsDropped++
					return
				}
				kept++
				open = exec.StartChild(fmt.Sprintf("pdes-phase%d", ev.Phase))
				open.SetAttr("epoch", strconv.Itoa(ev.Epoch))
				if ev.Phase == 1 {
					open.SetAttr("threads", strconv.Itoa(ev.Threads))
				}
				return
			}
			if open != nil {
				open.End()
				open = nil
			}
		}
	}
	endExec := func(outcome string) {
		if epochsDropped > 0 {
			exec.SetAttr("epochs_truncated", strconv.Itoa(epochsDropped))
		}
		exec.SetAttr("outcome", outcome)
		exec.End()
	}

	start := time.Now()
	var probe engine.Probe
	var led *attrib.Ledger
	var attach func(*machine.Machine) core.Sink
	if w.Attrib {
		led = attrib.New(attrib.Config{})
		attach = func(*machine.Machine) core.Sink { return led }
	}
	res, runErr := bench.RunOneInstrumentedOn(emode, cfg, proto, entry, u.Size, opts, attach, &probe, hook)
	wall := time.Since(start)
	if runErr == nil && led != nil {
		// The reconciliation invariant: the ledger must sum exactly to the
		// measured cycles on every thread. A residue is a unit failure.
		runErr = led.Reconcile(res.Cycles)
	}
	if runErr != nil {
		endExec("failed")
		w.logf("unit failed", "unit", u.ID, "err", runErr)
		return false, w.Coordinator.Fail(w.workerID, u.ID, runErr.Error())
	}
	exec.SetAttr("cycles", fmt.Sprint(res.Cycles))
	endExec("ok")
	if w.FailBeforeReport != nil && w.FailBeforeReport(u) {
		w.logf("dropping result (crash hook)", "unit", u.ID)
		return true, nil
	}
	rec := perfdb.Record{
		Schema:          perfdb.SchemaVersion,
		RunID:           jobOf(u.ID),
		Time:            start.UTC().Format(time.RFC3339),
		Fingerprint:     u.Fingerprint,
		Step:            u.Name(),
		Engine:          u.Engine,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		SimulatedCycles: res.Cycles,
		SimulatedRuns:   1,
		WallSeconds:     wall.Seconds(),
		CyclesPerSecond: float64(res.Cycles) / wall.Seconds(),
		Worker:          w.Name,
	}
	if led != nil {
		rec.AttribTopKind, rec.AttribTopShare = led.TopKind()
	}
	if err := w.Coordinator.Complete(w.workerID, u.ID, res, rec, col.Spans()); err != nil {
		return false, fmt.Errorf("fleet: report unit %s: %w", u.ID, err)
	}
	w.executed++
	w.logf("unit complete", "unit", u.ID, "cycles", res.Cycles, "wall", wall)
	return w.MaxUnits > 0 && w.executed >= w.MaxUnits, nil
}

// jobOf strips the unit index from "<job>/<index>".
func jobOf(unitID string) string {
	for i := 0; i < len(unitID); i++ {
		if unitID[i] == '/' {
			return unitID[:i]
		}
	}
	return unitID
}
