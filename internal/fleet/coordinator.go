package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"warden/internal/bench"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/span"
)

// Options tunes the coordinator. The zero value selects production
// defaults; tests inject a fake clock and a fixed jitter source.
type Options struct {
	// LeaseTTL is how long a worker holds a unit before the coordinator
	// considers the lease dead and requeues the unit. Workers heartbeat at
	// a fraction of this. Default 30s.
	LeaseTTL time.Duration
	// MaxAttempts bounds retries: a unit whose execution has failed (or
	// whose lease has expired) this many times is quarantined as poison
	// instead of requeued. Default 4.
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt n waits
	// BackoffBase·2^(n-1), capped at BackoffMax, stretched by up to
	// JitterFrac. Defaults 250ms / 30s / 0.2.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	JitterFrac  float64
	// Clock overrides the wall clock (tests drive lease expiry and backoff
	// schedules without sleeping). Default time.Now.
	Clock func() time.Time
	// Rand overrides the jitter source with a func returning [0,1).
	// Default math/rand.
	Rand func() float64
	// SpanIDs overrides the trace/span id source for the coordinator's
	// spans (tests inject a counter for byte-stable ids). Default
	// math/rand.
	SpanIDs func() uint64
	// CachePath persists the content-addressed result cache as JSONL;
	// empty keeps it in memory.
	CachePath string
	// HistoryPath, if set, appends every worker-produced perfdb record to
	// this JSONL history file (the same store wardenbench -history writes
	// and wardendiff reads).
	HistoryPath string
	// Registry, if set, registers one run per unit execution attempt so
	// the coordinator's /runs mirrors the single-process plane.
	Registry *obs.Registry
	// Log, if set, receives lifecycle records.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.JitterFrac < 0 {
		o.JitterFrac = 0
	} else if o.JitterFrac == 0 {
		o.JitterFrac = 0.2
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	if o.SpanIDs == nil {
		o.SpanIDs = rand.Uint64
	}
	return o
}

// unitState is the lifecycle of one work unit.
type unitState int

const (
	// unitPending: waiting for a lease — either eligible now or waiting
	// out a retry backoff (readyAt in the future).
	unitPending unitState = iota
	// unitFollowing: an identical unit (same fingerprint) is already
	// pending or leased; this one waits for its result instead of
	// executing a duplicate simulation — the fleet-wide analogue of the
	// runner memo's single-flight.
	unitFollowing
	// unitLeased: held by a worker under a live lease.
	unitLeased
	// unitDone: result available.
	unitDone
	// unitPoisoned: quarantined after MaxAttempts failures; never
	// rescheduled.
	unitPoisoned
)

// unit is the coordinator's mutable state for one work unit.
type unit struct {
	Unit
	jobID    string
	state    unitState
	attempts int       // failed attempts (explicit failures + lease expiries)
	readyAt  time.Time // earliest next lease (backoff gate)
	worker   string    // holder while leased
	expiry   time.Time // lease deadline while leased
	lastErr  string
	cached   bool // filled from the result cache at submit time
	followed bool // completed by following an identical in-flight unit
	result   json.RawMessage
	run      *obs.Run // current execution attempt's registry run

	// uspan covers the unit from submit to settlement; attempt covers one
	// lease (its traceparent is what the worker receives and continues).
	uspan   *span.Active
	attempt *span.Active
}

// Job is one submitted sweep.
type job struct {
	id        string
	spec      SweepSpec
	units     []*unit
	submitted time.Time
	done      chan struct{} // closed when every unit is done or poisoned

	// span is the job's span on the coordinator track (a child of the
	// submitter's context when the POST carried a valid traceparent, a
	// fresh root otherwise); spans collects the job's whole trace,
	// including worker-reported spans; events is the job's SSE feed,
	// closed at settlement so subscribers read EOF.
	span   *span.Active
	spans  *span.Collector
	events *obs.EventLog
}

// workerState tracks a registered worker.
type workerState struct {
	id         string
	name       string
	joined     time.Time
	lastSeen   time.Time
	completed  uint64
	failed     uint64
	heartbeats uint64 // heartbeat requests received
	expiries   uint64 // leases reaped while this worker held them
}

// Coordinator shards jobs into units, leases them to workers, retries
// failures with backoff, quarantines poison units, and memoizes results in
// a content-addressed cache. All methods are safe for concurrent use; the
// HTTP layer in http.go is a thin JSON veneer over them, so tests drive
// the state machine directly with an injected clock.
type Coordinator struct {
	mu      sync.Mutex
	opts    Options
	cache   *Cache
	jobs    map[string]*job
	jobSeq  int
	units   map[string]*unit // by unit ID
	pending []*unit          // pending + following admission order (stable scheduling)
	workers map[string]*workerState
	wseq    int

	// Monotonic counters for /metrics and QueueStatus.
	leasesGranted uint64
	leasesExpired uint64
	retries       uint64
	unitsExecuted uint64 // completions accepted from workers
	unitsFailed   uint64 // explicit worker-reported failures
	coalesced     uint64 // units completed by following an identical in-flight unit

	// Span-duration histograms by span name, fed by every job's OnEnd
	// hook — the warden_fleet_span_seconds_* families on /metrics.
	histMu sync.Mutex
	hists  map[string]*obs.Histogram
}

// NewCoordinator builds a coordinator, loading the persisted cache when
// opts.CachePath names one.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	cache, err := OpenCache(opts.CachePath)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		opts:    opts,
		cache:   cache,
		jobs:    make(map[string]*job),
		units:   make(map[string]*unit),
		workers: make(map[string]*workerState),
		hists:   make(map[string]*obs.Histogram),
	}, nil
}

// histFor returns the duration histogram for a span name, creating it on
// first use.
func (c *Coordinator) histFor(name string) *obs.Histogram {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	h := c.hists[name]
	if h == nil {
		h = obs.NewHistogram()
		c.hists[name] = h
	}
	return h
}

// jobEvent is the payload of "job" SSE events: published once at submit
// and once at settlement.
type jobEvent struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Units int    `json:"units"`
}

// unitEvent is the payload of "unit" SSE events, one per unit state
// transition: leased, done, requeued, or poisoned.
type unitEvent struct {
	Unit    string `json:"unit"`
	State   string `json:"state"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Outcome qualifies a done unit: executed, cached, or coalesced.
	Outcome string `json:"outcome,omitempty"`
	// Why carries the failure reason on requeued/poisoned transitions.
	Why string `json:"why,omitempty"`
}

// eventLocked publishes one SSE event onto a job's log; callers hold c.mu.
func (c *Coordinator) eventLocked(jobID, typ string, v any) {
	if j := c.jobs[jobID]; j != nil {
		j.events.Publish(typ, v)
	}
}

// Cache exposes the coordinator's result cache (metrics, tests).
func (c *Coordinator) Cache() *Cache { return c.cache }

// logf emits a lifecycle record when a logger is configured.
func (c *Coordinator) logf(msg string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log.Info(msg, args...)
	}
}

// Submit resolves a spec into units, serves what the cache already knows,
// queues the rest, and returns the job's status snapshot. Duplicate
// fingerprints already pending or leased (from a concurrently running job)
// are attached as followers rather than queued twice.
func (c *Coordinator) Submit(spec SweepSpec) (JobStatus, error) {
	return c.SubmitTraced(spec, span.Context{})
}

// SubmitTraced is Submit under a propagated trace context: the job span
// joins the submitter's trace when parent is valid (the POST /jobs
// traceparent header), and roots a fresh trace otherwise — a malformed
// header never rejects a submission. The parent's sampled flag rides the
// per-attempt traceparents handed to workers, gating their detailed
// collection.
func (c *Coordinator) SubmitTraced(spec SweepSpec, parent span.Context) (JobStatus, error) {
	resolved, err := ResolveSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)

	c.jobSeq++
	j := &job{
		id:        fmt.Sprintf("J%d", c.jobSeq),
		spec:      spec,
		submitted: now,
		done:      make(chan struct{}),
		events:    obs.NewEventLog(),
	}
	// Every finished span in this job's trace feeds the coordinator-wide
	// duration histograms and (for fleet-level spans; the per-epoch PDES
	// spans would drown the feed) the job's SSE stream.
	events := j.events
	j.spans = span.NewCollector(span.Options{
		Clock: c.opts.Clock,
		IDs:   c.opts.SpanIDs,
		OnEnd: func(s span.Span) {
			c.histFor(s.Name).ObserveDuration(s.Duration())
			if !strings.HasPrefix(s.Name, "pdes-") {
				events.Publish("span", s)
			}
		},
	})
	j.span = j.spans.StartChild(parent, "job", "coordinator")
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("machine", resolved[0].Machine)
	j.events.Publish("job", jobEvent{Job: j.id, State: "running", Units: len(resolved)})
	for i := range resolved {
		u := &unit{Unit: resolved[i], jobID: j.id}
		u.ID = fmt.Sprintf("%s/%d", j.id, u.Index)
		u.uspan = j.span.StartChild("unit")
		u.uspan.SetAttr("unit", u.ID)
		u.uspan.SetAttr("config", u.Name())
		if blob, ok := c.cache.Get(u.Fingerprint); ok {
			u.state = unitDone
			u.cached = true
			u.result = blob
			u.uspan.SetAttr("outcome", "cached")
			u.uspan.End()
			u.uspan = nil
			j.events.Publish("unit", unitEvent{Unit: u.ID, State: "done", Outcome: "cached"})
		} else if leader := c.inflightLocked(u.Fingerprint); leader != nil {
			u.state = unitFollowing
			c.pending = append(c.pending, u)
		} else {
			u.state = unitPending
			u.readyAt = now
			c.pending = append(c.pending, u)
		}
		j.units = append(j.units, u)
		c.units[u.ID] = u
	}
	c.jobs[j.id] = j
	c.maybeFinishJobLocked(j)
	c.logf("job submitted", "job", j.id, "units", len(j.units),
		"cached", countCached(j.units), "machine", resolved[0].Machine)
	return c.jobStatusLocked(j), nil
}

// JobEvents returns a job's SSE event log (GET /jobs/{id}/events).
func (c *Coordinator) JobEvents(id string) (*obs.EventLog, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return j.events, true
}

// JobSpans returns the finished spans of a job's trace so far (GET
// /jobs/{id}/trace).
func (c *Coordinator) JobSpans(id string) ([]span.Span, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.spans.Spans(), true
}

func countCached(units []*unit) int {
	n := 0
	for _, u := range units {
		if u.cached {
			n++
		}
	}
	return n
}

// inflightLocked returns a pending/leased unit with the given fingerprint,
// or nil. Followers don't count — they are themselves waiting on a leader.
func (c *Coordinator) inflightLocked(fp string) *unit {
	for _, u := range c.pending {
		if u.Fingerprint == fp && u.state == unitPending {
			return u
		}
	}
	for _, u := range c.units {
		if u.Fingerprint == fp && u.state == unitLeased {
			return u
		}
	}
	return nil
}

// RegisterWorker admits a worker and returns its id plus the lease TTL it
// must heartbeat within.
func (c *Coordinator) RegisterWorker(name string) (id string, leaseTTL time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.wseq++
	if name == "" {
		name = fmt.Sprintf("worker-%d", c.wseq)
	}
	w := &workerState{
		id:       fmt.Sprintf("W%d-%s", c.wseq, name),
		name:     name,
		joined:   now,
		lastSeen: now,
	}
	c.workers[w.id] = w
	c.logf("worker registered", "worker", w.id)
	return w.id, c.opts.LeaseTTL
}

var errUnknownWorker = errors.New("fleet: unknown worker id (coordinator restarted? re-register)")

// Lease hands up to max eligible units to a worker. Eligibility is
// readyAt <= now; among eligible units the admission order decides, so
// scheduling is deterministic given a clock. An empty slice means nothing
// is currently eligible (there may still be units waiting out backoff).
func (c *Coordinator) Lease(workerID string, max int) ([]Unit, error) {
	if max <= 0 {
		max = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return nil, errUnknownWorker
	}
	w.lastSeen = now

	var out []Unit
	for _, u := range c.pending {
		if len(out) >= max {
			break
		}
		if u.state != unitPending || u.readyAt.After(now) {
			continue
		}
		u.state = unitLeased
		u.worker = workerID
		u.expiry = now.Add(c.opts.LeaseTTL)
		c.leasesGranted++
		// One attempt span per lease; its context is the traceparent the
		// worker continues under (the sampled flag decides whether the
		// worker collects execute/epoch spans).
		u.attempt = u.uspan.StartChild("attempt")
		u.attempt.SetAttr("attempt", fmt.Sprint(u.attempts+1))
		u.attempt.SetAttr("worker", w.name)
		u.Traceparent = u.attempt.Context().Traceparent()
		c.eventLocked(u.jobID, "unit", unitEvent{
			Unit: u.ID, State: "leased", Worker: w.name, Attempt: u.attempts + 1,
		})
		if c.opts.Registry != nil {
			u.run = c.opts.Registry.NewRun("unit", u.Name(), map[string]string{
				"job": u.jobID, "unit": u.ID, "worker": w.name,
				"benchmark": u.Benchmark, "protocol": u.Protocol,
				"machine": u.Machine, "attempt": fmt.Sprint(u.attempts + 1),
			})
			u.run.Start()
		}
		out = append(out, u.Unit)
	}
	c.compactPendingLocked()
	return out, nil
}

// Heartbeat marks the worker live and renews its leases on the named
// units. Renewal is idempotent; units the worker no longer holds (expired
// and re-leased elsewhere) are skipped silently — the worker finds out
// when it reports completion.
func (c *Coordinator) Heartbeat(workerID string, unitIDs []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return errUnknownWorker
	}
	w.lastSeen = now
	w.heartbeats++
	for _, id := range unitIDs {
		if u, ok := c.units[id]; ok && u.state == unitLeased && u.worker == workerID {
			u.expiry = now.Add(c.opts.LeaseTTL)
		}
	}
	return nil
}

// Complete accepts a unit's result from a worker, fills the cache, feeds
// every follower of the same fingerprint, and appends the worker's perfdb
// record to the history file when one is configured.
//
// A stale completion — the lease expired and the unit was re-leased or
// even finished elsewhere — is accepted gracefully: results are
// deterministic, so the blob is as good as any other execution's. An
// already-done unit makes it a no-op, and the duplicate report's spans are
// dropped — the first accepted attempt's spans stand.
func (c *Coordinator) Complete(workerID, unitID string, res bench.Result, rec perfdb.Record, spans []span.Span) error {
	blob, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("fleet: encode result: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
		w.completed++
	}
	u, ok := c.units[unitID]
	if !ok {
		return fmt.Errorf("fleet: unknown unit %q", unitID)
	}
	if u.state == unitDone || u.state == unitPoisoned {
		return nil
	}
	if j := c.jobs[u.jobID]; j != nil {
		j.spans.Add(spans)
	}
	c.unitsExecuted++
	c.finishUnitLocked(u, blob, res.Cycles)
	if c.opts.HistoryPath != "" {
		if err := perfdb.Append(c.opts.HistoryPath, []perfdb.Record{rec}); err != nil {
			c.logf("history append failed", "err", err)
		}
	}
	c.logf("unit done", "unit", unitID, "worker", workerID, "cycles", res.Cycles)
	return nil
}

// finishUnitLocked marks a unit done with blob, caches it, and completes
// every follower (and any pending twin) sharing its fingerprint.
func (c *Coordinator) finishUnitLocked(u *unit, blob json.RawMessage, cycles uint64) {
	if err := c.cache.Put(u.Fingerprint, blob); err != nil {
		c.logf("cache append failed", "err", err)
	}
	complete := func(v *unit, follower bool) {
		v.state = unitDone
		v.result = append(json.RawMessage(nil), blob...)
		if v.run != nil {
			v.run.Finish(cycles, nil)
			v.run = nil
		}
		outcome := "executed"
		if follower {
			v.followed = true
			c.coalesced++
			outcome = "coalesced"
		}
		if v.attempt != nil {
			v.attempt.SetAttr("outcome", "ok")
			v.attempt.End()
			v.attempt = nil
		}
		if v.uspan != nil {
			v.uspan.SetAttr("outcome", outcome)
			v.uspan.End()
			v.uspan = nil
		}
		c.eventLocked(v.jobID, "unit", unitEvent{Unit: v.ID, State: "done", Worker: v.worker, Outcome: outcome})
		c.maybeFinishJobLocked(c.jobs[v.jobID])
	}
	complete(u, false)
	for _, v := range c.pending {
		if v.Fingerprint == u.Fingerprint && (v.state == unitFollowing || v.state == unitPending) {
			complete(v, true)
		}
	}
	c.compactPendingLocked()
}

// Fail records a worker-reported execution failure and requeues or
// poisons the unit.
func (c *Coordinator) Fail(workerID, unitID, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
		w.failed++
	}
	u, ok := c.units[unitID]
	if !ok {
		return fmt.Errorf("fleet: unknown unit %q", unitID)
	}
	if u.state != unitLeased || u.worker != workerID {
		// Stale failure report for a lease we already expired (and maybe
		// completed elsewhere): the authoritative attempt count was already
		// charged by the reaper.
		return nil
	}
	c.unitsFailed++
	c.requeueLocked(u, now, "worker "+workerID+": "+msg)
	return nil
}

// reapLocked requeues (or poisons) every unit whose lease has expired. It
// runs at the top of every mutating call, so lease expiry needs no
// background goroutine and is exact under an injected clock.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, u := range c.units {
		if u.state == unitLeased && u.expiry.Before(now) {
			c.leasesExpired++
			if w, ok := c.workers[u.worker]; ok {
				w.expiries++
			}
			c.requeueLocked(u, now, "lease expired on worker "+u.worker)
		}
	}
}

// requeueLocked charges a failed attempt to a unit and either schedules
// its retry (exponential backoff + jitter) or quarantines it as poison.
// Callers hold the lock.
func (c *Coordinator) requeueLocked(u *unit, now time.Time, why string) {
	if u.run != nil {
		u.run.Finish(0, errors.New(why))
		u.run = nil
	}
	if u.attempt != nil {
		u.attempt.SetAttr("outcome", "failed")
		u.attempt.SetAttr("why", why)
		u.attempt.End()
		u.attempt = nil
	}
	u.attempts++
	u.worker = ""
	u.lastErr = why
	if u.attempts >= c.opts.MaxAttempts {
		u.state = unitPoisoned
		c.poisonSpanLocked(u, why)
		c.logf("unit poisoned", "unit", u.ID, "attempts", u.attempts, "last", why)
		// A poison leader takes its followers down with it: they asked for
		// the same simulation, which has now failed MaxAttempts times.
		for _, v := range c.pending {
			if v.state == unitFollowing && v.Fingerprint == u.Fingerprint {
				v.state = unitPoisoned
				v.attempts = u.attempts
				v.lastErr = why
				c.poisonSpanLocked(v, why)
				c.maybeFinishJobLocked(c.jobs[v.jobID])
			}
		}
		c.compactPendingLocked()
		c.maybeFinishJobLocked(c.jobs[u.jobID])
		return
	}
	c.retries++
	u.state = unitPending
	u.readyAt = now.Add(c.backoff(u.attempts))
	c.eventLocked(u.jobID, "unit", unitEvent{Unit: u.ID, State: "requeued", Attempt: u.attempts, Why: why})
	// The unit left the pending list when it was leased; requeue it at the
	// back so retries don't starve first-time units.
	c.pending = append(c.pending, u)
	c.logf("unit requeued", "unit", u.ID, "attempt", u.attempts, "ready_in", u.readyAt.Sub(now), "why", why)
}

// backoff returns the delay before retry attempt n (n >= 1):
// base·2^(n-1) capped at max, stretched by up to JitterFrac so synchronized
// retry storms decorrelate.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.opts.BackoffBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= c.opts.BackoffMax {
			d = c.opts.BackoffMax
			break
		}
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	return d + time.Duration(float64(d)*c.opts.JitterFrac*c.opts.Rand())
}

// compactPendingLocked drops settled units from the pending list, keeping
// admission order for the rest.
func (c *Coordinator) compactPendingLocked() {
	kept := c.pending[:0]
	for _, u := range c.pending {
		if u.state == unitPending || u.state == unitFollowing {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(c.pending); i++ {
		c.pending[i] = nil
	}
	c.pending = kept
}

// poisonSpanLocked settles a poisoned unit's span and publishes the
// transition; callers hold the lock.
func (c *Coordinator) poisonSpanLocked(u *unit, why string) {
	if u.uspan != nil {
		u.uspan.SetAttr("outcome", "poisoned")
		u.uspan.SetAttr("why", why)
		u.uspan.End()
		u.uspan = nil
	}
	c.eventLocked(u.jobID, "unit", unitEvent{Unit: u.ID, State: "poisoned", Attempt: u.attempts, Why: why})
}

// maybeFinishJobLocked closes the job's done channel once no unit can make
// further progress, ends the job span, publishes the terminal "job" event,
// and closes the SSE log so every subscriber's stream ends.
func (c *Coordinator) maybeFinishJobLocked(j *job) {
	if j == nil {
		return
	}
	for _, u := range j.units {
		if u.state != unitDone && u.state != unitPoisoned {
			return
		}
	}
	select {
	case <-j.done:
	default:
		close(j.done)
		st := c.jobStatusLocked(j)
		if j.span != nil {
			j.span.SetAttr("state", st.State)
			j.span.End()
		}
		j.events.Publish("job", jobEvent{Job: j.id, State: st.State, Done: st.Done, Units: st.Units})
		j.events.Close()
	}
}

// JobStatus is the JSON view of a job served by POST /jobs and
// GET /jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running, done, or failed (poisoned units)
	Units int    `json:"units"`
	Done  int    `json:"done"`
	// CacheHits counts units served straight from the content-addressed
	// cache at submit time; Executed counts worker completions for this
	// job; Coalesced counts units fed by an identical in-flight unit. A
	// fully-memoized resubmission has CacheHits == Units and Executed == 0.
	CacheHits int `json:"cache_hits"`
	Executed  int `json:"executed"`
	Coalesced int `json:"coalesced"`
	Leased    int `json:"leased"`
	Pending   int `json:"pending"`
	Poisoned  int `json:"poisoned"`
	// Retries sums the failed attempts charged to this job's units so far.
	Retries int `json:"retries"`
	// Errors carries each poisoned unit's last failure, "unit: why".
	Errors []string `json:"errors,omitempty"`
}

func (c *Coordinator) jobStatusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, Units: len(j.units)}
	for _, u := range j.units {
		switch u.state {
		case unitDone:
			st.Done++
			switch {
			case u.cached:
				st.CacheHits++
			case u.followed:
				st.Coalesced++
			default:
				st.Executed++
			}
		case unitLeased:
			st.Leased++
		case unitPending, unitFollowing:
			st.Pending++
		case unitPoisoned:
			st.Poisoned++
			st.Errors = append(st.Errors, u.ID+": "+u.lastErr)
		}
		st.Retries += u.attempts
	}
	switch {
	case st.Poisoned > 0 && st.Done+st.Poisoned == st.Units:
		st.State = "failed"
	case st.Done == st.Units:
		st.State = "done"
	default:
		st.State = "running"
	}
	return st
}

// Job returns a job's status snapshot.
func (c *Coordinator) Job(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opts.Clock())
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.jobStatusLocked(j), true
}

// Results returns a finished job's results in unit-index order. It errors
// on an unknown job, an unfinished job, or a failed one — callers should
// poll Job (or use the client's Wait) first.
func (c *Coordinator) Results(id string) ([]bench.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown job %q", id)
	}
	st := c.jobStatusLocked(j)
	switch st.State {
	case "running":
		return nil, fmt.Errorf("fleet: job %s still running (%d/%d done)", id, st.Done, st.Units)
	case "failed":
		return nil, fmt.Errorf("fleet: job %s failed: %d poisoned unit(s): %v", id, st.Poisoned, st.Errors)
	}
	out := make([]bench.Result, len(j.units))
	for _, u := range j.units {
		var res bench.Result
		if err := json.Unmarshal(u.result, &res); err != nil {
			return nil, fmt.Errorf("fleet: job %s unit %s: decode cached result: %w", id, u.ID, err)
		}
		out[u.Index] = res
	}
	return out, nil
}

// WaitDone returns a channel closed when the job settles (all units done
// or poisoned); a nil channel for unknown jobs.
func (c *Coordinator) WaitDone(id string) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[id]; ok {
		return j.done
	}
	return nil
}

// WorkerStatus is one worker's row in QueueStatus.
type WorkerStatus struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Heartbeats uint64 `json:"heartbeats"`
	Expiries   uint64 `json:"expiries"`
	LastSeen   string `json:"last_seen"`
}

// QueueStatus is the GET /queue snapshot: queue depth, lease and retry
// counters, cache effectiveness, and per-worker throughput.
type QueueStatus struct {
	// Depth counts units eligible for a lease right now; Backoff counts
	// pending units still waiting out a retry delay; Following counts
	// units waiting on an identical in-flight unit.
	Depth     int `json:"depth"`
	Backoff   int `json:"backoff"`
	Following int `json:"following"`
	Leased    int `json:"leased"`
	Done      int `json:"done"`
	Poisoned  int `json:"poisoned"`
	Jobs      int `json:"jobs"`

	LeasesGranted uint64 `json:"leases_granted"`
	LeasesExpired uint64 `json:"leases_expired"`
	Retries       uint64 `json:"retries"`
	Executed      uint64 `json:"executed"`
	Failed        uint64 `json:"failed"`
	Coalesced     uint64 `json:"coalesced"`

	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`

	Workers []WorkerStatus `json:"workers"`
}

// Queue returns the coordinator-wide queue snapshot.
func (c *Coordinator) Queue() QueueStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	var st QueueStatus
	st.Jobs = len(c.jobs)
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			if u.readyAt.After(now) {
				st.Backoff++
			} else {
				st.Depth++
			}
		case unitFollowing:
			st.Following++
		case unitLeased:
			st.Leased++
		case unitDone:
			st.Done++
		case unitPoisoned:
			st.Poisoned++
		}
	}
	st.LeasesGranted = c.leasesGranted
	st.LeasesExpired = c.leasesExpired
	st.Retries = c.retries
	st.Executed = c.unitsExecuted
	st.Failed = c.unitsFailed
	st.Coalesced = c.coalesced
	cs := c.cache.Stats()
	st.CacheHits, st.CacheMisses, st.CacheEntries = cs.Hits, cs.Misses, cs.Entries
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Completed: w.completed, Failed: w.failed,
			Heartbeats: w.heartbeats, Expiries: w.expiries,
			LastSeen: w.lastSeen.UTC().Format(time.RFC3339Nano),
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

// MetricFamilies implements obs.Source: the coordinator's /metrics view —
// queue depth, active leases, retry and expiry counters, poison
// quarantine, per-worker throughput, and the result cache through the
// shared obs.CacheFamilies surface.
func (c *Coordinator) MetricFamilies() []obs.Family {
	st := c.Queue()
	perWorker := obs.Family{
		Name: "warden_fleet_worker_units_total",
		Help: "Units completed per worker.",
		Type: "counter",
	}
	for _, w := range st.Workers {
		perWorker.Metrics = append(perWorker.Metrics, obs.Metric{
			Labels: []obs.Label{{Name: "worker", Value: w.Name}},
			Value:  float64(w.Completed),
		})
	}
	fams := []obs.Family{
		obs.Gauge("warden_fleet_queue_depth", "Units eligible for a lease right now.", float64(st.Depth)),
		obs.Gauge("warden_fleet_backoff_units", "Units waiting out a retry backoff.", float64(st.Backoff)),
		obs.Gauge("warden_fleet_following_units", "Units waiting on an identical in-flight unit.", float64(st.Following)),
		obs.Gauge("warden_fleet_active_leases", "Units currently leased to workers.", float64(st.Leased)),
		obs.Gauge("warden_fleet_poisoned_units", "Units quarantined after repeated failures.", float64(st.Poisoned)),
		obs.Gauge("warden_fleet_workers", "Registered workers.", float64(len(st.Workers))),
		obs.Gauge("warden_fleet_jobs", "Jobs submitted to this coordinator.", float64(st.Jobs)),
		obs.Counter("warden_fleet_leases_granted_total", "Leases handed to workers.", float64(st.LeasesGranted)),
		obs.Counter("warden_fleet_leases_expired_total", "Leases reaped after their TTL.", float64(st.LeasesExpired)),
		obs.Counter("warden_fleet_retries_total", "Unit retries scheduled after failures or expiries.", float64(st.Retries)),
		obs.Counter("warden_fleet_units_executed_total", "Unit completions accepted from workers.", float64(st.Executed)),
		obs.Counter("warden_fleet_units_failed_total", "Explicit unit failures reported by workers.", float64(st.Failed)),
		obs.Counter("warden_fleet_units_coalesced_total", "Units completed by following an identical in-flight unit.", float64(st.Coalesced)),
	}
	fams = append(fams, obs.CacheFamilies("warden_fleet_cache", "Fleet result cache", obs.CacheStats{
		Hits: st.CacheHits, Misses: st.CacheMisses, Entries: st.CacheEntries,
	})...)
	if len(perWorker.Metrics) > 0 {
		fams = append(fams, perWorker)
	}
	// Heartbeat and lease-expiry counters are emitted even with zero
	// workers, so scrapers see the families (HELP/TYPE) from the first
	// scrape on.
	heartbeats := obs.Family{
		Name: "warden_fleet_heartbeats_total",
		Help: "Heartbeat requests received per worker.",
		Type: "counter",
	}
	expiries := obs.Family{
		Name: "warden_fleet_lease_expiries_total",
		Help: "Leases reaped after TTL expiry, per holding worker.",
		Type: "counter",
	}
	for _, w := range st.Workers {
		heartbeats.Metrics = append(heartbeats.Metrics, obs.Metric{
			Labels: []obs.Label{{Name: "worker", Value: w.Name}},
			Value:  float64(w.Heartbeats),
		})
		expiries.Metrics = append(expiries.Metrics, obs.Metric{
			Labels: []obs.Label{{Name: "worker", Value: w.Name}},
			Value:  float64(w.Expiries),
		})
	}
	fams = append(fams, heartbeats, expiries)
	// One histogram family per span name seen so far: the span-latency
	// side of the trace (job, unit, attempt, execute, pdes-phase*).
	c.histMu.Lock()
	names := make([]string, 0, len(c.hists))
	for n := range c.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, c.hists[n].Family(
			"warden_fleet_span_seconds_"+obs.SanitizeName(n),
			"Duration of "+n+" spans, in seconds."))
	}
	c.histMu.Unlock()
	return fams
}
