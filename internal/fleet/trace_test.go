package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"warden/internal/bench"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/span"
	"warden/internal/telemetry"
)

// counterIDs is a deterministic span-id source: 1, 2, 3, ...
func counterIDs() func() uint64 {
	var n uint64
	return func() uint64 {
		n++
		return n
	}
}

// spansByName indexes a span slice by name (multiple spans per name keep
// input order).
func spansByName(spans []span.Span) map[string][]span.Span {
	m := make(map[string][]span.Span)
	for _, s := range spans {
		m[s.Name] = append(m[s.Name], s)
	}
	return m
}

// TestCoordinatorSpansExactDurations drives the lease lifecycle on a fake
// clock and asserts the resulting span tree: one job span rooted under the
// submitter's context, a unit span per unit, an attempt span per lease,
// with durations that are exact clock arithmetic — no sleeps anywhere.
func TestCoordinatorSpansExactDurations(t *testing.T) {
	clk := newFakeClock()
	parent := span.NewContext(counterIDs(), true)
	c, err := NewCoordinator(Options{Clock: clk.Now, Rand: func() float64 { return 0 }, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitTraced(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}}, parent)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := c.RegisterWorker("w")
	clk.Advance(2 * time.Second)
	u := leaseOne(t, c, w)
	if got := span.Parse(u.Traceparent); got.TraceID != parent.TraceID || !got.Sampled {
		t.Fatalf("leased traceparent %q does not continue the submitted trace %q", u.Traceparent, parent.TraceID)
	}
	clk.Advance(3 * time.Second)
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 42}, perfdb.Record{}, nil); err != nil {
		t.Fatal(err)
	}

	spans, ok := c.JobSpans(st.ID)
	if !ok {
		t.Fatalf("JobSpans(%s) unknown", st.ID)
	}
	by := spansByName(spans)
	for name, wantDur := range map[string]time.Duration{
		"attempt": 3 * time.Second, // lease → complete
		"unit":    5 * time.Second, // submit → complete
		"job":     5 * time.Second, // submit → settle
	} {
		ss := by[name]
		if len(ss) != 1 {
			t.Fatalf("%d %q spans, want 1: %+v", len(ss), name, spans)
		}
		if ss[0].Duration() != wantDur {
			t.Errorf("%s span duration = %v, want %v", name, ss[0].Duration(), wantDur)
		}
		if ss[0].TraceID != parent.TraceID {
			t.Errorf("%s span trace id %q, want submitter's %q", name, ss[0].TraceID, parent.TraceID)
		}
		if ss[0].Track != "coordinator" {
			t.Errorf("%s span track %q, want coordinator", name, ss[0].Track)
		}
	}
	if by["job"][0].Parent != parent.SpanID {
		t.Errorf("job span parent %q, want submitter span %q", by["job"][0].Parent, parent.SpanID)
	}
	if by["attempt"][0].Attrs["worker"] != "w" {
		t.Errorf("attempt span attrs = %v, want worker=w", by["attempt"][0].Attrs)
	}
	if by["unit"][0].Attrs["outcome"] != "executed" {
		t.Errorf("unit span outcome = %q, want executed", by["unit"][0].Attrs["outcome"])
	}
}

// TestInvalidParentRootsFreshTrace pins the never-reject half of the
// propagation contract at the coordinator API: an invalid context still
// submits, and the job roots a fresh (unsampled) trace.
func TestInvalidParentRootsFreshTrace(t *testing.T) {
	clk := newFakeClock()
	c, err := NewCoordinator(Options{Clock: clk.Now, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitTraced(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}}, span.Context{})
	if err != nil {
		t.Fatalf("invalid parent rejected the submission: %v", err)
	}
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	got := span.Parse(u.Traceparent)
	if !got.Valid() {
		t.Fatalf("leased unit carries no valid traceparent: %q", u.Traceparent)
	}
	if got.Sampled {
		t.Fatal("fresh root from an invalid parent must be unsampled")
	}
	if _, ok := c.JobSpans(st.ID); !ok {
		t.Fatal("job has no span collector")
	}
}

// TestDuplicateCompletionReusesFirstSpan: a second completion report for
// an already-done unit is a no-op — its spans are dropped and the span
// set is unchanged, so the first attempt's spans stand.
func TestDuplicateCompletionReusesFirstSpan(t *testing.T) {
	clk := newFakeClock()
	c, err := NewCoordinator(Options{Clock: clk.Now, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitTraced(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}},
		span.NewContext(counterIDs(), true))
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := c.RegisterWorker("w1")
	w2, _ := c.RegisterWorker("w2")
	u := leaseOne(t, c, w1)
	if err := c.Complete(w1, u.ID, bench.Result{Cycles: 1}, perfdb.Record{},
		[]span.Span{{TraceID: "t", SpanID: "a", Name: "execute", Track: "w1"}}); err != nil {
		t.Fatal(err)
	}
	first, _ := c.JobSpans(st.ID)
	if err := c.Complete(w2, u.ID, bench.Result{Cycles: 1}, perfdb.Record{},
		[]span.Span{{TraceID: "t", SpanID: "b", Name: "execute", Track: "w2"}}); err != nil {
		t.Fatal(err)
	}
	second, _ := c.JobSpans(st.ID)
	if len(second) != len(first) {
		t.Fatalf("duplicate completion grew the span set: %d -> %d", len(first), len(second))
	}
	for _, s := range second {
		if s.SpanID == "b" {
			t.Fatal("duplicate completion's spans were recorded")
		}
	}
	by := spansByName(second)
	if len(by["attempt"]) != 1 {
		t.Fatalf("%d attempt spans after duplicate completion, want 1", len(by["attempt"]))
	}
}

// TestTraceparentHeaderOverHTTP exercises the wire: a valid sampled
// header joins the job to the client's trace; garbage and absent headers
// are accepted (202) and root fresh traces.
func TestTraceparentHeaderOverHTTP(t *testing.T) {
	clk := newFakeClock()
	c, err := NewCoordinator(Options{Clock: clk.Now, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	post := func(header, benchmark string) JobStatus {
		t.Helper()
		// Each case uses a distinct benchmark: identical specs would be
		// content-coalesced onto one leader unit, leaving nothing to lease.
		body, _ := json.Marshal(SweepSpec{Benchmarks: []string{benchmark}, Protocols: []string{"mesi"}})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /jobs with traceparent %q: %d %s", header, resp.StatusCode, msg)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	valid := "00-11111111111111111111111111111111-2222222222222222-01"
	traces := make(map[string]string) // case -> trace id
	for _, tc := range []struct {
		name, header, benchmark string
	}{
		{"valid", valid, "fib"},
		{"absent", "", "primes"},
		{"garbage", "not-a-traceparent-at-all", "dedup"},
		{"allzero", "00-00000000000000000000000000000000-0000000000000000-01", "msort"},
		{"uppercase", "00-11111111111111111111111111111111-222222222222222A-01", "tokens"},
	} {
		name, header := tc.name, tc.header
		st := post(header, tc.benchmark)
		spans, ok := c.JobSpans(st.ID)
		if !ok || len(spans) != 0 {
			// No spans finished yet (nothing leased), but the collector must exist.
			_ = spans
		}
		// The trace id is visible on the leased unit's traceparent.
		w, _ := c.RegisterWorker("w-" + name)
		u := leaseOne(t, c, w)
		sctx := span.Parse(u.Traceparent)
		if !sctx.Valid() {
			t.Fatalf("%s: leased traceparent invalid: %q", name, u.Traceparent)
		}
		traces[name] = sctx.TraceID
		if name == "valid" {
			if sctx.TraceID != "11111111111111111111111111111111" || !sctx.Sampled {
				t.Fatalf("valid header did not propagate: %+v", sctx)
			}
		} else if sctx.TraceID == "11111111111111111111111111111111" || sctx.Sampled {
			t.Fatalf("%s header %q must root a fresh unsampled trace, got %+v", name, header, sctx)
		}
	}
	seen := make(map[string]bool)
	for name, id := range traces {
		if seen[id] {
			t.Fatalf("%s: trace id %s reused across jobs", name, id)
		}
		seen[id] = true
	}
}

// TestJobEventStream covers the SSE surface end to end over real HTTP:
// full replay in publish order, the terminal job event, and clean EOF
// (StreamEvents returns nil) once the job settles.
func TestJobEventStream(t *testing.T) {
	clk := newFakeClock()
	c, err := NewCoordinator(Options{Clock: clk.Now, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	client := &Client{Base: ts.URL}

	st, err := client.SubmitTraced(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}},
		span.NewContext(counterIDs(), true))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	clk.Advance(time.Second)
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 7}, perfdb.Record{}, nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var types []string
	var terminal jobEvent
	if err := client.StreamEvents(ctx, st.ID, func(ev obs.StreamEvent) error {
		types = append(types, ev.Type)
		if ev.Type == "job" {
			json.Unmarshal(ev.Data, &terminal)
		}
		return nil
	}); err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	want := []string{
		"job",  // running
		"unit", // leased
		"span", // attempt ended
		"span", // unit ended
		"unit", // done
		"span", // job ended
		"job",  // terminal
	}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	if terminal.State != "done" || terminal.Done != 1 || terminal.Units != 1 {
		t.Fatalf("terminal job event = %+v", terminal)
	}

	// Unknown jobs 404 → apiError → usage exit code.
	err = client.StreamEvents(ctx, "J999", func(obs.StreamEvent) error { return nil })
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("StreamEvents(unknown) = %v, want 404 apiError", err)
	}
}

// TestSubmitExitCode pins the -submit exit-code contract.
func TestSubmitExitCode(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   JobStatus
		err  error
		want int
	}{
		{"done", JobStatus{State: "done"}, nil, ExitOK},
		{"poisoned", JobStatus{State: "failed"}, nil, ExitJobFailed},
		{"bad-spec-400", JobStatus{}, &apiError{Status: 400, Msg: "bad"}, ExitUsage},
		{"unknown-job-404", JobStatus{}, &apiError{Status: 404, Msg: "nope"}, ExitUsage},
		{"conflict-409", JobStatus{}, &apiError{Status: 409, Msg: "conflict"}, ExitUsage},
		{"server-error-500", JobStatus{}, &apiError{Status: 500, Msg: "boom"}, ExitTransport},
		{"wrapped-4xx", JobStatus{}, fmt.Errorf("wrap: %w", &apiError{Status: 400, Msg: "bad"}), ExitUsage},
		{"connection-refused", JobStatus{}, errors.New("dial tcp: connection refused"), ExitTransport},
		{"done-state-ignored-on-error", JobStatus{State: "done"}, errors.New("x"), ExitTransport},
	} {
		if got := SubmitExitCode(tc.st, tc.err); got != tc.want {
			t.Errorf("%s: SubmitExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestHeartbeatAndExpiryCounters covers the per-worker counter families:
// heartbeats increment on every heartbeat, expiries charge the worker
// that held the reaped lease, and both families render on /metrics even
// before any worker exists.
func TestHeartbeatAndExpiryCounters(t *testing.T) {
	c, clk, _ := testCoordinator(t, Options{LeaseTTL: 10 * time.Second})

	var buf bytes.Buffer
	if err := obs.WriteFamilies(&buf, c.MetricFamilies()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE warden_fleet_heartbeats_total counter",
		"# TYPE warden_fleet_lease_expiries_total counter",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scrape missing %q with zero workers:\n%s", want, buf.String())
		}
	}

	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	if err := c.Heartbeat(w, []string{u.ID}); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(w, []string{u.ID}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(11 * time.Second) // past the renewed TTL: reaped on next call
	st := c.Queue()
	if len(st.Workers) != 1 || st.Workers[0].Heartbeats != 2 || st.Workers[0].Expiries != 1 {
		t.Fatalf("worker counters = %+v, want 2 heartbeats, 1 expiry", st.Workers)
	}
	buf.Reset()
	if err := obs.WriteFamilies(&buf, c.MetricFamilies()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`warden_fleet_heartbeats_total{worker="w"} 2`,
		`warden_fleet_lease_expiries_total{worker="w"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSpanHistogramsOnMetrics: settled spans feed the
// warden_fleet_span_seconds_* histogram families.
func TestSpanHistogramsOnMetrics(t *testing.T) {
	clk := newFakeClock()
	c, err := NewCoordinator(Options{Clock: clk.Now, SpanIDs: counterIDs()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitTraced(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}},
		span.NewContext(counterIDs(), true))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	clk.Advance(50 * time.Millisecond)
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 1}, perfdb.Record{}, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteFamilies(&buf, c.MetricFamilies()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE warden_fleet_span_seconds_job histogram",
		"# TYPE warden_fleet_span_seconds_unit histogram",
		"# TYPE warden_fleet_span_seconds_attempt histogram",
		`warden_fleet_span_seconds_attempt_bucket{le="0.1"} 1`,
		"warden_fleet_span_seconds_attempt_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestTracedFleetSweep is the end-to-end proof for the tracing tentpole:
// a sampled PDES sweep over real HTTP with two workers produces (1)
// results byte-identical to the untraced -local reference, (2) a span
// tree with coordinator spans, worker execute spans, and PDES epoch
// children, and (3) a Perfetto export that passes the repo's own trace
// validator.
func TestTracedFleetSweep(t *testing.T) {
	_, client, stop := startFleet(t, Options{}, 2, nil)
	defer stop()

	spec := SweepSpec{Benchmarks: []string{"fib", "primes"}, Engine: "pdes"}
	st, err := client.SubmitTraced(spec, span.NewContext(nil, true))
	if err != nil {
		t.Fatalf("SubmitTraced: %v", err)
	}

	// Follow the SSE stream to settlement; it must end cleanly and carry
	// a terminal job event.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var terminal jobEvent
	if err := client.StreamEvents(ctx, st.ID, func(ev obs.StreamEvent) error {
		if ev.Type == "job" {
			json.Unmarshal(ev.Data, &terminal)
		}
		return nil
	}); err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if terminal.State != "done" {
		t.Fatalf("terminal job event = %+v, want done", terminal)
	}

	st = waitJob(t, client, st.ID)
	if st.State != "done" {
		t.Fatalf("job = %+v, want done", st)
	}

	// (1) Byte-identity with the untraced local reference.
	fleetRes, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := json.Marshal(fleetRes)
	lb, _ := json.Marshal(localRes)
	if !bytes.Equal(fb, lb) {
		t.Fatalf("traced fleet results differ from -local reference\nfleet: %s\nlocal: %s", fb, lb)
	}

	// (2) The span tree: execute spans on worker tracks with pdes epoch
	// children under them.
	trace, err := client.Trace(st.ID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	for _, want := range []string{`"job"`, `"unit"`, `"attempt"`, `"execute"`, `"pdes-phase2"`, `"coordinator"`} {
		if !bytes.Contains(trace, []byte(want)) {
			t.Fatalf("trace missing %s:\n%.2000s", want, trace)
		}
	}

	// (3) The export validates.
	if _, err := telemetry.ValidatePerfetto(bytes.NewReader(trace)); err != nil {
		t.Fatalf("fleet trace fails validation: %v", err)
	}
}
