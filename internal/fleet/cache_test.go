package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCachePersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c1, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	if _, ok := c1.Get("fp1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	blob := json.RawMessage(`{"Cycles":42}`)
	if err := c1.Put("fp1", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c1.Put("fp2", json.RawMessage(`{"Cycles":7}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// A fresh open — a restarted coordinator — sees both entries.
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if c2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", c2.Len())
	}
	got, ok := c2.Get("fp1")
	if !ok || string(got) != string(blob) {
		t.Fatalf("reopened Get(fp1) = %s,%v, want %s,true", got, ok, blob)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 0 misses, 2 entries", st)
	}
}

func TestCachePutIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put("fp", json.RawMessage(`{"Cycles":1}`)); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate puts, want 1", c.Len())
	}
	// The file holds exactly one line: duplicates never touch disk.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n := countLines(b); n != 1 {
		t.Fatalf("file has %d lines after duplicate puts, want 1", n)
	}
}

func countLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	if err := c.Put("fp", json.RawMessage(`1`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, ok := c.Get("fp"); !ok {
		t.Fatal("memory-only cache lost its entry")
	}
}

func TestCacheRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	if err := os.WriteFile(path, []byte(`{"fingerprint":"a","result":1}`+"\nnot json\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Fatal("OpenCache accepted a malformed line")
	}
}

func TestCacheRejectsMissingFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	if err := os.WriteFile(path, []byte(`{"result":1}`+"\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Fatal("OpenCache accepted an entry without a fingerprint")
	}
}
