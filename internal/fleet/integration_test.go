package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"warden/internal/bench"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/topology"
)

// startFleet boots a coordinator behind a real HTTP server and n workers
// speaking to it through the Client — the full wire path, in-process.
func startFleet(t *testing.T, opts Options, n int, hook func(i int, w *Worker)) (*Coordinator, *Client, func()) {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(coord.Handler())
	client := &Client{Base: ts.URL}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator:  client,
			Name:         []string{"alpha", "beta", "gamma", "delta"}[i%4],
			PollInterval: 10 * time.Millisecond,
		}
		if hook != nil {
			hook(i, w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	return coord, client, func() {
		cancel()
		wg.Wait()
		ts.Close()
	}
}

// waitJob submits nothing; it waits for an already-submitted job with a
// test-scoped deadline.
func waitJob(t *testing.T, client *Client, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	st, err := client.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

// TestFleetMatchesSequentialRunner is the headline proof: a full small
// sweep (every PBBS benchmark × MESI and WARDen) sharded across three
// workers over real HTTP produces results byte-identical — as JSON and as
// the rendered table — to the single-process bench.Runner, and a
// resubmission is served entirely from the cache without executing a
// single simulation.
func TestFleetMatchesSequentialRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full small sweep is not -short work")
	}
	reg := obs.NewRegistry()
	coord, client, stop := startFleet(t, Options{Registry: reg}, 3, nil)
	defer stop()

	spec := SweepSpec{} // zero spec = full suite, mesi+warden, small, seq
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitJob(t, client, st.ID)
	if st.State != "done" {
		t.Fatalf("job = %+v, want done", st)
	}
	if st.Executed != st.Units {
		t.Fatalf("first pass executed %d of %d units (cache was supposed to be cold)", st.Executed, st.Units)
	}
	fleetRes, err := client.Results(st.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}

	// Reference: the single-process runner's CompareAll on the same
	// machine. Unit order is benchmark-major with protocols inner
	// (mesi, warden), so comparison i covers units 2i and 2i+1.
	r := bench.NewRunner(bench.Small)
	cmps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		t.Fatalf("CompareAll: %v", err)
	}
	if len(fleetRes) != 2*len(cmps) {
		t.Fatalf("fleet returned %d results for %d comparisons", len(fleetRes), len(cmps))
	}
	for i, cmp := range cmps {
		for j, want := range []bench.Result{cmp.MESI, cmp.WARDen} {
			got := fleetRes[2*i+j]
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(want)
			if !bytes.Equal(gb, wb) {
				t.Errorf("unit %d (%s): fleet result differs from sequential runner\nfleet: %s\nlocal: %s",
					2*i+j, cmp.Name, gb, wb)
			}
		}
	}

	// The rendered tables agree byte for byte with the -local path.
	localRes, err := RunLocal(spec)
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	var ft, lt bytes.Buffer
	if err := WriteResultsTable(&ft, fleetRes); err != nil {
		t.Fatalf("render fleet table: %v", err)
	}
	if err := WriteResultsTable(&lt, localRes); err != nil {
		t.Fatalf("render local table: %v", err)
	}
	if !bytes.Equal(ft.Bytes(), lt.Bytes()) {
		t.Errorf("fleet table differs from local table\nfleet:\n%s\nlocal:\n%s", ft.String(), lt.String())
	}

	// All three workers pulled their weight: with 14+ units across 3
	// workers polling a shared queue, each should complete at least one.
	q, err := client.Queue()
	if err != nil {
		t.Fatalf("Queue: %v", err)
	}
	if len(q.Workers) != 3 {
		t.Fatalf("registered workers = %d, want 3", len(q.Workers))
	}
	var total uint64
	for _, w := range q.Workers {
		total += w.Completed
	}
	if total != uint64(st.Units) {
		t.Errorf("workers completed %d units in aggregate, want %d", total, st.Units)
	}

	// Resubmission: the whole sweep is a cache hit — zero executions, the
	// job is done at submit time, and the results are the same bytes.
	execBefore := coord.Queue().Executed
	st2, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.State != "done" || st2.CacheHits != st2.Units || st2.Executed != 0 {
		t.Fatalf("resubmitted job = %+v, want done entirely from cache", st2)
	}
	if execAfter := coord.Queue().Executed; execAfter != execBefore {
		t.Fatalf("resubmission executed %d new units, want 0", execAfter-execBefore)
	}
	res2, err := client.Results(st2.ID)
	if err != nil {
		t.Fatalf("Results(resubmit): %v", err)
	}
	b1, _ := json.Marshal(fleetRes)
	b2, _ := json.Marshal(res2)
	if !bytes.Equal(b1, b2) {
		t.Error("resubmitted results differ from the first pass")
	}
}

// TestFleetSurvivesKilledWorker kills a worker after it finishes a
// simulation but before it reports — the lease dies silently, exactly like
// a crashed process — and proves the coordinator reaps the lease, retries
// the unit on a surviving worker, and completes the sweep correctly.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	spec := SweepSpec{Benchmarks: []string{"fib", "nqueens"}, Protocols: []string{"mesi", "warden"}}

	var mu sync.Mutex
	killed := false
	hook := func(i int, w *Worker) {
		if i != 0 {
			return
		}
		// Worker 0 dies on its first unit, dropping the result.
		w.FailBeforeReport = func(Unit) bool {
			mu.Lock()
			defer mu.Unlock()
			if killed {
				return false
			}
			killed = true
			return true
		}
	}
	// A short real TTL keeps the test fast: the reaper requeues the dead
	// worker's unit within a couple hundred milliseconds.
	coord, client, stop := startFleet(t, Options{
		LeaseTTL:    200 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: 5,
	}, 3, hook)
	defer stop()

	st, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitJob(t, client, st.ID)
	if st.State != "done" {
		t.Fatalf("job = %+v, want done despite the killed worker", st)
	}

	mu.Lock()
	wasKilled := killed
	mu.Unlock()
	if !wasKilled {
		t.Fatal("crash hook never fired — the test proved nothing")
	}
	q := coord.Queue()
	if q.LeasesExpired < 1 {
		t.Errorf("LeasesExpired = %d, want >= 1 (the killed worker's lease)", q.LeasesExpired)
	}
	if q.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1 (the reaped unit's requeue)", q.Retries)
	}

	// Despite the crash, the results match the sequential reference.
	fleetRes, err := client.Results(st.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	localRes, err := RunLocal(spec)
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	gb, _ := json.Marshal(fleetRes)
	wb, _ := json.Marshal(localRes)
	if !bytes.Equal(gb, wb) {
		t.Errorf("post-recovery results differ from sequential reference\nfleet: %s\nlocal: %s", gb, wb)
	}
}

// TestFleetCacheSurvivesRestart proves global memoization across
// coordinator lifetimes: a sweep executed against one coordinator is
// served entirely from the persisted cache by a brand-new coordinator —
// with zero workers attached.
func TestFleetCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.jsonl")
	spec := SweepSpec{Benchmarks: []string{"fib", "palindrome"}, Protocols: []string{"mesi", "warden"}}

	_, client, stop := startFleet(t, Options{CachePath: cachePath}, 2, nil)
	st, err := client.Submit(spec)
	if err != nil {
		stop()
		t.Fatalf("Submit: %v", err)
	}
	st = waitJob(t, client, st.ID)
	if st.State != "done" {
		stop()
		t.Fatalf("job = %+v, want done", st)
	}
	firstRes, err := client.Results(st.ID)
	if err != nil {
		stop()
		t.Fatalf("Results: %v", err)
	}
	stop() // coordinator and all workers gone

	// A fresh coordinator, same cache file, no workers: the resubmitted
	// sweep must complete at submit time, purely from disk.
	coord2, err := NewCoordinator(Options{CachePath: cachePath})
	if err != nil {
		t.Fatalf("restart NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(coord2.Handler())
	defer ts.Close()
	client2 := &Client{Base: ts.URL}
	st2, err := client2.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if st2.State != "done" || st2.CacheHits != st2.Units || st2.Executed != 0 {
		t.Fatalf("restarted-coordinator job = %+v, want done entirely from cache", st2)
	}
	res2, err := client2.Results(st2.ID)
	if err != nil {
		t.Fatalf("Results after restart: %v", err)
	}
	b1, _ := json.Marshal(firstRes)
	b2, _ := json.Marshal(res2)
	if !bytes.Equal(b1, b2) {
		t.Error("results served by the restarted coordinator differ from the original execution")
	}
}

// TestFleetWritesHistory proves worker perfdb records land in the
// coordinator's history file with the worker provenance field set and the
// step/fingerprint schema wardendiff expects.
func TestFleetWritesHistory(t *testing.T) {
	dir := t.TempDir()
	histPath := filepath.Join(dir, "history.jsonl")
	spec := SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}}

	_, client, stop := startFleet(t, Options{HistoryPath: histPath}, 1, nil)
	defer stop()
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitJob(t, client, st.ID)

	recs, err := perfdb.Read(histPath)
	if err != nil {
		t.Fatalf("read history: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("history has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Step != "fib/MESI" {
		t.Errorf("Step = %q, want fib/MESI", rec.Step)
	}
	if rec.Worker == "" {
		t.Error("Worker field empty; fleet records must carry provenance")
	}
	if rec.Fingerprint == "" || rec.SimulatedCycles == 0 || rec.Engine != "seq" {
		t.Errorf("record incomplete: %+v", rec)
	}
}
