package fleet

// WatchJob follows a submitted job to settlement: a live progress line per
// SSE event, with transparent degradation to status polling when the
// stream is unavailable or severed mid-job. It is the client half of
// `wardenfleet -submit`, housed here so the fallback path is testable
// against a real coordinator (watch_test.go severs the stream mid-job and
// asserts the submit output is unchanged).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"warden/internal/obs"
)

// WatchJob follows job id on client until it settles, writing one progress
// line per event (unit leases, completions, requeues, and the terminal job
// state) to progress. The SSE feed is an optimization only: if the stream
// cannot be opened or dies mid-job, WatchJob reports the degradation on
// progress and falls back to status polling at the given interval. Either
// way the returned status comes from one authoritative GET, so the caller
// sees identical results on both paths.
func WatchJob(ctx context.Context, client *Client, id string, poll time.Duration, progress io.Writer) (JobStatus, error) {
	serr := client.StreamEvents(ctx, id, func(ev obs.StreamEvent) error {
		switch ev.Type {
		case "unit":
			var ue struct {
				Unit    string `json:"unit"`
				State   string `json:"state"`
				Worker  string `json:"worker"`
				Attempt int    `json:"attempt"`
				Outcome string `json:"outcome"`
				Why     string `json:"why"`
			}
			if json.Unmarshal(ev.Data, &ue) != nil {
				return nil
			}
			switch ue.State {
			case "leased":
				fmt.Fprintf(progress, "fleet: unit %s leased to %s (attempt %d)\n", ue.Unit, ue.Worker, ue.Attempt)
			case "done":
				fmt.Fprintf(progress, "fleet: unit %s done (%s)\n", ue.Unit, ue.Outcome)
			case "requeued", "poisoned":
				fmt.Fprintf(progress, "fleet: unit %s %s after attempt %d: %s\n", ue.Unit, ue.State, ue.Attempt, ue.Why)
			}
		case "job":
			var je struct {
				Job   string `json:"job"`
				State string `json:"state"`
				Done  int    `json:"done"`
				Units int    `json:"units"`
			}
			if json.Unmarshal(ev.Data, &je) != nil {
				return nil
			}
			if je.State != "running" {
				fmt.Fprintf(progress, "fleet: job %s settled (%s): %d/%d units\n", je.Job, je.State, je.Done, je.Units)
			}
		}
		return nil
	})
	if serr != nil {
		fmt.Fprintf(progress, "fleet: event stream unavailable (%v); falling back to polling\n", serr)
	}
	return client.Wait(ctx, id, poll)
}
