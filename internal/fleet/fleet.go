// Package fleet is the distributed sweep fabric: a coordinator/worker
// system that promotes the single-process experiment runner into a sharded
// service. A coordinator accepts sweep jobs over HTTP, shards them into
// per-configuration work units keyed by the runner's config fingerprints,
// and hands units to workers under lease semantics — registration and
// heartbeats, a lease TTL, expired leases requeued, bounded retries with
// exponential backoff and jitter, and poison-unit quarantine after
// repeated failures. Workers wrap bench.RunOneTracedOn and stream results
// plus perfdb records (and, when sampled, execution spans) back.
//
// Memoization is global: the coordinator keeps a content-addressed result
// cache (fingerprint → result blob, persisted as append-only JSONL
// alongside the perfdb history), so resubmitting any previously-run sweep
// — from any client, against a restarted coordinator — completes without
// executing a single simulation. Because every simulation in this
// repository is bit-reproducible, a unit's fingerprint fully determines
// its result, and the fleet's sharded output is byte-identical to the
// single-process runner's (asserted by the integration tests).
//
// The fabric is traced end to end: a submission may carry a W3C
// traceparent, the coordinator opens job/unit/attempt spans and threads
// the context through each lease, and workers continue the trace around
// the simulation down to PDES epochs. Each job exposes a live SSE event
// feed (/jobs/{id}/events) and a Perfetto trace export (/jobs/{id}/trace);
// finished spans also feed duration histograms on /metrics.
//
// Everything is stdlib-only, like the rest of the observability plane; the
// coordinator serves obs /metrics and /runs next to its own job API.
package fleet

import (
	"fmt"
	"strings"

	"warden/internal/bench"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/topology"
)

// SweepSpec is a job request: the cross product of benchmarks × protocols
// on one machine at one size class under one engine. Zero values select
// the canonical sweep (full PBBS suite, MESI vs WARDen, the paper's
// dual-socket machine, small inputs, sequential engine).
type SweepSpec struct {
	// Benchmarks are PBBS suite names; empty means the full suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Protocols are registered protocol names; empty means mesi,warden.
	Protocols []string `json:"protocols,omitempty"`
	// Machine is a topology preset name (see MachineByName); empty means
	// the paper's dual-socket Xeon.
	Machine string `json:"machine,omitempty"`
	// Size is the input size class: "small" (default) or "medium".
	Size string `json:"size,omitempty"`
	// Engine is the simulation engine: "seq" (default) or "pdes". Both
	// produce byte-identical results; the engine joins the fingerprint so
	// cache entries record which scheduler produced them, mirroring the
	// bench runner's memo key.
	Engine string `json:"engine,omitempty"`
}

// Unit is one fully-resolved work unit: a single (benchmark, protocol,
// machine, size, engine) simulation. Units are the fleet's scheduling and
// caching granule; Fingerprint is the content address of the result.
type Unit struct {
	// ID is the coordinator-assigned unit id, "<job>/<index>".
	ID string `json:"id"`
	// Index is the unit's position in its job's deterministic order;
	// results are reassembled by index, which is what makes a sharded
	// sweep byte-identical to a sequential one.
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Protocol  string `json:"protocol"`
	Machine   string `json:"machine"`
	// Size is the concrete input size (already resolved from the spec's
	// size class through the benchmark's presets).
	Size   int    `json:"size"`
	Engine string `json:"engine"`
	// Fingerprint is the unit's config fingerprint — exactly the key the
	// bench runner's in-process memo would use for this simulation, so
	// fleet cache entries and local memo entries address the same content.
	Fingerprint string `json:"fingerprint"`
	// Traceparent is the W3C trace context of the coordinator's attempt
	// span for this lease; the worker continues the trace under it. Empty
	// (or malformed) starts no worker-side collection.
	Traceparent string `json:"traceparent,omitempty"`
}

// MachineByName resolves a topology preset name. Names match the presets'
// own Config.Name fields so specs, fingerprints, and reports all speak the
// same vocabulary.
func MachineByName(name string) (topology.Config, error) {
	switch name {
	case "", "xeon-gold-6126-2s":
		return topology.XeonGold6126(2), nil
	case "xeon-gold-6126-1s":
		return topology.XeonGold6126(1), nil
	case "disaggregated-2n":
		return topology.Disaggregated(), nil
	}
	if strings.HasPrefix(name, "many-socket-") {
		var s int
		if _, err := fmt.Sscanf(name, "many-socket-%ds", &s); err == nil && s > 0 {
			return topology.ManySocket(s), nil
		}
	}
	return topology.Config{}, fmt.Errorf("fleet: unknown machine %q (want xeon-gold-6126-1s, xeon-gold-6126-2s, disaggregated-2n, or many-socket-<N>s)", name)
}

// sizeClass resolves a spec's size-class string.
func sizeClass(s string) (bench.SizeClass, error) {
	switch s {
	case "", "small":
		return bench.Small, nil
	case "medium":
		return bench.Medium, nil
	}
	return 0, fmt.Errorf("fleet: unknown size class %q (want small or medium)", s)
}

// engineMode resolves a spec's engine string, defaulting to sequential.
func engineMode(s string) (machine.EngineMode, error) {
	if s == "" {
		return machine.EngineSequential, nil
	}
	m, err := machine.ParseEngineMode(s)
	if err != nil {
		return 0, fmt.Errorf("fleet: %w", err)
	}
	return m, nil
}

// ResolveSpec expands a sweep spec into its deterministic unit order:
// benchmark-major over the suite order given, protocols inner — the same
// orientation bench.Runner.CompareAll fans out. Every name is validated
// here, at submit time, so a bad spec fails the POST instead of poisoning
// units worker-side. Unit IDs are assigned later by the coordinator.
func ResolveSpec(spec SweepSpec) ([]Unit, error) {
	cfg, err := MachineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	sizes, err := sizeClass(spec.Size)
	if err != nil {
		return nil, err
	}
	emode, err := engineMode(spec.Engine)
	if err != nil {
		return nil, err
	}

	benchNames := spec.Benchmarks
	if len(benchNames) == 0 {
		benchNames = pbbs.Names()
	}
	protoNames := spec.Protocols
	if len(protoNames) == 0 {
		protoNames = []string{"mesi", "warden"}
	}

	opts := hlpl.DefaultOptions()
	var units []Unit
	for _, bn := range benchNames {
		entry, err := pbbs.ByName(bn)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		size := entry.Small
		if sizes == bench.Medium {
			size = entry.Medium
		}
		for _, pn := range protoNames {
			proto, ok := core.Lookup(pn)
			if !ok {
				return nil, fmt.Errorf("fleet: unknown protocol %q (registered: %s)",
					pn, strings.ToLower(strings.Join(core.Names(), ", ")))
			}
			units = append(units, Unit{
				Index:       len(units),
				Benchmark:   entry.Name,
				Protocol:    proto.String(),
				Machine:     cfg.Name,
				Size:        size,
				Engine:      emode.String(),
				Fingerprint: runner.Fingerprint(cfg, proto, entry.Name, size, opts, emode),
			})
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("fleet: spec resolves to zero units")
	}
	return units, nil
}

// Resolve maps a unit back to the concrete simulation inputs a worker
// needs. It re-derives the fingerprint and refuses a unit whose recorded
// fingerprint disagrees — a coordinator/worker version skew guard: a stale
// worker must not silently cache a result under a key computed by
// different code.
func (u Unit) Resolve() (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options, machine.EngineMode, error) {
	fail := func(err error) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options, machine.EngineMode, error) {
		return topology.Config{}, 0, pbbs.Entry{}, hlpl.Options{}, 0, err
	}
	cfg, err := MachineByName(u.Machine)
	if err != nil {
		return fail(err)
	}
	proto, ok := core.Lookup(u.Protocol)
	if !ok {
		return fail(fmt.Errorf("fleet: unit %s: unknown protocol %q", u.ID, u.Protocol))
	}
	entry, err := pbbs.ByName(u.Benchmark)
	if err != nil {
		return fail(fmt.Errorf("fleet: unit %s: %w", u.ID, err))
	}
	emode, err := engineMode(u.Engine)
	if err != nil {
		return fail(fmt.Errorf("fleet: unit %s: %w", u.ID, err))
	}
	opts := hlpl.DefaultOptions()
	if fp := runner.Fingerprint(cfg, proto, entry.Name, u.Size, opts, emode); fp != u.Fingerprint {
		return fail(fmt.Errorf("fleet: unit %s: fingerprint mismatch (coordinator %q, worker derives %q) — version skew",
			u.ID, u.Fingerprint, fp))
	}
	return cfg, proto, entry, opts, emode, nil
}

// Name is the unit's human-readable identity used in logs, run registries,
// and perfdb step names: "benchmark/PROTOCOL".
func (u Unit) Name() string { return u.Benchmark + "/" + u.Protocol }
