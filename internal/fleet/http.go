package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"warden/internal/bench"
	"warden/internal/obs"
	"warden/internal/perfdb"
	"warden/internal/span"
	"warden/internal/telemetry"
)

// The wire protocol is plain JSON over HTTP, stdlib end to end. Client-
// facing endpoints:
//
//	POST /jobs            SweepSpec → JobStatus (spec validated at submit;
//	                      an optional traceparent header joins the job to
//	                      the submitter's trace — malformed never rejects)
//	GET  /jobs/{id}       JobStatus; ?results=1 adds the ordered results
//	GET  /jobs/{id}/events  live SSE stream: full replay of job/unit/span
//	                      events, then live follow; EOF when the job settles
//	GET  /jobs/{id}/trace Perfetto trace_event JSON of the job's spans so far
//	GET  /queue           QueueStatus snapshot
//
// Worker-facing endpoints (the lease protocol):
//
//	POST /fleet/register  registerRequest → registerResponse (id + TTL)
//	POST /fleet/lease     leaseRequest → leaseResponse (0..max units)
//	POST /fleet/heartbeat heartbeatRequest → 204
//	POST /fleet/complete  completeRequest → 204
//	POST /fleet/fail      failRequest → 204
//
// Everything else falls through to the obs server (/metrics, /runs,
// /healthz, /debug/pprof) so one coordinator port carries both the job API
// and the observability plane.

type registerRequest struct {
	Name string `json:"name"`
}

type registerResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is the lease TTL the worker must heartbeat within.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

type leaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
}

type leaseResponse struct {
	Units []Unit `json:"units"`
}

type heartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	UnitIDs  []string `json:"unit_ids"`
}

type completeRequest struct {
	WorkerID string        `json:"worker_id"`
	UnitID   string        `json:"unit_id"`
	Result   bench.Result  `json:"result"`
	Record   perfdb.Record `json:"record"`
	// Spans carries the worker's finished spans for this unit (execute
	// plus PDES epoch children) when the lease's trace was sampled.
	Spans []span.Span `json:"spans,omitempty"`
}

type failRequest struct {
	WorkerID string `json:"worker_id"`
	UnitID   string `json:"unit_id"`
	Error    string `json:"error"`
}

// jobView is GET /jobs/{id}?results=1: the status plus ordered results.
type jobView struct {
	JobStatus
	Results []bench.Result `json:"results,omitempty"`
}

// Handler builds the coordinator's HTTP handler. The obs server — with the
// coordinator itself registered as a metrics source — handles every path
// the job API doesn't claim.
func (c *Coordinator) Handler() http.Handler {
	obsSrv := &obs.Server{
		Registry: c.opts.Registry,
		Sources:  []obs.Source{c},
		Log:      c.opts.Log,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", c.handleSubmit)
	mux.HandleFunc("/jobs/", c.handleJob)
	mux.HandleFunc("/queue", c.handleQueue)
	mux.HandleFunc("/fleet/register", c.handleRegister)
	mux.HandleFunc("/fleet/lease", c.handleLease)
	mux.HandleFunc("/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/fleet/complete", c.handleComplete)
	mux.HandleFunc("/fleet/fail", c.handleFail)
	mux.Handle("/", obsSrv.Handler())
	return mux
}

// decode reads a JSON request body into v, replying 400 on malformed
// input. It returns false when the caller should stop.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// workerError maps coordinator errors onto status codes workers dispatch
// on: 409 tells a worker its registration is gone (re-register), 400
// everything else.
func workerError(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnknownWorker) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if !decode(w, r, &spec) {
		return
	}
	st, err := c.SubmitTraced(spec, span.Parse(r.Header.Get("traceparent")))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if rest, ok := strings.CutSuffix(id, "/events"); ok {
		log, found := c.JobEvents(rest)
		if !found {
			http.NotFound(w, r)
			return
		}
		log.ServeSSE(w, r)
		return
	}
	if rest, ok := strings.CutSuffix(id, "/trace"); ok {
		spans, found := c.JobSpans(rest)
		if !found {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := telemetry.WriteSpans(w, spans); err != nil && c.opts.Log != nil {
			c.opts.Log.Info("trace export failed", "job", rest, "err", err)
		}
		return
	}
	st, ok := c.Job(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	view := jobView{JobStatus: st}
	if r.URL.Query().Get("results") == "1" {
		if st.State != "done" {
			http.Error(w, fmt.Sprintf("job %s is %s; results require state done", id, st.State),
				http.StatusConflict)
			return
		}
		res, err := c.Results(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		view.Results = res
	}
	reply(w, http.StatusOK, view)
}

func (c *Coordinator) handleQueue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	reply(w, http.StatusOK, c.Queue())
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decode(w, r, &req) {
		return
	}
	id, ttl := c.RegisterWorker(req.Name)
	reply(w, http.StatusOK, registerResponse{
		WorkerID:       id,
		LeaseTTLMillis: ttl.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decode(w, r, &req) {
		return
	}
	units, err := c.Lease(req.WorkerID, req.Max)
	if err != nil {
		workerError(w, err)
		return
	}
	if units == nil {
		units = []Unit{}
	}
	reply(w, http.StatusOK, leaseResponse{Units: units})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.WorkerID, req.UnitIDs); err != nil {
		workerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Complete(req.WorkerID, req.UnitID, req.Result, req.Record, req.Spans); err != nil {
		workerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Fail(req.WorkerID, req.UnitID, req.Error); err != nil {
		workerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Serve runs the coordinator's HTTP server on addr until ctx is cancelled,
// then drains in-flight requests for up to drainDeadline. It is the
// long-running entrypoint cmd/wardenfleet -coordinator uses.
func Serve(ctx context.Context, addr string, c *Coordinator, drainDeadline time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return obs.Drain(hs, drainDeadline, c.opts.Log)
	}
}
