package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"warden/internal/obs"
	"warden/internal/perfdb"
)

// severWriter kills the SSE connection after the first complete event has
// been flushed to the client, simulating a proxy or network dropping the
// stream mid-job.
type severWriter struct {
	http.ResponseWriter
	events int
}

func (s *severWriter) Write(p []byte) (int, error) {
	n, err := s.ResponseWriter.Write(p)
	s.events += bytes.Count(p[:n], []byte("\n\n"))
	if s.events >= 1 {
		if f, ok := s.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (s *severWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestWatchJobPollingFallback severs the job's SSE stream after one event
// and proves the polling fallback is lossless: WatchJob still settles the
// job, the rendered results table is byte-identical to the sequential
// -local reference, and the scriptable exit code is ExitOK — the stream is
// an optimization, never a correctness dependency.
func TestWatchJobPollingFallback(t *testing.T) {
	coord, err := NewCoordinator(Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	inner := coord.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/events") {
			inner.ServeHTTP(&severWriter{ResponseWriter: w}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client := &Client{Base: ts.URL}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{Coordinator: client, PollInterval: 10 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	spec := SweepSpec{Benchmarks: []string{"fib", "msort"}}
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	var progress bytes.Buffer
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Minute)
	defer wcancel()
	st, err = WatchJob(wctx, client, st.ID, 20*time.Millisecond, &progress)
	if err != nil {
		t.Fatalf("WatchJob: %v\nprogress:\n%s", err, progress.String())
	}
	if !strings.Contains(progress.String(), "falling back to polling") {
		t.Fatalf("stream was not severed — progress:\n%s", progress.String())
	}
	if st.State != "done" {
		t.Fatalf("job = %+v, want done", st)
	}
	if code := SubmitExitCode(st, nil); code != ExitOK {
		t.Fatalf("SubmitExitCode = %d, want %d", code, ExitOK)
	}

	results, err := client.Results(st.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	var fleetTable bytes.Buffer
	if err := WriteResultsTable(&fleetTable, results); err != nil {
		t.Fatal(err)
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	var localTable bytes.Buffer
	if err := WriteResultsTable(&localTable, local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetTable.Bytes(), localTable.Bytes()) {
		t.Fatalf("polling-fallback table differs from -local reference:\n--- fleet ---\n%s--- local ---\n%s",
			fleetTable.String(), localTable.String())
	}
}

// TestWorkerShipsAttribSummary runs a sweep with attribution-enabled
// workers and asserts every perfdb record they ship back carries the
// ledger summary: a top event kind, a positive share, and a zero residue
// (a nonzero one would have failed the unit instead).
func TestWorkerShipsAttribSummary(t *testing.T) {
	history := filepath.Join(t.TempDir(), "history.jsonl")
	_, client, stop := startFleet(t, Options{Registry: obs.NewRegistry(), HistoryPath: history}, 2,
		func(i int, w *Worker) { w.Attrib = true })
	defer stop()

	st, err := client.Submit(SweepSpec{Benchmarks: []string{"fib"}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitJob(t, client, st.ID)
	if st.State != "done" {
		t.Fatalf("job = %+v, want done", st)
	}

	recs, err := perfdb.Read(history)
	if err != nil {
		t.Fatalf("Read(history): %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no history records written")
	}
	for _, rec := range recs {
		if rec.AttribTopKind == "" {
			t.Errorf("record %s/%s has no AttribTopKind", rec.RunID, rec.Step)
		}
		if rec.AttribTopShare <= 0 || rec.AttribTopShare > 1 {
			t.Errorf("record %s/%s AttribTopShare = %v, want in (0, 1]", rec.RunID, rec.Step, rec.AttribTopShare)
		}
		if rec.AttribResidue != 0 {
			t.Errorf("record %s/%s AttribResidue = %d, want 0", rec.RunID, rec.Step, rec.AttribResidue)
		}
	}
}
