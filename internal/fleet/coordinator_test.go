package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"warden/internal/bench"
	"warden/internal/perfdb"
)

// fakeClock is a hand-advanced clock: lease expiry and backoff schedules
// become exact assertions instead of sleeps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// testCoordinator builds a coordinator on a fake clock with fixed jitter
// (Rand ≡ 0.5 ⇒ every backoff is stretched by exactly JitterFrac/2) and a
// one-unit job (fib under MESI) submitted.
func testCoordinator(t *testing.T, opts Options) (*Coordinator, *fakeClock, JobStatus) {
	t.Helper()
	clk := newFakeClock()
	opts.Clock = clk.Now
	if opts.Rand == nil {
		opts.Rand = func() float64 { return 0.5 }
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	st, err := c.Submit(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return c, clk, st
}

// leaseOne leases exactly one unit or fails the test.
func leaseOne(t *testing.T, c *Coordinator, worker string) Unit {
	t.Helper()
	units, err := c.Lease(worker, 1)
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	if len(units) != 1 {
		t.Fatalf("Lease(%s) returned %d units, want 1", worker, len(units))
	}
	return units[0]
}

func TestLeaseExpiryRequeues(t *testing.T) {
	ttl := 30 * time.Second
	c, clk, _ := testCoordinator(t, Options{LeaseTTL: ttl})
	w1, _ := c.RegisterWorker("w1")
	w2, _ := c.RegisterWorker("w2")

	u := leaseOne(t, c, w1)

	// Within the TTL the unit stays leased: another worker gets nothing.
	clk.Advance(ttl - time.Second)
	if units, _ := c.Lease(w2, 1); len(units) != 0 {
		t.Fatalf("unit re-leased before TTL: %+v", units)
	}

	// Past the TTL the reaper requeues it, charges an attempt, and applies
	// backoff — immediately after expiry the unit is still in backoff, so
	// it becomes leasable only once the retry delay passes too.
	clk.Advance(2 * time.Second)
	q := c.Queue()
	if q.LeasesExpired != 1 || q.Retries != 1 {
		t.Fatalf("after expiry: LeasesExpired=%d Retries=%d, want 1,1", q.LeasesExpired, q.Retries)
	}
	if q.Backoff != 1 || q.Depth != 0 {
		t.Fatalf("after expiry: Backoff=%d Depth=%d, want 1,0", q.Backoff, q.Depth)
	}
	clk.Advance(time.Minute) // well past any first-attempt backoff
	u2 := leaseOne(t, c, w2)
	if u2.ID != u.ID {
		t.Fatalf("requeued unit %s != original %s", u2.ID, u.ID)
	}
}

func TestHeartbeatRenewsLease(t *testing.T) {
	ttl := 30 * time.Second
	c, clk, _ := testCoordinator(t, Options{LeaseTTL: ttl})
	w1, _ := c.RegisterWorker("w1")
	w2, _ := c.RegisterWorker("w2")

	u := leaseOne(t, c, w1)

	// Heartbeat every 20s for 2 minutes: four TTLs elapse in total, yet the
	// lease never expires because each beat pushes the deadline out.
	for i := 0; i < 6; i++ {
		clk.Advance(20 * time.Second)
		if err := c.Heartbeat(w1, []string{u.ID}); err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
	}
	q := c.Queue()
	if q.LeasesExpired != 0 || q.Leased != 1 {
		t.Fatalf("after heartbeats: LeasesExpired=%d Leased=%d, want 0,1", q.LeasesExpired, q.Leased)
	}
	if units, _ := c.Lease(w2, 1); len(units) != 0 {
		t.Fatalf("heartbeated unit was re-leased: %+v", units)
	}

	// Stop heartbeating: one TTL later the unit is reaped, and once its
	// retry backoff passes it is leasable by another worker.
	clk.Advance(ttl + time.Second)
	if q := c.Queue(); q.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d after heartbeats stopped, want 1", q.LeasesExpired)
	}
	clk.Advance(time.Minute) // clear the retry backoff
	if got := leaseOne(t, c, w2); got.ID != u.ID {
		t.Fatalf("expired unit %s != original %s", got.ID, u.ID)
	}
}

// TestBackoffSchedule pins the retry delay formula: base·2^(n-1) capped at
// max, stretched by JitterFrac·Rand(). With Rand ≡ 0.5 and JitterFrac 0.2
// every delay is exactly 1.1× the deterministic schedule.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 1100 * time.Millisecond}, // 1s · 1.1
		{2, 2200 * time.Millisecond}, // 2s · 1.1
		{3, 4400 * time.Millisecond}, // 4s · 1.1
		{4, 8800 * time.Millisecond}, // 8s · 1.1
		{5, 11 * time.Second},        // capped at 10s · 1.1
		{9, 11 * time.Second},        // still capped
	}
	c, _, _ := testCoordinator(t, Options{
		BackoffBase: time.Second,
		BackoffMax:  10 * time.Second,
		JitterFrac:  0.2,
	})
	for _, tc := range cases {
		if got := c.backoff(tc.attempt); got != tc.want {
			t.Errorf("backoff(attempt %d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffGatesLease proves a failed unit is not leasable until its
// backoff passes on the injected clock.
func TestBackoffGatesLease(t *testing.T) {
	c, clk, _ := testCoordinator(t, Options{
		BackoffBase: time.Second,
		BackoffMax:  10 * time.Second,
		JitterFrac:  0.2,
		MaxAttempts: 5,
	})
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	if err := c.Fail(w, u.ID, "synthetic"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	// Delay is exactly 1.1s (attempt 1, Rand 0.5). Just short: nothing.
	clk.Advance(1099 * time.Millisecond)
	if units, _ := c.Lease(w, 1); len(units) != 0 {
		t.Fatalf("unit leased during backoff: %+v", units)
	}
	clk.Advance(2 * time.Millisecond)
	if got := leaseOne(t, c, w); got.ID != u.ID {
		t.Fatalf("leased %s, want %s", got.ID, u.ID)
	}
}

func TestPoisonQuarantine(t *testing.T) {
	const maxAttempts = 3
	c, clk, job := testCoordinator(t, Options{
		MaxAttempts: maxAttempts,
		BackoffBase: time.Second,
		BackoffMax:  10 * time.Second,
	})
	w, _ := c.RegisterWorker("w")
	var u Unit
	for i := 0; i < maxAttempts; i++ {
		clk.Advance(time.Minute) // clear any backoff
		u = leaseOne(t, c, w)
		if err := c.Fail(w, u.ID, "synthetic failure"); err != nil {
			t.Fatalf("Fail #%d: %v", i+1, err)
		}
	}

	// Attempt maxAttempts exhausted the budget: quarantined, never leased
	// again no matter how long we wait.
	clk.Advance(time.Hour)
	if units, _ := c.Lease(w, 1); len(units) != 0 {
		t.Fatalf("poisoned unit re-leased: %+v", units)
	}
	q := c.Queue()
	if q.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", q.Poisoned)
	}
	// Retries counts only the requeues (the final failure poisons instead).
	if q.Retries != maxAttempts-1 {
		t.Fatalf("Retries = %d, want %d", q.Retries, maxAttempts-1)
	}
	st, ok := c.Job(job.ID)
	if !ok {
		t.Fatalf("job %s vanished", job.ID)
	}
	if st.State != "failed" || st.Poisoned != 1 {
		t.Fatalf("job state %q Poisoned=%d, want failed,1", st.State, st.Poisoned)
	}
	if len(st.Errors) != 1 || !strings.Contains(st.Errors[0], "synthetic failure") {
		t.Fatalf("job errors = %v, want the last failure message", st.Errors)
	}
	if _, err := c.Results(job.ID); err == nil {
		t.Fatal("Results of a failed job returned nil error")
	}

	// A poisoned job's done channel still closes: waiters are released.
	select {
	case <-c.WaitDone(job.ID):
	default:
		t.Fatal("WaitDone channel not closed for a settled (failed) job")
	}
}

// TestStaleCompletionAccepted proves a worker whose lease expired can still
// deliver a useful result: results are deterministic, so the late blob is
// accepted and the unit (re-leased or not) completes without re-execution.
func TestStaleCompletionAccepted(t *testing.T) {
	ttl := 30 * time.Second
	c, clk, job := testCoordinator(t, Options{LeaseTTL: ttl})
	w1, _ := c.RegisterWorker("w1")
	u := leaseOne(t, c, w1)

	clk.Advance(ttl + time.Second) // lease dies
	res := bench.Result{Benchmark: u.Benchmark, Cycles: 42}
	if err := c.Complete(w1, u.ID, res, perfdb.Record{}, nil); err != nil {
		t.Fatalf("stale Complete: %v", err)
	}
	st, _ := c.Job(job.ID)
	if st.State != "done" || st.Executed != 1 {
		t.Fatalf("job = %+v, want done with Executed=1", st)
	}
	got, err := c.Results(job.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(got) != 1 || got[0].Cycles != 42 {
		t.Fatalf("results = %+v, want the stale worker's blob", got)
	}
	// A duplicate completion from the requeued path is a no-op.
	if err := c.Complete(w1, u.ID, res, perfdb.Record{}, nil); err != nil {
		t.Fatalf("duplicate Complete: %v", err)
	}
	if q := c.Queue(); q.Executed != 1 {
		t.Fatalf("Executed = %d after duplicate completion, want 1", q.Executed)
	}
}

// TestCacheHitAtSubmit proves a resubmitted job is served entirely from
// the result cache: no pending units, CacheHits == Units, Executed == 0.
func TestCacheHitAtSubmit(t *testing.T) {
	c, _, job := testCoordinator(t, Options{})
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 7}, perfdb.Record{}, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if st, _ := c.Job(job.ID); st.State != "done" {
		t.Fatalf("first job state = %q, want done", st.State)
	}

	st2, err := c.Submit(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.State != "done" || st2.CacheHits != st2.Units || st2.Executed != 0 {
		t.Fatalf("resubmitted job = %+v, want done entirely from cache", st2)
	}
	res, err := c.Results(st2.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(res) != 1 || res[0].Cycles != 7 {
		t.Fatalf("cached results = %+v, want the original blob", res)
	}
}

// TestFollowerCoalescing proves two jobs wanting the same fingerprint
// execute it once: the second job's unit follows the first's in-flight
// unit and both complete from one worker report.
func TestFollowerCoalescing(t *testing.T) {
	c, _, job1 := testCoordinator(t, Options{})
	st2, err := c.Submit(SweepSpec{Benchmarks: []string{"fib"}, Protocols: []string{"mesi"}})
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	// Only one unit is leasable: the twin is following, not pending.
	if units, _ := c.Lease(w, 10); len(units) != 0 {
		t.Fatalf("follower was leased: %+v", units)
	}
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 9}, perfdb.Record{}, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	s1, _ := c.Job(job1.ID)
	s2, _ := c.Job(st2.ID)
	if s1.State != "done" || s2.State != "done" {
		t.Fatalf("states = %q,%q, want done,done", s1.State, s2.State)
	}
	if got := s1.Executed + s2.Executed; got != 1 {
		t.Fatalf("total executed = %d across twin jobs, want 1", got)
	}
	if s1.Coalesced+s2.Coalesced != 1 {
		t.Fatalf("coalesced = %d+%d, want exactly 1", s1.Coalesced, s2.Coalesced)
	}
	r2, err := c.Results(st2.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if r2[0].Cycles != 9 {
		t.Fatalf("follower result = %+v, want the leader's blob", r2[0])
	}
}

// TestSubmitValidation proves bad specs fail at submit time, before any
// unit reaches a worker.
func TestSubmitValidation(t *testing.T) {
	c, _, _ := testCoordinator(t, Options{})
	for _, spec := range []SweepSpec{
		{Benchmarks: []string{"no-such-benchmark"}},
		{Protocols: []string{"no-such-protocol"}},
		{Machine: "no-such-machine"},
		{Size: "no-such-size"},
		{Engine: "no-such-engine"},
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
}

// TestMetricFamilies spot-checks the /metrics surface the CI job greps.
func TestMetricFamilies(t *testing.T) {
	c, _, _ := testCoordinator(t, Options{})
	w, _ := c.RegisterWorker("w")
	u := leaseOne(t, c, w)
	if err := c.Complete(w, u.ID, bench.Result{Cycles: 1}, perfdb.Record{}, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	got := map[string]float64{}
	for _, f := range c.MetricFamilies() {
		if len(f.Metrics) == 1 && len(f.Metrics[0].Labels) == 0 {
			got[f.Name] = f.Metrics[0].Value
		} else {
			got[f.Name] = -1 // labelled family: presence only
		}
	}
	for name, want := range map[string]float64{
		"warden_fleet_queue_depth":          0,
		"warden_fleet_active_leases":        0,
		"warden_fleet_leases_granted_total": 1,
		"warden_fleet_leases_expired_total": 0,
		"warden_fleet_retries_total":        0,
		"warden_fleet_poisoned_units":       0,
		"warden_fleet_units_executed_total": 1,
		"warden_fleet_workers":              1,
		"warden_fleet_cache_misses_total":   1, // the submit-time lookup missed
		"warden_fleet_cache_entries":        1,
	} {
		if v, ok := got[name]; !ok {
			t.Errorf("missing family %q", name)
		} else if v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
	if _, ok := got["warden_fleet_worker_units_total"]; !ok {
		t.Error("missing per-worker throughput family")
	}
}
