package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"warden/internal/obs"
)

// Cache is the coordinator's content-addressed result store: config
// fingerprint → result blob. Entries are immutable — a fingerprint fully
// determines its (bit-reproducible) result — so the store is append-only,
// persisted as JSONL next to the perfdb history, and a restarted
// coordinator reloads it to keep memoization global across processes and
// time: resubmitting any previously-run sweep is served without executing
// a simulation.
type Cache struct {
	mu     sync.Mutex
	path   string // "" = memory-only
	m      map[string]json.RawMessage
	hits   uint64
	misses uint64
}

// cacheLine is the JSONL persistence schema: one entry per line.
type cacheLine struct {
	Fingerprint string          `json:"fingerprint"`
	Result      json.RawMessage `json:"result"`
}

// OpenCache loads (or starts) a cache persisted at path; an empty path
// yields a memory-only cache. A missing file is an empty cache, not an
// error; a malformed line is an error naming its line number, because a
// silently-truncated cache would re-execute work it claims to remember.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{path: path, m: make(map[string]json.RawMessage)}
	if path == "" {
		return c, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("fleet: cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var cl cacheLine
		if err := json.Unmarshal(b, &cl); err != nil {
			return nil, fmt.Errorf("fleet: cache %s:%d: %w", path, line, err)
		}
		if cl.Fingerprint == "" {
			return nil, fmt.Errorf("fleet: cache %s:%d: entry without fingerprint", path, line)
		}
		// Last write wins on duplicate fingerprints (e.g. two coordinators
		// sharing a file); results are deterministic so the blobs agree.
		c.m[cl.Fingerprint] = append(json.RawMessage(nil), cl.Result...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: cache %s: %w", path, err)
	}
	return c, nil
}

// Get returns the cached result blob for a fingerprint, counting the
// lookup as a hit or miss.
func (c *Cache) Get(fp string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.m[fp]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return blob, ok
}

// Put stores a result blob under its fingerprint, appending it to the
// persistence file when one is configured. Re-putting an existing
// fingerprint is a no-op (the first result is as good as any — they are
// byte-identical by construction) so a stale-lease duplicate completion
// never doubles a line.
func (c *Cache) Put(fp string, blob json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; ok {
		return nil
	}
	c.m[fp] = append(json.RawMessage(nil), blob...)
	if c.path == "" {
		return nil
	}
	line, err := json.Marshal(cacheLine{Fingerprint: fp, Result: blob})
	if err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("fleet: cache: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	return nil
}

// Len reports the number of cached fingerprints.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports the cache's lookup counters in the shared obs shape.
func (c *Cache) Stats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.m)}
}
