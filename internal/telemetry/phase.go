package telemetry

import (
	"fmt"
	"io"
	"sort"

	"warden/internal/core"
)

// Pseudo-phase names for events that fall outside any open marker.
const (
	// OutsidePhase attributes events on a thread with no open phase (e.g.
	// idle steal probing before the first task arrives).
	OutsidePhase = "(outside)"
	// SystemPhase attributes threadless events (the end-of-run drain).
	SystemPhase = "(system)"
)

// PhaseStats accumulates everything attributed to one phase name, summed
// over all instances of the phase on all threads.
type PhaseStats struct {
	Name   string
	Opens  uint64 // how many times the phase began
	Cycles uint64 // sum over closed instances of (end cycle - begin cycle)
	Ctrs   WinCounters
}

// phaseFrame is one open phase instance on a thread's stack.
type phaseFrame struct {
	stats *PhaseStats
	begin uint64
}

// PhaseAccount attributes the event stream to program phases. Phases nest
// LIFO per thread (each Begin/End pair executes on one hardware thread);
// every instruction-level event is charged to the innermost phase open on
// its thread at that moment, so a "sieve.mark" row in the report covers the
// marking tasks themselves plus the scheduler work they triggered — and
// nothing that ran outside the marked scope.
type PhaseAccount struct {
	byName map[string]*PhaseStats
	stacks map[int][]phaseFrame // per hardware thread

	// Unbalanced counts EvPhaseEnd markers whose name did not match the top
	// of the thread's stack (or arrived with the stack empty). Always zero
	// for markers emitted by internal/hlpl and Task.Phase.
	Unbalanced uint64
}

func newPhaseAccount() *PhaseAccount {
	return &PhaseAccount{
		byName: make(map[string]*PhaseStats),
		stacks: make(map[int][]phaseFrame),
	}
}

// get returns (creating if needed) the accumulator for name.
func (pa *PhaseAccount) get(name string) *PhaseStats {
	ps := pa.byName[name]
	if ps == nil {
		ps = &PhaseStats{Name: name}
		pa.byName[name] = ps
	}
	return ps
}

// observe routes one event.
func (pa *PhaseAccount) observe(ev *core.Event) {
	switch ev.Kind {
	case core.EvPhaseBegin:
		ps := pa.get(ev.Label)
		ps.Opens++
		pa.stacks[ev.Thread] = append(pa.stacks[ev.Thread], phaseFrame{stats: ps, begin: ev.Cycle})
	case core.EvPhaseEnd:
		st := pa.stacks[ev.Thread]
		if n := len(st); n > 0 && st[n-1].stats.Name == ev.Label {
			fr := st[n-1]
			pa.stacks[ev.Thread] = st[:n-1]
			fr.stats.Cycles += ev.Cycle - fr.begin
		} else {
			pa.Unbalanced++
		}
	default:
		if !ev.Kind.Instruction() {
			return
		}
		if ev.Thread < 0 {
			pa.get(SystemPhase).Ctrs.instruction(ev)
			return
		}
		if st := pa.stacks[ev.Thread]; len(st) > 0 {
			st[len(st)-1].stats.Ctrs.instruction(ev)
			return
		}
		pa.get(OutsidePhase).Ctrs.instruction(ev)
	}
}

// Table returns the per-phase rows sorted by attributed span cycles
// descending (name ascending to break ties), a deterministic order.
func (pa *PhaseAccount) Table() []*PhaseStats {
	rows := make([]*PhaseStats, 0, len(pa.byName))
	for _, ps := range pa.byName {
		rows = append(rows, ps)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteCSV dumps the phase table.
func (pa *PhaseAccount) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "phase,opens,span_cycles,instr,loads,stores,atomics,inv,downg,msgs,dram,ward,latency_sum"); err != nil {
		return err
	}
	for _, ps := range pa.Table() {
		c := &ps.Ctrs
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			ps.Name, ps.Opens, ps.Cycles, c.Instructions, c.Loads, c.Stores, c.Atomics,
			c.Invalidations, c.Downgrades, c.Msgs, c.DRAMAccesses, c.WardAccesses, c.LatencySum); err != nil {
			return err
		}
	}
	return nil
}
