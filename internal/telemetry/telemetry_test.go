package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

func testCfg() topology.Config {
	cfg := topology.XeonGold6126(2)
	cfg.CoresPerSocket = 2
	return cfg
}

// runObserved executes benchmark name at the given size with a Capture (and
// optional Perfetto stream) attached, returning the capture and total cycles.
func runObserved(t *testing.T, proto core.Protocol, name string, size int, trace *bytes.Buffer) (*Capture, uint64) {
	t.Helper()
	e, err := pbbs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	m := machine.New(cfg, proto)
	tcfg := Config{Topology: cfg, WindowCycles: 1 << 12}
	if trace != nil {
		tcfg.Trace = trace
	}
	cap := New(tcfg)
	m.System().SetSink(cap)
	w := e.New(size)
	if w.Prepare != nil {
		w.Prepare(m)
	}
	cycles, err := hlpl.New(m, hlpl.DefaultOptions()).Run(w.Root)
	m.System().SetSink(nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := cap.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return cap, cycles
}

func TestCaptureWindows(t *testing.T) {
	cap, cycles := runObserved(t, core.WARDen, "primes", 4000, nil)

	if cap.Events == 0 {
		t.Fatal("no events observed")
	}
	if cap.FinalCycle != cycles {
		t.Errorf("FinalCycle = %d, want total cycles %d", cap.FinalCycle, cycles)
	}

	ws := cap.Windows
	wins := ws.Live()
	if len(wins) == 0 {
		t.Fatal("no windows")
	}
	// The window series must be contiguous and cover the run.
	for i, w := range wins {
		if w.Index != wins[0].Index+uint64(i) {
			t.Fatalf("window %d has index %d, want %d", i, w.Index, wins[0].Index+uint64(i))
		}
	}
	if last := wins[len(wins)-1]; cycles/ws.WindowCycles != last.Index {
		t.Errorf("last window index %d, want %d (drain at cycle %d)", last.Index, cycles/ws.WindowCycles, cycles)
	}
	if ws.LateDrops != 0 || ws.EvictedWindows != 0 {
		t.Errorf("unexpected drops: late=%d evicted=%d", ws.LateDrops, ws.EvictedWindows)
	}

	// Window totals must sum to consistent aggregates: the per-core split
	// sums to the instruction totals, and the per-directory split to the
	// transaction count.
	var total, coreSum, dirSum WinCounters
	for _, w := range wins {
		total.Add(&w.Total)
		for i := range w.PerCore {
			coreSum.Add(&w.PerCore[i])
		}
		for i := range w.PerDir {
			dirSum.Add(&w.PerDir[i])
		}
	}
	if total.Instructions == 0 || total.Transactions == 0 {
		t.Fatalf("empty totals: %+v", total)
	}
	if coreSum.Instructions != total.Instructions || coreSum.Loads != total.Loads || coreSum.Stores != total.Stores {
		t.Errorf("per-core sum %+v does not match totals %+v", coreSum, total)
	}
	if dirSum.Transactions != total.Transactions || dirSum.Evictions != total.Evictions || dirSum.Reconciles != total.Reconciles {
		t.Errorf("per-dir sum %+v does not match totals %+v", dirSum, total)
	}
	// WARDen on primes must show region activity.
	if len(ws.RegionIDs()) == 0 {
		t.Error("no per-region windows under WARDen")
	}
	if total.WardAccesses == 0 {
		t.Error("no WARD accesses recorded under WARDen")
	}
}

func TestCaptureExports(t *testing.T) {
	cap, _ := runObserved(t, core.WARDen, "primes", 2000, nil)

	var csv bytes.Buffer
	if err := cap.Windows.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(cap.Windows.Live())+1 {
		t.Errorf("CSV has %d lines, want %d windows + header", len(lines), len(cap.Windows.Live()))
	}
	if !strings.HasPrefix(lines[0], "window,start_cycle,instr") {
		t.Errorf("bad CSV header: %q", lines[0])
	}

	var jsonl bytes.Buffer
	if err := cap.Windows.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(jsonl.String(), "\n"); n != len(cap.Windows.Live()) {
		t.Errorf("JSONL has %d lines, want %d", n, len(cap.Windows.Live()))
	}

	var ph bytes.Buffer
	if err := cap.Phases.WriteCSV(&ph); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{hlpl.RootPhase, hlpl.TaskPhase, "sieve.init", "sieve.mark"} {
		if !strings.Contains(ph.String(), want+",") {
			t.Errorf("phase CSV missing %q:\n%s", want, ph.String())
		}
	}

	var hm bytes.Buffer
	if err := cap.Heat.WriteCSV(&hm); err != nil {
		t.Fatal(err)
	}
	if len(cap.Heat.Buckets()) == 0 {
		t.Error("empty heatmap")
	}
	if n := len(cap.Heat.Hottest(5)); n > 5 {
		t.Errorf("Hottest(5) returned %d buckets", n)
	}
}

func TestPhaseAccounting(t *testing.T) {
	cap, cycles := runObserved(t, core.MESI, "primes", 2000, nil)

	pa := cap.Phases
	if pa.Unbalanced != 0 {
		t.Fatalf("unbalanced phase markers: %d", pa.Unbalanced)
	}
	root := pa.byName[hlpl.RootPhase]
	if root == nil || root.Opens != 1 {
		t.Fatalf("root phase: %+v", root)
	}
	if root.Cycles == 0 || root.Cycles > cycles {
		t.Errorf("root phase span %d outside (0, %d]", root.Cycles, cycles)
	}
	// Every instruction is attributed exactly once; the split must sum to
	// the run's instruction count.
	var attributed uint64
	for _, ps := range pa.Table() {
		attributed += ps.Ctrs.Instructions
	}
	// Capture windows saw every instruction too: compare against them.
	var total WinCounters
	for _, w := range cap.Windows.Live() {
		total.Add(&w.Total)
	}
	if attributed != total.Instructions {
		t.Errorf("phase-attributed instructions %d != windowed instructions %d", attributed, total.Instructions)
	}
	// The user-named phases from pbbs.Primes must be present with work.
	for _, name := range []string{"sieve.init", "sieve.mark"} {
		ps := pa.byName[name]
		if ps == nil || ps.Ctrs.Stores == 0 {
			t.Errorf("phase %q missing or without stores: %+v", name, ps)
		}
	}
}

func TestPerfettoTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	_, _ = runObserved(t, core.WARDen, "primes", 2000, &buf)

	st, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v\nfirst 600 bytes:\n%s", err, head(buf.String(), 600))
	}
	if st.PhasePairs == 0 || st.Slices == 0 {
		t.Fatalf("trace too empty: %+v", st)
	}
	// Every HLPL scope kind and the named program phases appear as slices.
	for _, name := range []string{hlpl.RootPhase, hlpl.TaskPhase, "sieve.init", "sieve.mark"} {
		if st.PhaseNames[name] == 0 {
			t.Errorf("no %q phase slices in trace", name)
		}
	}
	// Coherence slices must be enclosed by phases: the root phase spans the
	// whole computation, so only pre-worker-start or post-drain activity may
	// fall outside. The drain and idle steal probes outside phases are the
	// only expected out-of-phase coherence events.
	if st.InPhase == 0 {
		t.Error("no coherence events inside phases")
	}
	if st.InPhase < st.OutOfPhase {
		t.Errorf("more coherence events outside phases (%d) than inside (%d)", st.OutOfPhase, st.InPhase)
	}
}

func TestValidatePerfettoRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json": `{"traceEvents":[`,
		"unbalanced": `{"traceEvents":[
			{"name":"p","ph":"B","ts":1,"pid":0,"tid":0}]}`,
		"mismatched": `{"traceEvents":[
			{"name":"p","ph":"B","ts":1,"pid":0,"tid":0},
			{"name":"q","ph":"E","ts":2,"pid":0,"tid":0}]}`,
		"backwards ts": `{"traceEvents":[
			{"name":"p","ph":"B","ts":5,"pid":0,"tid":0},
			{"name":"p","ph":"E","ts":3,"pid":0,"tid":0}]}`,
		"negative dur": `{"traceEvents":[
			{"name":"x","cat":"coherence","ph":"X","ts":2,"dur":-1,"pid":0,"tid":0}]}`,
		"stray end": `{"traceEvents":[
			{"name":"p","ph":"E","ts":1,"pid":0,"tid":0}]}`,
		"bad letter": `{"traceEvents":[
			{"name":"p","ph":"Q","ts":1,"pid":0,"tid":0}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidatePerfetto(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
	// A well-formed document passes.
	ok := `{"traceEvents":[
		{"name":"p","ph":"B","ts":1,"pid":0,"tid":0},
		{"name":"x","cat":"coherence","ph":"X","ts":2,"dur":1,"pid":0,"tid":0},
		{"name":"p","ph":"E","ts":4,"pid":0,"tid":0},
		{"name":"i","cat":"coherence","ph":"i","s":"t","ts":9,"pid":0,"tid":1}]}`
	st, err := ValidatePerfetto(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("well-formed doc rejected: %v", err)
	}
	if st.PhasePairs != 1 || st.Slices != 1 || st.Instants != 1 || st.InPhase != 1 || st.OutOfPhase != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
}

func TestWindowRingEviction(t *testing.T) {
	cfg := testCfg()
	ws := newWindows(cfg, 100, 4)
	ev := &core.Event{Kind: core.EvCompute, Thread: 0, Core: 0, Arg1: 1}
	for c := uint64(0); c < 1000; c += 100 {
		ev.Cycle = c
		ws.observe(ev)
	}
	if len(ws.Live()) != 4 {
		t.Fatalf("ring holds %d windows, want 4", len(ws.Live()))
	}
	if ws.EvictedWindows != 6 {
		t.Errorf("evicted %d windows, want 6", ws.EvictedWindows)
	}
	if ws.EvictedTotals.Instructions != 6 {
		t.Errorf("evicted totals hold %d instructions, want 6", ws.EvictedTotals.Instructions)
	}
	// A stale event (older than the ring) is dropped, not misfiled.
	ev.Cycle = 0
	ws.observe(ev)
	if ws.LateDrops != 1 {
		t.Errorf("LateDrops = %d, want 1", ws.LateDrops)
	}
	// A huge forward jump resets the ring rather than materializing every
	// intermediate window.
	ev.Cycle = 1 << 40
	ws.observe(ev)
	if got := len(ws.Live()); got != 1 {
		t.Errorf("after jump ring holds %d windows, want 1", got)
	}
	var sum uint64
	for _, w := range ws.Live() {
		sum += w.Total.Instructions
	}
	if sum+ws.EvictedTotals.Instructions != 11 {
		t.Errorf("live (%d) + evicted (%d) instructions != 11 observed", sum, ws.EvictedTotals.Instructions)
	}
}

func TestWriteHTMLReport(t *testing.T) {
	capM, cyclesM := runObserved(t, core.MESI, "primes", 2000, nil)
	capW, cyclesW := runObserved(t, core.WARDen, "primes", 2000, nil)

	mk := func(proto string, cycles uint64, c *Capture) *RunReport {
		return &RunReport{
			Benchmark: "primes", Protocol: proto, Size: "2000",
			Machine: testCfg().Name, Cycles: cycles, Capture: c,
		}
	}
	var buf bytes.Buffer
	err := WriteHTML(&buf, "primes small", []*RunReport{
		mk("MESI", cyclesM, capM), mk("WARDen", cyclesW, capW),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "WARDen vs MESI", "speedup", "<svg", "sieve.mark", "Hottest address buckets"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Deterministic output: rendering twice gives identical bytes.
	var buf2 bytes.Buffer
	if err := WriteHTML(&buf2, "primes small", []*RunReport{
		mk("MESI", cyclesM, capM), mk("WARDen", cyclesW, capW),
	}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("report rendering is not deterministic")
	}
}

func head(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
