package telemetry

// Host-observability section of the HTML report (wardenreport -metrics):
// fleet span-duration histograms and cache hit-rates parsed from a
// Prometheus text scrape, so one artifact carries a fleet run's simulated
// results and its operational behaviour.

import (
	"fmt"
	"html/template"
	"io"
)

// HistRow is one histogram bucket, non-cumulative.
type HistRow struct {
	LE    string // upper bound label ("0.005", "+Inf")
	Count uint64 // observations in this bucket (de-cumulated)
}

// HistView is one rendered histogram family.
type HistView struct {
	Name  string
	Rows  []HistRow
	Sum   float64
	Count uint64
}

// Mean returns the average observation, 0 when empty.
func (h HistView) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// CacheView is one cache's hit-rate summary (memo or fleet result cache).
type CacheView struct {
	Name    string
	Hits    uint64
	Misses  uint64
	Entries uint64
}

// HitRate returns hits/(hits+misses), 0 when no lookups happened.
func (c CacheView) HitRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Hits) / float64(tot)
}

// ObsView is the observability section: span histograms and cache stats.
type ObsView struct {
	Source string // where the scrape came from (path or URL)
	Hists  []HistView
	Caches []CacheView
}

var obsTmpl = template.Must(template.New("obs").Funcs(template.FuncMap{
	"f2":  func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"ms":  func(v float64) string { return fmt.Sprintf("%.1f ms", v*1000) },
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) },
}).Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>` + reportCSS + `</style></head><body>
<h1>{{.Title}}</h1>
{{with .Obs}}
<p class="meta">scraped from {{.Source}}</p>
{{if .Caches}}
<h2>Caches</h2>
<table><thead><tr><th>cache</th><th>hits</th><th>misses</th><th>hit rate</th><th>entries</th></tr></thead><tbody>
{{range .Caches}}<tr><td>{{.Name}}</td><td>{{.Hits}}</td><td>{{.Misses}}</td>
<td class="{{if ge .HitRate 0.5}}good{{else}}bad{{end}}">{{pct .HitRate}}</td><td>{{.Entries}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{if .Hists}}
<h2>Fleet span durations</h2>
{{range .Hists}}
<h3>{{.Name}}</h3>
<p class="meta">{{.Count}} observations · total {{f2 .Sum}} s · mean {{ms .Mean}}</p>
<table><thead><tr><th>≤ seconds</th><th>count</th></tr></thead><tbody>
{{range .Rows}}<tr><td>{{.LE}}</td><td>{{.Count}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{end}}
{{end}}
</body></html>
`))

// WriteObsHTML renders the observability section as a self-contained
// document, same styling as the run reports.
func WriteObsHTML(w io.Writer, title string, obs *ObsView) error {
	return obsTmpl.Execute(w, struct {
		Title string
		Obs   *ObsView
	}{Title: title, Obs: obs})
}
