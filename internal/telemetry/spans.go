package telemetry

// Span export: render a collected []span.Span as a Chrome trace_event /
// Perfetto JSON document, one track per span Track (coordinator, each
// worker), so a traced fleet sweep opens as a single timeline in
// ui.perfetto.dev. The output satisfies every invariant ValidatePerfetto
// enforces — only M and X phase letters, per-tid nondecreasing timestamps,
// nonnegative durations — and the wardenfleet CI job round-trips it through
// `wardenreport -validate`.
//
// Overlapping siblings on one track (concurrent units on the coordinator,
// say) cannot share a Perfetto thread lane without melting into one
// slice, so each track's spans are split into lanes by greedy interval
// coloring: a span fits a lane iff it is disjoint from everything open
// there or fully contained in the innermost open span (Perfetto nests
// contained X slices within a lane). The parent's lane is preferred, then
// the lowest-numbered lane that fits, then a fresh one. Lane 0 keeps the
// bare track name; lane k is named "track #k".

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"warden/internal/span"
)

// laneKey identifies one emitted Perfetto thread.
type laneKey struct {
	track string
	lane  int
}

// WriteSpans writes spans as a trace_event JSON object document. Timestamps
// are normalized so the earliest span starts at ts 0; durations are
// microseconds end-to-end. Span order in the input is irrelevant — output
// is fully deterministic for a given set of spans.
func WriteSpans(w io.Writer, spans []span.Span) error {
	byTrack := make(map[string][]span.Span)
	byID := make(map[string]span.Span, len(spans))
	var base int64
	for i, s := range spans {
		byTrack[s.Track] = append(byTrack[s.Track], s)
		byID[s.SpanID] = s
		if i == 0 || s.StartUS < base {
			base = s.StartUS
		}
	}
	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	// Assign lanes per track, then a global tid per (track, lane).
	lanes := make(map[string]int, len(spans)) // span id -> lane within its track
	tids := make(map[laneKey]int)
	type meta struct {
		key laneKey
		tid int
	}
	var metas []meta
	for _, t := range tracks {
		ss := byTrack[t]
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartUS != ss[j].StartUS {
				return ss[i].StartUS < ss[j].StartUS
			}
			if ss[i].EndUS != ss[j].EndUS {
				return ss[i].EndUS > ss[j].EndUS // wider first, so parents precede children
			}
			return ss[i].SpanID < ss[j].SpanID
		})
		byTrack[t] = ss
		// Per lane, the stack of currently-open interval ends (a nesting
		// chain — each entry is contained in the one below it).
		var stacks [][]int64
		fits := func(l int, s span.Span) bool {
			st := stacks[l]
			for len(st) > 0 && st[len(st)-1] <= s.StartUS {
				st = st[:len(st)-1] // closed before s starts
			}
			stacks[l] = st
			return len(st) == 0 || s.EndUS <= st[len(st)-1]
		}
		for _, s := range ss {
			lane := -1
			if p, ok := byID[s.Parent]; ok && p.Track == s.Track {
				if pl, ok := lanes[p.SpanID]; ok && fits(pl, s) {
					lane = pl
				}
			}
			if lane == -1 {
				for l := range stacks {
					if fits(l, s) {
						lane = l
						break
					}
				}
			}
			if lane == -1 {
				lane = len(stacks)
				stacks = append(stacks, nil)
			}
			end := s.EndUS
			if end < s.StartUS {
				end = s.StartUS
			}
			stacks[lane] = append(stacks[lane], end)
			lanes[s.SpanID] = lane
		}
		nLanes := 0
		for _, s := range ss {
			if lanes[s.SpanID]+1 > nLanes {
				nLanes = lanes[s.SpanID] + 1
			}
		}
		for l := 0; l < nLanes; l++ {
			k := laneKey{track: t, lane: l}
			tids[k] = len(metas)
			metas = append(metas, meta{key: k, tid: len(metas)})
		}
	}

	ew := &eventWriter{w: w}
	ew.raw(`{"displayTimeUnit":"ms","otherData":{"generator":"warden"},"traceEvents":[`)
	ew.emit(map[string]any{
		"name": "process_name", "ph": "M", "pid": 0,
		"args": map[string]any{"name": "warden fleet"},
	})
	for _, m := range metas {
		name := m.key.track
		if m.key.lane > 0 {
			name = fmt.Sprintf("%s #%d", m.key.track, m.key.lane)
		}
		ew.emit(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 0, "tid": m.tid,
			"args": map[string]any{"name": name},
		})
		ew.emit(map[string]any{
			"name": "thread_sort_index", "ph": "M", "pid": 0, "tid": m.tid,
			"args": map[string]any{"sort_index": m.tid},
		})
	}
	// One pass per tid keeps each track's timestamps contiguous and
	// nondecreasing in document order (the validator tracks ts per tid,
	// but grouped output also diffs cleanly).
	for _, m := range metas {
		for _, s := range byTrack[m.key.track] {
			if lanes[s.SpanID] != m.key.lane {
				continue
			}
			args := map[string]any{
				"trace_id": s.TraceID,
				"span_id":  s.SpanID,
			}
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			ew.emit(map[string]any{
				"name": s.Name, "cat": "span", "ph": "X",
				"ts": s.StartUS - base, "dur": s.Duration(),
				"pid": 0, "tid": m.tid, "args": args,
			})
		}
	}
	ew.raw("\n]}\n")
	return ew.err
}

// eventWriter shares the streaming comma/newline discipline of Perfetto's
// writer but marshals whole event objects (span attrs are caller data, so
// hand-formatting JSON would be fragile).
type eventWriter struct {
	w   io.Writer
	n   int
	err error
}

func (e *eventWriter) raw(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *eventWriter) emit(obj map[string]any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(obj)
	if err != nil {
		e.err = err
		return
	}
	sep := ",\n"
	if e.n == 0 {
		sep = "\n"
	}
	e.n++
	if _, err := io.WriteString(e.w, sep); err != nil {
		e.err = err
		return
	}
	_, e.err = e.w.Write(b)
}
