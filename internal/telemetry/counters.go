package telemetry

// Perfetto counter tracks for the attribution ledger — the wardenlens
// -trace-out artifact. Each track renders one protocol's cumulative
// attributed cycles per event kind as a stacked counter ("ph":"C"), so the
// two protocols of an -explain pair can be compared visually over
// simulated time in ui.perfetto.dev. The document uses the same trace_event
// JSON shape as the Perfetto run timelines and satisfies ValidatePerfetto.

import (
	"fmt"
	"io"
	"sort"

	"warden/internal/attrib"
)

// CounterTrack is one protocol's sampled attribution series.
type CounterTrack struct {
	Name    string // track label (protocol name)
	TID     int    // trace thread id; distinct per track
	Samples []attrib.Sample
}

// WriteCounterTrace renders the counter tracks as a self-contained
// trace_event document. Timestamps are simulated cycles (written as
// microseconds, like every trace in the repo); each sample becomes one
// counter event whose args carry the cumulative cycles per event kind,
// with keys sorted so output is deterministic.
func WriteCounterTrace(w io.Writer, name string, tracks []CounterTrack) error {
	cw := &countWriter{w: w}
	cw.raw(`{"displayTimeUnit":"ms","otherData":{"generator":"warden"},"traceEvents":[`)
	cw.emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":%s}}`, quote(name))
	for _, tr := range tracks {
		cw.emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			tr.TID, quote(tr.Name))
		for _, s := range tr.Samples {
			kinds := make([]string, 0, len(s.ByKind))
			for k := range s.ByKind {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			args := ""
			for i, k := range kinds {
				if i > 0 {
					args += ","
				}
				args += fmt.Sprintf("%s:%d", quote(k), s.ByKind[k])
			}
			cw.emit(`{"name":%s,"cat":"attrib","ph":"C","ts":%d,"pid":0,"tid":%d,"args":{%s}}`,
				quote("attributed cycles ("+tr.Name+")"), s.Cycle, tr.TID, args)
		}
	}
	cw.raw("\n]}\n")
	return cw.err
}

// countWriter shares the comma-managed emit discipline of Perfetto without
// its per-run topology state.
type countWriter struct {
	w   io.Writer
	n   int
	err error
}

func (c *countWriter) raw(s string) {
	if c.err != nil {
		return
	}
	_, c.err = io.WriteString(c.w, s)
}

func (c *countWriter) emit(format string, args ...any) {
	if c.err != nil {
		return
	}
	sep := ",\n"
	if c.n == 0 {
		sep = "\n"
	}
	c.n++
	c.raw(sep)
	c.raw(fmt.Sprintf(format, args...))
}
