package telemetry

import (
	"fmt"
	"io"
	"sort"

	"warden/internal/cache"
	"warden/internal/core"
	"warden/internal/topology"
)

// BucketStats is the sharing profile of one address bucket.
type BucketStats struct {
	Base uint64 // first byte address of the bucket

	Transactions  uint64 // directory transactions touching the bucket
	Invalidations uint64
	Downgrades    uint64
	Evictions     uint64
	Reconciles    uint64
	WardTxns      uint64 // transactions that entered or stayed in the W state

	// PingPongs counts write-mode transactions from a different core than
	// the bucket's previous writer — the migratory/falsely-shared pattern
	// WARD regions are designed to absorb.
	PingPongs  uint64
	MaxSharers int // largest sharer set observed before any transaction

	lastWriter int
}

// Heatmap profiles coherence activity across the address space at bucket
// granularity, from protocol-internal events (they carry block addresses and
// directory transitions). It answers "where does the traffic live": which
// buckets ping-pong between writers, which are widely read-shared, and which
// the WARD state covers.
type Heatmap struct {
	BucketBytes uint64

	cfg     topology.Config
	buckets map[uint64]*BucketStats
}

func newHeatmap(cfg topology.Config, bucketBytes uint64) *Heatmap {
	return &Heatmap{BucketBytes: bucketBytes, cfg: cfg, buckets: make(map[uint64]*BucketStats)}
}

// bucket returns (creating if needed) the bucket containing addr.
func (h *Heatmap) bucket(addr uint64) *BucketStats {
	base := addr &^ (h.BucketBytes - 1)
	b := h.buckets[base]
	if b == nil {
		b = &BucketStats{Base: base, lastWriter: -1}
		h.buckets[base] = b
	}
	return b
}

// observe routes one event. Instruction-level events are ignored: the
// protocol-internal stream carries every block that caused coherence work,
// which is exactly the population the heatmap profiles.
func (h *Heatmap) observe(ev *core.Event) {
	switch ev.Kind {
	case core.EvTransaction:
		b := h.bucket(uint64(ev.Block))
		b.Transactions++
		b.Invalidations += ev.Ctrs.Invalidations
		b.Downgrades += ev.Ctrs.Downgrades
		if n := ev.SharersBefore.Count(); n > b.MaxSharers {
			b.MaxSharers = n
		}
		if ev.DirAfter == cache.Ward {
			b.WardTxns++
		}
		if ev.Mode != core.ModeRead {
			if b.lastWriter >= 0 && b.lastWriter != ev.Core {
				b.PingPongs++
			}
			b.lastWriter = ev.Core
		}
	case core.EvEvict:
		h.bucket(uint64(ev.Block)).Evictions++
	case core.EvReconcile:
		h.bucket(uint64(ev.Block)).Reconciles++
	}
}

// Buckets returns every touched bucket in ascending address order.
func (h *Heatmap) Buckets() []*BucketStats {
	out := make([]*BucketStats, 0, len(h.buckets))
	for _, b := range h.buckets {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Hottest returns the n buckets with the most coherence damage
// (invalidations + downgrades + ping-pongs, ties broken by transactions then
// address), hottest first.
func (h *Heatmap) Hottest(n int) []*BucketStats {
	out := h.Buckets()
	heat := func(b *BucketStats) uint64 { return b.Invalidations + b.Downgrades + b.PingPongs }
	sort.SliceStable(out, func(i, j int) bool {
		if hi, hj := heat(out[i]), heat(out[j]); hi != hj {
			return hi > hj
		}
		return out[i].Transactions > out[j].Transactions
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// WriteCSV dumps every touched bucket in address order.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "bucket_base,home_socket,txns,inv,downg,evicts,reconciles,ward_txns,ping_pongs,max_sharers"); err != nil {
		return err
	}
	for _, b := range h.Buckets() {
		if _, err := fmt.Fprintf(w, "%#x,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			b.Base, h.cfg.HomeSocket(b.Base), b.Transactions, b.Invalidations, b.Downgrades,
			b.Evictions, b.Reconciles, b.WardTxns, b.PingPongs, b.MaxSharers); err != nil {
			return err
		}
	}
	return nil
}
