// Package telemetry is the observability layer: a core.Sink that samples the
// structured coherence event stream into cycle-windowed time series, phase-
// attributed counter tables, and an address-space sharing heatmap, plus
// exporters for each (CSV/JSONL dumps, a Chrome trace_event/Perfetto JSON
// timeline, and the self-contained HTML report of cmd/wardenreport).
//
// Telemetry is pure observation. A Capture attaches through core.SetSink like
// every other sink, never mutates the system, and never advances simulated
// time: with no sink attached the access paths pay a nil check only, and with
// a Capture attached every counter and every cycle count is identical to the
// unobserved run (enforced by TestTelemetryMatchesUnobserved in
// internal/bench). The layer therefore has zero perturbation by construction —
// all of its cost is host-side.
//
// Attribution model. Counter deltas (ev.Ctrs) are accounted from
// instruction-level events only: protocol-internal events nest inside
// instructions and their deltas are subsets of the enclosing instruction's,
// so summing both would double-count. Protocol-internal events instead
// contribute occurrence counts (transactions, evictions, reconciles) and the
// directory-side detail the instruction view lacks (home socket, sharer
// sets, region ids).
package telemetry

import (
	"io"

	"warden/internal/core"
	"warden/internal/topology"
)

// Config tunes a Capture. The zero value of every field selects a default;
// Topology is required (window series need the core/socket shape, the heatmap
// needs the block size).
type Config struct {
	// Topology is the simulated machine the observed run uses.
	Topology topology.Config

	// WindowCycles is the width of one sampling window in simulated cycles.
	// Defaults to DefaultWindowCycles.
	WindowCycles uint64

	// RingWindows caps how many windows are held live; older windows are
	// evicted (their totals folded into Windows.EvictedTotals). Defaults to
	// DefaultRingWindows.
	RingWindows int

	// HeatBucketBytes is the address-bucket granularity of the sharing
	// heatmap. Defaults to DefaultHeatBucketBytes.
	HeatBucketBytes uint64

	// Trace, when non-nil, streams a Chrome trace_event/Perfetto JSON
	// timeline of phases and coherence events to the writer as the run
	// executes. The caller must call Capture.Close to finish the JSON.
	Trace io.Writer
}

// Defaults for Config fields left zero.
const (
	DefaultWindowCycles    = 1 << 16 // 65536 cycles per window
	DefaultRingWindows     = 1 << 12 // 4096 live windows (~268M cycles)
	DefaultHeatBucketBytes = 1 << 12 // 4 KiB heatmap buckets
)

// Capture is the telemetry sink. Create with New, attach via core.SetSink
// (or machine.Machine.SetSink / bench.RunOneObserved), and read the exported
// views after the run. Capture is single-threaded like every sink: the
// simulation engine serializes all cores.
type Capture struct {
	Windows *Windows      // cycle-windowed counter series
	Phases  *PhaseAccount // per-phase spans and counter attribution
	Heat    *Heatmap      // address-space sharing/ping-pong map

	// Events is the total number of events observed.
	Events uint64
	// FinalCycle is the largest Cycle stamp seen (the drain event carries
	// the run's total cycle count, so after a full run this is that total).
	FinalCycle uint64

	perf *Perfetto
}

// New creates a Capture for the given configuration.
func New(cfg Config) *Capture {
	if cfg.WindowCycles == 0 {
		cfg.WindowCycles = DefaultWindowCycles
	}
	if cfg.RingWindows <= 0 {
		cfg.RingWindows = DefaultRingWindows
	}
	if cfg.HeatBucketBytes == 0 {
		cfg.HeatBucketBytes = DefaultHeatBucketBytes
	}
	c := &Capture{
		Windows: newWindows(cfg.Topology, cfg.WindowCycles, cfg.RingWindows),
		Phases:  newPhaseAccount(),
		Heat:    newHeatmap(cfg.Topology, cfg.HeatBucketBytes),
	}
	if cfg.Trace != nil {
		c.perf = NewPerfetto(cfg.Trace, cfg.Topology)
	}
	return c
}

// Event implements core.Sink.
func (c *Capture) Event(ev *core.Event) {
	c.Events++
	if ev.Cycle > c.FinalCycle {
		c.FinalCycle = ev.Cycle
	}
	c.Windows.observe(ev)
	c.Phases.observe(ev)
	c.Heat.observe(ev)
	if c.perf != nil {
		c.perf.Event(ev)
	}
}

// Close finishes the streaming Perfetto trace, if one was configured. It is
// safe (and a no-op) without one, and safe to call more than once.
func (c *Capture) Close() error {
	if c.perf == nil {
		return nil
	}
	return c.perf.Close()
}
