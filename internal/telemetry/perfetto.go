package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"warden/internal/core"
	"warden/internal/topology"
)

// Perfetto streams a Chrome trace_event JSON timeline — the JSON object
// format with a traceEvents array, loadable by Perfetto (ui.perfetto.dev)
// and chrome://tracing. The mapping:
//
//   - every hardware thread is a track (tid = thread id; one synthetic
//     "system" track holds threadless events such as the end-of-run drain);
//   - phase markers become duration-begin/end pairs (ph "B"/"E"), so every
//     HLPL fork/join scope and Task.Phase scope is a named nested slice;
//   - directory transactions become complete slices (ph "X") with dur equal
//     to the latency charged to the requester. A transaction always begins
//     inside the phase whose instruction triggered it, but may end after the
//     phase closes: store-buffer writes drain asynchronously while later
//     instructions (possibly in a later phase) execute, exactly as in
//     hardware, so their transaction slices truthfully overflow the phase
//     boundary;
//   - evictions, reconciliations, region adds/removes, and the drain become
//     thread-scoped instant events (ph "i").
//
// Timestamps are simulated cycles, written as microseconds (displayTimeUnit
// only affects how the UI prints them). The per-thread clocks are monotonic,
// so timestamps are nondecreasing per track; across tracks they may
// interleave arbitrarily, which the format permits.
//
// Instruction-level load/store/compute events are deliberately not emitted:
// at one slice per instruction the trace would dwarf the run. The windowed
// series (Windows) is the aggregate view of those.
type Perfetto struct {
	w     io.Writer
	cfg   topology.Config
	err   error
	n     int // events written
	named map[int]bool
	done  bool
}

// NewPerfetto creates a streaming writer and writes the JSON prologue.
// Callers must call Close to finish the document.
func NewPerfetto(w io.Writer, cfg topology.Config) *Perfetto {
	p := &Perfetto{w: w, cfg: cfg, named: make(map[int]bool)}
	p.raw(`{"displayTimeUnit":"ms","otherData":{"generator":"warden"},"traceEvents":[`)
	p.emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":%s}}`, quote(cfg.Name))
	return p
}

func (p *Perfetto) raw(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// emit writes one event object, handling the array comma and newline.
func (p *Perfetto) emit(format string, args ...any) {
	if p.err != nil {
		return
	}
	sep := ",\n"
	if p.n == 0 {
		sep = "\n"
	}
	p.n++
	_, p.err = fmt.Fprintf(p.w, sep+format, args...)
}

func quote(s string) string { return strconv.Quote(s) }

// tid maps an event's thread to its track, ensuring thread_name metadata is
// written before first use.
func (p *Perfetto) tid(thread int) int {
	t := thread
	name := ""
	if t < 0 {
		t = p.cfg.Threads()
		name = "system"
	} else {
		name = fmt.Sprintf("thread %d (core %d, socket %d)",
			t, p.cfg.CoreOf(t), p.cfg.SocketOfThread(t))
	}
	if !p.named[t] {
		p.named[t] = true
		p.emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`, t, quote(name))
		p.emit(`{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`, t, t)
	}
	return t
}

// Event implements core.Sink.
func (p *Perfetto) Event(ev *core.Event) {
	switch ev.Kind {
	case core.EvPhaseBegin:
		p.emit(`{"name":%s,"cat":"phase","ph":"B","ts":%d,"pid":0,"tid":%d}`,
			quote(ev.Label), ev.Cycle, p.tid(ev.Thread))
	case core.EvPhaseEnd:
		p.emit(`{"name":%s,"cat":"phase","ph":"E","ts":%d,"pid":0,"tid":%d}`,
			quote(ev.Label), ev.Cycle, p.tid(ev.Thread))
	case core.EvTransaction:
		p.emit(`{"name":%s,"cat":"coherence","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"block":"%#x","dir":"%s>%s","core":%d,"inv":%d,"downg":%d,"region":%d}}`,
			quote("txn "+ev.Mode.String()), ev.Cycle, ev.Latency, p.tid(ev.Thread),
			uint64(ev.Block), ev.DirBefore, ev.DirAfter, ev.Core,
			ev.Ctrs.Invalidations, ev.Ctrs.Downgrades, ev.Region)
	case core.EvEvict:
		p.emit(`{"name":"evict","cat":"coherence","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"block":"%#x","state":"%s"}}`,
			ev.Cycle, p.tid(ev.Thread), uint64(ev.Block), ev.LineState)
	case core.EvReconcile:
		p.emit(`{"name":"reconcile","cat":"coherence","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"block":"%#x","writers":%d,"region":%d}}`,
			ev.Cycle, p.tid(ev.Thread), uint64(ev.Block), ev.Arg1, ev.Region)
	case core.EvRegionAdd:
		p.emit(`{"name":"region+","cat":"region","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"lo":"%#x","hi":"%#x","ok":%t,"region":%d}}`,
			ev.Cycle, p.tid(ev.Thread), uint64(ev.Lo), uint64(ev.Hi), ev.RegionOK, ev.Region)
	case core.EvRegionRemove:
		p.emit(`{"name":"region-","cat":"region","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"region":%d}}`,
			ev.Cycle, p.tid(ev.Thread), ev.Region)
	case core.EvDrain:
		p.emit(`{"name":"drain","cat":"system","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"cycles":%d}}`,
			ev.Cycle, p.tid(ev.Thread), ev.Cycle)
	}
}

// Close finishes the JSON document. Safe to call more than once.
func (p *Perfetto) Close() error {
	if !p.done {
		p.done = true
		p.raw("\n]}\n")
	}
	return p.err
}

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Events     int            // events of any kind, metadata included
	Slices     int            // complete slices (ph "X")
	Instants   int            // instant events (ph "i")
	Counters   int            // counter samples (ph "C")
	PhasePairs int            // matched B/E pairs
	PhaseNames map[string]int // phase name -> B count
	InPhase    int            // coherence events enclosed by an open phase
	OutOfPhase int            // coherence events outside any phase
	MaxTS      float64
}

// pfEvent is the decoded form of one trace event.
type pfEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// pfFrame is one open duration slice during validation.
type pfFrame struct {
	name string
	ts   float64
}

// ValidatePerfetto parses a trace_event JSON document and checks the
// structural invariants our writer guarantees: known phase letters,
// per-track nondecreasing timestamps, balanced name-matched B/E pairs
// closing no earlier than they opened, and nonnegative slice durations.
// Coherence events are classified by whether they *begin* inside an open
// phase (InPhase/OutOfPhase); end-containment is deliberately not required —
// store-buffer-asynchronous transactions legitimately outlive the phase that
// issued them (see the Perfetto type comment). It returns summary statistics
// on success.
func ValidatePerfetto(r io.Reader) (*TraceStats, error) {
	var doc struct {
		TraceEvents []pfEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: trace does not parse: %w", err)
	}
	st := &TraceStats{PhaseNames: make(map[string]int)}
	stacks := make(map[int][]pfFrame)
	lastTS := make(map[int]float64)
	for i, ev := range doc.TraceEvents {
		st.Events++
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			return nil, fmt.Errorf("telemetry: event %d (%s): ts %v goes backwards on tid %d (prev %v)",
				i, ev.Name, ev.TS, ev.TID, prev)
		}
		lastTS[ev.TID] = ev.TS
		if ev.TS > st.MaxTS {
			st.MaxTS = ev.TS
		}
		stack := stacks[ev.TID]
		switch ev.Ph {
		case "B":
			st.PhaseNames[ev.Name]++
			stacks[ev.TID] = append(stack, pfFrame{name: ev.Name, ts: ev.TS})
		case "E":
			if len(stack) == 0 {
				return nil, fmt.Errorf("telemetry: event %d: E %q on tid %d with no open slice", i, ev.Name, ev.TID)
			}
			top := stack[len(stack)-1]
			if top.name != ev.Name {
				return nil, fmt.Errorf("telemetry: event %d: E %q on tid %d closes open slice %q", i, ev.Name, ev.TID, top.name)
			}
			if ev.TS < top.ts {
				return nil, fmt.Errorf("telemetry: event %d: slice %q ends at %v before it began at %v", i, ev.Name, ev.TS, top.ts)
			}
			stacks[ev.TID] = stack[:len(stack)-1]
			st.PhasePairs++
		case "X":
			st.Slices++
			if ev.Dur < 0 {
				return nil, fmt.Errorf("telemetry: event %d: slice %q has negative dur %v", i, ev.Name, ev.Dur)
			}
			if ev.Cat == "coherence" {
				if len(stack) > 0 {
					st.InPhase++
				} else {
					st.OutOfPhase++
				}
			}
		case "i":
			st.Instants++
			if ev.Cat == "coherence" {
				if len(stack) > 0 {
					st.InPhase++
				} else {
					st.OutOfPhase++
				}
			}
		case "C":
			// Counter samples (the wardenlens attribution tracks). They
			// carry no duration and never nest; only the per-track
			// timestamp monotonicity above applies.
			st.Counters++
		default:
			return nil, fmt.Errorf("telemetry: event %d: unexpected phase letter %q", i, ev.Ph)
		}
	}
	for tid, stack := range stacks {
		if len(stack) > 0 {
			return nil, fmt.Errorf("telemetry: tid %d ends with %d unclosed slice(s), innermost %q",
				tid, len(stack), stack[len(stack)-1].name)
		}
	}
	return st, nil
}
